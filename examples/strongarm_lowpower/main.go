// strongarm_lowpower: the §3 low-power story — reproduce the Table 1
// power walk, sweep channel lengthening against the 20 mW standby spec,
// size a buffer chain by logical effort for the low-voltage process,
// and show conditional clocking in an FCL model.
//
//	go run ./examples/strongarm_lowpower
package main

import (
	"fmt"
	"log"

	"repro/internal/designs"
	"repro/internal/power"
	"repro/internal/process"
	"repro/internal/rtl"
	"repro/internal/sizing"
)

func main() {
	// 1. Table 1: the ALPHA → StrongARM factor walk.
	steps, err := power.Table1Walk(power.ALPHA21064(), power.StrongARM110())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(power.FormatWalk(steps))
	fmt.Printf("total: %.1fx reduction\n\n", power.WalkTotalFactor(steps))

	// 2. §3's leakage knob: lengthen the cache and pad devices.
	chip := power.StrongARM110()
	fmt.Printf("standby spec: <%.0f mW in the fastest corner\n", power.StandbySpecMW)
	for _, p := range power.LeakageSweep(chip, []string{"cache", "pads"}, []float64{0, 0.045, 0.09}) {
		if p.Corner != process.Fast {
			continue
		}
		status := "FAILS"
		if p.MeetsSpec {
			status = "meets"
		}
		fmt.Printf("  ΔL=%.3f µm: %.1f mW — %s spec\n", p.ExtraLUM, p.LeakageMW, status)
	}

	// 3. Logical-effort sizing on the low-power process: drive a 2 pF
	//    pad from a 5 fF source.
	res, err := sizing.BufferChain(5, 2000, -1, process.CMOS035LP())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npad driver: %d stages, stage effort %.2f, delay %.0f ps\n",
		len(res.Stages), res.StageEffort, res.DelayPS)
	wn, wp := sizing.WidthsFromCin(res.CinFF, process.CMOS035LP())
	for i := range wn {
		fmt.Printf("  stage %d: Wn=%.1f µm  Wp=%.1f µm\n", i, wn[i], wp[i])
	}

	// 4. Conditional clocking (§3): the pipeline model's writeback only
	//    clocks when an instruction actually writes.
	prog, err := rtl.ParseString(designs.PipelineRTL())
	if err != nil {
		log.Fatal(err)
	}
	sim, err := rtl.NewSim(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npipeline model: %s\n", sim.Design().Stats())
	fmt.Println("(writeback uses 'on phi2 if run & (op != 7)' — the clock enable IS the power knob)")
}
