// alpha_adder: the ALPHA-style workload end to end — a 16-bit domino
// Manchester-carry adder is generated at transistor level, verified by
// the CBV pipeline, timed, checked against its RTL reference in
// shadow-mode simulation, and floor-estimated by the macrocell engine.
//
//	go run ./examples/alpha_adder
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/process"
	"repro/internal/rtl"
	"repro/internal/shadow"
	"repro/internal/switchsim"
	"repro/internal/timing"
)

const bits = 16

func main() {
	ckt := designs.DominoAdder(bits)
	fmt.Printf("generated %s: %d devices, %d nodes\n",
		ckt.Name, len(ckt.Devices), len(ckt.Nodes))

	// CBV verification.
	rep, err := core.Verify(ckt, core.Options{
		Proc:  process.CMOS075(),
		Clock: timing.TwoPhase(5000), // 200 MHz, the 21064's clock
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())
	if cp := rep.Timing.CriticalPath(); cp != nil {
		fmt.Printf("  critical path: %v\n", rep.Timing.PathNodeNames(cp))
	}

	// Shadow-mode simulation against the RTL reference (§4.1): the RTL
	// is golden; the transistor adder shadows its sum bits.
	prog, err := rtl.ParseString(designs.AdderRTL(bits))
	if err != nil {
		log.Fatal(err)
	}
	rtlSim, err := rtl.NewSim(prog)
	if err != nil {
		log.Fatal(err)
	}
	cktSim, err := switchsim.New(ckt)
	if err != nil {
		log.Fatal(err)
	}
	binding := shadow.Binding{
		Inputs:  map[string]string{"cin": "cin"},
		Outputs: map[string]string{},
		Clocks:  map[string]string{"phi1": "phi1"},
	}
	for i := 0; i < bits; i++ {
		binding.Inputs[fmt.Sprintf("a%d", i)] = fmt.Sprintf("a[%d]", i)
		binding.Inputs[fmt.Sprintf("b%d", i)] = fmt.Sprintf("b[%d]", i)
		binding.Outputs[fmt.Sprintf("s%d", i)] = fmt.Sprintf("s[%d]", i)
	}
	binding.Outputs["cout"] = "cout"
	sh, err := shadow.New(rtlSim, cktSim, binding)
	if err != nil {
		log.Fatal(err)
	}
	rng := obs.NewRNG(1997)
	for i := 0; i < 200; i++ {
		_ = rtlSim.Set("a", rng.Uint64()&0xffff)
		_ = rtlSim.Set("b", rng.Uint64()&0xffff)
		_ = rtlSim.Set("cin", rng.Uint64()&1)
		sh.Cycle()
	}
	fmt.Println(sh.Report())

	// Macrocell layout estimate (§2.2).
	m, err := layout.Place(ckt, process.CMOS075())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("layout estimate:", m.Summary())
}
