// verification_suite: the §4.1 logic-verification toolbox on one page —
// equivalence checking through radical re-implementation (the counter vs
// shift-register example), combinational RTL↔circuit checking with
// counterexamples, and the CBV-vs-CBC methodology comparison.
//
//	go run ./examples/verification_suite
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/equiv"
	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/recognize"
	"repro/internal/rtl"
)

func main() {
	// 1. Sequential equivalence across a state re-encoding (§4.1's
	//    "counter ... implemented in the circuit as a shift register
	//    with a cyclic value of five").
	sa := mustSim(designs.Mod5CounterRTL())
	sb := mustSim(designs.Mod5RingRTL())
	res, err := equiv.SeqEquiv(sa, sb, []string{"tick"}, []string{"fire"}, 10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mod-5 counter vs one-hot ring: equivalent=%v (%d joint states)\n",
		res.Equivalent, res.StatesExplored)

	// 2. Combinational equivalence with a counterexample: the RTL says
	//    NOR, the circuit is a NAND — the checker names the input that
	//    distinguishes them.
	prog, err := rtl.ParseString("module top(a, b -> y)\nassign y = !(a | b)\nendmodule")
	if err != nil {
		log.Fatal(err)
	}
	design, err := rtl.Elaborate(prog)
	if err != nil {
		log.Fatal(err)
	}
	ckt := netlist.New("nand2")
	for _, p := range []string{"a", "b", "y"} {
		ckt.DeclarePort(p)
	}
	ckt.NMOS("n1", "a", "mid", "y", 4, 0.75)
	ckt.NMOS("n2", "b", "vss", "mid", 4, 0.75)
	ckt.PMOS("p1", "a", "vdd", "y", 4, 0.75)
	ckt.PMOS("p2", "b", "vdd", "y", 4, 0.75)
	rec, err := recognize.Analyze(ckt)
	if err != nil {
		log.Fatal(err)
	}
	results, err := equiv.CompareCombinational(design, rec,
		[]equiv.PortMap{{RTLSignal: "a", Bit: 0, Node: "a"}, {RTLSignal: "b", Bit: 0, Node: "b"}},
		[]equiv.PortMap{{RTLSignal: "y", Bit: 0, Node: "y"}},
	)
	if err != nil {
		log.Fatal(err)
	}
	r := results[0]
	fmt.Printf("RTL NOR vs circuit NAND: equivalent=%v, counterexample=%v\n",
		r.Equivalent, r.Counterexample)

	// 3. CBV vs CBC over the design zoo (§2's methodology argument).
	fmt.Println("\nmethodology comparison (CBV verifies, CBC gatekeeps):")
	for _, d := range []*netlist.Circuit{
		designs.InverterChain(6),
		designs.DominoAdder(8),
		designs.PassMux(8),
	} {
		cmp, err := core.CompareMethodologies(d, core.Options{Proc: process.CMOS075()})
		if err != nil {
			log.Fatal(err)
		}
		cbc := "accepts"
		if !cmp.CBCAccepts {
			cbc = fmt.Sprintf("REJECTS %d groups", cmp.CBCRejected)
		}
		fmt.Printf("  %-16s CBV verdict=%-9s inspect-load=%-3d CBC %s\n",
			cmp.Design, cmp.CBVVerdict, cmp.CBVInspectLoad, cbc)
	}
}

// mustSim compiles FCL source or dies.
func mustSim(src string) *rtl.Sim {
	prog, err := rtl.ParseString(src)
	if err != nil {
		log.Fatal(err)
	}
	s, err := rtl.NewSim(prog)
	if err != nil {
		log.Fatal(err)
	}
	return s
}
