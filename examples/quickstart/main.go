// Quickstart: build a footed domino gate transistor by transistor, let
// the toolkit deduce what it is, verify it the CBV way, and watch it
// compute at switch level.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/recognize"
	"repro/internal/switchsim"
)

func main() {
	// 1. Transistors are the building elements (§2). A footed domino
	//    AND2 with keeper and output buffer, every device sized by hand.
	c := netlist.New("domino_and2")
	for _, p := range []string{"a", "b", "out"} {
		c.DeclarePort(p)
	}
	c.PMOS("mpre", "phi1", "vdd", "dyn", 4, 0.75) // precharge
	c.NMOS("ma", "a", "x1", "dyn", 6, 0.75)       // evaluate tree
	c.NMOS("mb", "b", "x2", "x1", 6, 0.75)
	c.NMOS("mfoot", "phi1", "vss", "x2", 8, 0.75) // clocked foot
	c.NMOS("mbn", "dyn", "vss", "out", 2, 0.75)   // output buffer
	c.PMOS("mbp", "dyn", "vdd", "out", 4, 0.75)
	c.PMOS("mkeep", "out", "vdd", "dyn", 1, 1.125) // weak keeper

	// 2. Recognition deduces the meaning with no cell library (§2.3).
	rec, err := recognize.Analyze(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recognition:", rec.Summary())
	dyn := c.FindNode("dyn")
	g := rec.GroupDriving(dyn)
	fmt.Printf("  dyn is a %s node (footed=%v), evaluate function = %s\n",
		g.Family, g.Footed, g.Func(dyn).Function)

	// 3. Correct by verification: the full §4.2 battery plus timing.
	rep, err := core.Verify(c, core.Options{Proc: process.CMOS075()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())

	// 4. And watch it work at switch level: precharge, then evaluate.
	sim, err := switchsim.New(c)
	if err != nil {
		log.Fatal(err)
	}
	sim.SetQuiet("phi1", switchsim.Lo)
	sim.SetQuiet("a", switchsim.Hi)
	sim.SetQuiet("b", switchsim.Hi)
	sim.Settle()
	fmt.Printf("precharge: dyn=%v out=%v\n", sim.Get("dyn"), sim.Get("out"))
	sim.SetQuiet("phi1", switchsim.Hi)
	sim.Settle()
	fmt.Printf("evaluate(a=1,b=1): dyn=%v out=%v  (out = a AND b)\n", sim.Get("dyn"), sim.Get("out"))
}
