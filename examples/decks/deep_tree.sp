* deep_tree.sp - four-level hierarchy for hierarchical incremental
* verification: chip -> half{0,1} -> col{0,1} -> lv{0..3}.
*
* Each leaf variant appears on exactly one branch, so editing lv3
* (widening w=2.6) must warm-miss only lv3 -> col1 -> half1 -> chip
* while every other subcell replays from a shared -cache-dir:
*
*   fcv verify -hier -hier-inline -1 -cache-dir d examples/decks/deep_tree.sp chip

.subckt lv0 a y
m1n n1 a vss vss nmos w=2.0 l=0.75
m1p n1 a vdd vdd pmos w=4.0 l=0.75
m2n n2 n1 vss vss nmos w=2.0 l=0.75
m2p n2 n1 vdd vdd pmos w=4.0 l=0.75
m3n n3 n2 vss vss nmos w=2.0 l=0.75
m3p n3 n2 vdd vdd pmos w=4.0 l=0.75
m4n y n3 vss vss nmos w=2.0 l=0.75
m4p y n3 vdd vdd pmos w=4.0 l=0.75
.ends

.subckt lv1 a y
m5n n1 a vss vss nmos w=2.2 l=0.75
m5p n1 a vdd vdd pmos w=4.4 l=0.75
m6n y n1 vss vss nmos w=2.2 l=0.75
m6p y n1 vdd vdd pmos w=4.4 l=0.75
.ends

.subckt lv2 a y
m7n n1 a vss vss nmos w=2.4 l=0.75
m7p n1 a vdd vdd pmos w=4.8 l=0.75
m8n y n1 vss vss nmos w=2.4 l=0.75
m8p y n1 vdd vdd pmos w=4.8 l=0.75
.ends

.subckt lv3 a y
m9n n1 a vss vss nmos w=2.6 l=0.75
m9p n1 a vdd vdd pmos w=5.2 l=0.75
m10n y n1 vss vss nmos w=2.6 l=0.75
m10p y n1 vdd vdd pmos w=5.2 l=0.75
.ends

.subckt col0 a y
x0 a m lv0
x1 m y lv1
.ends

.subckt col1 a y
x0 a m lv2
x1 m y lv3
.ends

.subckt half0 a y
x0 a m col0
x1 m y col0
.ends

.subckt half1 a y
x0 a m col1
x1 m y col1
.ends

.subckt chip a y
x0 a q half0
x1 q y half1
.ends
