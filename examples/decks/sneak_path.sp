* Seeded defect: phase-reachable VDD–VSS drive fight on a shared bus.
* Known answer: FCV014 (error) on node bus — a static inverter of in1
* always drives bus, and a phi1-gated tristate of a *different* input
* (in2) drives it too. Whenever phi1=1 and in1 ≠ in2 the two drivers
* fight rail against rail. Local checks cannot see it (no device is
* always on); only phase-aware pull-network analysis can.
* Run: go run ./cmd/fcv lint examples/decks/sneak_path.sp   (exit 1)
.subckt sneak_path in1 in2 phi1 phi1_n bus
* static inverter: bus = !in1, always enabled
mn1 bus in1 vss vss nmos w=2 l=0.75
mp1 bus in1 vdd vdd pmos w=4 l=0.75
* clocked tristate of in2 on the same bus (DEFECT: conflicting driver)
mp2 t1  in2    vdd vdd pmos w=4 l=0.75
mp3 bus phi1_n t1  vdd pmos w=4 l=0.75
mn2 bus phi1   t2  vss nmos w=2 l=0.75
mn3 t2  in2    vss vss nmos w=2 l=0.75
.ends
