* Seeded defect: NORA/domino composition violation.
* Known answer: FCV012 (error) on node dyn1 — the precharged dynamic
* node of stage 1 directly gates the evaluate NMOS of stage 2, which
* evaluates on the same phase (phi1). During precharge dyn1 is high, so
* stage 2's tree conducts spuriously at the start of evaluate; domino
* composition requires the static inversion (out1) in between.
* Run: go run ./cmd/fcv lint examples/decks/nora_stage.sp   (exit 1)
.subckt nora_stage a b phi1 out1 out2
* stage 1: footed domino AND(a, b) with keeper and output buffer
mpre1 dyn1 phi1 vdd vdd pmos w=4 l=0.75
ma1   dyn1 a    x1  vss nmos w=6 l=0.75
mb1   x1   b    x2  vss nmos w=6 l=0.75
mft1  x2   phi1 vss vss nmos w=8 l=0.75
mbn1  out1 dyn1 vss vss nmos w=2 l=0.75
mbp1  out1 dyn1 vdd vdd pmos w=4 l=0.75
mk1   dyn1 out1 vdd vdd pmos w=1 l=1.125
* stage 2 (DEFECT): evaluate gated by dyn1 instead of out1
mpre2 dyn2 phi1 vdd vdd pmos w=4 l=0.75
mev2  dyn2 dyn1 x3  vss nmos w=6 l=0.75
mft2  x3   phi1 vss vss nmos w=8 l=0.75
mbn2  out2 dyn2 vss vss nmos w=2 l=0.75
mbp2  out2 dyn2 vdd vdd pmos w=4 l=0.75
mk2   dyn2 out2 vdd vdd pmos w=1 l=1.125
.ends
