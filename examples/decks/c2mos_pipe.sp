* Seeded defect: C²MOS pipeline with a clock-polarity miswire.
* Known answer: FCV011 (error) on node s2 — stage 2's clock PMOS is
* gated by phi1 instead of phi1_n, so the stage can only pull up while
* phi1=0 and only pull down while phi1=1: no phase drives both levels.
* Stages 1 and 3 are correct and must stay quiet.
* Run: go run ./cmd/fcv lint examples/decks/c2mos_pipe.sp   (exit 1)
.subckt c2mos_pipe in phi1 phi1_n out
* stage 1 (correct): vdd -P(in)- a1 -P(phi1_n)- s1 -N(phi1)- a2 -N(in)- vss
mp1a a1 in     vdd vdd pmos w=4 l=0.75
mp1b s1 phi1_n a1  vdd pmos w=4 l=0.75
mn1a s1 phi1   a2  vss nmos w=2 l=0.75
mn1b a2 in     vss vss nmos w=2 l=0.75
* stage 2 (DEFECT): clock PMOS gated by phi1 — same polarity as the NMOS
mp2a b1 s1   vdd vdd pmos w=4 l=0.75
mp2b s2 phi1 b1  vdd pmos w=4 l=0.75
mn2a s2 phi1 b2  vss nmos w=2 l=0.75
mn2b b2 s1   vss vss nmos w=2 l=0.75
* stage 3 (correct)
mp3a c1 s2     vdd vdd pmos w=4 l=0.75
mp3b out phi1_n c1 vdd pmos w=4 l=0.75
mn3a out phi1  c2  vss nmos w=2 l=0.75
mn3b c2 s2     vss vss nmos w=2 l=0.75
.ends
