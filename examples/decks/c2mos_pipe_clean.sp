* Clean counterpart of c2mos_pipe.sp: every C²MOS stage clocks its PMOS
* with phi1_n and its NMOS with phi1, so pull-up and pull-down are both
* enabled while phi1 is high. Known answer: no findings (exit 0) —
* proves FCV011 does not false-fire on correct C²MOS.
* Run: go run ./cmd/fcv lint examples/decks/c2mos_pipe_clean.sp
.subckt c2mos_pipe_clean in phi1 phi1_n out
mp1a a1 in     vdd vdd pmos w=4 l=0.75
mp1b s1 phi1_n a1  vdd pmos w=4 l=0.75
mn1a s1 phi1   a2  vss nmos w=2 l=0.75
mn1b a2 in     vss vss nmos w=2 l=0.75
mp2a b1 s1     vdd vdd pmos w=4 l=0.75
mp2b s2 phi1_n b1  vdd pmos w=4 l=0.75
mn2a s2 phi1   b2  vss nmos w=2 l=0.75
mn2b b2 s1     vss vss nmos w=2 l=0.75
mp3a c1 s2     vdd vdd pmos w=4 l=0.75
mp3b out phi1_n c1 vdd pmos w=4 l=0.75
mn3a out phi1  c2  vss nmos w=2 l=0.75
mn3b c2 s2     vss vss nmos w=2 l=0.75
.ends
