* Clean counterpart of sneak_path.sp: the clocked tristate boosts the
* same signal the static inverter drives (in1), so both drivers always
* agree — a legal clock-boosted bus driver. Known answer: no findings
* (exit 0) — proves FCV014 does not false-fire on agreeing drivers.
* Run: go run ./cmd/fcv lint examples/decks/sneak_path_clean.sp
.subckt sneak_path_clean in1 phi1 phi1_n bus
mn1 bus in1 vss vss nmos w=2 l=0.75
mp1 bus in1 vdd vdd pmos w=4 l=0.75
* booster tristate of the same input
mp2 t1  in1    vdd vdd pmos w=4 l=0.75
mp3 bus phi1_n t1  vdd pmos w=4 l=0.75
mn2 bus phi1   t2  vss nmos w=2 l=0.75
mn3 t2  in1    vss vss nmos w=2 l=0.75
.ends
