* Two-phase transmission-gate latch pipeline (clean - no races).
* SPICE element order is: M <drain> <gate> <source> <bulk> <model>.
* Run: go run ./cmd/fcv timing examples/decks/latch_pipeline.sp
* Stage 0: phi1 latch (d -> l0_m -> q0 with weak keeper).
m_l0_pn  l0_m phi1   d    vss nmos w=4 l=0.75
m_l0_pp  l0_m phi1_n d    vdd pmos w=4 l=0.75
m_l0_fn  q0   l0_m   vss  vss nmos w=2 l=0.75
m_l0_fp  q0   l0_m   vdd  vdd pmos w=4 l=0.75
m_l0_kn  l0_m q0     vss  vss nmos w=1 l=0.75
m_l0_kp  l0_m q0     vdd  vdd pmos w=2 l=0.75
* Logic between stages.
m_u0_n   b0   q0     vss  vss nmos w=2 l=0.75
m_u0_p   b0   q0     vdd  vdd pmos w=4 l=0.75
* Stage 1: phi2 latch.
m_l1_pn  l1_m phi2   b0   vss nmos w=4 l=0.75
m_l1_pp  l1_m phi2_n b0   vdd pmos w=4 l=0.75
m_l1_fn  q1   l1_m   vss  vss nmos w=2 l=0.75
m_l1_fp  q1   l1_m   vdd  vdd pmos w=4 l=0.75
m_l1_kn  l1_m q1     vss  vss nmos w=1 l=0.75
m_l1_kp  l1_m q1     vdd  vdd pmos w=2 l=0.75
