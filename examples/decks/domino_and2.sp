* Footed domino AND2 with keeper — the quickstart circuit as a deck.
* Run: go run ./cmd/fcv verify examples/decks/domino_and2.sp
.subckt domino_and2 a b phi1 out
mpre dyn phi1 vdd vdd pmos w=4 l=0.75
ma   dyn a    x1  vss nmos w=6 l=0.75
mb   x1  b    x2  vss nmos w=6 l=0.75
mfoot x2 phi1 vss vss nmos w=8 l=0.75
mbn  out dyn  vss vss nmos w=2 l=0.75
mbp  out dyn  vdd vdd pmos w=4 l=0.75
mkeep dyn out vdd vdd pmos w=1 l=1.125
.ends
x1 in_a in_b phi1 y domino_and2
