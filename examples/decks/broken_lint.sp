* Deliberately defective deck: each block seeds one lint rule, on a line
* the regression tests assert. Run: go run ./cmd/fcv lint examples/decks/broken_lint.sp
.subckt broken_cell in clk out bufo
* FCV001 (error): gate net "ghost" is driven by nothing anywhere.
mflt out ghost vss vss nmos w=2 l=0.75
mfp  out in    vdd vdd pmos w=4 l=0.75
* FCV003 (error): grounded-drain NMOS gated by vdd — an always-on VDD to VSS sneak path.
msn  vdd vdd   vss vss nmos w=2 l=0.75
* FCV005 (warn): dynamic node with precharge and evaluate but no keeper.
mpre dyn clk   vdd vdd pmos w=4 l=0.75
mev  dyn in    vss vss nmos w=6 l=0.75
mbn  bufo dyn  vss vss nmos w=2 l=0.75
mbp  bufo dyn  vdd vdd pmos w=4 l=0.75
* FCV004 (warn): node "stub" touches exactly one device terminal.
mdg  stub in   vss vss nmos w=2 l=0.75
.ends
