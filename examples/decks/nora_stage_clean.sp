* Clean counterpart of nora_stage.sp: stage 2 evaluates on the buffered
* static inversion out1, the legal domino cascade. Known answer: no
* findings (exit 0) — proves FCV012 does not false-fire on properly
* composed same-phase domino.
* Run: go run ./cmd/fcv lint examples/decks/nora_stage_clean.sp
.subckt nora_stage_clean a b phi1 out1 out2
mpre1 dyn1 phi1 vdd vdd pmos w=4 l=0.75
ma1   dyn1 a    x1  vss nmos w=6 l=0.75
mb1   x1   b    x2  vss nmos w=6 l=0.75
mft1  x2   phi1 vss vss nmos w=8 l=0.75
mbn1  out1 dyn1 vss vss nmos w=2 l=0.75
mbp1  out1 dyn1 vdd vdd pmos w=4 l=0.75
mk1   dyn1 out1 vdd vdd pmos w=1 l=1.125
* stage 2: evaluate gated by out1 — static inversion between stages
mpre2 dyn2 phi1 vdd vdd pmos w=4 l=0.75
mev2  dyn2 out1 x3  vss nmos w=6 l=0.75
mft2  x3   phi1 vss vss nmos w=8 l=0.75
mbn2  out2 dyn2 vss vss nmos w=2 l=0.75
mbp2  out2 dyn2 vdd vdd pmos w=4 l=0.75
mk2   dyn2 out2 vdd vdd pmos w=1 l=1.125
.ends
