package equiv

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
	"repro/internal/rtl"
	"repro/internal/switchsim"
)

// SweepResult is one output's exhaustive simulation comparison.
type SweepResult struct {
	// Output names the compared signal/node pair ("rtl=ckt").
	Output string
	// Equivalent reports agreement over every input assignment.
	Equivalent bool
	// Assignments counts the input assignments checked (2^bits).
	Assignments int
	// Settles counts the packed settles those assignments cost — the
	// 64× amortization witness: a ≤6-input cone sweeps in one settle.
	Settles int
	// Counterexample is the first disagreeing assignment (RTL bit
	// variable → value), nil when equivalent.
	Counterexample map[string]bool
	// CircuitX marks a counterexample where the circuit settled to X
	// (or floated) rather than the complementary value — X on a swept
	// output is inequivalence, not a don't-care.
	CircuitX bool
}

// truthPlane returns input bit bi's lane pattern for assignment chunk
// ch: assignment a = ch*64+lane assigns bit bi the value a>>bi&1, so
// the first six bits cycle within a chunk word (the classic truth-table
// constants) and higher bits are constant planes selected by the chunk.
func truthPlane(bi, ch int) uint64 {
	if bi < 6 {
		// 0xAAAA..., 0xCCCC..., 0xF0F0..., 0xFF00..., ...: bit l of
		// plane bi is l>>bi&1.
		var p uint64
		for l := 0; l < 64; l++ {
			if l>>uint(bi)&1 == 1 {
				p |= 1 << uint(l)
			}
		}
		return p
	}
	if ch>>uint(bi-6)&1 == 1 {
		return ^uint64(0)
	}
	return 0
}

// SweepCombinational exhaustively compares RTL outputs against circuit
// nodes by packed switch-level simulation: every assignment of the
// bound input bits is driven through the circuit, 64 assignments per
// settle, and each settled lane is checked against the bit-blasted RTL
// function evaluated at that lane's assignment. Unlike the BDD-based
// CompareCombinational, this path exercises the real switch-level
// electrical model — charge sharing, fights and X propagation included
// — so an output that floats or settles to X under some assignment is
// reported as a counterexample. clocks, when non-empty, names circuit
// nodes pulsed low (precharge, inputs applied) then high (evaluate)
// around every chunk — the domino/dynamic sweep choreography.
func SweepCombinational(d *rtl.Design, c *netlist.Circuit, inputs, outputs []PortMap, clocks []string) ([]SweepResult, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("equiv: sweep needs at least one input")
	}
	if len(inputs) > 16 {
		return nil, fmt.Errorf("equiv: %d input bits is beyond exhaustive enumeration", len(inputs))
	}
	wanted := make([]string, 0, len(outputs))
	for _, o := range outputs {
		wanted = append(wanted, o.RTLSignal)
	}
	sort.Strings(wanted)
	rtlFns, err := RTLOutputFunctions(d, dedupe(wanted))
	if err != nil {
		return nil, err
	}
	sim, err := switchsim.NewPacked(c)
	if err != nil {
		return nil, err
	}
	for _, in := range inputs {
		if c.FindNode(in.Node) == netlist.InvalidNode {
			return nil, fmt.Errorf("equiv: unknown circuit input node %q", in.Node)
		}
	}
	for _, o := range outputs {
		if c.FindNode(o.Node) == netlist.InvalidNode {
			return nil, fmt.Errorf("equiv: unknown circuit output node %q", o.Node)
		}
		vec, ok := rtlFns[o.RTLSignal]
		if !ok || o.Bit >= len(vec) {
			return nil, fmt.Errorf("equiv: no RTL function for %s[%d]", o.RTLSignal, o.Bit)
		}
	}

	total := 1 << uint(len(inputs))
	chunks := (total + switchsim.Lanes - 1) / switchsim.Lanes
	results := make([]SweepResult, len(outputs))
	for i, o := range outputs {
		results[i] = SweepResult{
			Output:      fmt.Sprintf("%s=%s", BitVar(o.RTLSignal, o.Bit), o.Node),
			Equivalent:  true,
			Assignments: total,
			Settles:     chunks,
		}
	}

	env := make(map[string]bool, len(inputs))
	for ch := 0; ch < chunks; ch++ {
		if len(clocks) > 0 {
			for _, clk := range clocks {
				sim.SetQuietAll(clk, switchsim.Lo)
			}
		}
		for bi, in := range inputs {
			pl := truthPlane(bi, ch)
			sim.SetQuietLanes(in.Node, pl, ^pl)
		}
		sim.Settle()
		if len(clocks) > 0 {
			for _, clk := range clocks {
				sim.SetQuietAll(clk, switchsim.Hi)
			}
			sim.Settle()
		}
		valid := total - ch*switchsim.Lanes
		if valid > switchsim.Lanes {
			valid = switchsim.Lanes
		}
		for oi, o := range outputs {
			r := &results[oi]
			if !r.Equivalent {
				continue
			}
			hi, lo := sim.GetLanes(o.Node)
			fn := rtlFns[o.RTLSignal][o.Bit]
			// Build the expected plane by evaluating the RTL function at
			// each lane's assignment, then compare word-wide.
			var want uint64
			for l := 0; l < valid; l++ {
				for bi, in := range inputs {
					env[BitVar(in.RTLSignal, in.Bit)] = truthPlane(bi, ch)>>uint(l)&1 == 1
				}
				if fn.Eval(env) {
					want |= 1 << uint(l)
				}
			}
			ok := (hi &^ lo & want) | (lo &^ hi &^ want)
			bad := ^ok
			if valid < switchsim.Lanes {
				bad &= (1 << uint(valid)) - 1
			}
			if bad == 0 {
				continue
			}
			// First failing lane (lowest assignment index).
			lane := 0
			for bad&1 == 0 {
				bad >>= 1
				lane++
			}
			r.Equivalent = false
			r.Counterexample = make(map[string]bool, len(inputs))
			for bi, in := range inputs {
				r.Counterexample[BitVar(in.RTLSignal, in.Bit)] = truthPlane(bi, ch)>>uint(lane)&1 == 1
			}
			v := sim.GetLane(o.Node, lane)
			r.CircuitX = v != switchsim.Hi && v != switchsim.Lo
		}
	}
	return results, nil
}
