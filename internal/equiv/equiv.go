package equiv

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/recognize"
	"repro/internal/rtl"
)

// CombResult is one output's combinational comparison.
type CombResult struct {
	// Output names the compared signal/node pair ("rtl=ckt").
	Output string
	// Equivalent reports functional equality.
	Equivalent bool
	// Counterexample is a satisfying assignment of the miter when not
	// equivalent (input bit variable → value).
	Counterexample map[string]bool
}

// RTLOutputFunctions bit-blasts the named outputs of an FCL design into
// boolean functions of the design's input bits, composing through all
// combinational assigns. Registers, memories and CAMs are rejected —
// combinational checking only (§4.1's first method; state re-encoding
// needs SeqEquiv).
func RTLOutputFunctions(d *rtl.Design, outputs []string) (map[string][]logic.Expr, error) {
	widths := make(map[string]int)
	kinds := make(map[string]rtl.SignalKind)
	for _, s := range d.Signals {
		widths[s.Name] = s.Width
		kinds[s.Name] = s.Kind
	}
	b := &blaster{
		design: d,
		defs:   make(map[string]bitVec),
		widthOf: func(name string) (int, bool) {
			w, ok := widths[name]
			return w, ok
		},
		isState: func(name string) bool { return kinds[name] == rtl.KindReg },
	}
	// Compose assigns in their (already topological) order.
	for _, a := range d.Assigns {
		v, err := b.blast(a.Expr)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", a.Line, err)
		}
		// Mask/pad to declared width.
		w := widths[a.Target]
		for len(v) < w {
			v = append(v, logic.False)
		}
		b.defs[a.Target] = v[:w]
	}
	out := make(map[string][]logic.Expr, len(outputs))
	for _, name := range outputs {
		v, ok := b.defs[name]
		if !ok {
			if kinds[name] == rtl.KindReg {
				return nil, fmt.Errorf("equiv: %q is a register; combinational check cannot cross state", name)
			}
			return nil, fmt.Errorf("equiv: output %q has no combinational definition", name)
		}
		out[name] = v
	}
	return out, nil
}

// CircuitOutputFunction composes the recognized function of a circuit
// node transitively back to the circuit's input ports, returning a
// boolean function over input-port bit variables named BitVar(port, 0)
// (flat circuits carry one bit per node; the bitIndex maps node names to
// RTL signal bits, see CompareCombinational).
func CircuitOutputFunction(rec *recognize.Result, node netlist.NodeID) (logic.Expr, error) {
	memo := make(map[netlist.NodeID]logic.Expr)
	visiting := make(map[netlist.NodeID]bool)
	var resolve func(id netlist.NodeID) (logic.Expr, error)
	resolve = func(id netlist.NodeID) (logic.Expr, error) {
		if e, ok := memo[id]; ok {
			return e, nil
		}
		if visiting[id] {
			return nil, fmt.Errorf("equiv: feedback at node %s; combinational check cannot cross state", rec.Circuit.NodeName(id))
		}
		g := rec.GroupDriving(id)
		if g == nil {
			// Primary input (or undriven): a free variable.
			return logic.Var(rec.Circuit.NodeName(id)), nil
		}
		f := g.Func(id)
		if f == nil || f.Function == nil {
			return nil, fmt.Errorf("equiv: node %s has no clean functional abstraction (family %s)",
				rec.Circuit.NodeName(id), g.Family)
		}
		visiting[id] = true
		expr := f.Function
		for _, varName := range logic.Vars(expr) {
			vid := rec.Circuit.FindNode(varName)
			if vid == netlist.InvalidNode {
				continue
			}
			if rec.IsClock(vid) {
				// Evaluate-phase abstraction already substituted clocks.
				continue
			}
			sub, err := resolve(vid)
			if err != nil {
				return nil, err
			}
			expr = logic.Substitute(expr, varName, sub)
		}
		delete(visiting, id)
		memo[id] = expr
		return expr, nil
	}
	return resolve(node)
}

// PortMap associates an RTL signal bit with a circuit node name.
type PortMap struct {
	// RTLSignal and Bit select the RTL side.
	RTLSignal string
	Bit       int
	// Node is the circuit node name.
	Node string
}

// CompareCombinational checks RTL outputs against circuit nodes.
// inputs maps circuit input nodes onto RTL input bits; outputs pairs the
// functions to compare.
func CompareCombinational(d *rtl.Design, rec *recognize.Result, inputs, outputs []PortMap) ([]CombResult, error) {
	wanted := make([]string, 0, len(outputs))
	for _, o := range outputs {
		wanted = append(wanted, o.RTLSignal)
	}
	sort.Strings(wanted)
	wanted = dedupe(wanted)
	rtlFns, err := RTLOutputFunctions(d, wanted)
	if err != nil {
		return nil, err
	}
	var results []CombResult
	for _, o := range outputs {
		vec, ok := rtlFns[o.RTLSignal]
		if !ok || o.Bit >= len(vec) {
			return nil, fmt.Errorf("equiv: no RTL function for %s[%d]", o.RTLSignal, o.Bit)
		}
		rtlExpr := vec[o.Bit]

		nid := rec.Circuit.FindNode(o.Node)
		if nid == netlist.InvalidNode {
			return nil, fmt.Errorf("equiv: unknown circuit node %q", o.Node)
		}
		cktExpr, err := CircuitOutputFunction(rec, nid)
		if err != nil {
			return nil, err
		}
		// Rename circuit input variables (node names) into the shared
		// RTL bit-variable namespace.
		for _, in := range inputs {
			cktExpr = logic.Substitute(cktExpr, in.Node, logic.Var(BitVar(in.RTLSignal, in.Bit)))
		}
		res := CombResult{Output: fmt.Sprintf("%s=%s", BitVar(o.RTLSignal, o.Bit), o.Node)}
		res.Equivalent = logic.Equivalent(rtlExpr, cktExpr)
		if !res.Equivalent {
			m := logic.NewBDD()
			miter := m.Xor(m.FromExpr(rtlExpr), m.FromExpr(cktExpr))
			res.Counterexample = m.AnySat(miter)
		}
		results = append(results, res)
	}
	return results, nil
}

// dedupe removes adjacent duplicates from a sorted slice.
func dedupe(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// SeqResult reports a sequential equivalence run.
type SeqResult struct {
	// Equivalent is true when no reachable state pair disagrees.
	Equivalent bool
	// StatesExplored counts distinct joint states visited.
	StatesExplored int
	// Counterexample is the input sequence (one value set per cycle)
	// leading to a divergence, nil if equivalent.
	Counterexample []map[string]uint64
	// FailingOutput names the diverging output.
	FailingOutput string
}

// SeqEquiv checks two FCL designs for sequential equivalence: starting
// from both designs' reset states, it explores the joint reachable state
// space over all combinations of the shared input signals, comparing the
// shared outputs after every cycle. maxStates bounds the exploration
// (exceeding it returns an error rather than a false positive).
//
// This is the §4.1 "different state declarations and state transitions"
// scenario: the mod-5 counter vs. the 5-long one-hot ring compare equal
// here even though no combinational or structural check could align them.
func SeqEquiv(a, b *rtl.Sim, inputs []string, outputs []string, maxStates int) (*SeqResult, error) {
	if len(inputs) > 16 {
		return nil, fmt.Errorf("equiv: %d inputs is beyond exhaustive input enumeration", len(inputs))
	}
	widths := make(map[string]int)
	for _, in := range inputs {
		ia, ib := a.Design().SignalIndex(in), b.Design().SignalIndex(in)
		if ia < 0 || ib < 0 {
			return nil, fmt.Errorf("equiv: input %q missing from one design", in)
		}
		wa := a.Design().Signals[ia].Width
		wb := b.Design().Signals[ib].Width
		if wa != wb {
			return nil, fmt.Errorf("equiv: input %q width mismatch (%d vs %d)", in, wa, wb)
		}
		widths[in] = wa
	}
	totalInputBits := 0
	for _, w := range widths {
		totalInputBits += w
	}
	if totalInputBits > 16 {
		return nil, fmt.Errorf("equiv: %d input bits is beyond exhaustive enumeration", totalInputBits)
	}
	for _, out := range outputs {
		if a.Design().SignalIndex(out) < 0 || b.Design().SignalIndex(out) < 0 {
			return nil, fmt.Errorf("equiv: output %q missing from one design", out)
		}
	}

	type joint struct {
		sa, sb *rtl.State
		trace  []map[string]uint64
	}
	startA, startB := a.Snapshot(), b.Snapshot()
	queue := []joint{{startA, startB, nil}}
	visited := map[string]bool{}
	res := &SeqResult{Equivalent: true}

	// Enumerate input assignments once.
	assignments := enumerateInputs(inputs, widths, totalInputBits)

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, env := range assignments {
			if err := a.Restore(cur.sa); err != nil {
				return nil, err
			}
			if err := b.Restore(cur.sb); err != nil {
				return nil, err
			}
			for name, v := range env {
				_ = a.Set(name, v)
				_ = b.Set(name, v)
			}
			a.Cycle()
			b.Cycle()
			trace := append(append([]map[string]uint64(nil), cur.trace...), env)
			for _, out := range outputs {
				if a.Get(out) != b.Get(out) {
					res.Equivalent = false
					res.Counterexample = trace
					res.FailingOutput = out
					return res, nil
				}
			}
			key := a.StateKey() + "|" + b.StateKey()
			if visited[key] {
				continue
			}
			visited[key] = true
			res.StatesExplored++
			if res.StatesExplored > maxStates {
				return nil, fmt.Errorf("equiv: exceeded %d joint states; designs too large for explicit exploration", maxStates)
			}
			queue = append(queue, joint{a.Snapshot(), b.Snapshot(), trace})
		}
	}
	// Restore initial states so callers can reuse the sims.
	if err := a.Restore(startA); err != nil {
		return nil, err
	}
	if err := b.Restore(startB); err != nil {
		return nil, err
	}
	return res, nil
}

// enumerateInputs lists every assignment of the inputs.
func enumerateInputs(inputs []string, widths map[string]int, totalBits int) []map[string]uint64 {
	n := 1 << uint(totalBits)
	out := make([]map[string]uint64, 0, n)
	for i := 0; i < n; i++ {
		env := make(map[string]uint64, len(inputs))
		shift := 0
		for _, in := range inputs {
			w := widths[in]
			env[in] = uint64(i>>shift) & ((1 << uint(w)) - 1)
			shift += w
		}
		out = append(out, env)
	}
	return out
}
