package equiv

import (
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/recognize"
	"repro/internal/rtl"
)

// design elaborates FCL source.
func design(t *testing.T, src string) *rtl.Design {
	t.Helper()
	prog, err := rtl.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := rtl.Elaborate(prog)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// sim compiles FCL source.
func sim(t *testing.T, src string) *rtl.Sim {
	t.Helper()
	prog, err := rtl.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rtl.NewSim(prog)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// recog analyzes a circuit.
func recog(t *testing.T, c *netlist.Circuit) *recognize.Result {
	t.Helper()
	r, err := recognize.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRTLOutputFunctionsBlasting(t *testing.T) {
	d := design(t, `
module top(a[2], b[2] -> s[2], eq, lt)
wire t[2]
assign t = a ^ b
assign s = t
assign eq = a == b
assign lt = a < b
endmodule
`)
	fns, err := RTLOutputFunctions(d, []string{"s", "eq", "lt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fns["s"]) != 2 || len(fns["eq"]) != 1 {
		t.Fatalf("widths wrong: %d, %d", len(fns["s"]), len(fns["eq"]))
	}
	// Exhaustively check against integer semantics.
	for a := uint64(0); a < 4; a++ {
		for b := uint64(0); b < 4; b++ {
			env := map[string]bool{
				BitVar("a", 0): a&1 != 0, BitVar("a", 1): a&2 != 0,
				BitVar("b", 0): b&1 != 0, BitVar("b", 1): b&2 != 0,
			}
			for i := 0; i < 2; i++ {
				want := (a^b)>>uint(i)&1 == 1
				if fns["s"][i].Eval(env) != want {
					t.Errorf("s[%d] wrong at a=%d b=%d", i, a, b)
				}
			}
			if fns["eq"][0].Eval(env) != (a == b) {
				t.Errorf("eq wrong at a=%d b=%d", a, b)
			}
			if fns["lt"][0].Eval(env) != (a < b) {
				t.Errorf("lt wrong at a=%d b=%d", a, b)
			}
		}
	}
}

func TestRTLAdderBlasting(t *testing.T) {
	d := design(t, `
module top(a[3], b[3] -> s[3])
assign s = a + b
endmodule
`)
	fns, err := RTLOutputFunctions(d, []string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			env := map[string]bool{}
			for i := 0; i < 3; i++ {
				env[BitVar("a", i)] = a>>uint(i)&1 == 1
				env[BitVar("b", i)] = b>>uint(i)&1 == 1
			}
			sum := (a + b) & 7
			for i := 0; i < 3; i++ {
				if fns["s"][i].Eval(env) != (sum>>uint(i)&1 == 1) {
					t.Errorf("s[%d] wrong at a=%d b=%d", i, a, b)
				}
			}
		}
	}
}

func TestRTLOutputFunctionsRejectsState(t *testing.T) {
	d := design(t, `
module top(a -> q)
reg r @phi1
on phi1: r <= a
assign q = r
endmodule
`)
	if _, err := RTLOutputFunctions(d, []string{"q"}); err == nil ||
		!strings.Contains(err.Error(), "combinational") {
		t.Errorf("state crossing should be rejected, got %v", err)
	}
}

// nandCircuit builds y = !(a&b) in static CMOS.
func nandCircuit() *netlist.Circuit {
	c := netlist.New("nand2")
	for _, p := range []string{"a", "b", "y"} {
		c.DeclarePort(p)
	}
	c.NMOS("n1", "a", "mid", "y", 4, 0.75)
	c.NMOS("n2", "b", "vss", "mid", 4, 0.75)
	c.PMOS("p1", "a", "vdd", "y", 4, 0.75)
	c.PMOS("p2", "b", "vdd", "y", 4, 0.75)
	return c
}

func TestCompareCombinationalMatch(t *testing.T) {
	d := design(t, `
module top(a, b -> y)
assign y = !(a & b)
endmodule
`)
	rec := recog(t, nandCircuit())
	results, err := CompareCombinational(d, rec,
		[]PortMap{{RTLSignal: "a", Bit: 0, Node: "a"}, {RTLSignal: "b", Bit: 0, Node: "b"}},
		[]PortMap{{RTLSignal: "y", Bit: 0, Node: "y"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Equivalent {
		t.Errorf("NAND circuit should match RTL: %+v", results)
	}
}

func TestCompareCombinationalMismatchWithCounterexample(t *testing.T) {
	// RTL says NOR, circuit is NAND: differs at a=0,b=1 etc.
	d := design(t, `
module top(a, b -> y)
assign y = !(a | b)
endmodule
`)
	rec := recog(t, nandCircuit())
	results, err := CompareCombinational(d, rec,
		[]PortMap{{RTLSignal: "a", Bit: 0, Node: "a"}, {RTLSignal: "b", Bit: 0, Node: "b"}},
		[]PortMap{{RTLSignal: "y", Bit: 0, Node: "y"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Equivalent {
		t.Fatal("NOR vs NAND reported equivalent")
	}
	if r.Counterexample == nil {
		t.Fatal("no counterexample")
	}
	// The counterexample must actually distinguish: NOR(a,b) != NAND(a,b).
	a := r.Counterexample[BitVar("a", 0)]
	b := r.Counterexample[BitVar("b", 0)]
	if !(a || b) == !(a && b) {
		t.Errorf("counterexample a=%v b=%v does not distinguish", a, b)
	}
}

func TestCompareMultiLevelCircuit(t *testing.T) {
	// Two-level circuit: AOI + inverter computes y = a&b | c.
	c := netlist.New("aoi_buf")
	for _, p := range []string{"a", "b", "c", "y"} {
		c.DeclarePort(p)
	}
	c.NMOS("n1", "a", "x1", "w", 4, 0.75)
	c.NMOS("n2", "b", "vss", "x1", 4, 0.75)
	c.NMOS("n3", "c", "vss", "w", 4, 0.75)
	c.PMOS("p1", "a", "vdd", "x2", 6, 0.75)
	c.PMOS("p2", "b", "vdd", "x2", 6, 0.75)
	c.PMOS("p3", "c", "x2", "w", 6, 0.75)
	c.NMOS("n4", "w", "vss", "y", 2, 0.75)
	c.PMOS("p4", "w", "vdd", "y", 4, 0.75)
	d := design(t, `
module top(a, b, c -> y)
assign y = (a & b) | c
endmodule
`)
	rec := recog(t, c)
	results, err := CompareCombinational(d, rec,
		[]PortMap{
			{RTLSignal: "a", Bit: 0, Node: "a"},
			{RTLSignal: "b", Bit: 0, Node: "b"},
			{RTLSignal: "c", Bit: 0, Node: "c"},
		},
		[]PortMap{{RTLSignal: "y", Bit: 0, Node: "y"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Equivalent {
		t.Errorf("composed AOI+INV should equal a&b|c: %+v", results[0])
	}
}

// counterSrc is the paper's mod-5 counter: "an output every five events".
const counterSrc = `
module top(tick -> fire)
reg cnt[3] @phi1
on phi1 if tick: cnt <= (cnt == 4) ? 0 : cnt + 1
assign fire = tick & (cnt == 4)
endmodule
`

// ringSrc is the paper's alternative implementation: "a shift register
// with a cyclic value of five" (5-bit one-hot ring).
const ringSrc = `
module top(tick -> fire)
reg ring[5] @phi1 = 1
on phi1 if tick: ring <= {ring[3:0], ring[4]}
assign fire = tick & ring[4]
endmodule
`

func TestSeqEquivCounterVsRing(t *testing.T) {
	a := sim(t, counterSrc)
	b := sim(t, ringSrc)
	res, err := SeqEquiv(a, b, []string{"tick"}, []string{"fire"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("counter and one-hot ring must be equivalent; diverged on %s after %v",
			res.FailingOutput, res.Counterexample)
	}
	if res.StatesExplored < 5 {
		t.Errorf("explored only %d states", res.StatesExplored)
	}
}

func TestSeqEquivCatchesOffByOne(t *testing.T) {
	// A mod-4 counter is NOT a five-event counter.
	bad := strings.Replace(counterSrc, "== 4", "== 3", 2)
	a := sim(t, bad)
	b := sim(t, ringSrc)
	res, err := SeqEquiv(a, b, []string{"tick"}, []string{"fire"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("mod-4 vs mod-5 reported equivalent")
	}
	if len(res.Counterexample) == 0 || res.FailingOutput != "fire" {
		t.Errorf("bad counterexample: %+v", res)
	}
	// Replay the counterexample to confirm it is real.
	a2 := sim(t, bad)
	b2 := sim(t, ringSrc)
	for _, env := range res.Counterexample {
		for k, v := range env {
			_ = a2.Set(k, v)
			_ = b2.Set(k, v)
		}
		a2.Cycle()
		b2.Cycle()
	}
	if a2.Get("fire") == b2.Get("fire") {
		t.Error("counterexample does not reproduce the divergence")
	}
}

func TestSeqEquivRestoresInitialState(t *testing.T) {
	a := sim(t, counterSrc)
	b := sim(t, ringSrc)
	if _, err := SeqEquiv(a, b, []string{"tick"}, []string{"fire"}, 1000); err != nil {
		t.Fatal(err)
	}
	if a.Get("fire") != 0 || b.Get("fire") != 0 {
		t.Error("sims not restored after equivalence run")
	}
}

func TestSeqEquivInputValidation(t *testing.T) {
	a := sim(t, counterSrc)
	b := sim(t, ringSrc)
	if _, err := SeqEquiv(a, b, []string{"nosuch"}, []string{"fire"}, 100); err == nil {
		t.Error("unknown input accepted")
	}
	if _, err := SeqEquiv(a, b, []string{"tick"}, []string{"nosuch"}, 100); err == nil {
		t.Error("unknown output accepted")
	}
	wide := sim(t, "module top(x[32] -> y)\nreg r @phi1\non phi1: r <= redor(x)\nassign y = r\nendmodule")
	wide2 := sim(t, "module top(x[32] -> y)\nreg r @phi1\non phi1: r <= redor(x)\nassign y = r\nendmodule")
	if _, err := SeqEquiv(wide, wide2, []string{"x"}, []string{"y"}, 100); err == nil {
		t.Error("32 input bits should exceed the enumeration bound")
	}
}

func TestSeqEquivStateBound(t *testing.T) {
	// A 16-bit LFSR-ish counter pair blows the tiny state budget.
	src := `
module top(en -> out)
reg c[16] @phi1
on phi1 if en: c <= c + 1
assign out = c == 1000
endmodule
`
	a := sim(t, src)
	b := sim(t, src)
	if _, err := SeqEquiv(a, b, []string{"en"}, []string{"out"}, 50); err == nil ||
		!strings.Contains(err.Error(), "exceeded") {
		t.Errorf("state bound not enforced: %v", err)
	}
}

func TestCamRejectedCombinationally(t *testing.T) {
	d := design(t, `
module top(k[4] -> h)
cam c 4 4
assign h = c.hit(k)
endmodule
`)
	if _, err := RTLOutputFunctions(d, []string{"h"}); err == nil ||
		!strings.Contains(err.Error(), "SeqEquiv") {
		t.Errorf("CAM should be rejected combinationally: %v", err)
	}
}
