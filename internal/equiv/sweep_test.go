package equiv

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/designs"
	"repro/internal/netlist"
)

func TestTruthPlaneConstants(t *testing.T) {
	// The first six bit patterns are the classic truth-table words.
	want := []uint64{
		0xAAAAAAAAAAAAAAAA,
		0xCCCCCCCCCCCCCCCC,
		0xF0F0F0F0F0F0F0F0,
		0xFF00FF00FF00FF00,
		0xFFFF0000FFFF0000,
		0xFFFFFFFF00000000,
	}
	for bi, w := range want {
		if got := truthPlane(bi, 0); got != w {
			t.Errorf("truthPlane(%d, 0) = %#x, want %#x", bi, got, w)
		}
		if got := truthPlane(bi, 1); got != w {
			t.Errorf("truthPlane(%d, 1) = %#x, want %#x (chunk-invariant)", bi, got, w)
		}
	}
	if truthPlane(6, 0) != 0 || truthPlane(6, 1) != ^uint64(0) {
		t.Error("bit 6 should be the chunk's low selector bit")
	}
	if truthPlane(7, 1) != 0 || truthPlane(7, 2) != ^uint64(0) {
		t.Error("bit 7 should be the chunk's second selector bit")
	}
}

func TestSweepCombinationalNANDOneSettle(t *testing.T) {
	d := design(t, `
module top(a, b -> y)
assign y = !(a & b)
endmodule
`)
	results, err := SweepCombinational(d, nandCircuit(),
		[]PortMap{{RTLSignal: "a", Bit: 0, Node: "a"}, {RTLSignal: "b", Bit: 0, Node: "b"}},
		[]PortMap{{RTLSignal: "y", Bit: 0, Node: "y"}},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Equivalent {
		t.Fatalf("NAND circuit should sweep clean: %+v", results)
	}
	if results[0].Settles != 1 {
		t.Errorf("2-input sweep took %d settles, want 1", results[0].Settles)
	}
	if results[0].Assignments != 4 {
		t.Errorf("Assignments = %d, want 4", results[0].Assignments)
	}
}

func TestSweepCombinationalCatchesDefect(t *testing.T) {
	d := design(t, `
module top(a, b -> y)
assign y = !(a & b)
endmodule
`)
	bad := nandCircuit()
	for _, dev := range bad.Devices {
		if dev.Name == "n2" {
			dev.Gate = bad.Node("a") // y = !(a&a) = !a: wrong at a=1,b=0
		}
	}
	results, err := SweepCombinational(d, bad,
		[]PortMap{{RTLSignal: "a", Bit: 0, Node: "a"}, {RTLSignal: "b", Bit: 0, Node: "b"}},
		[]PortMap{{RTLSignal: "y", Bit: 0, Node: "y"}},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Equivalent {
		t.Fatal("defective NAND swept clean")
	}
	if r.Counterexample == nil {
		t.Fatal("no counterexample")
	}
	// The counterexample must actually distinguish: a=1, b=0.
	if !r.Counterexample[BitVar("a", 0)] || r.Counterexample[BitVar("b", 0)] {
		t.Errorf("wrong counterexample: %v", r.Counterexample)
	}
}

// TestSweepCombinationalDominoAdder sweeps the 3-bit domino adder (7
// input bits, 128 assignments) against the RTL adder in 2 settles, with
// the precharge/evaluate clock choreography.
func TestSweepCombinationalDominoAdder(t *testing.T) {
	// Register-free adder (AdderRTL's sreg copy would trip the
	// combinational-only bit blaster).
	d := design(t, `
module top(a[3], b[3], cin -> s[3], cout)
wire t[4]
assign t = {0, a} + {0, b} + {0, cin}
assign s = t[2:0]
assign cout = t[3]
endmodule
`)
	var inputs []PortMap
	for i := 0; i < 3; i++ {
		inputs = append(inputs,
			PortMap{RTLSignal: "a", Bit: i, Node: fmt.Sprintf("a%d", i)},
			PortMap{RTLSignal: "b", Bit: i, Node: fmt.Sprintf("b%d", i)},
		)
	}
	inputs = append(inputs, PortMap{RTLSignal: "cin", Bit: 0, Node: "cin"})
	var outputs []PortMap
	for i := 0; i < 3; i++ {
		outputs = append(outputs, PortMap{RTLSignal: "s", Bit: i, Node: fmt.Sprintf("s%d", i)})
	}
	outputs = append(outputs, PortMap{RTLSignal: "cout", Bit: 0, Node: "cout"})

	results, err := SweepCombinational(d, designs.DominoAdder(3), inputs, outputs, []string{"phi1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Equivalent {
			t.Errorf("%s: inequivalent (X=%v) at %v", r.Output, r.CircuitX, r.Counterexample)
		}
		if r.Assignments != 128 {
			t.Errorf("%s: Assignments = %d, want 128", r.Output, r.Assignments)
		}
		if r.Settles != 2 {
			t.Errorf("%s: Settles = %d, want 2 (64 lanes per settle)", r.Output, r.Settles)
		}
	}
}

// TestSweepCombinationalReportsX: an output that floats for some
// assignment is a counterexample with CircuitX set, not a don't-care.
func TestSweepCombinationalReportsX(t *testing.T) {
	d := design(t, `
module top(a, b -> y)
assign y = a
endmodule
`)
	// y follows a only while b conducts the pass gate; at b=0 it floats
	// (initially X: nothing ever drove it).
	c := netlist.New("passgate")
	for _, p := range []string{"a", "b", "y"} {
		c.DeclarePort(p)
	}
	c.NMOS("pass_n", "b", "a", "y", 4, 0.75)
	results, err := SweepCombinational(d, c,
		[]PortMap{{RTLSignal: "a", Bit: 0, Node: "a"}, {RTLSignal: "b", Bit: 0, Node: "b"}},
		[]PortMap{{RTLSignal: "y", Bit: 0, Node: "y"}},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Equivalent {
		t.Fatal("floating output swept clean")
	}
	if !r.CircuitX {
		t.Errorf("expected an X counterexample, got %v", r.Counterexample)
	}
	if r.Counterexample[BitVar("b", 0)] {
		t.Error("X should occur where the pass gate is off (b=0)")
	}
}

func TestSweepCombinationalInputBound(t *testing.T) {
	d := design(t, `
module top(a -> y)
assign y = a
endmodule
`)
	c := netlist.New("x")
	c.DeclarePort("a")
	inputs := make([]PortMap, 17)
	for i := range inputs {
		inputs[i] = PortMap{RTLSignal: "a", Bit: 0, Node: "a"}
	}
	_, err := SweepCombinational(d, c, inputs, []PortMap{{RTLSignal: "a", Bit: 0, Node: "a"}}, nil)
	if err == nil || !strings.Contains(err.Error(), "exhaustive") {
		t.Errorf("17-bit sweep should be rejected, got %v", err)
	}
}
