// Package equiv implements RTL↔circuit logical equivalence checking.
//
// §4.1: "The second method for functional correctness of circuits is
// logical equivalence checking. This does not require input stimulus,
// however a common difficulty is the amount of logical difference that
// an equivalence-checking tool can accommodate ... the designer has the
// freedom to create a circuit that behaves the same with different state
// declarations and state transitions. For instance, a counter coded in
// the Behavioral/RTL model with an output every five events may be
// implemented in the circuit as a shift register with a cyclic value of
// five."
//
// Two engines are provided:
//
//   - Combinational: FCL expressions are bit-blasted into boolean
//     functions over input bits; recognized circuit functions are
//     composed through the netlist; both sides meet in one BDD manager
//     where equivalence is a pointer comparison.
//
//   - Sequential: two FCL designs with arbitrary, differently-encoded
//     state are compared by joint reachability over the product of their
//     state spaces (exactly the counter vs. shift-register situation).
package equiv

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/rtl"
)

// bitVec is the bit-blasted form of an FCL expression: one boolean
// function per bit, LSB first.
type bitVec []logic.Expr

// width returns the vector's bit count.
func (v bitVec) width() int { return len(v) }

// BitVar names the boolean variable for a signal bit. Both the RTL and
// circuit sides of a comparison must map their inputs into this shared
// namespace.
func BitVar(signal string, bit int) string {
	return fmt.Sprintf("%s[%d]", signal, bit)
}

// blaster converts FCL expressions to bit vectors.
type blaster struct {
	design *rtl.Design
	// widthOf resolves signal widths; isState reports registers (which
	// a combinational check must not treat as free inputs).
	widthOf func(name string) (int, bool)
	isState func(name string) bool
	// defs resolves internally assigned signals to their vectors
	// (memoized composition through assigns).
	defs map[string]bitVec
}

// blast converts an expression.
func (b *blaster) blast(e rtl.Expr) (bitVec, error) {
	switch v := e.(type) {
	case *rtl.Num:
		w := v.Width
		if w == 0 {
			w = 64
			for w > 1 && v.Value>>(uint(w)-1)&1 == 0 {
				w--
			}
		}
		out := make(bitVec, w)
		for i := range out {
			out[i] = logic.Const(v.Value>>uint(i)&1 == 1)
		}
		return out, nil

	case *rtl.Ident:
		return b.signal(v.Name)

	case *rtl.Slice:
		base, err := b.signal(v.Base)
		if err != nil {
			return nil, err
		}
		if v.Hi >= len(base) {
			return nil, fmt.Errorf("equiv: slice %s[%d:%d] out of range", v.Base, v.Hi, v.Lo)
		}
		return append(bitVec(nil), base[v.Lo:v.Hi+1]...), nil

	case *rtl.Index:
		idx, ok := v.Idx.(*rtl.Num)
		if !ok {
			return nil, fmt.Errorf("equiv: dynamic index %s not supported combinationally", v)
		}
		base, err := b.signal(v.Base)
		if err != nil {
			return nil, err
		}
		if int(idx.Value) >= len(base) {
			return nil, fmt.Errorf("equiv: index %s out of range", v)
		}
		return bitVec{base[idx.Value]}, nil

	case *rtl.Unary:
		x, err := b.blast(v.X)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "~":
			out := make(bitVec, len(x))
			for i := range x {
				out[i] = logic.Not(x[i])
			}
			return out, nil
		case "!":
			return bitVec{logic.Not(orAll(x))}, nil
		case "redor":
			return bitVec{orAll(x)}, nil
		case "redand":
			terms := make([]logic.Expr, len(x))
			copy(terms, x)
			return bitVec{logic.And(terms...)}, nil
		case "redxor":
			terms := make([]logic.Expr, len(x))
			copy(terms, x)
			return bitVec{logic.Xor(terms...)}, nil
		case "-":
			// Two's complement: ~x + 1.
			inv := make(bitVec, len(x))
			for i := range x {
				inv[i] = logic.Not(x[i])
			}
			one := make(bitVec, len(x))
			one[0] = logic.True
			for i := 1; i < len(one); i++ {
				one[i] = logic.False
			}
			sum, _ := addVec(inv, one)
			return sum, nil
		}
		return nil, fmt.Errorf("equiv: unknown unary %q", v.Op)

	case *rtl.Binary:
		l, err := b.blast(v.L)
		if err != nil {
			return nil, err
		}
		r, err := b.blast(v.R)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "&", "|", "^":
			l, r = padPair(l, r)
			out := make(bitVec, len(l))
			for i := range l {
				switch v.Op {
				case "&":
					out[i] = logic.And(l[i], r[i])
				case "|":
					out[i] = logic.Or(l[i], r[i])
				default:
					out[i] = logic.Xor(l[i], r[i])
				}
			}
			return out, nil
		case "+":
			l, r = padPair(l, r)
			sum, _ := addVec(l, r)
			return sum, nil
		case "-":
			l, r = padPair(l, r)
			// l - r = l + ~r + 1.
			inv := make(bitVec, len(r))
			for i := range r {
				inv[i] = logic.Not(r[i])
			}
			sum, _ := addVecCarry(l, inv, logic.True)
			return sum, nil
		case "==", "!=":
			l, r = padPair(l, r)
			var diffs []logic.Expr
			for i := range l {
				diffs = append(diffs, logic.Xor(l[i], r[i]))
			}
			ne := logic.Or(diffs...)
			if v.Op == "==" {
				return bitVec{logic.Not(ne)}, nil
			}
			return bitVec{ne}, nil
		case "<", "<=", ">", ">=":
			l, r = padPair(l, r)
			lt := lessThan(l, r)
			switch v.Op {
			case "<":
				return bitVec{lt}, nil
			case ">=":
				return bitVec{logic.Not(lt)}, nil
			case ">":
				return bitVec{lessThan(r, l)}, nil
			default:
				return bitVec{logic.Not(lessThan(r, l))}, nil
			}
		case "<<", ">>":
			n, ok := v.R.(*rtl.Num)
			if !ok {
				return nil, fmt.Errorf("equiv: only constant shifts supported, got %s", v)
			}
			k := int(n.Value)
			out := make(bitVec, len(l))
			for i := range out {
				src := i - k
				if v.Op == ">>" {
					src = i + k
				}
				if src >= 0 && src < len(l) {
					out[i] = l[src]
				} else {
					out[i] = logic.False
				}
			}
			return out, nil
		}
		return nil, fmt.Errorf("equiv: unknown operator %q", v.Op)

	case *rtl.Cond:
		c, err := b.blast(v.C)
		if err != nil {
			return nil, err
		}
		cond := orAll(c)
		tv, err := b.blast(v.T)
		if err != nil {
			return nil, err
		}
		fv, err := b.blast(v.F)
		if err != nil {
			return nil, err
		}
		tv, fv = padPair(tv, fv)
		out := make(bitVec, len(tv))
		for i := range tv {
			out[i] = logic.Ite(cond, tv[i], fv[i])
		}
		return out, nil

	case *rtl.Concat:
		var out bitVec
		// Concat lists MSB-first; assemble LSB-first.
		for i := len(v.Parts) - 1; i >= 0; i-- {
			p, err := b.blast(v.Parts[i])
			if err != nil {
				return nil, err
			}
			out = append(out, p...)
		}
		return out, nil

	case *rtl.CamOp:
		return nil, fmt.Errorf("equiv: CAM operations are sequential state; use SeqEquiv")
	}
	return nil, fmt.Errorf("equiv: unknown expression %T", e)
}

// signal resolves a signal to its bit vector: a memoized definition if
// internally assigned, else fresh input variables.
func (b *blaster) signal(name string) (bitVec, error) {
	if v, ok := b.defs[name]; ok {
		return v, nil
	}
	if b.isState != nil && b.isState(name) {
		return nil, fmt.Errorf("equiv: %q is a register; combinational check cannot cross state", name)
	}
	w, ok := b.widthOf(name)
	if !ok {
		return nil, fmt.Errorf("equiv: unknown signal %q", name)
	}
	out := make(bitVec, w)
	for i := range out {
		out[i] = logic.Var(BitVar(name, i))
	}
	return out, nil
}

// orAll reduces a vector to a single "non-zero" bit.
func orAll(v bitVec) logic.Expr {
	terms := make([]logic.Expr, len(v))
	copy(terms, v)
	return logic.Or(terms...)
}

// padPair zero-extends the shorter vector.
func padPair(a, c bitVec) (bitVec, bitVec) {
	for len(a) < len(c) {
		a = append(a, logic.False)
	}
	for len(c) < len(a) {
		c = append(c, logic.False)
	}
	return a, c
}

// addVec is ripple-carry addition, discarding the final carry (masked
// arithmetic, like the simulator).
func addVec(a, c bitVec) (bitVec, logic.Expr) {
	return addVecCarry(a, c, logic.False)
}

// addVecCarry adds with an initial carry.
func addVecCarry(a, c bitVec, carry logic.Expr) (bitVec, logic.Expr) {
	out := make(bitVec, len(a))
	for i := range a {
		out[i] = logic.Xor(a[i], c[i], carry)
		carry = logic.Or(logic.And(a[i], c[i]), logic.And(carry, logic.Xor(a[i], c[i])))
	}
	return out, carry
}

// lessThan builds the unsigned a < b predicate.
func lessThan(a, c bitVec) logic.Expr {
	// From MSB down: lt = (¬a_i & b_i) | (a_i≡b_i) & lt_below.
	lt := logic.Expr(logic.False)
	for i := 0; i < len(a); i++ {
		eq := logic.Not(logic.Xor(a[i], c[i]))
		lt = logic.Or(logic.And(logic.Not(a[i]), c[i]), logic.And(eq, lt))
	}
	return lt
}
