// Package lint is a rule-based static analyzer for transistor netlists —
// the front gate of the CBV pipeline.
//
// The paper's methodology (§2.3, §4.2) is built on tools that deduce
// constraints "automatically and conservatively … from the topology and
// context of the actual transistors", filter the circuits that are fine
// and report the ones that might not be. Simulation and timing can only
// do that for circuits that are structurally well formed; this package
// catches the defects that make them meaningless before they run:
// floating gates, nodes with no DC path to a rail, always-on supply
// sneak paths, keeperless dynamic nodes, dangling terminals.
//
// Every rule has a stable ID (FCV001…), a fixed default severity, and is
// deduced purely from netlist structure plus recognition results — no
// designer annotations required. Diagnostics carry cell, subject and the
// SPICE deck file:line of a representative element, render as text, JSON
// or SARIF 2.1.0, and can be waived individually for intentional
// violations (see Waivers).
package lint

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/netlist"
	"repro/internal/recognize"
)

// Severity classifies a diagnostic.
type Severity int

// Severities, ordered so higher is worse.
const (
	// Info is advisory: worth knowing, never wrong by itself.
	Info Severity = iota
	// Warn is a structure that works only under assumptions the linter
	// cannot verify (threshold drops, keeperless storage, huge fanout).
	Warn
	// Error is a structural defect: the circuit cannot behave as a
	// digital network (floating input, undrivable node, DC short).
	Error
)

// String returns the severity name.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warn:
		return "warn"
	default:
		return "info"
	}
}

// Diag is one finding of one rule on one circuit object.
type Diag struct {
	// Rule is the stable rule ID ("FCV003").
	Rule string
	// Severity classifies the finding.
	Severity Severity
	// Cell names the circuit the finding is in.
	Cell string
	// Subject names the node, device or cell concerned — the handle a
	// waiver matches against.
	Subject string
	// Loc is the deck position of a representative element (zero for
	// programmatically built circuits).
	Loc netlist.Loc
	// Message is the human-readable explanation.
	Message string
	// Waived reports that a waiver matched; waived findings are kept in
	// reports (annotated) but never drive exit codes or the Verify gate.
	Waived bool
	// WaiverNote is the justification from the matching waiver entry.
	WaiverNote string
	// ID is the stable finding identity ("lint/<rule>@<16-hex>"):
	// rename-invariant because the hex half is the subject's structural
	// signature (netlist.Signatures). Structurally symmetric repeats
	// carry "#n" suffixes in report order.
	ID string
}

// Rule is one static check over an analyzed circuit.
type Rule interface {
	// ID is the stable identifier (FCVnnn).
	ID() string
	// Severity is the rule's default severity (individual diagnostics
	// may downgrade/upgrade, e.g. absurd-vs-nonpositive geometry).
	Severity() Severity
	// Title is a one-line description for rule tables and SARIF
	// metadata.
	Title() string
	// Check runs the rule, emitting diagnostics through the context.
	Check(ctx *Context)
}

// Options configures a lint run.
type Options struct {
	// Rules selects the rule set; nil means DefaultRules().
	Rules []Rule
	// Waivers suppresses matching findings (nil: nothing waived).
	Waivers *Waivers
	// FanoutLimit is the FCV010 gate-fanout ceiling (0: default 64).
	FanoutLimit int
	// MaxWL and MinWL bound the FCV007 aspect-ratio sanity window
	// (0: defaults 500 and 0.02).
	MaxWL, MinWL float64
	// MaxWUm and MaxLUm bound single-device geometry in µm
	// (0: defaults 1000 and 100).
	MaxWUm, MaxLUm float64
	// RatioedMinStrength is the FCV016 margin: the weakest switched
	// path must beat the strongest always-on load path by this factor
	// (0: default 2).
	RatioedMinStrength float64
	// ChargeShareRatio is the FCV015 suppression threshold: with
	// explicit node capacitances, internal/output capacitance below
	// this ratio is harmless (0: default 0.33).
	ChargeShareRatio float64
}

func (o Options) fanoutLimit() int            { return defInt(o.FanoutLimit, 64) }
func (o Options) maxWL() float64              { return defF(o.MaxWL, 500) }
func (o Options) minWL() float64              { return defF(o.MinWL, 0.02) }
func (o Options) maxW() float64               { return defF(o.MaxWUm, 1000) }
func (o Options) maxL() float64               { return defF(o.MaxLUm, 100) }
func (o Options) ratioedMinStrength() float64 { return defF(o.RatioedMinStrength, 2) }
func (o Options) chargeShareRatio() float64   { return defF(o.ChargeShareRatio, 0.33) }

func defInt(v, d int) int {
	if v <= 0 {
		return d
	}
	return v
}

func defF(v, d float64) float64 {
	if v <= 0 {
		return d
	}
	return v
}

// Context is the per-circuit view rules run against. It carries the
// recognition result plus structural indexes shared by the rules.
type Context struct {
	// Circuit is the flat circuit under analysis.
	Circuit *netlist.Circuit
	// Rec is the recognition result (CCCs, families, clocks, drivers).
	Rec *recognize.Result
	// Opt is the run configuration.
	Opt Options

	// gateReaders maps a node to the devices reading it as a gate,
	// in device order.
	gateReaders map[netlist.NodeID][]*netlist.Device
	// channelRefs counts source/drain terminal references per node.
	channelRefs map[netlist.NodeID]int
	// resistorsOn maps a node to attached resistors.
	resistorsOn map[netlist.NodeID][]*netlist.Resistor

	// df is the lazily built dataflow substrate (phase model, drive
	// paths, dynamic nodes, latch transparency) shared by FCV011+.
	df *dataflow.Analysis

	diags *[]Diag
}

// Dataflow returns the circuit's dataflow analysis, building it on
// first use so rule sets that exclude the phase family pay nothing.
func (ctx *Context) Dataflow() *dataflow.Analysis {
	if ctx.df == nil {
		ctx.df = dataflow.Analyze(ctx.Rec)
	}
	return ctx.df
}

// newContext builds the shared indexes for one circuit.
func newContext(c *netlist.Circuit, rec *recognize.Result, opt Options, sink *[]Diag) *Context {
	ctx := &Context{
		Circuit:     c,
		Rec:         rec,
		Opt:         opt,
		gateReaders: make(map[netlist.NodeID][]*netlist.Device),
		channelRefs: make(map[netlist.NodeID]int),
		resistorsOn: make(map[netlist.NodeID][]*netlist.Resistor),
		diags:       sink,
	}
	for _, d := range c.Devices {
		ctx.gateReaders[d.Gate] = append(ctx.gateReaders[d.Gate], d)
		ctx.channelRefs[d.Source]++
		ctx.channelRefs[d.Drain]++
	}
	for _, r := range c.Resistors {
		ctx.resistorsOn[r.A] = append(ctx.resistorsOn[r.A], r)
		ctx.resistorsOn[r.B] = append(ctx.resistorsOn[r.B], r)
	}
	return ctx
}

// Report emits a finding. The rule fills Rule/Severity via the typed
// helpers on rule below; direct callers must set them.
func (ctx *Context) Report(d Diag) {
	d.Cell = ctx.Circuit.Name
	*ctx.diags = append(*ctx.diags, d)
}

// nodeLoc returns the deck location of a representative device on the
// node: the first device reading it as a gate, else the first device
// channel-connected to it, else the zero Loc.
func (ctx *Context) nodeLoc(id netlist.NodeID) netlist.Loc {
	if devs := ctx.gateReaders[id]; len(devs) > 0 {
		return devs[0].Loc
	}
	for _, d := range ctx.Circuit.Devices {
		if d.Source == id || d.Drain == id {
			return d.Loc
		}
	}
	return netlist.Loc{}
}

// Report is the outcome of linting one circuit or a whole library.
type Report struct {
	// Diags are the findings in deterministic order: by cell, rule,
	// subject, then location.
	Diags []Diag
}

// sortDiags establishes the deterministic report order: by cell, then
// deck position, then rule, then the stable finding ID. Position-first
// ordering keeps multi-rule output stable (the old rule-first order was
// only deterministic within one rule) and reads like a compiler's
// per-file diagnostics.
func sortDiags(ds []Diag) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		if a.Loc.File != b.Loc.File {
			return a.Loc.File < b.Loc.File
		}
		if a.Loc.Line != b.Loc.Line {
			return a.Loc.Line < b.Loc.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		return a.Message < b.Message
	})
}

// Counts returns the number of unwaived findings per severity.
func (r *Report) Counts() (errs, warns, infos int) {
	for _, d := range r.Diags {
		if d.Waived {
			continue
		}
		switch d.Severity {
		case Error:
			errs++
		case Warn:
			warns++
		default:
			infos++
		}
	}
	return
}

// HasErrors reports whether any unwaived error-severity finding exists —
// the condition that drives nonzero exit codes and the Verify gate.
func (r *Report) HasErrors() bool {
	e, _, _ := r.Counts()
	return e > 0
}

// ByRule returns unwaived finding counts keyed by rule ID.
func (r *Report) ByRule() map[string]int {
	m := make(map[string]int)
	for _, d := range r.Diags {
		if !d.Waived {
			m[d.Rule]++
		}
	}
	return m
}

// Run lints one flat circuit (instances must be flattened away, as for
// recognition). The circuit must pass netlist.Validate — lint analyzes
// structure, it does not repair it.
func Run(c *netlist.Circuit, opt Options) (*Report, error) {
	rec, err := recognize.Analyze(c)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	return RunRecognized(rec, opt), nil
}

// RunRecognized lints a circuit whose recognition result the caller
// already has (the CBV pipeline computes it anyway).
func RunRecognized(rec *recognize.Result, opt Options) *Report {
	rules := opt.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	var diags []Diag
	ctx := newContext(rec.Circuit, rec, opt, &diags)
	for _, rule := range rules {
		rule.Check(ctx)
	}
	applyWaivers(diags, opt.Waivers)
	// Sort before attaching IDs (so "#n" disambiguation of symmetric
	// subjects follows report order), then re-sort: the IDs now break
	// any remaining ties, making the order a pure function of content.
	sortDiags(diags)
	attachIDs(diags, rec.Circuit)
	sortDiags(diags)
	return &Report{Diags: diags}
}

// attachIDs fills each diagnostic's stable rename-invariant identity
// after sorting, so "#n" disambiguation of structurally symmetric
// subjects follows the deterministic report order.
func attachIDs(diags []Diag, c *netlist.Circuit) {
	if len(diags) == 0 {
		return
	}
	sigs := netlist.ComputeSignatures(c)
	ids := make([]string, len(diags))
	for i, d := range diags {
		ids[i] = sigs.FindingID("lint", d.Rule, d.Subject)
	}
	netlist.DisambiguateIDs(ids)
	for i := range diags {
		diags[i].ID = ids[i]
	}
}

// applyWaivers marks matching diagnostics as waived.
func applyWaivers(ds []Diag, w *Waivers) {
	if w == nil {
		return
	}
	for i := range ds {
		if entry := w.match(&ds[i]); entry != nil {
			ds[i].Waived = true
			ds[i].WaiverNote = entry.Note
		}
	}
}
