package lint

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/designs"
	"repro/internal/netlist"
)

// TestDesignsCorpusLintClean runs every shipped design generator through
// the full rule set. The generators are the repo's reference circuits;
// they must stay lint-clean so "fcv lint is quiet" means something. The
// one deliberate exception is the racy pipeline, whose entire point is
// the same-phase latch race — it must produce exactly the FCV013
// findings (one per adjacent latch pair) and nothing else.
func TestDesignsCorpusLintClean(t *testing.T) {
	corpus := map[string]*netlist.Circuit{
		"inverter_chain":   designs.InverterChain(8),
		"domino_adder":     designs.DominoAdder(8),
		"latch_pipeline":   designs.LatchPipeline(6, false),
		"racy_pipeline":    designs.LatchPipeline(4, true),
		"sram_array":       designs.SRAMArray(4, 4, 0.09),
		"pass_mux":         designs.PassMux(4),
		"register_file":    designs.RegisterFile(2, 4),
		"dcvsl_comparator": designs.DCVSLComparator(4),
	}
	for name, c := range corpus {
		rep, err := Run(c, Options{})
		if err != nil {
			t.Errorf("%s: lint failed: %v", name, err)
			continue
		}
		races := 0
		for _, d := range rep.Diags {
			if name == "racy_pipeline" && d.Rule == "FCV013" {
				races++
				continue
			}
			t.Errorf("%s: unexpected finding: %s %s %s: %s", name, d.Severity, d.Rule, d.Subject, d.Message)
		}
		if name == "racy_pipeline" && races != 3 {
			t.Errorf("racy_pipeline: FCV013 findings = %d, want 3 (one per adjacent same-phase latch pair)", races)
		}
	}
}

// corpusLibrary builds a multi-cell library with a hierarchy for the
// parallel-lint tests: leaf cells, a mid cell instantiating them, and an
// orphan nothing reaches.
func corpusLibrary(t *testing.T) *netlist.Library {
	t.Helper()
	lib := netlist.NewLibrary()
	for i := 0; i < 6; i++ {
		inv := netlist.New(fmt.Sprintf("inv%d", i))
		inv.DeclarePort("a")
		inv.DeclarePort("y")
		designs.AddInverter(inv, fmt.Sprintf("i%d", i), "a", "y", 2, 4)
		lib.Add(inv)
	}
	mid := netlist.New("mid")
	mid.DeclarePort("a")
	mid.DeclarePort("y")
	for i := 0; i < 4; i++ {
		mid.AddInstance(fmt.Sprintf("x%d", i), fmt.Sprintf("inv%d", i),
			fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
	}
	mid.AddInstance("xin", "inv4", "a", "n0")
	mid.AddInstance("xout", "inv5", "n4", "y")
	lib.Add(mid)
	orphan := netlist.New("orphan")
	orphan.DeclarePort("a")
	orphan.DeclarePort("y")
	designs.AddInverter(orphan, "i", "a", "y", 2, 4)
	lib.Add(orphan)
	return lib
}

// TestLintLibraryDeterministic runs the parallel driver repeatedly with
// different worker counts; the rendered output must be byte-identical.
func TestLintLibraryDeterministic(t *testing.T) {
	lib := corpusLibrary(t)
	var want []byte
	for run := 0; run < 4; run++ {
		for _, workers := range []int{1, 2, 8} {
			rep, err := LintLibrary(lib, LibraryOptions{
				Options: Options{},
				Roots:   []string{"mid"},
				Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := []byte(rep.Text())
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("run %d workers %d: output differs:\n--- first\n%s--- now\n%s",
					run, workers, want, got)
			}
		}
	}
}

// TestUnusedCellRule checks FCV008: with a root, the orphan cell is
// reported; with no roots every uninstantiated cell is its own entry
// point and the rule stays silent.
func TestUnusedCellRule(t *testing.T) {
	lib := corpusLibrary(t)
	rep, err := LintLibrary(lib, LibraryOptions{Roots: []string{"mid"}})
	if err != nil {
		t.Fatal(err)
	}
	var unused []string
	for _, d := range rep.Diags {
		if d.Rule == UnusedCellRuleID {
			if d.Severity != Info {
				t.Errorf("FCV008 severity = %v, want info", d.Severity)
			}
			unused = append(unused, d.Subject)
		}
	}
	if len(unused) != 1 || unused[0] != "orphan" {
		t.Errorf("FCV008 subjects = %v, want [orphan]", unused)
	}

	rep, err = LintLibrary(lib, LibraryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Diags {
		if d.Rule == UnusedCellRuleID {
			t.Errorf("FCV008 with no roots reported %s", d.Subject)
		}
	}
}
