package lint

import (
	"strings"
	"testing"

	"repro/internal/designs"
	"repro/internal/netlist"
)

// The FCV011–FCV018 fixtures live here as deck strings so each rule has
// a firing circuit and a clean near-miss, and so the waiver and
// rename-invariance sweeps below can iterate the whole family.

const fcv011Deck = `
.subckt c2bad in phi1 phi1_n out
mp1 n1 in vdd vdd pmos w=4 l=0.75
mp2 out phi1 n1 vdd pmos w=4 l=0.75
mn1 out phi1 n2 vss nmos w=2 l=0.75
mn2 n2 in vss vss nmos w=2 l=0.75
.ends
`

const fcv011Clean = `
.subckt c2ok in phi1 phi1_n out
mp1 n1 in vdd vdd pmos w=4 l=0.75
mp2 out phi1_n n1 vdd pmos w=4 l=0.75
mn1 out phi1 n2 vss nmos w=2 l=0.75
mn2 n2 in vss vss nmos w=2 l=0.75
.ends
`

const fcv012Deck = `
.subckt norabad in phi1 out2
mpre1 dyn1 phi1 vdd vdd pmos w=4 l=0.75
mev1 dyn1 in n1 vss nmos w=2 l=0.75
mft1 n1 phi1 vss vss nmos w=2 l=0.75
mi1n out1 dyn1 vss vss nmos w=2 l=0.75
mi1p out1 dyn1 vdd vdd pmos w=4 l=0.75
mk1 dyn1 out1 vdd vdd pmos w=1 l=0.75
mpre2 dyn2 phi1 vdd vdd pmos w=4 l=0.75
mev2 dyn2 dyn1 n2 vss nmos w=2 l=0.75
mft2 n2 phi1 vss vss nmos w=2 l=0.75
mi2n out2 dyn2 vss vss nmos w=2 l=0.75
mi2p out2 dyn2 vdd vdd pmos w=4 l=0.75
mk2 dyn2 out2 vdd vdd pmos w=1 l=0.75
.ends
`

// fcv012Clean is the same pipeline with the static inversion in the
// signal path (mev2 listens to out1, the inverted stage-1 output).
var fcv012Clean = strings.Replace(
	strings.Replace(fcv012Deck, "norabad", "noraok", 1),
	"mev2 dyn2 dyn1 n2", "mev2 dyn2 out1 n2", 1)

const fcv014Deck = `
.subckt fight in1 in2 phi1 phi1_n bus
mn1 bus in1 vss vss nmos w=2 l=0.75
mp1 bus in1 vdd vdd pmos w=4 l=0.75
mp2 t1 in2 vdd vdd pmos w=4 l=0.75
mp3 bus phi1_n t1 vdd pmos w=4 l=0.75
mn2 bus phi1 t2 vss nmos w=2 l=0.75
mn3 t2 in2 vss vss nmos w=2 l=0.75
.ends
`

const fcv015Deck = `
.subckt cshare a b phi1 out
mpre dyn phi1 vdd vdd pmos w=4 l=0.75
mev1 dyn a n1 vss nmos w=2 l=0.75
mev2 n1 b n2 vss nmos w=2 l=0.75
mft n2 phi1 vss vss nmos w=2 l=0.75
min out dyn vss vss nmos w=2 l=0.75
mip out dyn vdd vdd pmos w=4 l=0.75
.ends
`

// fcv015Keeper adds the keeper; fcv015SmallCap keeps the node
// keeperless but declares capacitances that make the exposure harmless.
var fcv015Keeper = strings.Replace(
	strings.Replace(fcv015Deck, "cshare", "cskeep", 1),
	".ends", "mk dyn out vdd vdd pmos w=1 l=0.75\n.ends", 1)

var fcv015SmallCap = strings.Replace(
	strings.Replace(fcv015Deck, "cshare", "cscap", 1),
	".ends", "c1 dyn vss 100f\nc2 n1 vss 1f\n.ends", 1)

const fcv016Deck = `
.subckt pnbad a y
mload y vss vdd vdd pmos w=4 l=0.75
mdrv y a vss vss nmos w=1 l=0.75
.ends
`

var fcv016Clean = strings.Replace(
	strings.Replace(fcv016Deck, "pnbad", "pnok", 1),
	"mdrv y a vss vss nmos w=1", "mdrv y a vss vss nmos w=8", 1)

const fcv017Deck = `
.subckt pfloat in phi1 out
mpass y phi1 in vss nmos w=2 l=0.75
min out y vss vss nmos w=2 l=0.75
mip out y vdd vdd pmos w=4 l=0.75
.ends
`

const fcv017Clean = `
.subckt platch in phi1 phi1_n out
mtn m phi1 in vss nmos w=2 l=0.75
mtp m phi1_n in vdd pmos w=4 l=0.75
min out m vss vss nmos w=2 l=0.75
mip out m vdd vdd pmos w=4 l=0.75
mfn m out vss vss nmos w=1 l=0.75
mfp m out vdd vdd pmos w=1 l=0.75
.ends
`

const fcv018Deck = `
.subckt dead out
moff g vss vss vss nmos w=2 l=0.75
mdn out g vss vss nmos w=2 l=0.75
mdp out g vdd vdd pmos w=4 l=0.75
.ends
`

const fcv018Clean = `
.subckt alive a out
moff g a vss vss nmos w=2 l=0.75
mdn out g vss vss nmos w=2 l=0.75
mdp out g vdd vdd pmos w=4 l=0.75
.ends
`

func TestClockedStageDiscipline(t *testing.T) {
	rep := lintDeck(t, fcv011Deck, "c2bad")
	ds := findRule(rep, "FCV011")
	if len(ds) != 1 || ds[0].Subject != "out" {
		t.Fatalf("FCV011 = %+v, want exactly one on out", ds)
	}
	if !strings.Contains(ds[0].Message, "phi1=0") || !strings.Contains(ds[0].Message, "phi1=1") {
		t.Errorf("message lacks the phase witnesses: %s", ds[0].Message)
	}
	if ds := findRule(lintDeck(t, fcv011Clean, "c2ok"), "FCV011"); len(ds) != 0 {
		t.Errorf("clean C²MOS stage fired FCV011: %+v", ds)
	}
}

func TestNoraDiscipline(t *testing.T) {
	rep := lintDeck(t, fcv012Deck, "norabad")
	ds := findRule(rep, "FCV012")
	if len(ds) != 1 || ds[0].Subject != "dyn1" {
		t.Fatalf("FCV012 = %+v, want exactly one on dyn1", ds)
	}
	if !strings.Contains(ds[0].Message, "mev2") {
		t.Errorf("message does not name the receiving device: %s", ds[0].Message)
	}
	if ds := findRule(lintDeck(t, fcv012Clean, "noraok"), "FCV012"); len(ds) != 0 {
		t.Errorf("domino chain with static inversion fired FCV012: %+v", ds)
	}
}

func TestLatchRaceRule(t *testing.T) {
	racy, err := Run(designs.LatchPipeline(4, true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds := findRule(racy, "FCV013")
	if len(ds) != 3 {
		t.Fatalf("FCV013 on racy pipeline = %d, want 3 (adjacent latch pairs): %+v", len(ds), ds)
	}
	for _, d := range ds {
		if !strings.Contains(d.Message, "transparent") {
			t.Errorf("message lacks transparency context: %s", d.Message)
		}
	}
	clean, err := Run(designs.LatchPipeline(4, false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds := findRule(clean, "FCV013"); len(ds) != 0 {
		t.Errorf("two-phase pipeline fired FCV013: %+v", ds)
	}
}

func TestPhaseFight(t *testing.T) {
	rep := lintDeck(t, fcv014Deck, "fight")
	ds := findRule(rep, "FCV014")
	if len(ds) != 1 || ds[0].Subject != "bus" {
		t.Fatalf("FCV014 = %+v, want exactly one on bus", ds)
	}
	if !strings.Contains(ds[0].Message, "phi1=1") {
		t.Errorf("message lacks the enabling phase: %s", ds[0].Message)
	}
}

func TestChargeSharingRule(t *testing.T) {
	ds := findRule(lintDeck(t, fcv015Deck, "cshare"), "FCV015")
	if len(ds) != 1 || ds[0].Subject != "dyn" {
		t.Fatalf("FCV015 = %+v, want exactly one on dyn", ds)
	}
	if !strings.Contains(ds[0].Message, "n1") {
		t.Errorf("message does not name the internal node: %s", ds[0].Message)
	}
	if ds := findRule(lintDeck(t, fcv015Keeper, "cskeep"), "FCV015"); len(ds) != 0 {
		t.Errorf("keepered domino fired FCV015: %+v", ds)
	}
	if ds := findRule(lintDeck(t, fcv015SmallCap, "cscap"), "FCV015"); len(ds) != 0 {
		t.Errorf("small internal/output cap ratio fired FCV015: %+v", ds)
	}
	// Tightening the ratio threshold resurrects the finding — the knob
	// is live.
	rep, err := Run(parseCell(t, fcv015SmallCap, "cscap"), Options{ChargeShareRatio: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if ds := findRule(rep, "FCV015"); len(ds) != 1 {
		t.Errorf("ratio 0.001 should fire FCV015: %+v", ds)
	}
}

func TestRatioedStrengthRule(t *testing.T) {
	ds := findRule(lintDeck(t, fcv016Deck, "pnbad"), "FCV016")
	if len(ds) != 1 || ds[0].Subject != "y" {
		t.Fatalf("FCV016 = %+v, want exactly one on y", ds)
	}
	if ds := findRule(lintDeck(t, fcv016Clean, "pnok"), "FCV016"); len(ds) != 0 {
		t.Errorf("strongly-ratioed pseudo-nMOS fired FCV016: %+v", ds)
	}
	// A stricter margin flips the strong driver back into a finding.
	rep, err := Run(parseCell(t, fcv016Clean, "pnok"), Options{RatioedMinStrength: 10})
	if err != nil {
		t.Fatal(err)
	}
	if ds := findRule(rep, "FCV016"); len(ds) != 1 {
		t.Errorf("margin 10 should fire FCV016 on the strong driver: %+v", ds)
	}
}

func TestPhaseFloatRule(t *testing.T) {
	ds := findRule(lintDeck(t, fcv017Deck, "pfloat"), "FCV017")
	if len(ds) != 1 || ds[0].Subject != "y" {
		t.Fatalf("FCV017 = %+v, want exactly one on y", ds)
	}
	if !strings.Contains(ds[0].Message, "floats") {
		t.Errorf("message = %s", ds[0].Message)
	}
	if ds := findRule(lintDeck(t, fcv017Clean, "platch"), "FCV017"); len(ds) != 0 {
		t.Errorf("recognized latch fired FCV017: %+v", ds)
	}
}

func TestDeadDriversRule(t *testing.T) {
	rep := lintDeck(t, fcv018Deck, "dead")
	ds := findRule(rep, "FCV018")
	if len(ds) != 1 || ds[0].Subject != "g" {
		t.Fatalf("FCV018 = %+v, want exactly one on g", ds)
	}
	// FCV002 must stay quiet: a DC path exists, it just never conducts.
	if ds := findRule(rep, "FCV002"); len(ds) != 0 {
		t.Errorf("FCV002 double-reported the dead driver: %+v", ds)
	}
	if ds := findRule(lintDeck(t, fcv018Clean, "alive"), "FCV018"); len(ds) != 0 {
		t.Errorf("live driver fired FCV018: %+v", ds)
	}
}

// phaseRuleFixtures maps each new rule to a deck that fires it (FCV013
// uses a generated circuit and is handled separately where needed).
var phaseRuleFixtures = []struct {
	rule, deck, cell string
}{
	{"FCV011", fcv011Deck, "c2bad"},
	{"FCV012", fcv012Deck, "norabad"},
	{"FCV014", fcv014Deck, "fight"},
	{"FCV015", fcv015Deck, "cshare"},
	{"FCV016", fcv016Deck, "pnbad"},
	{"FCV017", fcv017Deck, "pfloat"},
	{"FCV018", fcv018Deck, "dead"},
}

// TestPhaseRuleWaivers proves waiver matching covers every new rule:
// a subject-specific waiver flips the finding to Waived (keeping it in
// the report), and waived errors stop driving HasErrors.
func TestPhaseRuleWaivers(t *testing.T) {
	for _, fx := range phaseRuleFixtures {
		base := lintDeck(t, fx.deck, fx.cell)
		subject := findRule(base, fx.rule)[0].Subject
		w, err := ParseWaivers(strings.NewReader(
			fx.rule + " " + fx.cell + " " + subject + " reviewed and accepted\n"))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(parseCell(t, fx.deck, fx.cell), Options{Waivers: w})
		if err != nil {
			t.Fatal(err)
		}
		ds := findRule(rep, fx.rule)
		if len(ds) == 0 {
			t.Errorf("%s: waived finding vanished from the report", fx.rule)
			continue
		}
		for _, d := range ds {
			if !d.Waived || d.WaiverNote != "reviewed and accepted" {
				t.Errorf("%s: diag not waived: %+v", fx.rule, d)
			}
		}
		if len(w.Unused()) != 0 {
			t.Errorf("%s: waiver reported unused", fx.rule)
		}
	}
	// The racy pipeline's FCV013 findings waive by wildcard too.
	w, err := ParseWaivers(strings.NewReader("FCV013 racy_pipe* * accepted race\n"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(designs.LatchPipeline(4, true), Options{Waivers: w})
	if err != nil {
		t.Fatal(err)
	}
	ds := findRule(rep, "FCV013")
	if len(ds) != 3 {
		t.Fatalf("FCV013 = %d, want 3", len(ds))
	}
	for _, d := range ds {
		if !d.Waived {
			t.Errorf("unwaived race: %+v", d)
		}
	}
}

// TestPhaseFindingIDsRenameInvariant pins the identity contract for the
// new family: renaming every internal net leaves each finding's ID
// unchanged, because IDs hash canonical structure, not names.
func TestPhaseFindingIDsRenameInvariant(t *testing.T) {
	rename := strings.NewReplacer(
		"n1", "zz41", "n2", "zz42", "t1", "zz43", "t2", "zz44",
		"dyn1", "zq1", "dyn2", "zq2", "out1", "zq3",
		"dyn", "zq0", "mpass y", "mpass qq", "min out y", "min out qq",
		"mip out y", "mip out qq", " g ", " hh ",
	)
	for _, fx := range phaseRuleFixtures {
		base := lintDeck(t, fx.deck, fx.cell)
		renamed := lintDeck(t, rename.Replace(fx.deck), fx.cell)
		a, b := findRule(base, fx.rule), findRule(renamed, fx.rule)
		if len(a) != len(b) || len(a) == 0 {
			t.Errorf("%s: findings %d vs %d after rename", fx.rule, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i].ID == "" || a[i].ID != b[i].ID {
				t.Errorf("%s: ID moved under rename: %q vs %q (subjects %s/%s)",
					fx.rule, a[i].ID, b[i].ID, a[i].Subject, b[i].Subject)
			}
		}
	}
}

// TestSortDiagsPinned pins the merged-report ordering contract: (cell,
// file, line, rule, ID, subject, message), ascending, so reports are a
// pure function of content at any worker count.
func TestSortDiagsPinned(t *testing.T) {
	mk := func(cell, file string, line int, rule, id string) Diag {
		return Diag{Rule: rule, Cell: cell, Subject: "s",
			Loc: netlist.Loc{File: file, Line: line}, ID: id}
	}
	want := []Diag{
		mk("a", "x.sp", 1, "FCV002", "lint/FCV002@02"),
		mk("a", "x.sp", 2, "FCV001", "lint/FCV001@01"),
		mk("a", "x.sp", 2, "FCV003", "lint/FCV003@03"),
		mk("a", "x.sp", 2, "FCV003", "lint/FCV003@04"),
		mk("a", "y.sp", 1, "FCV001", "lint/FCV001@05"),
		mk("b", "x.sp", 1, "FCV001", "lint/FCV001@06"),
	}
	// Feed them in reverse and let sortDiags restore the order.
	got := make([]Diag, len(want))
	for i := range want {
		got[len(want)-1-i] = want[i]
	}
	sortDiags(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
