package lint

// The FCV011–FCV018 family covers the clocked circuit styles of §2 —
// domino, C²MOS/NORA, ratioed logic, two-phase transmission-gate
// latching — whose wiring mistakes are invisible to the local,
// per-device checks of FCV001–FCV010. They run on the internal/dataflow
// substrate: clock-phase enumeration, drive-path sets, dynamic-node
// classification and latch transparency. All of them stay quiet when
// the phase model is degraded (more phases than the enumeration bound)
// rather than guess.

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/recognize"
)

// ---------------------------------------------------------------- FCV011

// checkClockedStageDiscipline flags C²MOS-style clocked stages whose
// pull-up and pull-down are never enabled under the same phase
// assignment — a miswired clock polarity (both clock devices on the
// same rail of the phase) leaves the stage unable to drive in any
// phase: it only precharges one way or floats.
func checkClockedStageDiscipline(r *rule, ctx *Context) {
	df := ctx.Dataflow()
	if df.Degraded() || len(df.PhaseNames) == 0 {
		return
	}
	c := ctx.Circuit
	for _, g := range ctx.Rec.Groups {
		if g.Family == recognize.FamilyDynamic {
			continue
		}
		for _, f := range g.Funcs {
			if !df.ClockedStage(g, f.Node) {
				continue
			}
			up := df.SatMask(f.PullUp)
			down := df.SatMask(f.PullDown)
			if up == 0 || down == 0 || up&down != 0 {
				continue
			}
			r.emit(ctx, c.NodeName(f.Node), ctx.nodeLoc(f.Node),
				"clocked stage output %s can pull up only under %s and pull down only under %s — no phase drives both levels (clock polarity miswire)",
				c.NodeName(f.Node), df.MaskString(up), df.MaskString(down))
		}
	}
}

// ---------------------------------------------------------------- FCV012

// checkNoraDiscipline flags a domino/NORA ordering violation: a dynamic
// (precharged) node directly gating an NMOS of another dynamic group
// evaluating on the same phase. During precharge the node is high, so
// the receiving evaluate tree conducts spuriously at the start of
// evaluate and can falsely discharge — domino composition requires a
// static inversion between same-phase dynamic stages.
func checkNoraDiscipline(r *rule, ctx *Context) {
	df := ctx.Dataflow()
	if df.Degraded() {
		return
	}
	c := ctx.Circuit
	for _, dn := range df.DynNodes() {
		if dn.Kind != dataflow.KindDomino {
			continue
		}
		phases := make(map[dataflow.PhaseRef]bool)
		for _, ck := range dn.Clocks {
			phases[df.PhaseOf[ck]] = true
		}
		for gi, g2 := range ctx.Rec.Groups {
			if gi == dn.Group || g2.Family != recognize.FamilyDynamic {
				continue
			}
			samePhase := false
			for _, ck := range g2.ClockNets {
				if phases[df.PhaseOf[ck]] {
					samePhase = true
					break
				}
			}
			if !samePhase {
				continue
			}
			for _, d := range g2.Devices {
				if d.Type == process.NMOS && d.Gate == dn.Node {
					r.emit(ctx, c.NodeName(dn.Node), d.Loc,
						"dynamic node %s directly gates evaluate device %s of a same-phase dynamic group — precharge glitch propagates; insert a static inversion",
						c.NodeName(dn.Node), d.Name)
				}
			}
		}
	}
}

// ---------------------------------------------------------------- FCV013

// checkLatchRace flags same-phase back-to-back latch races: data
// launched from a transparent latch reaching a second latch that is
// transparent under the same phase assignment races through two stages
// in one phase — the Figure 4 two-phase discipline exists precisely to
// prevent this.
func checkLatchRace(r *rule, ctx *Context) {
	df := ctx.Dataflow()
	if df.Degraded() {
		return
	}
	c := ctx.Circuit
	latches := df.Latches()
	stateName := func(li int) string {
		l := latches[li].Latch
		if len(l.StateNodes) > 0 {
			return c.NodeName(l.StateNodes[0])
		}
		return fmt.Sprintf("latch%d", li)
	}
	for _, race := range df.LatchRaces() {
		r.emit(ctx, c.NodeName(race.Through), ctx.nodeLoc(race.Through),
			"data from latch at %s can race through %s into the latch at %s while both are transparent (%s)",
			stateName(race.From), c.NodeName(race.Through), stateName(race.To), df.MaskString(race.Mask))
	}
}

// ---------------------------------------------------------------- FCV014

// checkPhaseFight flags VDD–VSS drive fights reachable under some phase
// assignment: a group output whose pull-up and pull-down conduct
// simultaneously for some data once the clocks take consistent values.
// Families that fight by design (ratioed, DCVSL, dynamic keepers) and
// storage loops (latch keepers fight their write path) are excluded —
// this rule is for sneak drive fights, not sized fights.
func checkPhaseFight(r *rule, ctx *Context) {
	df := ctx.Dataflow()
	if df.Degraded() {
		return
	}
	c := ctx.Circuit
	for gi, g := range ctx.Rec.Groups {
		switch g.Family {
		case recognize.FamilyDynamic, recognize.FamilyRatioed, recognize.FamilyDCVSL:
			continue
		}
		if df.LatchMember(gi) {
			continue
		}
		for _, f := range g.Funcs {
			if !f.CanFight {
				continue
			}
			if !df.HasClockVar(f.PullUp) && !df.HasClockVar(f.PullDown) {
				continue
			}
			m := df.SatMask(logic.And(f.PullUp, f.PullDown))
			if m == 0 {
				continue
			}
			r.emit(ctx, c.NodeName(f.Node), ctx.nodeLoc(f.Node),
				"node %s can be driven from VDD and VSS at once under %s (phase-reachable drive fight)",
				c.NodeName(f.Node), df.MaskString(m))
		}
	}
}

// ---------------------------------------------------------------- FCV015

// checkChargeSharing flags keeperless dynamic nodes whose evaluate tree
// has internal nodes: at the start of evaluate, charge redistributes
// between the precharged output and the uncharged internal diffusions
// (§4.2's "glitch sensitive nodes"), and with no keeper nothing
// restores the level. When the deck carries explicit node capacitances
// the warning is suppressed if the internal capacitance is a small
// fraction of the output's.
func checkChargeSharing(r *rule, ctx *Context) {
	df := ctx.Dataflow()
	c := ctx.Circuit
	for _, dn := range df.DynNodes() {
		if dn.Kind != dataflow.KindDomino || dn.Keeper != nil || len(dn.Internal) == 0 {
			continue
		}
		outCap := c.Nodes[dn.Node].CapFF
		intCap := 0.0
		for _, n := range dn.Internal {
			intCap += c.Nodes[n].CapFF
		}
		if outCap > 0 && intCap > 0 && intCap/outCap < ctx.Opt.chargeShareRatio() {
			continue
		}
		names := make([]string, len(dn.Internal))
		for i, n := range dn.Internal {
			names[i] = c.NodeName(n)
		}
		r.emit(ctx, c.NodeName(dn.Node), ctx.nodeLoc(dn.Node),
			"keeperless dynamic node %s shares charge with internal evaluate node(s) %v",
			c.NodeName(dn.Node), names)
	}
}

// ---------------------------------------------------------------- FCV016

// checkRatioedStrength flags ratioed (pseudo-nMOS style) outputs whose
// switched network does not decisively overpower the always-on load.
// The output's low level is set by a resistive divider; the weakest
// switched path must beat the strongest load path by the configured
// margin or the level degrades into the receiver's threshold window.
func checkRatioedStrength(r *rule, ctx *Context) {
	df := ctx.Dataflow()
	c := ctx.Circuit
	for _, g := range ctx.Rec.Groups {
		if g.Family != recognize.FamilyRatioed {
			continue
		}
		for _, f := range g.Funcs {
			paths := df.DrivePaths(g, f.Node)
			maxLoad, minDrive := 0.0, 0.0
			for _, p := range paths {
				if !p.FromVdd && !p.FromVss {
					continue
				}
				s := pathStrength(p)
				if s <= 0 {
					continue
				}
				if alwaysOnPath(c, p) {
					if s > maxLoad {
						maxLoad = s
					}
				} else if minDrive == 0 || s < minDrive {
					minDrive = s
				}
			}
			if maxLoad == 0 || minDrive == 0 {
				continue
			}
			need := ctx.Opt.ratioedMinStrength()
			if minDrive >= need*maxLoad {
				continue
			}
			r.emit(ctx, c.NodeName(f.Node), ctx.nodeLoc(f.Node),
				"ratioed node %s: weakest switched path strength %.3g does not overpower the always-on load %.3g by the required ×%.3g margin",
				c.NodeName(f.Node), minDrive, maxLoad, need)
		}
	}
}

// pathStrength returns a series conductance proxy for a path:
// 1/Σ(1/(k·W/Leff)) with k=2 for NMOS, k=1 for PMOS (mobility ratio).
func pathStrength(p dataflow.Path) float64 {
	inv := 0.0
	for _, d := range p.Devices {
		k := 1.0
		if d.Type == process.NMOS {
			k = 2.0
		}
		g := k * d.W / d.Leff()
		if g <= 0 {
			return 0
		}
		inv += 1 / g
	}
	if inv == 0 {
		return 0
	}
	return 1 / inv
}

// alwaysOnPath reports that every series device conducts permanently
// (grounded-gate PMOS / vdd-gated NMOS) — a ratioed load path.
func alwaysOnPath(c *netlist.Circuit, p dataflow.Path) bool {
	for _, d := range p.Devices {
		if d.Type == process.NMOS && !c.IsVdd(d.Gate) {
			return false
		}
		if d.Type == process.PMOS && !c.IsVss(d.Gate) {
			return false
		}
	}
	return len(p.Devices) > 0
}

// ---------------------------------------------------------------- FCV017

// checkPhaseFloat flags nets that are driven under some phase
// assignments but float for every input under others, with no
// recognized storage (latch, domino, C²MOS hold) excusing it — a
// tristate enabled by the wrong phase, or a pass network whose steering
// collapses in one phase. The value the floating phase reads is
// whatever charge is left.
func checkPhaseFloat(r *rule, ctx *Context) {
	df := ctx.Dataflow()
	if df.Degraded() || len(df.PhaseNames) == 0 {
		return
	}
	c := ctx.Circuit
	if len(c.Ports) == 0 {
		return // element soup: every net could be externally driven
	}
	ids := sortedNodeKeys(ctx.gateReaders)
	for _, id := range ids {
		if c.IsSupply(id) || c.Nodes[id].IsPort {
			continue
		}
		gi, ok := ctx.Rec.DriverOf[id]
		if !ok {
			continue
		}
		if df.DynHeld(id) != nil || ctx.Rec.IsState(id) || df.LatchMember(gi) {
			continue
		}
		g := ctx.Rec.Groups[gi]
		if f := g.Func(id); f != nil && f.Complementary {
			continue
		}
		paths := df.DrivePaths(g, id)
		if len(paths) == 0 {
			continue // FCV002's problem, not a phase problem
		}
		conds := make([]logic.Expr, 0, len(paths))
		for _, p := range paths {
			conds = append(conds, p.Cond)
		}
		drive := logic.Or(conds...)
		driven := df.SatMask(drive)
		floating := df.AllMask() &^ driven
		if driven == 0 || floating == 0 {
			continue
		}
		r.emit(ctx, c.NodeName(id), ctx.nodeLoc(id),
			"node %s is driven under %s but floats for every input under %s with no recognized storage holding it",
			c.NodeName(id), df.MaskString(driven), df.MaskString(floating))
	}
}

// ---------------------------------------------------------------- FCV018

// checkDeadDrivers upgrades floating-gate detection with reachability:
// a gate net whose every DC path to a rail or port runs through a
// permanently-off device (NMOS gated by vss, PMOS gated by vdd). FCV001
// sees a channel connection and stays quiet; FCV002 sees the path
// exists; only conduction-aware reachability notices the net can never
// actually be driven.
func checkDeadDrivers(r *rule, ctx *Context) {
	c := ctx.Circuit
	ids := sortedNodeKeys(ctx.gateReaders)
	for _, id := range ids {
		if c.IsSupply(id) || c.Nodes[id].IsPort || ctx.channelRefs[id] == 0 {
			continue
		}
		ok := func(u netlist.NodeID) bool {
			return c.IsSupply(u) || ctx.externallyDriven(u)
		}
		if !ctx.channelReaches(id, ok) {
			continue // FCV002 already reported the missing path
		}
		if ctx.channelReachesConducting(id, ok) {
			continue
		}
		r.emit(ctx, c.NodeName(id), ctx.nodeLoc(id),
			"every DC path from gate net %s to a rail or port runs through a permanently-off device", c.NodeName(id))
	}
}

// channelReachesConducting is channelReaches restricted to devices that
// can ever conduct (resistors always conduct).
func (ctx *Context) channelReachesConducting(id netlist.NodeID, ok func(netlist.NodeID) bool) bool {
	c := ctx.Circuit
	seen := map[netlist.NodeID]bool{id: true}
	queue := []netlist.NodeID{id}
	if ok(id) {
		return true
	}
	visit := func(u netlist.NodeID, queueRef *[]netlist.NodeID) bool {
		if seen[u] {
			return false
		}
		seen[u] = true
		if ok(u) {
			return true
		}
		if !c.IsSupply(u) {
			*queueRef = append(*queueRef, u)
		}
		return false
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, d := range c.DevicesOn(u) {
			if !dataflow.CanConduct(c, d) {
				continue
			}
			other := d.Source
			if other == u {
				other = d.Drain
			}
			if visit(other, &queue) {
				return true
			}
		}
		for _, res := range ctx.resistorsOn[u] {
			other := res.A
			if other == u {
				other = res.B
			}
			if visit(other, &queue) {
				return true
			}
		}
	}
	return false
}

// sortedNodeKeys returns map keys in node order, the deterministic
// iteration base every rule over gateReaders shares.
func sortedNodeKeys(m map[netlist.NodeID][]*netlist.Device) []netlist.NodeID {
	ids := make([]netlist.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
