// SARIF 2.1.0 emission, so CI systems (GitHub code scanning, GitLab,
// Jenkins warnings-ng) can annotate SPICE decks with lint findings the
// same way they annotate source code.
package lint

import "encoding/json"

// The subset of the SARIF 2.1.0 object model the linter emits. Field
// names follow the specification exactly; everything optional that we
// don't populate is omitted.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string          `json:"name"`
	InformationURI string          `json:"informationUri,omitempty"`
	Version        string          `json:"version,omitempty"`
	Rules          []sarifRuleDesc `json:"rules"`
}

type sarifRuleDesc struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	DefaultConfig    *sarifConfig `json:"defaultConfiguration,omitempty"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations,omitempty"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	LogicalLocations []sarifLogicalLoc     `json:"logicalLocations,omitempty"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           *sarifRegion          `json:"region,omitempty"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

type sarifLogicalLoc struct {
	Name               string `json:"name"`
	FullyQualifiedName string `json:"fullyQualifiedName,omitempty"`
	Kind               string `json:"kind,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// sarifLevel maps a severity to the SARIF result level.
func sarifLevel(s Severity) string {
	switch s {
	case Error:
		return "error"
	case Warn:
		return "warning"
	default:
		return "note"
	}
}

// SARIF renders the report as a SARIF 2.1.0 log. Waived findings are
// included with an "external" suppression carrying the waiver note, so
// CI shows them as suppressed rather than dropping them silently.
func (r *Report) SARIF() ([]byte, error) {
	driver := sarifDriver{
		Name:           "fcv-lint",
		InformationURI: "https://github.com/paper-repro/fcv",
	}
	for _, rule := range DefaultRules() {
		driver.Rules = append(driver.Rules, sarifRuleDesc{
			ID:               rule.ID(),
			ShortDescription: sarifMessage{Text: rule.Title()},
			DefaultConfig:    &sarifConfig{Level: sarifLevel(rule.Severity())},
		})
	}
	results := make([]sarifResult, 0, len(r.Diags))
	for _, d := range r.Diags {
		res := sarifResult{
			RuleID:  d.Rule,
			Level:   sarifLevel(d.Severity),
			Message: sarifMessage{Text: d.Message},
		}
		loc := sarifLocation{
			LogicalLocations: []sarifLogicalLoc{{
				Name:               d.Subject,
				FullyQualifiedName: d.Cell + "/" + d.Subject,
				Kind:               "member",
			}},
		}
		if d.Loc.File != "" {
			loc.PhysicalLocation.ArtifactLocation.URI = d.Loc.File
			if d.Loc.Line > 0 {
				loc.PhysicalLocation.Region = &sarifRegion{StartLine: d.Loc.Line}
			}
			res.Locations = append(res.Locations, loc)
		} else {
			// No physical location: keep the logical one so the finding
			// still names its cell and subject.
			loc.PhysicalLocation.ArtifactLocation.URI = d.Cell + ".cell"
			res.Locations = append(res.Locations, loc)
		}
		if d.Waived {
			res.Suppressions = []sarifSuppression{{Kind: "external", Justification: d.WaiverNote}}
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	return json.MarshalIndent(log, "", "  ")
}
