package lint

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path"
	"strings"
)

// Waiver is one suppression entry: a finding is waived when its rule ID,
// cell and subject all match the entry's glob patterns (path.Match
// syntax, so "*" matches any single name).
type Waiver struct {
	// Rule, Cell and Subject are glob patterns over the corresponding
	// Diag fields.
	Rule, Cell, Subject string
	// Note is the justification text after the patterns.
	Note string
	// Line is the waiver file line, for unused-waiver reports.
	Line int

	used bool
}

// Waivers is a parsed waiver file.
type Waivers struct {
	entries []*Waiver
}

// ParseWaivers reads a waiver file:
//
//	# comment
//	RULE CELL SUBJECT justification text…
//
// RULE, CELL and SUBJECT are glob patterns ("FCV00?", "adder*", "*").
// Everything after the third field is the free-form justification.
func ParseWaivers(r io.Reader) (*Waivers, error) {
	w := &Waivers{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("waivers: line %d: want RULE CELL SUBJECT [note], got %q", lineNo, line)
		}
		for _, pat := range fields[:3] {
			if _, err := path.Match(pat, "probe"); err != nil {
				return nil, fmt.Errorf("waivers: line %d: bad pattern %q: %v", lineNo, pat, err)
			}
		}
		w.entries = append(w.entries, &Waiver{
			Rule:    fields[0],
			Cell:    fields[1],
			Subject: fields[2],
			Note:    strings.Join(fields[3:], " "),
			Line:    lineNo,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("waivers: read: %w", err)
	}
	return w, nil
}

// LoadWaivers reads a waiver file from disk.
func LoadWaivers(file string) (*Waivers, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseWaivers(f)
}

// match returns the first entry matching the diagnostic, or nil, and
// records the hit for Unused reporting.
func (w *Waivers) match(d *Diag) *Waiver {
	for _, e := range w.entries {
		if globMatch(e.Rule, d.Rule) && globMatch(e.Cell, d.Cell) && globMatch(e.Subject, d.Subject) {
			e.used = true
			return e
		}
	}
	return nil
}

// globMatch is path.Match with pattern errors (already validated at
// parse time) treated as non-matches.
func globMatch(pattern, name string) bool {
	ok, err := path.Match(pattern, name)
	return err == nil && ok
}

// Unused returns entries that never matched any finding — stale waivers
// a CI step can flag so suppressions don't outlive their violations.
func (w *Waivers) Unused() []*Waiver {
	var out []*Waiver
	for _, e := range w.entries {
		if !e.used {
			out = append(out, e)
		}
	}
	return out
}

// Len returns the number of entries.
func (w *Waivers) Len() int { return len(w.entries) }

// KeyString renders the waiver set as a stable single-line string for
// configuration fingerprints (the fleet cache keys on it): the match
// patterns in entry order, without notes or line numbers, which do not
// affect which findings are suppressed.
func (w *Waivers) KeyString() string {
	if w == nil || len(w.entries) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, e := range w.entries {
		if i > 0 {
			sb.WriteByte(';')
		}
		fmt.Fprintf(&sb, "%s %s %s", e.Rule, e.Cell, e.Subject)
	}
	return sb.String()
}
