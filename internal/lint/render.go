package lint

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Text renders the report in compiler style, one finding per line:
//
//	deck.sp:12: error FCV001 [cell] ghost: gate net ghost is driven by …
//
// followed by a one-line summary. Deterministic: Diags are pre-sorted.
func (r *Report) Text() string {
	var sb strings.Builder
	for _, d := range r.Diags {
		if !d.Loc.IsZero() {
			fmt.Fprintf(&sb, "%s: ", d.Loc)
		}
		fmt.Fprintf(&sb, "%s %s [%s] %s: %s", d.Severity, d.Rule, d.Cell, d.Subject, d.Message)
		if d.Waived {
			sb.WriteString(" (waived")
			if d.WaiverNote != "" {
				sb.WriteString(": " + d.WaiverNote)
			}
			sb.WriteString(")")
		}
		sb.WriteByte('\n')
	}
	e, w, i := r.Counts()
	waived := 0
	for _, d := range r.Diags {
		if d.Waived {
			waived++
		}
	}
	fmt.Fprintf(&sb, "lint: %d error(s), %d warning(s), %d info(s), %d waived\n", e, w, i, waived)
	return sb.String()
}

// jsonDiag is the stable JSON shape of one finding.
type jsonDiag struct {
	ID         string `json:"id"`
	Rule       string `json:"rule"`
	Severity   string `json:"severity"`
	Cell       string `json:"cell"`
	Subject    string `json:"subject"`
	File       string `json:"file,omitempty"`
	Line       int    `json:"line,omitempty"`
	Message    string `json:"message"`
	Waived     bool   `json:"waived,omitempty"`
	WaiverNote string `json:"waiverNote,omitempty"`
}

// jsonReport is the stable JSON shape of a report.
type jsonReport struct {
	Findings []jsonDiag `json:"findings"`
	Errors   int        `json:"errors"`
	Warnings int        `json:"warnings"`
	Infos    int        `json:"infos"`
}

// JSON renders the report as stable, indented JSON.
func (r *Report) JSON() ([]byte, error) {
	out := jsonReport{Findings: make([]jsonDiag, 0, len(r.Diags))}
	out.Errors, out.Warnings, out.Infos = r.Counts()
	for _, d := range r.Diags {
		out.Findings = append(out.Findings, jsonDiag{
			ID:         d.ID,
			Rule:       d.Rule,
			Severity:   d.Severity.String(),
			Cell:       d.Cell,
			Subject:    d.Subject,
			File:       d.Loc.File,
			Line:       d.Loc.Line,
			Message:    d.Message,
			Waived:     d.Waived,
			WaiverNote: d.WaiverNote,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
