package lint

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/netlist"
)

// parseCell parses a deck string and flattens the named cell, renamed
// back to the bare cell name the way LintLibrary presents it.
func parseCell(t *testing.T, deck, cell string) *netlist.Circuit {
	t.Helper()
	lib, _, err := netlist.ParseNamed(strings.NewReader(deck), "deck.sp")
	if err != nil {
		t.Fatal(err)
	}
	flat, err := lib.Flatten(cell)
	if err != nil {
		t.Fatal(err)
	}
	flat.Name = cell
	return flat
}

// lintDeck lints one cell of a deck string with default options.
func lintDeck(t *testing.T, deck, cell string) *Report {
	t.Helper()
	rep, err := Run(parseCell(t, deck, cell), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// findRule returns the diagnostics of one rule.
func findRule(rep *Report, id string) []Diag {
	var out []Diag
	for _, d := range rep.Diags {
		if d.Rule == id {
			out = append(out, d)
		}
	}
	return out
}

const cleanInv = `
.subckt inv a y
mn y a vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
.ends
`

func TestCleanInverterHasNoFindings(t *testing.T) {
	rep := lintDeck(t, cleanInv, "inv")
	if len(rep.Diags) != 0 {
		t.Errorf("clean inverter produced findings: %v", rep.Diags)
	}
}

func TestFloatingGate(t *testing.T) {
	deck := `
.subckt c a y
mn y ghost vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
.ends
`
	rep := lintDeck(t, deck, "c")
	ds := findRule(rep, "FCV001")
	if len(ds) != 1 {
		t.Fatalf("FCV001 findings = %d, want 1 (%v)", len(ds), rep.Diags)
	}
	d := ds[0]
	if d.Subject != "ghost" || d.Severity != Error {
		t.Errorf("diag = %+v", d)
	}
	if d.Loc.File != "deck.sp" || d.Loc.Line != 3 {
		t.Errorf("loc = %v, want deck.sp:3", d.Loc)
	}
}

func TestFloatingGateSkippedWithoutPorts(t *testing.T) {
	// Top-level element soup: every undriven net might be a primary
	// input, so FCV001 stays silent.
	deck := `
mn y ghost vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
`
	lib, top, err := netlist.ParseNamed(strings.NewReader(deck), "deck.sp")
	if err != nil {
		t.Fatal(err)
	}
	lib.Add(top)
	flat, err := lib.Flatten("top")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(flat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds := findRule(rep, "FCV001"); len(ds) != 0 {
		t.Errorf("soup deck produced FCV001: %v", ds)
	}
}

func TestNoDCPath(t *testing.T) {
	// iso drives the inverter's gate but only channel-connects to iso2,
	// which goes nowhere: no assignment ever sets iso's level.
	deck := `
.subckt c a y
mp1 iso a iso2 vss nmos w=2 l=0.75
mn y iso vss vss nmos w=2 l=0.75
mpz y iso vdd vdd pmos w=4 l=0.75
.ends
`
	rep := lintDeck(t, deck, "c")
	ds := findRule(rep, "FCV002")
	if len(ds) != 1 || ds[0].Subject != "iso" || ds[0].Severity != Error {
		t.Fatalf("FCV002 = %v, want single error on iso", ds)
	}
	// A pass network that reaches a port is drivable: no finding.
	deck2 := `
.subckt c a s y
mp1 m s a vss nmos w=2 l=0.75
mn y m vss vss nmos w=2 l=0.75
mpz y m vdd vdd pmos w=4 l=0.75
.ends
`
	if ds := findRule(lintDeck(t, deck2, "c"), "FCV002"); len(ds) != 0 {
		t.Errorf("port-reaching pass net flagged: %v", ds)
	}
}

func TestSneakPath(t *testing.T) {
	deck := `
.subckt c a y
mn y a vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
msn vdd vdd mid vss nmos w=2 l=0.75
msp mid vss vss vdd pmos w=2 l=0.75
.ends
`
	rep := lintDeck(t, deck, "c")
	ds := findRule(rep, "FCV003")
	if len(ds) != 2 {
		t.Fatalf("FCV003 findings = %d, want 2 (both chain devices): %v", len(ds), rep.Diags)
	}
	for _, d := range ds {
		if d.Severity != Error {
			t.Errorf("severity = %v, want error", d.Severity)
		}
	}
	// An always-on device NOT bridging the rails (pass to a signal) is
	// not a sneak path.
	deck2 := `
.subckt c a y
mn y a vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
mk keep vdd y vss nmos w=1 l=0.75
.ends
`
	if ds := findRule(lintDeck(t, deck2, "c"), "FCV003"); len(ds) != 0 {
		t.Errorf("non-bridging always-on device flagged: %v", ds)
	}
}

func TestDanglingTerminal(t *testing.T) {
	deck := `
.subckt c a y
mn y a vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
mdg stub a vss vss nmos w=2 l=0.75
.ends
`
	rep := lintDeck(t, deck, "c")
	ds := findRule(rep, "FCV004")
	if len(ds) != 1 || ds[0].Subject != "stub" || ds[0].Severity != Warn {
		t.Fatalf("FCV004 = %v, want single warn on stub", ds)
	}
}

const keeperlessDomino = `
.subckt dom a phi y
mpre dyn phi vdd vdd pmos w=4 l=0.75
mev  dyn a   foot vss nmos w=6 l=0.75
mft  foot phi vss vss nmos w=8 l=0.75
mbn  y dyn vss vss nmos w=2 l=0.75
mbp  y dyn vdd vdd pmos w=4 l=0.75
.ends
`

func TestKeeperlessDynamic(t *testing.T) {
	rep := lintDeck(t, keeperlessDomino, "dom")
	ds := findRule(rep, "FCV005")
	if len(ds) != 1 || ds[0].Subject != "dyn" || ds[0].Severity != Warn {
		t.Fatalf("FCV005 = %v, want single warn on dyn", ds)
	}
	// Adding the keeper silences the rule.
	withKeeper := strings.Replace(keeperlessDomino, ".ends",
		"mkeep dyn y vdd vdd pmos w=1 l=1.125\n.ends", 1)
	if ds := findRule(lintDeck(t, withKeeper, "dom"), "FCV005"); len(ds) != 0 {
		t.Errorf("kept domino flagged: %v", ds)
	}
}

func TestPassOnlyGate(t *testing.T) {
	// NMOS-only steering into an inverter gate: threshold drop.
	deck := `
.subckt c a s y
mp1 m s a vss nmos w=2 l=0.75
mn y m vss vss nmos w=2 l=0.75
mpz y m vdd vdd pmos w=4 l=0.75
.ends
`
	rep := lintDeck(t, deck, "c")
	ds := findRule(rep, "FCV006")
	if len(ds) != 1 || ds[0].Subject != "m" || !strings.Contains(ds[0].Message, "NMOS-only") {
		t.Fatalf("FCV006 = %v, want NMOS-only warn on m", ds)
	}
	// A full transmission gate passes both levels: clean.
	tg := `
.subckt c a s sn y
mtn m s a vss nmos w=2 l=0.75
mtp m sn a vdd pmos w=2 l=0.75
mn y m vss vss nmos w=2 l=0.75
mpz y m vdd vdd pmos w=4 l=0.75
.ends
`
	if ds := findRule(lintDeck(t, tg, "c"), "FCV006"); len(ds) != 0 {
		t.Errorf("full TG flagged: %v", ds)
	}
}

func TestGeometry(t *testing.T) {
	cases := []struct {
		wl   string
		frag string
	}{
		{"w=600 l=0.75", "aspect ratio"}, // W/L = 800 > 500
		{"w=2 l=150", "aspect ratio"},    // W/L = 0.013 < 0.02
		{"w=1200 l=3", "width"},          // ratio fine, W > 1000
		{"w=5 l=120", "channel length"},  // ratio fine, L > 100
	}
	for _, c := range cases {
		deck := ".subckt g a y\nmn y a vss vss nmos " + c.wl + "\nmp y a vdd vdd pmos w=4 l=0.75\n.ends\n"
		ds := findRule(lintDeck(t, deck, "g"), "FCV007")
		if len(ds) != 1 || !strings.Contains(ds[0].Message, c.frag) {
			t.Errorf("%s: FCV007 = %v, want single warn mentioning %q", c.wl, ds, c.frag)
		}
	}
	if ds := findRule(lintDeck(t, cleanInv, "inv"), "FCV007"); len(ds) != 0 {
		t.Errorf("sane geometry flagged: %v", ds)
	}
}

func TestShadowedNames(t *testing.T) {
	deck := `
.subckt c a Out out
mn Out a vss vss nmos w=2 l=0.75
mp Out a vdd vdd pmos w=4 l=0.75
mn2 out a vss vss nmos w=2 l=0.75
mp2 out a vdd vdd pmos w=4 l=0.75
.ends
`
	rep := lintDeck(t, deck, "c")
	ds := findRule(rep, "FCV009")
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "differ only by case") {
		t.Fatalf("FCV009 = %v, want case-shadowing warn", ds)
	}

	unused := `
.subckt c a nc y
mn y a vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
.ends
`
	ds = findRule(lintDeck(t, unused, "c"), "FCV009")
	if len(ds) != 1 || ds[0].Subject != "nc" || !strings.Contains(ds[0].Message, "connected to nothing") {
		t.Fatalf("FCV009 = %v, want unused-port warn on nc", ds)
	}
}

func TestFanoutCeiling(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(".subckt c a")
	for i := 0; i < 4; i++ {
		sb.WriteString(" y")
		sb.WriteByte(byte('0' + i))
	}
	sb.WriteString("\n")
	for i := 0; i < 4; i++ {
		y := "y" + string(byte('0'+i))
		sb.WriteString("mn" + y + " " + y + " a vss vss nmos w=2 l=0.75\n")
		sb.WriteString("mp" + y + " " + y + " a vdd vdd pmos w=4 l=0.75\n")
	}
	sb.WriteString(".ends\n")
	c := parseCell(t, sb.String(), "c")
	rep, err := Run(c, Options{FanoutLimit: 7})
	if err != nil {
		t.Fatal(err)
	}
	ds := findRule(rep, "FCV010")
	if len(ds) != 1 || ds[0].Subject != "a" {
		t.Fatalf("FCV010 = %v, want single warn on a (fanout 8 > 7)", ds)
	}
	rep, err = Run(c, Options{FanoutLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ds := findRule(rep, "FCV010"); len(ds) != 0 {
		t.Errorf("fanout at the limit flagged: %v", ds)
	}
}

func TestWaivers(t *testing.T) {
	w, err := ParseWaivers(strings.NewReader(`
# comment line
FCV001 c ghost known-floating test net
FCV00? other* * wildcard entry
`))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Fatalf("entries = %d, want 2", w.Len())
	}
	deck := `
.subckt c a y
mn y ghost vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
.ends
`
	rep, err := Run(parseCell(t, deck, "c"), Options{Waivers: w})
	if err != nil {
		t.Fatal(err)
	}
	ds := findRule(rep, "FCV001")
	if len(ds) != 1 || !ds[0].Waived || ds[0].WaiverNote != "known-floating test net" {
		t.Fatalf("waived diag = %+v", ds)
	}
	if rep.HasErrors() {
		t.Error("waived error still drives HasErrors")
	}
	unused := w.Unused()
	if len(unused) != 1 || unused[0].Cell != "other*" {
		t.Errorf("unused = %+v, want the wildcard entry", unused)
	}

	if _, err := ParseWaivers(strings.NewReader("FCV001 c\n")); err == nil {
		t.Error("two-field waiver line accepted")
	}
	if _, err := ParseWaivers(strings.NewReader("FCV[001 c x\n")); err == nil {
		t.Error("malformed glob accepted")
	}
}

func TestReportCountsAndRenderers(t *testing.T) {
	deck := `
.subckt c a y
mn y ghost vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
mdg stub a vss vss nmos w=2 l=0.75
.ends
`
	rep := lintDeck(t, deck, "c")
	errs, warns, _ := rep.Counts()
	if errs != 1 || warns != 1 {
		t.Fatalf("counts = %d errors %d warns, want 1/1: %v", errs, warns, rep.Diags)
	}
	if !rep.HasErrors() {
		t.Error("HasErrors = false")
	}
	if by := rep.ByRule(); by["FCV001"] != 1 || by["FCV004"] != 1 {
		t.Errorf("ByRule = %v", by)
	}

	text := rep.Text()
	if !strings.Contains(text, "deck.sp:3: error FCV001 [c] ghost") {
		t.Errorf("text rendering missing compiler-style line:\n%s", text)
	}
	if !strings.Contains(text, "1 error(s), 1 warning(s)") {
		t.Errorf("text summary wrong:\n%s", text)
	}

	jb, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Findings []map[string]any `json:"findings"`
		Errors   int              `json:"errors"`
	}
	if err := json.Unmarshal(jb, &decoded); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if len(decoded.Findings) != 2 || decoded.Errors != 1 {
		t.Errorf("JSON = %d findings %d errors", len(decoded.Findings), decoded.Errors)
	}
}

func TestSARIFShape(t *testing.T) {
	deck := `
.subckt c a y
mn y ghost vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
.ends
`
	rep := lintDeck(t, deck, "c")
	sb, err := rep.SARIF()
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string           `json:"name"`
					Rules []map[string]any `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(sb, &log); err != nil {
		t.Fatalf("SARIF does not parse: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version = %q schema = %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "fcv-lint" {
		t.Fatalf("runs/driver malformed")
	}
	if len(log.Runs[0].Tool.Driver.Rules) != len(DefaultRules()) {
		t.Errorf("rule descriptors = %d, want %d", len(log.Runs[0].Tool.Driver.Rules), len(DefaultRules()))
	}
	res := log.Runs[0].Results
	if len(res) != 1 || res[0].RuleID != "FCV001" || res[0].Level != "error" {
		t.Fatalf("results = %+v", res)
	}
	pl := res[0].Locations[0].PhysicalLocation
	if pl.ArtifactLocation.URI != "deck.sp" || pl.Region.StartLine != 3 {
		t.Errorf("location = %+v, want deck.sp:3", pl)
	}
}

func TestRuleRegistryStable(t *testing.T) {
	rules := DefaultRules()
	if len(rules) != 18 {
		t.Fatalf("rule count = %d, want 18", len(rules))
	}
	want := []string{"FCV001", "FCV002", "FCV003", "FCV004", "FCV005",
		"FCV006", "FCV007", "FCV008", "FCV009", "FCV010",
		"FCV011", "FCV012", "FCV013", "FCV014", "FCV015",
		"FCV016", "FCV017", "FCV018"}
	for i, r := range rules {
		if r.ID() != want[i] {
			t.Errorf("rule %d = %s, want %s", i, r.ID(), want[i])
		}
		if r.Title() == "" {
			t.Errorf("rule %s has no title", r.ID())
		}
	}
}
