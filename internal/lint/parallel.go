package lint

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/netlist"
)

// LibraryOptions configures a whole-library lint run.
type LibraryOptions struct {
	Options
	// Roots are the cell names the design is entered through. Cells
	// unreachable from any root get an FCV008 finding. Empty means
	// every cell no other cell instantiates is a root (so FCV008 stays
	// silent — everything is its own entry point).
	Roots []string
	// Workers caps lint concurrency (0: GOMAXPROCS).
	Workers int
}

// LintLibrary lints every cell of a library concurrently: each cell is
// flattened and run through the rule set in its own goroutine, plus the
// library-level FCV008 unused-cell analysis. The merged report is
// deterministic — ordered by cell, rule, subject — regardless of
// goroutine scheduling, so repeated runs are byte-identical.
func LintLibrary(lib *netlist.Library, opt LibraryOptions) (*Report, error) {
	cells := lib.Cells()
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}

	// Waivers mutate shared state (used-entry tracking) and must also
	// see final cell names; apply them once after the merge instead of
	// inside the per-cell runs.
	cellOpt := opt.Options
	cellOpt.Waivers = nil

	type cellResult struct {
		diags []Diag
		err   error
	}
	results := make(map[string]cellResult, len(cells))
	var mu sync.Mutex
	var wg sync.WaitGroup
	work := make(chan string)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range work {
				diags, err := lintCell(lib, name, cellOpt)
				mu.Lock()
				results[name] = cellResult{diags, err}
				mu.Unlock()
			}
		}()
	}
	for _, name := range cells {
		work <- name
	}
	close(work)
	wg.Wait()

	var merged []Diag
	for _, name := range cells {
		res := results[name]
		if res.err != nil {
			return nil, fmt.Errorf("lint: cell %s: %w", name, res.err)
		}
		merged = append(merged, res.diags...)
	}
	merged = append(merged, unusedCells(lib, opt.Roots)...)
	applyWaivers(merged, opt.Waivers)
	sortDiags(merged)
	return &Report{Diags: merged}, nil
}

// lintCell flattens one cell and runs the per-circuit rules on it. The
// flat circuit is renamed back to the cell name so diagnostics and
// waivers see the name the designer wrote, not the ".flat" suffix.
func lintCell(lib *netlist.Library, name string, opt Options) ([]Diag, error) {
	flat, err := lib.Flatten(name)
	if err != nil {
		return nil, err
	}
	flat.Name = name
	rep, err := Run(flat, opt)
	if err != nil {
		return nil, err
	}
	return rep.Diags, nil
}

// unusedCells implements FCV008: cells unreachable from the roots
// through instantiation. With no roots given, every uninstantiated cell
// counts as an entry point and nothing is reported.
func unusedCells(lib *netlist.Library, roots []string) []Diag {
	cells := lib.Cells()
	instantiates := make(map[string][]string, len(cells))
	instantiated := make(map[string]bool)
	for _, name := range cells {
		for _, inst := range lib.Cell(name).Instances {
			instantiates[name] = append(instantiates[name], inst.Cell)
			instantiated[inst.Cell] = true
		}
	}
	if len(roots) == 0 {
		for _, name := range cells {
			if !instantiated[name] {
				roots = append(roots, name)
			}
		}
	}
	reached := make(map[string]bool)
	var visit func(string)
	visit = func(name string) {
		if reached[name] || lib.Cell(name) == nil {
			return
		}
		reached[name] = true
		for _, child := range instantiates[name] {
			visit(child)
		}
	}
	for _, root := range roots {
		visit(root)
	}
	meta := ruleByID(UnusedCellRuleID)
	var out []Diag
	for _, name := range cells {
		if reached[name] {
			continue
		}
		out = append(out, Diag{
			Rule:     meta.ID(),
			Severity: meta.Severity(),
			Cell:     name,
			Subject:  name,
			Loc:      lib.Cell(name).Loc,
			Message:  fmt.Sprintf("cell %s is defined but unreachable from the design top", name),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cell < out[j].Cell })
	return out
}
