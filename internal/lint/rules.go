package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/recognize"
)

// rule is the concrete Rule implementation: metadata plus a check body.
// A nil check is a library-level rule (run by LintLibrary, not per cell).
type rule struct {
	id    string
	sev   Severity
	title string
	check func(*rule, *Context)
}

func (r *rule) ID() string         { return r.id }
func (r *rule) Severity() Severity { return r.sev }
func (r *rule) Title() string      { return r.title }

func (r *rule) Check(ctx *Context) {
	if r.check != nil {
		r.check(r, ctx)
	}
}

// emit reports a finding at the rule's default severity.
func (r *rule) emit(ctx *Context, subject string, loc netlist.Loc, format string, args ...any) {
	r.emitSev(ctx, r.sev, subject, loc, format, args...)
}

// emitSev reports a finding at an explicit severity.
func (r *rule) emitSev(ctx *Context, sev Severity, subject string, loc netlist.Loc, format string, args ...any) {
	ctx.Report(Diag{
		Rule:     r.id,
		Severity: sev,
		Subject:  subject,
		Loc:      loc,
		Message:  fmt.Sprintf(format, args...),
	})
}

// The registry. IDs are stable: rules are never renumbered, only added.
// UnusedCellRuleID is checked by LintLibrary because it needs the whole
// library; its entry here carries the metadata (and a no-op body) so
// rule tables and SARIF descriptors stay complete.
const UnusedCellRuleID = "FCV008"

// DefaultRules returns the full rule set in ID order.
func DefaultRules() []Rule {
	return []Rule{
		&rule{"FCV001", Error, "floating gate: a device gate net with no driver of any kind", checkFloatingGate},
		&rule{"FCV002", Error, "undrivable node: no DC path to a rail or port (non-restoring output)", checkNoDCPath},
		&rule{"FCV003", Error, "always-on VDD→VSS sneak path (static short through permanently conducting devices)", checkSneakPath},
		&rule{"FCV004", Warn, "dangling device terminal: a source/drain node connected to nothing else", checkDangling},
		&rule{"FCV005", Warn, "dynamic node without a keeper (charge leaks away during evaluate)", checkKeeperless},
		&rule{"FCV006", Warn, "gate driven only by a single-polarity pass-transistor network (threshold drop)", checkPassOnlyGate},
		&rule{"FCV007", Warn, "zero or absurd device geometry (W, L or W/L outside sanity bounds)", checkGeometry},
		&rule{UnusedCellRuleID, Info, "unused cell: defined in the library but unreachable from the top", nil},
		&rule{"FCV009", Warn, "shadowed interface name: case-colliding node names or a port connected to nothing", checkShadowedNames},
		&rule{"FCV010", Warn, "fanout ceiling: one node drives more gates than the configured limit", checkFanout},
		&rule{"FCV011", Error, "clocked-stage discipline: no phase enables both pull-up and pull-down (C²MOS polarity miswire)", checkClockedStageDiscipline},
		&rule{"FCV012", Error, "NORA/domino discipline: dynamic node directly gates a same-phase dynamic evaluate device", checkNoraDiscipline},
		&rule{"FCV013", Error, "same-phase latch race: data crosses two transparent latches in one phase", checkLatchRace},
		&rule{"FCV014", Error, "phase-reachable drive fight: VDD and VSS drive one node under some phase assignment", checkPhaseFight},
		&rule{"FCV015", Warn, "charge-sharing exposure: keeperless dynamic node with internal evaluate nodes", checkChargeSharing},
		&rule{"FCV016", Warn, "ratioed strength: switched network does not overpower the always-on load", checkRatioedStrength},
		&rule{"FCV017", Warn, "phase-floating node: driven in some phases, floating in others, with no recognized storage", checkPhaseFloat},
		&rule{"FCV018", Error, "dead drivers: every DC path to the gate net runs through a permanently-off device", checkDeadDrivers},
	}
}

// ruleByID returns the default-registry rule with the given ID, or nil.
func ruleByID(id string) *rule {
	for _, r := range DefaultRules() {
		if r.ID() == id {
			return r.(*rule)
		}
	}
	return nil
}

// externallyDriven reports whether a node may legitimately be driven from
// outside the circuit: it is a declared port, or — in a deck with no
// declared interface at all (top-level "element soup") — any node no
// group drives. Without ports the linter cannot tell primary inputs from
// mistakes, so it assumes the charitable reading.
func (ctx *Context) externallyDriven(id netlist.NodeID) bool {
	if ctx.Circuit.Nodes[id].IsPort {
		return true
	}
	if len(ctx.Circuit.Ports) == 0 {
		_, driven := ctx.Rec.DriverOf[id]
		return !driven
	}
	return false
}

// ---------------------------------------------------------------- FCV001

// checkFloatingGate flags gate nets with no conceivable driver: not a
// port, not a supply, never a source/drain terminal, touching no
// resistor. Such a device's channel state is undefined forever. Skipped
// entirely for circuits that declare no ports — there every undriven net
// could be a primary input.
func checkFloatingGate(r *rule, ctx *Context) {
	c := ctx.Circuit
	if len(c.Ports) == 0 {
		return
	}
	for id := range ctx.gateReaders {
		if c.IsSupply(id) || c.Nodes[id].IsPort {
			continue
		}
		if ctx.channelRefs[id] > 0 || len(ctx.resistorsOn[id]) > 0 {
			continue
		}
		readers := ctx.gateReaders[id]
		names := deviceNames(readers, 3)
		r.emit(ctx, c.NodeName(id), readers[0].Loc,
			"gate net %s is driven by nothing but gates %s", c.NodeName(id), names)
	}
}

// deviceNames renders up to max device names for a message.
func deviceNames(devs []*netlist.Device, max int) string {
	var parts []string
	for i, d := range devs {
		if i == max {
			parts = append(parts, fmt.Sprintf("… (%d total)", len(devs)))
			break
		}
		parts = append(parts, d.Name)
	}
	return strings.Join(parts, ", ")
}

// ---------------------------------------------------------------- FCV002

// checkNoDCPath flags nodes that carry meaning — they drive gates — but
// have no DC path through any combination of device channels or
// resistors to a supply rail or an externally driven node. No input
// assignment can ever set their level; downstream logic reads noise.
func checkNoDCPath(r *rule, ctx *Context) {
	c := ctx.Circuit
	for id := range ctx.gateReaders {
		if c.IsSupply(id) || c.Nodes[id].IsPort || ctx.channelRefs[id] == 0 {
			continue
		}
		if ctx.channelReaches(id, func(u netlist.NodeID) bool {
			return c.IsSupply(u) || ctx.externallyDriven(u)
		}) {
			continue
		}
		r.emit(ctx, c.NodeName(id), ctx.nodeLoc(id),
			"node %s drives gates but has no DC path to any rail or port", c.NodeName(id))
	}
}

// channelReaches runs a BFS from id over device channels and resistors
// and reports whether any reached node satisfies ok. Rails terminate the
// search (they satisfy ok or never will).
func (ctx *Context) channelReaches(id netlist.NodeID, ok func(netlist.NodeID) bool) bool {
	c := ctx.Circuit
	seen := map[netlist.NodeID]bool{id: true}
	queue := []netlist.NodeID{id}
	if ok(id) {
		return true
	}
	visit := func(u netlist.NodeID, queueRef *[]netlist.NodeID) bool {
		if seen[u] {
			return false
		}
		seen[u] = true
		if ok(u) {
			return true
		}
		if !c.IsSupply(u) {
			*queueRef = append(*queueRef, u)
		}
		return false
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, d := range c.DevicesOn(u) {
			other := d.Source
			if other == u {
				other = d.Drain
			}
			if visit(other, &queue) {
				return true
			}
		}
		for _, res := range ctx.resistorsOn[u] {
			other := res.A
			if other == u {
				other = res.B
			}
			if visit(other, &queue) {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------- FCV003

// checkSneakPath finds DC paths between VDD and VSS that conduct under
// every input: chains of permanently-on devices (NMOS gated by vdd, PMOS
// gated by vss) and resistors. Such a path burns static current forever
// and usually means a miswired gate terminal.
func checkSneakPath(r *rule, ctx *Context) {
	c := ctx.Circuit
	alwaysOn := func(d *netlist.Device) bool {
		switch d.Type {
		case process.NMOS:
			return c.IsVdd(d.Gate)
		case process.PMOS:
			return c.IsVss(d.Gate)
		}
		return false
	}
	// Adjacency over always-conducting elements only.
	adj := make(map[netlist.NodeID][]netlist.NodeID)
	addEdge := func(a, b netlist.NodeID) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, d := range c.Devices {
		if alwaysOn(d) {
			addEdge(d.Source, d.Drain)
		}
	}
	for _, res := range c.Resistors {
		addEdge(res.A, res.B)
	}
	vdd, vss := c.FindNode(netlist.VddName), c.FindNode(netlist.VssName)
	if vdd == netlist.InvalidNode || vss == netlist.InvalidNode {
		return
	}
	// fromVdd: nodes connected to vdd through the always-on graph
	// (stopping at vss); toVss symmetric.
	reach := func(start, stop netlist.NodeID) map[netlist.NodeID]bool {
		seen := map[netlist.NodeID]bool{start: true}
		queue := []netlist.NodeID{start}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					if v != stop {
						queue = append(queue, v)
					}
				}
			}
		}
		return seen
	}
	fromVdd := reach(vdd, vss)
	toVss := reach(vss, vdd)
	onPath := func(a, b netlist.NodeID) bool {
		return (fromVdd[a] && toVss[b]) || (fromVdd[b] && toVss[a])
	}
	for _, d := range c.Devices {
		if alwaysOn(d) && onPath(d.Source, d.Drain) {
			r.emit(ctx, d.Name, d.Loc,
				"device %s is permanently on and lies on a VDD→VSS sneak path", d.Name)
		}
	}
	for _, res := range c.Resistors {
		if onPath(res.A, res.B) {
			r.emit(ctx, res.Name, res.Loc,
				"resistor %s lies on an always-conducting VDD→VSS sneak path", res.Name)
		}
	}
}

// ---------------------------------------------------------------- FCV004

// checkDangling flags nodes referenced by exactly one source/drain
// terminal and by nothing else — an unconnected diffusion, usually a
// typo in a net name.
func checkDangling(r *rule, ctx *Context) {
	c := ctx.Circuit
	for id, n := range c.Nodes {
		nid := netlist.NodeID(id)
		if c.IsSupply(nid) || n.IsPort || n.CapFF > 0 {
			continue
		}
		if ctx.channelRefs[nid] != 1 || len(ctx.gateReaders[nid]) > 0 || len(ctx.resistorsOn[nid]) > 0 {
			continue
		}
		r.emit(ctx, n.Name, ctx.nodeLoc(nid),
			"node %s is touched by a single device terminal and nothing else", n.Name)
	}
}

// ---------------------------------------------------------------- FCV005

// checkKeeperless flags recognized dynamic (precharge/evaluate) nodes
// whose group carries no keeper: a PMOS from vdd onto the node gated by
// an internally driven (feedback) net. Without one, the §4.2 leakage and
// charge-sharing hazards have nothing holding the node through the
// evaluate window.
func checkKeeperless(r *rule, ctx *Context) {
	c := ctx.Circuit
	for _, g := range ctx.Rec.Groups {
		if g.Family != recognize.FamilyDynamic {
			continue
		}
		for _, f := range g.Funcs {
			if !ctx.Rec.IsDynamic(f.Node) {
				continue
			}
			if dynamicKeeper(ctx, g, f.Node) != nil {
				continue
			}
			r.emit(ctx, c.NodeName(f.Node), ctx.nodeLoc(f.Node),
				"dynamic node %s has no keeper holding it through evaluate", c.NodeName(f.Node))
		}
	}
}

// dynamicKeeper returns a keeper device for the dynamic node, or nil: a
// PMOS pull-up from vdd onto the node whose gate is not a clock and is
// driven by some group (feedback through the output buffer).
func dynamicKeeper(ctx *Context, g *recognize.Group, node netlist.NodeID) *netlist.Device {
	c := ctx.Circuit
	for _, d := range g.Devices {
		if d.Type != process.PMOS {
			continue
		}
		onNode := d.Source == node || d.Drain == node
		onVdd := c.IsVdd(d.Source) || c.IsVdd(d.Drain)
		if !onNode || !onVdd || ctx.Rec.IsClock(d.Gate) {
			continue
		}
		if _, driven := ctx.Rec.DriverOf[d.Gate]; driven {
			return d
		}
	}
	return nil
}

// ---------------------------------------------------------------- FCV006

// checkPassOnlyGate flags gate nets whose driver group never touches a
// rail and steers with a single device polarity: an NMOS-only network
// passes a degraded high (Vdd−Vt), a PMOS-only network a degraded low —
// the receiving gate sees a reduced noise margin and possible static
// current. Full transmission gates (both polarities) pass.
func checkPassOnlyGate(r *rule, ctx *Context) {
	c := ctx.Circuit
	for id := range ctx.gateReaders {
		gi, ok := ctx.Rec.DriverOf[id]
		if !ok {
			continue
		}
		g := ctx.Rec.Groups[gi]
		touchesRail, nmos, pmos := false, 0, 0
		for _, d := range g.Devices {
			if c.IsSupply(d.Source) || c.IsSupply(d.Drain) {
				touchesRail = true
				break
			}
			if d.Type == process.NMOS {
				nmos++
			} else {
				pmos++
			}
		}
		if touchesRail || (nmos > 0 && pmos > 0) {
			continue
		}
		pol := "NMOS"
		if pmos > 0 {
			pol = "PMOS"
		}
		r.emit(ctx, c.NodeName(id), ctx.nodeLoc(id),
			"gate net %s is driven only through a %s-only pass network (threshold drop)", c.NodeName(id), pol)
	}
}

// ---------------------------------------------------------------- FCV007

// checkGeometry flags device sizes no real transistor has: non-positive
// W/L (error — the device model is meaningless) and aspect ratios or
// absolute dimensions outside the configured sanity window (warn —
// almost always a unit mistake, metres vs microns).
func checkGeometry(r *rule, ctx *Context) {
	for _, d := range ctx.Circuit.Devices {
		switch {
		case d.W <= 0 || d.L <= 0:
			r.emitSev(ctx, Error, d.Name, d.Loc,
				"device %s has non-positive geometry W=%g L=%g", d.Name, d.W, d.L)
		case d.W/d.Leff() > ctx.Opt.maxWL():
			r.emit(ctx, d.Name, d.Loc,
				"device %s aspect ratio W/L=%.3g exceeds %.3g", d.Name, d.W/d.Leff(), ctx.Opt.maxWL())
		case d.W/d.Leff() < ctx.Opt.minWL():
			r.emit(ctx, d.Name, d.Loc,
				"device %s aspect ratio W/L=%.3g is below %.3g", d.Name, d.W/d.Leff(), ctx.Opt.minWL())
		case d.W > ctx.Opt.maxW():
			r.emit(ctx, d.Name, d.Loc,
				"device %s width %gµm exceeds %gµm", d.Name, d.W, ctx.Opt.maxW())
		case d.Leff() > ctx.Opt.maxL():
			r.emit(ctx, d.Name, d.Loc,
				"device %s channel length %gµm exceeds %gµm", d.Name, d.Leff(), ctx.Opt.maxL())
		}
	}
}

// ---------------------------------------------------------------- FCV009

// checkShadowedNames flags interface hygiene problems: two distinct
// nodes whose names differ only by letter case (the reader writes names
// case-sensitively, so "Out" and "out" are different electrical nets —
// almost always a shadowing typo), and declared ports connected to
// nothing at all.
func checkShadowedNames(r *rule, ctx *Context) {
	c := ctx.Circuit
	byFold := make(map[string]netlist.NodeID)
	ids := make([]netlist.NodeID, 0, len(c.Nodes))
	for id := range c.Nodes {
		ids = append(ids, netlist.NodeID(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		name := c.NodeName(id)
		fold := strings.ToLower(name)
		if first, ok := byFold[fold]; ok {
			r.emit(ctx, name, ctx.nodeLoc(id),
				"node %s shadows node %s (names differ only by case)", name, c.NodeName(first))
			continue
		}
		byFold[fold] = id
	}
	for _, p := range c.Ports {
		if ctx.channelRefs[p] == 0 && len(ctx.gateReaders[p]) == 0 &&
			len(ctx.resistorsOn[p]) == 0 && c.Nodes[p].CapFF == 0 {
			r.emit(ctx, c.NodeName(p), c.Loc,
				"port %s is declared but connected to nothing", c.NodeName(p))
		}
	}
}

// ---------------------------------------------------------------- FCV010

// checkFanout flags nodes driving more gates than the configured
// ceiling. A real net this wide needs buffering; in a deck it is usually
// a merge accident (two nets that should have been distinct).
func checkFanout(r *rule, ctx *Context) {
	c := ctx.Circuit
	limit := ctx.Opt.fanoutLimit()
	for id, readers := range ctx.gateReaders {
		if c.IsSupply(id) || len(readers) <= limit {
			continue
		}
		r.emit(ctx, c.NodeName(id), ctx.nodeLoc(id),
			"node %s drives %d gates (limit %d)", c.NodeName(id), len(readers), limit)
	}
}
