//go:build race

package fleet

// raceEnabled reports whether the race detector is on. Wall-clock
// assertions are skipped under -race: instrumentation overhead is not
// uniform across kernels, so speedup ratios measured there are noise.
const raceEnabled = true
