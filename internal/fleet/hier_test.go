package fleet

import (
	"sort"
	"testing"

	"repro/internal/designs"
	"repro/internal/hier"
	"repro/internal/netlist"
)

// hierFindingIDs collects every finding ID across a report, sorted.
func hierFindingIDs(rep *Report) []string {
	var ids []string
	for i := range rep.Results {
		for _, f := range rep.Results[i].Findings() {
			ids = append(ids, f.ID)
		}
	}
	sort.Strings(ids)
	return ids
}

// TestVerifyHierMatchesFlat: on a clean deep hierarchy the composed
// hierarchical outcome must be indistinguishable from whole-netlist
// verification — same top verdict, same (empty) finding set.
func TestVerifyHierMatchesFlat(t *testing.T) {
	lib, top := designs.DeepTree(3, 4, 0)
	topC := lib.Cell(top)
	hrep, err := VerifyHier(lib, topC, Options{Core: coreOpts(), Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := lib.Flatten(top)
	if err != nil {
		t.Fatal(err)
	}
	frep := Verify([]Item{{Name: top, Circuit: flat}}, Options{Core: coreOpts()})

	topRes := &hrep.Results[len(hrep.Results)-1]
	if topRes.Subcell != top {
		t.Fatalf("last hier result is %q, want top %q", topRes.Subcell, top)
	}
	if got, want := topRes.VerdictString(), frep.Results[0].VerdictString(); got != want {
		t.Fatalf("composed top verdict %q, flat verdict %q", got, want)
	}
	hIDs, fIDs := hierFindingIDs(hrep), hierFindingIDs(frep)
	if len(hIDs) != 0 || len(fIDs) != 0 {
		t.Fatalf("corpus not clean: hier findings %v, flat findings %v", hIDs, fIDs)
	}
	// Every cell of the hierarchy must appear as a subcell item exactly
	// once, children before parents.
	seen := map[string]bool{}
	for i := range hrep.Results {
		res := &hrep.Results[i]
		if res.Subcell == "" || seen[res.Subcell] {
			t.Fatalf("result %d: bad subcell %q (dup=%v)", i, res.Subcell, seen[res.Subcell])
		}
		seen[res.Subcell] = true
	}
	if topRes.ComposedFrom == 0 {
		t.Fatal("top result composed from no children")
	}
}

// TestVerifyHierFindsLeafDefect: a defect inside one leaf must surface
// through hierarchical verification with the same composed top verdict
// whole-netlist verification reaches.
func TestVerifyHierFindsLeafDefect(t *testing.T) {
	lib, top := designs.DeepTree(3, 3, 3.0) // leaf v0 badly beta-skewed
	topC := lib.Cell(top)
	hrep, err := VerifyHier(lib, topC, Options{Core: coreOpts(), Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := lib.Flatten(top)
	if err != nil {
		t.Fatal(err)
	}
	frep := Verify([]Item{{Name: top, Circuit: flat}}, Options{Core: coreOpts()})
	if len(hierFindingIDs(frep)) == 0 {
		t.Skip("tweak produced no flat finding; corpus defect assumption broken")
	}
	if len(hierFindingIDs(hrep)) == 0 {
		t.Fatal("hier run missed the leaf defect whole-netlist verification found")
	}
	topRes := &hrep.Results[len(hrep.Results)-1]
	if got, want := topRes.VerdictString(), frep.Results[0].VerdictString(); got != want {
		t.Fatalf("composed top verdict %q, flat verdict %q", got, want)
	}
	// The defect must be attributed to the edited leaf's subcell item.
	var found bool
	for i := range hrep.Results {
		res := &hrep.Results[i]
		if res.Subcell == "dt_l0_v0" && len(res.Findings()) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("defect not attributed to leaf subcell dt_l0_v0")
	}
}

// TestVerifyHierDeterministicAcrossWorkers: the hierarchical report —
// items, fingerprints, verdicts, provenance, findings — is identical at
// any worker count.
func TestVerifyHierDeterministicAcrossWorkers(t *testing.T) {
	lib, top := designs.DeepTree(3, 4, 0)
	topC := lib.Cell(top)
	type row struct {
		name, fp, verdict, subcell, parent string
		composed                           int
	}
	var want []row
	var wantText string
	for _, workers := range []int{1, 4, 16} {
		rep, err := VerifyHier(lib, topC, Options{Core: coreOpts(), Cache: NewCache(), Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var got []row
		for i := range rep.Results {
			res := &rep.Results[i]
			got = append(got, row{res.Name, res.Fingerprint.String(), res.VerdictString(),
				res.Subcell, res.Parent, res.ComposedFrom})
		}
		if want == nil {
			want, wantText = got, rep.Text()
			continue
		}
		if rep.Text() != wantText {
			t.Fatalf("workers=%d: report text differs:\n%s\nvs\n%s", workers, rep.Text(), wantText)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d differs: %+v vs %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestVerifyHierWarmEditMissPattern is the incremental contract: after
// a one-leaf edit, a warm re-verify sharing the cache misses exactly
// the edited leaf and the cells on its path to the root, and replays
// every other subcell from cache.
func TestVerifyHierWarmEditMissPattern(t *testing.T) {
	cache := NewCache()
	cold, coldTop := designs.DeepTree(4, 3, 0)
	if _, err := VerifyHier(cold, cold.Cell(coldTop), Options{Core: coreOpts(), Cache: cache}); err != nil {
		t.Fatal(err)
	}
	edited, top := designs.DeepTree(4, 3, 0.1)
	rep, err := VerifyHier(edited, edited.Cell(top), Options{Core: coreOpts(), Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	wantMiss := map[string]bool{
		"dt_l0_v0": true, "dt_l1_v0": true, "dt_l2_v0": true, "dt_l3_v0": true, "dt_top": true,
	}
	for i := range rep.Results {
		res := &rep.Results[i]
		missed := !res.Cached && !res.DiskHit
		if missed != wantMiss[res.Subcell] {
			t.Errorf("subcell %s: miss=%v, want %v", res.Subcell, missed, wantMiss[res.Subcell])
		}
	}
	if got, want := rep.Misses, len(wantMiss); got != want {
		t.Errorf("warm re-verify misses = %d, want %d", got, want)
	}
}

// TestVerifyHierRenameInvariance: renaming a cell (and nothing else)
// must not invalidate any subcell cache entry except nothing at all —
// DAG keys are content-addressed, so the renamed run is all hits.
func TestVerifyHierRenameInvariance(t *testing.T) {
	cache := NewCache()
	lib, top := designs.DeepTree(3, 2, 0)
	if _, err := VerifyHier(lib, lib.Cell(top), Options{Core: coreOpts(), Cache: cache}); err != nil {
		t.Fatal(err)
	}
	// Rebuild the same hierarchy under different leaf cell names.
	lib2, _ := designs.DeepTree(3, 2, 0)
	renamed := netlist.NewLibrary()
	for _, name := range lib2.Cells() {
		c := lib2.Cell(name)
		if name == "dt_l0_v0" {
			c.Name = "leaf_zero"
		}
		renamed.Add(c)
	}
	for _, name := range renamed.Cells() {
		c := renamed.Cell(name)
		for _, inst := range c.Instances {
			if inst.Cell == "dt_l0_v0" {
				inst.Cell = "leaf_zero"
			}
		}
	}
	rep, err := VerifyHier(renamed, renamed.Cell(top), Options{Core: coreOpts(), Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Misses != 0 {
		for i := range rep.Results {
			res := &rep.Results[i]
			t.Logf("%s cached=%v", res.Subcell, res.Cached)
		}
		t.Fatalf("rename-only edit caused %d cache misses, want 0", rep.Misses)
	}
}

// TestVerifyHierInlineCutoffKeying: the inlining cutoff shapes every
// kept cell's scope (it decides which children fold in vs become
// ports), so two runs with different cutoffs sharing one cache must
// never alias entries — the shared-cache run reproduces the
// fresh-cache outcome and replays nothing from the other
// configuration.
func TestVerifyHierInlineCutoffKeying(t *testing.T) {
	cache := NewCache()
	lib, top := designs.DeepTree(3, 2, 0)
	repA, err := VerifyHier(lib, lib.Cell(top), Options{Core: coreOpts(), Cache: cache, HierInline: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Cutoff 100 inlines the ~50-device leaves that cutoff -1 kept, so
	// the kept parents share DAG keys across the two runs while their
	// scopes differ materially.
	repB, err := VerifyHier(lib, lib.Cell(top), Options{Core: coreOpts(), Cache: cache, HierInline: 100})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := VerifyHier(lib, lib.Cell(top), Options{Core: coreOpts(), Cache: NewCache(), HierInline: 100})
	if err != nil {
		t.Fatal(err)
	}
	if repA.ConfigKey == repB.ConfigKey {
		t.Fatalf("config keys alias across cutoffs: %q", repA.ConfigKey)
	}
	if len(repB.Results) >= len(repA.Results) {
		t.Fatalf("cutoff 100 kept %d units, want fewer than cutoff -1's %d (corpus assumption broken)",
			len(repB.Results), len(repA.Results))
	}
	if repB.Text() != ref.Text() {
		t.Fatalf("shared-cache run differs from fresh-cache run:\n%svs\n%s", repB.Text(), ref.Text())
	}
	if repB.Misses != ref.Misses {
		t.Fatalf("shared-cache run replayed %d entries from the other cutoff's configuration (misses=%d, want %d)",
			ref.Misses-repB.Misses, repB.Misses, ref.Misses)
	}
}

// TestCachePruneHier: the hier side-tables evict keys outside the live
// set once they outgrow it by hierSideSlack, and stay put below that —
// bounding a daemon's memory across edit iterations.
func TestCachePruneHier(t *testing.T) {
	c := NewCache()
	key := func(i int) hierKey {
		var fp netlist.Fingerprint
		fp[0] = byte(i)
		fp[1] = byte(i >> 8)
		return hierKey{fp: fp, cutoff: 16}
	}
	live := map[hierKey]bool{key(0): true, key(1): true}
	for i := 0; i <= 2*hierSideSlack; i++ {
		c.setHierIfc(key(i), &hier.Interface{})
		c.setHierBoundary(key(i), nil)
	}
	c.pruneHier(live)
	if len(c.hierIfcs) != len(live) || len(c.hierBound) != len(live) {
		t.Fatalf("after prune: %d ifcs / %d boundaries, want %d live each",
			len(c.hierIfcs), len(c.hierBound), len(live))
	}
	for k := range live {
		if _, ok := c.hierIfc(k); !ok {
			t.Errorf("live key %v evicted", k)
		}
	}
	// Below the slack threshold nothing is touched.
	c.setHierIfc(key(2), &hier.Interface{})
	c.pruneHier(live)
	if _, ok := c.hierIfc(key(2)); !ok {
		t.Error("prune below threshold evicted an entry")
	}
}

// TestVerifyHierFallbackFlat: a design without hierarchy goes through
// whole-netlist verification — one unsalted item, no subcell fields.
func TestVerifyHierFallbackFlat(t *testing.T) {
	lib := netlist.NewLibrary()
	c := designs.InverterChain(12)
	lib.Add(c)
	rep, err := VerifyHier(lib, c, Options{Core: coreOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("%d results, want 1", len(rep.Results))
	}
	if rep.Results[0].Subcell != "" {
		t.Fatalf("flat fallback set Subcell=%q", rep.Results[0].Subcell)
	}
	flat := Verify([]Item{{Name: c.Name, Circuit: c}}, Options{Core: coreOpts()})
	if rep.Results[0].VerdictString() != flat.Results[0].VerdictString() {
		t.Fatalf("fallback verdict %s != flat verdict %s",
			rep.Results[0].VerdictString(), flat.Results[0].VerdictString())
	}
}
