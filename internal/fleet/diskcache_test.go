package fleet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/designs"
)

// diskZoo is a corpus where verification cost dominates what a warm
// run still has to pay (fingerprinting + entry decode) — the
// warm-vs-cold speedup assertion depends on that ratio, so the corpus
// avoids designs whose finding lists make entries huge.
func diskZoo() []Item {
	return []Item{
		{Name: "adder24", Circuit: designs.DominoAdder(24)},
		{Name: "adder32", Circuit: designs.DominoAdder(32)},
		{Name: "sram16x8", Circuit: designs.SRAMArray(16, 8, 0.09)},
		{Name: "pipeline12", Circuit: designs.LatchPipeline(12, false)},
		{Name: "invchain64", Circuit: designs.InverterChain(64)},
	}
}

// entryFiles lists every entry file in a cache directory.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".json" {
			out = append(out, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDiskCacheWarmVsCold is the incremental-verification contract: a
// second run over an unchanged corpus and config replays every result
// from disk — zero verifications, identical deterministic report text,
// and at least 5x less wall clock than the cold run that populated it.
func TestDiskCacheWarmVsCold(t *testing.T) {
	dir := t.TempDir()
	cold, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldRep := Verify(diskZoo(), Options{Core: coreOpts(), DiskCache: cold, Workers: 1})
	if coldRep.DiskHits != 0 || coldRep.DiskMisses != len(diskZoo()) {
		t.Fatalf("cold run: disk hits=%d misses=%d, want 0/%d", coldRep.DiskHits, coldRep.DiskMisses, len(diskZoo()))
	}

	warm, err := OpenDiskCache(dir) // fresh handle: nothing in memory
	if err != nil {
		t.Fatal(err)
	}
	warmRep := Verify(diskZoo(), Options{Core: coreOpts(), DiskCache: warm, Workers: 1})
	if warmRep.DiskHits != len(diskZoo()) || warmRep.DiskMisses != 0 {
		t.Fatalf("warm run: disk hits=%d misses=%d, want %d/0", warmRep.DiskHits, warmRep.DiskMisses, len(diskZoo()))
	}
	for i, res := range warmRep.Results {
		if !res.DiskHit {
			t.Errorf("item %s: DiskHit=false on warm run", res.Name)
		}
		if got, want := res.VerdictString(), coldRep.Results[i].VerdictString(); got != want {
			t.Errorf("item %s: warm verdict %q != cold %q", res.Name, got, want)
		}
	}
	if got, want := warmRep.Text(), coldRep.Text(); got != want {
		t.Errorf("deterministic report text differs warm vs cold:\n--- cold ---\n%s--- warm ---\n%s", want, got)
	}
	// Findings replay exactly (same IDs in the same order).
	for i := range warmRep.Results {
		cf, wf := coldRep.Results[i].Findings(), warmRep.Results[i].Findings()
		if len(cf) != len(wf) {
			t.Fatalf("item %s: %d findings cold, %d warm", warmRep.Results[i].Name, len(cf), len(wf))
		}
		for j := range cf {
			if cf[j].ID != wf[j].ID {
				t.Errorf("item %s finding %d: ID %q cold vs %q warm", warmRep.Results[i].Name, j, cf[j].ID, wf[j].ID)
			}
		}
	}
	if !raceEnabled && warmRep.Elapsed*5 > coldRep.Elapsed {
		t.Errorf("warm run %v not >=5x faster than cold %v", warmRep.Elapsed, coldRep.Elapsed)
	}
}

// TestDiskCacheCorruptEntries pins the robustness contract: truncated
// and wrong-version entries load as misses, are evicted, and the items
// re-verify (and re-store) correctly.
func TestDiskCacheCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	items := []Item{
		{Name: "a", Circuit: designs.InverterChain(8)},
		{Name: "b", Circuit: designs.DominoAdder(8)},
	}
	base := Verify(items, Options{Core: coreOpts(), DiskCache: d})
	files := entryFiles(t, dir)
	if len(files) != 2 {
		t.Fatalf("expected 2 entries, found %d", len(files))
	}

	// Truncate the first entry mid-JSON; rewrite the second with a
	// version the current format does not accept.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var e diskEntry
	if raw, err := os.ReadFile(files[1]); err != nil {
		t.Fatal(err)
	} else if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	e.Version = "fcv-diskcache/v0"
	raw, _ := json.Marshal(&e)
	if err := os.WriteFile(files[1], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := Verify(items, Options{Core: coreOpts(), DiskCache: d2})
	if rep.DiskCorrupt != 2 || rep.DiskHits != 0 {
		t.Fatalf("corrupt=%d hits=%d, want corrupt=2 hits=0", rep.DiskCorrupt, rep.DiskHits)
	}
	if got, want := rep.Text(), base.Text(); got != want {
		t.Errorf("re-verified report differs from original:\n%s\nvs\n%s", got, want)
	}
	// The bad entries were replaced by good ones: a third run is clean.
	d3, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep3 := Verify(items, Options{Core: coreOpts(), DiskCache: d3})
	if rep3.DiskHits != 2 || rep3.DiskCorrupt != 0 {
		t.Fatalf("after repair: hits=%d corrupt=%d, want 2/0", rep3.DiskHits, rep3.DiskCorrupt)
	}
}

// TestDiskCacheConcurrentWriters runs two fleets against one cache
// directory at once (run under -race). Atomic temp+rename writes mean
// neither observes a partial entry, and afterwards the directory
// serves a fully warm run.
func TestDiskCacheConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	items := zoo()
	var wg sync.WaitGroup
	reps := make([]*Report, 2)
	for i := range reps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := OpenDiskCache(dir)
			if err != nil {
				t.Error(err)
				return
			}
			reps[i] = Verify(items, Options{Core: coreOpts(), DiskCache: d, Workers: 4})
		}(i)
	}
	wg.Wait()
	if reps[0] == nil || reps[1] == nil {
		t.Fatal("a concurrent run failed")
	}
	if got, want := reps[0].Text(), reps[1].Text(); got != want {
		t.Errorf("concurrent runs disagree:\n%s\nvs\n%s", got, want)
	}
	d, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := Verify(items, Options{Core: coreOpts(), DiskCache: d})
	if rep.DiskHits != len(items) || rep.DiskMisses != 0 {
		t.Fatalf("post-race warm run: hits=%d misses=%d, want %d/0", rep.DiskHits, rep.DiskMisses, len(items))
	}
	if got, want := rep.Text(), reps[0].Text(); got != want {
		t.Errorf("warm run disagrees with writers:\n%s\nvs\n%s", got, want)
	}
}

// TestDiskCacheGC pins LRU eviction and the stats scan.
func TestDiskCacheGC(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	Verify(zoo(), Options{Core: coreOpts(), DiskCache: d})
	st, err := d.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != len(zoo()) || st.Bytes == 0 {
		t.Fatalf("stats: entries=%d bytes=%d, want %d entries and nonzero bytes", st.Entries, st.Bytes, len(zoo()))
	}
	if st.Writes != int64(len(zoo())) {
		t.Fatalf("stats: writes=%d, want %d", st.Writes, len(zoo()))
	}
	// Shrink to roughly half: some entries evict, some survive.
	removed, freed, err := d.GC(st.Bytes / 2)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 || removed >= st.Entries || freed == 0 {
		t.Fatalf("GC removed=%d freed=%d of %d entries; want partial eviction", removed, freed, st.Entries)
	}
	st2, err := d.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Entries != st.Entries-removed || st2.Bytes > st.Bytes/2 {
		t.Fatalf("post-GC stats: entries=%d bytes=%d, want %d entries under %d bytes",
			st2.Entries, st2.Bytes, st.Entries-removed, st.Bytes/2)
	}
	if st2.Evicts != int64(removed) {
		t.Fatalf("evict counter %d != removed %d", st2.Evicts, removed)
	}
	// GC(0) empties the cache entirely.
	if _, _, err := d.GC(0); err != nil {
		t.Fatal(err)
	}
	st3, err := d.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st3.Entries != 0 || st3.Bytes != 0 {
		t.Fatalf("GC(0) left entries=%d bytes=%d", st3.Entries, st3.Bytes)
	}
}

// TestDiskCacheSizeBound pins automatic post-write eviction: with a
// byte bound set, the directory never ends a run over the bound.
func TestDiskCacheSizeBound(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.SetMaxBytes(1) // every write immediately evicts down to <=1 byte
	rep := Verify(zoo(), Options{Core: coreOpts(), DiskCache: d})
	if rep.DiskMisses != len(zoo()) {
		t.Fatalf("misses=%d, want %d", rep.DiskMisses, len(zoo()))
	}
	st, err := d.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes > 1 {
		t.Fatalf("size bound not enforced: %d bytes remain", st.Bytes)
	}
	if st.Evicts == 0 {
		t.Fatal("no evictions recorded under a 1-byte bound")
	}
}

// TestDiskCacheMemoryLayerPriority: within one run, structural twins
// resolve through the in-memory singleflight layer — the disk sees one
// lookup per distinct key, not per item.
func TestDiskCacheMemoryLayerPriority(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	items := []Item{
		{Name: "one", Circuit: designs.InverterChain(8)},
		{Name: "two", Circuit: designs.InverterChain(8)},
		{Name: "three", Circuit: designs.InverterChain(8)},
	}
	rep := Verify(items, Options{Core: coreOpts(), DiskCache: d})
	if rep.Hits != 2 || rep.Misses != 1 {
		t.Fatalf("memory layer: hits=%d misses=%d, want 2/1", rep.Hits, rep.Misses)
	}
	if rep.DiskMisses != 1 || rep.DiskHits != 0 {
		t.Fatalf("disk layer: hits=%d misses=%d, want 0/1", rep.DiskHits, rep.DiskMisses)
	}
	if n := len(entryFiles(t, dir)); n != 1 {
		t.Fatalf("%d entries on disk, want 1", n)
	}
}
