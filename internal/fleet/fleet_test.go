package fleet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/netlist"
	"repro/internal/process"
)

// zoo returns the standard design corpus in fixed order.
func zoo() []Item {
	return []Item{
		{Name: "invchain", Circuit: designs.InverterChain(12)},
		{Name: "adder16", Circuit: designs.DominoAdder(16)},
		{Name: "pipeline", Circuit: designs.LatchPipeline(6, false)},
		{Name: "sram16x8", Circuit: designs.SRAMArray(16, 8, 0.09)},
		{Name: "passmux8", Circuit: designs.PassMux(8)},
	}
}

func coreOpts() core.Options {
	return core.Options{Proc: process.CMOS075()}
}

// TestDeterministicAcrossWorkerCounts is the fleet's core contract: the
// merged report text is byte-identical across runs and -j values, with
// and without the cache. Run under -race this also exercises the
// worker pool and the singleflight cache concurrently.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	var want string
	for _, workers := range []int{1, 4, 16} {
		for _, cached := range []bool{false, true} {
			opt := Options{Core: coreOpts(), Workers: workers}
			if cached {
				opt.Cache = NewCache()
			}
			rep := Verify(zoo(), opt)
			got := rep.Text()
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("report text differs at workers=%d cache=%v:\n--- first run ---\n%s--- this run ---\n%s",
					workers, cached, want, got)
			}
		}
	}
	if want == "" {
		t.Fatal("no report produced")
	}
}

// TestCacheHitsAndMisses pins the cache arithmetic: a cold pass over n
// distinct designs is n misses; a second pass over the same corpus and
// cache is n hits, and the hit counter never decreases as passes repeat.
func TestCacheHitsAndMisses(t *testing.T) {
	cache := NewCache()
	items := zoo()
	opt := Options{Core: coreOpts(), Workers: 4, Cache: cache}

	first := Verify(items, opt)
	if first.Misses != len(items) || first.Hits != 0 {
		t.Errorf("cold pass: hits=%d misses=%d, want 0/%d", first.Hits, first.Misses, len(items))
	}
	if cache.Len() != len(items) {
		t.Errorf("cache entries = %d, want %d", cache.Len(), len(items))
	}

	// Cumulative hits across repeated warm passes grow monotonically:
	// every pass over an already-cached corpus is all hits, no misses.
	cumulative := first.Hits
	for pass := 0; pass < 3; pass++ {
		rep := Verify(items, opt)
		if rep.Misses != 0 || rep.Hits != len(items) {
			t.Errorf("warm pass %d: hits=%d misses=%d, want %d/0", pass, rep.Hits, rep.Misses, len(items))
		}
		if cumulative+rep.Hits <= cumulative {
			t.Errorf("cumulative hit counter not monotone on pass %d", pass)
		}
		cumulative += rep.Hits
		for _, res := range rep.Results {
			if !res.Cached {
				t.Errorf("warm pass %d: %s not served from cache", pass, res.Name)
			}
		}
	}
}

// TestCacheSharesStructuralTwins verifies fingerprint-level sharing: a
// corpus listing the same structure twice under different item names
// (and with renamed nodes) verifies once.
func TestCacheSharesStructuralTwins(t *testing.T) {
	a := designs.InverterChain(8)
	b := designs.InverterChain(8)
	items := []Item{{Name: "left", Circuit: a}, {Name: "right", Circuit: b}}
	rep := Verify(items, Options{Core: coreOpts(), Workers: 2, Cache: NewCache()})
	if rep.Misses != 1 || rep.Hits != 1 {
		t.Errorf("structural twins: hits=%d misses=%d, want 1/1", rep.Hits, rep.Misses)
	}
	if rep.Results[0].Fingerprint != rep.Results[1].Fingerprint {
		t.Error("identical structures got different fingerprints")
	}
}

// TestConfigChangesInvalidate verifies that a process or clock change
// misses the cache even for an identical circuit.
func TestConfigChangesInvalidate(t *testing.T) {
	cache := NewCache()
	items := []Item{{Name: "chain", Circuit: designs.InverterChain(8)}}

	base := coreOpts()
	Verify(items, Options{Core: base, Cache: cache})

	low := coreOpts()
	low.Proc = process.CMOS050()
	rep := Verify(items, Options{Core: low, Cache: cache})
	if rep.Misses != 1 {
		t.Errorf("process change: misses=%d, want 1", rep.Misses)
	}

	clocked := coreOpts()
	clocked.Clock = rep.Results[0].Report.Clock // the resolved default
	clocked.Proc = low.Proc
	rep2 := Verify(items, Options{Core: clocked, Cache: cache})
	if rep2.Hits != 1 {
		t.Errorf("explicitly spelling the resolved default clock should hit: hits=%d misses=%d", rep2.Hits, rep2.Misses)
	}
}

// TestPerItemErrorsDoNotAbort verifies a failing item (unflattened
// instances) is reported in place while the rest of the corpus
// completes, and that HasViolations flags the run.
func TestPerItemErrorsDoNotAbort(t *testing.T) {
	lib := netlist.NewLibrary()
	leaf := netlist.New("leaf")
	designs.AddInverter(leaf, "i0", "a", "y", 1, 2)
	leaf.DeclarePort("a")
	leaf.DeclarePort("y")
	lib.Add(leaf)
	broken := netlist.New("broken")
	broken.AddInstance("x0", "leaf", "a", "y") // never flattened
	items := []Item{
		{Name: "good", Circuit: designs.InverterChain(4)},
		{Name: "bad", Circuit: broken},
	}
	rep := Verify(items, Options{Core: coreOpts(), Workers: 2})
	if rep.Results[0].Err != nil {
		t.Errorf("good item errored: %v", rep.Results[0].Err)
	}
	if rep.Results[1].Err == nil {
		t.Error("unflattened item did not error")
	}
	if !rep.HasViolations() {
		t.Error("HasViolations must be true when an item errors")
	}
	_, _, _, failed := rep.Counts()
	if failed != 1 {
		t.Errorf("failed count = %d, want 1", failed)
	}
}

// TestCorpusFromLibrary flattens every cell of a small hierarchy in
// sorted order.
func TestCorpusFromLibrary(t *testing.T) {
	lib := netlist.NewLibrary()
	inv := netlist.New("inv")
	designs.AddInverter(inv, "i0", "a", "y", 1, 2)
	inv.DeclarePort("a")
	inv.DeclarePort("y")
	lib.Add(inv)
	buf := netlist.New("buf")
	buf.DeclarePort("a")
	buf.DeclarePort("y")
	buf.AddInstance("u0", "inv", "a", "m")
	buf.AddInstance("u1", "inv", "m", "y")
	lib.Add(buf)

	items, errs := CorpusFromLibrary(lib)
	if len(errs) != 0 {
		t.Fatalf("unexpected flatten errors: %v", errs)
	}
	if len(items) != 2 || items[0].Name != "buf" || items[1].Name != "inv" {
		t.Fatalf("items = %+v, want [buf inv]", items)
	}
	if len(items[0].Circuit.Instances) != 0 {
		t.Error("library corpus items must be flat")
	}
	rep := Verify(items, Options{Core: coreOpts(), Cache: NewCache()})
	if rep.HasViolations() {
		t.Errorf("trivial hierarchy should verify:\n%s", rep.Text())
	}
}

// TestLazyInvokedOnce pins Item.Lazy's at-most-once contract on every
// path: with Key set it defers to the actual miss, and without Key the
// fleet memoizes it so the up-front fingerprinting call is the only
// invocation — cached or not.
func TestLazyInvokedOnce(t *testing.T) {
	for _, tc := range []struct {
		name   string
		key    bool
		cached bool
	}{
		{"nokey-nocache", false, false},
		{"nokey-cache", false, true},
		{"key-cache", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			calls := 0
			circ := designs.InverterChain(8)
			it := Item{Name: "lazy", Lazy: func() (*netlist.Circuit, error) {
				calls++
				return circ, nil
			}}
			if tc.key {
				it.Key = circ.Fingerprint()
			}
			opt := Options{Core: coreOpts(), Workers: 1}
			if tc.cached {
				opt.Cache = NewCache()
			}
			rep := Verify([]Item{it}, opt)
			if rep.Results[0].Err != nil {
				t.Fatal(rep.Results[0].Err)
			}
			if calls != 1 {
				t.Errorf("Lazy invoked %d times, want 1", calls)
			}
		})
	}
}
