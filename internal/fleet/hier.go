// Hierarchical incremental verification: the fleet driver that keys
// the cache on the per-cell fingerprint DAG instead of one whole-
// netlist hash.
//
// Whole-netlist keying makes any edit a full cold re-verify: one
// transistor moved anywhere moves the flat fingerprint. VerifyHier
// instead verifies every cell of the hierarchy once, in isolation
// (hier.ScopeCircuit), keyed on the cell's DAG fingerprint
// (netlist.HierFingerprint) — so a one-leaf edit misses exactly the
// edited cell and the cells on its path to the root, and replays
// everything else from the same memory/disk caches a cold run filled.
// Parent results are composed deterministically from child verdicts
// plus boundary checks (hier.BoundaryFindings) and the interface
// timing arc (max of min-periods); composition is a post-pass over
// the input-ordered results, so the j-independence of Verify carries
// over unchanged.
package fleet

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/checks"
	"repro/internal/hier"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// DefaultHierInline is the Options.HierInline default: cells that
// flatten to at most this many devices are folded into their parent's
// scope rather than cached independently.
const DefaultHierInline = 16

// HierKeySalt marks subcell-scope cache entries: a scope's report
// describes the cell with child nets promoted to ports, which is not
// interchangeable with a whole-netlist report of the same circuit.
// VerifyHier appends the effective inlining cutoff to it, so entries
// from different HierInline configurations never alias either.
const HierKeySalt = "|hier-scope/v1"

// VerifyHier runs hierarchical incremental verification of the design
// rooted at top over the library. Every cell large enough to keep
// (Options.HierInline) becomes one fleet item — its isolated scope
// keyed on the cell's DAG fingerprint — and parents are composed from
// child results. When the hierarchy is absent, or inlining folds
// everything into the top, it falls back to whole-netlist Verify.
// Results appear in deterministic topological order, children before
// parents, top last.
func VerifyHier(lib *netlist.Library, top *netlist.Circuit, opt Options) (*Report, error) {
	// The hier side-tables — interface/boundary memos and the per-cell
	// fingerprint memo — live on the verification cache, so resolve it
	// up front and share one even when the caller did not ask for
	// memoization.
	if opt.Cache == nil {
		opt.Cache = NewCache()
	}
	cache := opt.Cache

	hfp, err := lib.HierFingerprintMemo(top, cache.hierMemo)
	if err != nil {
		return nil, err
	}
	cutoff := opt.HierInline
	if cutoff == 0 {
		cutoff = DefaultHierInline
	}
	keep := func(name string) bool {
		if name == top.Name {
			return true
		}
		ci := hfp.Cells[name]
		return ci != nil && ci.FlatDevices > cutoff
	}
	// FlatDevices is monotone up the tree, so an inlined cell can never
	// contain a kept one: the kept cells form a sub-DAG and hfp.Order
	// filtered by keep is still topological (children before parents).
	units := make([]string, 0, len(hfp.Order))
	for _, name := range hfp.Order {
		if keep(name) {
			units = append(units, name)
		}
	}
	if len(units) <= 1 {
		// Hierarchy absent (or entirely inlined): flattening is cheaper
		// than composing — whole-netlist verification, plain keying.
		flat, err := lib.FlattenKeep(top, nil)
		if err != nil {
			return nil, err
		}
		return Verify([]Item{{Name: top.Name, Circuit: flat}}, opt), nil
	}

	circuitOf := func(name string) *netlist.Circuit {
		if name == top.Name {
			return top
		}
		return lib.Cell(name)
	}
	dag := func(name string) netlist.Fingerprint { return hfp.Cells[name].DAG }
	keptChildren := func(name string) []string {
		var children []string
		for _, ch := range hfp.Cells[name].Children {
			if keep(ch) {
				children = append(children, ch)
			}
		}
		return children
	}

	// Effective circuits (inlined cells folded in) are built lazily and
	// memoized: a warm re-verify flattens only the cells whose results
	// — or composition derivatives — are not replayed from cache.
	var effMu sync.Mutex
	eff := make(map[string]*netlist.Circuit, len(units))
	effOf := func(name string) (*netlist.Circuit, error) {
		effMu.Lock()
		defer effMu.Unlock()
		if e := eff[name]; e != nil {
			return e, nil
		}
		e, err := lib.FlattenKeep(circuitOf(name), keep)
		if err != nil {
			return nil, err
		}
		eff[name] = e
		return e, nil
	}

	items := make([]Item, 0, len(units))
	for _, name := range units {
		name := name
		items = append(items, Item{Name: name, Key: dag(name), Lazy: func() (*netlist.Circuit, error) {
			e, err := effOf(name)
			if err != nil {
				return nil, err
			}
			return hier.ScopeCircuit(e), nil
		}})
	}

	// The cutoff shapes every kept cell's scope (it decides which
	// children are inlined into the scope vs promoted to ports), so it
	// must be part of the cache key: without it, runs with different
	// -hier-inline values sharing a cache dir — or daemon requests with
	// different ?hier_inline — would alias entries for materially
	// different circuits and silently replay wrong verdicts.
	opt.KeySalt += fmt.Sprintf("%s|inline=%d", HierKeySalt, cutoff)
	rep := Verify(items, opt)

	// Port interfaces, memoized on (DAG, cutoff) across runs: resolving
	// one recurses through kept children, so only cells under an edited
	// ancestor are ever re-derived.
	var ifcOf func(name string) (*hier.Interface, error)
	ifcOf = func(name string) (*hier.Interface, error) {
		k := hierKey{fp: dag(name), cutoff: cutoff}
		if ifc, ok := cache.hierIfc(k); ok {
			return ifc, nil
		}
		children := make(map[string]*hier.Interface)
		for _, ch := range keptChildren(name) {
			ci, err := ifcOf(ch)
			if err != nil {
				return nil, err
			}
			children[ch] = ci
		}
		e, err := effOf(name)
		if err != nil {
			return nil, err
		}
		ifc, err := hier.CellInterface(e, children)
		if err != nil {
			return nil, err
		}
		cache.setHierIfc(k, ifc)
		return ifc, nil
	}
	boundaryOf := func(name string) ([]obs.Finding, error) {
		k := hierKey{fp: dag(name), cutoff: cutoff}
		if bf, ok := cache.hierBoundary(k); ok {
			return bf, nil
		}
		children := make(map[string]*hier.Interface)
		for _, ch := range keptChildren(name) {
			ci, err := ifcOf(ch)
			if err != nil {
				return nil, err
			}
			children[ch] = ci
		}
		e, err := effOf(name)
		if err != nil {
			return nil, err
		}
		bf, err := hier.BoundaryFindings(e, children)
		if err != nil {
			return nil, err
		}
		cache.setHierBoundary(k, bf)
		return bf, nil
	}

	// First-use parents, assigned walking the DAG top-down.
	idx := make(map[string]int, len(units))
	for i, name := range units {
		idx[name] = i
	}
	parentOf := make(map[string]string, len(units))
	for i := len(units) - 1; i >= 0; i-- {
		for _, child := range hfp.Cells[units[i]].Children {
			if _, claimed := parentOf[child]; keep(child) && !claimed {
				parentOf[child] = units[i]
			}
		}
	}

	// Deterministic composition post-pass in topological order: by the
	// time a parent composes, every child already carries its own
	// composed verdict and timing arc.
	var composed int64
	for i, name := range units {
		res := &rep.Results[i]
		res.Subcell = name
		res.Parent = parentOf[name]
		if res.Err != nil {
			continue
		}
		v := res.Report.Verdict
		minP := res.Report.Timing.MinPeriodPS
		children := keptChildren(name)
		if len(children) > 0 {
			bf, err := boundaryOf(name)
			if err != nil {
				return nil, err
			}
			res.extra = bf
			for _, f := range bf {
				if fv := severityVerdict(f.Severity); fv > v {
					v = fv
				}
			}
			for _, ch := range children {
				cres := &rep.Results[idx[ch]]
				if cres.Err != nil {
					continue
				}
				if cv := cres.EffectiveVerdict(); cv > v {
					v = cv
				}
				if cres.ComposedMinPeriodPS > minP {
					minP = cres.ComposedMinPeriodPS
				}
			}
			res.ComposedFrom = len(children)
			composed++
		}
		res.composed, res.composeSet = v, true
		res.ComposedMinPeriodPS = minP
	}
	for _, name := range units {
		res := &rep.Results[idx[name]]
		if res.ComposedFrom > 0 {
			opt.Events.Emit("subcell-compose", fmt.Sprintf("%s verdict=%s children=%d boundary=%d",
				name, res.VerdictString(), res.ComposedFrom, len(res.extra)))
		}
	}
	if opt.Obs != nil {
		hits := 0
		for i := range rep.Results {
			if rep.Results[i].Cached || rep.Results[i].DiskHit {
				hits++
			}
		}
		opt.Obs.Add("fleet.subcell.hit", int64(hits))
		opt.Obs.Add("fleet.subcell.miss", int64(len(rep.Results)-hits))
		opt.Obs.Add("fleet.subcell.compose", composed)
	}
	// Bound the side-tables for long-running daemons: entries keyed by
	// superseded DAG hashes (earlier edit iterations) are pruned once
	// they outnumber this run's live set by a wide margin.
	live := make(map[hierKey]bool, len(units))
	for _, name := range units {
		live[hierKey{fp: dag(name), cutoff: cutoff}] = true
	}
	cache.pruneHier(live)
	return rep, nil
}

// severityVerdict maps a finding severity onto the verdict lattice.
func severityVerdict(sev string) checks.Verdict {
	switch sev {
	case "violation":
		return checks.Violation
	case "inspect", "warn":
		return checks.Inspect
	}
	return checks.Pass
}

// HierFromDeck parses one SPICE deck and resolves its hierarchy root
// with the same top inference as ItemsFromDeck: a named top wins (cell
// name, or the element soup's name), an element soup is the top, else
// the last-defined cell.
func HierFromDeck(r io.Reader, srcName, top string) (*netlist.Library, *netlist.Circuit, error) {
	lib, soup, err := netlist.ParseNamed(r, srcName)
	if err != nil {
		return nil, nil, err
	}
	soupLive := len(soup.Devices) > 0 || len(soup.Instances) > 0 || len(soup.Resistors) > 0
	var t *netlist.Circuit
	switch {
	case top != "":
		t = lib.Cell(top)
		if t == nil && soupLive && soup.Name == top {
			t = soup
		}
		if t == nil {
			return nil, nil, fmt.Errorf("fleet: deck %s: unknown top cell %q", srcName, top)
		}
	case soupLive:
		t = soup
	default:
		names := lib.Cells()
		if len(names) == 0 {
			return nil, nil, fmt.Errorf("fleet: empty deck %s", srcName)
		}
		t = lib.Cell(names[len(names)-1])
	}
	return lib, t, nil
}
