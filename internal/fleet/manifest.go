package fleet

import (
	"fmt"
	"io"

	"repro/internal/netlist"
	"repro/internal/obs"
)

// BuildManifest assembles the run manifest from a fleet report and its
// telemetry collector: the collector contributes the span tree,
// counters, gauges and histograms; the report contributes the corpus
// half (items with their provenanced findings, verdict tallies,
// workers, wall clock, config key). Every fcv manifest producer —
// verify, bench, the serve daemon — goes through here so the documents
// stay diffable against each other.
func BuildManifest(tool string, rep *Report, col *obs.Collector) *obs.Manifest {
	m := obs.NewManifest(tool, rep.ConfigKey, col)
	m.Workers = rep.Workers
	m.WallMS = float64(rep.Elapsed.Microseconds()) / 1000
	for _, res := range rep.Results {
		m.Items = append(m.Items, obs.ManifestItem{
			Name:        res.Name,
			Fingerprint: res.Fingerprint.String(),
			Verdict:     res.VerdictString(),
			Cached:      res.Cached,
			ElapsedMS:   float64(res.Elapsed.Microseconds()) / 1000,
			Findings:    res.Findings(),
			Subcell:     res.Subcell,
			Parent:      res.Parent,
			DiskHit:     res.DiskHit,
		})
	}
	p, i, v, f := rep.Counts()
	m.Verdicts = obs.VerdictTally{Pass: p, Inspect: i, Violation: v, Error: f}
	return m
}

// ItemsFromDeck parses one SPICE deck from r and returns its fleet
// items: with cells, every cell of the library (top-level element soup
// included) becomes an item; otherwise the single named — or inferred —
// top is flattened, following the same inference as the fcv CLI (a
// named top wins; an element soup is the top; else the last-defined
// cell). srcName labels parse locations (and so lint findings) exactly
// like a file path would, so a daemon reading the deck off the wire
// under the deck's own name produces findings byte-identical to a batch
// run over the file.
func ItemsFromDeck(r io.Reader, srcName, top string, cells bool) ([]Item, error) {
	lib, soup, err := netlist.ParseNamed(r, srcName)
	if err != nil {
		return nil, err
	}
	soupLive := len(soup.Devices) > 0 || len(soup.Instances) > 0 || len(soup.Resistors) > 0
	if cells {
		if soupLive {
			lib.Add(soup)
		}
		items, errs := CorpusFromLibrary(lib)
		if len(errs) > 0 {
			return nil, errs[0]
		}
		if len(items) == 0 {
			return nil, fmt.Errorf("fleet: empty deck %s", srcName)
		}
		return items, nil
	}
	var flat *netlist.Circuit
	switch {
	case top != "":
		flat, err = lib.Flatten(top)
	case !soupLive:
		names := lib.Cells()
		if len(names) == 0 {
			return nil, fmt.Errorf("fleet: empty deck %s", srcName)
		}
		flat, err = lib.Flatten(names[len(names)-1])
	default:
		lib.Add(soup)
		flat, err = lib.Flatten(soup.Name)
	}
	if err != nil {
		return nil, err
	}
	return []Item{{Name: flat.Name, Circuit: flat}}, nil
}
