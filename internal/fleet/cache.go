package fleet

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Cache memoizes core.Verify outcomes keyed on structural fingerprint
// plus configuration key. It is safe for concurrent use and uses
// singleflight admission: when several workers race on the same key,
// exactly one runs the verification and the rest block on its entry —
// so hit/miss counts are deterministic for a given corpus (every
// distinct key misses exactly once, ever), not scheduling-dependent.
//
// Invalidation is by key construction, not eviction: a change to the
// circuit's structure, sizing or models moves the fingerprint, and a
// change to the process model, clock, couplings or lint configuration
// moves the config key. Stale entries are simply never looked up again;
// the cache is unbounded and meant to live for a process or a
// benchmark, not a daemon.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry

	// Hierarchical composition side-tables, keyed on (DAG fingerprint,
	// inlining cutoff): the port interface and boundary findings of a
	// subcell are pure functions of its DAG content and the cutoff that
	// shaped its effective scope, so a warm re-verify replays them
	// instead of re-flattening and re-classifying untouched cells.
	// Unlike the main entry map they are bounded: VerifyHier prunes
	// stale keys (pruneHier) so daemon edit history cannot grow them
	// without limit.
	hierMu    sync.Mutex
	hierIfcs  map[hierKey]*hier.Interface
	hierBound map[hierKey][]obs.Finding

	// hierMemo short-circuits the per-cell refinement inside
	// HierFingerprint for cells whose content and child labels are
	// unchanged since a previous run through this cache.
	hierMemo *netlist.HierFPMemo
}

type cacheKey struct {
	fp  netlist.Fingerprint
	cfg string
}

// hierKey identifies a subcell's composition derivatives.
type hierKey struct {
	fp     netlist.Fingerprint // the cell's DAG fingerprint
	cutoff int                 // HierInline cutoff shaping the effective scope
}

// cacheEntry carries the creating caller's circuit and options into the
// once body, so the verification — and its telemetry spans — always
// attribute to the item whose lookup created the entry (the run's
// deterministic miss), even when a concurrent hit wins the race to
// execute the once. done flips after the once completes, letting later
// callers distinguish a settled hit from blocking on an in-flight run.
type cacheEntry struct {
	once    sync.Once
	done    atomic.Bool
	circuit func() (*netlist.Circuit, error)
	opt     core.Options
	rep     *core.Report
	err     error

	// Disk-layer outcome, set inside the once when a DiskCache was
	// attached: how the disk lookup went, how many entries the write
	// evicted, and — on a disk hit — the stored findings (rep is then a
	// skeleton that cannot recompute them).
	disk        diskOutcome
	diskWrote   bool
	diskEvicted int
	findings    []obs.Finding
}

// NewCache returns an empty verification cache.
func NewCache() *Cache {
	return &Cache{
		entries:   make(map[cacheKey]*cacheEntry),
		hierIfcs:  make(map[hierKey]*hier.Interface),
		hierBound: make(map[hierKey][]obs.Finding),
		hierMemo:  netlist.NewHierFPMemo(),
	}
}

// hierIfc returns the memoized port interface for a subcell key.
func (c *Cache) hierIfc(k hierKey) (*hier.Interface, bool) {
	c.hierMu.Lock()
	defer c.hierMu.Unlock()
	ifc, ok := c.hierIfcs[k]
	return ifc, ok
}

// setHierIfc stores a subcell's port interface. Concurrent writers
// store identical values (the interface is derived deterministically
// from the key's content), so last-write-wins is sound.
func (c *Cache) setHierIfc(k hierKey, ifc *hier.Interface) {
	c.hierMu.Lock()
	defer c.hierMu.Unlock()
	c.hierIfcs[k] = ifc
}

// hierBoundary returns the memoized boundary findings for a subcell
// key. The boolean distinguishes "cached empty" from "not cached".
func (c *Cache) hierBoundary(k hierKey) ([]obs.Finding, bool) {
	c.hierMu.Lock()
	defer c.hierMu.Unlock()
	bf, ok := c.hierBound[k]
	return bf, ok
}

// setHierBoundary stores a subcell's boundary findings (nil slices are
// normalized to empty so presence survives the round trip).
func (c *Cache) setHierBoundary(k hierKey, bf []obs.Finding) {
	if bf == nil {
		bf = []obs.Finding{}
	}
	c.hierMu.Lock()
	defer c.hierMu.Unlock()
	c.hierBound[k] = bf
}

// hierSideSlack bounds the hier side-tables relative to the most recent
// run's live cell set: pruning kicks in only once a table exceeds this
// multiple of the live keys, so steady re-verification of one design
// never pays for it while a daemon's edit history cannot grow the
// tables without bound.
const hierSideSlack = 8

// pruneHier drops side-table entries outside the live key set once a
// table has outgrown hierSideSlack times it. The tables are otherwise
// append-only — every edit iteration in a long-running daemon adds
// DAG-keyed entries that would never be looked up again — and a pruned
// entry is merely re-derived on next use, so eviction is always safe.
func (c *Cache) pruneHier(live map[hierKey]bool) {
	c.hierMu.Lock()
	defer c.hierMu.Unlock()
	if len(c.hierIfcs) > hierSideSlack*len(live) {
		for k := range c.hierIfcs {
			if !live[k] {
				delete(c.hierIfcs, k)
			}
		}
	}
	if len(c.hierBound) > hierSideSlack*len(live) {
		for k := range c.hierBound {
			if !live[k] {
				delete(c.hierBound, k)
			}
		}
	}
}

// Len returns the number of distinct (fingerprint, config) entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// verify returns the memoized entry for the circuit, resolving it
// under the entry's once on first sight of the key. fresh is true for
// the single caller whose lookup created the entry — the run's miss;
// every other caller is a hit. inflight is true for hits that arrived
// before the resolution finished and had to block on it.
//
// The circuit arrives as a provider, invoked only when the outcome
// actually has to be computed — never on a memory or disk hit. That is
// what makes lazy items (Item.Lazy) effective: a warm re-verify skips
// circuit construction entirely for every cache-hit key.
//
// When disk is non-nil the once body consults the persistent layer
// first: a disk hit replays the stored outcome without running
// core.Verify at all; a disk miss verifies fresh and stores the result
// (errored outcomes are never persisted — a transient failure should
// not poison future runs). Because the disk I/O happens inside the
// once, per-key disk hit/miss counts stay singleflight-deterministic
// at any worker count, exactly like the memory layer's.
func (c *Cache) verify(fp netlist.Fingerprint, cfg string, circuit func() (*netlist.Circuit, error), opt core.Options, disk *DiskCache) (e *cacheEntry, fresh, inflight bool) {
	key := cacheKey{fp: fp, cfg: cfg}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{circuit: circuit, opt: opt}
		c.entries[key] = e
		fresh = true
	}
	c.mu.Unlock()
	inflight = !fresh && !e.done.Load()
	e.once.Do(func() {
		if disk != nil {
			if ent, out := disk.load(fp, cfg); out == diskHit {
				e.rep = ent.report()
				e.findings = ent.Findings
				e.disk = diskHit
			} else {
				e.disk = out
			}
		}
		if e.rep == nil {
			var circ *netlist.Circuit
			if circ, e.err = e.circuit(); e.err == nil {
				e.rep, e.err = core.Verify(circ, e.opt)
			}
			if disk != nil && e.err == nil {
				var serr error
				e.diskEvicted, serr = disk.store(fp, cfg, e.rep)
				e.diskWrote = serr == nil
			}
		}
		e.circuit, e.opt = nil, core.Options{} // release the inputs
		e.done.Store(true)
	})
	return e, fresh, inflight
}
