package fleet

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/netlist"
)

// Cache memoizes core.Verify outcomes keyed on structural fingerprint
// plus configuration key. It is safe for concurrent use and uses
// singleflight admission: when several workers race on the same key,
// exactly one runs the verification and the rest block on its entry —
// so hit/miss counts are deterministic for a given corpus (every
// distinct key misses exactly once, ever), not scheduling-dependent.
//
// Invalidation is by key construction, not eviction: a change to the
// circuit's structure, sizing or models moves the fingerprint, and a
// change to the process model, clock, couplings or lint configuration
// moves the config key. Stale entries are simply never looked up again;
// the cache is unbounded and meant to live for a process or a
// benchmark, not a daemon.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
}

type cacheKey struct {
	fp  netlist.Fingerprint
	cfg string
}

// cacheEntry carries the creating caller's circuit and options into the
// once body, so the verification — and its telemetry spans — always
// attribute to the item whose lookup created the entry (the run's
// deterministic miss), even when a concurrent hit wins the race to
// execute the once. done flips after the once completes, letting later
// callers distinguish a settled hit from blocking on an in-flight run.
type cacheEntry struct {
	once    sync.Once
	done    atomic.Bool
	circuit *netlist.Circuit
	opt     core.Options
	rep     *core.Report
	err     error
}

// NewCache returns an empty verification cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry)}
}

// Len returns the number of distinct (fingerprint, config) entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// verify returns the memoized outcome for the circuit, running
// core.Verify under the entry's once on first sight of the key. fresh
// is true for the single caller whose lookup created the entry — the
// run's miss; every other caller is a hit. inflight is true for hits
// that arrived before the verification finished and had to block on it.
func (c *Cache) verify(fp netlist.Fingerprint, cfg string, circuit *netlist.Circuit, opt core.Options) (rep *core.Report, err error, fresh, inflight bool) {
	key := cacheKey{fp: fp, cfg: cfg}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{circuit: circuit, opt: opt}
		c.entries[key] = e
		fresh = true
	}
	c.mu.Unlock()
	inflight = !fresh && !e.done.Load()
	e.once.Do(func() {
		e.rep, e.err = core.Verify(e.circuit, e.opt)
		e.circuit, e.opt = nil, core.Options{} // release the inputs
		e.done.Store(true)
	})
	return e.rep, e.err, fresh, inflight
}
