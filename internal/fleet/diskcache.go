// Persistent on-disk result cache: the cross-run half of the fleet's
// memoization.
//
// The in-memory Cache makes repeated structures within one run free;
// the DiskCache makes repeated *runs* free. Entries are content
// addressed — the file name is a hash of (format version, structural
// fingerprint, configuration key) — so invalidation is by key
// construction exactly like the memory cache: an edited circuit moves
// its fingerprint, a changed process model or lint setup moves the
// config key, and a new cache format version orphans every old entry.
// Stale entries are never looked up again and are reclaimed by the
// size-bounded LRU GC, not by any explicit invalidation step.
//
// Robustness contract: a cache directory is advisory state. Loads
// tolerate truncated, corrupt, mismatched or concurrently-rewritten
// entries by treating them as misses (and deleting the bad file);
// writes are atomic (temp + fsync + rename) so a reader never observes
// a partial entry; two processes sharing one directory race only on
// whole files, which rename makes safe.
package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checks"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/timing"
)

// DiskCacheVersion identifies the entry format AND the verification
// semantics that produced it. Bump it whenever the pipeline's outcomes
// can change for an unchanged (fingerprint, config) pair — a new check,
// a fixed delay model — and every stale entry becomes unreachable.
const DiskCacheVersion = "fcv-diskcache/v1"

// DiskCache is a persistent verification result cache rooted at one
// directory. Safe for concurrent use within a process and between
// processes sharing the directory. The zero value is not usable;
// construct with OpenDiskCache.
type DiskCache struct {
	dir      string
	maxBytes int64 // automatic post-write GC threshold; 0 = unbounded

	// Lifetime tallies (since open), surfaced by Stats and `fcv cache`.
	hits, misses, writes, evicts, corrupts atomic.Int64

	gcMu sync.Mutex // serializes GC scans within the process

	// keyLocks stripe per-entry serialization across load, store and GC
	// removal — the disk layer's analogue of the memory cache's per-key
	// once. Without it a long-lived daemon and a GC (its own post-write
	// bound, or `fcv cache gc` logic running in-process) can interleave
	// on one entry: GC's Remove lands on a file a store just refreshed
	// (evicting the *newest* entry), or load's corrupt-eviction Remove
	// deletes a valid entry a concurrent store re-wrote after load read
	// the stale bytes. Striped by path hash; collisions only add
	// serialization, never unsafety.
	keyLocks [64]sync.Mutex
}

// keyLock returns the stripe guarding one entry path.
func (d *DiskCache) keyLock(path string) *sync.Mutex {
	var h uint32 = 2166136261
	for i := 0; i < len(path); i++ {
		h = (h ^ uint32(path[i])) * 16777619
	}
	return &d.keyLocks[h%uint32(len(d.keyLocks))]
}

// OpenDiskCache opens (creating if needed) a cache directory.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if dir == "" {
		return nil, errors.New("fleet: empty disk cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: open disk cache: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (d *DiskCache) Dir() string { return d.dir }

// SetMaxBytes bounds the cache: after every write exceeding the bound,
// least-recently-used entries are evicted until the total fits. Zero
// (the default) disables automatic eviction; GC can still be invoked
// explicitly.
func (d *DiskCache) SetMaxBytes(n int64) { d.maxBytes = n }

// diskEntry is the serialized verification outcome. It stores the
// summary the fleet's consumers read — verdict, inspect load, timing
// numbers, provenanced findings — not the full object graph (a
// core.Report holds the whole recognized circuit); loadReport rebuilds
// a skeleton sufficient for report text, manifests and diffs.
type diskEntry struct {
	Version     string        `json:"version"`
	Fingerprint string        `json:"fingerprint"`
	ConfigKey   string        `json:"config_key"`
	Design      string        `json:"design"`
	Verdict     int           `json:"verdict"`
	VerdictName string        `json:"verdict_name"`
	InspectLoad int           `json:"inspect_load"`
	MinPeriodPS float64       `json:"min_period_ps"`
	Races       int           `json:"races"`
	Paths       int           `json:"paths"`
	Findings    []obs.Finding `json:"findings"`
}

// report rebuilds the skeletal core.Report for a disk hit: every field
// the fleet's deterministic outputs consume (Report.Text, Counts,
// HasViolations, manifests). Stage-level detail (Recognition, Checks,
// Lint, per-path timing) is deliberately absent — consumers needing it
// must verify fresh, without a disk cache.
func (e *diskEntry) report() *core.Report {
	return &core.Report{
		Design:      e.Design,
		Verdict:     checks.Verdict(e.Verdict),
		InspectLoad: e.InspectLoad,
		Timing: &timing.Report{
			MinPeriodPS: e.MinPeriodPS,
			Races:       make([]timing.Path, e.Races),
			Paths:       make([]timing.Path, e.Paths),
		},
	}
}

// entryPath is the content address: sha256 over version, fingerprint
// and config key, fanned out over 256 subdirectories.
func (d *DiskCache) entryPath(fp netlist.Fingerprint, cfg string) string {
	h := sha256.New()
	h.Write([]byte(DiskCacheVersion))
	h.Write([]byte{0})
	h.Write(fp[:])
	h.Write([]byte{0})
	h.Write([]byte(cfg))
	name := hex.EncodeToString(h.Sum(nil))
	return filepath.Join(d.dir, name[:2], name[2:]+".json")
}

// diskOutcome classifies one load. The zero value means no disk layer
// was consulted (memory-only caching).
type diskOutcome int

const (
	diskNone diskOutcome = iota
	diskHit
	diskMiss
	// diskCorrupt is a miss caused by an unreadable, truncated or
	// mismatched entry; the bad file has been evicted.
	diskCorrupt
)

// load fetches the entry for (fp, cfg). A hit refreshes the entry's
// mtime so GC's LRU ordering tracks use, not just creation. The whole
// read-judge-evict sequence holds the entry's key lock so a concurrent
// store or GC on the same key cannot interleave (see keyLocks).
func (d *DiskCache) load(fp netlist.Fingerprint, cfg string) (*diskEntry, diskOutcome) {
	path := d.entryPath(fp, cfg)
	mu := d.keyLock(path)
	mu.Lock()
	defer mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			d.misses.Add(1)
			return nil, diskMiss
		}
		d.corrupts.Add(1)
		os.Remove(path)
		return nil, diskCorrupt
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Version != DiskCacheVersion ||
		e.Fingerprint != fp.String() ||
		e.ConfigKey != cfg {
		// Truncated write, foreign format, version skew, or a hash
		// collision across keys: all are treated as "this entry does
		// not exist" and the file is reclaimed.
		d.corrupts.Add(1)
		os.Remove(path)
		return nil, diskCorrupt
	}
	d.hits.Add(1)
	now := obs.Now()
	os.Chtimes(path, now, now) // best effort: LRU recency
	return &e, diskHit
}

// store persists a completed verification outcome and, when a size
// bound is set, evicts LRU entries to honor it. Returns the eviction
// count. Errors are advisory — a failed store leaves the cache exactly
// as it was.
func (d *DiskCache) store(fp netlist.Fingerprint, cfg string, rep *core.Report) (evicted int, err error) {
	e := diskEntry{
		Version:     DiskCacheVersion,
		Fingerprint: fp.String(),
		ConfigKey:   cfg,
		Design:      rep.Design,
		Verdict:     int(rep.Verdict),
		VerdictName: rep.Verdict.String(),
		InspectLoad: rep.InspectLoad,
		Findings:    rep.Findings(),
	}
	if rep.Timing != nil {
		e.MinPeriodPS = rep.Timing.MinPeriodPS
		e.Races = len(rep.Timing.Races)
		e.Paths = len(rep.Timing.Paths)
	}
	data, err := json.Marshal(&e)
	if err != nil {
		return 0, fmt.Errorf("fleet: disk cache marshal: %w", err)
	}
	path := d.entryPath(fp, cfg)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, fmt.Errorf("fleet: disk cache store: %w", err)
	}
	// The write holds the key lock (released before the post-write GC,
	// which takes key locks itself) so a concurrent load or GC removal
	// of this entry serializes against it.
	mu := d.keyLock(path)
	mu.Lock()
	err = obs.WriteFileAtomic(path, data)
	mu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("fleet: disk cache store: %w", err)
	}
	d.writes.Add(1)
	if d.maxBytes > 0 {
		evicted, _, _ = d.GC(d.maxBytes)
	}
	return evicted, nil
}

// diskFile is one entry in a GC/Stats scan.
type diskFile struct {
	path  string
	size  int64
	mtime time.Time
}

// scan lists every entry file under the cache root.
func (d *DiskCache) scan() ([]diskFile, error) {
	var files []diskFile
	err := filepath.WalkDir(d.dir, func(path string, de fs.DirEntry, err error) error {
		if err != nil || de.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		info, ierr := de.Info()
		if ierr != nil {
			return nil // raced with an eviction: skip
		}
		files = append(files, diskFile{path: path, size: info.Size(), mtime: info.ModTime()})
		return nil
	})
	return files, err
}

// testHookGCScan, when non-nil, runs between GC's directory scan and
// its first removal — a seam for the regression tests to interleave a
// store/load with an in-flight GC deterministically.
var testHookGCScan func()

// GC evicts least-recently-used entries until the cache's total size
// is at most maxBytes (0 removes everything). Returns the number of
// entries removed and the bytes freed.
//
// Eviction is per-key race-safe: each removal holds the entry's key
// lock and re-checks the file's mtime against the scan snapshot first.
// An entry touched since the scan — a store rewrote it, or a load's
// hit refreshed its recency — is no longer the LRU candidate the scan
// judged it to be and is skipped, so a GC racing a live daemon can
// never evict an entry that just became the cache's freshest.
func (d *DiskCache) GC(maxBytes int64) (removed int, freed int64, err error) {
	d.gcMu.Lock()
	defer d.gcMu.Unlock()
	files, err := d.scan()
	if err != nil {
		return 0, 0, fmt.Errorf("fleet: disk cache gc: %w", err)
	}
	if testHookGCScan != nil {
		testHookGCScan()
	}
	var total int64
	for _, f := range files {
		total += f.size
	}
	if total <= maxBytes {
		return 0, 0, nil
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].path < files[j].path
	})
	for _, f := range files {
		if total <= maxBytes {
			break
		}
		mu := d.keyLock(f.path)
		mu.Lock()
		info, statErr := os.Stat(f.path)
		if statErr != nil {
			mu.Unlock()
			continue // another process got it first
		}
		if !info.ModTime().Equal(f.mtime) {
			mu.Unlock()
			continue // touched since the scan: recently used, not LRU
		}
		rmErr := os.Remove(f.path)
		mu.Unlock()
		if rmErr != nil {
			continue
		}
		total -= f.size
		freed += f.size
		removed++
		d.evicts.Add(1)
	}
	return removed, freed, nil
}

// DiskStats is a point-in-time view of a cache directory plus the
// lifetime traffic tallies of this DiskCache handle.
type DiskStats struct {
	Dir     string `json:"dir"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
	Hits    int64  `json:"hits"`
	Misses  int64  `json:"misses"`
	Writes  int64  `json:"writes"`
	Evicts  int64  `json:"evicts"`
	Corrupt int64  `json:"corrupt"`
}

// Stats scans the directory and reports entry count, total bytes and
// the handle's lifetime hit/miss/write/evict/corrupt counts.
func (d *DiskCache) Stats() (DiskStats, error) {
	files, err := d.scan()
	if err != nil {
		return DiskStats{}, fmt.Errorf("fleet: disk cache stats: %w", err)
	}
	st := DiskStats{
		Dir:     d.dir,
		Entries: len(files),
		Hits:    d.hits.Load(),
		Misses:  d.misses.Load(),
		Writes:  d.writes.Load(),
		Evicts:  d.evicts.Load(),
		Corrupt: d.corrupts.Load(),
	}
	for _, f := range files {
		st.Bytes += f.size
	}
	return st, nil
}
