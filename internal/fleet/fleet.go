// Package fleet is the full-corpus verification driver: it pushes many
// designs through the CBV pipeline (core.Verify) in parallel and merges
// the per-design outcomes into one deterministic report.
//
// The paper's methodology is chip-scale — §2's CBV flow verifies every
// structure of a microprocessor, not one cell at a time — so the
// reproduction needs a driver that treats "all cells of the design" as
// the unit of work. Two properties carry the weight:
//
//   - Determinism: the merged report is byte-identical regardless of
//     worker count or scheduling, the same contract the lint driver
//     established. Results are collected per-item and rendered in input
//     order; wall-clock numbers are reported separately from the stable
//     text.
//
//   - Memoization: verification outcomes are cached under the circuit's
//     structural fingerprint (netlist.Fingerprint — invariant under node
//     renaming and device order) plus a configuration key, so repeated
//     cells, re-runs, and rename-only edits hit the cache instead of
//     re-verifying.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checks"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Item is one unit of fleet work: a named flat circuit.
type Item struct {
	// Name labels the item in the merged report (usually the cell or
	// deck name; distinct from the circuit's own name so two decks
	// defining the same cell stay distinguishable).
	Name string
	// Circuit is the flat design to verify.
	Circuit *netlist.Circuit
	// Lazy, when Circuit is nil, supplies the circuit on demand. The
	// fleet memoizes it, so it runs at most once, and with Key set only
	// when the result cannot be replayed from a cache — the
	// hierarchical driver uses it to defer subcell scope construction
	// to actual misses. Without Key it still runs exactly once, but up
	// front (the circuit must be fingerprinted), losing the laziness.
	Lazy func() (*netlist.Circuit, error)
	// Key, when non-zero, overrides the cache-key fingerprint. The
	// hierarchical driver keys each subcell scope on the cell's DAG
	// fingerprint — which moves when any descendant changes — instead
	// of the scope circuit's own hash, which would not.
	Key netlist.Fingerprint
}

// Options configures a fleet run.
type Options struct {
	// Core is the per-design verification configuration.
	Core core.Options
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, memoizes verification results across items
	// and runs keyed on structural fingerprint + configuration. Items
	// with identical structure verify once.
	Cache *Cache
	// DiskCache, when non-nil, adds the persistent cross-run layer:
	// each in-memory miss consults the cache directory before running
	// core.Verify, and stores its result after. When Cache is nil a
	// run-local one is created automatically — the disk layer requires
	// singleflight admission to keep its hit/miss counts deterministic.
	DiskCache *DiskCache
	// Obs, when non-nil, collects run telemetry: a "fleet" root span
	// with one child span per item (stage sub-spans under each from
	// core.Verify), deterministic cache counters, duration histograms,
	// and volatile gauges for queue wait, worker utilization and
	// inflight cache blocking. Nil costs nothing on the hot path.
	Obs *obs.Collector
	// Events, when non-nil, receives the live JSONL event stream:
	// run-start/run-end at the fleet level and item-start, cache
	// hit/miss, per-stage, finding and item-end events per item. Per-item
	// events buffer in obs.EventScopes pre-created in input order, so the
	// stream's event sequence is deterministic at any worker count (only
	// the t_ms timestamps vary). The fleet does not Close the sink — the
	// caller owns its lifetime.
	Events *obs.EventSink
	// PprofLabels tags each worker goroutine with the item's name
	// (fcv_cell) while it verifies, and stage names (fcv_stage) inside
	// core.Verify, so CPU profiles attribute samples to cells and
	// pipeline stages.
	PprofLabels bool
	// KeySalt is appended to the configuration cache key. Runs whose
	// items are not interchangeable with plain whole-netlist results —
	// hierarchical subcell scopes — salt the key so the two families
	// never share cache entries.
	KeySalt string
	// HierInline is the VerifyHier inlining cutoff: cells whose fully
	// flattened device count is at or below it are folded into their
	// parent's verification scope instead of getting their own cache
	// entry (tiny cells cost more to compose than to re-verify).
	// 0 means the default (16); negative disables inlining.
	HierInline int
}

// Result is the outcome for one item.
type Result struct {
	// Name is the item's label.
	Name string
	// Fingerprint is the circuit's structural hash (zero if the report
	// errored before fingerprinting, which cannot currently happen).
	Fingerprint netlist.Fingerprint
	// Cached reports the result came from the in-memory cache rather
	// than this item's own lookup.
	Cached bool
	// DiskHit reports the result was replayed from the persistent disk
	// cache (the Report is then a stored summary: verdict, inspect
	// load, timing numbers and findings, without stage-level detail).
	DiskHit bool
	// stored carries the disk entry's findings on a DiskHit; Findings
	// returns them instead of recomputing from the skeleton report.
	stored []obs.Finding
	// Report is the CBV outcome (nil when Err is set).
	Report *core.Report
	// Err is the per-item failure (recognition error, lint gate, …);
	// one failing item does not abort the fleet.
	Err error
	// Elapsed is the wall-clock cost of obtaining this result (near
	// zero for cache hits). Timing is excluded from the deterministic
	// report text.
	Elapsed time.Duration

	// Hierarchical provenance and composition (set only by VerifyHier;
	// zero for whole-netlist runs).

	// Subcell names the hierarchy cell this result verifies in
	// isolation; empty for whole-netlist items.
	Subcell string
	// Parent names the cell that first instantiates this subcell
	// (empty for the top cell and for flat items).
	Parent string
	// ComposedFrom counts the direct subcell children whose verdicts
	// were folded into this result (0 for leaves and flat items).
	ComposedFrom int
	// ComposedMinPeriodPS is the slowest minimum clock period across
	// this cell's scope and all of its descendants — the interface
	// timing arc composition (0 for flat items).
	ComposedMinPeriodPS float64
	// composed overrides the Report verdict when composeSet: the max of
	// the scope's own verdict, the children's composed verdicts, and
	// the boundary findings' severities.
	composed   checks.Verdict
	composeSet bool
	// extra carries the boundary findings hierarchical composition
	// attributes to this cell (Findings appends them).
	extra []obs.Finding
}

// EffectiveVerdict is the verdict the fleet reports for this item: the
// hierarchically composed verdict when one was set, else the CBV
// report's own. Only meaningful when Err is nil.
func (r *Result) EffectiveVerdict() checks.Verdict {
	if r.composeSet {
		return r.composed
	}
	return r.Report.Verdict
}

// VerdictString is the item's manifest verdict: the CBV verdict, or
// "error" when verification failed.
func (r *Result) VerdictString() string {
	if r.Err != nil {
		return "error"
	}
	return r.EffectiveVerdict().String()
}

// Findings returns the item's provenanced findings: the CBV report's
// non-pass outcomes, or — for an errored item — one synthesized
// "error/verify" finding whose stable ID is derived from the circuit's
// structural fingerprint (so a renamed copy of a broken deck diffs as
// the same finding). A lint-gate abort additionally surfaces the gate's
// own diagnostics, each under its stable lint rule ID, so the manifest
// records *why* the gate tripped, not just that it did.
func (r *Result) Findings() []obs.Finding {
	if r.Err != nil {
		var gate *core.LintGateError
		if errors.As(r.Err, &gate) {
			return core.LintFindings(gate.Report)
		}
		return []obs.Finding{{
			ID:       netlist.StringID("error", "verify", r.Fingerprint.String()),
			Source:   "error",
			Check:    "verify",
			Subject:  r.Name,
			Severity: "error",
			Detail:   r.Err.Error(),
			Evidence: obs.Evidence{Context: "verification aborted"},
		}}
	}
	var base []obs.Finding
	switch {
	case r.stored != nil:
		base = r.stored
	case r.Report != nil:
		base = r.Report.Findings()
	}
	if len(r.extra) == 0 {
		return base
	}
	out := make([]obs.Finding, 0, len(base)+len(r.extra))
	out = append(out, base...)
	return append(out, r.extra...)
}

// Report is the merged outcome of a fleet run.
type Report struct {
	// Results are per-item outcomes in input order.
	Results []Result
	// Hits and Misses count in-memory cache outcomes for this run (both
	// zero when no cache was configured).
	Hits, Misses int
	// DiskHits and DiskMisses count persistent-layer outcomes (both
	// zero without a DiskCache). Every in-memory miss is exactly one
	// disk hit, miss or corrupt-miss; DiskMisses includes the corrupt
	// ones, which DiskCorrupt also tallies separately.
	DiskHits, DiskMisses, DiskCorrupt int
	// Workers is the resolved parallelism.
	Workers int
	// Elapsed is the whole run's wall clock.
	Elapsed time.Duration
	// ConfigKey is the verification configuration's cache key — the
	// stable identity a run manifest records so trend tooling only
	// compares like against like.
	ConfigKey string
}

// Verify runs the CBV pipeline over every item with a bounded worker
// pool. The returned report's Results preserve input order, and its
// Text() is byte-identical for a given corpus and configuration no
// matter the worker count — caching and scheduling only change timing
// fields, never outcomes.
func Verify(items []Item, opt Options) *Report {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers < 1 {
		workers = 1
	}
	rep := &Report{
		Results: make([]Result, len(items)),
		Workers: workers,
	}
	start := obs.Now()
	cfg := configKey(&opt.Core) + opt.KeySalt
	rep.ConfigKey = cfg
	// Per-item spans are pre-created in input order under the run's
	// root span so the trace tree is deterministic no matter which
	// worker picks an item up; Restart at pickup re-bases the span's
	// clock and yields the item's queue wait. All nil (and free) when
	// telemetry is off.
	root := opt.Obs.Start("fleet")
	spans := make([]*obs.Span, len(items))
	for i := range items {
		spans[i] = root.Child(items[i].Name)
	}
	// Event scopes follow the same pre-creation discipline as spans: one
	// per item in input order, so the flushed stream is deterministic no
	// matter which worker finishes first. The worker-count detail is
	// deliberately not part of run-start — the stream is contractually
	// identical across -j values.
	opt.Events.Emit("run-start", fmt.Sprintf("%d items", len(items)))
	scopes := make([]*obs.EventScope, len(items))
	for i := range items {
		scopes[i] = opt.Events.Scope(items[i].Name)
	}
	// The disk layer needs singleflight admission (its hit/miss counts
	// are per distinct key, not per item): attach a run-local memory
	// cache when the caller supplied only the persistent one.
	cache := opt.Cache
	if cache == nil && opt.DiskCache != nil {
		cache = NewCache()
	}
	var hits, misses, inflight, busyNS int64
	var dHits, dMisses, dCorrupt, dWrites, dEvicted int64
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				it := items[i]
				sp := spans[i]
				sc := scopes[i]
				wait := sp.Restart()
				sc.Emit(obs.Event{Type: "item-start"})
				res := Result{Name: it.Name}
				t0 := obs.Now()
				copt := opt.Core
				copt.Trace = sp
				copt.Events = sc
				copt.PprofLabels = opt.PprofLabels
				circ := func() (*netlist.Circuit, error) { return it.Circuit, nil }
				if it.Circuit == nil && it.Lazy != nil {
					// OnceValues upholds Lazy's at-most-once contract even
					// when Key is zero and the fingerprint path calls circ
					// before the cache (or no-cache branch) does again.
					circ = sync.OnceValues(it.Lazy)
				}
				work := func() {
					res.Fingerprint = it.Key
					if res.Fingerprint == (netlist.Fingerprint{}) {
						c, err := circ()
						if err != nil {
							res.Err = err
							return
						}
						res.Fingerprint = c.Fingerprint()
					}
					if cache != nil {
						e, fresh, blocked := cache.verify(res.Fingerprint, cfg, circ, copt, opt.DiskCache)
						res.Report, res.Err = e.rep, e.err
						res.Cached = !fresh
						res.DiskHit = e.disk == diskHit
						res.stored = e.findings
						if fresh {
							atomic.AddInt64(&misses, 1)
							sc.Emit(obs.Event{Type: "cache-miss", Detail: res.Fingerprint.Short()})
							// The disk outcome belongs to the fresh
							// caller — the one whose lookup ran the once.
							switch e.disk {
							case diskHit:
								atomic.AddInt64(&dHits, 1)
								sc.Emit(obs.Event{Type: "disk-hit", Detail: res.Fingerprint.Short()})
							case diskMiss:
								atomic.AddInt64(&dMisses, 1)
								sc.Emit(obs.Event{Type: "disk-miss", Detail: res.Fingerprint.Short()})
							case diskCorrupt:
								atomic.AddInt64(&dMisses, 1)
								atomic.AddInt64(&dCorrupt, 1)
								sc.Emit(obs.Event{Type: "disk-corrupt", Detail: res.Fingerprint.Short()})
							}
							if e.diskWrote {
								atomic.AddInt64(&dWrites, 1)
							}
							atomic.AddInt64(&dEvicted, int64(e.diskEvicted))
						} else {
							atomic.AddInt64(&hits, 1)
							sc.Emit(obs.Event{Type: "cache-hit", Detail: res.Fingerprint.Short()})
						}
						if blocked {
							atomic.AddInt64(&inflight, 1)
						}
					} else {
						c, err := circ()
						if err != nil {
							res.Err = err
							return
						}
						res.Report, res.Err = core.Verify(c, copt)
					}
				}
				if opt.PprofLabels {
					pprof.Do(context.Background(), pprof.Labels("fcv_cell", it.Name), func(context.Context) { work() })
				} else {
					work()
				}
				res.Elapsed = obs.Now().Sub(t0)
				sp.End()
				if sc != nil {
					// Findings() recomputes from the report — don't pay
					// for it when no event stream is attached.
					for _, f := range res.Findings() {
						sc.Emit(obs.Event{Type: "finding", ID: f.ID, Detail: f.Check + ": " + f.Subject})
					}
				}
				sc.Emit(obs.Event{Type: "item-end", Detail: res.VerdictString()})
				sc.Close()
				if opt.Obs != nil {
					atomic.AddInt64(&busyNS, int64(res.Elapsed))
					opt.Obs.AddGauge("fleet.queue_wait_ms", float64(wait.Microseconds())/1000)
					opt.Obs.Observe("fleet.item_ms", float64(res.Elapsed.Microseconds())/1000)
				}
				rep.Results[i] = res
			}
		}()
	}
	for i := range items {
		next <- i
	}
	close(next)
	wg.Wait()
	rep.Hits, rep.Misses = int(hits), int(misses)
	rep.DiskHits, rep.DiskMisses, rep.DiskCorrupt = int(dHits), int(dMisses), int(dCorrupt)
	rep.Elapsed = obs.Now().Sub(start)
	root.End()
	pass, inspect, violation, failed := rep.Counts()
	opt.Events.Emit("run-end", fmt.Sprintf("pass=%d inspect=%d violation=%d error=%d", pass, inspect, violation, failed))
	if opt.Obs != nil {
		// Counters are the deterministic half (hit/miss counts are
		// fixed by singleflight admission for a given corpus); gauges
		// carry the scheduling-dependent quantities.
		opt.Obs.Add("fleet.items", int64(len(items)))
		opt.Obs.Add("fleet.cache.hits", int64(hits))
		opt.Obs.Add("fleet.cache.misses", int64(misses))
		if opt.DiskCache != nil {
			// Deterministic for a given corpus AND starting cache-dir
			// state: singleflight admission fixes which keys consult
			// the disk, so only the directory's contents move these.
			opt.Obs.Add("fleet.diskcache.hit", int64(dHits))
			opt.Obs.Add("fleet.diskcache.miss", int64(dMisses))
			opt.Obs.Add("fleet.diskcache.corrupt", int64(dCorrupt))
			opt.Obs.Add("fleet.diskcache.write", dWrites)
			opt.Obs.Add("fleet.diskcache.evict", int64(dEvicted))
		}
		opt.Obs.SetGauge("fleet.cache.inflight", float64(inflight))
		opt.Obs.SetGauge("fleet.workers", float64(workers))
		if rep.Elapsed > 0 {
			opt.Obs.SetGauge("fleet.worker_utilization",
				float64(busyNS)/(float64(rep.Elapsed.Nanoseconds())*float64(workers)))
		}
	}
	return rep
}

// CorpusFromLibrary builds one item per library cell (flattened), in
// sorted cell-name order. Cells that fail to flatten become items with
// a pre-set error via a zero-device placeholder — the fleet reports
// them rather than silently dropping corpus members.
func CorpusFromLibrary(lib *netlist.Library) ([]Item, []error) {
	var items []Item
	var errs []error
	for _, name := range lib.Cells() {
		flat, err := lib.Flatten(name)
		if err != nil {
			errs = append(errs, fmt.Errorf("fleet: cell %s: %w", name, err))
			continue
		}
		items = append(items, Item{Name: name, Circuit: flat})
	}
	return items, errs
}

// Counts tallies the corpus verdicts: designs passing outright,
// needing inspection, in violation, and erroring.
func (r *Report) Counts() (pass, inspect, violation, failed int) {
	for _, res := range r.Results {
		switch {
		case res.Err != nil:
			failed++
		case res.EffectiveVerdict() == checks.Pass:
			pass++
		case res.EffectiveVerdict() == checks.Inspect:
			inspect++
		default:
			violation++
		}
	}
	return
}

// HasViolations reports whether any item ended in violation or error —
// the fleet-level exit-code condition.
func (r *Report) HasViolations() bool {
	for _, res := range r.Results {
		if res.Err != nil || res.EffectiveVerdict() == checks.Violation {
			return true
		}
	}
	return false
}

// Text renders the deterministic merged report: one row per item in
// input order plus the corpus rollup. Wall-clock timing and cache
// traffic are deliberately excluded — they vary run to run, and the
// text is contractually byte-identical across runs and worker counts
// (the fleet tests assert it). Use TimingText for the volatile half.
func (r *Report) Text() string {
	var sb strings.Builder
	sb.WriteString("fleet verification report\n")
	for _, res := range r.Results {
		if res.Err != nil {
			fmt.Fprintf(&sb, "  %-20s %s  ERROR: %v\n", res.Name, res.Fingerprint.Short(), res.Err)
			continue
		}
		rep := res.Report
		minPeriod := rep.Timing.MinPeriodPS
		if res.ComposedMinPeriodPS > minPeriod {
			minPeriod = res.ComposedMinPeriodPS
		}
		fmt.Fprintf(&sb, "  %-20s %s  %-9s inspect=%-3d races=%-2d min-period=%.0fps\n",
			res.Name, res.Fingerprint.Short(), res.EffectiveVerdict(), rep.InspectLoad,
			len(rep.Timing.Races), minPeriod)
	}
	pass, inspect, violation, failed := r.Counts()
	fmt.Fprintf(&sb, "corpus: %d designs — pass=%d inspect=%d violation=%d error=%d\n",
		len(r.Results), pass, inspect, violation, failed)
	return sb.String()
}

// TimingText renders the run-variable half: per-design wall clock,
// cache traffic and parallelism.
func (r *Report) TimingText() string {
	var sb strings.Builder
	for _, res := range r.Results {
		src := "verified"
		switch {
		case res.Cached:
			src = "cached"
		case res.DiskHit:
			src = "disk"
		}
		fmt.Fprintf(&sb, "  %-20s %8.2fms  %s\n", res.Name, float64(res.Elapsed.Microseconds())/1000, src)
	}
	fmt.Fprintf(&sb, "fleet: %d workers, %.2fms wall, cache hits=%d misses=%d\n",
		r.Workers, float64(r.Elapsed.Microseconds())/1000, r.Hits, r.Misses)
	if r.DiskHits+r.DiskMisses > 0 {
		fmt.Fprintf(&sb, "disk cache: hits=%d misses=%d corrupt=%d (hit ratio %.0f%%)\n",
			r.DiskHits, r.DiskMisses, r.DiskCorrupt,
			100*float64(r.DiskHits)/float64(r.DiskHits+r.DiskMisses))
	}
	return sb.String()
}

// configKey serializes every Options field that can change a
// verification outcome into a stable string. Two runs with equal keys
// and equal fingerprints must produce interchangeable reports — this is
// what makes the cache sound across Options values. Map-typed fields
// are serialized in sorted order; the clock is the *resolved* spec so
// an explicit default and an implicit one share cache entries.
func configKey(o *core.Options) string {
	var sb strings.Builder
	if o.Proc != nil {
		fmt.Fprintf(&sb, "proc=%+v", *o.Proc)
	}
	ck := o.ResolvedClock()
	fmt.Fprintf(&sb, "|clock=%g", ck.PeriodPS)
	for _, name := range ck.PhaseNames() {
		ph := ck.Phases[name]
		fmt.Fprintf(&sb, ",%s[%g,%g]", name, ph.OpenPS, ph.ClosePS)
	}
	fmt.Fprintf(&sb, "|pess=%g|couplings=", o.CouplingPessimism)
	for _, c := range o.Couplings {
		fmt.Fprintf(&sb, "%s<%s:%g;", c.Victim, c.Aggressor, c.CapFF)
	}
	sb.WriteString("|antenna=")
	antNets := make([]string, 0, len(o.AntennaRatios))
	for net := range o.AntennaRatios {
		antNets = append(antNets, net)
	}
	sort.Strings(antNets)
	for _, net := range antNets {
		fmt.Fprintf(&sb, "%s:%g;", net, o.AntennaRatios[net])
	}
	fmt.Fprintf(&sb, "|lint=%v", o.Lint)
	if o.Lint {
		lo := o.LintOptions
		sb.WriteString(",rules=")
		for _, r := range lo.Rules {
			sb.WriteString(r.ID())
			sb.WriteByte(';')
		}
		fmt.Fprintf(&sb, ",fanout=%d,wl=[%g,%g],geom=[%g,%g],waivers=%s",
			lo.FanoutLimit, lo.MinWL, lo.MaxWL, lo.MaxWUm, lo.MaxLUm, lo.Waivers.KeyString())
	}
	return sb.String()
}
