package fleet

import (
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// TestGCSkipsEntriesTouchedAfterScan pins the GC-vs-daemon eviction
// fix: an entry whose mtime moves between GC's scan and its removal
// pass — a live daemon's store or load-hit landing mid-GC — must
// survive, because the scan's LRU judgement about it is stale. Before
// the per-key recheck, GC(0) here would remove both entries, evicting
// the one the "daemon" had just refreshed.
func TestGCSkipsEntriesTouchedAfterScan(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	Verify([]Item{
		{Name: "one", Circuit: designs.InverterChain(8)},
		{Name: "two", Circuit: designs.DominoAdder(8)},
	}, Options{Core: coreOpts(), DiskCache: d, Workers: 1})
	files := entryFiles(t, dir)
	if len(files) != 2 {
		t.Fatalf("entries = %d, want 2", len(files))
	}
	touched := files[0]
	testHookGCScan = func() {
		now := obs.Now()
		if err := os.Chtimes(touched, now, now); err != nil {
			t.Errorf("touch: %v", err)
		}
	}
	defer func() { testHookGCScan = nil }()
	removed, _, err := d.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Errorf("GC removed %d entries, want 1 (the untouched one)", removed)
	}
	if _, err := os.Stat(touched); err != nil {
		t.Errorf("entry touched mid-GC was evicted: %v", err)
	}
	if _, err := os.Stat(files[1]); !os.IsNotExist(err) {
		t.Errorf("untouched entry survived GC(0): err=%v", err)
	}
}

// TestDiskCacheConcurrentStoreLoadGC hammers one cache with stores,
// loads and full GCs racing on the same keys — the daemon + `fcv cache
// gc` shape. The per-key locks must keep every interleaving safe: no
// load may ever classify an entry as corrupt (torn state), and once the
// dust settles a final store must round-trip. Run under -race in CI.
func TestDiskCacheConcurrentStoreLoadGC(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	items := []Item{
		{Name: "a", Circuit: designs.InverterChain(8)},
		{Name: "b", Circuit: designs.InverterChain(12)},
		{Name: "c", Circuit: designs.DominoAdder(8)},
	}
	copt := coreOpts()
	cfg := configKey(&copt)
	type entry struct {
		fp  netlist.Fingerprint
		rep *core.Report
	}
	ents := make([]entry, len(items))
	for i, it := range items {
		rep, err := core.Verify(it.Circuit, copt)
		if err != nil {
			t.Fatal(err)
		}
		ents[i] = entry{fp: it.Circuit.Fingerprint(), rep: rep}
	}

	const iters = 60
	var wg sync.WaitGroup
	for g := 0; g < len(ents); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := d.store(ents[g].fp, cfg, ents[g].rep); err != nil {
					t.Errorf("store: %v", err)
					return
				}
				if _, out := d.load(ents[g].fp, cfg); out == diskCorrupt {
					t.Error("load observed a corrupt entry during store/GC churn")
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, _, err := d.GC(0); err != nil {
				t.Errorf("gc: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if got := d.corrupts.Load(); got != 0 {
		t.Errorf("corrupt count = %d after churn, want 0", got)
	}
	// Quiescent round-trip: the cache still works.
	if _, err := d.store(ents[0].fp, cfg, ents[0].rep); err != nil {
		t.Fatal(err)
	}
	if _, out := d.load(ents[0].fp, cfg); out != diskHit {
		t.Fatalf("post-churn load outcome = %v, want hit", out)
	}
}
