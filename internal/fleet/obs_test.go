package fleet

import (
	"testing"

	"repro/internal/obs"
)

// traceShape extracts the deterministic half of a run's telemetry: the
// span paths in order, and all counters.
func traceShape(col *obs.Collector) ([]string, map[string]int64) {
	var paths []string
	for _, s := range col.Spans() {
		paths = append(paths, s.Path)
	}
	return paths, col.Counters()
}

// TestObsDeterministicUnderConcurrency is the telemetry determinism
// contract: span paths (structure and order) and all counters are
// identical across runs and worker counts — only durations and gauges
// may vary. The corpus includes a structural twin so cache hits are in
// play, and under -race this also exercises concurrent span creation
// and counter updates.
func TestObsDeterministicUnderConcurrency(t *testing.T) {
	run := func(workers int) ([]string, map[string]int64, *Report) {
		col := obs.New()
		items := zoo()
		// A structural twin of item 0: always one hit, attributed spans
		// stay with the entry-creating miss.
		items = append(items, Item{Name: "invchain_twin", Circuit: items[0].Circuit})
		rep := Verify(items, Options{
			Core:    coreOpts(),
			Workers: workers,
			Cache:   NewCache(),
			Obs:     col,
		})
		paths, counters := traceShape(col)
		return paths, counters, rep
	}
	wantPaths, wantCounters, wantRep := run(1)
	if len(wantPaths) == 0 {
		t.Fatal("no spans collected")
	}
	for _, workers := range []int{1, 4, 16} {
		for rep := 0; rep < 3; rep++ {
			paths, counters, frep := run(workers)
			if len(paths) != len(wantPaths) {
				t.Fatalf("j=%d: %d spans, want %d\n%v", workers, len(paths), len(wantPaths), paths)
			}
			for i := range paths {
				if paths[i] != wantPaths[i] {
					t.Errorf("j=%d: span %d = %q, want %q", workers, i, paths[i], wantPaths[i])
				}
			}
			if len(counters) != len(wantCounters) {
				t.Errorf("j=%d: counters %v, want %v", workers, counters, wantCounters)
			}
			for k, v := range wantCounters {
				if counters[k] != v {
					t.Errorf("j=%d: counter %s = %d, want %d", workers, k, counters[k], v)
				}
			}
			// Counters must agree with the report's printed totals.
			if counters["fleet.cache.hits"] != int64(frep.Hits) {
				t.Errorf("j=%d: counter hits %d != report hits %d", workers, counters["fleet.cache.hits"], frep.Hits)
			}
			if counters["fleet.cache.misses"] != int64(frep.Misses) {
				t.Errorf("j=%d: counter misses %d != report misses %d", workers, counters["fleet.cache.misses"], frep.Misses)
			}
			if frep.Text() != wantRep.Text() {
				t.Errorf("j=%d: report text diverged", workers)
			}
		}
	}
	// The twin corpus has exactly one hit per run.
	if wantRep.Hits != 1 || wantRep.Misses != len(zoo()) {
		t.Errorf("twin corpus: hits=%d misses=%d, want 1/%d", wantRep.Hits, wantRep.Misses, len(zoo()))
	}
}

// TestObsStageSpansAttributeToMiss pins the cache-attribution rule:
// pipeline stage spans appear under the item whose lookup created the
// cache entry (the deterministic miss), never under a hit, and cached
// items carry no stage children.
func TestObsStageSpansAttributeToMiss(t *testing.T) {
	col := obs.New()
	items := zoo()[:1]
	items = append(items, Item{Name: "twin", Circuit: items[0].Circuit})
	Verify(items, Options{Core: coreOpts(), Workers: 2, Cache: NewCache(), Obs: col})
	var missStages, hitStages int
	for _, s := range col.Spans() {
		if s.Depth != 2 {
			continue
		}
		switch {
		case s.Path == "fleet/invchain/recognize" || s.Path == "fleet/invchain/checks" || s.Path == "fleet/invchain/timing":
			missStages++
		default:
			hitStages++
		}
	}
	if missStages != 3 {
		t.Errorf("miss item has %d stage spans, want 3", missStages)
	}
	if hitStages != 0 {
		t.Errorf("hit item has %d stage spans, want 0", hitStages)
	}
}

// TestObsOffByDefault: a fleet run without a collector must not panic
// and must report no telemetry side effects (the nil path).
func TestObsOffByDefault(t *testing.T) {
	rep := Verify(zoo(), Options{Core: coreOpts(), Workers: 4, Cache: NewCache()})
	if rep.HasViolations() {
		t.Fatal("zoo failed")
	}
	if rep.ConfigKey == "" {
		t.Error("ConfigKey not recorded")
	}
}

// TestObsWorkerUtilizationGauge sanity-checks the volatile half: the
// utilization gauge lands in (0, workers] and queue wait is non-negative.
func TestObsWorkerUtilizationGauge(t *testing.T) {
	col := obs.New()
	Verify(zoo(), Options{Core: coreOpts(), Workers: 2, Cache: NewCache(), Obs: col})
	g := col.Gauges()
	util := g["fleet.worker_utilization"]
	if util <= 0 || util > 1.0001 {
		t.Errorf("worker_utilization = %g, want in (0,1]", util)
	}
	if g["fleet.queue_wait_ms"] < 0 {
		t.Errorf("negative queue wait %g", g["fleet.queue_wait_ms"])
	}
	if g["fleet.workers"] != 2 {
		t.Errorf("workers gauge = %g, want 2", g["fleet.workers"])
	}
}
