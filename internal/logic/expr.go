// Package logic provides boolean expressions, truth tables and binary
// decision diagrams (BDDs) for the full-custom toolkit.
//
// Three subsystems of the paper depend on it: circuit recognition (§2.3)
// deduces a logic function from transistor topology and needs a canonical
// form to name it; logical equivalence checking (§4.1) compares RTL
// functions against deduced circuit functions; and the RTL simulator
// evaluates combinational expressions.
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a boolean expression tree. Expressions are immutable; all
// construction goes through the factory functions so that trivial
// simplifications happen eagerly.
type Expr interface {
	// Eval evaluates the expression in an environment mapping variable
	// names to values. Unbound variables evaluate to false.
	Eval(env map[string]bool) bool
	// Vars appends the distinct variable names to the set.
	vars(set map[string]bool)
	// String renders a readable form: &, |, ^, !, identifiers, 0/1.
	String() string
}

// Var is a boolean variable reference.
type Var string

// Eval implements Expr.
func (v Var) Eval(env map[string]bool) bool { return env[string(v)] }
func (v Var) vars(set map[string]bool)      { set[string(v)] = true }

// String implements Expr.
func (v Var) String() string { return string(v) }

// Const is a boolean constant.
type Const bool

// True and False are the constant expressions.
const (
	True  = Const(true)
	False = Const(false)
)

// Eval implements Expr.
func (c Const) Eval(map[string]bool) bool { return bool(c) }
func (c Const) vars(map[string]bool)      {}

// String implements Expr.
func (c Const) String() string {
	if c {
		return "1"
	}
	return "0"
}

// NotExpr is logical negation.
type NotExpr struct{ X Expr }

// Eval implements Expr.
func (n *NotExpr) Eval(env map[string]bool) bool { return !n.X.Eval(env) }
func (n *NotExpr) vars(set map[string]bool)      { n.X.vars(set) }

// String implements Expr.
func (n *NotExpr) String() string { return "!" + parenthesize(n.X) }

// NaryExpr is an n-ary operator application (and/or/xor).
type NaryExpr struct {
	Op Op
	Xs []Expr
}

// Op identifies an n-ary boolean operator.
type Op int

// The supported n-ary operators.
const (
	OpAnd Op = iota
	OpOr
	OpXor
)

// String returns the operator's infix symbol.
func (o Op) String() string {
	switch o {
	case OpAnd:
		return "&"
	case OpOr:
		return "|"
	case OpXor:
		return "^"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Eval implements Expr.
func (e *NaryExpr) Eval(env map[string]bool) bool {
	switch e.Op {
	case OpAnd:
		for _, x := range e.Xs {
			if !x.Eval(env) {
				return false
			}
		}
		return true
	case OpOr:
		for _, x := range e.Xs {
			if x.Eval(env) {
				return true
			}
		}
		return false
	default: // OpXor
		v := false
		for _, x := range e.Xs {
			v = v != x.Eval(env)
		}
		return v
	}
}

func (e *NaryExpr) vars(set map[string]bool) {
	for _, x := range e.Xs {
		x.vars(set)
	}
}

// String implements Expr.
func (e *NaryExpr) String() string {
	parts := make([]string, len(e.Xs))
	for i, x := range e.Xs {
		parts[i] = parenthesize(x)
	}
	return strings.Join(parts, e.Op.String())
}

// parenthesize wraps n-ary subexpressions in parentheses for readability.
func parenthesize(e Expr) string {
	if n, ok := e.(*NaryExpr); ok && len(n.Xs) > 1 {
		return "(" + n.String() + ")"
	}
	return e.String()
}

// Not returns the negation of x, folding constants and double negation.
func Not(x Expr) Expr {
	switch v := x.(type) {
	case Const:
		return Const(!v)
	case *NotExpr:
		return v.X
	}
	return &NotExpr{x}
}

// And returns the conjunction of xs with constant folding and
// flattening. And() is True.
func And(xs ...Expr) Expr { return nary(OpAnd, xs) }

// Or returns the disjunction of xs with constant folding and flattening.
// Or() is False.
func Or(xs ...Expr) Expr { return nary(OpOr, xs) }

// Xor returns the exclusive-or of xs with constant folding. Xor() is
// False.
func Xor(xs ...Expr) Expr {
	var out []Expr
	parity := false
	for _, x := range xs {
		if c, ok := x.(Const); ok {
			parity = parity != bool(c)
			continue
		}
		out = append(out, x)
	}
	var e Expr
	switch len(out) {
	case 0:
		e = False
	case 1:
		e = out[0]
	default:
		e = &NaryExpr{OpXor, out}
	}
	if parity {
		return Not(e)
	}
	return e
}

// nary builds an and/or with identity/absorbing-element folding.
func nary(op Op, xs []Expr) Expr {
	identity := op == OpAnd // and: true is identity; or: false is
	var out []Expr
	for _, x := range xs {
		if c, ok := x.(Const); ok {
			if bool(c) == identity {
				continue // identity element: drop
			}
			return c // absorbing element: short-circuit
		}
		if n, ok := x.(*NaryExpr); ok && n.Op == op {
			out = append(out, n.Xs...)
			continue
		}
		out = append(out, x)
	}
	switch len(out) {
	case 0:
		return Const(identity)
	case 1:
		return out[0]
	}
	return &NaryExpr{op, out}
}

// Implies returns x → y.
func Implies(x, y Expr) Expr { return Or(Not(x), y) }

// Ite returns if-then-else: c&t | !c&e.
func Ite(c, t, e Expr) Expr { return Or(And(c, t), And(Not(c), e)) }

// Vars returns the sorted distinct variable names of e.
func Vars(e Expr) []string {
	set := make(map[string]bool)
	e.vars(set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Equivalent reports whether two expressions compute the same function,
// checked via canonical BDDs over the union of their supports.
func Equivalent(a, b Expr) bool {
	m := NewBDD()
	// Register the union of variables in sorted order for a shared
	// canonical ordering.
	for _, v := range Vars(Or(And(a, False), And(b, False), a, b)) {
		m.Var(v)
	}
	return m.FromExpr(a) == m.FromExpr(b)
}

// Tautology reports whether e is true for every assignment.
func Tautology(e Expr) bool { return Equivalent(e, True) }

// Satisfiable reports whether e is true for some assignment.
func Satisfiable(e Expr) bool { return !Equivalent(e, False) }

// Substitute returns e with every occurrence of the named variable
// replaced by the expression sub (with eager simplification).
func Substitute(e Expr, name string, sub Expr) Expr {
	switch v := e.(type) {
	case Const:
		return v
	case Var:
		if string(v) == name {
			return sub
		}
		return v
	case *NotExpr:
		return Not(Substitute(v.X, name, sub))
	case *NaryExpr:
		xs := make([]Expr, len(v.Xs))
		for i, x := range v.Xs {
			xs[i] = Substitute(x, name, sub)
		}
		switch v.Op {
		case OpAnd:
			return And(xs...)
		case OpOr:
			return Or(xs...)
		default:
			return Xor(xs...)
		}
	}
	panic(fmt.Sprintf("logic: unknown expression type %T", e))
}
