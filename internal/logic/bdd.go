package logic

import (
	"fmt"
	"sort"
)

// Ref is a reference to a BDD node within one manager. The constants
// RefFalse and RefTrue are the terminal nodes; all other refs index the
// manager's node table.
type Ref int32

// Terminal node references.
const (
	RefFalse Ref = 0
	RefTrue  Ref = 1
)

// bddNode is an internal decision node: if var then hi else lo.
type bddNode struct {
	level  int32 // variable order position
	lo, hi Ref
}

// BDD is a reduced ordered binary decision diagram manager with a
// hash-consed unique table and memoized apply operations. Canonicity
// guarantee: two functions over the same manager are equal iff their Refs
// are equal — this is what makes the §4.1 equivalence check a pointer
// comparison.
type BDD struct {
	nodes   []bddNode
	unique  map[bddNode]Ref
	vars    []string
	varIdx  map[string]int32
	iteMemo map[iteKey]Ref
}

type iteKey struct{ f, g, h Ref }

// NewBDD returns an empty manager.
func NewBDD() *BDD {
	b := &BDD{
		unique:  make(map[bddNode]Ref),
		varIdx:  make(map[string]int32),
		iteMemo: make(map[iteKey]Ref),
	}
	// Reserve slots 0/1 for terminals (level math.MaxInt32 semantics
	// handled via level accessor).
	b.nodes = append(b.nodes, bddNode{}, bddNode{})
	return b
}

// Var returns the function of the named variable, registering it at the
// end of the current order if new. Variable order is registration order;
// callers that care should register in a deliberate order before building.
func (b *BDD) Var(name string) Ref {
	idx, ok := b.varIdx[name]
	if !ok {
		idx = int32(len(b.vars))
		b.vars = append(b.vars, name)
		b.varIdx[name] = idx
	}
	return b.mk(idx, RefFalse, RefTrue)
}

// VarName returns the name of the variable at order position i.
func (b *BDD) VarName(i int) string { return b.vars[i] }

// NumVars returns the number of registered variables.
func (b *BDD) NumVars() int { return len(b.vars) }

// Size returns the number of decision nodes allocated (excluding
// terminals) — the usual BDD cost metric.
func (b *BDD) Size() int { return len(b.nodes) - 2 }

// level returns the variable level of a ref; terminals sort below all
// variables.
func (b *BDD) level(r Ref) int32 {
	if r == RefFalse || r == RefTrue {
		return int32(1 << 30)
	}
	return b.nodes[r].level
}

// mk returns the canonical node (level, lo, hi), applying the reduction
// rules (no redundant tests, shared subgraphs).
func (b *BDD) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := bddNode{level, lo, hi}
	if r, ok := b.unique[key]; ok {
		return r
	}
	r := Ref(len(b.nodes))
	b.nodes = append(b.nodes, key)
	b.unique[key] = r
	return r
}

// Ite computes if-then-else(f, g, h), the universal BDD operation.
func (b *BDD) Ite(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == RefTrue:
		return g
	case f == RefFalse:
		return h
	case g == h:
		return g
	case g == RefTrue && h == RefFalse:
		return f
	}
	key := iteKey{f, g, h}
	if r, ok := b.iteMemo[key]; ok {
		return r
	}
	// Split on the top variable.
	top := b.level(f)
	if l := b.level(g); l < top {
		top = l
	}
	if l := b.level(h); l < top {
		top = l
	}
	f0, f1 := b.cofactors(f, top)
	g0, g1 := b.cofactors(g, top)
	h0, h1 := b.cofactors(h, top)
	lo := b.Ite(f0, g0, h0)
	hi := b.Ite(f1, g1, h1)
	r := b.mk(top, lo, hi)
	b.iteMemo[key] = r
	return r
}

// cofactors returns the negative and positive cofactors of r with respect
// to the variable at the given level.
func (b *BDD) cofactors(r Ref, level int32) (lo, hi Ref) {
	if b.level(r) != level {
		return r, r
	}
	n := b.nodes[r]
	return n.lo, n.hi
}

// Not returns ¬f.
func (b *BDD) Not(f Ref) Ref { return b.Ite(f, RefFalse, RefTrue) }

// And returns the conjunction of fs.
func (b *BDD) And(fs ...Ref) Ref {
	r := RefTrue
	for _, f := range fs {
		r = b.Ite(r, f, RefFalse)
	}
	return r
}

// Or returns the disjunction of fs.
func (b *BDD) Or(fs ...Ref) Ref {
	r := RefFalse
	for _, f := range fs {
		r = b.Ite(f, RefTrue, r)
	}
	return r
}

// Xor returns the exclusive-or of fs.
func (b *BDD) Xor(fs ...Ref) Ref {
	r := RefFalse
	for _, f := range fs {
		r = b.Ite(f, b.Not(r), r)
	}
	return r
}

// Implies returns f → g.
func (b *BDD) Implies(f, g Ref) Ref { return b.Ite(f, g, RefTrue) }

// FromExpr builds the BDD of an expression.
func (b *BDD) FromExpr(e Expr) Ref {
	switch v := e.(type) {
	case Const:
		if v {
			return RefTrue
		}
		return RefFalse
	case Var:
		return b.Var(string(v))
	case *NotExpr:
		return b.Not(b.FromExpr(v.X))
	case *NaryExpr:
		refs := make([]Ref, len(v.Xs))
		for i, x := range v.Xs {
			refs[i] = b.FromExpr(x)
		}
		switch v.Op {
		case OpAnd:
			return b.And(refs...)
		case OpOr:
			return b.Or(refs...)
		default:
			return b.Xor(refs...)
		}
	}
	panic(fmt.Sprintf("logic: unknown expression type %T", e))
}

// Eval evaluates f under an assignment. Unassigned variables read false.
func (b *BDD) Eval(f Ref, env map[string]bool) bool {
	for f != RefTrue && f != RefFalse {
		n := b.nodes[f]
		if env[b.vars[n.level]] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == RefTrue
}

// SatCount returns the number of satisfying assignments of f over all
// registered variables.
func (b *BDD) SatCount(f Ref) float64 {
	memo := make(map[Ref]float64)
	var count func(r Ref, level int32) float64
	count = func(r Ref, level int32) float64 {
		if r == RefFalse {
			return 0
		}
		nvars := int32(len(b.vars))
		if r == RefTrue {
			return pow2(nvars - level)
		}
		n := b.nodes[r]
		key := r
		var base float64
		if v, ok := memo[key]; ok {
			base = v
		} else {
			base = count(n.lo, n.level+1) + count(n.hi, n.level+1)
			memo[key] = base
		}
		return base * pow2(n.level-level)
	}
	return count(f, 0)
}

// pow2 returns 2^n as a float64 for nonnegative n.
func pow2(n int32) float64 {
	v := 1.0
	for i := int32(0); i < n; i++ {
		v *= 2
	}
	return v
}

// AnySat returns one satisfying assignment of f (over the variables on
// the satisfying path; others are unconstrained) or nil if unsatisfiable.
func (b *BDD) AnySat(f Ref) map[string]bool {
	if f == RefFalse {
		return nil
	}
	env := make(map[string]bool)
	for f != RefTrue {
		n := b.nodes[f]
		if n.hi != RefFalse {
			env[b.vars[n.level]] = true
			f = n.hi
		} else {
			env[b.vars[n.level]] = false
			f = n.lo
		}
	}
	return env
}

// Support returns the sorted names of variables f actually depends on.
func (b *BDD) Support(f Ref) []string {
	seen := make(map[Ref]bool)
	vars := make(map[string]bool)
	var walk func(Ref)
	walk = func(r Ref) {
		if r == RefTrue || r == RefFalse || seen[r] {
			return
		}
		seen[r] = true
		n := b.nodes[r]
		vars[b.vars[n.level]] = true
		walk(n.lo)
		walk(n.hi)
	}
	walk(f)
	out := make([]string, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Restrict returns f with the named variable fixed to val.
func (b *BDD) Restrict(f Ref, name string, val bool) Ref {
	idx, ok := b.varIdx[name]
	if !ok {
		return f
	}
	memo := make(map[Ref]Ref)
	var walk func(Ref) Ref
	walk = func(r Ref) Ref {
		if r == RefTrue || r == RefFalse {
			return r
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := b.nodes[r]
		var out Ref
		switch {
		case n.level == idx && val:
			out = walk(n.hi)
		case n.level == idx:
			out = walk(n.lo)
		case n.level > idx:
			out = r
		default:
			out = b.mk(n.level, walk(n.lo), walk(n.hi))
		}
		memo[r] = out
		return out
	}
	return walk(f)
}

// Exists returns ∃name. f — the disjunction of both restrictions.
func (b *BDD) Exists(f Ref, name string) Ref {
	return b.Or(b.Restrict(f, name, false), b.Restrict(f, name, true))
}

// ExistsAll quantifies out every name in names.
func (b *BDD) ExistsAll(f Ref, names []string) Ref {
	for _, n := range names {
		f = b.Exists(f, n)
	}
	return f
}

// Compose substitutes function g for variable name inside f.
func (b *BDD) Compose(f Ref, name string, g Ref) Ref {
	v := b.Var(name)
	// f[name := g] = ite(g, f|name=1, f|name=0); v is only used to
	// ensure registration.
	_ = v
	return b.Ite(g, b.Restrict(f, name, true), b.Restrict(f, name, false))
}
