package logic

import (
	"fmt"
	"strings"
)

// TruthTable is the exhaustive function table of a small boolean function
// (up to 20 inputs). It is the recognizer's canonical "name" for a
// deduced circuit function: two channel-connected components implement
// the same logic iff their tables over the same ordered inputs are equal.
type TruthTable struct {
	// Inputs is the ordered input names.
	Inputs []string
	// Bits holds one bit per input assignment; assignment i sets
	// input k to bit k of i. Packed 64 per word.
	Bits []uint64
}

// maxTTInputs bounds table size to 2^20 rows (128 KiB of bits).
const maxTTInputs = 20

// TableFromExpr evaluates e over the given ordered inputs.
func TableFromExpr(e Expr, inputs []string) (*TruthTable, error) {
	if len(inputs) > maxTTInputs {
		return nil, fmt.Errorf("logic: truth table over %d inputs exceeds the %d-input limit", len(inputs), maxTTInputs)
	}
	rows := 1 << len(inputs)
	tt := &TruthTable{
		Inputs: append([]string(nil), inputs...),
		Bits:   make([]uint64, (rows+63)/64),
	}
	env := make(map[string]bool, len(inputs))
	for i := 0; i < rows; i++ {
		for k, name := range inputs {
			env[name] = i&(1<<k) != 0
		}
		if e.Eval(env) {
			tt.Bits[i/64] |= 1 << (i % 64)
		}
	}
	return tt, nil
}

// Rows returns the number of assignments.
func (t *TruthTable) Rows() int { return 1 << len(t.Inputs) }

// Get returns the output for assignment index i.
func (t *TruthTable) Get(i int) bool { return t.Bits[i/64]&(1<<(i%64)) != 0 }

// Equal reports whether two tables are the same function over the same
// ordered inputs.
func (t *TruthTable) Equal(o *TruthTable) bool {
	if len(t.Inputs) != len(o.Inputs) {
		return false
	}
	for i := range t.Inputs {
		if t.Inputs[i] != o.Inputs[i] {
			return false
		}
	}
	for i := range t.Bits {
		if t.Bits[i] != o.Bits[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string fingerprint usable as a map key (inputs
// are not included — use for shape classification).
func (t *TruthTable) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:", len(t.Inputs))
	for _, w := range t.Bits {
		fmt.Fprintf(&sb, "%016x", w)
	}
	return sb.String()
}

// OnesCount returns the number of true rows.
func (t *TruthTable) OnesCount() int {
	n := 0
	for i := 0; i < t.Rows(); i++ {
		if t.Get(i) {
			n++
		}
	}
	return n
}

// IsConstant reports whether the function ignores its inputs, and which
// constant it is.
func (t *TruthTable) IsConstant() (bool, bool) {
	ones := t.OnesCount()
	switch ones {
	case 0:
		return true, false
	case t.Rows():
		return true, true
	}
	return false, false
}

// String renders the table with one row per assignment, LSB-first inputs.
func (t *TruthTable) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Inputs, " "))
	sb.WriteString(" | f\n")
	for i := 0; i < t.Rows(); i++ {
		for k := range t.Inputs {
			if i&(1<<k) != 0 {
				sb.WriteString("1 ")
			} else {
				sb.WriteString("0 ")
			}
		}
		if t.Get(i) {
			sb.WriteString("| 1\n")
		} else {
			sb.WriteString("| 0\n")
		}
	}
	return sb.String()
}
