package logic

import (
	"strings"
	"testing"
	"testing/quick"
)

func env(pairs ...interface{}) map[string]bool {
	m := make(map[string]bool)
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(bool)
	}
	return m
}

func TestExprEval(t *testing.T) {
	a, b, c := Var("a"), Var("b"), Var("c")
	cases := []struct {
		e    Expr
		env  map[string]bool
		want bool
	}{
		{True, nil, true},
		{False, nil, false},
		{a, env("a", true), true},
		{a, env("a", false), false},
		{a, nil, false}, // unbound reads false
		{Not(a), env("a", false), true},
		{And(a, b), env("a", true, "b", true), true},
		{And(a, b), env("a", true, "b", false), false},
		{Or(a, b), env("a", false, "b", true), true},
		{Or(a, b), nil, false},
		{Xor(a, b), env("a", true, "b", false), true},
		{Xor(a, b, c), env("a", true, "b", true, "c", true), true},
		{Implies(a, b), env("a", true, "b", false), false},
		{Implies(a, b), env("a", false), true},
		{Ite(a, b, c), env("a", true, "b", true), true},
		{Ite(a, b, c), env("a", false, "c", true), true},
	}
	for _, cse := range cases {
		if got := cse.e.Eval(cse.env); got != cse.want {
			t.Errorf("%s under %v = %v, want %v", cse.e, cse.env, got, cse.want)
		}
	}
}

func TestConstantFolding(t *testing.T) {
	a := Var("a")
	if And(a, True).String() != "a" {
		t.Errorf("And(a, true) = %s", And(a, True))
	}
	if And(a, False) != False {
		t.Error("And(a, false) should fold to false")
	}
	if Or(a, False).String() != "a" {
		t.Errorf("Or(a, false) = %s", Or(a, False))
	}
	if Or(a, True) != True {
		t.Error("Or(a, true) should fold to true")
	}
	if Not(Not(a)) != a {
		t.Error("double negation should cancel")
	}
	if Not(True) != False || Not(False) != True {
		t.Error("constant negation broken")
	}
	if And() != True || Or() != False || Xor() != False {
		t.Error("empty operator identities broken")
	}
	// Xor constant folding: xor with true is negation.
	x := Xor(a, True)
	if !Equivalent(x, Not(a)) {
		t.Errorf("Xor(a, 1) = %s, want !a", x)
	}
}

func TestFlattening(t *testing.T) {
	a, b, c := Var("a"), Var("b"), Var("c")
	e := And(And(a, b), c).(*NaryExpr)
	if len(e.Xs) != 3 {
		t.Errorf("nested And should flatten to 3 terms, got %d", len(e.Xs))
	}
}

func TestVars(t *testing.T) {
	e := And(Var("z"), Or(Var("a"), Not(Var("m"))), Var("a"))
	got := Vars(e)
	want := []string{"a", "m", "z"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	a, b, c := Var("a"), Var("b"), Var("c")
	e := Or(And(a, b), Not(c))
	s := e.String()
	if !strings.Contains(s, "a&b") || !strings.Contains(s, "!c") {
		t.Errorf("String = %q", s)
	}
}

func TestEquivalence(t *testing.T) {
	a, b, c := Var("a"), Var("b"), Var("c")
	cases := []struct {
		x, y Expr
		want bool
	}{
		// De Morgan.
		{Not(And(a, b)), Or(Not(a), Not(b)), true},
		{Not(Or(a, b)), And(Not(a), Not(b)), true},
		// Distribution.
		{And(a, Or(b, c)), Or(And(a, b), And(a, c)), true},
		// XOR expansion.
		{Xor(a, b), Or(And(a, Not(b)), And(Not(a), b)), true},
		// Mux identity.
		{Ite(a, b, b), b, true},
		// Non-equivalences.
		{And(a, b), Or(a, b), false},
		{a, b, false},
		{Xor(a, b), Xor(a, b, c), false},
	}
	for _, cse := range cases {
		if got := Equivalent(cse.x, cse.y); got != cse.want {
			t.Errorf("Equivalent(%s, %s) = %v, want %v", cse.x, cse.y, got, cse.want)
		}
	}
}

func TestTautologySatisfiable(t *testing.T) {
	a := Var("a")
	if !Tautology(Or(a, Not(a))) {
		t.Error("a|!a should be a tautology")
	}
	if Tautology(a) {
		t.Error("a is not a tautology")
	}
	if !Satisfiable(a) {
		t.Error("a is satisfiable")
	}
	if Satisfiable(And(a, Not(a))) {
		t.Error("a&!a is unsatisfiable")
	}
}

func TestBDDCanonicity(t *testing.T) {
	m := NewBDD()
	a, b := m.Var("a"), m.Var("b")
	// Same function built two ways must be the same ref.
	f1 := m.Or(m.And(a, b), m.And(a, m.Not(b)))
	if f1 != a {
		t.Errorf("a&b | a&!b should reduce to a: ref %d vs %d", f1, a)
	}
	f2 := m.Not(m.Not(a))
	if f2 != a {
		t.Error("double negation should be identity on refs")
	}
	deMorgan1 := m.Not(m.And(a, b))
	deMorgan2 := m.Or(m.Not(a), m.Not(b))
	if deMorgan1 != deMorgan2 {
		t.Error("De Morgan forms should share a ref")
	}
}

func TestBDDEvalMatchesExpr(t *testing.T) {
	// Property: for random expressions, BDD evaluation matches direct
	// expression evaluation on all 2^n assignments.
	exprs := []Expr{
		And(Var("a"), Var("b"), Var("c")),
		Or(Xor(Var("a"), Var("b")), And(Var("c"), Not(Var("d")))),
		Ite(Var("a"), Xor(Var("b"), Var("c")), Or(Var("b"), Var("d"))),
		Not(Implies(Var("a"), And(Var("b"), Var("c"), Var("d")))),
	}
	for _, e := range exprs {
		m := NewBDD()
		vars := Vars(e)
		for _, v := range vars {
			m.Var(v)
		}
		f := m.FromExpr(e)
		for i := 0; i < 1<<len(vars); i++ {
			env := make(map[string]bool)
			for k, v := range vars {
				env[v] = i&(1<<k) != 0
			}
			if m.Eval(f, env) != e.Eval(env) {
				t.Errorf("%s: BDD and Expr disagree at %v", e, env)
			}
		}
	}
}

func TestBDDSatCount(t *testing.T) {
	m := NewBDD()
	a, b, c := m.Var("a"), m.Var("b"), m.Var("c")
	cases := []struct {
		f    Ref
		want float64
	}{
		{RefTrue, 8},
		{RefFalse, 0},
		{a, 4},
		{m.And(a, b), 2},
		{m.And(a, b, c), 1},
		{m.Or(a, b, c), 7},
		{m.Xor(a, b), 4},
	}
	for _, cse := range cases {
		if got := m.SatCount(cse.f); got != cse.want {
			t.Errorf("SatCount(ref %d) = %g, want %g", cse.f, got, cse.want)
		}
	}
}

func TestBDDAnySat(t *testing.T) {
	m := NewBDD()
	a, b := m.Var("a"), m.Var("b")
	f := m.And(a, m.Not(b))
	got := m.AnySat(f)
	if got == nil || !got["a"] || got["b"] {
		t.Errorf("AnySat = %v, want a=1 b=0", got)
	}
	if m.AnySat(RefFalse) != nil {
		t.Error("AnySat(false) should be nil")
	}
	if got := m.AnySat(RefTrue); got == nil || len(got) != 0 {
		t.Errorf("AnySat(true) = %v, want empty non-nil", got)
	}
}

func TestBDDSupport(t *testing.T) {
	m := NewBDD()
	a, b, c := m.Var("a"), m.Var("b"), m.Var("c")
	_ = c
	f := m.Or(m.And(a, b), m.And(a, m.Not(b))) // = a
	sup := m.Support(f)
	if len(sup) != 1 || sup[0] != "a" {
		t.Errorf("Support = %v, want [a]", sup)
	}
}

func TestBDDRestrictExistsCompose(t *testing.T) {
	m := NewBDD()
	a, b := m.Var("a"), m.Var("b")
	f := m.Xor(a, b)
	if m.Restrict(f, "a", true) != m.Not(b) {
		t.Error("xor(1,b) should be !b")
	}
	if m.Restrict(f, "a", false) != b {
		t.Error("xor(0,b) should be b")
	}
	if m.Restrict(f, "zzz", true) != f {
		t.Error("restricting an absent variable should be identity")
	}
	if m.Exists(f, "a") != RefTrue {
		t.Error("∃a. xor(a,b) should be true")
	}
	if m.ExistsAll(m.And(a, b), []string{"a", "b"}) != RefTrue {
		t.Error("∃ab. a&b should be true")
	}
	// Compose b := !a into xor(a,b) gives xor(a,!a) = true.
	if m.Compose(f, "b", m.Not(a)) != RefTrue {
		t.Error("compose failed")
	}
}

func TestBDDSizeGrows(t *testing.T) {
	m := NewBDD()
	if m.Size() != 0 {
		t.Errorf("fresh manager size = %d", m.Size())
	}
	m.Var("a")
	if m.Size() != 1 {
		t.Errorf("one var size = %d", m.Size())
	}
}

// Property: Equivalent agrees with brute-force table comparison for
// random 4-variable expressions generated from a compact genome.
func TestEquivalentMatchesBruteForceProperty(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	// decode builds a small expression from a byte genome.
	var decode func(g []byte, depth int) Expr
	decode = func(g []byte, depth int) Expr {
		if len(g) == 0 || depth > 3 {
			return Var(names[0])
		}
		op := g[0] % 6
		rest := g[1:]
		half := len(rest) / 2
		switch op {
		case 0, 1:
			return Var(names[g[0]%4])
		case 2:
			return Not(decode(rest, depth+1))
		case 3:
			return And(decode(rest[:half], depth+1), decode(rest[half:], depth+1))
		case 4:
			return Or(decode(rest[:half], depth+1), decode(rest[half:], depth+1))
		default:
			return Xor(decode(rest[:half], depth+1), decode(rest[half:], depth+1))
		}
	}
	f := func(g1, g2 []byte) bool {
		e1, e2 := decode(g1, 0), decode(g2, 0)
		brute := true
		for i := 0; i < 16; i++ {
			env := make(map[string]bool)
			for k, v := range names {
				env[v] = i&(1<<k) != 0
			}
			if e1.Eval(env) != e2.Eval(env) {
				brute = false
				break
			}
		}
		return Equivalent(e1, e2) == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTruthTable(t *testing.T) {
	a, b := Var("a"), Var("b")
	tt, err := TableFromExpr(And(a, b), []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if tt.Rows() != 4 {
		t.Fatalf("rows = %d", tt.Rows())
	}
	want := []bool{false, false, false, true}
	for i, w := range want {
		if tt.Get(i) != w {
			t.Errorf("row %d = %v, want %v", i, tt.Get(i), w)
		}
	}
	if tt.OnesCount() != 1 {
		t.Errorf("ones = %d", tt.OnesCount())
	}
	if c, _ := tt.IsConstant(); c {
		t.Error("AND is not constant")
	}
	ttc, _ := TableFromExpr(True, []string{"a"})
	if c, v := ttc.IsConstant(); !c || !v {
		t.Error("constant-true detection failed")
	}
}

func TestTruthTableEqualAndKey(t *testing.T) {
	a, b := Var("a"), Var("b")
	t1, _ := TableFromExpr(And(a, b), []string{"a", "b"})
	t2, _ := TableFromExpr(Not(Or(Not(a), Not(b))), []string{"a", "b"})
	t3, _ := TableFromExpr(Or(a, b), []string{"a", "b"})
	if !t1.Equal(t2) {
		t.Error("De Morgan tables should be equal")
	}
	if t1.Equal(t3) {
		t.Error("AND vs OR tables should differ")
	}
	if t1.Key() != t2.Key() {
		t.Error("keys of equal tables should match")
	}
	if t1.Key() == t3.Key() {
		t.Error("keys of different tables should differ")
	}
	t4, _ := TableFromExpr(And(a, b), []string{"b", "a"})
	if t1.Equal(t4) {
		t.Error("tables over different input orders are not comparable-equal")
	}
}

func TestTruthTableLimit(t *testing.T) {
	inputs := make([]string, maxTTInputs+1)
	for i := range inputs {
		inputs[i] = Var("v").String() + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	if _, err := TableFromExpr(True, inputs); err == nil {
		t.Error("oversized table should be rejected")
	}
}

func TestTruthTableString(t *testing.T) {
	a := Var("a")
	tt, _ := TableFromExpr(Not(a), []string{"a"})
	s := tt.String()
	if !strings.Contains(s, "a | f") || !strings.Contains(s, "0 | 1") || !strings.Contains(s, "1 | 0") {
		t.Errorf("table rendering:\n%s", s)
	}
}
