// Package power models chip-level power dissipation for the §3
// experiments of the paper.
//
// The paper's low-power story is quantitative in exactly two places, and
// this package reproduces both:
//
//   - Table 1, the ALPHA 21064 → StrongARM power walk: "Starting with a
//     200MHz 21064 in 0.75 technology, factoring in VDD, functionality
//     differences, process scaling, clock loading and frequency, we end
//     up with a power dissipation close to the realized value of 450mW."
//     (26 W → ÷5.3 VDD → ÷3 functions → ÷2 process → ÷1.3 clock load →
//     ÷1.25 clock rate → ≈0.5 W.)
//
//   - The standby-leakage budget: low-Vt devices leak; "devices in the
//     cache arrays, the pad drivers, and certain other areas were
//     lengthened by 0.045µm or 0.09µm", bringing leakage "below the 20mW
//     specification in the fastest process corner".
//
// The model is a plain CV²f dynamic term over an average-node
// capacitance derived from the process, plus the process package's
// subthreshold leakage integrated over per-region device width.
package power

import (
	"fmt"
	"math"

	"repro/internal/process"
)

// Region is a population of devices sharing Vt class and channel
// lengthening, for leakage accounting ("the cache arrays, the pad
// drivers, and certain other areas").
type Region struct {
	// Name identifies the region ("cache", "pads", "core"...).
	Name string
	// WidthUM is the total NMOS-equivalent device width in µm.
	WidthUM float64
	// Vt is the devices' threshold class.
	Vt process.VtClass
	// ExtraLUM is the §3 channel lengthening in µm.
	ExtraLUM float64
}

// ChipSpec describes a chip for the power model.
type ChipSpec struct {
	// Name identifies the chip.
	Name string
	// Proc is the fabrication process.
	Proc *process.Process
	// FreqMHz is the operating clock frequency.
	FreqMHz float64
	// GateEquivalents counts switching nodes (≈ transistor count); the
	// "reduce functions" factor of Table 1 is a ratio of these.
	GateEquivalents float64
	// ActivityFactor is the average fraction of nodes switching per
	// cycle.
	ActivityFactor float64
	// ClockLoadFactor is clock-network capacitance as a fraction of
	// switched logic capacitance (conditional clocking reduces it).
	ClockLoadFactor float64
	// PerfRel is relative performance (Cray-1 ≈ 1) for perf/W tables.
	PerfRel float64
	// Regions is the leakage inventory.
	Regions []Region
}

// NodeCapFF returns the model's average switched capacitance per gate
// equivalent: three unit-gate loads plus a wire whose length scales with
// the process pitch. This single formula is what produces Table 1's
// "process scaling" factor from the two process descriptions.
func (c *ChipSpec) NodeCapFF() float64 {
	p := c.Proc
	return 3*p.CgateFF(4*p.Lmin, p.Lmin) + p.WireC(30*p.Lmin)
}

// DynamicW returns dynamic power in watts: Ceff·V²·f with
// Ceff = GE·nodeCap·AF·(1+clockLoad).
func (c *ChipSpec) DynamicW() float64 {
	ceffF := c.GateEquivalents * c.NodeCapFF() * 1e-15 *
		c.ActivityFactor * (1 + c.ClockLoadFactor)
	return ceffF * c.Proc.Vdd * c.Proc.Vdd * c.FreqMHz * 1e6
}

// LeakageMW returns standby leakage in milliwatts at a corner, summed
// over regions.
func (c *ChipSpec) LeakageMW(corner process.Corner) float64 {
	var ua float64
	for _, r := range c.Regions {
		ua += c.Proc.IleakUA(process.NMOS, r.Vt, r.WidthUM, r.ExtraLUM, corner)
	}
	return ua * c.Proc.Vdd * 1e-3 // µA·V = µW → mW
}

// TotalW returns dynamic plus leakage power in watts.
func (c *ChipSpec) TotalW(corner process.Corner) float64 {
	return c.DynamicW() + c.LeakageMW(corner)*1e-3
}

// PerfPerWatt returns relative performance per watt at the typical
// corner.
func (c *ChipSpec) PerfPerWatt() float64 {
	return c.PerfRel / c.TotalW(process.Typical)
}

// WithExtraL returns a copy with the named regions' channel lengthening
// set to extraL µm (the §3 sweep knob). Unknown names are ignored.
func (c *ChipSpec) WithExtraL(regionNames []string, extraL float64) *ChipSpec {
	out := *c
	out.Regions = append([]Region(nil), c.Regions...)
	for i := range out.Regions {
		for _, n := range regionNames {
			if out.Regions[i].Name == n {
				out.Regions[i].ExtraLUM = extraL
			}
		}
	}
	return &out
}

// Validate checks the spec.
func (c *ChipSpec) Validate() error {
	switch {
	case c.Proc == nil:
		return fmt.Errorf("power: %s: missing process", c.Name)
	case c.FreqMHz <= 0:
		return fmt.Errorf("power: %s: frequency must be positive", c.Name)
	case c.GateEquivalents <= 0:
		return fmt.Errorf("power: %s: gate equivalents must be positive", c.Name)
	case c.ActivityFactor <= 0 || c.ActivityFactor > 1:
		return fmt.Errorf("power: %s: activity factor %g out of (0,1]", c.Name, c.ActivityFactor)
	case c.ClockLoadFactor < 0:
		return fmt.Errorf("power: %s: negative clock load", c.Name)
	}
	return c.Proc.Validate()
}

// ALPHA21064 returns the model of the 200 MHz, 3.45 V, 26 W first-
// generation ALPHA (ref [2] of the paper).
func ALPHA21064() *ChipSpec {
	return &ChipSpec{
		Name:            "alpha21064",
		Proc:            process.CMOS075(),
		FreqMHz:         200,
		GateEquivalents: 1.68e6, // published transistor count
		ActivityFactor:  0.19,
		ClockLoadFactor: 0.65, // the 21064's single-node 3 nF clock
		PerfRel:         1.0,  // "the raw performance of a Cray-1"
		Regions: []Region{
			{Name: "core", WidthUM: 2.0e6, Vt: process.StandardVt},
			{Name: "cache", WidthUM: 1.5e6, Vt: process.StandardVt},
			{Name: "pads", WidthUM: 0.2e6, Vt: process.StandardVt},
		},
	}
}

// StrongARM110 returns the model of the 160 MHz, 1.5 V, ~450 mW SA-110
// (ref [1]). Its regions are low-Vt and initially UNlengthened — the S2
// experiment applies the 0.045/0.09 µm pulls to cache and pads.
func StrongARM110() *ChipSpec {
	return &ChipSpec{
		Name:            "strongarm110",
		Proc:            process.CMOS035LP(),
		FreqMHz:         160,
		GateEquivalents: 1.68e6 / 3, // "Reduce functions: power reduction = 3x"
		ActivityFactor:  0.19,
		ClockLoadFactor: 0.27, // conditional clocking + single-phase
		PerfRel:         1.0,  // "Cray-1 class performance to battery-powered"
		Regions: []Region{
			// The speed-critical core keeps standard-Vt devices at
			// drawn length; the wide cache arrays and pad drivers are
			// low-Vt and are the lengthening targets of §3.
			{Name: "core", WidthUM: 0.3e6, Vt: process.StandardVt},
			{Name: "cache", WidthUM: 0.85e6, Vt: process.LowVt},
			{Name: "pads", WidthUM: 0.15e6, Vt: process.LowVt},
		},
	}
}

// ALPHA21164 models ref [3]: "more than four times that performance
// level at about the same power" (433 MHz quad-issue, 0.5 µm).
func ALPHA21164() *ChipSpec {
	return &ChipSpec{
		Name:            "alpha21164",
		Proc:            process.CMOS050(),
		FreqMHz:         433,
		GateEquivalents: 3.0e6,
		ActivityFactor:  0.10,
		ClockLoadFactor: 0.55,
		PerfRel:         4.4,
		Regions: []Region{
			{Name: "core", WidthUM: 3.5e6, Vt: process.StandardVt},
			{Name: "cache", WidthUM: 4.0e6, Vt: process.StandardVt},
			{Name: "pads", WidthUM: 0.3e6, Vt: process.StandardVt},
		},
	}
}

// ALPHA21264 models ref [4]: "more than 8X the performance level at
// about twice the power" (600 MHz out-of-order).
func ALPHA21264() *ChipSpec {
	return &ChipSpec{
		Name:            "alpha21264",
		Proc:            process.CMOS035LP(), // 0.35 µm generation, higher Vdd variant
		FreqMHz:         600,
		GateEquivalents: 6.0e6,
		ActivityFactor:  0.21,
		ClockLoadFactor: 0.50,
		PerfRel:         8.3,
		Regions: []Region{
			{Name: "core", WidthUM: 6.0e6, Vt: process.StandardVt},
			{Name: "cache", WidthUM: 6.0e6, Vt: process.StandardVt},
			{Name: "pads", WidthUM: 0.4e6, Vt: process.StandardVt},
		},
	}
}

// fixup21264 swaps in the 21264's high-performance 0.35 µm process
// variant (2.2 V supply, mid-range thresholds) on a private copy.
func fixup21264(c *ChipSpec) *ChipSpec {
	p := *c.Proc
	p.Name = "cmos035hp"
	p.Vdd = 2.2
	p.VtN, p.VtP = 0.45, 0.5
	c.Proc = &p
	return c
}

// WalkStep is one row of the Table 1 reproduction.
type WalkStep struct {
	// Label names the reduction ("VDD reduction").
	Label string
	// Factor is the computed power-reduction factor.
	Factor float64
	// PowerW is the cumulative power after applying the factor.
	PowerW float64
	// PaperFactor and PaperPowerW are the values printed in Table 1.
	PaperFactor, PaperPowerW float64
}

// Table1Walk reproduces Table 1: starting from the first chip's dynamic
// power, it applies the five factor reductions computed from the two
// chip specifications (not hard-coded) and returns the walk.
func Table1Walk(from, to *ChipSpec) ([]WalkStep, error) {
	if err := from.Validate(); err != nil {
		return nil, err
	}
	if err := to.Validate(); err != nil {
		return nil, err
	}
	power := from.DynamicW()
	steps := []WalkStep{{
		Label:  fmt.Sprintf("%s: %.4gv, %.0f MHz", from.Name, from.Proc.Vdd, from.FreqMHz),
		Factor: 1, PowerW: power, PaperFactor: 1, PaperPowerW: 26,
	}}
	apply := func(label string, factor, paperFactor, paperPower float64) {
		power /= factor
		steps = append(steps, WalkStep{label, factor, power, paperFactor, paperPower})
	}
	fVdd := (from.Proc.Vdd * from.Proc.Vdd) / (to.Proc.Vdd * to.Proc.Vdd)
	apply("VDD reduction", fVdd, 5.3, 4.9)
	fFunc := from.GateEquivalents / to.GateEquivalents
	apply("Reduce functions", fFunc, 3.0, 1.6)
	fProc := from.NodeCapFF() / to.NodeCapFF()
	apply("Scale process", fProc, 2.0, 0.8)
	fClock := (1 + from.ClockLoadFactor) / (1 + to.ClockLoadFactor)
	apply("Clock load", fClock, 1.3, 0.6)
	fRate := from.FreqMHz / to.FreqMHz
	apply("Clock rate", fRate, 1.25, 0.5)
	return steps, nil
}

// WalkTotalFactor returns the product of all factors in a walk.
func WalkTotalFactor(steps []WalkStep) float64 {
	f := 1.0
	for _, s := range steps {
		f *= s.Factor
	}
	return f
}

// FormatWalk renders the walk as the paper's Table 1 rows.
func FormatWalk(steps []WalkStep) string {
	out := ""
	for i, s := range steps {
		if i == 0 {
			out += fmt.Sprintf("Starting with %s: Power = %.1fW (paper: 26W)\n", s.Label, s.PowerW)
			continue
		}
		out += fmt.Sprintf("%-18s power reduction = %.2fx -> %.2fW   (paper: %.4gx -> %.1fW)\n",
			s.Label+":", s.Factor, s.PowerW, s.PaperFactor, s.PaperPowerW)
	}
	return out
}

// LeakageSweep evaluates standby leakage of a chip across channel
// lengthening values and corners — the S2 experiment. Regions named in
// lengthened get each ExtraL value; others stay at their spec.
type LeakagePoint struct {
	ExtraLUM  float64
	Corner    process.Corner
	LeakageMW float64
	MeetsSpec bool
}

// StandbySpecMW is the paper's standby budget: "below the 20mW
// specification in the fastest process corner."
const StandbySpecMW = 20.0

// LeakageSweep runs the lengthening × corner sweep.
func LeakageSweep(chip *ChipSpec, lengthened []string, extraLs []float64) []LeakagePoint {
	var out []LeakagePoint
	for _, dl := range extraLs {
		variant := chip.WithExtraL(lengthened, dl)
		for _, corner := range process.Corners {
			mw := variant.LeakageMW(corner)
			out = append(out, LeakagePoint{
				ExtraLUM:  dl,
				Corner:    corner,
				LeakageMW: mw,
				MeetsSpec: mw < StandbySpecMW,
			})
		}
	}
	return out
}

// PerfWattRow is one row of the generations table (§3's scaling claims).
type PerfWattRow struct {
	Name       string
	FreqMHz    float64
	PowerW     float64
	PerfRel    float64
	PerfPerW   float64
	VsFirstGen float64 // performance relative to the 21064
}

// GenerationsTable summarizes the §3 scaling story across the four chips.
func GenerationsTable() []PerfWattRow {
	chips := []*ChipSpec{ALPHA21064(), ALPHA21164(), fixup21264(ALPHA21264()), StrongARM110()}
	base := chips[0].PerfRel
	var rows []PerfWattRow
	for _, c := range chips {
		w := c.TotalW(process.Typical)
		rows = append(rows, PerfWattRow{
			Name:       c.Name,
			FreqMHz:    c.FreqMHz,
			PowerW:     w,
			PerfRel:    c.PerfRel,
			PerfPerW:   c.PerfRel / w,
			VsFirstGen: c.PerfRel / base,
		})
	}
	return rows
}

// RoundLikePaper rounds a power in watts the way Table 1 prints it (one
// decimal place).
func RoundLikePaper(w float64) float64 {
	return math.Round(w*10) / 10
}
