package power

import (
	"math"
	"strings"
	"testing"

	"repro/internal/process"
)

func TestChipSpecsValidate(t *testing.T) {
	for _, c := range []*ChipSpec{ALPHA21064(), StrongARM110(), ALPHA21164(), fixup21264(ALPHA21264())} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	muts := []func(*ChipSpec){
		func(c *ChipSpec) { c.Proc = nil },
		func(c *ChipSpec) { c.FreqMHz = 0 },
		func(c *ChipSpec) { c.GateEquivalents = 0 },
		func(c *ChipSpec) { c.ActivityFactor = 0 },
		func(c *ChipSpec) { c.ActivityFactor = 1.5 },
		func(c *ChipSpec) { c.ClockLoadFactor = -1 },
	}
	for i, m := range muts {
		c := ALPHA21064()
		m(c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestALPHA21064HitsPublishedPower(t *testing.T) {
	// §3: "3.45v, Power = 26W".
	got := ALPHA21064().DynamicW()
	if math.Abs(got-26) > 26*0.08 {
		t.Errorf("ALPHA 21064 dynamic power = %.2f W, want ≈26 W", got)
	}
}

func TestStrongARMHitsPublishedPower(t *testing.T) {
	// §3: "close to the realized value of 450mW" / "160MHz while
	// burning only 500mW".
	got := StrongARM110().DynamicW()
	if got < 0.40 || got > 0.55 {
		t.Errorf("StrongARM dynamic power = %.3f W, want 0.40–0.55 W", got)
	}
}

func TestTable1WalkFactors(t *testing.T) {
	steps, err := Table1Walk(ALPHA21064(), StrongARM110())
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 6 {
		t.Fatalf("want 6 rows (start + 5 factors), got %d", len(steps))
	}
	// Each computed factor must land near the paper's value.
	wantClose := []struct {
		label string
		tol   float64
	}{
		{"VDD reduction", 0.15},
		{"Reduce functions", 0.01},
		{"Scale process", 0.25},
		{"Clock load", 0.08},
		{"Clock rate", 0.01},
	}
	for i, w := range wantClose {
		s := steps[i+1]
		if !strings.Contains(s.Label, strings.Split(w.label, " ")[0]) {
			t.Errorf("row %d label = %q, want %q", i+1, s.Label, w.label)
		}
		rel := math.Abs(s.Factor-s.PaperFactor) / s.PaperFactor
		if rel > w.tol {
			t.Errorf("%s: computed factor %.3f vs paper %.3g (rel err %.2f > %.2f)",
				w.label, s.Factor, s.PaperFactor, rel, w.tol)
		}
	}
	// Cumulative endpoint: ≈0.5 W (paper) / 0.45 W (realized).
	final := steps[len(steps)-1].PowerW
	if final < 0.40 || final > 0.60 {
		t.Errorf("walk endpoint %.3f W, want 0.40–0.60", final)
	}
	// Total factor ≈ 52×.
	if f := WalkTotalFactor(steps); f < 45 || f > 65 {
		t.Errorf("total reduction %.1f×, want ≈52×", f)
	}
	// And the walk endpoint must be consistent with the direct CV²f
	// computation of the StrongARM spec (the model is self-consistent,
	// not two unrelated formulas).
	direct := StrongARM110().DynamicW()
	if math.Abs(final-direct)/direct > 0.02 {
		t.Errorf("walk endpoint %.3f vs direct model %.3f diverge", final, direct)
	}
}

func TestFormatWalkShowsRows(t *testing.T) {
	steps, err := Table1Walk(ALPHA21064(), StrongARM110())
	if err != nil {
		t.Fatal(err)
	}
	s := FormatWalk(steps)
	for _, want := range []string{"VDD reduction", "Reduce functions", "Scale process", "Clock load", "Clock rate", "paper: 26W"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted walk missing %q:\n%s", want, s)
		}
	}
}

func TestTable1WalkValidates(t *testing.T) {
	bad := ALPHA21064()
	bad.FreqMHz = 0
	if _, err := Table1Walk(bad, StrongARM110()); err == nil {
		t.Error("invalid source spec accepted")
	}
	if _, err := Table1Walk(ALPHA21064(), &ChipSpec{Name: "x"}); err == nil {
		t.Error("invalid target spec accepted")
	}
}

func TestLeakageSweepReproducesS2(t *testing.T) {
	// §3: unlengthened low-Vt leakage busts the 20 mW standby spec in
	// the fast corner; the 0.045/0.09 µm pulls bring it under.
	chip := StrongARM110()
	pts := LeakageSweep(chip, []string{"cache", "pads"}, []float64{0, 0.045, 0.09})
	at := func(dl float64, c process.Corner) LeakagePoint {
		for _, p := range pts {
			if p.ExtraLUM == dl && p.Corner == c {
				return p
			}
		}
		t.Fatalf("missing point %g/%v", dl, c)
		return LeakagePoint{}
	}
	if p := at(0, process.Fast); p.MeetsSpec {
		t.Errorf("unlengthened fast-corner leakage %.1f mW should bust the %g mW spec", p.LeakageMW, StandbySpecMW)
	}
	if p := at(0.045, process.Fast); !p.MeetsSpec {
		t.Errorf("0.045 µm lengthening should just meet spec: %.1f mW", p.LeakageMW)
	}
	if p := at(0.09, process.Fast); !p.MeetsSpec || p.LeakageMW > 10 {
		t.Errorf("0.09 µm lengthening should meet spec comfortably: %.1f mW", p.LeakageMW)
	}
	// Monotonic in ΔL at every corner; fast worst everywhere.
	for _, c := range process.Corners {
		if !(at(0, c).LeakageMW > at(0.045, c).LeakageMW && at(0.045, c).LeakageMW > at(0.09, c).LeakageMW) {
			t.Errorf("leakage not monotone in ΔL at %v", c)
		}
	}
	for _, dl := range []float64{0, 0.045, 0.09} {
		if !(at(dl, process.Fast).LeakageMW > at(dl, process.Typical).LeakageMW) {
			t.Errorf("fast corner should leak most at ΔL=%g", dl)
		}
	}
}

func TestWithExtraLDoesNotMutate(t *testing.T) {
	chip := StrongARM110()
	_ = chip.WithExtraL([]string{"cache"}, 0.09)
	for _, r := range chip.Regions {
		if r.ExtraLUM != 0 {
			t.Errorf("WithExtraL mutated the original: %+v", r)
		}
	}
	v := chip.WithExtraL([]string{"cache", "nonexistent"}, 0.09)
	found := false
	for _, r := range v.Regions {
		if r.Name == "cache" && r.ExtraLUM == 0.09 {
			found = true
		}
	}
	if !found {
		t.Error("WithExtraL did not apply to cache")
	}
}

func TestGenerationsTableScalingClaims(t *testing.T) {
	rows := GenerationsTable()
	if len(rows) != 4 {
		t.Fatalf("want 4 generations, got %d", len(rows))
	}
	byName := map[string]PerfWattRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	a64 := byName["alpha21064"]
	a164 := byName["alpha21164"]
	a264 := byName["alpha21264"]
	sa := byName["strongarm110"]

	// "The next generation of ALPHA chips delivered more than four
	// times that performance level at about the same power."
	if a164.VsFirstGen < 4 {
		t.Errorf("21164 perf vs 21064 = %.1f×, want >4×", a164.VsFirstGen)
	}
	if a164.PowerW > a64.PowerW*1.4 || a164.PowerW < a64.PowerW*0.6 {
		t.Errorf("21164 power %.1f W should be near 21064's %.1f W", a164.PowerW, a64.PowerW)
	}
	// "The latest ALPHA CPU delivers more than 8X the performance level
	// at about twice the power."
	if a264.VsFirstGen < 8 {
		t.Errorf("21264 perf = %.1f×, want >8×", a264.VsFirstGen)
	}
	if r := a264.PowerW / a64.PowerW; r < 1.6 || r > 2.6 {
		t.Errorf("21264 power ratio %.2f×, want ≈2×", r)
	}
	// StrongARM is the perf/W champion by a wide margin (ref [1]:
	// "highest performance per Watt").
	for _, r := range []PerfWattRow{a64, a164, a264} {
		if sa.PerfPerW < 10*r.PerfPerW {
			t.Errorf("StrongARM perf/W %.2f should dwarf %s's %.3f", sa.PerfPerW, r.Name, r.PerfPerW)
		}
	}
}

func TestRoundLikePaper(t *testing.T) {
	if RoundLikePaper(4.91) != 4.9 || RoundLikePaper(0.46) != 0.5 {
		t.Error("rounding mismatch")
	}
}

func TestNodeCapScalesWithProcess(t *testing.T) {
	a := ALPHA21064().NodeCapFF()
	s := StrongARM110().NodeCapFF()
	if ratio := a / s; ratio < 1.7 || ratio > 2.5 {
		t.Errorf("process cap scaling %.2f×, want ≈2× (Table 1's process factor)", ratio)
	}
}
