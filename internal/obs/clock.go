package obs

import "time"

// Now is the repo's single sanctioned wall-clock access point. All
// other packages reach the clock through it, never through time.Now
// directly — the fcv-analyze linter enforces this.
//
// Centralizing the clock keeps the determinism contract auditable: the
// volatile fields of a manifest or event stream (durations, t_ms) are
// exactly the values that flowed through here, and everything else must
// be a pure function of the inputs. It also gives future sessions one
// seam for a virtual clock in tests, without the determinism tests
// having to mask an unknown set of call sites.
func Now() time.Time {
	return time.Now()
}

// RNG is a small, seeded, deterministic pseudo-random generator
// (splitmix64). Packages that need reproducible pseudo-random streams —
// RTL stimulus, example shadow runs — use it instead of math/rand, for
// two reasons the linter enforces: the zero-dependency stream is pinned
// by this file (math/rand's sequence is not guaranteed across Go
// releases, so golden traces would rot), and a package-level
// math/rand import invites the unseeded global source, which breaks
// replayability. The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator with the given seed. Equal seeds produce
// equal streams on every platform and Go release.
func NewRNG(seed int64) *RNG {
	return &RNG{state: uint64(seed)}
}

// Uint64 returns the next value of the stream (splitmix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("obs: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}
