package obs

import (
	"testing"
	"time"
)

func TestNowIsWallClock(t *testing.T) {
	before := time.Now()
	got := Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("equal seeds diverged at step %d", i)
		}
	}
	// Splitmix64 is pinned: the stream is part of the contract, not an
	// implementation detail, so golden traces built on it never rot.
	r := NewRNG(0)
	if got := r.Uint64(); got != 0xe220a8397b1dcdaf {
		t.Errorf("splitmix64(0) first value = %#x, want 0xe220a8397b1dcdaf", got)
	}
	if got := NewRNG(1).Uint64(); got == NewRNG(2).Uint64() {
		t.Errorf("seeds 1 and 2 collide on first value: %#x", got)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit %d/10 values in 1000 draws", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}
