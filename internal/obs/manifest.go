package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// SchemaID identifies the manifest's wire format. Bump only with a
// schema change; the golden-file test pins the full schema document.
// v2 added per-item finding provenance (stable IDs + evidence) and
// duration histograms; v1 documents still validate through the compat
// reader (see ValidateManifest).
const SchemaID = "fcv-run-manifest/v2"

// SchemaIDV1 is the previous wire format, accepted read-only.
const SchemaIDV1 = "fcv-run-manifest/v1"

// Manifest is the machine-readable record of one verification or bench
// run — the "reproducible, machine-readable performance evidence" layer.
// Field order is the wire order (encoding/json follows declaration
// order; map keys marshal sorted), so two runs over the same corpus and
// configuration produce byte-identical manifests modulo the duration,
// wall-clock and gauge fields.
type Manifest struct {
	// Schema is always SchemaID.
	Schema string `json:"schema"`
	// Tool names the producer: "fcv verify" or "fcv bench".
	Tool string `json:"tool"`
	// Trace is the serve daemon's per-request trace ID (the request's
	// X-Fcv-Trace header: daemon epoch + request sequence). It is the
	// volatile half — absent on batch runs, never compared by fcv diff —
	// and exists so a manifest fished out of an artifact store can be
	// joined back to its access-log line and slow-trace capture.
	Trace string `json:"trace,omitempty"`
	// ConfigKey is the verification configuration fingerprint (the
	// fleet cache's config key): equal keys mean comparable runs.
	ConfigKey string `json:"config_key"`
	// Workers is the resolved fleet parallelism (0 when not a fleet run).
	Workers int `json:"workers"`
	// WallMS is the whole run's wall clock in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Items are the per-design outcomes in input order.
	Items []ManifestItem `json:"items"`
	// Stages is the flattened span tree in preorder (deterministic
	// paths, volatile durations).
	Stages []SpanInfo `json:"stages"`
	// Counters are the run's named totals (cache traffic, worklist
	// iterations, cycles simulated, ...), sorted by name on the wire.
	Counters map[string]int64 `json:"counters"`
	// Gauges are named levels (worker utilization, throughput rates).
	Gauges map[string]float64 `json:"gauges"`
	// Histograms are fixed-bucket duration distributions (bucket bounds
	// are HistBoundsMS; counts are volatile, the layout is not).
	Histograms map[string]Histogram `json:"histograms"`
	// Verdicts tallies the corpus outcomes.
	Verdicts VerdictTally `json:"verdicts"`
}

// ManifestItem is one design's row in the manifest.
type ManifestItem struct {
	// Name is the corpus item label (deck:cell).
	Name string `json:"name"`
	// Fingerprint is the circuit's full structural hash (hex).
	Fingerprint string `json:"fingerprint"`
	// Verdict is "pass", "inspect", "violation" or "error".
	Verdict string `json:"verdict"`
	// Cached reports a memoized result.
	Cached bool `json:"cached"`
	// ElapsedMS is the item's wall-clock cost (volatile).
	ElapsedMS float64 `json:"elapsed_ms"`
	// Findings are the item's provenanced non-pass findings in
	// deterministic order (source, check, subject, ID) — the rows
	// `fcv diff` tracks across runs by stable ID.
	Findings []Finding `json:"findings"`
	// Subcell names the hierarchy cell this item verifies when the run
	// was hierarchical; empty (omitted) for whole-netlist items.
	Subcell string `json:"subcell,omitempty"`
	// Parent names the subcell's first instantiating parent (omitted
	// for the top cell and flat items).
	Parent string `json:"parent,omitempty"`
	// DiskHit reports the result was replayed from the persistent
	// cache layer (omitted when false).
	DiskHit bool `json:"disk_hit,omitempty"`
}

// Finding is one provenanced verification finding: a check, lint or
// timing result with a stable rename-invariant identity and structured
// evidence. IDs are "<source>/<check>@<16-hex>" where the hex half is
// the subject's canonical structural signature (netlist.Signatures)
// folded with the check identity; structurally symmetric repeats carry
// "#n" suffixes.
type Finding struct {
	// ID is the stable identity findings are diffed by.
	ID string `json:"id"`
	// Source is the producing stage: "check", "lint", "timing", "error".
	Source string `json:"source"`
	// Check names the individual check, lint rule or timing analysis
	// ("beta-ratio", "FCV005", "setup", "hold", "verify").
	Check string `json:"check"`
	// Subject names the node, device or path endpoint concerned.
	Subject string `json:"subject"`
	// Severity is "inspect", "violation", "warn" or "error".
	Severity string `json:"severity"`
	// Margin is the normalized safety margin where the producer defines
	// one (checks battery), else 0.
	Margin float64 `json:"margin"`
	// Detail is the human-readable explanation.
	Detail string `json:"detail"`
	// Evidence is the structured context behind the finding.
	Evidence Evidence `json:"evidence"`
}

// Evidence is the structured context of a finding: what the tool
// looked at and what it measured, so reports and diffs can explain a
// verdict without re-running the pipeline.
type Evidence struct {
	// Devices are the names of the transistors involved (bounded).
	Devices []string `json:"devices"`
	// Nets are the nodes involved (subject first, bounded).
	Nets []string `json:"nets"`
	// Context describes the recognized topology around the subject
	// (logic family, dynamic/state-ness, capture clock).
	Context string `json:"context"`
	// Measured and Threshold are the compared quantities in Unit; for
	// normalized checks both are margins against 0.
	Measured  float64 `json:"measured"`
	Threshold float64 `json:"threshold"`
	// Unit names the quantity ("margin", "ps", "ratio").
	Unit string `json:"unit"`
}

// VerdictTally counts corpus outcomes by verdict.
type VerdictTally struct {
	Pass      int `json:"pass"`
	Inspect   int `json:"inspect"`
	Violation int `json:"violation"`
	Error     int `json:"error"`
}

// NewManifest seeds a manifest from the collector's spans, counters and
// gauges; the caller fills the corpus half (Items, Verdicts, Workers,
// WallMS). Works on a nil collector (empty telemetry).
func NewManifest(tool, configKey string, c *Collector) *Manifest {
	m := &Manifest{
		Schema:     SchemaID,
		Tool:       tool,
		ConfigKey:  configKey,
		Stages:     c.Spans(),
		Counters:   c.Counters(),
		Gauges:     c.Gauges(),
		Histograms: c.Histograms(),
	}
	if m.Counters == nil {
		m.Counters = map[string]int64{}
	}
	if m.Gauges == nil {
		m.Gauges = map[string]float64{}
	}
	if m.Histograms == nil {
		m.Histograms = map[string]Histogram{}
	}
	if m.Items == nil {
		m.Items = []ManifestItem{}
	}
	if m.Stages == nil {
		m.Stages = []SpanInfo{}
	}
	return m
}

// JSON marshals the manifest in its canonical indented form, trailing
// newline included. Nil slices and maps are normalized to empty so the
// document always matches the schema's required array/object types.
func (m *Manifest) JSON() ([]byte, error) {
	if m.Histograms == nil {
		m.Histograms = map[string]Histogram{}
	}
	for i := range m.Items {
		if m.Items[i].Findings == nil {
			m.Items[i].Findings = []Finding{}
		}
		for j := range m.Items[i].Findings {
			ev := &m.Items[i].Findings[j].Evidence
			if ev.Devices == nil {
				ev.Devices = []string{}
			}
			if ev.Nets == nil {
				ev.Nets = []string{}
			}
		}
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the manifest atomically (see WriteFileAtomic).
func (m *Manifest) WriteFile(path string) error {
	b, err := m.JSON()
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, b)
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory, fsync, and rename — so a reader (or a CI artifact upload)
// can never observe a truncated file, even if the writer is killed
// mid-write. The rename is atomic on POSIX filesystems.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// StageTotalMS sums the durations of the manifest's top-level (depth 0)
// stages — the quantity the acceptance check compares against WallMS:
// the root spans must cover ≥90% of the run's wall clock or the trace
// is missing a stage.
func (m *Manifest) StageTotalMS() float64 {
	var total float64
	for _, s := range m.Stages {
		if s.Depth == 0 {
			total += s.DurMS
		}
	}
	return total
}

// manifestFields is the schema/validator source of truth: the top-level
// object shape. typ is a JSON-Schema type name; "integer" means a JSON
// number with integral value.
type manifestField struct {
	name string
	typ  string
}

var manifestFields = []manifestField{
	{"schema", "string"},
	{"tool", "string"},
	{"config_key", "string"},
	{"workers", "integer"},
	{"wall_ms", "number"},
	{"items", "array"},
	{"stages", "array"},
	{"counters", "object"},
	{"gauges", "object"},
	{"histograms", "object"},
	{"verdicts", "object"},
}

// manifestOptionalFields are top-level v2 fields that may be absent:
// present they must type-check, absent they are fine. Batch manifests
// omit them; serve manifests carry them.
var manifestOptionalFields = []manifestField{
	{"trace", "string"},
}

var itemFields = []manifestField{
	{"name", "string"},
	{"fingerprint", "string"},
	{"verdict", "string"},
	{"cached", "boolean"},
	{"elapsed_ms", "number"},
	{"findings", "array"},
}

// itemOptionalFields are per-item v2 fields that may be absent: flat
// runs omit them; hierarchical runs carry subcell provenance (and any
// run may mark disk replays).
var itemOptionalFields = []manifestField{
	{"subcell", "string"},
	{"parent", "string"},
	{"disk_hit", "boolean"},
}

var findingFields = []manifestField{
	{"id", "string"},
	{"source", "string"},
	{"check", "string"},
	{"subject", "string"},
	{"severity", "string"},
	{"margin", "number"},
	{"detail", "string"},
	{"evidence", "object"},
}

var evidenceFields = []manifestField{
	{"devices", "array"},
	{"nets", "array"},
	{"context", "string"},
	{"measured", "number"},
	{"threshold", "number"},
	{"unit", "string"},
}

var histFields = []manifestField{
	{"counts", "array"},
	{"sum", "number"},
	{"count", "integer"},
}

var stageFields = []manifestField{
	{"path", "string"},
	{"depth", "integer"},
	{"dur_ms", "number"},
}

var verdictFields = []manifestField{
	{"pass", "integer"},
	{"inspect", "integer"},
	{"violation", "integer"},
	{"error", "integer"},
}

var itemVerdicts = map[string]bool{
	"pass": true, "inspect": true, "violation": true, "error": true,
}

var findingSources = map[string]bool{
	"check": true, "lint": true, "timing": true, "error": true, "boundary": true,
}

var findingSeverities = map[string]bool{
	"inspect": true, "violation": true, "warn": true, "error": true,
}

// The frozen v1 shape, kept verbatim so old manifests (CI artifacts,
// committed baselines) stay readable: no histograms, no item findings.
var manifestFieldsV1 = []manifestField{
	{"schema", "string"},
	{"tool", "string"},
	{"config_key", "string"},
	{"workers", "integer"},
	{"wall_ms", "number"},
	{"items", "array"},
	{"stages", "array"},
	{"counters", "object"},
	{"gauges", "object"},
	{"verdicts", "object"},
}

var itemFieldsV1 = []manifestField{
	{"name", "string"},
	{"fingerprint", "string"},
	{"verdict", "string"},
	{"cached", "boolean"},
	{"elapsed_ms", "number"},
}

// SchemaJSON returns the manifest's JSON Schema (draft-07) document,
// generated from the same field tables the validator uses so the two
// cannot drift. The output is deterministic (map keys marshal sorted)
// and pinned by internal/obs/testdata/manifest.schema.json.
func SchemaJSON() []byte {
	obj := func(fields []manifestField, extra map[string]any) map[string]any {
		props := map[string]any{}
		required := make([]string, 0, len(fields))
		for _, f := range fields {
			p := map[string]any{"type": f.typ}
			if o, ok := extra[f.name]; ok {
				p = o.(map[string]any)
			}
			props[f.name] = p
			required = append(required, f.name)
		}
		return map[string]any{
			"type":                 "object",
			"required":             required,
			"additionalProperties": false,
			"properties":           props,
		}
	}
	intMin0 := map[string]any{"type": "integer", "minimum": 0}
	enum := func(vals ...string) map[string]any {
		return map[string]any{"type": "string", "enum": vals}
	}
	evidenceSchema := obj(evidenceFields, map[string]any{
		"devices": map[string]any{"type": "array", "items": map[string]any{"type": "string"}},
		"nets":    map[string]any{"type": "array", "items": map[string]any{"type": "string"}},
	})
	findingSchema := obj(findingFields, map[string]any{
		"source":   enum("check", "lint", "timing", "error", "boundary"),
		"severity": enum("inspect", "violation", "warn", "error"),
		"evidence": evidenceSchema,
	})
	histSchema := obj(histFields, map[string]any{
		"counts": map[string]any{
			"type":     "array",
			"items":    intMin0,
			"minItems": len(HistBoundsMS) + 1,
			"maxItems": len(HistBoundsMS) + 1,
		},
		"count": intMin0,
	})
	itemSchema := obj(itemFields, map[string]any{
		"verdict":  enum("pass", "inspect", "violation", "error"),
		"findings": map[string]any{"type": "array", "items": findingSchema},
	})
	// Optional per-item fields: in properties, not in required.
	for _, f := range itemOptionalFields {
		itemSchema["properties"].(map[string]any)[f.name] = map[string]any{"type": f.typ}
	}
	doc := obj(manifestFields, map[string]any{
		"schema":     map[string]any{"type": "string", "const": SchemaID},
		"workers":    intMin0,
		"wall_ms":    map[string]any{"type": "number", "minimum": 0},
		"items":      map[string]any{"type": "array", "items": itemSchema},
		"stages":     map[string]any{"type": "array", "items": obj(stageFields, map[string]any{"depth": intMin0})},
		"counters":   map[string]any{"type": "object", "additionalProperties": map[string]any{"type": "integer"}},
		"gauges":     map[string]any{"type": "object", "additionalProperties": map[string]any{"type": "number"}},
		"histograms": map[string]any{"type": "object", "additionalProperties": histSchema},
		"verdicts": obj(verdictFields, map[string]any{
			"pass": intMin0, "inspect": intMin0, "violation": intMin0, "error": intMin0,
		}),
	})
	// Optional top-level fields: in properties, not in required.
	for _, f := range manifestOptionalFields {
		doc["properties"].(map[string]any)[f.name] = map[string]any{"type": f.typ}
	}
	doc["$schema"] = "http://json-schema.org/draft-07/schema#"
	doc["$id"] = SchemaID
	doc["title"] = "fcv run manifest"
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(err) // static document; cannot fail
	}
	return append(b, '\n')
}

// ValidateManifest checks a manifest document against its schema: all
// required fields present with the right types, no unknown fields, the
// schema identifier known, item verdicts and finding severities from
// their enums, and tallies non-negative. Both the current v2 shape and
// the frozen v1 shape are accepted; anything else is rejected with the
// offending field path named. It is the `fcv manifest-check` engine.
func ValidateManifest(data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("manifest: not valid JSON: %w", err)
	}
	if len(doc) == 0 {
		return fmt.Errorf("manifest: empty document, missing required field %q", "schema")
	}
	id, ok := doc["schema"].(string)
	if !ok {
		return fmt.Errorf("manifest: schema: missing or not a string")
	}
	switch id {
	case SchemaID:
		return validateV2(doc)
	case SchemaIDV1:
		return validateV1(doc)
	}
	return fmt.Errorf("manifest: schema %q, want %q (or legacy %q)", id, SchemaID, SchemaIDV1)
}

// validateV2 enforces the current wire format.
func validateV2(doc map[string]any) error {
	if err := checkObjectOpt("manifest", doc, manifestFields, manifestOptionalFields); err != nil {
		return err
	}
	for i, el := range doc["items"].([]any) {
		it, ok := el.(map[string]any)
		if !ok {
			return fmt.Errorf("manifest: items[%d]: not an object", i)
		}
		ctx := fmt.Sprintf("items[%d]", i)
		if err := checkObjectOpt(ctx, it, itemFields, itemOptionalFields); err != nil {
			return err
		}
		if v := it["verdict"].(string); !itemVerdicts[v] {
			return fmt.Errorf("manifest: %s.verdict: unknown verdict %q", ctx, v)
		}
		for j, fel := range it["findings"].([]any) {
			f, ok := fel.(map[string]any)
			if !ok {
				return fmt.Errorf("manifest: %s.findings[%d]: not an object", ctx, j)
			}
			fctx := fmt.Sprintf("%s.findings[%d]", ctx, j)
			if err := checkObject(fctx, f, findingFields); err != nil {
				return err
			}
			if v := f["source"].(string); !findingSources[v] {
				return fmt.Errorf("manifest: %s.source: unknown source %q", fctx, v)
			}
			if v := f["severity"].(string); !findingSeverities[v] {
				return fmt.Errorf("manifest: %s.severity: unknown severity %q", fctx, v)
			}
			ev := f["evidence"].(map[string]any)
			ectx := fctx + ".evidence"
			if err := checkObject(ectx, ev, evidenceFields); err != nil {
				return err
			}
			for _, listField := range []string{"devices", "nets"} {
				for k, s := range ev[listField].([]any) {
					if !isType(s, "string") {
						return fmt.Errorf("manifest: %s.%s[%d]: want string", ectx, listField, k)
					}
				}
			}
		}
	}
	for name, hel := range doc["histograms"].(map[string]any) {
		h, ok := hel.(map[string]any)
		if !ok {
			return fmt.Errorf("manifest: histograms[%q]: not an object", name)
		}
		hctx := fmt.Sprintf("histograms[%q]", name)
		if err := checkObject(hctx, h, histFields); err != nil {
			return err
		}
		counts := h["counts"].([]any)
		if len(counts) != len(HistBoundsMS)+1 {
			return fmt.Errorf("manifest: %s.counts: %d buckets, want %d", hctx, len(counts), len(HistBoundsMS)+1)
		}
		for i, v := range counts {
			if !isType(v, "integer") || v.(float64) < 0 {
				return fmt.Errorf("manifest: %s.counts[%d]: want non-negative integer", hctx, i)
			}
		}
	}
	return validateShared(doc)
}

// validateV1 enforces the frozen v1 shape (the compat reader).
func validateV1(doc map[string]any) error {
	if err := checkObject("manifest", doc, manifestFieldsV1); err != nil {
		return err
	}
	for i, el := range doc["items"].([]any) {
		it, ok := el.(map[string]any)
		if !ok {
			return fmt.Errorf("manifest: items[%d]: not an object", i)
		}
		ctx := fmt.Sprintf("items[%d]", i)
		if err := checkObject(ctx, it, itemFieldsV1); err != nil {
			return err
		}
		if v := it["verdict"].(string); !itemVerdicts[v] {
			return fmt.Errorf("manifest: %s.verdict: unknown verdict %q", ctx, v)
		}
	}
	return validateShared(doc)
}

// validateShared checks the parts common to both versions: stages,
// counters, gauges and the verdict tally.
func validateShared(doc map[string]any) error {
	for i, el := range doc["stages"].([]any) {
		st, ok := el.(map[string]any)
		if !ok {
			return fmt.Errorf("manifest: stages[%d]: not an object", i)
		}
		ctx := fmt.Sprintf("stages[%d]", i)
		if err := checkObject(ctx, st, stageFields); err != nil {
			return err
		}
		if st["depth"].(float64) < 0 {
			return fmt.Errorf("manifest: %s: negative depth", ctx)
		}
	}
	for k, v := range doc["counters"].(map[string]any) {
		if !isType(v, "integer") {
			return fmt.Errorf("manifest: counters[%q]: not an integer", k)
		}
	}
	for k, v := range doc["gauges"].(map[string]any) {
		if !isType(v, "number") {
			return fmt.Errorf("manifest: gauges[%q]: not a number", k)
		}
	}
	vt := doc["verdicts"].(map[string]any)
	if err := checkObject("verdicts", vt, verdictFields); err != nil {
		return err
	}
	for _, f := range verdictFields {
		if vt[f.name].(float64) < 0 {
			return fmt.Errorf("manifest: verdicts.%s: negative", f.name)
		}
	}
	return nil
}

// ParseManifest validates a manifest document (v2 or legacy v1) and
// decodes it into the in-memory form. v1 documents come back with
// empty Findings and Histograms — readable, just without provenance.
func ParseManifest(data []byte) (*Manifest, error) {
	if err := ValidateManifest(data); err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	if m.Histograms == nil {
		m.Histograms = map[string]Histogram{}
	}
	return &m, nil
}

// ReadManifestFile loads and parses a manifest from disk.
func ReadManifestFile(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := ParseManifest(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// checkObject enforces exactly the given fields with the given types.
func checkObject(ctx string, o map[string]any, fields []manifestField) error {
	return checkObjectOpt(ctx, o, fields, nil)
}

// checkObjectOpt enforces the required fields plus any of the optional
// ones: required fields must be present with the right type, optional
// fields type-check only when present, and nothing else is allowed.
func checkObjectOpt(ctx string, o map[string]any, fields, optional []manifestField) error {
	known := make(map[string]string, len(fields)+len(optional))
	for _, f := range fields {
		known[f.name] = f.typ
		v, ok := o[f.name]
		if !ok {
			return fmt.Errorf("manifest: %s: missing required field %q", ctx, f.name)
		}
		if !isType(v, f.typ) {
			return fmt.Errorf("manifest: %s.%s: want %s", ctx, f.name, f.typ)
		}
	}
	for _, f := range optional {
		known[f.name] = f.typ
		if v, ok := o[f.name]; ok && !isType(v, f.typ) {
			return fmt.Errorf("manifest: %s.%s: want %s", ctx, f.name, f.typ)
		}
	}
	for k := range o {
		if _, ok := known[k]; !ok {
			return fmt.Errorf("manifest: %s: unknown field %q", ctx, k)
		}
	}
	return nil
}

// isType checks a decoded JSON value against a schema type name.
func isType(v any, typ string) bool {
	switch typ {
	case "string":
		_, ok := v.(string)
		return ok
	case "boolean":
		_, ok := v.(bool)
		return ok
	case "number":
		_, ok := v.(float64)
		return ok
	case "integer":
		f, ok := v.(float64)
		return ok && f == float64(int64(f))
	case "array":
		_, ok := v.([]any)
		return ok
	case "object":
		_, ok := v.(map[string]any)
		return ok
	}
	return false
}
