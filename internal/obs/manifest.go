package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// SchemaID identifies the manifest's wire format. Bump only with a
// schema change; the golden-file test pins the full schema document.
const SchemaID = "fcv-run-manifest/v1"

// Manifest is the machine-readable record of one verification or bench
// run — the "reproducible, machine-readable performance evidence" layer.
// Field order is the wire order (encoding/json follows declaration
// order; map keys marshal sorted), so two runs over the same corpus and
// configuration produce byte-identical manifests modulo the duration,
// wall-clock and gauge fields.
type Manifest struct {
	// Schema is always SchemaID.
	Schema string `json:"schema"`
	// Tool names the producer: "fcv verify" or "fcv bench".
	Tool string `json:"tool"`
	// ConfigKey is the verification configuration fingerprint (the
	// fleet cache's config key): equal keys mean comparable runs.
	ConfigKey string `json:"config_key"`
	// Workers is the resolved fleet parallelism (0 when not a fleet run).
	Workers int `json:"workers"`
	// WallMS is the whole run's wall clock in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Items are the per-design outcomes in input order.
	Items []ManifestItem `json:"items"`
	// Stages is the flattened span tree in preorder (deterministic
	// paths, volatile durations).
	Stages []SpanInfo `json:"stages"`
	// Counters are the run's named totals (cache traffic, worklist
	// iterations, cycles simulated, ...), sorted by name on the wire.
	Counters map[string]int64 `json:"counters"`
	// Gauges are named levels (worker utilization, throughput rates).
	Gauges map[string]float64 `json:"gauges"`
	// Verdicts tallies the corpus outcomes.
	Verdicts VerdictTally `json:"verdicts"`
}

// ManifestItem is one design's row in the manifest.
type ManifestItem struct {
	// Name is the corpus item label (deck:cell).
	Name string `json:"name"`
	// Fingerprint is the circuit's full structural hash (hex).
	Fingerprint string `json:"fingerprint"`
	// Verdict is "pass", "inspect", "violation" or "error".
	Verdict string `json:"verdict"`
	// Cached reports a memoized result.
	Cached bool `json:"cached"`
	// ElapsedMS is the item's wall-clock cost (volatile).
	ElapsedMS float64 `json:"elapsed_ms"`
}

// VerdictTally counts corpus outcomes by verdict.
type VerdictTally struct {
	Pass      int `json:"pass"`
	Inspect   int `json:"inspect"`
	Violation int `json:"violation"`
	Error     int `json:"error"`
}

// NewManifest seeds a manifest from the collector's spans, counters and
// gauges; the caller fills the corpus half (Items, Verdicts, Workers,
// WallMS). Works on a nil collector (empty telemetry).
func NewManifest(tool, configKey string, c *Collector) *Manifest {
	m := &Manifest{
		Schema:    SchemaID,
		Tool:      tool,
		ConfigKey: configKey,
		Stages:    c.Spans(),
		Counters:  c.Counters(),
		Gauges:    c.Gauges(),
	}
	if m.Counters == nil {
		m.Counters = map[string]int64{}
	}
	if m.Gauges == nil {
		m.Gauges = map[string]float64{}
	}
	if m.Items == nil {
		m.Items = []ManifestItem{}
	}
	if m.Stages == nil {
		m.Stages = []SpanInfo{}
	}
	return m
}

// JSON marshals the manifest in its canonical indented form, trailing
// newline included.
func (m *Manifest) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the manifest atomically (see WriteFileAtomic).
func (m *Manifest) WriteFile(path string) error {
	b, err := m.JSON()
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, b)
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory, fsync, and rename — so a reader (or a CI artifact upload)
// can never observe a truncated file, even if the writer is killed
// mid-write. The rename is atomic on POSIX filesystems.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// StageTotalMS sums the durations of the manifest's top-level (depth 0)
// stages — the quantity the acceptance check compares against WallMS:
// the root spans must cover ≥90% of the run's wall clock or the trace
// is missing a stage.
func (m *Manifest) StageTotalMS() float64 {
	var total float64
	for _, s := range m.Stages {
		if s.Depth == 0 {
			total += s.DurMS
		}
	}
	return total
}

// manifestFields is the schema/validator source of truth: the top-level
// object shape. typ is a JSON-Schema type name; "integer" means a JSON
// number with integral value.
type manifestField struct {
	name string
	typ  string
}

var manifestFields = []manifestField{
	{"schema", "string"},
	{"tool", "string"},
	{"config_key", "string"},
	{"workers", "integer"},
	{"wall_ms", "number"},
	{"items", "array"},
	{"stages", "array"},
	{"counters", "object"},
	{"gauges", "object"},
	{"verdicts", "object"},
}

var itemFields = []manifestField{
	{"name", "string"},
	{"fingerprint", "string"},
	{"verdict", "string"},
	{"cached", "boolean"},
	{"elapsed_ms", "number"},
}

var stageFields = []manifestField{
	{"path", "string"},
	{"depth", "integer"},
	{"dur_ms", "number"},
}

var verdictFields = []manifestField{
	{"pass", "integer"},
	{"inspect", "integer"},
	{"violation", "integer"},
	{"error", "integer"},
}

var itemVerdicts = map[string]bool{
	"pass": true, "inspect": true, "violation": true, "error": true,
}

// SchemaJSON returns the manifest's JSON Schema (draft-07) document,
// generated from the same field tables the validator uses so the two
// cannot drift. The output is deterministic (map keys marshal sorted)
// and pinned by internal/obs/testdata/manifest.schema.json.
func SchemaJSON() []byte {
	obj := func(fields []manifestField, extra map[string]any) map[string]any {
		props := map[string]any{}
		required := make([]string, 0, len(fields))
		for _, f := range fields {
			p := map[string]any{"type": f.typ}
			if o, ok := extra[f.name]; ok {
				p = o.(map[string]any)
			}
			props[f.name] = p
			required = append(required, f.name)
		}
		return map[string]any{
			"type":                 "object",
			"required":             required,
			"additionalProperties": false,
			"properties":           props,
		}
	}
	intMin0 := map[string]any{"type": "integer", "minimum": 0}
	doc := obj(manifestFields, map[string]any{
		"schema":  map[string]any{"type": "string", "const": SchemaID},
		"workers": intMin0,
		"wall_ms": map[string]any{"type": "number", "minimum": 0},
		"items": map[string]any{"type": "array", "items": obj(itemFields, map[string]any{
			"verdict": map[string]any{"type": "string", "enum": []string{"pass", "inspect", "violation", "error"}},
		})},
		"stages":   map[string]any{"type": "array", "items": obj(stageFields, map[string]any{"depth": intMin0})},
		"counters": map[string]any{"type": "object", "additionalProperties": map[string]any{"type": "integer"}},
		"gauges":   map[string]any{"type": "object", "additionalProperties": map[string]any{"type": "number"}},
		"verdicts": obj(verdictFields, map[string]any{
			"pass": intMin0, "inspect": intMin0, "violation": intMin0, "error": intMin0,
		}),
	})
	doc["$schema"] = "http://json-schema.org/draft-07/schema#"
	doc["$id"] = SchemaID
	doc["title"] = "fcv run manifest"
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(err) // static document; cannot fail
	}
	return append(b, '\n')
}

// ValidateManifest checks a manifest document against the schema: all
// required fields present with the right types, no unknown fields, the
// schema identifier current, item verdicts from the enum, and tallies
// non-negative. It is the `fcv manifest-check` engine.
func ValidateManifest(data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("manifest: not valid JSON: %w", err)
	}
	if err := checkObject("manifest", doc, manifestFields); err != nil {
		return err
	}
	if id := doc["schema"].(string); id != SchemaID {
		return fmt.Errorf("manifest: schema %q, want %q", id, SchemaID)
	}
	for i, el := range doc["items"].([]any) {
		it, ok := el.(map[string]any)
		if !ok {
			return fmt.Errorf("manifest: items[%d]: not an object", i)
		}
		ctx := fmt.Sprintf("items[%d]", i)
		if err := checkObject(ctx, it, itemFields); err != nil {
			return err
		}
		if v := it["verdict"].(string); !itemVerdicts[v] {
			return fmt.Errorf("manifest: %s: unknown verdict %q", ctx, v)
		}
	}
	for i, el := range doc["stages"].([]any) {
		st, ok := el.(map[string]any)
		if !ok {
			return fmt.Errorf("manifest: stages[%d]: not an object", i)
		}
		ctx := fmt.Sprintf("stages[%d]", i)
		if err := checkObject(ctx, st, stageFields); err != nil {
			return err
		}
		if st["depth"].(float64) < 0 {
			return fmt.Errorf("manifest: %s: negative depth", ctx)
		}
	}
	for k, v := range doc["counters"].(map[string]any) {
		if !isType(v, "integer") {
			return fmt.Errorf("manifest: counters[%q]: not an integer", k)
		}
	}
	for k, v := range doc["gauges"].(map[string]any) {
		if !isType(v, "number") {
			return fmt.Errorf("manifest: gauges[%q]: not a number", k)
		}
	}
	vt := doc["verdicts"].(map[string]any)
	if err := checkObject("verdicts", vt, verdictFields); err != nil {
		return err
	}
	for _, f := range verdictFields {
		if vt[f.name].(float64) < 0 {
			return fmt.Errorf("manifest: verdicts.%s: negative", f.name)
		}
	}
	return nil
}

// checkObject enforces exactly the given fields with the given types.
func checkObject(ctx string, o map[string]any, fields []manifestField) error {
	known := make(map[string]string, len(fields))
	for _, f := range fields {
		known[f.name] = f.typ
		v, ok := o[f.name]
		if !ok {
			return fmt.Errorf("manifest: %s: missing required field %q", ctx, f.name)
		}
		if !isType(v, f.typ) {
			return fmt.Errorf("manifest: %s.%s: want %s", ctx, f.name, f.typ)
		}
	}
	for k := range o {
		if _, ok := known[k]; !ok {
			return fmt.Errorf("manifest: %s: unknown field %q", ctx, k)
		}
	}
	return nil
}

// isType checks a decoded JSON value against a schema type name.
func isType(v any, typ string) bool {
	switch typ {
	case "string":
		_, ok := v.(string)
		return ok
	case "boolean":
		_, ok := v.(bool)
		return ok
	case "number":
		_, ok := v.(float64)
		return ok
	case "integer":
		f, ok := v.(float64)
		return ok && f == float64(int64(f))
	case "array":
		_, ok := v.([]any)
		return ok
	case "object":
		_, ok := v.(map[string]any)
		return ok
	}
	return false
}
