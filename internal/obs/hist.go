package obs

import (
	"math"
	"sort"
)

// HistBoundsMS are the fixed duration-histogram bucket upper bounds in
// milliseconds. They are part of the manifest schema: fixed boundaries
// keep the histogram *shape* deterministic (same bucket count, same
// meaning) even though the counts themselves are wall-clock-derived and
// therefore volatile. Roughly logarithmic from 50µs to 10s; the last
// implicit bucket is +Inf.
var HistBoundsMS = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// Histogram is a fixed-bucket duration distribution. Counts has
// len(HistBoundsMS)+1 entries; Counts[i] tallies observations v with
// v <= HistBoundsMS[i] (and the final entry everything larger).
type Histogram struct {
	Counts []int64 `json:"counts"`
	// Sum is the total of all observed values (ms).
	Sum float64 `json:"sum"`
	// Count is the number of observations.
	Count int64 `json:"count"`
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// inside the holding bucket. The overflow bucket returns its lower
// bound. An empty histogram — zero observations, a zero-value struct,
// or a corrupted document with no buckets — returns 0, never NaN: the
// value feeds straight into JSON (/stats, bench metrics), and NaN is
// not representable there. A NaN q is treated as 0 for the same reason.
func (h Histogram) Quantile(q float64) float64 {
	if h.Count <= 0 || len(h.Counts) == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = HistBoundsMS[i-1]
			}
			if i >= len(HistBoundsMS) {
				return lo // open-ended overflow bucket
			}
			hi := HistBoundsMS[i]
			frac := 0.5
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return HistBoundsMS[len(HistBoundsMS)-1]
}

// Observe adds a value (in ms) to a named duration histogram. Like
// gauges, histograms are the volatile half of the determinism contract:
// the *set of histogram names* and the bucket layout are deterministic
// for a workload, the counts are wall-clock-derived. No-op on nil.
func (c *Collector) Observe(name string, ms float64) {
	if c == nil {
		return
	}
	c.metricMu.RLock()
	h := c.hists[name]
	c.metricMu.RUnlock()
	if h == nil {
		c.metricMu.Lock()
		if c.hists == nil {
			c.hists = make(map[string]*histState)
		}
		h = c.hists[name]
		if h == nil {
			h = &histState{counts: make([]int64, len(HistBoundsMS)+1)}
			c.hists[name] = h
		}
		c.metricMu.Unlock()
	}
	i := sort.SearchFloat64s(HistBoundsMS, ms)
	h.mu.Lock()
	h.counts[i]++
	h.sum += ms
	h.count++
	h.mu.Unlock()
}

// Histograms returns a deep copy of all histograms (nil map on nil c).
func (c *Collector) Histograms() map[string]Histogram {
	if c == nil {
		return nil
	}
	c.metricMu.RLock()
	defer c.metricMu.RUnlock()
	out := make(map[string]Histogram, len(c.hists))
	for k, h := range c.hists {
		h.mu.Lock()
		out[k] = Histogram{
			Counts: append([]int64(nil), h.counts...),
			Sum:    h.sum,
			Count:  h.count,
		}
		h.mu.Unlock()
	}
	return out
}
