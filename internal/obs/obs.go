// Package obs is the verification pipeline's observability substrate: a
// zero-dependency tracing and metrics collector threaded through
// core.Verify, the fleet driver, the switch-level simulator and the RTL
// simulator.
//
// The paper's CBV methodology works by "filtering circuits that do not
// have a problem" at chip scale — which only holds up if the tools
// themselves are measurable. ChiBench (PAPERS.md) makes the same point
// for EDA tooling generally: performance claims need reproducible,
// machine-readable evidence. This package is that evidence layer:
//
//   - Spans form a tree of named, monotonically-timed intervals (one per
//     pipeline stage, one per fleet cell) rendered as an indented trace
//     or flattened into a run manifest.
//   - Counters and gauges record named totals (cache hits, worklist
//     iterations, cycles simulated) and levels (worker utilization).
//
// Everything is goroutine-safe, and — the property the hot paths rely
// on — nil-safe: a nil *Collector and a nil *Span accept every call as
// a no-op without allocating, so instrumented code needs no "is
// telemetry on?" branches and pays nothing when it is off (the
// BenchmarkNoop* benchmarks pin this at zero allocations).
//
// # Determinism contract
//
// The *structure* reported is identical across runs and worker counts
// for a deterministic workload. Stable fields:
//
//   - span paths and their order (siblings render in creation order, so
//     concurrent span producers — fleet workers — pre-create their spans
//     in a deterministic order and Restart them at pickup);
//   - counter names and values (cache hits/misses are fixed by
//     singleflight admission, never by scheduling);
//   - the event stream's (type, item, stage, id, detail) sequence:
//     per-item events buffer in EventScopes and flush in scope-creation
//     (input) order at any worker count, run-level events are emitted
//     serially by the driver;
//   - finding IDs and evidence (derived from circuit structure);
//   - histogram names and bucket boundaries (HistBoundsMS is fixed).
//
// Volatile fields — everything derived from the wall clock: span
// durations, gauges, event timestamps (t_ms), histogram counts/sums,
// and per-item elapsed times. Two runs over the same corpus and
// configuration produce byte-identical manifests and event streams
// after masking the volatile fields, which is exactly what the
// masking-based determinism tests assert.
//
// A warm run replaying results from a persistent cache directory (fcv
// verify -cache-dir) widens the volatile set: per-item stage spans,
// stage histograms and the pipeline's internal counters (core.*,
// recognize.*, timing.*) describe work the warm run never performed,
// so they are present cold and absent warm, and the cached flags and
// fleet.diskcache.* counters flip between the two. The stable half —
// item names, fingerprints, verdicts, finding IDs and evidence,
// verdict tallies — is identical cold and warm; `fcv diff` gates on
// exactly that half, which is why a cold manifest diffs clean against
// its warm replay.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Collector gathers one run's spans, counters and gauges. The zero
// value is not usable; construct with New. A nil *Collector is the
// valid, allocation-free "telemetry off" state.
//
// Locking is split so the hot paths don't contend: the span tree has
// its own mutex, and metrics live behind an RWMutex that guards only
// the name→cell maps — each cell is an atomic the caller updates after
// a read-locked lookup, so concurrent fleet workers bumping counters
// never serialize on one lock (and never wait behind span operations).
type Collector struct {
	base time.Time // monotonic reference for all span offsets

	mu    sync.Mutex // guards the span tree (roots and all Span fields)
	roots []*Span

	metricMu sync.RWMutex // guards the maps below, not the cell values
	counters map[string]*atomic.Int64
	gauges   map[string]*atomic.Uint64 // float64 bits
	hists    map[string]*histState
}

// histState is a histogram's mutable storage with its own lock, so two
// workers observing different histograms never contend.
type histState struct {
	mu     sync.Mutex
	counts []int64
	sum    float64
	count  int64
}

// New returns an empty collector whose span clock starts now.
func New() *Collector {
	return &Collector{
		base:     time.Now(),
		counters: make(map[string]*atomic.Int64),
		gauges:   make(map[string]*atomic.Uint64),
	}
}

// Enabled reports whether telemetry is being collected (c non-nil).
func (c *Collector) Enabled() bool { return c != nil }

// Span is one named interval in the trace tree. A nil *Span no-ops
// every method, so spans can be threaded through options structs
// unconditionally.
type Span struct {
	c        *Collector
	parent   *Span
	name     string
	start    time.Duration // offset from the collector's base
	dur      time.Duration // set by End
	ended    bool
	children []*Span
}

// Start opens a root-level span. Returns nil on a nil collector.
func (c *Collector) Start(name string) *Span {
	if c == nil {
		return nil
	}
	s := &Span{c: c, name: name, start: time.Since(c.base)}
	c.mu.Lock()
	c.roots = append(c.roots, s)
	c.mu.Unlock()
	return s
}

// Child opens a sub-span. Returns nil on a nil span. Siblings keep
// creation order in the rendered tree, so concurrent producers that
// need a deterministic trace must create children from one goroutine
// (or pre-create them in a fixed order and Restart at work start).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{c: s.c, parent: s, name: name, start: time.Since(s.c.base)}
	s.c.mu.Lock()
	s.children = append(s.children, child)
	s.c.mu.Unlock()
	return child
}

// Restart re-bases the span's start to now and returns the time spent
// between creation and this call — the queue-wait of a span created at
// enqueue and restarted at pickup. No-op (returning 0) on nil.
func (s *Span) Restart() time.Duration {
	if s == nil {
		return 0
	}
	s.c.mu.Lock()
	now := time.Since(s.c.base)
	wait := now - s.start
	s.start = now
	s.c.mu.Unlock()
	return wait
}

// End closes the span, fixing its duration. Ending twice keeps the
// first duration; ending a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.c.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.c.base) - s.start
		s.ended = true
	}
	s.c.mu.Unlock()
}

// Duration returns the span's length: End's fix if ended, else the
// live elapsed time. Zero on nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.c.base) - s.start
}

// Name returns the span's label ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Collector returns the span's owning collector (nil on nil), so
// instrumented code handed only a span can still bump counters.
func (s *Span) Collector() *Collector {
	if s == nil {
		return nil
	}
	return s.c
}

// counterCell returns the named counter's atomic cell, creating it on
// first use. Steady state is a read-locked map lookup.
func (c *Collector) counterCell(name string) *atomic.Int64 {
	c.metricMu.RLock()
	cell := c.counters[name]
	c.metricMu.RUnlock()
	if cell != nil {
		return cell
	}
	c.metricMu.Lock()
	cell = c.counters[name]
	if cell == nil {
		cell = new(atomic.Int64)
		c.counters[name] = cell
	}
	c.metricMu.Unlock()
	return cell
}

// gaugeCell returns the named gauge's atomic cell (float64 bits),
// creating it on first use.
func (c *Collector) gaugeCell(name string) *atomic.Uint64 {
	c.metricMu.RLock()
	cell := c.gauges[name]
	c.metricMu.RUnlock()
	if cell != nil {
		return cell
	}
	c.metricMu.Lock()
	cell = c.gauges[name]
	if cell == nil {
		cell = new(atomic.Uint64)
		c.gauges[name] = cell
	}
	c.metricMu.Unlock()
	return cell
}

// Add increments a named counter. No-op on nil.
func (c *Collector) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.counterCell(name).Add(delta)
}

// SetGauge records a named level, overwriting any previous value.
func (c *Collector) SetGauge(name string, v float64) {
	if c == nil {
		return
	}
	c.gaugeCell(name).Store(math.Float64bits(v))
}

// AddGauge accumulates into a named gauge. Gauges are the manifest's
// volatile half — durations, rates, scheduling-dependent tallies — so
// quantities that vary run to run belong here, never in a counter (the
// counter set is contractually deterministic for a given workload).
func (c *Collector) AddGauge(name string, delta float64) {
	if c == nil {
		return
	}
	cell := c.gaugeCell(name)
	for {
		old := cell.Load()
		if cell.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Gauge returns the named gauge's value (0 if absent or nil c).
func (c *Collector) Gauge(name string) float64 {
	if c == nil {
		return 0
	}
	c.metricMu.RLock()
	cell := c.gauges[name]
	c.metricMu.RUnlock()
	if cell == nil {
		return 0
	}
	return math.Float64frombits(cell.Load())
}

// Counter returns the named counter's value (0 if absent or nil c).
func (c *Collector) Counter(name string) int64 {
	if c == nil {
		return 0
	}
	c.metricMu.RLock()
	cell := c.counters[name]
	c.metricMu.RUnlock()
	if cell == nil {
		return 0
	}
	return cell.Load()
}

// Counters returns a copy of all counters (nil map on nil c).
func (c *Collector) Counters() map[string]int64 {
	if c == nil {
		return nil
	}
	c.metricMu.RLock()
	defer c.metricMu.RUnlock()
	out := make(map[string]int64, len(c.counters))
	for k, v := range c.counters {
		out[k] = v.Load()
	}
	return out
}

// Gauges returns a copy of all gauges (nil map on nil c).
func (c *Collector) Gauges() map[string]float64 {
	if c == nil {
		return nil
	}
	c.metricMu.RLock()
	defer c.metricMu.RUnlock()
	out := make(map[string]float64, len(c.gauges))
	for k, v := range c.gauges {
		out[k] = math.Float64frombits(v.Load())
	}
	return out
}

// SpanInfo is one flattened span: its slash-joined path from the root,
// its depth, and its duration in milliseconds. The Path/Depth sequence
// is the deterministic half; DurMS is the volatile half.
type SpanInfo struct {
	// Path joins the ancestor names with '/': "fleet/adder16/checks".
	Path string `json:"path"`
	// Depth is 0 for roots.
	Depth int `json:"depth"`
	// DurMS is the span length in milliseconds (live value if unended).
	DurMS float64 `json:"dur_ms"`
}

// Spans flattens the trace tree in preorder, siblings in creation
// order. Nil collector yields nil.
func (c *Collector) Spans() []SpanInfo {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Since(c.base)
	var out []SpanInfo
	var walk func(s *Span, prefix string, depth int)
	walk = func(s *Span, prefix string, depth int) {
		path := s.name
		if prefix != "" {
			path = prefix + "/" + s.name
		}
		d := s.dur
		if !s.ended {
			d = now - s.start
		}
		out = append(out, SpanInfo{Path: path, Depth: depth, DurMS: ms(d)})
		for _, ch := range s.children {
			walk(ch, path, depth+1)
		}
	}
	for _, r := range c.roots {
		walk(r, "", 0)
	}
	return out
}

// Tree renders the span tree as indented text with durations — the
// `fcv verify -trace` output. Empty string on nil.
//
//	fleet                                 12.41ms
//	  decks/domino_and2.sp:and2            5.08ms  (queued 0.02ms)
//	    recognize                          1.10ms
//	    checks                             2.75ms
//	    timing                             1.18ms
func (c *Collector) Tree() string {
	if c == nil {
		return ""
	}
	infos := c.Spans()
	var sb strings.Builder
	for _, in := range infos {
		name := in.Path
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		indent := strings.Repeat("  ", in.Depth)
		fmt.Fprintf(&sb, "%-44s %10.2fms\n", indent+name, in.DurMS)
	}
	return sb.String()
}

// CountersText renders all counters and gauges sorted by name, one per
// line — the human tail of the -trace output.
func (c *Collector) CountersText() string {
	if c == nil {
		return ""
	}
	counters := c.Counters()
	gauges := c.Gauges()
	names := make([]string, 0, len(counters))
	for k := range counters {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, k := range names {
		fmt.Fprintf(&sb, "  %-42s %d\n", k, counters[k])
	}
	gnames := make([]string, 0, len(gauges))
	for k := range gauges {
		gnames = append(gnames, k)
	}
	sort.Strings(gnames)
	for _, k := range gnames {
		fmt.Fprintf(&sb, "  %-42s %.3f\n", k, gauges[k])
	}
	return sb.String()
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
