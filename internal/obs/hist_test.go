package obs

import (
	"math"
	"testing"
)

// TestObserveBuckets places values on and around bucket boundaries.
func TestObserveBuckets(t *testing.T) {
	c := New()
	c.Observe("x", 0.05)  // == bound 0 → bucket 0 (v <= bound)
	c.Observe("x", 0.06)  // bucket 1
	c.Observe("x", 99999) // overflow bucket
	h, ok := c.Histograms()["x"]
	if !ok {
		t.Fatal("histogram not recorded")
	}
	if len(h.Counts) != len(HistBoundsMS)+1 {
		t.Fatalf("bucket count = %d, want %d", len(h.Counts), len(HistBoundsMS)+1)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[len(h.Counts)-1] != 1 {
		t.Errorf("bucket placement wrong: %v", h.Counts)
	}
	if h.Count != 3 {
		t.Errorf("Count = %d, want 3", h.Count)
	}
	if want := 0.05 + 0.06 + 99999; math.Abs(h.Sum-want) > 1e-9 {
		t.Errorf("Sum = %g, want %g", h.Sum, want)
	}
}

// TestHistogramsDeepCopy mutating the returned copy must not leak back.
func TestHistogramsDeepCopy(t *testing.T) {
	c := New()
	c.Observe("x", 1)
	got := c.Histograms()["x"]
	got.Counts[0] = 99
	if c.Histograms()["x"].Counts[0] == 99 {
		t.Error("Histograms returned a shared slice")
	}
}

// TestObserveNilSafe a nil collector ignores observations.
func TestObserveNilSafe(t *testing.T) {
	var c *Collector
	c.Observe("x", 1)
	if c.Histograms() != nil {
		t.Error("nil collector returned histograms")
	}
}

// TestQuantile pins the interpolation behaviour.
func TestQuantile(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty Quantile = %g, want 0", q)
	}
	c := New()
	// 10 observations uniformly inside the (2.5, 5] bucket.
	for i := 0; i < 10; i++ {
		c.Observe("x", 3)
	}
	h = c.Histograms()["x"]
	q := h.Quantile(0.5)
	if q < 2.5 || q > 5 {
		t.Errorf("Quantile(0.5) = %g, want within (2.5, 5]", q)
	}
	// Monotone in q.
	if h.Quantile(0.9) < h.Quantile(0.1) {
		t.Error("Quantile not monotone")
	}
	// Overflow bucket returns its lower bound.
	c2 := New()
	c2.Observe("y", 1e6)
	h2 := c2.Histograms()["y"]
	if q := h2.Quantile(0.5); q != HistBoundsMS[len(HistBoundsMS)-1] {
		t.Errorf("overflow Quantile = %g, want %g", q, HistBoundsMS[len(HistBoundsMS)-1])
	}
	// Clamping.
	if h.Quantile(-1) > h.Quantile(2) {
		t.Error("q clamping broken")
	}
}

// TestQuantileNeverNaN sweeps the edge shapes the /stats and bench
// emitters can hit — empty, zero-value, single-sample, all-in-overflow,
// corrupted (no buckets, negative count) — across a q sweep including
// the endpoints and NaN, and asserts every result is a finite number.
// The quantile value flows unfiltered into JSON documents, where NaN is
// unrepresentable, so "never NaN, never Inf" is the contract.
func TestQuantileNeverNaN(t *testing.T) {
	single := New()
	single.Observe("s", 0.3)
	overflow := New()
	for i := 0; i < 5; i++ {
		overflow.Observe("o", 5e5)
	}
	shapes := map[string]Histogram{
		"zero-value":      {},
		"empty-buckets":   {Counts: []int64{}},
		"negative-count":  {Counts: make([]int64, len(HistBoundsMS)+1), Count: -3},
		"count-no-counts": {Count: 7, Sum: 12},
		"single-sample":   single.Histograms()["s"],
		"all-overflow":    overflow.Histograms()["o"],
	}
	qs := []float64{math.NaN(), -1, 0, 0.01, 0.5, 0.99, 1, 2}
	for name, h := range shapes {
		for _, q := range qs {
			got := h.Quantile(q)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Errorf("%s: Quantile(%g) = %g, want finite", name, q, got)
			}
		}
	}
	if got := (Histogram{}).Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile(0.99) = %g, want 0", got)
	}
	if got := shapes["all-overflow"].Quantile(0.5); got != HistBoundsMS[len(HistBoundsMS)-1] {
		t.Errorf("all-overflow Quantile = %g, want last bound %g", got, HistBoundsMS[len(HistBoundsMS)-1])
	}
	if got := shapes["single-sample"].Quantile(0.99); got <= 0 || got > HistBoundsMS[len(HistBoundsMS)-1] {
		t.Errorf("single-sample Quantile(0.99) = %g, want inside the bucket range", got)
	}
}
