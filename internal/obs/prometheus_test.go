package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestPromName pins the mangling rules.
func TestPromName(t *testing.T) {
	cases := []struct{ ns, in, want string }{
		{"fcv", "serve.requests", "fcv_serve_requests"},
		{"fcv", "fleet.cache.hits", "fcv_fleet_cache_hits"},
		{"fcv", "verify-time(ms)", "fcv_verify_time_ms_"},
		{"", "9lives", "_9lives"},
		{"", "", "_"},
		{"ns", "", "ns_"},
		{"fcv", "already_ok", "fcv_already_ok"},
	}
	for _, c := range cases {
		if got := PromName(c.ns, c.in); got != c.want {
			t.Errorf("PromName(%q, %q) = %q, want %q", c.ns, c.in, got, c.want)
		}
		if got := PromName(c.ns, c.in); !validPromName(got) {
			t.Errorf("PromName(%q, %q) = %q is not a valid metric name", c.ns, c.in, got)
		}
	}
}

// TestWritePrometheusRoundTrip renders a populated snapshot and checks
// the output passes the validator, carries the expected families in
// sorted order, and has cumulative buckets ending at +Inf == _count.
func TestWritePrometheusRoundTrip(t *testing.T) {
	c := New()
	c.Add("serve.requests", 7)
	c.Add("fleet.cache.hits", 3)
	c.SetGauge("serve.pool.active", 2)
	c.Observe("serve.request_ms", 0.2)
	c.Observe("serve.request_ms", 3)
	c.Observe("serve.request_ms", 99999)
	snap := c.Snapshot()

	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf, "fcv"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateMetricsText(buf.Bytes()); err != nil {
		t.Fatalf("self-emitted exposition rejected: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE fcv_serve_requests_total counter",
		"fcv_serve_requests_total 7",
		"# TYPE fcv_fleet_cache_hits_total counter",
		"# TYPE fcv_serve_pool_active gauge",
		"fcv_serve_pool_active 2",
		"# TYPE fcv_serve_request_ms histogram",
		`fcv_serve_request_ms_bucket{le="+Inf"} 3`,
		"fcv_serve_request_ms_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Families sorted by exposition name: fleet before serve.
	if strings.Index(out, "fcv_fleet_cache_hits") > strings.Index(out, "fcv_serve_pool_active") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

// TestWritePrometheusDeterministicShape two snapshots with the same
// metric names but different values emit identical line sequences once
// sample values are masked — the property the serve golden test relies
// on across worker counts.
func TestWritePrometheusDeterministicShape(t *testing.T) {
	build := func(reqs int64, ms float64) string {
		c := New()
		c.Add("serve.requests", reqs)
		c.SetGauge("serve.pool.active", float64(reqs))
		c.Observe("serve.request_ms", ms)
		var buf bytes.Buffer
		if err := c.Snapshot().WritePrometheus(&buf, "fcv"); err != nil {
			t.Fatal(err)
		}
		return MaskMetricsValues(buf.String())
	}
	a, b := build(1, 0.07), build(500, 8000)
	if a != b {
		t.Errorf("masked shape differs:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}

// TestValidateMetricsTextRejects each malformed document must be
// rejected with a diagnostic.
func TestValidateMetricsTextRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "foo 1\n",
		"NaN value":           "# HELP foo x\n# TYPE foo gauge\nfoo NaN\n",
		"bad name":            "# HELP 1foo x\n# TYPE 1foo gauge\n1foo 1\n",
		"unknown type":        "# HELP foo x\n# TYPE foo matrix\nfoo 1\n",
		"duplicate TYPE":      "# TYPE foo gauge\n# TYPE foo gauge\nfoo 1\n",
		"missing value":       "# TYPE foo gauge\nfoo\n",
		"unparseable value":   "# TYPE foo gauge\nfoo xyz\n",
		"unterminated labels": "# TYPE foo histogram\nfoo_bucket{le=\"1\" 2\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"missing +Inf bucket": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 6\n",
		"bucket without le": "# TYPE h histogram\nh_bucket{x=\"1\"} 5\n",
	}
	for name, doc := range cases {
		if err := ValidateMetricsText([]byte(doc)); err == nil {
			t.Errorf("%s: validator accepted malformed document:\n%s", name, doc)
		}
	}
	// And a well-formed document passes.
	good := "# HELP ok fine\n# TYPE ok counter\nok 3\n" +
		"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 4\nh_sum 9.5\nh_count 4\n"
	if err := ValidateMetricsText([]byte(good)); err != nil {
		t.Errorf("validator rejected well-formed document: %v", err)
	}
}

// TestSnapshotConsistency the snapshot is a caller-owned deep copy and a
// nil collector yields empty non-nil maps.
func TestSnapshotConsistency(t *testing.T) {
	var nilC *Collector
	snap := nilC.Snapshot()
	if snap.Counters == nil || snap.Gauges == nil || snap.Histograms == nil {
		t.Fatal("nil collector snapshot has nil maps")
	}
	if snap.Quantile("absent", 0.5) != 0 {
		t.Error("absent histogram quantile != 0")
	}

	c := New()
	c.Add("n", 1)
	c.Observe("h", 3)
	snap = c.Snapshot()
	snap.Counters["n"] = 99
	snap.Histograms["h"].Counts[0] = 99
	if c.Snapshot().Counters["n"] != 1 {
		t.Error("snapshot counters alias the collector")
	}
	if got := c.Snapshot().Histograms["h"]; got.Counts[0] == 99 {
		t.Error("snapshot histogram counts alias the collector")
	}
	// p50/p99 from one snapshot come from the same distribution.
	if snap.Quantile("h", 0.99) < snap.Quantile("h", 0.5) {
		t.Error("snapshot quantiles not monotone")
	}
}
