package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleManifest builds a small, fully-populated manifest.
func sampleManifest() *Manifest {
	c := New()
	root := c.Start("fleet")
	cell := root.Child("cellA")
	cell.Child("recognize").End()
	cell.End()
	root.End()
	c.Add("fleet.cache.hits", 1)
	c.SetGauge("fleet.workers", 2)
	m := NewManifest("fcv verify", "proc=x|clock=5000", c)
	m.Workers = 2
	m.WallMS = 1.5
	m.Items = append(m.Items, ManifestItem{
		Name:        "cellA",
		Fingerprint: strings.Repeat("ab", 32),
		Verdict:     "pass",
		Cached:      false,
		ElapsedMS:   1.2,
	})
	m.Verdicts = VerdictTally{Pass: 1}
	return m
}

// TestSchemaGolden pins the manifest JSON Schema byte for byte. A
// diff here means the wire format changed: bump SchemaID and
// regenerate with `fcv manifest-check -print-schema`.
func TestSchemaGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "manifest.schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	got := SchemaJSON()
	if !bytes.Equal(got, golden) {
		t.Errorf("SchemaJSON drifted from testdata/manifest.schema.json:\n--- got ---\n%s\n--- golden ---\n%s", got, golden)
	}
}

// TestManifestValidates round-trips a built manifest through the
// validator.
func TestManifestValidates(t *testing.T) {
	b, err := sampleManifest().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateManifest(b); err != nil {
		t.Errorf("built manifest rejected: %v", err)
	}
	// Empty telemetry (nil collector) must also validate.
	empty := NewManifest("fcv bench", "", nil)
	b, err = empty.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateManifest(b); err != nil {
		t.Errorf("empty manifest rejected: %v", err)
	}
}

// TestValidateRejects walks the failure modes: each mutation of a
// valid document must be named in the error.
func TestValidateRejects(t *testing.T) {
	valid, err := sampleManifest().JSON()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(fn func(doc map[string]any)) []byte {
		var doc map[string]any
		if err := json.Unmarshal(valid, &doc); err != nil {
			t.Fatal(err)
		}
		fn(doc)
		b, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name    string
		data    []byte
		wantErr string
	}{
		{"not json", []byte("{truncated"), "not valid JSON"},
		{"missing field", mutate(func(d map[string]any) { delete(d, "config_key") }), "missing required field"},
		{"wrong type", mutate(func(d map[string]any) { d["workers"] = "four" }), "want integer"},
		{"float counter", mutate(func(d map[string]any) {
			d["counters"].(map[string]any)["fleet.cache.hits"] = 1.5
		}), "not an integer"},
		{"unknown field", mutate(func(d map[string]any) { d["extra"] = 1 }), "unknown field"},
		{"stale schema id", mutate(func(d map[string]any) { d["schema"] = "fcv-run-manifest/v0" }), "want \"fcv-run-manifest/v1\""},
		{"bad verdict", mutate(func(d map[string]any) {
			d["items"].([]any)[0].(map[string]any)["verdict"] = "maybe"
		}), "unknown verdict"},
		{"item missing field", mutate(func(d map[string]any) {
			delete(d["items"].([]any)[0].(map[string]any), "fingerprint")
		}), "missing required field"},
		{"negative tally", mutate(func(d map[string]any) {
			d["verdicts"].(map[string]any)["pass"] = -1.0
		}), "negative"},
	}
	for _, tc := range cases {
		err := ValidateManifest(tc.data)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestStageTotalMS sums only top-level spans.
func TestStageTotalMS(t *testing.T) {
	m := &Manifest{Stages: []SpanInfo{
		{Path: "fleet", Depth: 0, DurMS: 10},
		{Path: "fleet/a", Depth: 1, DurMS: 6},
		{Path: "rtl", Depth: 0, DurMS: 5},
	}}
	if got := m.StageTotalMS(); got != 15 {
		t.Errorf("StageTotalMS = %g, want 15", got)
	}
}

// TestWriteFileAtomic checks content, overwrite semantics, and that no
// temp litter survives.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Errorf("content = %q, want %q", got, "second")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp files left behind: %v", entries)
	}
	// Missing parent directory is an error, not a panic.
	if err := WriteFileAtomic(filepath.Join(dir, "no/such/dir/x.json"), []byte("x")); err == nil {
		t.Error("write into missing directory succeeded")
	}
}

// TestManifestWriteFile round-trips through the file.
func TestManifestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := sampleManifest().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateManifest(data); err != nil {
		t.Errorf("written manifest invalid: %v", err)
	}
}
