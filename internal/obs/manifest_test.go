package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleManifest builds a small, fully-populated manifest.
func sampleManifest() *Manifest {
	c := New()
	root := c.Start("fleet")
	cell := root.Child("cellA")
	cell.Child("recognize").End()
	cell.End()
	root.End()
	c.Add("fleet.cache.hits", 1)
	c.SetGauge("fleet.workers", 2)
	c.Observe("fleet.item_ms", 1.2)
	m := NewManifest("fcv verify", "proc=x|clock=5000", c)
	m.Workers = 2
	m.WallMS = 1.5
	m.Items = append(m.Items, ManifestItem{
		Name:        "cellA",
		Fingerprint: strings.Repeat("ab", 32),
		Verdict:     "inspect",
		Cached:      false,
		ElapsedMS:   1.2,
		Findings: []Finding{{
			ID:       "check/beta-ratio@00deadbeef00cafe",
			Source:   "check",
			Check:    "beta-ratio",
			Subject:  "out",
			Severity: "inspect",
			Margin:   -0.12,
			Detail:   "beta ratio 4.1 outside [1.5, 3.5]",
			Evidence: Evidence{
				Devices:   []string{"MP1", "MN1"},
				Nets:      []string{"out"},
				Context:   "static CMOS, driver group of out",
				Measured:  -0.12,
				Threshold: 0,
				Unit:      "margin",
			},
		}},
	})
	m.Verdicts = VerdictTally{Inspect: 1}
	return m
}

// TestSchemaGolden pins the manifest JSON Schema byte for byte. A
// diff here means the wire format changed: bump SchemaID and
// regenerate with `fcv manifest-check -print-schema`.
func TestSchemaGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "manifest.schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	got := SchemaJSON()
	if !bytes.Equal(got, golden) {
		t.Errorf("SchemaJSON drifted from testdata/manifest.schema.json:\n--- got ---\n%s\n--- golden ---\n%s", got, golden)
	}
}

// TestManifestValidates round-trips a built manifest through the
// validator.
func TestManifestValidates(t *testing.T) {
	b, err := sampleManifest().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateManifest(b); err != nil {
		t.Errorf("built manifest rejected: %v", err)
	}
	// Empty telemetry (nil collector) must also validate.
	empty := NewManifest("fcv bench", "", nil)
	b, err = empty.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateManifest(b); err != nil {
		t.Errorf("empty manifest rejected: %v", err)
	}
}

// TestValidateRejects walks the failure modes: each mutation of a
// valid document must be named in the error.
func TestValidateRejects(t *testing.T) {
	valid, err := sampleManifest().JSON()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(fn func(doc map[string]any)) []byte {
		var doc map[string]any
		if err := json.Unmarshal(valid, &doc); err != nil {
			t.Fatal(err)
		}
		fn(doc)
		b, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name    string
		data    []byte
		wantErr string
	}{
		{"not json", []byte("{truncated"), "not valid JSON"},
		{"truncated", []byte(`{"schema": "fcv-run-manifest/v2", "tool"`), "not valid JSON"},
		{"empty file", []byte(""), "not valid JSON"},
		{"empty object", []byte("{}"), "missing required field \"schema\""},
		{"missing field", mutate(func(d map[string]any) { delete(d, "config_key") }), "manifest: missing required field \"config_key\""},
		{"wrong type", mutate(func(d map[string]any) { d["workers"] = "four" }), "manifest.workers: want integer"},
		{"float counter", mutate(func(d map[string]any) {
			d["counters"].(map[string]any)["fleet.cache.hits"] = 1.5
		}), "counters[\"fleet.cache.hits\"]: not an integer"},
		{"unknown field", mutate(func(d map[string]any) { d["extra"] = 1 }), "unknown field"},
		{"stale schema id", mutate(func(d map[string]any) { d["schema"] = "fcv-run-manifest/v0" }), "want \"fcv-run-manifest/v2\" (or legacy \"fcv-run-manifest/v1\")"},
		{"bad verdict", mutate(func(d map[string]any) {
			d["items"].([]any)[0].(map[string]any)["verdict"] = "maybe"
		}), "items[0].verdict: unknown verdict"},
		{"item missing field", mutate(func(d map[string]any) {
			delete(d["items"].([]any)[0].(map[string]any), "fingerprint")
		}), "items[0]: missing required field \"fingerprint\""},
		{"negative tally", mutate(func(d map[string]any) {
			d["verdicts"].(map[string]any)["pass"] = -1.0
		}), "verdicts.pass: negative"},
		{"finding bad source", mutate(func(d map[string]any) {
			it := d["items"].([]any)[0].(map[string]any)
			f := it["findings"].([]any)[0].(map[string]any)
			f["source"] = "vibes"
		}), "items[0].findings[0].source: unknown source"},
		{"finding missing evidence field", mutate(func(d map[string]any) {
			it := d["items"].([]any)[0].(map[string]any)
			f := it["findings"].([]any)[0].(map[string]any)
			delete(f["evidence"].(map[string]any), "unit")
		}), "items[0].findings[0].evidence: missing required field \"unit\""},
		{"histogram bucket drift", mutate(func(d map[string]any) {
			h := d["histograms"].(map[string]any)["fleet.item_ms"].(map[string]any)
			h["counts"] = []any{1.0, 2.0}
		}), "histograms[\"fleet.item_ms\"].counts: 2 buckets"},
	}
	for _, tc := range cases {
		err := ValidateManifest(tc.data)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestValidateV1Compat pins the compat reader: a frozen v1-shaped
// document (no histograms, no per-item findings) must keep validating
// and parsing, so committed baselines and old CI artifacts stay
// diffable.
func TestValidateV1Compat(t *testing.T) {
	v1 := []byte(`{
  "schema": "fcv-run-manifest/v1",
  "tool": "fcv verify",
  "config_key": "proc=x|clock=5000",
  "workers": 2,
  "wall_ms": 1.5,
  "items": [
    {
      "name": "cellA",
      "fingerprint": "` + strings.Repeat("ab", 32) + `",
      "verdict": "pass",
      "cached": false,
      "elapsed_ms": 1.2
    }
  ],
  "stages": [{"path": "fleet", "depth": 0, "dur_ms": 1.4}],
  "counters": {"fleet.cache.hits": 1},
  "gauges": {"fleet.workers": 2},
  "verdicts": {"pass": 1, "inspect": 0, "violation": 0, "error": 0}
}`)
	if err := ValidateManifest(v1); err != nil {
		t.Fatalf("v1 manifest rejected: %v", err)
	}
	m, err := ParseManifest(v1)
	if err != nil {
		t.Fatalf("v1 manifest failed to parse: %v", err)
	}
	if m.Schema != SchemaIDV1 || len(m.Items) != 1 || m.Items[0].Name != "cellA" {
		t.Errorf("v1 parse mismatch: %+v", m)
	}
	if m.Histograms == nil {
		t.Error("v1 parse left Histograms nil")
	}
	// A v1 document must not smuggle v2 fields past the frozen reader.
	bad := bytes.Replace(v1, []byte(`"elapsed_ms": 1.2`), []byte(`"elapsed_ms": 1.2, "findings": []`), 1)
	if err := ValidateManifest(bad); err == nil {
		t.Error("v1 manifest with v2 field accepted")
	}
}

// TestParseManifestRoundTrip writes a v2 manifest and reads it back.
func TestParseManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	want := sampleManifest()
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ConfigKey != want.ConfigKey || len(got.Items) != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	f := got.Items[0].Findings
	if len(f) != 1 || f[0].ID != want.Items[0].Findings[0].ID {
		t.Errorf("findings lost in round trip: %+v", f)
	}
	if _, ok := got.Histograms["fleet.item_ms"]; !ok {
		t.Errorf("histograms lost in round trip: %+v", got.Histograms)
	}
	if _, err := ReadManifestFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("reading a missing file succeeded")
	}
}

// TestStageTotalMS sums only top-level spans.
func TestStageTotalMS(t *testing.T) {
	m := &Manifest{Stages: []SpanInfo{
		{Path: "fleet", Depth: 0, DurMS: 10},
		{Path: "fleet/a", Depth: 1, DurMS: 6},
		{Path: "rtl", Depth: 0, DurMS: 5},
	}}
	if got := m.StageTotalMS(); got != 15 {
		t.Errorf("StageTotalMS = %g, want 15", got)
	}
}

// TestWriteFileAtomic checks content, overwrite semantics, and that no
// temp litter survives.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Errorf("content = %q, want %q", got, "second")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp files left behind: %v", entries)
	}
	// Missing parent directory is an error, not a panic.
	if err := WriteFileAtomic(filepath.Join(dir, "no/such/dir/x.json"), []byte("x")); err == nil {
		t.Error("write into missing directory succeeded")
	}
}

// TestManifestWriteFile round-trips through the file.
func TestManifestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := sampleManifest().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateManifest(data); err != nil {
		t.Errorf("written manifest invalid: %v", err)
	}
}
