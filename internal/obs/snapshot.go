package obs

import "math"

// MetricsSnapshot is a point-in-time copy of a collector's metrics —
// counters, gauges and histograms read in one call, so a consumer
// (the /stats document, the /metrics exposition) works from a single
// coherent view instead of three separate reads with concurrent
// requests landing in between. Each histogram's (counts, sum, count)
// triple is copied under that histogram's own lock, so quantiles
// computed from the snapshot are always internally consistent: the
// p50 and p99 of one scrape come from the same distribution.
//
// The maps are fresh copies owned by the caller; mutating them never
// touches the collector.
type MetricsSnapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]Histogram
}

// Snapshot copies all metrics at once. On a nil collector the snapshot
// has empty (non-nil) maps, so callers can add their own series without
// nil checks.
func (c *Collector) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]Histogram{},
	}
	if c == nil {
		return snap
	}
	c.metricMu.RLock()
	defer c.metricMu.RUnlock()
	for k, v := range c.counters {
		snap.Counters[k] = v.Load()
	}
	for k, v := range c.gauges {
		snap.Gauges[k] = math.Float64frombits(v.Load())
	}
	for k, h := range c.hists {
		h.mu.Lock()
		snap.Histograms[k] = Histogram{
			Counts: append([]int64(nil), h.counts...),
			Sum:    h.sum,
			Count:  h.count,
		}
		h.mu.Unlock()
	}
	return snap
}

// Quantile reads a named histogram's q-quantile from the snapshot
// (0 when the histogram is absent or empty — never NaN).
func (s MetricsSnapshot) Quantile(name string, q float64) float64 {
	h, ok := s.Histograms[name]
	if !ok {
		return 0
	}
	return h.Quantile(q)
}
