package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition, hand-rolled (the repo takes no
// dependencies): a MetricsSnapshot renders as the standard scrape
// format — `# HELP` / `# TYPE` comment pair per family, one sample per
// line, histograms as cumulative `_bucket{le="..."}` series ending in
// `+Inf` plus `_sum`/`_count`. Families emit sorted by exposition name,
// so the output's *shape* (the full line sequence with sample values
// masked) is deterministic for a given metric-name set — the property
// the serve daemon's /metrics golden test pins across worker counts.
//
// Naming: an obs metric name like "fleet.cache.hits" mangles to
// "<ns>_fleet_cache_hits" (every character outside [a-zA-Z0-9_]
// becomes '_'); counters additionally get the conventional "_total"
// suffix. Durations in this codebase are milliseconds and the metric
// names say so (`..._ms`); no unit conversion happens here.

// PromName mangles an obs metric name into a valid Prometheus metric
// name under the given namespace prefix: "serve.request_ms" with
// namespace "fcv" becomes "fcv_serve_request_ms". A leading digit after
// an empty namespace is prefixed with '_' to stay within the grammar.
func PromName(namespace, name string) string {
	var sb strings.Builder
	if namespace != "" {
		sb.WriteString(namespace)
		sb.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if out == "" {
		return "_"
	}
	if out[0] >= '0' && out[0] <= '9' {
		return "_" + out
	}
	return out
}

// promFloat formats a sample value: shortest round-trip representation,
// with the spec's spellings for the infinities. NaN is deliberately
// rendered as "NaN" so the validator (which rejects it) can catch a
// NaN-producing bug instead of masking it.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promFamily is one metric family ready to print: the exposition name,
// its TYPE, and the fully formatted sample lines.
type promFamily struct {
	name    string
	typ     string
	help    string
	samples []string
}

// WritePrometheus renders the snapshot in Prometheus text format.
// Counters become `<ns>_<name>_total` counter families, gauges become
// gauge families, histograms become histogram families with cumulative
// buckets at HistBoundsMS (upper bounds in milliseconds) plus the
// implicit +Inf bucket. Families print sorted by exposition name.
func (s MetricsSnapshot) WritePrometheus(w io.Writer, namespace string) error {
	fams := make([]promFamily, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name, v := range s.Counters {
		pn := PromName(namespace, name) + "_total"
		fams = append(fams, promFamily{
			name:    pn,
			typ:     "counter",
			help:    "obs counter " + name,
			samples: []string{fmt.Sprintf("%s %d", pn, v)},
		})
	}
	for name, v := range s.Gauges {
		pn := PromName(namespace, name)
		fams = append(fams, promFamily{
			name:    pn,
			typ:     "gauge",
			help:    "obs gauge " + name,
			samples: []string{fmt.Sprintf("%s %s", pn, promFloat(v))},
		})
	}
	for name, h := range s.Histograms {
		pn := PromName(namespace, name)
		samples := make([]string, 0, len(h.Counts)+2)
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(HistBoundsMS) {
				le = promFloat(HistBoundsMS[i])
			}
			samples = append(samples, fmt.Sprintf("%s_bucket{le=%q} %d", pn, le, cum))
		}
		samples = append(samples,
			fmt.Sprintf("%s_sum %s", pn, promFloat(h.Sum)),
			fmt.Sprintf("%s_count %d", pn, h.Count))
		fams = append(fams, promFamily{
			name:    pn,
			typ:     "histogram",
			help:    "obs histogram " + name + " (ms)",
			samples: samples,
		})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, line := range f.samples {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// ValidateMetricsText is a minimal Prometheus text-format (version
// 0.0.4) line checker, used by the exposition tests and the CI smoke:
// every line must be a well-formed HELP/TYPE comment or a sample whose
// family was TYPE-declared earlier; metric names must match the
// grammar; values must parse as finite floats (NaN and a bare parse
// failure both reject — a NaN quantile or count is exactly the bug
// class this exists to catch); histogram `_bucket` series must be
// cumulative (non-decreasing) and end with le="+Inf" matching _count.
// It is not a full openmetrics parser — no exemplars, no timestamps,
// no escaped label values beyond \" — but everything WritePrometheus
// emits round-trips through it.
func ValidateMetricsText(data []byte) error {
	lines := strings.Split(string(data), "\n")
	types := map[string]string{}       // family -> TYPE
	bucketPrev := map[string]int64{}   // family -> last bucket count
	bucketInf := map[string]int64{}    // family -> +Inf bucket count
	bucketInfSeen := map[string]bool{} // family -> saw le="+Inf"
	histCount := map[string]int64{}    // family -> _count value
	histCountSeen := map[string]bool{} // family -> saw _count
	for li, line := range lines {
		if line == "" {
			continue
		}
		lineNo := li + 1
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("metrics line %d: malformed comment %q", lineNo, line)
			}
			if !validPromName(fields[2]) {
				return fmt.Errorf("metrics line %d: bad metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("metrics line %d: TYPE without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("metrics line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					return fmt.Errorf("metrics line %d: duplicate TYPE for %q", lineNo, fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		// Sample line: name[{labels}] value
		name, rest := line, ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if !validPromName(name) {
			return fmt.Errorf("metrics line %d: bad sample name %q", lineNo, name)
		}
		var le string
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				return fmt.Errorf("metrics line %d: unterminated label set", lineNo)
			}
			var err error
			le, err = parsePromLabels(rest[1:end])
			if err != nil {
				return fmt.Errorf("metrics line %d: %v", lineNo, err)
			}
			rest = rest[end+1:]
		}
		valStr := strings.TrimSpace(rest)
		if valStr == "" {
			return fmt.Errorf("metrics line %d: sample %q has no value", lineNo, name)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("metrics line %d: %s: bad value %q", lineNo, name, valStr)
		}
		if math.IsNaN(val) {
			return fmt.Errorf("metrics line %d: %s: NaN sample value", lineNo, name)
		}
		family, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name {
				if t, ok := types[base]; ok && t == "histogram" {
					family, suffix = base, sfx
				}
				break
			}
		}
		typ, declared := types[family]
		if !declared {
			return fmt.Errorf("metrics line %d: sample %q has no preceding TYPE", lineNo, name)
		}
		if typ == "histogram" {
			switch suffix {
			case "_bucket":
				if le == "" {
					return fmt.Errorf("metrics line %d: %s bucket without le label", lineNo, family)
				}
				c := int64(val)
				if c < bucketPrev[family] {
					return fmt.Errorf("metrics line %d: %s buckets not cumulative (%d after %d)", lineNo, family, c, bucketPrev[family])
				}
				bucketPrev[family] = c
				if le == "+Inf" {
					bucketInf[family] = c
					bucketInfSeen[family] = true
				}
			case "_count":
				histCount[family] = int64(val)
				histCountSeen[family] = true
			case "_sum":
				// any finite float is fine
			default:
				return fmt.Errorf("metrics line %d: bare sample %q for histogram family", lineNo, name)
			}
		}
	}
	for family, t := range types {
		if t != "histogram" {
			continue
		}
		if !bucketInfSeen[family] {
			return fmt.Errorf("metrics: histogram %s has no le=\"+Inf\" bucket", family)
		}
		if histCountSeen[family] && histCount[family] != bucketInf[family] {
			return fmt.Errorf("metrics: histogram %s: +Inf bucket %d != count %d", family, bucketInf[family], histCount[family])
		}
	}
	return nil
}

// MaskMetricsValues replaces every sample value in a Prometheus text
// document with "V", leaving comment lines and the name{labels} part of
// sample lines intact. The result is the exposition's *shape* — the
// stable half of the determinism contract — which the serve /metrics
// golden test pins byte-for-byte across worker counts while the counts
// and durations themselves stay free to vary.
func MaskMetricsValues(text string) string {
	lines := strings.Split(text, "\n")
	for i, line := range lines {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndex(line, "} ")
		if cut >= 0 {
			lines[i] = line[:cut+1] + " V"
			continue
		}
		if sp := strings.IndexByte(line, ' '); sp >= 0 {
			lines[i] = line[:sp] + " V"
		}
	}
	return strings.Join(lines, "\n")
}

// validPromName checks the metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parsePromLabels checks a label body (`k="v",k2="v2"`) and returns the
// value of the `le` label if present.
func parsePromLabels(body string) (le string, err error) {
	for _, pair := range strings.Split(body, ",") {
		if pair == "" {
			continue
		}
		k, v, ok := strings.Cut(pair, "=")
		if !ok || !validPromName(k) {
			return "", fmt.Errorf("bad label pair %q", pair)
		}
		unq, err := strconv.Unquote(v)
		if err != nil {
			return "", fmt.Errorf("label %s: unquoted value %q", k, v)
		}
		if k == "le" {
			le = unq
		}
	}
	return le, nil
}
