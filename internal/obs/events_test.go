package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// decodeEvents parses a JSONL buffer back into events.
func decodeEvents(t *testing.T, b []byte) []Event {
	t.Helper()
	var out []Event
	for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		out = append(out, ev)
	}
	return out
}

// TestEventSinkOrder checks the reorder discipline: per-item events
// flush in scope-creation order no matter which scope closes first.
func TestEventSinkOrder(t *testing.T) {
	var buf bytes.Buffer
	s := NewEventSink(&buf)
	s.Emit("run-start", "2 items")
	a := s.Scope("a")
	b := s.Scope("b")
	// b finishes first; its events must still follow a's.
	b.Emit(Event{Type: "item-start"})
	b.Emit(Event{Type: "item-end", Detail: "pass"})
	b.Close()
	if got := decodeEvents(t, buf.Bytes()); len(got) != 1 {
		t.Fatalf("b's events leaked ahead of a: %+v", got)
	}
	a.Emit(Event{Type: "item-start"})
	a.Emit(Event{Type: "item-end", Detail: "inspect"})
	a.Close()
	s.Emit("run-end", "done")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got := decodeEvents(t, buf.Bytes())
	want := []struct{ typ, item string }{
		{"run-start", ""},
		{"item-start", "a"}, {"item-end", "a"},
		{"item-start", "b"}, {"item-end", "b"},
		{"run-end", ""},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Type != w.typ || got[i].Item != w.item {
			t.Errorf("event[%d] = (%s, %q), want (%s, %q)", i, got[i].Type, got[i].Item, w.typ, w.item)
		}
		if got[i].Seq != int64(i) {
			t.Errorf("event[%d].Seq = %d, want %d", i, got[i].Seq, i)
		}
	}
}

// TestEventSinkDeterministicOrder runs concurrent scope producers in
// random completion order many times; the flushed (type, item) sequence
// must never change.
func TestEventSinkDeterministicOrder(t *testing.T) {
	render := func(seed int64) string {
		var buf bytes.Buffer
		s := NewEventSink(&buf)
		const n = 8
		scopes := make([]*EventScope, n)
		for i := range scopes {
			scopes[i] = s.Scope(fmt.Sprintf("item%d", i))
		}
		rng := rand.New(rand.NewSource(seed))
		order := rng.Perm(n)
		var wg sync.WaitGroup
		for _, i := range order {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				scopes[i].Emit(Event{Type: "item-start"})
				scopes[i].Emit(Event{Type: "item-end"})
				scopes[i].Close()
			}(i)
		}
		wg.Wait()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, ev := range decodeEvents(t, buf.Bytes()) {
			fmt.Fprintf(&sb, "%d %s %s\n", ev.Seq, ev.Type, ev.Item)
		}
		return sb.String()
	}
	want := render(0)
	for seed := int64(1); seed < 20; seed++ {
		if got := render(seed); got != want {
			t.Fatalf("event order changed with completion order:\n--- seed %d ---\n%s--- seed 0 ---\n%s", seed, got, want)
		}
	}
}

// TestEventSinkNilSafe exercises every method on nil receivers.
func TestEventSinkNilSafe(t *testing.T) {
	var s *EventSink
	s.Emit("run-start", "x")
	sc := s.Scope("a")
	if sc != nil {
		t.Error("nil sink handed out a non-nil scope")
	}
	sc.Emit(Event{Type: "item-start"})
	sc.Close()
	if err := s.Close(); err != nil {
		t.Errorf("nil sink Close = %v", err)
	}
}

// errWriter fails every write.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

// TestEventSinkWriteError latches the first write error into Close.
func TestEventSinkWriteError(t *testing.T) {
	s := NewEventSink(errWriter{})
	s.Emit("run-start", "")
	sc := s.Scope("a")
	sc.Emit(Event{Type: "item-start"})
	sc.Close()
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Close = %v, want the latched write error", err)
	}
}

// TestEventSinkCloseFlushesOpenScopes ensures Close never drops
// buffered events even when a scope was left open (an errored item).
func TestEventSinkCloseFlushesOpenScopes(t *testing.T) {
	var buf bytes.Buffer
	s := NewEventSink(&buf)
	sc := s.Scope("a")
	sc.Emit(Event{Type: "item-start"})
	// no sc.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got := decodeEvents(t, buf.Bytes())
	if len(got) != 1 || got[0].Type != "item-start" || got[0].Item != "a" {
		t.Errorf("open scope's events lost: %+v", got)
	}
}
