package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilCollectorIsNoop pins the package's core contract: every
// method on a nil collector and a nil span is a safe no-op, so
// instrumented code needs no telemetry branches.
func TestNilCollectorIsNoop(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Error("nil collector claims Enabled")
	}
	sp := c.Start("x")
	if sp != nil {
		t.Fatalf("nil collector Start returned %v", sp)
	}
	ch := sp.Child("y")
	if ch != nil {
		t.Fatalf("nil span Child returned %v", ch)
	}
	sp.End()
	if w := sp.Restart(); w != 0 {
		t.Errorf("nil span Restart = %v", w)
	}
	if d := sp.Duration(); d != 0 {
		t.Errorf("nil span Duration = %v", d)
	}
	if n := sp.Name(); n != "" {
		t.Errorf("nil span Name = %q", n)
	}
	if sp.Collector() != nil {
		t.Error("nil span has a collector")
	}
	c.Add("n", 1)
	c.AddGauge("g", 1)
	c.SetGauge("g", 1)
	if c.Counter("n") != 0 || c.Gauge("g") != 0 {
		t.Error("nil collector holds values")
	}
	if c.Counters() != nil || c.Gauges() != nil || c.Spans() != nil {
		t.Error("nil collector returns non-nil aggregates")
	}
	if c.Tree() != "" || c.CountersText() != "" {
		t.Error("nil collector renders text")
	}
}

// TestNoopZeroAllocs is the hot-path guarantee: disabled telemetry
// allocates nothing. (BenchmarkNoopCollector measures the time side.)
func TestNoopZeroAllocs(t *testing.T) {
	var c *Collector
	allocs := testing.AllocsPerRun(100, func() {
		sp := c.Start("fleet")
		ch := sp.Child("stage")
		c.Add("counter", 1)
		c.AddGauge("gauge", 0.5)
		ch.End()
		sp.Restart()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil-collector path allocates %.1f per op, want 0", allocs)
	}
}

// TestSpanTreeStructure checks paths, depths and creation-order
// rendering of a nested trace.
func TestSpanTreeStructure(t *testing.T) {
	c := New()
	root := c.Start("fleet")
	a := root.Child("cellA")
	a.Child("recognize").End()
	a.Child("checks").End()
	a.End()
	b := root.Child("cellB")
	b.Child("recognize").End()
	b.End()
	root.End()

	want := []string{
		"fleet",
		"fleet/cellA",
		"fleet/cellA/recognize",
		"fleet/cellA/checks",
		"fleet/cellB",
		"fleet/cellB/recognize",
	}
	infos := c.Spans()
	if len(infos) != len(want) {
		t.Fatalf("got %d spans, want %d", len(infos), len(want))
	}
	for i, in := range infos {
		if in.Path != want[i] {
			t.Errorf("span %d path = %q, want %q", i, in.Path, want[i])
		}
		if wantDepth := strings.Count(want[i], "/"); in.Depth != wantDepth {
			t.Errorf("span %q depth = %d, want %d", in.Path, in.Depth, wantDepth)
		}
	}
	tree := c.Tree()
	if !strings.Contains(tree, "fleet") || !strings.Contains(tree, "    recognize") {
		t.Errorf("tree rendering missing names/indent:\n%s", tree)
	}
}

// TestSpanDurations checks that End fixes a monotonic duration and
// that Restart re-bases the clock (the queue-wait idiom).
func TestSpanDurations(t *testing.T) {
	c := New()
	sp := c.Start("work")
	time.Sleep(2 * time.Millisecond)
	wait := sp.Restart()
	if wait < time.Millisecond {
		t.Errorf("Restart returned %v queue wait, want ≥1ms", wait)
	}
	time.Sleep(time.Millisecond)
	sp.End()
	d := sp.Duration()
	if d <= 0 || d >= 100*time.Millisecond {
		t.Errorf("duration %v out of range", d)
	}
	if d > wait+100*time.Millisecond {
		t.Errorf("Restart did not re-base: dur %v includes wait %v", d, wait)
	}
	// Double End keeps the first fix.
	first := sp.Duration()
	time.Sleep(time.Millisecond)
	sp.End()
	if sp.Duration() != first {
		t.Error("second End moved the duration")
	}
}

// TestCountersConcurrent hammers counters and gauges from many
// goroutines; under -race this is also the data-race check.
func TestCountersConcurrent(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add("n", 1)
				c.AddGauge("g", 0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Counter("n"); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := c.Gauge("g"); got != workers*perWorker*0.5 {
		t.Errorf("gauge = %g, want %g", got, workers*perWorker*0.5)
	}
}

// TestConcurrentSpansUnderRace creates sibling spans from concurrent
// goroutines — order is scheduling-dependent (the fleet pre-creates to
// avoid that), but the structure must stay a consistent tree and the
// walk must not race.
func TestConcurrentSpansUnderRace(t *testing.T) {
	c := New()
	root := c.Start("root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := root.Child("worker")
			sp.Child("stage").End()
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	infos := c.Spans()
	if len(infos) != 1+8*2 {
		t.Fatalf("got %d spans, want %d", len(infos), 1+8*2)
	}
}

// BenchmarkNoopCollector pins the cost of disabled telemetry on the
// hot path: all nil-receiver calls, zero allocations.
func BenchmarkNoopCollector(b *testing.B) {
	var c *Collector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := c.Start("fleet")
		ch := sp.Child("stage")
		c.Add("counter", 1)
		ch.End()
		sp.End()
	}
}

// BenchmarkLiveCollector is the enabled-side reference cost.
func BenchmarkLiveCollector(b *testing.B) {
	c := New()
	root := c.Start("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add("counter", 1)
	}
	root.End()
}
