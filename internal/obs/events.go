package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one row of the live JSONL event stream (`fcv verify -events`).
// The deterministic half is everything except TMS: for a given corpus
// and configuration the sequence of (Seq, Type, Item, Stage, ID,
// Detail) tuples is byte-identical across runs and worker counts —
// the same masking contract as the manifest. TMS (milliseconds since
// the sink opened) is the volatile half.
type Event struct {
	// Seq is the event's ordinal in the stream, assigned at write time.
	Seq int64 `json:"seq"`
	// TMS is milliseconds since the sink opened (volatile).
	TMS float64 `json:"t_ms"`
	// Type is the event kind: run-start, item-start, stage-start,
	// stage-end, cache-hit, cache-miss, finding, item-end, run-end.
	Type string `json:"type"`
	// Item is the corpus item the event belongs to ("" for run-level).
	Item string `json:"item,omitempty"`
	// Stage is the pipeline stage for stage-start/stage-end.
	Stage string `json:"stage,omitempty"`
	// ID is the stable finding ID for finding events.
	ID string `json:"id,omitempty"`
	// Detail is a short human-readable payload (verdict, counts, check).
	Detail string `json:"detail,omitempty"`
}

// EventSink streams events as JSON Lines while keeping the stream order
// deterministic at any worker count: run-level events write through
// immediately (the driver emits them sequentially), and per-item events
// buffer in an EventScope and flush in scope-creation order — a scope's
// events only reach the writer once every earlier scope has closed, the
// same reorder discipline the fleet uses for its span tree. Events
// stream live for the head of the input order; a long-running early
// item delays later items' events but never reorders them.
//
// A nil *EventSink (and the nil *EventScope it hands out) accepts every
// call as a no-op, so event emission can be threaded through options
// structs unconditionally, like the rest of the package.
type EventSink struct {
	mu      sync.Mutex
	w       io.Writer
	base    time.Time
	seq     int64
	scopes  []*EventScope
	flushed int // scopes fully written
	err     error
}

// NewEventSink returns a sink writing JSONL to w. The caller owns w's
// lifetime; Close flushes but does not close it.
func NewEventSink(w io.Writer) *EventSink {
	return &EventSink{w: w, base: time.Now()}
}

// Emit writes a run-level event immediately. Call only from the driver
// goroutine (before scopes are created or after all have closed) or the
// stream order becomes scheduling-dependent.
func (s *EventSink) Emit(typ, detail string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.write(Event{TMS: s.now(), Type: typ, Detail: detail})
	s.mu.Unlock()
}

// Scope opens a per-item event scope. Scopes flush in the order they
// were created, so callers must create them in the deterministic input
// order (the fleet pre-creates one per item, like its spans).
func (s *EventSink) Scope(item string) *EventScope {
	if s == nil {
		return nil
	}
	sc := &EventScope{sink: s, item: item}
	s.mu.Lock()
	s.scopes = append(s.scopes, sc)
	s.mu.Unlock()
	return sc
}

// Close flushes every remaining scope (closed or not, in order) and
// returns the first write error. The sink must not be used after.
func (s *EventSink) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sc := range s.scopes[s.flushed:] {
		sc.closed = true
	}
	s.drain()
	return s.err
}

// now returns milliseconds since the sink opened. Callers hold mu.
func (s *EventSink) now() float64 { return ms(time.Since(s.base)) }

// write marshals one event with the next sequence number. Callers hold
// mu. Write errors latch: the first one sticks and later writes no-op.
func (s *EventSink) write(ev Event) {
	if s.err != nil {
		return
	}
	ev.Seq = s.seq
	s.seq++
	b, err := json.Marshal(ev)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		s.err = err
	}
}

// drain writes the longest prefix of closed scopes. Callers hold mu.
func (s *EventSink) drain() {
	for s.flushed < len(s.scopes) && s.scopes[s.flushed].closed {
		for _, ev := range s.scopes[s.flushed].buf {
			s.write(ev)
		}
		s.scopes[s.flushed].buf = nil
		s.flushed++
	}
}

// EventScope buffers one item's events until its turn in the stream.
// Emit order within a scope is the caller's responsibility (one worker
// owns an item at a time, so per-item emission is naturally serial).
type EventScope struct {
	sink   *EventSink
	item   string
	buf    []Event
	closed bool
}

// Emit buffers an event, stamping the item name and emission time.
func (sc *EventScope) Emit(ev Event) {
	if sc == nil {
		return
	}
	sc.sink.mu.Lock()
	ev.Item = sc.item
	ev.TMS = sc.sink.now()
	sc.buf = append(sc.buf, ev)
	sc.sink.mu.Unlock()
}

// Close marks the scope complete and flushes any scopes (this one
// included) that are now at the head of the order.
func (sc *EventScope) Close() {
	if sc == nil {
		return
	}
	sc.sink.mu.Lock()
	sc.closed = true
	sc.sink.drain()
	sc.sink.mu.Unlock()
}
