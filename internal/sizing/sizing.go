// Package sizing implements automatic transistor path sizing via the
// method of logical effort.
//
// §2.2 of the paper: "Transistors are sized either by the designer or by
// using automatic path sizing techniques." Logical effort is the
// standard such technique: it expresses every gate's drive cost as a
// unitless effort, finds the total path effort F = G·B·H, and sizes each
// stage for equal stage effort F^(1/N), which minimizes path delay. The
// engine also answers the dual question — how many stages a path should
// have (N̂ ≈ log₄ F).
package sizing

import (
	"fmt"
	"math"

	"repro/internal/process"
)

// Stage is one gate of a path, in logical-effort terms.
type Stage struct {
	// Name labels the stage for reports.
	Name string
	// G is the stage's logical effort (inverter = 1, NAND2 = 4/3,
	// NOR2 = 5/3, ...).
	G float64
	// P is the stage's parasitic delay in units of the inverter
	// parasitic (inverter = 1, NAND2 = 2, ...).
	P float64
	// Branch is the branching effort: total load on the stage's output
	// divided by the load on the path of interest (≥1).
	Branch float64
}

// LogicalEffortNAND returns g for an n-input NAND: (n+2)/3.
func LogicalEffortNAND(n int) float64 { return float64(n+2) / 3 }

// LogicalEffortNOR returns g for an n-input NOR: (2n+1)/3.
func LogicalEffortNOR(n int) float64 { return float64(2*n+1) / 3 }

// Inverter returns an inverter stage.
func Inverter(name string) Stage { return Stage{Name: name, G: 1, P: 1, Branch: 1} }

// NAND returns an n-input NAND stage.
func NAND(name string, n int) Stage {
	return Stage{Name: name, G: LogicalEffortNAND(n), P: float64(n), Branch: 1}
}

// NOR returns an n-input NOR stage.
func NOR(name string, n int) Stage {
	return Stage{Name: name, G: LogicalEffortNOR(n), P: float64(n), Branch: 1}
}

// Result is a sized path.
type Result struct {
	// Stages echoes the input stages.
	Stages []Stage
	// CinFF is the input capacitance assigned to each stage in fF;
	// CinFF[0] equals the given path input cap.
	CinFF []float64
	// StageEffort is the equalized effort per stage (ρ = F^(1/N)).
	StageEffort float64
	// PathEffort is F = G·B·H.
	PathEffort float64
	// DelayUnits is the minimized path delay in τ units (stage efforts
	// plus parasitics).
	DelayUnits float64
	// DelayPS is DelayUnits scaled by the process τ (FO4/5).
	DelayPS float64
}

// SizePath sizes a path of stages driving loadFF from an input pinned at
// cinFF, minimizing delay by equalizing stage effort. Proc may be nil
// (DelayPS is then 0).
func SizePath(stages []Stage, cinFF, loadFF float64, proc *process.Process) (*Result, error) {
	n := len(stages)
	if n == 0 {
		return nil, fmt.Errorf("sizing: empty path")
	}
	if cinFF <= 0 || loadFF <= 0 {
		return nil, fmt.Errorf("sizing: input (%g) and load (%g) caps must be positive", cinFF, loadFF)
	}
	g, b := 1.0, 1.0
	for _, s := range stages {
		if s.G <= 0 || s.Branch < 1 || s.P < 0 {
			return nil, fmt.Errorf("sizing: stage %q has invalid parameters %+v", s.Name, s)
		}
		g *= s.G
		b *= s.Branch
	}
	h := loadFF / cinFF
	f := g * b * h
	rho := math.Pow(f, 1/float64(n))

	res := &Result{
		Stages:      append([]Stage(nil), stages...),
		CinFF:       make([]float64, n),
		StageEffort: rho,
		PathEffort:  f,
	}
	// Work backward: Cin_i = g_i · b_i · Cout_i / ρ.
	cout := loadFF
	for i := n - 1; i >= 0; i-- {
		res.CinFF[i] = stages[i].G * stages[i].Branch * cout / rho
		cout = res.CinFF[i]
	}
	// Delay: N·ρ + ΣP.
	res.DelayUnits = float64(n) * rho
	for _, s := range stages {
		res.DelayUnits += s.P
	}
	if proc != nil {
		res.DelayPS = res.DelayUnits * tauPS(proc)
	}
	return res, nil
}

// tauPS estimates the process's unit delay τ: an FO4 is ≈5τ (4 effort +
// 1 parasitic).
func tauPS(p *process.Process) float64 {
	return p.FO4ps(process.Typical) / 5
}

// OptimalStageCount returns N̂, the delay-optimal number of stages for a
// path effort F: the nearest integer to log₄ F, at least 1.
func OptimalStageCount(pathEffort float64) int {
	if pathEffort <= 1 {
		return 1
	}
	n := int(math.Round(math.Log(pathEffort) / math.Log(4)))
	if n < 1 {
		n = 1
	}
	return n
}

// BufferChain designs a minimum-delay inverter chain from cinFF to
// loadFF, choosing the stage count automatically. If parity is
// non-negative, the chain length is forced to that parity (0 even,
// 1 odd) so the chain's logic sense can be controlled.
func BufferChain(cinFF, loadFF float64, parity int, proc *process.Process) (*Result, error) {
	if cinFF <= 0 || loadFF <= 0 {
		return nil, fmt.Errorf("sizing: caps must be positive")
	}
	f := loadFF / cinFF
	n := OptimalStageCount(f)
	if parity >= 0 && n%2 != parity {
		n++
	}
	stages := make([]Stage, n)
	for i := range stages {
		stages[i] = Inverter(fmt.Sprintf("buf%d", i))
	}
	return SizePath(stages, cinFF, loadFF, proc)
}

// WidthsFromCin converts per-stage input capacitance to NMOS/PMOS widths
// at minimum length, splitting each stage's input cap in a 1:2 N:P ratio
// (the usual mobility compensation).
func WidthsFromCin(cinFF []float64, proc *process.Process) (wn, wp []float64) {
	wn = make([]float64, len(cinFF))
	wp = make([]float64, len(cinFF))
	unit := proc.CgateFF(1, proc.Lmin) // fF per µm of width at Lmin
	for i, c := range cinFF {
		total := c / unit // total µm of gate width
		wn[i] = total / 3
		wp[i] = 2 * total / 3
	}
	return wn, wp
}

// EvaluateDelay computes the delay in τ units of a path with *given*
// stage input caps (not necessarily optimal), for comparing manual
// sizings against the optimizer.
func EvaluateDelay(stages []Stage, cinFF []float64, loadFF float64) (float64, error) {
	if len(stages) != len(cinFF) {
		return 0, fmt.Errorf("sizing: %d stages but %d caps", len(stages), len(cinFF))
	}
	d := 0.0
	for i, s := range stages {
		cout := loadFF
		if i+1 < len(cinFF) {
			cout = cinFF[i+1]
		}
		if cinFF[i] <= 0 {
			return 0, fmt.Errorf("sizing: stage %d has non-positive cap", i)
		}
		d += s.G*s.Branch*cout/cinFF[i] + s.P
	}
	return d, nil
}
