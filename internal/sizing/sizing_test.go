package sizing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/process"
)

func TestLogicalEffortFormulas(t *testing.T) {
	if g := LogicalEffortNAND(2); math.Abs(g-4.0/3) > 1e-12 {
		t.Errorf("NAND2 g = %g", g)
	}
	if g := LogicalEffortNOR(2); math.Abs(g-5.0/3) > 1e-12 {
		t.Errorf("NOR2 g = %g", g)
	}
	if g := LogicalEffortNAND(3); math.Abs(g-5.0/3) > 1e-12 {
		t.Errorf("NAND3 g = %g", g)
	}
}

func TestSizePathTextbookExample(t *testing.T) {
	// Classic: 3 inverters, H = 64 → ρ = 4, sizes 1, 4, 16 (×Cin).
	stages := []Stage{Inverter("a"), Inverter("b"), Inverter("c")}
	res, err := SizePath(stages, 1, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.StageEffort-4) > 1e-9 {
		t.Errorf("stage effort = %g, want 4", res.StageEffort)
	}
	want := []float64{1, 4, 16}
	for i, w := range want {
		if math.Abs(res.CinFF[i]-w) > 1e-9 {
			t.Errorf("Cin[%d] = %g, want %g", i, res.CinFF[i], w)
		}
	}
	// Delay = 3·4 + 3·1 = 15 τ.
	if math.Abs(res.DelayUnits-15) > 1e-9 {
		t.Errorf("delay = %g τ, want 15", res.DelayUnits)
	}
}

func TestSizePathWithLogicAndBranching(t *testing.T) {
	// NAND2 → NOR2 → INV with branch 2 on the first two stages.
	stages := []Stage{NAND("n1", 2), NOR("n2", 2), Inverter("i")}
	stages[0].Branch = 2
	stages[1].Branch = 2
	res, err := SizePath(stages, 2, 100, process.CMOS075())
	if err != nil {
		t.Fatal(err)
	}
	g := (4.0 / 3) * (5.0 / 3) * 1
	b := 4.0
	h := 50.0
	if math.Abs(res.PathEffort-g*b*h) > 1e-9 {
		t.Errorf("path effort = %g, want %g", res.PathEffort, g*b*h)
	}
	// First stage's input cap must equal the pinned cin.
	if math.Abs(res.CinFF[0]-2) > 1e-6 {
		t.Errorf("Cin[0] = %g, want the pinned 2", res.CinFF[0])
	}
	if res.DelayPS <= 0 {
		t.Error("process-scaled delay should be positive")
	}
}

func TestSizePathErrors(t *testing.T) {
	if _, err := SizePath(nil, 1, 10, nil); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := SizePath([]Stage{Inverter("a")}, 0, 10, nil); err == nil {
		t.Error("zero cin accepted")
	}
	if _, err := SizePath([]Stage{{G: -1, P: 1, Branch: 1}}, 1, 10, nil); err == nil {
		t.Error("negative g accepted")
	}
	if _, err := SizePath([]Stage{{G: 1, P: 1, Branch: 0.5}}, 1, 10, nil); err == nil {
		t.Error("branch < 1 accepted")
	}
}

func TestOptimalStageCount(t *testing.T) {
	cases := map[float64]int{
		1: 1, 3: 1, 4: 1, 16: 2, 64: 3, 256: 4, 1024: 5,
	}
	for f, want := range cases {
		if got := OptimalStageCount(f); got != want {
			t.Errorf("OptimalStageCount(%g) = %d, want %d", f, got, want)
		}
	}
}

func TestBufferChainParity(t *testing.T) {
	res, err := BufferChain(1, 1000, 0, process.CMOS075())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages)%2 != 0 {
		t.Errorf("even parity requested, got %d stages", len(res.Stages))
	}
	res, err = BufferChain(1, 1000, 1, process.CMOS075())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages)%2 != 1 {
		t.Errorf("odd parity requested, got %d stages", len(res.Stages))
	}
	if _, err := BufferChain(0, 10, -1, nil); err == nil {
		t.Error("zero cin accepted")
	}
}

func TestOptimizerBeatsNaiveSizing(t *testing.T) {
	// The equal-effort solution must beat an arbitrary hand sizing of
	// the same path.
	stages := []Stage{Inverter("a"), NAND("b", 2), Inverter("c"), NOR("d", 2)}
	res, err := SizePath(stages, 2, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	naive := []float64{2, 4, 8, 16} // plausible but unoptimized
	naiveDelay, err := EvaluateDelay(stages, naive, 300)
	if err != nil {
		t.Fatal(err)
	}
	optDelay, err := EvaluateDelay(stages, res.CinFF, 300)
	if err != nil {
		t.Fatal(err)
	}
	if optDelay > naiveDelay {
		t.Errorf("optimizer (%.2f τ) worse than naive (%.2f τ)", optDelay, naiveDelay)
	}
	if math.Abs(optDelay-res.DelayUnits) > 1e-6 {
		t.Errorf("EvaluateDelay (%g) disagrees with SizePath (%g)", optDelay, res.DelayUnits)
	}
}

// Property: the equal-effort sizing is a local minimum — perturbing any
// single intermediate stage's cap never reduces delay.
func TestEqualEffortIsLocalMinimumProperty(t *testing.T) {
	stages := []Stage{Inverter("a"), NAND("b", 2), Inverter("c")}
	res, err := SizePath(stages, 1, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := EvaluateDelay(stages, res.CinFF, 200)
	if err != nil {
		t.Fatal(err)
	}
	f := func(stageRaw uint8, pct int8) bool {
		i := 1 + int(stageRaw)%(len(stages)-1) // never perturb the pinned input
		scale := 1 + float64(pct)/400          // ±32%
		if scale <= 0 {
			return true
		}
		mod := append([]float64(nil), res.CinFF...)
		mod[i] *= scale
		d, err := EvaluateDelay(stages, mod, 200)
		if err != nil {
			return false
		}
		return d >= base-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWidthsFromCin(t *testing.T) {
	p := process.CMOS075()
	wn, wp := WidthsFromCin([]float64{3, 12}, p)
	if len(wn) != 2 || len(wp) != 2 {
		t.Fatal("length mismatch")
	}
	for i := range wn {
		if math.Abs(wp[i]/wn[i]-2) > 1e-9 {
			t.Errorf("P:N ratio at %d = %g, want 2", i, wp[i]/wn[i])
		}
	}
	if wn[1]/wn[0] < 3.9 || wn[1]/wn[0] > 4.1 {
		t.Errorf("width scaling should track cap scaling: %g", wn[1]/wn[0])
	}
}

func TestEvaluateDelayErrors(t *testing.T) {
	if _, err := EvaluateDelay([]Stage{Inverter("a")}, nil, 10); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := EvaluateDelay([]Stage{Inverter("a")}, []float64{0}, 10); err == nil {
		t.Error("zero cap accepted")
	}
}
