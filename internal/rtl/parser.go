package rtl

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SyntaxError reports an FCL parse failure with position.
type SyntaxError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("fcl: line %d: %s", e.Line, e.Msg)
}

// Parse reads an FCL program. The first module is the default top unless
// a later module is named "top".
func Parse(r io.Reader) (*Program, error) {
	prog := &Program{Modules: make(map[string]*Module)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var cur *Module
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		word := line
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			word = line[:i]
		}
		if cur == nil && word != "module" {
			return nil, &SyntaxError{lineNo, "expected 'module'"}
		}
		var err error
		switch word {
		case "module":
			if cur != nil {
				return nil, &SyntaxError{lineNo, fmt.Sprintf("module %q missing endmodule", cur.Name)}
			}
			cur, err = parseModuleHeader(line, lineNo)
			if err == nil {
				if _, dup := prog.Modules[cur.Name]; dup {
					err = &SyntaxError{lineNo, fmt.Sprintf("duplicate module %q", cur.Name)}
				} else {
					prog.Modules[cur.Name] = cur
					if prog.Top == "" || cur.Name == "top" {
						prog.Top = cur.Name
					}
				}
			}
		case "endmodule":
			cur = nil
		case "wire", "reg":
			err = parseSignal(cur, line, lineNo)
		case "mem":
			err = parseMem(cur, line, lineNo)
		case "cam":
			err = parseCam(cur, line, lineNo)
		case "assign":
			err = parseAssign(cur, line, lineNo)
		case "on":
			err = parseClocked(cur, line, lineNo)
		case "inst":
			err = parseInst(cur, line, lineNo)
		default:
			err = &SyntaxError{lineNo, fmt.Sprintf("unknown statement %q", word)}
		}
		if err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fcl: read: %w", err)
	}
	if cur != nil {
		return nil, &SyntaxError{lineNo, "missing endmodule"}
	}
	if len(prog.Modules) == 0 {
		return nil, &SyntaxError{lineNo, "no modules"}
	}
	return prog, nil
}

// ParseString parses FCL source from a string.
func ParseString(src string) (*Program, error) {
	return Parse(strings.NewReader(src))
}

// parseModuleHeader handles "module name(in[w], ... -> out[w], ...)".
func parseModuleHeader(line string, no int) (*Module, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "module"))
	open := strings.Index(rest, "(")
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return nil, &SyntaxError{no, "module header needs (ports)"}
	}
	m := &Module{Name: strings.TrimSpace(rest[:open])}
	if m.Name == "" {
		return nil, &SyntaxError{no, "module needs a name"}
	}
	body := rest[open+1 : len(rest)-1]
	inPart, outPart, hasOut := strings.Cut(body, "->")
	parseList := func(s string, kind SignalKind) error {
		for _, item := range splitTop(s, ',') {
			item = strings.TrimSpace(item)
			if item == "" {
				continue
			}
			name, width, err := parseNameWidth(item, no)
			if err != nil {
				return err
			}
			m.Ports = append(m.Ports, SignalDecl{Name: name, Width: width, Kind: kind})
		}
		return nil
	}
	if err := parseList(inPart, KindInput); err != nil {
		return nil, err
	}
	if hasOut {
		if err := parseList(outPart, KindOutput); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// parseNameWidth parses "name" or "name[w]".
func parseNameWidth(s string, no int) (string, int, error) {
	if i := strings.Index(s, "["); i >= 0 {
		if !strings.HasSuffix(s, "]") {
			return "", 0, &SyntaxError{no, "unterminated width in " + s}
		}
		w, err := strconv.Atoi(s[i+1 : len(s)-1])
		if err != nil || w < 1 || w > 64 {
			return "", 0, &SyntaxError{no, fmt.Sprintf("width in %q must be 1..64", s)}
		}
		return s[:i], w, nil
	}
	return s, 1, nil
}

// parseSignal handles "wire x[w]" and "reg r[w] @phase [= init]".
func parseSignal(m *Module, line string, no int) error {
	fields := strings.Fields(line)
	kind := KindWire
	if fields[0] == "reg" {
		kind = KindReg
	}
	if len(fields) < 2 {
		return &SyntaxError{no, fields[0] + " needs a name"}
	}
	name, width, err := parseNameWidth(fields[1], no)
	if err != nil {
		return err
	}
	d := SignalDecl{Name: name, Width: width, Kind: kind}
	rest := fields[2:]
	for i := 0; i < len(rest); i++ {
		switch {
		case strings.HasPrefix(rest[i], "@"):
			d.Phase = rest[i][1:]
		case rest[i] == "=" && i+1 < len(rest):
			v, err := parseNumLiteral(rest[i+1], no)
			if err != nil {
				return err
			}
			d.Init = v.Value
			i++
		default:
			return &SyntaxError{no, fmt.Sprintf("unexpected %q", rest[i])}
		}
	}
	if kind == KindReg && d.Phase == "" {
		return &SyntaxError{no, fmt.Sprintf("reg %s needs a clock phase (@phi1)", name)}
	}
	if kind == KindWire && d.Phase != "" {
		return &SyntaxError{no, fmt.Sprintf("wire %s cannot have a phase", name)}
	}
	m.Signals = append(m.Signals, d)
	return nil
}

// parseMem handles "mem name depth width".
func parseMem(m *Module, line string, no int) error {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return &SyntaxError{no, "mem needs: mem name depth width"}
	}
	depth, err1 := strconv.Atoi(fields[2])
	width, err2 := strconv.Atoi(fields[3])
	if err1 != nil || err2 != nil || depth < 1 || width < 1 || width > 64 {
		return &SyntaxError{no, "mem depth/width invalid"}
	}
	m.Mems = append(m.Mems, MemDecl{fields[1], depth, width})
	return nil
}

// parseCam handles "cam name depth width".
func parseCam(m *Module, line string, no int) error {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return &SyntaxError{no, "cam needs: cam name depth width"}
	}
	depth, err1 := strconv.Atoi(fields[2])
	width, err2 := strconv.Atoi(fields[3])
	if err1 != nil || err2 != nil || depth < 1 || width < 1 || width > 64 {
		return &SyntaxError{no, "cam depth/width invalid"}
	}
	m.Cams = append(m.Cams, CamDecl{fields[1], depth, width})
	return nil
}

// parseAssign handles "assign target = expr".
func parseAssign(m *Module, line string, no int) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "assign"))
	lhs, rhs, ok := strings.Cut(rest, "=")
	if !ok {
		return &SyntaxError{no, "assign needs '='"}
	}
	target := strings.TrimSpace(lhs)
	if target == "" || strings.ContainsAny(target, "[]{} ") {
		return &SyntaxError{no, "assign target must be a plain signal"}
	}
	e, err := parseExpr(strings.TrimSpace(rhs), no)
	if err != nil {
		return err
	}
	m.Assigns = append(m.Assigns, Assign{Target: target, Expr: e, Line: no})
	return nil
}

// parseClocked handles
// "on phase: target <= expr", "on phase: target[idx] <= expr",
// and the guarded form "on phase if cond: ...".
func parseClocked(m *Module, line string, no int) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "on"))
	head, body, ok := strings.Cut(rest, ":")
	if !ok {
		return &SyntaxError{no, "on needs ':'"}
	}
	stmt := ClockedStmt{Line: no}
	phasePart, condPart, hasCond := strings.Cut(head, " if ")
	stmt.Phase = strings.TrimSpace(phasePart)
	if stmt.Phase == "" {
		return &SyntaxError{no, "on needs a phase"}
	}
	if hasCond {
		cond, err := parseExpr(strings.TrimSpace(condPart), no)
		if err != nil {
			return err
		}
		stmt.Cond = cond
	}
	lhs, rhs, ok := strings.Cut(body, "<=")
	if !ok {
		return &SyntaxError{no, "clocked statement needs '<='"}
	}
	target := strings.TrimSpace(lhs)
	if i := strings.Index(target, "["); i >= 0 {
		if !strings.HasSuffix(target, "]") {
			return &SyntaxError{no, "unterminated index"}
		}
		idx, err := parseExpr(target[i+1:len(target)-1], no)
		if err != nil {
			return err
		}
		stmt.Idx = idx
		target = target[:i]
	}
	stmt.Target = target
	e, err := parseExpr(strings.TrimSpace(rhs), no)
	if err != nil {
		return err
	}
	stmt.Expr = e
	m.Clocked = append(m.Clocked, stmt)
	return nil
}

// parseInst handles "inst name of module(port=sig, ...)".
func parseInst(m *Module, line string, no int) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "inst"))
	name, rest, ok := strings.Cut(rest, " of ")
	if !ok {
		return &SyntaxError{no, "inst needs: inst name of module(bindings)"}
	}
	name = strings.TrimSpace(name)
	rest = strings.TrimSpace(rest)
	open := strings.Index(rest, "(")
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return &SyntaxError{no, "inst needs (bindings)"}
	}
	inst := Instance{
		Name:     name,
		Module:   strings.TrimSpace(rest[:open]),
		Bindings: make(map[string]string),
		Line:     no,
	}
	for _, kv := range splitTop(rest[open+1:len(rest)-1], ',') {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		port, sig, ok := strings.Cut(kv, "=")
		if !ok {
			return &SyntaxError{no, fmt.Sprintf("binding %q needs port=signal", kv)}
		}
		inst.Bindings[strings.TrimSpace(port)] = strings.TrimSpace(sig)
	}
	m.Instances = append(m.Instances, inst)
	return nil
}

// splitTop splits on sep at depth 0 of (), [], {}.
func splitTop(s string, sep byte) []string {
	var out []string
	depth := 0
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[last:i])
				last = i + 1
			}
		}
	}
	out = append(out, s[last:])
	return out
}
