package rtl

import (
	"fmt"
	"strconv"
	"strings"
)

// Expression grammar (loosest to tightest):
//
//	cond   := or ('?' cond ':' cond)?
//	or     := xor ('|' xor)*
//	xor    := and ('^' and)*
//	and    := cmp ('&' cmp)*
//	cmp    := shift (('=='|'!='|'<='|'>='|'<'|'>') shift)?
//	shift  := add (('<<'|'>>') add)*
//	add    := unary (('+'|'-') unary)*
//	unary  := ('~'|'!'|'-')? primary
//	primary:= num | '(' cond ')' | '{' cond (',' cond)* '}'
//	       | ident ('[' cond (':' num)? ']')? | ident '.' op '(' cond ')'
//	       | ('redor'|'redand'|'redxor') '(' cond ')'

type exprParser struct {
	toks []string
	pos  int
	line int
}

// parseExpr parses a complete FCL expression string.
func parseExpr(s string, line int) (Expr, error) {
	toks, err := tokenize(s, line)
	if err != nil {
		return nil, err
	}
	p := &exprParser{toks: toks, line: line}
	e, err := p.cond()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, &SyntaxError{line, fmt.Sprintf("trailing tokens after expression: %q", p.toks[p.pos:])}
	}
	return e, nil
}

// tokenize splits an expression into tokens.
func tokenize(s string, line int) ([]string, error) {
	var out []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case isIdentStart(c):
			j := i
			for j < len(s) && isIdentPart(s[j]) {
				j++
			}
			out = append(out, s[i:j])
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(s) && (isIdentPart(s[j])) {
				j++
			}
			out = append(out, s[i:j])
			i = j
		case strings.ContainsRune("?:|^&<>=!~+-(){}[],.", rune(c)):
			// Two-character operators first.
			if i+1 < len(s) {
				two := s[i : i+2]
				switch two {
				case "==", "!=", "<=", ">=", "<<", ">>":
					out = append(out, two)
					i += 2
					continue
				}
			}
			out = append(out, string(c))
			i++
		default:
			return nil, &SyntaxError{line, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	return out, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// peek returns the next token or "".
func (p *exprParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

// accept consumes tok if it is next.
func (p *exprParser) accept(tok string) bool {
	if p.peek() == tok {
		p.pos++
		return true
	}
	return false
}

// expect consumes tok or errors.
func (p *exprParser) expect(tok string) error {
	if !p.accept(tok) {
		return &SyntaxError{p.line, fmt.Sprintf("expected %q, found %q", tok, p.peek())}
	}
	return nil
}

func (p *exprParser) cond() (Expr, error) {
	c, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	if p.accept("?") {
		t, err := p.cond()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		f, err := p.cond()
		if err != nil {
			return nil, err
		}
		return &Cond{c, t, f}, nil
	}
	return c, nil
}

// binLevels orders binary operators loosest-first.
var binLevels = [][]string{
	{"|"},
	{"^"},
	{"&"},
	{"==", "!=", "<=", ">=", "<", ">"},
	{"<<", ">>"},
	{"+", "-"},
}

func (p *exprParser) binary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.unary()
	}
	left, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range binLevels[level] {
			if p.accept(op) {
				right, err := p.binary(level + 1)
				if err != nil {
					return nil, err
				}
				left = &Binary{Op: op, L: left, R: right}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
		// Comparison level is non-associative: one application only.
		if level == 3 {
			return left, nil
		}
	}
}

func (p *exprParser) unary() (Expr, error) {
	for _, op := range []string{"~", "!", "-"} {
		if p.accept(op) {
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: op, X: x}, nil
		}
	}
	return p.primary()
}

func (p *exprParser) primary() (Expr, error) {
	tok := p.peek()
	switch {
	case tok == "":
		return nil, &SyntaxError{p.line, "unexpected end of expression"}
	case tok == "(":
		p.pos++
		e, err := p.cond()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	case tok == "{":
		p.pos++
		var parts []Expr
		for {
			e, err := p.cond()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
			if !p.accept(",") {
				break
			}
		}
		return &Concat{parts}, p.expect("}")
	case tok[0] >= '0' && tok[0] <= '9':
		p.pos++
		return parseNumLiteral(tok, p.line)
	case isIdentStart(tok[0]):
		p.pos++
		name := tok
		// Reductions.
		if name == "redor" || name == "redand" || name == "redxor" {
			if err := p.expect("("); err != nil {
				return nil, err
			}
			x, err := p.cond()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: name, X: x}, p.expect(")")
		}
		// CAM query: name.hit(key) / name.index(key).
		if p.accept(".") {
			op := p.peek()
			if op != "hit" && op != "index" {
				return nil, &SyntaxError{p.line, fmt.Sprintf("unknown cam operation %q", op)}
			}
			p.pos++
			if err := p.expect("("); err != nil {
				return nil, err
			}
			key, err := p.cond()
			if err != nil {
				return nil, err
			}
			return &CamOp{Cam: name, Op: op, Key: key}, p.expect(")")
		}
		// Index or slice.
		if p.accept("[") {
			first, err := p.cond()
			if err != nil {
				return nil, err
			}
			if p.accept(":") {
				lo := p.peek()
				p.pos++
				hiNum, okHi := first.(*Num)
				loVal, errLo := strconv.Atoi(lo)
				if !okHi || errLo != nil {
					return nil, &SyntaxError{p.line, "slice bounds must be constant"}
				}
				if err := p.expect("]"); err != nil {
					return nil, err
				}
				if int(hiNum.Value) < loVal {
					return nil, &SyntaxError{p.line, "slice hi < lo"}
				}
				return &Slice{Base: name, Hi: int(hiNum.Value), Lo: loVal}, nil
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return &Index{Base: name, Idx: first}, nil
		}
		return &Ident{name}, nil
	}
	return nil, &SyntaxError{p.line, fmt.Sprintf("unexpected token %q", tok)}
}

// parseNumLiteral parses decimal, 0x…, and 0b… literals.
func parseNumLiteral(tok string, line int) (*Num, error) {
	base := 10
	digits := tok
	switch {
	case strings.HasPrefix(tok, "0x"), strings.HasPrefix(tok, "0X"):
		base, digits = 16, tok[2:]
	case strings.HasPrefix(tok, "0b"), strings.HasPrefix(tok, "0B"):
		base, digits = 2, tok[2:]
	}
	v, err := strconv.ParseUint(digits, base, 64)
	if err != nil {
		return nil, &SyntaxError{line, fmt.Sprintf("bad number %q", tok)}
	}
	return &Num{Value: v}, nil
}
