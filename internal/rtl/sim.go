package rtl

import (
	"fmt"
	"math/bits"

	"repro/internal/obs"
)

// Sim is a phase-accurate simulator for an elaborated design. Signal
// values are uint64 words masked to declared widths; memories and CAMs
// are state arrays. "Compiles into very efficient code" (§4.1): every
// expression is compiled once into a closure tree over the value array,
// so steady-state simulation does no AST walking, map lookups or
// allocation.
type Sim struct {
	design *Design
	vals   []uint64
	mems   [][]uint64
	cams   []*camState

	assignFns []compiledAssign
	clockedBy map[string][]compiledClocked
	// phaseStmts aligns the clocked statements with design.Phases so
	// Cycle avoids the map lookup per phase; staged is the reusable
	// commit buffer (Phase allocated one per call before — two allocs
	// per cycle on the hot path).
	phaseStmts [][]compiledClocked
	staged     []pendingWrite

	cycles   uint64
	activity *activityState

	// obs, when set, receives rtl.cycles counters and per-phase timing
	// gauges; phaseGauges pre-joins the gauge names so the traced cycle
	// path does no string building.
	obs         *obs.Collector
	phaseGauges []string
}

// pendingWrite stages one clocked update between the evaluate and
// commit halves of a phase.
type pendingWrite struct {
	cc  *compiledClocked
	idx uint64
	val uint64
	en  bool
}

// camState is the native CAM primitive's storage.
type camState struct {
	decl    CamDecl
	entries []uint64
	valid   []bool
}

type compiledAssign struct {
	target int
	mask   uint64
	fn     evalFn
}

type compiledClocked struct {
	// For reg targets: sigIndex ≥ 0. For mem/cam: memIndex/camIndex ≥ 0.
	sigIndex, memIndex, camIndex int
	mask                         uint64
	idx, cond, rhs               evalFn
}

// evalFn computes an expression value against the current state.
type evalFn func(s *Sim) uint64

// NewSim elaborates (if needed) and compiles a program.
func NewSim(prog *Program) (*Sim, error) {
	d, err := Elaborate(prog)
	if err != nil {
		return nil, err
	}
	return NewSimFromDesign(d)
}

// NewSimFromDesign compiles an already-elaborated design.
func NewSimFromDesign(d *Design) (*Sim, error) {
	s := &Sim{
		design:    d,
		vals:      make([]uint64, len(d.Signals)),
		clockedBy: make(map[string][]compiledClocked),
	}
	for _, m := range d.Mems {
		s.mems = append(s.mems, make([]uint64, m.Depth))
	}
	for _, c := range d.Cams {
		s.cams = append(s.cams, &camState{
			decl:    c,
			entries: make([]uint64, c.Depth),
			valid:   make([]bool, c.Depth),
		})
	}
	for i, sd := range d.Signals {
		if sd.Kind == KindReg {
			s.vals[i] = sd.Init & widthMask(sd.Width)
		}
	}
	for _, a := range d.Assigns {
		fn, _, err := s.compile(a.Expr, a.Line)
		if err != nil {
			return nil, err
		}
		ti := d.index[a.Target]
		s.assignFns = append(s.assignFns, compiledAssign{
			target: ti,
			mask:   widthMask(d.Signals[ti].Width),
			fn:     fn,
		})
	}
	for _, cs := range d.Clocked {
		cc := compiledClocked{sigIndex: -1, memIndex: -1, camIndex: -1}
		rhs, _, err := s.compile(cs.Expr, cs.Line)
		if err != nil {
			return nil, err
		}
		cc.rhs = rhs
		if cs.Cond != nil {
			cond, _, err := s.compile(cs.Cond, cs.Line)
			if err != nil {
				return nil, err
			}
			cc.cond = cond
		}
		if cs.Idx != nil {
			idx, _, err := s.compile(cs.Idx, cs.Line)
			if err != nil {
				return nil, err
			}
			cc.idx = idx
			if mi, ok := d.mems[cs.Target]; ok {
				cc.memIndex = mi
				cc.mask = widthMask(d.Mems[mi].Width)
			} else if ci, ok := d.cams[cs.Target]; ok {
				cc.camIndex = ci
				cc.mask = widthMask(d.Cams[ci].Width)
			}
		} else {
			ti := d.index[cs.Target]
			cc.sigIndex = ti
			cc.mask = widthMask(d.Signals[ti].Width)
		}
		s.clockedBy[cs.Phase] = append(s.clockedBy[cs.Phase], cc)
	}
	maxStmts := 0
	for _, p := range d.Phases {
		stmts := s.clockedBy[p]
		s.phaseStmts = append(s.phaseStmts, stmts)
		if len(stmts) > maxStmts {
			maxStmts = len(stmts)
		}
	}
	s.staged = make([]pendingWrite, maxStmts)
	s.settle()
	return s, nil
}

// widthMask returns the value mask for a width (1..64).
func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}

// Design returns the elaborated design.
func (s *Sim) Design() *Design { return s.design }

// Cycles returns the number of completed Cycle calls.
func (s *Sim) Cycles() uint64 { return s.cycles }

// Set drives an input (or any signal, for test setup), masking to its
// width, and re-settles combinational logic.
func (s *Sim) Set(name string, v uint64) error {
	i := s.design.SignalIndex(name)
	if i < 0 {
		return fmt.Errorf("fcl: unknown signal %q", name)
	}
	s.vals[i] = v & widthMask(s.design.Signals[i].Width)
	s.settle()
	return nil
}

// Get returns a signal's current value (0 for unknown names).
func (s *Sim) Get(name string) uint64 {
	i := s.design.SignalIndex(name)
	if i < 0 {
		return 0
	}
	return s.vals[i]
}

// GetMem reads a memory word directly (test/debug access).
func (s *Sim) GetMem(name string, addr int) (uint64, error) {
	mi, ok := s.design.mems[name]
	if !ok {
		return 0, fmt.Errorf("fcl: unknown mem %q", name)
	}
	if addr < 0 || addr >= len(s.mems[mi]) {
		return 0, fmt.Errorf("fcl: mem %q address %d out of range", name, addr)
	}
	return s.mems[mi][addr], nil
}

// LoadMem initializes memory contents (e.g. a program image).
func (s *Sim) LoadMem(name string, words []uint64) error {
	mi, ok := s.design.mems[name]
	if !ok {
		return fmt.Errorf("fcl: unknown mem %q", name)
	}
	if len(words) > len(s.mems[mi]) {
		return fmt.Errorf("fcl: mem %q holds %d words, got %d", name, len(s.mems[mi]), len(words))
	}
	mask := widthMask(s.design.Mems[mi].Width)
	for i, w := range words {
		s.mems[mi][i] = w & mask
	}
	s.settle()
	return nil
}

// settle evaluates all combinational assigns once in topological order.
func (s *Sim) settle() {
	for i := range s.assignFns {
		a := &s.assignFns[i]
		s.vals[a.target] = a.fn(s) & a.mask
	}
}

// Phase executes one clock phase: evaluate all of the phase's clocked
// statements against the pre-edge state, commit them simultaneously,
// then re-settle combinational logic.
func (s *Sim) Phase(phase string) {
	s.runPhase(s.clockedBy[phase])
}

// runPhase is the allocation-free phase kernel: staged writes go
// through the sim's reusable buffer.
func (s *Sim) runPhase(stmts []compiledClocked) {
	if len(stmts) > len(s.staged) {
		s.staged = make([]pendingWrite, len(stmts))
	}
	staged := s.staged[:len(stmts)]
	for i := range stmts {
		cc := &stmts[i]
		en := cc.cond == nil || cc.cond(s) != 0
		if s.activity != nil {
			s.activity.possib++
			if en {
				s.activity.enabled++
			}
		}
		p := pendingWrite{cc: cc, en: en}
		if en {
			p.val = cc.rhs(s) & cc.mask
			if cc.idx != nil {
				p.idx = cc.idx(s)
			}
		}
		staged[i] = p
	}
	for _, p := range staged {
		if !p.en {
			continue
		}
		switch {
		case p.cc.sigIndex >= 0:
			s.vals[p.cc.sigIndex] = p.val
		case p.cc.memIndex >= 0:
			mem := s.mems[p.cc.memIndex]
			if int(p.idx) < len(mem) {
				mem[p.idx] = p.val
			}
		case p.cc.camIndex >= 0:
			cam := s.cams[p.cc.camIndex]
			if int(p.idx) < len(cam.entries) {
				cam.entries[p.idx] = p.val
				cam.valid[p.idx] = true
			}
		}
	}
	s.settle()
}

// Cycle runs all phases once in sorted order (phi1 before phi2) and
// counts a completed cycle.
func (s *Sim) Cycle() {
	if s.obs != nil {
		s.cycleTraced()
		return
	}
	for _, stmts := range s.phaseStmts {
		s.runPhase(stmts)
	}
	s.cycles++
	s.recordCycleActivity()
}

// cycleTraced is Cycle with telemetry: each phase's wall clock
// accumulates into its rtl.phase.<name>_ms gauge and completed cycles
// into the rtl.cycles counter. Kept off Cycle's untraced path so the
// "telemetry disabled" hot loop has no clock calls.
func (s *Sim) cycleTraced() {
	for pi, stmts := range s.phaseStmts {
		t0 := obs.Now()
		s.runPhase(stmts)
		s.obs.AddGauge(s.phaseGauges[pi], float64(obs.Now().Sub(t0).Microseconds())/1000)
	}
	s.cycles++
	s.recordCycleActivity()
	s.obs.Add("rtl.cycles", 1)
}

// SetObserver attaches a telemetry collector (nil detaches): completed
// cycles count into rtl.cycles, and each clock phase's cumulative wall
// clock into an rtl.phase.<name>_ms gauge.
func (s *Sim) SetObserver(c *obs.Collector) {
	s.obs = c
	s.phaseGauges = s.phaseGauges[:0]
	for _, p := range s.design.Phases {
		s.phaseGauges = append(s.phaseGauges, "rtl.phase."+p+"_ms")
	}
}

// Run executes n cycles.
func (s *Sim) Run(n int) {
	for i := 0; i < n; i++ {
		s.Cycle()
	}
}

// CamInvalidate clears a CAM entry (test/debug access).
func (s *Sim) CamInvalidate(name string, entry int) error {
	ci, ok := s.design.cams[name]
	if !ok {
		return fmt.Errorf("fcl: unknown cam %q", name)
	}
	if entry < 0 || entry >= len(s.cams[ci].valid) {
		return fmt.Errorf("fcl: cam %q entry %d out of range", name, entry)
	}
	s.cams[ci].valid[entry] = false
	s.settle()
	return nil
}

// compile turns an expression into an evalFn; it returns the result
// width for masking decisions in parent nodes.
func (s *Sim) compile(e Expr, line int) (evalFn, int, error) {
	d := s.design
	switch v := e.(type) {
	case *Num:
		val := v.Value
		w := v.Width
		if w == 0 {
			w = bits.Len64(val)
			if w == 0 {
				w = 1
			}
		}
		return func(*Sim) uint64 { return val }, w, nil

	case *Ident:
		i := d.SignalIndex(v.Name)
		if i < 0 {
			return nil, 0, fmt.Errorf("fcl: line %d: undeclared signal %q", line, v.Name)
		}
		return func(s *Sim) uint64 { return s.vals[i] }, d.Signals[i].Width, nil

	case *Index:
		idxFn, _, err := s.compile(v.Idx, line)
		if err != nil {
			return nil, 0, err
		}
		if mi, ok := d.mems[v.Base]; ok {
			depth := uint64(d.Mems[mi].Depth)
			return func(s *Sim) uint64 {
				a := idxFn(s)
				if a >= depth {
					return 0
				}
				return s.mems[mi][a]
			}, d.Mems[mi].Width, nil
		}
		i := d.SignalIndex(v.Base)
		if i < 0 {
			return nil, 0, fmt.Errorf("fcl: line %d: undeclared %q", line, v.Base)
		}
		return func(s *Sim) uint64 { return (s.vals[i] >> (idxFn(s) & 63)) & 1 }, 1, nil

	case *Slice:
		i := d.SignalIndex(v.Base)
		if i < 0 {
			return nil, 0, fmt.Errorf("fcl: line %d: undeclared %q", line, v.Base)
		}
		lo := uint(v.Lo)
		mask := widthMask(v.Hi - v.Lo + 1)
		return func(s *Sim) uint64 { return (s.vals[i] >> lo) & mask }, v.Hi - v.Lo + 1, nil

	case *Unary:
		xf, xw, err := s.compile(v.X, line)
		if err != nil {
			return nil, 0, err
		}
		mask := widthMask(xw)
		switch v.Op {
		case "~":
			return func(s *Sim) uint64 { return ^xf(s) & mask }, xw, nil
		case "!":
			return func(s *Sim) uint64 {
				if xf(s) == 0 {
					return 1
				}
				return 0
			}, 1, nil
		case "-":
			return func(s *Sim) uint64 { return (-xf(s)) & mask }, xw, nil
		case "redor":
			return func(s *Sim) uint64 {
				if xf(s) != 0 {
					return 1
				}
				return 0
			}, 1, nil
		case "redand":
			return func(s *Sim) uint64 {
				if xf(s) == mask {
					return 1
				}
				return 0
			}, 1, nil
		case "redxor":
			return func(s *Sim) uint64 { return uint64(bits.OnesCount64(xf(s)) & 1) }, 1, nil
		}
		return nil, 0, fmt.Errorf("fcl: line %d: unknown unary %q", line, v.Op)

	case *Binary:
		lf, lw, err := s.compile(v.L, line)
		if err != nil {
			return nil, 0, err
		}
		rf, rw, err := s.compile(v.R, line)
		if err != nil {
			return nil, 0, err
		}
		w := lw
		if rw > w {
			w = rw
		}
		mask := widthMask(w)
		b1 := func(cond func(a, b uint64) bool) evalFn {
			return func(s *Sim) uint64 {
				if cond(lf(s), rf(s)) {
					return 1
				}
				return 0
			}
		}
		switch v.Op {
		case "|":
			return func(s *Sim) uint64 { return lf(s) | rf(s) }, w, nil
		case "^":
			return func(s *Sim) uint64 { return lf(s) ^ rf(s) }, w, nil
		case "&":
			return func(s *Sim) uint64 { return lf(s) & rf(s) }, w, nil
		case "+":
			return func(s *Sim) uint64 { return (lf(s) + rf(s)) & mask }, w, nil
		case "-":
			return func(s *Sim) uint64 { return (lf(s) - rf(s)) & mask }, w, nil
		case "<<":
			lm := widthMask(lw)
			return func(s *Sim) uint64 { return (lf(s) << (rf(s) & 63)) & lm }, lw, nil
		case ">>":
			return func(s *Sim) uint64 { return lf(s) >> (rf(s) & 63) }, lw, nil
		case "==":
			return b1(func(a, b uint64) bool { return a == b }), 1, nil
		case "!=":
			return b1(func(a, b uint64) bool { return a != b }), 1, nil
		case "<":
			return b1(func(a, b uint64) bool { return a < b }), 1, nil
		case "<=":
			return b1(func(a, b uint64) bool { return a <= b }), 1, nil
		case ">":
			return b1(func(a, b uint64) bool { return a > b }), 1, nil
		case ">=":
			return b1(func(a, b uint64) bool { return a >= b }), 1, nil
		}
		return nil, 0, fmt.Errorf("fcl: line %d: unknown operator %q", line, v.Op)

	case *Cond:
		cf, _, err := s.compile(v.C, line)
		if err != nil {
			return nil, 0, err
		}
		tf, tw, err := s.compile(v.T, line)
		if err != nil {
			return nil, 0, err
		}
		ff, fw, err := s.compile(v.F, line)
		if err != nil {
			return nil, 0, err
		}
		w := tw
		if fw > w {
			w = fw
		}
		return func(s *Sim) uint64 {
			if cf(s) != 0 {
				return tf(s)
			}
			return ff(s)
		}, w, nil

	case *Concat:
		type part struct {
			fn evalFn
			w  uint
		}
		var parts []part
		total := 0
		for _, p := range v.Parts {
			pf, pw, err := s.compile(p, line)
			if err != nil {
				return nil, 0, err
			}
			parts = append(parts, part{pf, uint(pw)})
			total += pw
		}
		if total > 64 {
			return nil, 0, fmt.Errorf("fcl: line %d: concat width %d exceeds 64", line, total)
		}
		return func(s *Sim) uint64 {
			var out uint64
			for _, p := range parts {
				out = (out << p.w) | (p.fn(s) & widthMask(int(p.w)))
			}
			return out
		}, total, nil

	case *CamOp:
		ci, ok := d.cams[v.Cam]
		if !ok {
			return nil, 0, fmt.Errorf("fcl: line %d: undeclared cam %q", line, v.Cam)
		}
		kf, _, err := s.compile(v.Key, line)
		if err != nil {
			return nil, 0, err
		}
		mask := widthMask(d.Cams[ci].Width)
		switch v.Op {
		case "hit":
			return func(s *Sim) uint64 {
				key := kf(s) & mask
				cam := s.cams[ci]
				for i, e := range cam.entries {
					if cam.valid[i] && e == key {
						return 1
					}
				}
				return 0
			}, 1, nil
		case "index":
			w := bits.Len(uint(d.Cams[ci].Depth - 1))
			if w == 0 {
				w = 1
			}
			return func(s *Sim) uint64 {
				key := kf(s) & mask
				cam := s.cams[ci]
				for i, e := range cam.entries {
					if cam.valid[i] && e == key {
						return uint64(i)
					}
				}
				return 0
			}, w, nil
		}
		return nil, 0, fmt.Errorf("fcl: line %d: unknown cam op %q", line, v.Op)
	}
	return nil, 0, fmt.Errorf("fcl: line %d: unknown expression %T", line, e)
}

// State is an opaque snapshot of a simulation's architectural state
// (registers, memories, CAM contents) used by sequential equivalence
// checking and checkpoint/restore.
type State struct {
	vals []uint64
	mems [][]uint64
	cams [][]uint64
	vld  [][]bool
}

// Snapshot captures the current state.
func (s *Sim) Snapshot() *State {
	st := &State{vals: append([]uint64(nil), s.vals...)}
	for _, m := range s.mems {
		st.mems = append(st.mems, append([]uint64(nil), m...))
	}
	for _, c := range s.cams {
		st.cams = append(st.cams, append([]uint64(nil), c.entries...))
		st.vld = append(st.vld, append([]bool(nil), c.valid...))
	}
	return st
}

// Restore reinstates a snapshot taken from the same design.
func (s *Sim) Restore(st *State) error {
	if len(st.vals) != len(s.vals) || len(st.mems) != len(s.mems) || len(st.cams) != len(s.cams) {
		return fmt.Errorf("fcl: snapshot shape mismatch")
	}
	copy(s.vals, st.vals)
	for i := range s.mems {
		copy(s.mems[i], st.mems[i])
	}
	for i := range s.cams {
		copy(s.cams[i].entries, st.cams[i])
		copy(s.cams[i].valid, st.vld[i])
	}
	s.settle()
	return nil
}

// StateKey returns a compact, comparable fingerprint of the architectural
// state (register values only — memories hash in) for visited-set use.
func (s *Sim) StateKey() string {
	var b []byte
	for i, sd := range s.design.Signals {
		if sd.Kind == KindReg {
			b = appendU64(b, s.vals[i])
		}
	}
	for _, m := range s.mems {
		for _, w := range m {
			b = appendU64(b, w)
		}
	}
	for _, c := range s.cams {
		for i, e := range c.entries {
			b = appendU64(b, e)
			if c.valid[i] {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		}
	}
	return string(b)
}

// appendU64 appends a little-endian uint64.
func appendU64(b []byte, v uint64) []byte {
	for i := 0; i < 8; i++ {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}
