// Package rtl implements FCL ("full-custom language"), the toolkit's
// behavioural/RTL hardware description language and its phase-accurate
// simulator.
//
// §4.1 of the paper: "Standard hardware description languages have
// proven to be inadequate for us when describing highly variable ...
// parts of the design. In addition, these standard languages tend to
// require more hierarchical levels than desired. Some of our functional
// units are just difficult to code in standard languages and result in
// highly inefficient run-times, e.g. a 2000 port CAM structure. We have
// developed a hardware language driven by our style of designing
// microprocessors, with programming constructs that make sense for the
// design itself, and which compiles into very efficient code."
//
// FCL therefore provides, besides ordinary wires/registers/memories, a
// native content-addressable-memory primitive (cam) whose match
// operation is evaluated directly rather than through thousands of
// elaborated comparators. The S4 experiment benchmarks the primitive
// against its gate-level expansion.
//
// The language is deliberately small and line-oriented:
//
//	module top(a[32], b[32] -> sum[32], hit)
//	wire t[32]
//	reg acc[32] @phi1
//	mem m 16 32
//	cam tags 64 32
//	assign t = a + b
//	assign sum = t ^ acc
//	assign hit = tags.hit(a)
//	on phi1: acc <= acc + 1
//	on phi1: m[a[3:0]] <= b
//	inst u1 of child(x=t, y=sum)
//	endmodule
//
// Signals are up to 64 bits wide. Simulation is phase-accurate: each
// register belongs to a clock phase; a cycle evaluates combinational
// logic, commits phi1 registers, re-evaluates, commits phi2, matching
// the two-phase methodology of the circuits the RTL shadows.
package rtl

import "fmt"

// Expr is an FCL expression AST node.
type Expr interface {
	exprNode()
	String() string
}

// Num is an integer literal with optional explicit width.
type Num struct {
	Value uint64
	Width int // 0 = unsized
}

// Ident references a signal.
type Ident struct{ Name string }

// Index is a bit-select or memory read: Base[Idx].
type Index struct {
	Base string
	Idx  Expr
}

// Slice is a bit range: Base[Hi:Lo].
type Slice struct {
	Base   string
	Hi, Lo int
}

// Unary is ~x, !x, -x, or a reduction (redor/redand/redxor).
type Unary struct {
	Op string
	X  Expr
}

// Binary is a binary operator application.
type Binary struct {
	Op   string
	L, R Expr
}

// Cond is c ? a : b.
type Cond struct {
	C, T, F Expr
}

// Concat is {a, b, ...} with the first operand most significant.
type Concat struct{ Parts []Expr }

// CamOp is a CAM query: Cam.hit(Key) or Cam.index(Key).
type CamOp struct {
	Cam string
	Op  string // "hit" or "index"
	Key Expr
}

func (*Num) exprNode()    {}
func (*Ident) exprNode()  {}
func (*Index) exprNode()  {}
func (*Slice) exprNode()  {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}
func (*Cond) exprNode()   {}
func (*Concat) exprNode() {}
func (*CamOp) exprNode()  {}

// String implementations render source-like forms for diagnostics.
func (n *Num) String() string    { return fmt.Sprintf("%d", n.Value) }
func (i *Ident) String() string  { return i.Name }
func (i *Index) String() string  { return fmt.Sprintf("%s[%s]", i.Base, i.Idx) }
func (s *Slice) String() string  { return fmt.Sprintf("%s[%d:%d]", s.Base, s.Hi, s.Lo) }
func (u *Unary) String() string  { return u.Op + u.X.String() }
func (b *Binary) String() string { return "(" + b.L.String() + b.Op + b.R.String() + ")" }
func (c *Cond) String() string {
	return "(" + c.C.String() + "?" + c.T.String() + ":" + c.F.String() + ")"
}
func (c *Concat) String() string {
	s := "{"
	for i, p := range c.Parts {
		if i > 0 {
			s += ","
		}
		s += p.String()
	}
	return s + "}"
}
func (c *CamOp) String() string { return fmt.Sprintf("%s.%s(%s)", c.Cam, c.Op, c.Key) }

// SignalKind distinguishes declaration kinds.
type SignalKind int

// Signal kinds.
const (
	KindWire SignalKind = iota
	KindReg
	KindInput
	KindOutput
)

// SignalDecl declares a wire, reg or port.
type SignalDecl struct {
	Name  string
	Width int
	Kind  SignalKind
	// Phase is the clock phase of a reg ("phi1"/"phi2"/...).
	Phase string
	// Init is the register reset value.
	Init uint64
}

// MemDecl declares a memory of Depth words × Width bits.
type MemDecl struct {
	Name  string
	Depth int
	Width int
}

// CamDecl declares a content-addressable memory: Depth entries of Width
// bits, with per-entry valid bits.
type CamDecl struct {
	Name  string
	Depth int
	Width int
}

// Assign is a combinational assignment. If IndexExpr is nil the target
// is the whole signal.
type Assign struct {
	Target string
	Expr   Expr
	Line   int
}

// ClockedStmt is a register/memory/CAM update on a phase:
// target <= expr, target[idx] <= expr.
type ClockedStmt struct {
	Phase  string
	Target string
	Idx    Expr // nil for plain registers
	Expr   Expr
	// Cond guards the update (conditional clocking! §3); nil = always.
	Cond Expr
	Line int
}

// Instance instantiates a child module with named port bindings.
type Instance struct {
	Name     string
	Module   string
	Bindings map[string]string // child port → parent signal
	Line     int
}

// Module is a parsed FCL module.
type Module struct {
	Name      string
	Ports     []SignalDecl // inputs then outputs, declaration order
	Signals   []SignalDecl // wires and regs
	Mems      []MemDecl
	Cams      []CamDecl
	Assigns   []Assign
	Clocked   []ClockedStmt
	Instances []Instance
}

// Program is a set of modules; Top names the root.
type Program struct {
	Modules map[string]*Module
	Top     string
}

// Inputs returns the module's input declarations.
func (m *Module) Inputs() []SignalDecl {
	var out []SignalDecl
	for _, p := range m.Ports {
		if p.Kind == KindInput {
			out = append(out, p)
		}
	}
	return out
}

// Outputs returns the module's output declarations.
func (m *Module) Outputs() []SignalDecl {
	var out []SignalDecl
	for _, p := range m.Ports {
		if p.Kind == KindOutput {
			out = append(out, p)
		}
	}
	return out
}
