package rtl

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

const twoPhaseSrc = `
module top(d[8] -> q[8])
reg r1[8] @phi1
reg r2[8] @phi2
on phi1: r1 <= d
on phi2: r2 <= r1
assign q = r2
endmodule
`

// TestObserverCycleCounters checks the RTL telemetry: completed cycles
// count into rtl.cycles and every clock phase accumulates a timing
// gauge — and observation never changes simulation results.
func TestObserverCycleCounters(t *testing.T) {
	s := mustSim(t, twoPhaseSrc)
	col := obs.New()
	s.SetObserver(col)
	set(t, s, "d", 42)
	s.Run(10)
	if got := col.Counter("rtl.cycles"); got != 10 {
		t.Errorf("rtl.cycles = %d, want 10", got)
	}
	gauges := col.Gauges()
	for _, phase := range s.Design().Phases {
		name := "rtl.phase." + phase + "_ms"
		if _, ok := gauges[name]; !ok {
			t.Errorf("missing phase gauge %s (have %v)", name, gauges)
		}
		if gauges[name] < 0 {
			t.Errorf("negative phase time %s = %g", name, gauges[name])
		}
	}
	if got := s.Get("q"); got != 42 {
		t.Errorf("traced pipeline q = %d, want 42", got)
	}

	// Untraced reference must agree cycle for cycle.
	ref := mustSim(t, twoPhaseSrc)
	set(t, ref, "d", 42)
	ref.Run(10)
	if ref.Get("q") != s.Get("q") || ref.Cycles() != s.Cycles() {
		t.Error("observer changed simulation state")
	}
}

// TestObserverDetachRestoresFastPath: SetObserver(nil) returns Cycle to
// the untimed path and stops counting.
func TestObserverDetachRestoresFastPath(t *testing.T) {
	s := mustSim(t, twoPhaseSrc)
	col := obs.New()
	s.SetObserver(col)
	s.Run(3)
	s.SetObserver(nil)
	s.Run(4)
	if got := col.Counter("rtl.cycles"); got != 3 {
		t.Errorf("rtl.cycles = %d after detach, want 3", got)
	}
	if s.Cycles() != 7 {
		t.Errorf("cycles = %d, want 7", s.Cycles())
	}
}

// TestPhaseGaugeNames pins the gauge naming scheme the manifest docs
// promise (rtl.phase.<name>_ms).
func TestPhaseGaugeNames(t *testing.T) {
	s := mustSim(t, twoPhaseSrc)
	s.SetObserver(obs.New())
	for _, g := range s.phaseGauges {
		if !strings.HasPrefix(g, "rtl.phase.") || !strings.HasSuffix(g, "_ms") {
			t.Errorf("gauge name %q breaks rtl.phase.<name>_ms scheme", g)
		}
	}
	if len(s.phaseGauges) != len(s.Design().Phases) {
		t.Errorf("%d gauge names for %d phases", len(s.phaseGauges), len(s.Design().Phases))
	}
}
