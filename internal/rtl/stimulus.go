package rtl

import (
	"fmt"

	"repro/internal/obs"
)

// Stimulus drives pseudo-random input sequences into a simulation —
// §4.1: "Simulation requires stimulus patterns, which are either
// manually generated or pseudo-random sequences." The generator is
// seeded and therefore reproducible: a failing cycle number is enough to
// replay a run. The obs.RNG stream is pinned across Go releases, so a
// recorded (seed, cycle) pair replays forever.
type Stimulus struct {
	sim    *Sim
	rng    *obs.RNG
	inputs []stimInput
	// Bias is the probability of a 1 in each generated bit (default
	// 0.5); corner-hunting runs often want 0.1/0.9 biases.
	Bias float64
}

type stimInput struct {
	name string
	mask uint64
}

// NewStimulus prepares a generator over the named inputs.
func NewStimulus(sim *Sim, seed int64, inputs ...string) (*Stimulus, error) {
	st := &Stimulus{sim: sim, rng: obs.NewRNG(seed), Bias: 0.5}
	for _, in := range inputs {
		i := sim.Design().SignalIndex(in)
		if i < 0 {
			return nil, fmt.Errorf("fcl: stimulus input %q not found", in)
		}
		st.inputs = append(st.inputs, stimInput{in, widthMask(sim.Design().Signals[i].Width)})
	}
	return st, nil
}

// Step drives one random vector and advances one cycle, returning the
// applied values.
func (s *Stimulus) Step() map[string]uint64 {
	applied := s.Vector()
	s.sim.Cycle()
	return applied
}

// Run executes n random cycles, calling check (if non-nil) after each;
// the first non-nil error stops the run and is returned wrapped with the
// cycle number and the stimulus vector that exposed it.
func (s *Stimulus) Run(n int, check func(sim *Sim) error) error {
	for i := 0; i < n; i++ {
		applied := s.Step()
		if check == nil {
			continue
		}
		if err := check(s.sim); err != nil {
			return fmt.Errorf("fcl: stimulus cycle %d (inputs %v): %w", i, applied, err)
		}
	}
	return nil
}

// Vector generates one random input assignment and applies it WITHOUT
// advancing the clock — for callers (like shadow-mode co-simulation)
// that own the cycle loop.
func (s *Stimulus) Vector() map[string]uint64 {
	applied := make(map[string]uint64, len(s.inputs))
	for _, in := range s.inputs {
		var v uint64
		for b := uint64(1); b != 0 && b <= in.mask; b <<= 1 {
			if s.rng.Float64() < s.Bias {
				v |= b
			}
		}
		v &= in.mask
		applied[in.name] = v
		_ = s.sim.Set(in.name, v)
	}
	return applied
}
