package rtl

import (
	"fmt"
	"math/bits"

	"repro/internal/obs"
)

// Lanes is the packed simulation width: one PackedSim carries this many
// independent machines, one per bit position of every plane word.
const Lanes = 64

const allLanes = ^uint64(0)

// PackedSim is the 64-lane bit-parallel twin of Sim. State is stored
// bit-plane transposed: a w-bit signal occupies w uint64 planes, where
// plane b holds bit b of the signal across all 64 lanes. Combinational
// settling and clocked phases then run as word-wide AND/OR/XOR over
// planes — one settle advances 64 independent stimulus vectors — with
// per-lane gather/scatter fallbacks only for the inherently
// lane-divergent operations (memory addressing, CAM search, variable
// shifts). Lane l of a PackedSim is defined to behave exactly like a
// scalar Sim fed lane l's stimulus; the differential tests pin that.
type PackedSim struct {
	design *Design
	off    []int      // signal i's planes live at vals[off[i] : off[i]+Width]
	vals   []uint64   // all signal planes, flat
	mems   [][]uint64 // lane-major: mems[mi][lane*depth+addr]
	cams   []*packedCamState

	assignFns  []packedAssign
	phaseStmts [][]packedClocked

	cycles uint64
	obs    *obs.Collector
}

// packedCamState is the CAM primitive's per-lane storage.
type packedCamState struct {
	decl    CamDecl
	entries []uint64 // lane-major
	valid   []bool
}

type packedAssign struct {
	off, width int
	fn         packedFn
	// buf is non-nil when the expression's natural width differs from
	// the target width (scalar path masks/zero-extends at assignment).
	buf []uint64
}

type packedClocked struct {
	sigIndex, memIndex, camIndex int
	off, width                   int
	cond, rhs, idx               packedFn
	condBuf, valBuf, idxBuf      []uint64
	en                           uint64
}

// packedFn fills out (exactly the expression's natural width in planes)
// with the expression's value across all lanes.
type packedFn func(p *PackedSim, out []uint64)

// NewPackedSim elaborates (if needed) and compiles a program for
// 64-lane evaluation.
func NewPackedSim(prog *Program) (*PackedSim, error) {
	d, err := Elaborate(prog)
	if err != nil {
		return nil, err
	}
	return NewPackedSimFromDesign(d)
}

// NewPackedSimFromDesign compiles an already-elaborated design. The
// design is read-only here, so many PackedSims (e.g. parallel lane
// blocks) can share one Design.
func NewPackedSimFromDesign(d *Design) (*PackedSim, error) {
	p := &PackedSim{design: d, off: make([]int, len(d.Signals))}
	total := 0
	for i, sd := range d.Signals {
		p.off[i] = total
		total += sd.Width
	}
	p.vals = make([]uint64, total)
	for i, sd := range d.Signals {
		if sd.Kind == KindReg {
			broadcast(p.vals[p.off[i]:p.off[i]+sd.Width], sd.Init)
		}
	}
	for _, m := range d.Mems {
		p.mems = append(p.mems, make([]uint64, Lanes*m.Depth))
	}
	for _, c := range d.Cams {
		p.cams = append(p.cams, &packedCamState{
			decl:    c,
			entries: make([]uint64, Lanes*c.Depth),
			valid:   make([]bool, Lanes*c.Depth),
		})
	}
	for _, a := range d.Assigns {
		fn, w, err := p.compile(a.Expr, a.Line)
		if err != nil {
			return nil, err
		}
		ti := d.index[a.Target]
		pa := packedAssign{off: p.off[ti], width: d.Signals[ti].Width, fn: fn}
		if w != pa.width {
			pa.buf = make([]uint64, w)
		}
		p.assignFns = append(p.assignFns, pa)
	}
	clockedBy := map[string][]packedClocked{}
	for _, cs := range d.Clocked {
		cc := packedClocked{sigIndex: -1, memIndex: -1, camIndex: -1}
		rhs, rw, err := p.compile(cs.Expr, cs.Line)
		if err != nil {
			return nil, err
		}
		cc.rhs = rhs
		cc.valBuf = make([]uint64, rw)
		if cs.Cond != nil {
			cond, cw, err := p.compile(cs.Cond, cs.Line)
			if err != nil {
				return nil, err
			}
			cc.cond = cond
			cc.condBuf = make([]uint64, cw)
		}
		if cs.Idx != nil {
			idx, iw, err := p.compile(cs.Idx, cs.Line)
			if err != nil {
				return nil, err
			}
			cc.idx = idx
			cc.idxBuf = make([]uint64, iw)
			if mi, ok := d.mems[cs.Target]; ok {
				cc.memIndex = mi
				cc.width = d.Mems[mi].Width
			} else if ci, ok := d.cams[cs.Target]; ok {
				cc.camIndex = ci
				cc.width = d.Cams[ci].Width
			}
		} else {
			ti := d.index[cs.Target]
			cc.sigIndex = ti
			cc.off = p.off[ti]
			cc.width = d.Signals[ti].Width
		}
		clockedBy[cs.Phase] = append(clockedBy[cs.Phase], cc)
	}
	for _, ph := range d.Phases {
		p.phaseStmts = append(p.phaseStmts, clockedBy[ph])
	}
	p.settle()
	return p, nil
}

// broadcast sets every lane of a plane group to the same scalar value.
func broadcast(planes []uint64, v uint64) {
	for b := range planes {
		if v&(1<<uint(b)) != 0 {
			planes[b] = allLanes
		} else {
			planes[b] = 0
		}
	}
}

// gatherLane reassembles one lane's scalar value from planes.
func gatherLane(planes []uint64, lane int) uint64 {
	var v uint64
	bit := uint64(1) << uint(lane)
	for b, pl := range planes {
		if pl&bit != 0 {
			v |= 1 << uint(b)
		}
	}
	return v
}

// scatterLane writes one lane's scalar value into planes.
func scatterLane(planes []uint64, lane int, v uint64) {
	bit := uint64(1) << uint(lane)
	for b := range planes {
		if v&(1<<uint(b)) != 0 {
			planes[b] |= bit
		} else {
			planes[b] &^= bit
		}
	}
}

// Design returns the elaborated design.
func (p *PackedSim) Design() *Design { return p.design }

// Cycles returns the number of completed Cycle calls (each carries all
// 64 lanes one cycle forward).
func (p *PackedSim) Cycles() uint64 { return p.cycles }

// LaneCycles returns cycles × lanes: the simulated machine-cycle count
// this sim has actually covered.
func (p *PackedSim) LaneCycles() uint64 { return p.cycles * Lanes }

// SetPlanes drives a signal from bit planes (planes[b] = bit b across
// lanes) and re-settles. len(planes) must equal the signal width.
func (p *PackedSim) SetPlanes(name string, planes []uint64) error {
	i := p.design.SignalIndex(name)
	if i < 0 {
		return fmt.Errorf("fcl: unknown signal %q", name)
	}
	w := p.design.Signals[i].Width
	if len(planes) != w {
		return fmt.Errorf("fcl: signal %q is %d bits, got %d planes", name, w, len(planes))
	}
	copy(p.vals[p.off[i]:p.off[i]+w], planes)
	p.settle()
	return nil
}

// SetAll broadcasts one value to every lane of a signal and re-settles.
func (p *PackedSim) SetAll(name string, v uint64) error {
	i := p.design.SignalIndex(name)
	if i < 0 {
		return fmt.Errorf("fcl: unknown signal %q", name)
	}
	w := p.design.Signals[i].Width
	broadcast(p.vals[p.off[i]:p.off[i]+w], v&widthMask(w))
	p.settle()
	return nil
}

// SetLane drives one lane of a signal and re-settles.
func (p *PackedSim) SetLane(name string, lane int, v uint64) error {
	i := p.design.SignalIndex(name)
	if i < 0 {
		return fmt.Errorf("fcl: unknown signal %q", name)
	}
	w := p.design.Signals[i].Width
	scatterLane(p.vals[p.off[i]:p.off[i]+w], lane, v&widthMask(w))
	p.settle()
	return nil
}

// GetPlanes copies a signal's planes into dst (sized to the signal
// width) and returns it; dst may be nil.
func (p *PackedSim) GetPlanes(name string, dst []uint64) []uint64 {
	i := p.design.SignalIndex(name)
	if i < 0 {
		return nil
	}
	w := p.design.Signals[i].Width
	if len(dst) < w {
		dst = make([]uint64, w)
	}
	copy(dst[:w], p.vals[p.off[i]:p.off[i]+w])
	return dst[:w]
}

// GetLane returns one lane's value of a signal (0 for unknown names).
func (p *PackedSim) GetLane(name string, lane int) uint64 {
	i := p.design.SignalIndex(name)
	if i < 0 {
		return 0
	}
	return gatherLane(p.vals[p.off[i]:p.off[i]+p.design.Signals[i].Width], lane)
}

// GetMem reads one lane's memory word.
func (p *PackedSim) GetMem(name string, lane, addr int) (uint64, error) {
	mi, ok := p.design.mems[name]
	if !ok {
		return 0, fmt.Errorf("fcl: unknown mem %q", name)
	}
	depth := p.design.Mems[mi].Depth
	if addr < 0 || addr >= depth {
		return 0, fmt.Errorf("fcl: mem %q address %d out of range", name, addr)
	}
	return p.mems[mi][lane*depth+addr], nil
}

// LoadMem initializes memory contents identically in every lane.
func (p *PackedSim) LoadMem(name string, words []uint64) error {
	mi, ok := p.design.mems[name]
	if !ok {
		return fmt.Errorf("fcl: unknown mem %q", name)
	}
	depth := p.design.Mems[mi].Depth
	if len(words) > depth {
		return fmt.Errorf("fcl: mem %q holds %d words, got %d", name, depth, len(words))
	}
	mask := widthMask(p.design.Mems[mi].Width)
	mem := p.mems[mi]
	for lane := 0; lane < Lanes; lane++ {
		for i, w := range words {
			mem[lane*depth+i] = w & mask
		}
	}
	p.settle()
	return nil
}

// SetObserver attaches a telemetry collector (nil detaches). Completed
// packed cycles count into rtl.packed_cycles and per-lane coverage into
// rtl.lane_cycles; the lane width is published as the rtl.lanes gauge.
func (p *PackedSim) SetObserver(c *obs.Collector) {
	p.obs = c
	if c != nil {
		c.SetGauge("rtl.lanes", Lanes)
	}
}

// settle evaluates all combinational assigns once in topological order.
func (p *PackedSim) settle() {
	for i := range p.assignFns {
		a := &p.assignFns[i]
		dst := p.vals[a.off : a.off+a.width]
		if a.buf == nil {
			a.fn(p, dst)
			continue
		}
		// Natural width != target width: scalar masks/zero-extends at
		// the assignment; plane form truncates or zero-fills.
		a.fn(p, a.buf)
		n := copy(dst, a.buf)
		for b := n; b < a.width; b++ {
			dst[b] = 0
		}
	}
}

// Phase executes one clock phase across all lanes: evaluate every
// clocked statement against the pre-edge state (per-lane enable masks),
// commit simultaneously, then re-settle.
func (p *PackedSim) Phase(phase string) {
	for pi, ph := range p.design.Phases {
		if ph == phase {
			p.runPhase(p.phaseStmts[pi])
			return
		}
	}
}

func (p *PackedSim) runPhase(stmts []packedClocked) {
	for i := range stmts {
		cc := &stmts[i]
		en := allLanes
		if cc.cond != nil {
			cc.cond(p, cc.condBuf)
			en = 0
			for _, pl := range cc.condBuf {
				en |= pl
			}
		}
		cc.en = en
		if en == 0 {
			continue
		}
		cc.rhs(p, cc.valBuf)
		if cc.idx != nil {
			cc.idx(p, cc.idxBuf)
		}
	}
	for i := range stmts {
		cc := &stmts[i]
		en := cc.en
		if en == 0 {
			continue
		}
		switch {
		case cc.sigIndex >= 0:
			planes := p.vals[cc.off : cc.off+cc.width]
			for b := range planes {
				var vb uint64
				if b < len(cc.valBuf) {
					vb = cc.valBuf[b]
				}
				planes[b] = (vb & en) | (planes[b] &^ en)
			}
		case cc.memIndex >= 0:
			mem := p.mems[cc.memIndex]
			depth := uint64(p.design.Mems[cc.memIndex].Depth)
			vw := cc.width
			if len(cc.valBuf) < vw {
				vw = len(cc.valBuf)
			}
			for m := en; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				a := gatherLane(cc.idxBuf, l)
				if a >= depth {
					continue
				}
				mem[uint64(l)*depth+a] = gatherLane(cc.valBuf[:vw], l)
			}
		case cc.camIndex >= 0:
			cam := p.cams[cc.camIndex]
			depth := uint64(cam.decl.Depth)
			vw := cc.width
			if len(cc.valBuf) < vw {
				vw = len(cc.valBuf)
			}
			for m := en; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				a := gatherLane(cc.idxBuf, l)
				if a >= depth {
					continue
				}
				cam.entries[uint64(l)*depth+a] = gatherLane(cc.valBuf[:vw], l)
				cam.valid[uint64(l)*depth+a] = true
			}
		}
	}
	p.settle()
}

// Cycle runs all phases once in sorted order, advancing every lane one
// machine cycle.
func (p *PackedSim) Cycle() {
	for _, stmts := range p.phaseStmts {
		p.runPhase(stmts)
	}
	p.cycles++
	if p.obs != nil {
		p.obs.Add("rtl.packed_cycles", 1)
		p.obs.Add("rtl.lane_cycles", Lanes)
	}
}

// Run executes n cycles (n × 64 lane-cycles).
func (p *PackedSim) Run(n int) {
	for i := 0; i < n; i++ {
		p.Cycle()
	}
}

// CamInvalidate clears a CAM entry in every lane.
func (p *PackedSim) CamInvalidate(name string, entry int) error {
	ci, ok := p.design.cams[name]
	if !ok {
		return fmt.Errorf("fcl: unknown cam %q", name)
	}
	cam := p.cams[ci]
	depth := cam.decl.Depth
	if entry < 0 || entry >= depth {
		return fmt.Errorf("fcl: cam %q entry %d out of range", name, entry)
	}
	for lane := 0; lane < Lanes; lane++ {
		cam.valid[lane*depth+entry] = false
	}
	p.settle()
	return nil
}

// compile lowers an expression to a plane evaluator. Width reporting
// mirrors Sim.compile exactly — the per-lane value a packedFn produces
// must match the scalar evalFn bit for bit.
func (p *PackedSim) compile(e Expr, line int) (packedFn, int, error) {
	d := p.design
	switch v := e.(type) {
	case *Num:
		val := v.Value
		w := v.Width
		if w == 0 {
			w = bits.Len64(val)
			if w == 0 {
				w = 1
			}
		}
		planes := make([]uint64, w)
		broadcast(planes, val)
		return func(_ *PackedSim, out []uint64) { copy(out, planes) }, w, nil

	case *Ident:
		i := d.SignalIndex(v.Name)
		if i < 0 {
			return nil, 0, fmt.Errorf("fcl: line %d: undeclared signal %q", line, v.Name)
		}
		off, w := p.off[i], d.Signals[i].Width
		return func(p *PackedSim, out []uint64) { copy(out, p.vals[off:off+w]) }, w, nil

	case *Index:
		idxFn, iw, err := p.compile(v.Idx, line)
		if err != nil {
			return nil, 0, err
		}
		idxBuf := make([]uint64, iw)
		if mi, ok := d.mems[v.Base]; ok {
			depth := uint64(d.Mems[mi].Depth)
			w := d.Mems[mi].Width
			return func(p *PackedSim, out []uint64) {
				idxFn(p, idxBuf)
				for b := range out {
					out[b] = 0
				}
				mem := p.mems[mi]
				for l := 0; l < Lanes; l++ {
					a := gatherLane(idxBuf, l)
					if a >= depth {
						continue
					}
					bit := uint64(1) << uint(l)
					mv := mem[uint64(l)*depth+a]
					for b := range out {
						if mv&(1<<uint(b)) != 0 {
							out[b] |= bit
						}
					}
				}
			}, w, nil
		}
		i := d.SignalIndex(v.Base)
		if i < 0 {
			return nil, 0, fmt.Errorf("fcl: line %d: undeclared %q", line, v.Base)
		}
		off, sw := p.off[i], d.Signals[i].Width
		if n, isNum := v.Idx.(*Num); isNum {
			// Constant bit select: one plane copy, no gather.
			bi := int(n.Value & 63)
			return func(p *PackedSim, out []uint64) {
				if bi < sw {
					out[0] = p.vals[off+bi]
				} else {
					out[0] = 0
				}
			}, 1, nil
		}
		return func(p *PackedSim, out []uint64) {
			idxFn(p, idxBuf)
			out[0] = 0
			sig := p.vals[off : off+sw]
			for l := 0; l < Lanes; l++ {
				bi := int(gatherLane(idxBuf, l) & 63)
				if bi < sw && sig[bi]&(1<<uint(l)) != 0 {
					out[0] |= 1 << uint(l)
				}
			}
		}, 1, nil

	case *Slice:
		i := d.SignalIndex(v.Base)
		if i < 0 {
			return nil, 0, fmt.Errorf("fcl: line %d: undeclared %q", line, v.Base)
		}
		off, sw := p.off[i], d.Signals[i].Width
		lo, w := v.Lo, v.Hi-v.Lo+1
		return func(p *PackedSim, out []uint64) {
			for b := 0; b < w; b++ {
				if lo+b < sw {
					out[b] = p.vals[off+lo+b]
				} else {
					out[b] = 0
				}
			}
		}, w, nil

	case *Unary:
		xf, xw, err := p.compile(v.X, line)
		if err != nil {
			return nil, 0, err
		}
		xa := make([]uint64, xw)
		switch v.Op {
		case "~":
			return func(p *PackedSim, out []uint64) {
				xf(p, xa)
				for b := range out {
					out[b] = ^xa[b]
				}
			}, xw, nil
		case "!":
			return func(p *PackedSim, out []uint64) {
				xf(p, xa)
				var m uint64
				for _, pl := range xa {
					m |= pl
				}
				out[0] = ^m
			}, 1, nil
		case "-":
			return func(p *PackedSim, out []uint64) {
				xf(p, xa)
				c := allLanes // two's complement: ^x + 1, carry-in 1 in every lane
				for b := 0; b < xw; b++ {
					nb := ^xa[b]
					out[b] = nb ^ c
					c = nb & c
				}
			}, xw, nil
		case "redor":
			return func(p *PackedSim, out []uint64) {
				xf(p, xa)
				var m uint64
				for _, pl := range xa {
					m |= pl
				}
				out[0] = m
			}, 1, nil
		case "redand":
			return func(p *PackedSim, out []uint64) {
				xf(p, xa)
				m := allLanes
				for _, pl := range xa {
					m &= pl
				}
				out[0] = m
			}, 1, nil
		case "redxor":
			return func(p *PackedSim, out []uint64) {
				xf(p, xa)
				var m uint64
				for _, pl := range xa {
					m ^= pl
				}
				out[0] = m
			}, 1, nil
		}
		return nil, 0, fmt.Errorf("fcl: line %d: unknown unary %q", line, v.Op)

	case *Binary:
		lf, lw, err := p.compile(v.L, line)
		if err != nil {
			return nil, 0, err
		}
		rf, rw, err := p.compile(v.R, line)
		if err != nil {
			return nil, 0, err
		}
		w := lw
		if rw > w {
			w = rw
		}
		// Operand scratch at the joint width; upper planes stay zero
		// (allocated zeroed, never written) = zero extension.
		la := make([]uint64, w)
		rb := make([]uint64, w)
		ev := func(p *PackedSim) {
			lf(p, la[:lw])
			rf(p, rb[:rw])
		}
		switch v.Op {
		case "|":
			return func(p *PackedSim, out []uint64) {
				ev(p)
				for b := 0; b < w; b++ {
					out[b] = la[b] | rb[b]
				}
			}, w, nil
		case "^":
			return func(p *PackedSim, out []uint64) {
				ev(p)
				for b := 0; b < w; b++ {
					out[b] = la[b] ^ rb[b]
				}
			}, w, nil
		case "&":
			return func(p *PackedSim, out []uint64) {
				ev(p)
				for b := 0; b < w; b++ {
					out[b] = la[b] & rb[b]
				}
			}, w, nil
		case "+":
			return func(p *PackedSim, out []uint64) {
				ev(p)
				var c uint64 // 64 ripple-carry adders, one per lane
				for b := 0; b < w; b++ {
					ab, bb := la[b], rb[b]
					out[b] = ab ^ bb ^ c
					c = (ab & bb) | (c & (ab ^ bb))
				}
			}, w, nil
		case "-":
			return func(p *PackedSim, out []uint64) {
				ev(p)
				c := allLanes // a + ^b + 1
				for b := 0; b < w; b++ {
					ab, bb := la[b], ^rb[b]
					out[b] = ab ^ bb ^ c
					c = (ab & bb) | (c & (ab ^ bb))
				}
			}, w, nil
		case "<<":
			lm := widthMask(lw)
			return func(p *PackedSim, out []uint64) {
				ev(p)
				for b := 0; b < lw; b++ {
					out[b] = 0
				}
				for l := 0; l < Lanes; l++ {
					sh := gatherLane(rb[:rw], l) & 63
					scatterLane(out[:lw], l, (gatherLane(la[:lw], l)<<sh)&lm)
				}
			}, lw, nil
		case ">>":
			return func(p *PackedSim, out []uint64) {
				ev(p)
				for b := 0; b < lw; b++ {
					out[b] = 0
				}
				for l := 0; l < Lanes; l++ {
					sh := gatherLane(rb[:rw], l) & 63
					scatterLane(out[:lw], l, gatherLane(la[:lw], l)>>sh)
				}
			}, lw, nil
		case "==":
			return func(p *PackedSim, out []uint64) {
				ev(p)
				m := allLanes
				for b := 0; b < w; b++ {
					m &= ^(la[b] ^ rb[b])
				}
				out[0] = m
			}, 1, nil
		case "!=":
			return func(p *PackedSim, out []uint64) {
				ev(p)
				m := allLanes
				for b := 0; b < w; b++ {
					m &= ^(la[b] ^ rb[b])
				}
				out[0] = ^m
			}, 1, nil
		case "<":
			return func(p *PackedSim, out []uint64) {
				ev(p)
				out[0] = borrowOut(la, rb, w)
			}, 1, nil
		case "<=":
			return func(p *PackedSim, out []uint64) {
				ev(p)
				out[0] = ^borrowOut(rb, la, w) // a<=b ⇔ !(b<a)
			}, 1, nil
		case ">":
			return func(p *PackedSim, out []uint64) {
				ev(p)
				out[0] = borrowOut(rb, la, w)
			}, 1, nil
		case ">=":
			return func(p *PackedSim, out []uint64) {
				ev(p)
				out[0] = ^borrowOut(la, rb, w)
			}, 1, nil
		}
		return nil, 0, fmt.Errorf("fcl: line %d: unknown operator %q", line, v.Op)

	case *Cond:
		cf, cw, err := p.compile(v.C, line)
		if err != nil {
			return nil, 0, err
		}
		tf, tw, err := p.compile(v.T, line)
		if err != nil {
			return nil, 0, err
		}
		ff, fw, err := p.compile(v.F, line)
		if err != nil {
			return nil, 0, err
		}
		w := tw
		if fw > w {
			w = fw
		}
		ca := make([]uint64, cw)
		ta := make([]uint64, w)
		fa := make([]uint64, w)
		return func(p *PackedSim, out []uint64) {
			cf(p, ca)
			var m uint64 // per-lane "condition nonzero" select mask
			for _, pl := range ca {
				m |= pl
			}
			tf(p, ta[:tw])
			ff(p, fa[:fw])
			for b := 0; b < w; b++ {
				out[b] = (ta[b] & m) | (fa[b] &^ m)
			}
		}, w, nil

	case *Concat:
		type part struct {
			fn  packedFn
			off int // bit offset from LSB in the result
			w   int
		}
		var parts []part
		total := 0
		for _, pe := range v.Parts {
			pf, pw, err := p.compile(pe, line)
			if err != nil {
				return nil, 0, err
			}
			parts = append(parts, part{fn: pf, w: pw})
			total += pw
		}
		if total > 64 {
			return nil, 0, fmt.Errorf("fcl: line %d: concat width %d exceeds 64", line, total)
		}
		off := total
		for i := range parts {
			off -= parts[i].w
			parts[i].off = off
		}
		return func(p *PackedSim, out []uint64) {
			for _, pt := range parts {
				pt.fn(p, out[pt.off:pt.off+pt.w])
			}
		}, total, nil

	case *CamOp:
		ci, ok := d.cams[v.Cam]
		if !ok {
			return nil, 0, fmt.Errorf("fcl: line %d: undeclared cam %q", line, v.Cam)
		}
		kf, kw, err := p.compile(v.Key, line)
		if err != nil {
			return nil, 0, err
		}
		ka := make([]uint64, kw)
		camW := d.Cams[ci].Width
		depth := d.Cams[ci].Depth
		mask := widthMask(camW)
		gw := kw
		if camW < gw {
			gw = camW // scalar masks the key to the CAM width
		}
		switch v.Op {
		case "hit":
			return func(p *PackedSim, out []uint64) {
				kf(p, ka)
				out[0] = 0
				cam := p.cams[ci]
				for l := 0; l < Lanes; l++ {
					key := gatherLane(ka[:gw], l) & mask
					base := l * depth
					for e := 0; e < depth; e++ {
						if cam.valid[base+e] && cam.entries[base+e] == key {
							out[0] |= 1 << uint(l)
							break
						}
					}
				}
			}, 1, nil
		case "index":
			w := bits.Len(uint(depth - 1))
			if w == 0 {
				w = 1
			}
			return func(p *PackedSim, out []uint64) {
				kf(p, ka)
				for b := range out {
					out[b] = 0
				}
				cam := p.cams[ci]
				for l := 0; l < Lanes; l++ {
					key := gatherLane(ka[:gw], l) & mask
					base := l * depth
					for e := 0; e < depth; e++ {
						if cam.valid[base+e] && cam.entries[base+e] == key {
							scatterLane(out, l, uint64(e))
							break
						}
					}
				}
			}, w, nil
		}
		return nil, 0, fmt.Errorf("fcl: line %d: unknown cam op %q", line, v.Op)
	}
	return nil, 0, fmt.Errorf("fcl: line %d: unknown expression %T", line, e)
}

// borrowOut computes the per-lane borrow of a-b over w planes: bit l of
// the result is 1 iff a < b in lane l (unsigned).
func borrowOut(a, b []uint64, w int) uint64 {
	var br uint64
	for i := 0; i < w; i++ {
		ab, bb := a[i], b[i]
		br = (^ab & bb) | (^(ab ^ bb) & br)
	}
	return br
}

// PackedStimulus drives 64 independent pseudo-random input sequences
// into a packed simulation — the bit-parallel twin of Stimulus. The
// obs.RNG stream is pinned, so (seed, cycle, lane) replays forever.
type PackedStimulus struct {
	sim    *PackedSim
	rng    *obs.RNG
	inputs []packedStimInput
	// Bias is the probability of a 1 in each generated bit (default
	// 0.5, which generates one raw RNG word per plane).
	Bias float64
}

type packedStimInput struct {
	name  string
	width int
}

// NewPackedStimulus prepares a generator over the named inputs.
func NewPackedStimulus(sim *PackedSim, seed int64, inputs ...string) (*PackedStimulus, error) {
	st := &PackedStimulus{sim: sim, rng: obs.NewRNG(seed), Bias: 0.5}
	for _, in := range inputs {
		i := sim.design.SignalIndex(in)
		if i < 0 {
			return nil, fmt.Errorf("fcl: stimulus input %q not found", in)
		}
		st.inputs = append(st.inputs, packedStimInput{in, sim.design.Signals[i].Width})
	}
	return st, nil
}

// Vector generates one random 64-lane assignment per input and applies
// it without advancing the clock, settling once at the end.
func (s *PackedStimulus) Vector() {
	for _, in := range s.inputs {
		i := s.sim.design.SignalIndex(in.name)
		planes := s.sim.vals[s.sim.off[i] : s.sim.off[i]+in.width]
		for b := range planes {
			planes[b] = s.planeWord()
		}
	}
	s.sim.settle()
}

// planeWord draws 64 bits at the configured bias.
func (s *PackedStimulus) planeWord() uint64 {
	if s.Bias == 0.5 {
		return s.rng.Uint64()
	}
	var w uint64
	for l := 0; l < Lanes; l++ {
		if s.rng.Float64() < s.Bias {
			w |= 1 << uint(l)
		}
	}
	return w
}

// Step drives one random 64-lane vector and advances one cycle.
func (s *PackedStimulus) Step() {
	s.Vector()
	s.sim.Cycle()
}

// Run executes n random packed cycles (n × 64 lane-cycles).
func (s *PackedStimulus) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}
