package rtl_test

// Differential lane-vs-scalar equivalence for the bit-plane packed RTL
// engine: lane l of a PackedSim must track a scalar Sim fed lane l's
// stimulus exactly — every signal, every memory word, every CAM entry,
// every cycle. The scalar closure-tree simulator is the oracle.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/designs"
	"repro/internal/obs"
	"repro/internal/rtl"
)

// rtlDiffCorpus: every RTL design generator in the repo, with the
// inputs its stimulus should hammer.
func rtlDiffCorpus() map[string]struct {
	src    string
	inputs []string
	cycles int
} {
	return map[string]struct {
		src    string
		inputs []string
		cycles int
	}{
		"pipeline":        {designs.PipelineRTL(), []string{"run"}, 40},
		"pipeline_always": {designs.PipelineRTLAlwaysClocked(), []string{"run"}, 40},
		"adder16":         {designs.AdderRTL(16), []string{"a", "b", "cin"}, 60},
		"adder32":         {designs.AdderRTL(32), []string{"a", "b", "cin"}, 60},
		"cam_native":      {designs.CamNativeRTL(8), []string{"we", "waddr", "wdata", "key"}, 80},
		"cam_expanded":    {designs.CamExpandedRTL(8), []string{"we", "waddr", "wdata", "key"}, 80},
		"mod5_counter":    {designs.Mod5CounterRTL(), []string{"tick"}, 50},
		"mod5_ring":       {designs.Mod5RingRTL(), []string{"tick"}, 50},
	}
}

// buildPair compiles one packed sim and 64 scalar sims of the same
// design.
func buildPair(t *testing.T, src string) (*rtl.PackedSim, []*rtl.Sim) {
	t.Helper()
	prog, err := rtl.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := rtl.NewPackedSim(prog)
	if err != nil {
		t.Fatal(err)
	}
	scalars := make([]*rtl.Sim, rtl.Lanes)
	for i := range scalars {
		s, err := rtl.NewSim(prog)
		if err != nil {
			t.Fatal(err)
		}
		scalars[i] = s
	}
	return ps, scalars
}

// compareRTL checks every signal in every lane, plus memory and CAM
// visible state.
func compareRTL(t *testing.T, label string, ps *rtl.PackedSim, scalars []*rtl.Sim) {
	t.Helper()
	d := ps.Design()
	for _, sd := range d.Signals {
		for lane, s := range scalars {
			if got, want := ps.GetLane(sd.Name, lane), s.Get(sd.Name); got != want {
				t.Fatalf("%s: signal %s lane %d: packed %#x, scalar %#x", label, sd.Name, lane, got, want)
			}
		}
	}
	for _, m := range d.Mems {
		for addr := 0; addr < m.Depth; addr++ {
			for lane, s := range scalars {
				got, err := ps.GetMem(m.Name, lane, addr)
				if err != nil {
					t.Fatal(err)
				}
				want, err := s.GetMem(m.Name, addr)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s: mem %s[%d] lane %d: packed %#x, scalar %#x", label, m.Name, addr, lane, got, want)
				}
			}
		}
	}
}

func TestRTLPackedLaneEquivalence(t *testing.T) {
	for name, tc := range rtlDiffCorpus() {
		name, tc := name, tc
		t.Run(name, func(t *testing.T) {
			ps, scalars := buildPair(t, tc.src)
			d := ps.Design()
			cycles := tc.cycles
			if testing.Short() {
				cycles /= 4
			}
			rng := obs.NewRNG(int64(len(name)) * 31)
			widths := map[string]int{}
			for _, in := range tc.inputs {
				si := d.SignalIndex(in)
				if si < 0 {
					t.Fatalf("input %q not in design", in)
				}
				widths[in] = d.Signals[si].Width
			}
			for cyc := 0; cyc < cycles; cyc++ {
				for _, in := range tc.inputs {
					planes := make([]uint64, widths[in])
					for b := range planes {
						planes[b] = rng.Uint64()
					}
					if err := ps.SetPlanes(in, planes); err != nil {
						t.Fatal(err)
					}
					for lane, s := range scalars {
						var v uint64
						for b, pl := range planes {
							if pl&(1<<uint(lane)) != 0 {
								v |= 1 << uint(b)
							}
						}
						if err := s.Set(in, v); err != nil {
							t.Fatal(err)
						}
					}
				}
				ps.Cycle()
				for _, s := range scalars {
					s.Cycle()
				}
				compareRTL(t, fmt.Sprintf("%s cycle %d", name, cyc), ps, scalars)
			}
		})
	}
}

// TestRTLPackedPipelineProgram runs the pipeline's real instruction
// program in every lane at once and checks the architectural result.
func TestRTLPackedPipelineProgram(t *testing.T) {
	prog, err := rtl.ParseString(designs.PipelineRTL())
	if err != nil {
		t.Fatal(err)
	}
	ps, err := rtl.NewPackedSim(prog)
	if err != nil {
		t.Fatal(err)
	}
	enc := func(op, rd, ra, rb, imm uint64) uint64 {
		return op<<13 | rd<<10 | ra<<7 | rb<<4 | imm
	}
	img := []uint64{
		enc(6, 1, 0, 0, 5),
		enc(6, 2, 0, 0, 3),
		enc(0, 3, 1, 2, 0),
		enc(1, 4, 3, 2, 0),
	}
	if err := ps.LoadMem("imem", img); err != nil {
		t.Fatal(err)
	}
	if err := ps.SetAll("run", 1); err != nil {
		t.Fatal(err)
	}
	ps.Run(8)
	for lane := 0; lane < rtl.Lanes; lane++ {
		if v, _ := ps.GetMem("regs", lane, 3); v != 8 {
			t.Fatalf("lane %d: r3 = %d, want 8", lane, v)
		}
		if v, _ := ps.GetMem("regs", lane, 4); v != 5 {
			t.Fatalf("lane %d: r4 = %d, want 5", lane, v)
		}
	}
	if ps.LaneCycles() != 8*rtl.Lanes {
		t.Fatalf("LaneCycles = %d, want %d", ps.LaneCycles(), 8*rtl.Lanes)
	}
}

// TestRTLPackedStimulusVsScalarLanes checks the packed stimulus path:
// each lane of a PackedStimulus-driven run must match a scalar sim
// replaying that lane's exact input sequence.
func TestRTLPackedStimulusVsScalarLanes(t *testing.T) {
	src := designs.AdderRTL(16)
	prog, err := rtl.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := rtl.NewPackedSim(prog)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rtl.NewPackedStimulus(ps, 7, "a", "b", "cin")
	if err != nil {
		t.Fatal(err)
	}
	// Shadow scalar sims replay the lanes via GetLane on the inputs
	// after each Vector (inputs are not overwritten by the design).
	scalars := make([]*rtl.Sim, rtl.Lanes)
	for i := range scalars {
		s, err := rtl.NewSim(prog)
		if err != nil {
			t.Fatal(err)
		}
		scalars[i] = s
	}
	for cyc := 0; cyc < 30; cyc++ {
		st.Vector()
		for lane, s := range scalars {
			for _, in := range []string{"a", "b", "cin"} {
				if err := s.Set(in, ps.GetLane(in, lane)); err != nil {
					t.Fatal(err)
				}
			}
		}
		ps.Cycle()
		for _, s := range scalars {
			s.Cycle()
		}
		compareRTL(t, fmt.Sprintf("stim cycle %d", cyc), ps, scalars)
	}
}

// TestRunBlocksDeterministic pins the lane-block scheduler's central
// contract: identical results (including digests) at any worker count.
func TestRunBlocksDeterministic(t *testing.T) {
	prog, err := rtl.ParseString(designs.AdderRTL(16))
	if err != nil {
		t.Fatal(err)
	}
	d, err := rtl.Elaborate(prog)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rtl.BlockConfig{
		Blocks: 12,
		Cycles: 25,
		Seed:   1001,
		Inputs: []string{"a", "b", "cin"},
		Digest: []string{"s", "cout"},
	}
	var ref []rtl.BlockResult
	for _, workers := range []int{1, 4, 16} {
		cfg.Workers = workers
		got, err := rtl.RunBlocks(d, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			for b, r := range got {
				if r.Block != b {
					t.Fatalf("result %d carries block %d: merge order broken", b, r.Block)
				}
				if r.LaneCycles != uint64(cfg.Cycles)*rtl.Lanes {
					t.Fatalf("block %d: LaneCycles = %d, want %d", b, r.LaneCycles, cfg.Cycles*rtl.Lanes)
				}
			}
			continue
		}
		for b := range got {
			if got[b] != ref[b] {
				t.Fatalf("workers=%d block %d: %+v != j1 %+v", workers, b, got[b], ref[b])
			}
		}
	}
}

// TestRunBlocksObs checks the scheduler's telemetry: deterministic
// counters, workers gauge reflecting the bound actually applied.
func TestRunBlocksObs(t *testing.T) {
	prog, err := rtl.ParseString(designs.AdderRTL(8))
	if err != nil {
		t.Fatal(err)
	}
	d, err := rtl.Elaborate(prog)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.New()
	cfg := rtl.BlockConfig{Blocks: 4, Cycles: 10, Workers: 16, Seed: 5, Inputs: []string{"a", "b"}}
	if _, err := rtl.RunBlocks(d, cfg, col); err != nil {
		t.Fatal(err)
	}
	if got := col.Counter("rtl.block.lane_cycles"); got != 4*10*rtl.Lanes {
		t.Fatalf("rtl.block.lane_cycles = %d, want %d", got, 4*10*rtl.Lanes)
	}
	if got := col.Counter("rtl.block.cycles"); got != 40 {
		t.Fatalf("rtl.block.cycles = %d, want 40", got)
	}
	// Workers are clamped to the block count.
	if got := col.Gauge("rtl.block.workers"); got != 4 {
		t.Fatalf("rtl.block.workers = %v, want 4", got)
	}
}

// TestRTLPackedCycleAllocs: steady-state packed cycling must not
// allocate — all plane scratch is preallocated at compile time.
func TestRTLPackedCycleAllocs(t *testing.T) {
	prog, err := rtl.ParseString(designs.AdderRTL(16))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := rtl.NewPackedSim(prog)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rtl.NewPackedStimulus(ps, 3, "a", "b", "cin")
	if err != nil {
		t.Fatal(err)
	}
	st.Step()
	avg := testing.AllocsPerRun(10, func() { st.Step() })
	if avg > 0 {
		t.Fatalf("packed RTL cycle allocates %.1f/op, want 0", avg)
	}
}

// BenchmarkRTLPackedCycle is the packed twin of the scalar cycle
// benchmark: one iteration advances 64 lanes one cycle.
func BenchmarkRTLPackedCycle(b *testing.B) {
	prog, err := rtl.ParseString(designs.AdderRTL(16))
	if err != nil {
		b.Fatal(err)
	}
	ps, err := rtl.NewPackedSim(prog)
	if err != nil {
		b.Fatal(err)
	}
	st, err := rtl.NewPackedStimulus(ps, 3, "a", "b", "cin")
	if err != nil {
		b.Fatal(err)
	}
	st.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step()
	}
}

// BenchmarkRunBlocksSerial and BenchmarkRunBlocksParallel time the
// lane-block scheduler at one worker and at GOMAXPROCS: their ratio is
// the multi-core scaling the fcv bench lane_block_speedup metric
// tracks. One iteration runs the whole block set.
func runBlocksBench(b *testing.B, workers int) {
	prog, err := rtl.ParseString(designs.PipelineRTL())
	if err != nil {
		b.Fatal(err)
	}
	d, err := rtl.Elaborate(prog)
	if err != nil {
		b.Fatal(err)
	}
	cfg := rtl.BlockConfig{
		Blocks:  4 * runtime.GOMAXPROCS(0),
		Cycles:  50,
		Workers: workers,
		Seed:    9,
		Inputs:  []string{"run"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rtl.RunBlocks(d, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunBlocksSerial(b *testing.B)   { runBlocksBench(b, 1) }
func BenchmarkRunBlocksParallel(b *testing.B) { runBlocksBench(b, runtime.GOMAXPROCS(0)) }
