package rtl

import (
	"fmt"
	"sort"
	"strings"
)

// Design is an elaborated (instance-flattened, checked, levelized)
// program ready for simulation.
type Design struct {
	// Top is the root module name.
	Top string
	// Signals lists every signal with its final hierarchical name.
	Signals []SignalDecl
	// Mems and Cams are the state arrays.
	Mems []MemDecl
	Cams []CamDecl
	// Assigns are in evaluation (topological) order.
	Assigns []Assign
	// Clocked are the phase-triggered updates.
	Clocked []ClockedStmt
	// Phases is the sorted list of clock phases in use.
	Phases []string

	index map[string]int // signal name → Signals index
	mems  map[string]int
	cams  map[string]int
}

// SignalIndex returns the signal's index, or -1.
func (d *Design) SignalIndex(name string) int {
	if i, ok := d.index[name]; ok {
		return i
	}
	return -1
}

// Elaborate flattens the program's instance tree, checks semantic rules
// and levelizes the combinational assigns.
func Elaborate(prog *Program) (*Design, error) {
	top, ok := prog.Modules[prog.Top]
	if !ok {
		return nil, fmt.Errorf("fcl: unknown top module %q", prog.Top)
	}
	d := &Design{
		Top:   prog.Top,
		index: make(map[string]int),
		mems:  make(map[string]int),
		cams:  make(map[string]int),
	}
	if err := d.inline(prog, top, "", nil, map[string]bool{prog.Top: true}); err != nil {
		return nil, err
	}
	if err := d.checkRefs(); err != nil {
		return nil, err
	}
	if err := d.levelize(); err != nil {
		return nil, err
	}
	d.collectPhases()
	return d, nil
}

// addSignal registers a signal, rejecting duplicates.
func (d *Design) addSignal(s SignalDecl) error {
	if _, dup := d.index[s.Name]; dup {
		return fmt.Errorf("fcl: duplicate signal %q", s.Name)
	}
	d.index[s.Name] = len(d.Signals)
	d.Signals = append(d.Signals, s)
	return nil
}

// inline copies module m into the design under prefix, with port
// substitutions subst (child port name → parent signal name).
func (d *Design) inline(prog *Program, m *Module, prefix string, subst map[string]string, active map[string]bool) error {
	pfx := func(name string) string {
		if s, ok := subst[name]; ok {
			return s
		}
		if prefix == "" {
			return name
		}
		return prefix + "/" + name
	}
	// Ports: at the top level they are real signals; in children they
	// are aliases resolved through subst, and any *unbound* child port
	// becomes a fresh hierarchical signal.
	for _, p := range m.Ports {
		if _, bound := subst[p.Name]; bound && prefix != "" {
			continue
		}
		s := p
		s.Name = pfx(p.Name)
		if prefix != "" {
			s.Kind = KindWire // child ports are plain nets once inlined
		}
		if err := d.addSignal(s); err != nil {
			return err
		}
	}
	for _, sd := range m.Signals {
		s := sd
		s.Name = pfx(sd.Name)
		if err := d.addSignal(s); err != nil {
			return err
		}
	}
	for _, mem := range m.Mems {
		name := pfx(mem.Name)
		if _, dup := d.mems[name]; dup {
			return fmt.Errorf("fcl: duplicate mem %q", name)
		}
		d.mems[name] = len(d.Mems)
		d.Mems = append(d.Mems, MemDecl{name, mem.Depth, mem.Width})
	}
	for _, cam := range m.Cams {
		name := pfx(cam.Name)
		if _, dup := d.cams[name]; dup {
			return fmt.Errorf("fcl: duplicate cam %q", name)
		}
		d.cams[name] = len(d.Cams)
		d.Cams = append(d.Cams, CamDecl{name, cam.Depth, cam.Width})
	}
	for _, a := range m.Assigns {
		d.Assigns = append(d.Assigns, Assign{
			Target: pfx(a.Target),
			Expr:   renameExpr(a.Expr, pfx),
			Line:   a.Line,
		})
	}
	for _, cstmt := range m.Clocked {
		ns := cstmt
		ns.Target = pfx(cstmt.Target)
		ns.Expr = renameExpr(cstmt.Expr, pfx)
		if cstmt.Idx != nil {
			ns.Idx = renameExpr(cstmt.Idx, pfx)
		}
		if cstmt.Cond != nil {
			ns.Cond = renameExpr(cstmt.Cond, pfx)
		}
		d.Clocked = append(d.Clocked, ns)
	}
	for _, inst := range m.Instances {
		child, ok := prog.Modules[inst.Module]
		if !ok {
			return fmt.Errorf("fcl: line %d: unknown module %q", inst.Line, inst.Module)
		}
		if active[inst.Module] {
			return fmt.Errorf("fcl: line %d: recursive instantiation of %q", inst.Line, inst.Module)
		}
		childPrefix := pfx(inst.Name)
		childSubst := make(map[string]string, len(inst.Bindings))
		ports := make(map[string]bool, len(child.Ports))
		for _, p := range child.Ports {
			ports[p.Name] = true
		}
		for port, sig := range inst.Bindings {
			if !ports[port] {
				return fmt.Errorf("fcl: line %d: module %q has no port %q", inst.Line, inst.Module, port)
			}
			childSubst[port] = pfx(sig)
		}
		active[inst.Module] = true
		if err := d.inline(prog, child, childPrefix, childSubst, active); err != nil {
			return err
		}
		delete(active, inst.Module)
	}
	return nil
}

// renameExpr rewrites identifier references through the substitution.
func renameExpr(e Expr, pfx func(string) string) Expr {
	switch v := e.(type) {
	case *Num:
		return v
	case *Ident:
		return &Ident{pfx(v.Name)}
	case *Index:
		return &Index{Base: pfx(v.Base), Idx: renameExpr(v.Idx, pfx)}
	case *Slice:
		return &Slice{Base: pfx(v.Base), Hi: v.Hi, Lo: v.Lo}
	case *Unary:
		return &Unary{Op: v.Op, X: renameExpr(v.X, pfx)}
	case *Binary:
		return &Binary{Op: v.Op, L: renameExpr(v.L, pfx), R: renameExpr(v.R, pfx)}
	case *Cond:
		return &Cond{renameExpr(v.C, pfx), renameExpr(v.T, pfx), renameExpr(v.F, pfx)}
	case *Concat:
		parts := make([]Expr, len(v.Parts))
		for i, p := range v.Parts {
			parts[i] = renameExpr(p, pfx)
		}
		return &Concat{parts}
	case *CamOp:
		return &CamOp{Cam: pfx(v.Cam), Op: v.Op, Key: renameExpr(v.Key, pfx)}
	}
	panic(fmt.Sprintf("fcl: unknown expr %T", e))
}

// checkRefs verifies that every reference resolves, drivers are unique,
// and clocked targets are consistent with their declarations.
func (d *Design) checkRefs() error {
	// Signal targets of assigns.
	driver := make(map[string]int)
	for _, a := range d.Assigns {
		i, ok := d.index[a.Target]
		if !ok {
			return fmt.Errorf("fcl: line %d: assign to undeclared signal %q", a.Line, a.Target)
		}
		s := d.Signals[i]
		if s.Kind == KindReg {
			return fmt.Errorf("fcl: line %d: reg %q cannot be combinationally assigned", a.Line, a.Target)
		}
		if s.Kind == KindInput {
			return fmt.Errorf("fcl: line %d: input %q cannot be assigned", a.Line, a.Target)
		}
		if prev, dup := driver[a.Target]; dup {
			return fmt.Errorf("fcl: line %d: %q already driven at line %d", a.Line, a.Target, prev)
		}
		driver[a.Target] = a.Line
		if err := d.checkExpr(a.Expr, a.Line); err != nil {
			return err
		}
	}
	for _, cstmt := range d.Clocked {
		if cstmt.Idx != nil {
			// Memory or CAM write.
			_, isMem := d.mems[cstmt.Target]
			_, isCam := d.cams[cstmt.Target]
			if !isMem && !isCam {
				return fmt.Errorf("fcl: line %d: indexed write to %q which is not a mem or cam", cstmt.Line, cstmt.Target)
			}
			if err := d.checkExpr(cstmt.Idx, cstmt.Line); err != nil {
				return err
			}
		} else {
			i, ok := d.index[cstmt.Target]
			if !ok {
				return fmt.Errorf("fcl: line %d: clocked write to undeclared %q", cstmt.Line, cstmt.Target)
			}
			s := d.Signals[i]
			if s.Kind != KindReg {
				return fmt.Errorf("fcl: line %d: clocked write target %q is not a reg", cstmt.Line, cstmt.Target)
			}
			if s.Phase != cstmt.Phase {
				return fmt.Errorf("fcl: line %d: reg %q is @%s but written on %s", cstmt.Line, cstmt.Target, s.Phase, cstmt.Phase)
			}
		}
		if err := d.checkExpr(cstmt.Expr, cstmt.Line); err != nil {
			return err
		}
		if cstmt.Cond != nil {
			if err := d.checkExpr(cstmt.Cond, cstmt.Line); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkExpr verifies references and slice bounds.
func (d *Design) checkExpr(e Expr, line int) error {
	switch v := e.(type) {
	case *Num:
		return nil
	case *Ident:
		if _, ok := d.index[v.Name]; !ok {
			return fmt.Errorf("fcl: line %d: undeclared signal %q", line, v.Name)
		}
		return nil
	case *Index:
		if _, isMem := d.mems[v.Base]; !isMem {
			if _, isSig := d.index[v.Base]; !isSig {
				return fmt.Errorf("fcl: line %d: undeclared %q", line, v.Base)
			}
		}
		return d.checkExpr(v.Idx, line)
	case *Slice:
		i, ok := d.index[v.Base]
		if !ok {
			return fmt.Errorf("fcl: line %d: undeclared signal %q", line, v.Base)
		}
		if v.Hi >= d.Signals[i].Width {
			return fmt.Errorf("fcl: line %d: slice %s[%d:%d] exceeds width %d", line, v.Base, v.Hi, v.Lo, d.Signals[i].Width)
		}
		return nil
	case *Unary:
		return d.checkExpr(v.X, line)
	case *Binary:
		if err := d.checkExpr(v.L, line); err != nil {
			return err
		}
		return d.checkExpr(v.R, line)
	case *Cond:
		for _, x := range []Expr{v.C, v.T, v.F} {
			if err := d.checkExpr(x, line); err != nil {
				return err
			}
		}
		return nil
	case *Concat:
		for _, p := range v.Parts {
			if err := d.checkExpr(p, line); err != nil {
				return err
			}
		}
		return nil
	case *CamOp:
		if _, ok := d.cams[v.Cam]; !ok {
			return fmt.Errorf("fcl: line %d: undeclared cam %q", line, v.Cam)
		}
		return d.checkExpr(v.Key, line)
	}
	return fmt.Errorf("fcl: line %d: unknown expression %T", line, e)
}

// levelize topologically sorts the assigns; a combinational cycle is an
// error (state must go through regs).
func (d *Design) levelize() error {
	byTarget := make(map[string]int, len(d.Assigns))
	for i, a := range d.Assigns {
		byTarget[a.Target] = i
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(d.Assigns))
	var order []Assign
	var visit func(i int) error
	visit = func(i int) error {
		switch color[i] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("fcl: combinational cycle through %q (line %d)", d.Assigns[i].Target, d.Assigns[i].Line)
		}
		color[i] = grey
		for _, dep := range exprDeps(d.Assigns[i].Expr) {
			if j, ok := byTarget[dep]; ok {
				if err := visit(j); err != nil {
					return err
				}
			}
		}
		color[i] = black
		order = append(order, d.Assigns[i])
		return nil
	}
	for i := range d.Assigns {
		if err := visit(i); err != nil {
			return err
		}
	}
	d.Assigns = order
	return nil
}

// exprDeps returns the signal names an expression reads combinationally
// (memory/CAM contents are state, but their index/key expressions are
// combinational dependencies).
func exprDeps(e Expr) []string {
	var out []string
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *Num:
		case *Ident:
			out = append(out, v.Name)
		case *Index:
			out = append(out, v.Base) // harmless if it is a mem (no assign targets mems)
			walk(v.Idx)
		case *Slice:
			out = append(out, v.Base)
		case *Unary:
			walk(v.X)
		case *Binary:
			walk(v.L)
			walk(v.R)
		case *Cond:
			walk(v.C)
			walk(v.T)
			walk(v.F)
		case *Concat:
			for _, p := range v.Parts {
				walk(p)
			}
		case *CamOp:
			walk(v.Key)
		}
	}
	walk(e)
	return out
}

// collectPhases gathers the sorted distinct phases.
func (d *Design) collectPhases() {
	set := make(map[string]bool)
	for _, s := range d.Signals {
		if s.Phase != "" {
			set[s.Phase] = true
		}
	}
	for _, c := range d.Clocked {
		set[c.Phase] = true
	}
	for p := range set {
		d.Phases = append(d.Phases, p)
	}
	sort.Strings(d.Phases)
}

// Stats summarizes the elaborated design.
func (d *Design) Stats() string {
	regs, wires := 0, 0
	for _, s := range d.Signals {
		if s.Kind == KindReg {
			regs++
		} else {
			wires++
		}
	}
	return fmt.Sprintf("%s: %d signals (%d regs), %d mems, %d cams, %d assigns, %d clocked stmts, phases %s",
		d.Top, len(d.Signals), regs, len(d.Mems), len(d.Cams), len(d.Assigns), len(d.Clocked),
		strings.Join(d.Phases, ","))
}
