package rtl

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// mustSim parses, elaborates and compiles source.
func mustSim(t *testing.T, src string) *Sim {
	t.Helper()
	prog, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(prog)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// set drives a signal, failing the test on error.
func set(t *testing.T, s *Sim, name string, v uint64) {
	t.Helper()
	if err := s.Set(name, v); err != nil {
		t.Fatal(err)
	}
}

func TestCombinationalBasics(t *testing.T) {
	s := mustSim(t, `
module top(a[8], b[8] -> x[8], y[8], z[8], eq)
assign x = a + b
assign y = a & ~b
assign z = a << 2
assign eq = a == b
endmodule
`)
	set(t, s, "a", 0x0f)
	set(t, s, "b", 0xf0)
	if got := s.Get("x"); got != 0xff {
		t.Errorf("x = %#x", got)
	}
	if got := s.Get("y"); got != 0x0f {
		t.Errorf("y = %#x", got)
	}
	if got := s.Get("z"); got != 0x3c {
		t.Errorf("z = %#x", got)
	}
	if got := s.Get("eq"); got != 0 {
		t.Errorf("eq = %d", got)
	}
	set(t, s, "b", 0x0f)
	if got := s.Get("eq"); got != 1 {
		t.Errorf("eq = %d after match", got)
	}
}

func TestWidthMaskingAndOverflow(t *testing.T) {
	s := mustSim(t, `
module top(a[4] -> x[4], big[64])
assign x = a + 1
assign big = a
endmodule
`)
	set(t, s, "a", 15)
	if got := s.Get("x"); got != 0 {
		t.Errorf("4-bit 15+1 = %d, want wrap to 0", got)
	}
	// Inputs mask on Set.
	set(t, s, "a", 0x1f)
	if got := s.Get("a"); got != 0xf {
		t.Errorf("a = %#x, want masked to 4 bits", got)
	}
}

func TestSliceIndexConcatMuxReduce(t *testing.T) {
	s := mustSim(t, `
module top(a[8], sel -> hi[4], b3, cat[16], m[8], ror, rand, rxor)
assign hi = a[7:4]
assign b3 = a[3]
assign cat = {a, a}
assign m = sel ? a : 0xff
assign ror = redor(a)
assign rand = redand(a)
assign rxor = redxor(a)
endmodule
`)
	set(t, s, "a", 0xa8)
	set(t, s, "sel", 1)
	if got := s.Get("hi"); got != 0xa {
		t.Errorf("hi = %#x", got)
	}
	if got := s.Get("b3"); got != 1 {
		t.Errorf("b3 = %d", got)
	}
	if got := s.Get("cat"); got != 0xa8a8 {
		t.Errorf("cat = %#x", got)
	}
	if got := s.Get("m"); got != 0xa8 {
		t.Errorf("m = %#x", got)
	}
	set(t, s, "sel", 0)
	if got := s.Get("m"); got != 0xff {
		t.Errorf("m = %#x with sel=0", got)
	}
	if got := s.Get("ror"); got != 1 {
		t.Errorf("redor = %d", got)
	}
	if got := s.Get("rand"); got != 0 {
		t.Errorf("redand = %d", got)
	}
	if got := s.Get("rxor"); got != 1 { // 0xa8 has 3 ones
		t.Errorf("redxor = %d", got)
	}
}

func TestRegisterPhases(t *testing.T) {
	// Two-phase pipeline: r1 samples on phi1, r2 copies r1 on phi2.
	// After one full cycle the input appears at r2.
	s := mustSim(t, `
module top(d[8] -> q[8])
reg r1[8] @phi1
reg r2[8] @phi2
on phi1: r1 <= d
on phi2: r2 <= r1
assign q = r2
endmodule
`)
	set(t, s, "d", 42)
	s.Cycle()
	if got := s.Get("q"); got != 42 {
		t.Errorf("q = %d after one cycle, want 42", got)
	}
	set(t, s, "d", 7)
	s.Phase("phi1")
	if got := s.Get("q"); got != 42 {
		t.Errorf("q changed before phi2: %d", got)
	}
	s.Phase("phi2")
	if got := s.Get("q"); got != 7 {
		t.Errorf("q = %d after phi2, want 7", got)
	}
}

func TestRegisterInitAndCounter(t *testing.T) {
	s := mustSim(t, `
module top( -> count[8])
reg c[8] @phi1 = 250
on phi1: c <= c + 1
assign count = c
endmodule
`)
	if got := s.Get("count"); got != 250 {
		t.Errorf("init = %d", got)
	}
	s.Run(10)
	if got := s.Get("count"); got != 4 { // 250+10 mod 256
		t.Errorf("count = %d after 10 cycles, want 4", got)
	}
	if s.Cycles() != 10 {
		t.Errorf("cycles = %d", s.Cycles())
	}
}

func TestConditionalClocking(t *testing.T) {
	// §3: "conditional clocking" — the enable gates the register clock.
	s := mustSim(t, `
module top(d[8], en -> q[8])
reg r[8] @phi1
on phi1 if en: r <= d
assign q = r
endmodule
`)
	set(t, s, "d", 99)
	set(t, s, "en", 0)
	s.Cycle()
	if got := s.Get("q"); got != 0 {
		t.Errorf("disabled reg captured: %d", got)
	}
	set(t, s, "en", 1)
	s.Cycle()
	if got := s.Get("q"); got != 99 {
		t.Errorf("enabled reg missed: %d", got)
	}
}

func TestMemoryReadWrite(t *testing.T) {
	s := mustSim(t, `
module top(waddr[4], wdata[8], raddr[4], we -> rdata[8])
mem m 16 8
on phi1 if we: m[waddr] <= wdata
assign rdata = m[raddr]
endmodule
`)
	set(t, s, "waddr", 5)
	set(t, s, "wdata", 0xab)
	set(t, s, "we", 1)
	s.Cycle()
	set(t, s, "raddr", 5)
	if got := s.Get("rdata"); got != 0xab {
		t.Errorf("rdata = %#x", got)
	}
	// Direct access helpers.
	if v, err := s.GetMem("m", 5); err != nil || v != 0xab {
		t.Errorf("GetMem = %v, %v", v, err)
	}
	if err := s.LoadMem("m", []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.GetMem("m", 2); v != 3 {
		t.Errorf("LoadMem content = %d", v)
	}
	if _, err := s.GetMem("none", 0); err == nil {
		t.Error("unknown mem accepted")
	}
	if _, err := s.GetMem("m", 99); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := s.LoadMem("m", make([]uint64, 17)); err == nil {
		t.Error("oversized load accepted")
	}
}

func TestCamPrimitive(t *testing.T) {
	s := mustSim(t, `
module top(key[16], waddr[3], wdata[16], we -> hit, idx[3])
cam tags 8 16
on phi1 if we: tags[waddr] <= wdata
assign hit = tags.hit(key)
assign idx = tags.index(key)
endmodule
`)
	// Empty CAM: no hit even on key 0 (valid bits).
	set(t, s, "key", 0)
	if got := s.Get("hit"); got != 0 {
		t.Error("empty CAM reported a hit")
	}
	// Write two entries.
	set(t, s, "we", 1)
	set(t, s, "waddr", 3)
	set(t, s, "wdata", 0xbeef)
	s.Cycle()
	set(t, s, "waddr", 6)
	set(t, s, "wdata", 0xcafe)
	s.Cycle()
	set(t, s, "we", 0)

	set(t, s, "key", 0xbeef)
	if s.Get("hit") != 1 || s.Get("idx") != 3 {
		t.Errorf("match: hit=%d idx=%d", s.Get("hit"), s.Get("idx"))
	}
	set(t, s, "key", 0xcafe)
	if s.Get("hit") != 1 || s.Get("idx") != 6 {
		t.Errorf("match: hit=%d idx=%d", s.Get("hit"), s.Get("idx"))
	}
	set(t, s, "key", 0x1234)
	if s.Get("hit") != 0 {
		t.Error("miss reported as hit")
	}
	// Invalidate.
	if err := s.CamInvalidate("tags", 3); err != nil {
		t.Fatal(err)
	}
	set(t, s, "key", 0xbeef)
	if s.Get("hit") != 0 {
		t.Error("invalidated entry still hits")
	}
	if err := s.CamInvalidate("none", 0); err == nil {
		t.Error("unknown cam accepted")
	}
}

func TestInstanceFlattening(t *testing.T) {
	s := mustSim(t, `
module adder(x[8], y[8] -> s[8])
assign s = x + y
endmodule
module top(a[8], b[8] -> out[8])
wire t[8]
inst u1 of adder(x=a, y=b, s=t)
inst u2 of adder(x=t, y=a, s=out)
endmodule
`)
	set(t, s, "a", 10)
	set(t, s, "b", 20)
	if got := s.Get("out"); got != 40 {
		t.Errorf("out = %d, want (10+20)+10", got)
	}
	// Internal hierarchical signals exist but are private.
	if s.Design().SignalIndex("u1/x") >= 0 {
		t.Error("bound child port should alias the parent, not exist separately")
	}
}

func TestInstanceWithInternalState(t *testing.T) {
	s := mustSim(t, `
module cnt(en -> v[8])
reg c[8] @phi1
on phi1 if en: c <= c + 1
assign v = c
endmodule
module top(go -> a[8], b[8])
inst c1 of cnt(en=go, v=a)
inst c2 of cnt(en=go, v=b)
endmodule
`)
	set(t, s, "go", 1)
	s.Run(3)
	if s.Get("a") != 3 || s.Get("b") != 3 {
		t.Errorf("counters = %d, %d", s.Get("a"), s.Get("b"))
	}
	// The two instances must have distinct state.
	if s.Design().SignalIndex("c1/c") < 0 || s.Design().SignalIndex("c2/c") < 0 {
		t.Error("instance-private registers missing")
	}
}

func TestElaborationErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"module top(a -> b)\nassign b = nosuch\nendmodule", "undeclared"},
		{"module top(a -> b)\nassign b = a\nassign b = a\nendmodule", "already driven"},
		{"module top(a -> b)\nassign a = 1\nendmodule", "input"},
		{"module top(a -> b)\nreg r @phi1\nassign r = a\nendmodule", "combinationally"},
		{"module top(a -> b)\nwire w\nassign w = b\nassign b = w\nendmodule", "cycle"},
		{"module top(a -> b)\nreg r @phi1\non phi2: r <= a\nassign b = r\nendmodule", "@phi1 but written on phi2"},
		{"module top(a -> b)\non phi1: a[2] <= 1\nassign b = a\nendmodule", "not a mem or cam"},
		{"module top(a[4] -> b)\nassign b = a[7:5]\nendmodule", "exceeds width"},
		{"module top(a -> b)\ninst u of nosuch(x=a)\nendmodule", "unknown module"},
		{"module r(a -> b)\ninst u of r(a=a, b=b)\nassign b = a\nendmodule", "recursive"},
		{"module c(x -> y)\nassign y = x\nendmodule\nmodule top(a -> b)\ninst u of c(nope=a, y=b)\nendmodule", "no port"},
	}
	for _, cse := range cases {
		prog, err := ParseString(cse.src)
		if err == nil {
			_, err = NewSim(prog)
		}
		if err == nil || !strings.Contains(err.Error(), cse.want) {
			t.Errorf("source %q: want error containing %q, got %v", cse.src, cse.want, err)
		}
	}
}

func TestParserErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"wire x\n", "expected 'module'"},
		{"module top(a -> b)\n", "missing endmodule"},
		{"module top(a -> b)\nfrobnicate x\nendmodule", "unknown statement"},
		{"module top(a[99] -> b)\nendmodule", "1..64"},
		{"module top(a -> b)\nreg r\nendmodule", "clock phase"},
		{"module top(a -> b)\nwire w @phi1\nendmodule", "cannot have a phase"},
		{"module top(a -> b)\nmem m x 8\nendmodule", "invalid"},
		{"module top(a -> b)\nassign b a\nendmodule", "'='"},
		{"module top(a -> b)\nassign b = a +\nendmodule", "unexpected end"},
		{"module top(a -> b)\nassign b = (a\nendmodule", "expected"},
		{"module top(a -> b)\nassign b = a $ 1\nendmodule", "unexpected character"},
		{"module top(a -> b)\non phi1 r <= a\nendmodule", "':'"},
		{"module top(a -> b)\ninst u of(x=a)\nendmodule", "inst needs"},
		{"module top(a -> b)\nassign b = t.pop(a)\nendmodule", "cam operation"},
		{"module top(a -> b)\nmodule q(c -> d)\nendmodule", "missing endmodule"},
	}
	for _, cse := range cases {
		_, err := ParseString(cse.src)
		if err == nil || !strings.Contains(err.Error(), cse.want) {
			t.Errorf("source %q: want error containing %q, got %v", cse.src, cse.want, err)
		}
	}
	// Errors carry line numbers.
	_, err := ParseString("module top(a -> b)\nassign b = $\nendmodule")
	se, ok := err.(*SyntaxError)
	if !ok || se.Line != 2 {
		t.Errorf("want SyntaxError at line 2, got %v", err)
	}
}

func TestNumberFormats(t *testing.T) {
	s := mustSim(t, `
module top( -> a[16], b[16], c[16])
assign a = 0xff
assign b = 0b1010
assign c = 1000
endmodule
`)
	if s.Get("a") != 255 || s.Get("b") != 10 || s.Get("c") != 1000 {
		t.Errorf("literals: %d %d %d", s.Get("a"), s.Get("b"), s.Get("c"))
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	s := mustSim(t, `
# leading comment
module top(a -> b)   # ports
assign b = a         # pass through
endmodule
`)
	set(t, s, "a", 1)
	if s.Get("b") != 1 {
		t.Error("comment handling broke the design")
	}
}

func TestDesignStats(t *testing.T) {
	s := mustSim(t, `
module top(a[8] -> b[8])
reg r[8] @phi1
mem m 4 8
cam c 4 8
on phi1: r <= a
assign b = r
endmodule
`)
	stats := s.Design().Stats()
	for _, want := range []string{"1 regs", "1 mems", "1 cams", "phases phi1"} {
		if !strings.Contains(stats, want) {
			t.Errorf("stats %q missing %q", stats, want)
		}
	}
}

// Property: the FCL adder agrees with Go's addition for all 8-bit pairs.
func TestAdderMatchesGoProperty(t *testing.T) {
	s := mustSim(t, `
module top(a[8], b[8] -> sum[8], carry)
wire t[9]
assign t = {0, a} + {0, b}
assign sum = t[7:0]
assign carry = t[8]
endmodule
`)
	f := func(a, b uint8) bool {
		set(t, s, "a", uint64(a))
		set(t, s, "b", uint64(b))
		total := uint64(a) + uint64(b)
		return s.Get("sum") == total&0xff && s.Get("carry") == total>>8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: conditional-sum identity — mux of two expressions equals
// whichever branch the condition picks.
func TestMuxProperty(t *testing.T) {
	s := mustSim(t, `
module top(c, x[16], y[16] -> z[16])
assign z = c ? x : y
endmodule
`)
	f := func(c bool, x, y uint16) bool {
		cv := uint64(0)
		if c {
			cv = 1
		}
		set(t, s, "c", cv)
		set(t, s, "x", uint64(x))
		set(t, s, "y", uint64(y))
		want := uint64(y)
		if c {
			want = uint64(x)
		}
		return s.Get("z") == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetUnknownSignal(t *testing.T) {
	s := mustSim(t, "module top(a -> b)\nassign b = a\nendmodule")
	if err := s.Set("zz", 1); err == nil {
		t.Error("Set of unknown signal accepted")
	}
	if got := s.Get("zz"); got != 0 {
		t.Error("Get of unknown should be 0")
	}
}

func TestActivityTracking(t *testing.T) {
	s := mustSim(t, `
module top(en -> q[8])
reg c[8] @phi1
on phi1 if en: c <= c + 1
assign q = c
endmodule
`)
	// Half the cycles enabled: gating factor 0.5, counter toggles every
	// enabled cycle.
	s.StartActivity()
	for i := 0; i < 20; i++ {
		set(t, s, "en", uint64(i)&1)
		s.Cycle()
	}
	a := s.StopActivity()
	if a.Cycles != 20 {
		t.Errorf("cycles = %d", a.Cycles)
	}
	if g := a.ClockGatingFactor(); g < 0.45 || g > 0.55 {
		t.Errorf("gating factor = %.2f, want ≈0.5", g)
	}
	if a.Toggles["c"] == 0 || a.Toggles["q"] == 0 {
		t.Errorf("counter toggles missing: %v", a.Toggles)
	}
	if a.AvgTogglesPerCycle() <= 0 {
		t.Error("zero average activity")
	}
	// Stopped tracking returns zero profile.
	if z := s.StopActivity(); z.Cycles != 0 {
		t.Error("second StopActivity should be empty")
	}
	if !strings.Contains(a.String(), "clock gating") {
		t.Error("activity string mismatch")
	}
}

func TestStimulusReproducible(t *testing.T) {
	src := `
module top(a[8], b[8] -> s[8])
reg acc[8] @phi1
on phi1: acc <= a + b
assign s = acc
endmodule
`
	run := func(seed int64) []uint64 {
		s := mustSim(t, src)
		stim, err := NewStimulus(s, seed, "a", "b")
		if err != nil {
			t.Fatal(err)
		}
		var trace []uint64
		for i := 0; i < 16; i++ {
			stim.Step()
			trace = append(trace, s.Get("s"))
		}
		return trace
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at cycle %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestStimulusRunCheckAndErrors(t *testing.T) {
	s := mustSim(t, "module top(a[4] -> y[4])\nassign y = a\nendmodule")
	if _, err := NewStimulus(s, 1, "nosuch"); err == nil {
		t.Error("unknown input accepted")
	}
	stim, err := NewStimulus(s, 1, "a")
	if err != nil {
		t.Fatal(err)
	}
	// The invariant y == a must hold every cycle.
	if err := stim.Run(50, func(sim *Sim) error {
		if sim.Get("y") != sim.Get("a") {
			return fmt.Errorf("y != a")
		}
		return nil
	}); err != nil {
		t.Error(err)
	}
	// A failing check stops with cycle context.
	err = stim.Run(10, func(sim *Sim) error { return fmt.Errorf("boom") })
	if err == nil || !strings.Contains(err.Error(), "cycle 0") {
		t.Errorf("check failure lost context: %v", err)
	}
}

func TestStimulusBias(t *testing.T) {
	s := mustSim(t, "module top(a[16] -> y[16])\nassign y = a\nendmodule")
	stim, err := NewStimulus(s, 3, "a")
	if err != nil {
		t.Fatal(err)
	}
	stim.Bias = 0.9
	ones := 0
	for i := 0; i < 50; i++ {
		v := stim.Step()["a"]
		for b := 0; b < 16; b++ {
			if v>>uint(b)&1 == 1 {
				ones++
			}
		}
	}
	if frac := float64(ones) / (50 * 16); frac < 0.8 {
		t.Errorf("bias 0.9 produced only %.2f ones", frac)
	}
}
