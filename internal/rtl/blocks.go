package rtl

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/obs"
)

// BlockConfig describes a block-parallel packed run: Blocks independent
// 64-lane PackedSims, each driven Cycles cycles of seeded random
// stimulus on Inputs, executed by at most Workers goroutines.
type BlockConfig struct {
	Blocks  int
	Cycles  int
	Workers int // <=0 means runtime.GOMAXPROCS(0)
	Seed    int64
	Inputs  []string
	// Digest lists the signals folded into each block's result digest
	// every cycle; empty means every output signal.
	Digest []string
}

// BlockResult is one block's outcome. Everything here is a pure
// function of (design, config, block index), so results are identical
// at any worker count.
type BlockResult struct {
	Block      int
	Cycles     uint64
	LaneCycles uint64
	// Digest folds the digest signals' planes after every cycle — the
	// determinism witness compared across worker counts.
	Digest uint64
}

// RunBlocks executes a block-parallel packed simulation: block b seeds
// its stimulus with Seed+b, so the full stimulus schedule is fixed by
// the config alone, and the returned slice is always in block order —
// goroutines only decide *when* a block runs, never what it computes.
// Worker busy time is published as rtl.block.utilization (busy/wall)
// and the effective worker count as rtl.block.workers; total coverage
// counts into the rtl.block.cycles / rtl.block.lane_cycles counters.
func RunBlocks(d *Design, cfg BlockConfig, col *obs.Collector) ([]BlockResult, error) {
	if cfg.Blocks <= 0 {
		return nil, fmt.Errorf("fcl: RunBlocks needs at least one block")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Blocks {
		workers = cfg.Blocks
	}
	digest := cfg.Digest
	if len(digest) == 0 {
		for _, s := range d.Signals {
			if s.Kind == KindOutput {
				digest = append(digest, s.Name)
			}
		}
	}
	for _, name := range digest {
		if d.SignalIndex(name) < 0 {
			return nil, fmt.Errorf("fcl: digest signal %q not found", name)
		}
	}

	results := make([]BlockResult, cfg.Blocks)
	errs := make([]error, cfg.Blocks)
	blockCh := make(chan int)
	var wg sync.WaitGroup
	busy := make([]float64, workers) // per-worker busy ms (volatile telemetry)
	t0 := obs.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := range blockCh {
				bt := obs.Now()
				results[b], errs[b] = runOneBlock(d, cfg, b, digest)
				busy[w] += float64(obs.Now().Sub(bt).Microseconds()) / 1000
			}
		}(w)
	}
	for b := 0; b < cfg.Blocks; b++ {
		blockCh <- b
	}
	close(blockCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if col != nil {
		wallMS := float64(obs.Now().Sub(t0).Microseconds()) / 1000
		var busyMS float64
		for _, bm := range busy {
			busyMS += bm
		}
		col.SetGauge("rtl.block.workers", float64(workers))
		if wallMS > 0 {
			col.SetGauge("rtl.block.utilization", busyMS/(wallMS*float64(workers)))
		}
		col.Add("rtl.block.cycles", int64(cfg.Blocks)*int64(cfg.Cycles))
		col.Add("rtl.block.lane_cycles", int64(cfg.Blocks)*int64(cfg.Cycles)*Lanes)
	}
	return results, nil
}

// runOneBlock runs a single 64-lane block to completion.
func runOneBlock(d *Design, cfg BlockConfig, block int, digest []string) (BlockResult, error) {
	ps, err := NewPackedSimFromDesign(d)
	if err != nil {
		return BlockResult{}, err
	}
	st, err := NewPackedStimulus(ps, cfg.Seed+int64(block), cfg.Inputs...)
	if err != nil {
		return BlockResult{}, err
	}
	var dg uint64
	for i := 0; i < cfg.Cycles; i++ {
		st.Step()
		for _, name := range digest {
			si := d.SignalIndex(name)
			for _, pl := range ps.vals[ps.off[si] : ps.off[si]+d.Signals[si].Width] {
				dg = mix64(dg ^ pl)
			}
		}
	}
	return BlockResult{
		Block:      block,
		Cycles:     ps.Cycles(),
		LaneCycles: ps.LaneCycles(),
		Digest:     dg,
	}, nil
}

// mix64 is the splitmix64 finalizer — a cheap, well-mixed fold for
// digest accumulation.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
