package rtl

import "fmt"

// Activity is a toggle/clock-gating profile of a simulation window —
// the measurement behind §3's "conditional clocking" power knob: a
// register whose clock is enabled only when it must capture burns clock
// power only on those cycles.
type Activity struct {
	// Cycles is the window length.
	Cycles uint64
	// Toggles counts value changes per signal over the window.
	Toggles map[string]uint64
	// CommitsEnabled / CommitsPossible count clocked-statement
	// executions: Possible is stmts × cycles; Enabled is how many
	// actually fired (their conditions held).
	CommitsEnabled, CommitsPossible uint64
}

// AvgTogglesPerCycle returns mean toggles per signal per cycle — the
// measured activity factor.
func (a Activity) AvgTogglesPerCycle() float64 {
	if a.Cycles == 0 || len(a.Toggles) == 0 {
		return 0
	}
	var total uint64
	for _, t := range a.Toggles {
		total += t
	}
	return float64(total) / float64(a.Cycles) / float64(len(a.Toggles))
}

// ClockGatingFactor returns the fraction of register-clock events
// eliminated by conditional clocking (0 = clocks always fire, 0.75 =
// three quarters of the clock energy gated away).
func (a Activity) ClockGatingFactor() float64 {
	if a.CommitsPossible == 0 {
		return 0
	}
	return 1 - float64(a.CommitsEnabled)/float64(a.CommitsPossible)
}

// String summarizes the profile.
func (a Activity) String() string {
	return fmt.Sprintf("activity over %d cycles: avg %.3f toggles/signal/cycle, clock gating %.0f%% (%d/%d commits)",
		a.Cycles, a.AvgTogglesPerCycle(), a.ClockGatingFactor()*100, a.CommitsEnabled, a.CommitsPossible)
}

// activityState is the simulator's optional tracking block.
type activityState struct {
	prev    []uint64
	toggles []uint64
	cycles  uint64
	enabled uint64
	possib  uint64
}

// StartActivity begins (or restarts) activity tracking from the current
// state.
func (s *Sim) StartActivity() {
	s.activity = &activityState{
		prev:    append([]uint64(nil), s.vals...),
		toggles: make([]uint64, len(s.vals)),
	}
}

// StopActivity ends tracking and returns the profile. It returns a zero
// profile if tracking was never started.
func (s *Sim) StopActivity() Activity {
	a := Activity{Toggles: make(map[string]uint64)}
	st := s.activity
	if st == nil {
		return a
	}
	a.Cycles = st.cycles
	a.CommitsEnabled = st.enabled
	a.CommitsPossible = st.possib
	for i, t := range st.toggles {
		if t > 0 {
			a.Toggles[s.design.Signals[i].Name] = t
		}
	}
	s.activity = nil
	return a
}

// recordCycleActivity diffs signal values against the last cycle.
func (s *Sim) recordCycleActivity() {
	st := s.activity
	if st == nil {
		return
	}
	st.cycles++
	for i, v := range s.vals {
		if v != st.prev[i] {
			st.toggles[i]++
			st.prev[i] = v
		}
	}
}
