package shadow

import (
	"reflect"
	"testing"

	"repro/internal/netlist"
	"repro/internal/rtl"
	"repro/internal/switchsim"
)

// newPackedShadow builds the standard XOR shadow setup, 64 lanes wide.
func newPackedShadow(t *testing.T, ckt *netlist.Circuit) *PackedShadow {
	t.Helper()
	prog, err := rtl.ParseString(rtlXor)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rtl.NewPackedSim(prog)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := switchsim.NewPacked(ckt)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewPacked(rs, cs, Binding{
		Inputs:  map[string]string{"a": "a", "b": "b"},
		Outputs: map[string]string{"y": "y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// brokenXor is cktXor with n2's gate rewired to bn — the seeded defect
// the scalar shadow tests use.
func brokenXor() *netlist.Circuit {
	bad := cktXor()
	for _, d := range bad.Devices {
		if d.Name == "n2" {
			d.Gate = bad.Node("bn")
		}
	}
	return bad
}

func TestPackedShadowCleanOnCorrectCircuit(t *testing.T) {
	sh := newPackedShadow(t, cktXor())
	ok, err := sh.RandomRun(20, 77, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("clean circuit mismatched:\n%s", sh.Report())
	}
	if sh.Compared != 20*switchsim.Lanes {
		t.Fatalf("Compared = %d, want %d", sh.Compared, 20*switchsim.Lanes)
	}
}

// TestPackedShadowMatchesScalarPerLane is the co-sim differential: the
// packed shadow's mismatch set must equal the union over lanes of 64
// scalar shadows fed that lane's stimulus, with correct lane indices.
func TestPackedShadowMatchesScalarPerLane(t *testing.T) {
	packed := newPackedShadow(t, brokenXor())
	scalars := make([]*Shadow, switchsim.Lanes)
	for i := range scalars {
		scalars[i] = newShadow(t, brokenXor())
	}
	packed.MaxMismatches = 1 << 20
	for i := range scalars {
		scalars[i].MaxMismatches = 1 << 20
	}
	// Drive all four (a,b) combinations into distinct lane groups each
	// cycle: lane l gets a=bit0(l+cyc), b=bit1(l+cyc).
	for cyc := 0; cyc < 6; cyc++ {
		var aPl, bPl uint64
		for l := 0; l < switchsim.Lanes; l++ {
			a := uint64(l+cyc) & 1
			b := (uint64(l+cyc) >> 1) & 1
			aPl |= a << uint(l)
			bPl |= b << uint(l)
			_ = scalars[l].RTL.Set("a", a)
			_ = scalars[l].RTL.Set("b", b)
		}
		if err := packed.RTL.SetPlanes("a", []uint64{aPl}); err != nil {
			t.Fatal(err)
		}
		if err := packed.RTL.SetPlanes("b", []uint64{bPl}); err != nil {
			t.Fatal(err)
		}
		packed.Cycle()
		for _, s := range scalars {
			s.Cycle()
		}
	}
	// Collect scalar mismatches into (lane → count) and compare against
	// the packed records lane by lane.
	type key struct {
		lane  int
		cycle uint64
		phase string
		node  string
	}
	want := map[key]int{}
	for lane, s := range scalars {
		for _, m := range s.Mismatches {
			want[key{lane, m.Cycle, m.Phase, m.Node}]++
		}
	}
	got := map[key]int{}
	for _, m := range packed.Mismatches {
		if m.Block != -1 {
			t.Fatalf("single-shadow mismatch carries block %d, want -1", m.Block)
		}
		got[key{m.Lane, m.Cycle, m.Phase, m.Node}]++
	}
	if len(want) == 0 {
		t.Fatal("seeded defect produced no scalar mismatches — test is vacuous")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("packed mismatch set diverges from 64 scalar shadows:\npacked %v\nscalar %v", got, want)
	}
}

// TestPackedShadowRunBlocksDeterministic pins the block sweep contract:
// byte-identical reports (mismatch lane/block coordinates included) at
// any worker count, in block order.
func TestPackedShadowRunBlocksDeterministic(t *testing.T) {
	prog, err := rtl.ParseString(rtlXor)
	if err != nil {
		t.Fatal(err)
	}
	d, err := rtl.Elaborate(prog)
	if err != nil {
		t.Fatal(err)
	}
	bind := Binding{
		Inputs:  map[string]string{"a": "a", "b": "b"},
		Outputs: map[string]string{"y": "y"},
	}
	ckt := brokenXor()
	cfg := BlockRunConfig{Blocks: 6, Cycles: 8, Seed: 31, Inputs: []string{"a", "b"}}
	var ref []BlockReport
	for _, workers := range []int{1, 4, 16} {
		cfg.Workers = workers
		got, err := RunBlocks(d, ckt, bind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			total := 0
			for b, r := range got {
				if r.Block != b {
					t.Fatalf("report %d carries block %d", b, r.Block)
				}
				for _, m := range r.Mismatches {
					if m.Block != b {
						t.Fatalf("mismatch in block %d report carries block %d", b, m.Block)
					}
				}
				total += len(r.Mismatches)
			}
			if total == 0 {
				t.Fatal("defective circuit produced no mismatches across blocks")
			}
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d reports diverge from j1", workers)
		}
	}
}

// TestPackedShadowClockedLatch drives the transmission-gate latch with
// 64 distinct lane sequences against the RTL register.
func TestPackedShadowClockedLatch(t *testing.T) {
	const src = `
module top(d -> q)
reg r @phi1
on phi1: r <= d
assign q = r
endmodule
`
	prog, err := rtl.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rtl.NewPackedSim(prog)
	if err != nil {
		t.Fatal(err)
	}
	c := netlist.New("latch")
	c.DeclarePort("d")
	c.NMOS("pass", "phi1", "d", "m", 8, 0.75)
	c.NMOS("fwd_n", "m", "vss", "qn", 2, 0.75)
	c.PMOS("fwd_p", "m", "vdd", "qn", 4, 0.75)
	c.NMOS("out_n", "qn", "vss", "q", 2, 0.75)
	c.PMOS("out_p", "qn", "vdd", "q", 4, 0.75)
	c.NMOS("fb_n", "q", "vss", "m", 1, 1.5)
	c.PMOS("fb_p", "q", "vdd", "m", 1, 1.5)
	cs, err := switchsim.NewPacked(c)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewPacked(rs, cs, Binding{
		Inputs:  map[string]string{"d": "d"},
		Outputs: map[string]string{"q": "q"},
		Clocks:  map[string]string{"phi1": "phi1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := sh.RandomRun(10, 13, "d")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("latch shadow mismatched:\n%s", sh.Report())
	}
}
