package shadow

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/netlist"
	"repro/internal/rtl"
	"repro/internal/switchsim"
)

// PackedMismatch records one lane's shadow comparison failure. Block is
// -1 for single-shadow runs and the lane block index for RunBlocks.
type PackedMismatch struct {
	Block   int
	Lane    int
	Cycle   uint64
	Phase   string
	Node    string // circuit node
	Signal  string // RTL reference
	RTL     uint64
	Circuit switchsim.Value
}

// String formats the mismatch for logs.
func (m PackedMismatch) String() string {
	blk := ""
	if m.Block >= 0 {
		blk = fmt.Sprintf("block %d ", m.Block)
	}
	return fmt.Sprintf("%slane %d cycle %d %s: circuit %s=%v, rtl %s=%d",
		blk, m.Lane, m.Cycle, m.Phase, m.Node, m.Circuit, m.Signal, m.RTL)
}

// PackedShadow couples a 64-lane RTL simulation with a 64-lane circuit
// block: every settle carries 64 independent stimulus vectors through
// both sides, and every phase comparison checks all 64 lanes at once
// with three word ops. Mismatch records carry the offending lane.
type PackedShadow struct {
	RTL *rtl.PackedSim
	Ckt *switchsim.PackedSim
	b   Binding

	// Mismatches accumulates comparison failures (bounded), ordered by
	// (cycle, phase order, node, lane) — byte-deterministic.
	Mismatches []PackedMismatch
	// Compared counts lane comparisons performed (64 per bound output
	// per phase).
	Compared int
	// MaxMismatches bounds the log (default 100).
	MaxMismatches int

	outNodes []string
	planeBuf []uint64
	blockIdx int
}

// NewPacked validates the binding and returns a coupled 64-lane shadow.
func NewPacked(rtlSim *rtl.PackedSim, ckt *switchsim.PackedSim, b Binding) (*PackedShadow, error) {
	checkRef := func(ref string) error {
		name, _, err := splitRef(ref)
		if err != nil {
			return err
		}
		if rtlSim.Design().SignalIndex(name) < 0 {
			return fmt.Errorf("shadow: unknown RTL signal %q", name)
		}
		return nil
	}
	for node, sig := range b.Inputs {
		if ckt.Circuit().FindNode(node) < 0 {
			return nil, fmt.Errorf("shadow: input binding to unknown circuit node %q", node)
		}
		if err := checkRef(sig); err != nil {
			return nil, err
		}
	}
	for node, sig := range b.Outputs {
		if ckt.Circuit().FindNode(node) < 0 {
			return nil, fmt.Errorf("shadow: output binding to unknown circuit node %q", node)
		}
		if err := checkRef(sig); err != nil {
			return nil, err
		}
	}
	phases := make(map[string]bool)
	for _, p := range rtlSim.Design().Phases {
		phases[p] = true
	}
	for node, phase := range b.Clocks {
		if ckt.Circuit().FindNode(node) < 0 {
			return nil, fmt.Errorf("shadow: clock binding to unknown circuit node %q", node)
		}
		if !phases[phase] {
			return nil, fmt.Errorf("shadow: clock %q bound to unknown phase %q", node, phase)
		}
	}
	s := &PackedShadow{RTL: rtlSim, Ckt: ckt, b: b, MaxMismatches: 100, blockIdx: -1}
	for n := range b.Outputs {
		s.outNodes = append(s.outNodes, n)
	}
	sort.Strings(s.outNodes)
	return s, nil
}

// rtlPlane reads one RTL bit across all 64 lanes as a word.
func (s *PackedShadow) rtlPlane(ref string) uint64 {
	name, bit, _ := splitRef(ref)
	s.planeBuf = s.RTL.GetPlanes(name, s.planeBuf)
	if bit >= len(s.planeBuf) {
		return 0
	}
	return s.planeBuf[bit]
}

// driveInputs copies the RTL's current lane planes onto the circuit's
// bound inputs: one plane word drives 64 circuit lanes.
func (s *PackedShadow) driveInputs() {
	for node, ref := range s.b.Inputs {
		pl := s.rtlPlane(ref)
		s.Ckt.SetQuietLanes(node, pl, ^pl)
	}
}

// setClocks drives the circuit clocks (same value in every lane).
func (s *PackedShadow) setClocks(active string) {
	for node, phase := range s.b.Clocks {
		s.Ckt.SetQuietAll(node, switchsim.Bool(phase == active))
	}
}

// compare checks all bound outputs across all lanes after a phase: a
// lane agrees when the circuit resolved to exactly the RTL's bit value
// (X and floating never match). Bad lanes are recorded ascending.
func (s *PackedShadow) compare(phase string) {
	for _, node := range s.outNodes {
		ref := s.b.Outputs[node]
		want := s.rtlPlane(ref)
		hi, lo := s.Ckt.GetLanes(node)
		s.Compared += switchsim.Lanes
		ok := (hi &^ lo & want) | (lo &^ hi &^ want)
		for bad := ^ok; bad != 0; bad &= bad - 1 {
			if len(s.Mismatches) >= s.MaxMismatches {
				return
			}
			lane := trailingZeros(bad)
			s.Mismatches = append(s.Mismatches, PackedMismatch{
				Block:   s.blockIdx,
				Lane:    lane,
				Cycle:   s.RTL.Cycles(),
				Phase:   phase,
				Node:    node,
				Signal:  ref,
				RTL:     (want >> uint(lane)) & 1,
				Circuit: s.Ckt.GetLane(node, lane),
			})
		}
	}
}

// trailingZeros is bits.TrailingZeros64 without pulling math/bits into
// the package API surface.
func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// Phase advances both sides through one clock phase and compares all 64
// lanes — the same settle choreography as the scalar Shadow.
func (s *PackedShadow) Phase(phase string) {
	s.setClocks("")
	s.driveInputs()
	s.Ckt.Settle()
	s.setClocks(phase)
	s.Ckt.Settle()
	s.RTL.Phase(phase)
	s.compare(phase)
	s.setClocks("")
	s.Ckt.Settle()
}

// Cycle advances one full clock cycle through all RTL phases.
func (s *PackedShadow) Cycle() {
	for _, p := range s.RTL.Design().Phases {
		s.Phase(p)
	}
}

// Run executes n cycles and reports whether the shadow stayed clean.
func (s *PackedShadow) Run(n int) bool {
	for i := 0; i < n; i++ {
		s.Cycle()
	}
	return len(s.Mismatches) == 0
}

// Report summarizes the run.
func (s *PackedShadow) Report() string {
	if len(s.Mismatches) == 0 {
		return fmt.Sprintf("shadow: %d lane comparisons, no mismatches", s.Compared)
	}
	out := fmt.Sprintf("shadow: %d lane comparisons, %d mismatches:\n", s.Compared, len(s.Mismatches))
	for _, m := range s.Mismatches {
		out += "  " + m.String() + "\n"
	}
	return out
}

// RandomRun drives 64 independent pseudo-random vectors per cycle on
// the given RTL inputs for n cycles, shadowing throughout.
func (s *PackedShadow) RandomRun(n int, seed int64, inputs ...string) (bool, error) {
	stim, err := rtl.NewPackedStimulus(s.RTL, seed, inputs...)
	if err != nil {
		return false, err
	}
	for i := 0; i < n; i++ {
		stim.Vector()
		s.Cycle()
	}
	return len(s.Mismatches) == 0, nil
}

// BlockRunConfig describes a block-parallel packed shadow run: Blocks
// independent 64-lane shadow pairs, each seeded Seed+block.
type BlockRunConfig struct {
	Blocks  int
	Cycles  int
	Workers int // <=0 means runtime.GOMAXPROCS(0)
	Seed    int64
	Inputs  []string
}

// BlockReport is one block's shadow outcome.
type BlockReport struct {
	Block      int
	Compared   int
	LaneCycles uint64
	Mismatches []PackedMismatch
}

// RunBlocks runs a block-parallel packed shadow sweep: block b builds
// its own RTL+circuit pair over the shared (read-only) design and
// netlist, seeds its stimulus with Seed+b, and shadows Cycles cycles of
// 64 lanes. Every block's work is a pure function of (design, circuit,
// binding, config, block index), so reports — including each mismatch's
// block/lane coordinates — are byte-identical at any worker count, and
// the returned slice is always in block order.
func RunBlocks(d *rtl.Design, ckt *netlist.Circuit, b Binding, cfg BlockRunConfig) ([]BlockReport, error) {
	if cfg.Blocks <= 0 {
		return nil, fmt.Errorf("shadow: RunBlocks needs at least one block")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Blocks {
		workers = cfg.Blocks
	}
	reports := make([]BlockReport, cfg.Blocks)
	errs := make([]error, cfg.Blocks)
	blockCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for blk := range blockCh {
				reports[blk], errs[blk] = runShadowBlock(d, ckt, b, cfg, blk)
			}
		}()
	}
	for blk := 0; blk < cfg.Blocks; blk++ {
		blockCh <- blk
	}
	close(blockCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return reports, nil
}

func runShadowBlock(d *rtl.Design, ckt *netlist.Circuit, b Binding, cfg BlockRunConfig, blk int) (BlockReport, error) {
	rtlSim, err := rtl.NewPackedSimFromDesign(d)
	if err != nil {
		return BlockReport{}, err
	}
	cktSim, err := switchsim.NewPacked(ckt)
	if err != nil {
		return BlockReport{}, err
	}
	sh, err := NewPacked(rtlSim, cktSim, b)
	if err != nil {
		return BlockReport{}, err
	}
	sh.blockIdx = blk
	if _, err := sh.RandomRun(cfg.Cycles, cfg.Seed+int64(blk), cfg.Inputs...); err != nil {
		return BlockReport{}, err
	}
	return BlockReport{
		Block:      blk,
		Compared:   sh.Compared,
		LaneCycles: rtlSim.LaneCycles(),
		Mismatches: sh.Mismatches,
	}, nil
}
