// Package shadow implements shadow-mode simulation, the mixed-mode
// verification method of §4.1:
//
//	"more popular at Digital Semiconductor is the shadow-mode
//	simulation. This latter simulator is a mixed mode simulation of full
//	design Behavioral/RTL with a part of the circuit logic shadowing
//	(not replacing) the corresponding RTL description."
//
// The full design runs in the FCL RTL simulator; a transistor-level
// block runs alongside in the switch-level simulator. On every clock
// phase the shadow drives the circuit's inputs from the RTL's signal
// values, pulses the circuit's clock nets according to the phase, and
// compares the circuit's outputs against the RTL signals they shadow.
// Mismatches are recorded, never patched back — the RTL remains the
// golden reference and the circuit is the thing on trial.
package shadow

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rtl"
	"repro/internal/switchsim"
)

// Binding wires circuit nodes to RTL signals. RTL references may select
// a bit of a wide signal with the "name[bit]" form.
type Binding struct {
	// Inputs maps circuit input node → RTL signal (driven RTL→circuit).
	Inputs map[string]string
	// Outputs maps circuit output node → RTL signal (compared).
	Outputs map[string]string
	// Clocks maps circuit clock node → RTL phase name; the node is
	// driven high while its phase executes and low otherwise.
	Clocks map[string]string
}

// Mismatch records one shadow comparison failure.
type Mismatch struct {
	Cycle   uint64
	Phase   string
	Node    string // circuit node
	Signal  string // RTL reference
	RTL     uint64
	Circuit switchsim.Value
}

// String formats the mismatch for logs.
func (m Mismatch) String() string {
	return fmt.Sprintf("cycle %d %s: circuit %s=%v, rtl %s=%d",
		m.Cycle, m.Phase, m.Node, m.Circuit, m.Signal, m.RTL)
}

// Shadow couples an RTL simulation with a circuit block.
type Shadow struct {
	RTL *rtl.Sim
	Ckt *switchsim.Sim
	b   Binding

	// Mismatches accumulates comparison failures (bounded).
	Mismatches []Mismatch
	// Compared counts output comparisons performed.
	Compared int
	// MaxMismatches bounds the log (default 100).
	MaxMismatches int
}

// New validates the binding and returns a coupled shadow simulation.
func New(rtlSim *rtl.Sim, ckt *switchsim.Sim, b Binding) (*Shadow, error) {
	for node, sig := range b.Inputs {
		if ckt.Circuit().FindNode(node) < 0 {
			return nil, fmt.Errorf("shadow: input binding to unknown circuit node %q", node)
		}
		if err := checkRTLRef(rtlSim, sig); err != nil {
			return nil, err
		}
	}
	for node, sig := range b.Outputs {
		if ckt.Circuit().FindNode(node) < 0 {
			return nil, fmt.Errorf("shadow: output binding to unknown circuit node %q", node)
		}
		if err := checkRTLRef(rtlSim, sig); err != nil {
			return nil, err
		}
	}
	phases := make(map[string]bool)
	for _, p := range rtlSim.Design().Phases {
		phases[p] = true
	}
	for node, phase := range b.Clocks {
		if ckt.Circuit().FindNode(node) < 0 {
			return nil, fmt.Errorf("shadow: clock binding to unknown circuit node %q", node)
		}
		if !phases[phase] {
			return nil, fmt.Errorf("shadow: clock %q bound to unknown phase %q", node, phase)
		}
	}
	return &Shadow{RTL: rtlSim, Ckt: ckt, b: b, MaxMismatches: 100}, nil
}

// checkRTLRef validates a "name" or "name[bit]" RTL reference.
func checkRTLRef(s *rtl.Sim, ref string) error {
	name, _, err := splitRef(ref)
	if err != nil {
		return err
	}
	if s.Design().SignalIndex(name) < 0 {
		return fmt.Errorf("shadow: unknown RTL signal %q", name)
	}
	return nil
}

// splitRef parses "name" or "name[bit]".
func splitRef(ref string) (name string, bit int, err error) {
	if i := strings.Index(ref, "["); i >= 0 {
		if !strings.HasSuffix(ref, "]") {
			return "", 0, fmt.Errorf("shadow: malformed reference %q", ref)
		}
		b, err := strconv.Atoi(ref[i+1 : len(ref)-1])
		if err != nil || b < 0 || b > 63 {
			return "", 0, fmt.Errorf("shadow: bad bit index in %q", ref)
		}
		return ref[:i], b, nil
	}
	return ref, 0, nil
}

// rtlBit reads the bound RTL bit.
func (s *Shadow) rtlBit(ref string) uint64 {
	name, bit, _ := splitRef(ref)
	return (s.RTL.Get(name) >> uint(bit)) & 1
}

// driveInputs copies current RTL values onto the circuit's bound inputs.
func (s *Shadow) driveInputs() {
	for node, ref := range s.b.Inputs {
		s.Ckt.SetQuiet(node, switchsim.Bool(s.rtlBit(ref) != 0))
	}
}

// setClocks drives the circuit clocks for the active phase.
func (s *Shadow) setClocks(active string) {
	for node, phase := range s.b.Clocks {
		s.Ckt.SetQuiet(node, switchsim.Bool(phase == active))
	}
}

// compare checks all bound outputs after a phase.
func (s *Shadow) compare(phase string) {
	nodes := make([]string, 0, len(s.b.Outputs))
	for n := range s.b.Outputs {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, node := range nodes {
		ref := s.b.Outputs[node]
		want := s.rtlBit(ref)
		got := s.Ckt.Get(node)
		s.Compared++
		if got == switchsim.Bool(want != 0) {
			continue
		}
		if len(s.Mismatches) < s.MaxMismatches {
			s.Mismatches = append(s.Mismatches, Mismatch{
				Cycle:   s.RTL.Cycles(),
				Phase:   phase,
				Node:    node,
				Signal:  ref,
				RTL:     want,
				Circuit: got,
			})
		}
	}
}

// Phase advances both sides through one clock phase and compares. The
// circuit first sees the new input values with all clocks low — the
// precharge/setup window dynamic logic requires — then the phase clock
// rises (evaluate/transparent) and the outputs are compared against the
// RTL after its phase executes.
func (s *Shadow) Phase(phase string) {
	s.setClocks("")
	s.driveInputs()
	s.Ckt.Settle()
	s.setClocks(phase)
	s.Ckt.Settle()
	s.RTL.Phase(phase)
	s.compare(phase)
	// Drop the clock (precharge/hold window before the next phase).
	s.setClocks("")
	s.Ckt.Settle()
}

// Cycle advances one full clock cycle through all RTL phases.
func (s *Shadow) Cycle() {
	for _, p := range s.RTL.Design().Phases {
		s.Phase(p)
	}
}

// Run executes n cycles and reports whether the shadow stayed clean.
func (s *Shadow) Run(n int) bool {
	for i := 0; i < n; i++ {
		s.Cycle()
	}
	return len(s.Mismatches) == 0
}

// Report summarizes the run.
func (s *Shadow) Report() string {
	if len(s.Mismatches) == 0 {
		return fmt.Sprintf("shadow: %d comparisons, no mismatches", s.Compared)
	}
	out := fmt.Sprintf("shadow: %d comparisons, %d mismatches:\n", s.Compared, len(s.Mismatches))
	for _, m := range s.Mismatches {
		out += "  " + m.String() + "\n"
	}
	return out
}

// RandomRun drives pseudo-random vectors on the given RTL inputs for n
// cycles (§4.1's pseudo-random stimulus), shadowing throughout. It
// returns true when no mismatch was recorded. The seed makes failures
// reproducible.
func (s *Shadow) RandomRun(n int, seed int64, inputs ...string) (bool, error) {
	stim, err := rtl.NewStimulus(s.RTL, seed, inputs...)
	if err != nil {
		return false, err
	}
	for i := 0; i < n; i++ {
		// Vector applies the random inputs without advancing the RTL
		// clock; the shadow owns the cycle so both sides stay in step.
		stim.Vector()
		s.Cycle()
	}
	return len(s.Mismatches) == 0, nil
}
