package shadow

import (
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/rtl"
	"repro/internal/switchsim"
)

// rtlXor is a 1-bit XOR in FCL with a phi1 output register.
const rtlXor = `
module top(a, b -> y, q)
reg r @phi1
assign y = a ^ b
on phi1: r <= a ^ b
assign q = r
endmodule
`

// cktXor builds a static CMOS XOR (complementary AOI form) y = a⊕b,
// using internally generated complements.
func cktXor() *netlist.Circuit {
	c := netlist.New("xor")
	for _, p := range []string{"a", "b", "y"} {
		c.DeclarePort(p)
	}
	inv := func(name, in, out string) {
		c.NMOS(name+"_n", in, "vss", out, 2, 0.75)
		c.PMOS(name+"_p", in, "vdd", out, 4, 0.75)
	}
	inv("ia", "a", "an")
	inv("ib", "b", "bn")
	// Complementary XOR: y pulled low when (a&b)|(an&bn) — the XNOR
	// condition — and pulled high through the dual PMOS network
	// ((a‖b) in series with (an‖bn), conducting on exactly-one-high).
	c.NMOS("n1", "a", "x1", "y", 4, 0.75)
	c.NMOS("n2", "b", "vss", "x1", 4, 0.75)
	c.NMOS("n3", "an", "x2", "y", 4, 0.75)
	c.NMOS("n4", "bn", "vss", "x2", 4, 0.75)
	c.PMOS("p1", "a", "vdd", "x3", 6, 0.75)
	c.PMOS("p2", "b", "vdd", "x3", 6, 0.75)
	c.PMOS("p3", "an", "x3", "y", 6, 0.75)
	c.PMOS("p4", "bn", "x3", "y", 6, 0.75)
	return c
}

// newShadow builds the standard XOR shadow setup.
func newShadow(t *testing.T, ckt *netlist.Circuit) *Shadow {
	t.Helper()
	prog, err := rtl.ParseString(rtlXor)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rtl.NewSim(prog)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := switchsim.New(ckt)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := New(rs, cs, Binding{
		Inputs:  map[string]string{"a": "a", "b": "b"},
		Outputs: map[string]string{"y": "y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func TestShadowCleanOnCorrectCircuit(t *testing.T) {
	sh := newShadow(t, cktXor())
	// Walk all four input combinations over several cycles.
	for cyc := 0; cyc < 8; cyc++ {
		if err := sh.RTL.Set("a", uint64(cyc)&1); err != nil {
			t.Fatal(err)
		}
		if err := sh.RTL.Set("b", uint64(cyc>>1)&1); err != nil {
			t.Fatal(err)
		}
		sh.Cycle()
	}
	if len(sh.Mismatches) != 0 {
		t.Fatalf("clean circuit mismatched:\n%s", sh.Report())
	}
	if sh.Compared == 0 {
		t.Fatal("no comparisons performed")
	}
	if !strings.Contains(sh.Report(), "no mismatches") {
		t.Error("report should say no mismatches")
	}
}

func TestShadowCatchesBug(t *testing.T) {
	// Introduce the classic full-custom bug: swap one series device's
	// gate so the pulldown computes the wrong function.
	bad := cktXor()
	for _, d := range bad.Devices {
		if d.Name == "n2" {
			d.Gate = bad.Node("bn") // was b
		}
	}
	sh := newShadow(t, bad)
	for cyc := 0; cyc < 8; cyc++ {
		_ = sh.RTL.Set("a", uint64(cyc)&1)
		_ = sh.RTL.Set("b", uint64(cyc>>1)&1)
		sh.Cycle()
	}
	if len(sh.Mismatches) == 0 {
		t.Fatal("shadow failed to catch a wired-wrong pulldown")
	}
	m := sh.Mismatches[0]
	if m.Node != "y" || m.Signal != "y" {
		t.Errorf("mismatch identifies wrong objects: %+v", m)
	}
	if !strings.Contains(sh.Report(), "mismatches:") {
		t.Error("report should list mismatches")
	}
}

func TestShadowDoesNotPatchRTL(t *testing.T) {
	// "shadowing (not replacing)": RTL results must be unaffected by a
	// broken circuit.
	good := newShadow(t, cktXor())
	bad := newShadow(t, func() *netlist.Circuit {
		c := cktXor()
		for _, d := range c.Devices {
			if d.Name == "n1" {
				d.Gate = c.Node("an")
			}
		}
		return c
	}())
	for cyc := 0; cyc < 4; cyc++ {
		for _, sh := range []*Shadow{good, bad} {
			_ = sh.RTL.Set("a", 1)
			_ = sh.RTL.Set("b", uint64(cyc)&1)
			sh.Cycle()
		}
		if good.RTL.Get("q") != bad.RTL.Get("q") {
			t.Fatal("a shadow mismatch leaked into RTL state")
		}
	}
}

func TestShadowClockedLatch(t *testing.T) {
	// Shadow a transmission-gate latch against the RTL register.
	const src = `
module top(d -> q)
reg r @phi1
on phi1: r <= d
assign q = r
endmodule
`
	prog, err := rtl.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rtl.NewSim(prog)
	if err != nil {
		t.Fatal(err)
	}
	c := netlist.New("latch")
	c.DeclarePort("d")
	c.NMOS("pass", "phi1", "d", "m", 8, 0.75)
	c.NMOS("fwd_n", "m", "vss", "qn", 2, 0.75)
	c.PMOS("fwd_p", "m", "vdd", "qn", 4, 0.75)
	c.NMOS("out_n", "qn", "vss", "q", 2, 0.75)
	c.PMOS("out_p", "qn", "vdd", "q", 4, 0.75)
	c.NMOS("fb_n", "q", "vss", "m", 1, 1.5) // weak keeper
	c.PMOS("fb_p", "q", "vdd", "m", 1, 1.5)
	cs, err := switchsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := New(rs, cs, Binding{
		Inputs:  map[string]string{"d": "d"},
		Outputs: map[string]string{"q": "q"},
		Clocks:  map[string]string{"phi1": "phi1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := []uint64{1, 0, 1, 1, 0, 0, 1}
	for _, v := range seq {
		_ = sh.RTL.Set("d", v)
		sh.Cycle()
		if got := sh.RTL.Get("q"); got != v {
			t.Fatalf("RTL latch broken: q=%d want %d", got, v)
		}
	}
	if len(sh.Mismatches) != 0 {
		t.Errorf("latch shadow mismatched:\n%s", sh.Report())
	}
}

func TestBindingValidation(t *testing.T) {
	prog, _ := rtl.ParseString(rtlXor)
	rs, _ := rtl.NewSim(prog)
	cs, _ := switchsim.New(cktXor())
	cases := []Binding{
		{Inputs: map[string]string{"nope": "a"}},
		{Inputs: map[string]string{"a": "nosig"}},
		{Outputs: map[string]string{"zz": "y"}},
		{Outputs: map[string]string{"y": "nosig"}},
		{Clocks: map[string]string{"zz": "phi1"}},
		{Clocks: map[string]string{"a": "phi9"}},
		{Inputs: map[string]string{"a": "a[bad"}},
		{Inputs: map[string]string{"a": "a[99]"}},
	}
	for i, b := range cases {
		if _, err := New(rs, cs, b); err == nil {
			t.Errorf("binding %d accepted: %+v", i, b)
		}
	}
}

func TestBitSelectBinding(t *testing.T) {
	const src = `
module top(v[4] -> y)
assign y = v[2]
endmodule
`
	prog, _ := rtl.ParseString(src)
	rs, err := rtl.NewSim(prog)
	if err != nil {
		t.Fatal(err)
	}
	c := netlist.New("buf")
	c.DeclarePort("in")
	c.DeclarePort("out")
	c.NMOS("n1", "in", "vss", "mid", 2, 0.75)
	c.PMOS("p1", "in", "vdd", "mid", 4, 0.75)
	c.NMOS("n2", "mid", "vss", "out", 2, 0.75)
	c.PMOS("p2", "mid", "vdd", "out", 4, 0.75)
	cs, _ := switchsim.New(c)
	sh, err := New(rs, cs, Binding{
		Inputs:  map[string]string{"in": "v[2]"},
		Outputs: map[string]string{"out": "y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sh.RTL.Set("v", 0b0100)
	sh.Cycle()
	_ = sh.RTL.Set("v", 0b1011)
	sh.Cycle()
	if len(sh.Mismatches) != 0 {
		t.Errorf("bit-select shadow mismatched:\n%s", sh.Report())
	}
}

func TestMismatchCap(t *testing.T) {
	bad := cktXor()
	for _, d := range bad.Devices {
		if d.Name == "n2" {
			d.Gate = bad.Node("bn")
		}
	}
	sh := newShadow(t, bad)
	sh.MaxMismatches = 3
	_ = sh.RTL.Set("a", 1)
	_ = sh.RTL.Set("b", 0)
	for i := 0; i < 50; i++ {
		sh.Cycle()
	}
	if len(sh.Mismatches) > 3 {
		t.Errorf("mismatch log exceeded cap: %d", len(sh.Mismatches))
	}
}

func TestShadowRandomRun(t *testing.T) {
	sh := newShadow(t, cktXor())
	ok, err := sh.RandomRun(40, 1997, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("random run mismatched:\n%s", sh.Report())
	}
	if sh.Compared < 40 {
		t.Errorf("compared = %d", sh.Compared)
	}
	// Unknown input is rejected.
	if _, err := sh.RandomRun(1, 0, "zz"); err == nil {
		t.Error("unknown stimulus input accepted")
	}
	// And a broken circuit is caught by random stimulus too.
	bad := cktXor()
	for _, d := range bad.Devices {
		if d.Name == "n2" {
			d.Gate = bad.Node("bn")
		}
	}
	shBad := newShadow(t, bad)
	ok, err = shBad.RandomRun(40, 1997, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("random stimulus missed the wired-wrong pulldown")
	}
}
