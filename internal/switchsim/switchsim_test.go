package switchsim

import (
	"strings"
	"testing"

	"repro/internal/netlist"
)

// newSim builds a simulator, failing the test on error.
func newSim(t *testing.T, c *netlist.Circuit) *Sim {
	t.Helper()
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// addInv appends an inverter in→out to c.
func addInv(c *netlist.Circuit, name, in, out string) {
	c.NMOS(name+"_n", in, "vss", out, 2, 0.75)
	c.PMOS(name+"_p", in, "vdd", out, 4, 0.75)
}

func TestInverter(t *testing.T) {
	c := netlist.New("inv")
	addInv(c, "u1", "a", "y")
	s := newSim(t, c)
	s.Set("a", Hi)
	if got := s.Get("y"); got != Lo {
		t.Errorf("inv(1) = %v, want 0", got)
	}
	s.Set("a", Lo)
	if got := s.Get("y"); got != Hi {
		t.Errorf("inv(0) = %v, want 1", got)
	}
	s.Set("a", X)
	if got := s.Get("y"); got != X {
		t.Errorf("inv(X) = %v, want X", got)
	}
}

func TestNAND2AllInputCombos(t *testing.T) {
	c := netlist.New("nand2")
	c.NMOS("mn1", "a", "mid", "y", 4, 0.75)
	c.NMOS("mn2", "b", "vss", "mid", 4, 0.75)
	c.PMOS("mp1", "a", "vdd", "y", 4, 0.75)
	c.PMOS("mp2", "b", "vdd", "y", 4, 0.75)
	s := newSim(t, c)
	cases := []struct{ a, b, want Value }{
		{Lo, Lo, Hi}, {Lo, Hi, Hi}, {Hi, Lo, Hi}, {Hi, Hi, Lo},
	}
	for _, cse := range cases {
		s.SetQuiet("a", cse.a)
		s.SetQuiet("b", cse.b)
		s.Settle()
		if got := s.Get("y"); got != cse.want {
			t.Errorf("nand(%v,%v) = %v, want %v", cse.a, cse.b, got, cse.want)
		}
	}
}

func TestXPropagationPartial(t *testing.T) {
	// NAND with a=0 outputs 1 regardless of b=X (controlling value).
	c := netlist.New("nand2")
	c.NMOS("mn1", "a", "mid", "y", 4, 0.75)
	c.NMOS("mn2", "b", "vss", "mid", 4, 0.75)
	c.PMOS("mp1", "a", "vdd", "y", 4, 0.75)
	c.PMOS("mp2", "b", "vdd", "y", 4, 0.75)
	s := newSim(t, c)
	s.SetQuiet("a", Lo)
	s.SetQuiet("b", X)
	s.Settle()
	if got := s.Get("y"); got != Hi {
		t.Errorf("nand(0,X) = %v, want 1 (a controls)", got)
	}
	// a=1, b=X → X.
	s.SetQuiet("a", Hi)
	s.Settle()
	if got := s.Get("y"); got != X {
		t.Errorf("nand(1,X) = %v, want X", got)
	}
}

func TestInverterChainPropagates(t *testing.T) {
	c := netlist.New("chain")
	prev := "a"
	for i := 0; i < 8; i++ {
		next := "n" + itoa(i)
		addInv(c, "u"+itoa(i), prev, next)
		prev = next
	}
	s := newSim(t, c)
	s.Set("a", Hi)
	if got := s.Get(prev); got != Hi { // 8 inversions = identity
		t.Errorf("chain out = %v, want 1", got)
	}
	s.Set("a", Lo)
	if got := s.Get(prev); got != Lo {
		t.Errorf("chain out = %v, want 0", got)
	}
}

func TestTransmissionGatePassesBothLevels(t *testing.T) {
	c := netlist.New("tg")
	c.NMOS("mn", "en", "in", "out", 4, 0.75)
	c.PMOS("mp", "enb", "in", "out", 4, 0.75)
	addInv(c, "buf", "out", "y")
	s := newSim(t, c)
	s.SetQuiet("en", Hi)
	s.SetQuiet("enb", Lo)
	s.SetQuiet("in", Hi)
	s.Settle()
	if got := s.Get("out"); got != Hi {
		t.Errorf("tgate(on, 1) = %v, want 1", got)
	}
	if got := s.Get("y"); got != Lo {
		t.Errorf("buffered tgate output = %v, want 0", got)
	}
	s.SetQuiet("in", Lo)
	s.Settle()
	if got := s.Get("out"); got != Lo {
		t.Errorf("tgate(on, 0) = %v, want 0", got)
	}
}

func TestTransmissionGateHoldsWhenOff(t *testing.T) {
	c := netlist.New("tg")
	c.NMOS("mn", "en", "in", "out", 4, 0.75)
	c.PMOS("mp", "enb", "in", "out", 4, 0.75)
	s := newSim(t, c)
	// Drive through, then close the gate and change the input: the
	// output retains its charge (a dynamic storage node).
	s.SetQuiet("en", Hi)
	s.SetQuiet("enb", Lo)
	s.SetQuiet("in", Hi)
	s.Settle()
	s.SetQuiet("en", Lo)
	s.SetQuiet("enb", Hi)
	s.Settle()
	s.Set("in", Lo)
	if got := s.Get("out"); got != Hi {
		t.Errorf("closed tgate output = %v, want held 1", got)
	}
}

func TestDominoPrechargeEvaluate(t *testing.T) {
	// Footed domino AND2: phi=0 precharges dyn high; phi=1 evaluates.
	c := netlist.New("domino")
	c.PMOS("mpre", "phi", "vdd", "dyn", 4, 0.75)
	c.NMOS("ma", "a", "x1", "dyn", 6, 0.75)
	c.NMOS("mb", "b", "x2", "x1", 6, 0.75)
	c.NMOS("mfoot", "phi", "vss", "x2", 8, 0.75)
	addInv(c, "buf", "dyn", "out")
	s := newSim(t, c)

	// Precharge phase.
	s.SetQuiet("phi", Lo)
	s.SetQuiet("a", Lo)
	s.SetQuiet("b", Lo)
	s.Settle()
	if got := s.Get("dyn"); got != Hi {
		t.Fatalf("precharged dyn = %v, want 1", got)
	}
	if got := s.Get("out"); got != Lo {
		t.Fatalf("precharged out = %v, want 0", got)
	}

	// Evaluate with a&b true: dyn discharges.
	s.SetQuiet("a", Hi)
	s.SetQuiet("b", Hi)
	s.SetQuiet("phi", Hi)
	s.Settle()
	if got := s.Get("dyn"); got != Lo {
		t.Errorf("evaluate dyn = %v, want 0", got)
	}
	if got := s.Get("out"); got != Hi {
		t.Errorf("evaluate out = %v, want 1", got)
	}

	// Precharge again, then evaluate with a&b false: dyn floats high.
	s.SetQuiet("phi", Lo)
	s.Settle()
	s.SetQuiet("a", Lo)
	s.SetQuiet("phi", Hi)
	s.Settle()
	if got := s.Get("dyn"); got != Hi {
		t.Errorf("floating dyn = %v, want held 1", got)
	}
	if got := s.Get("out"); got != Lo {
		t.Errorf("out after hold = %v, want 0", got)
	}
}

func TestChargeSharingDegradesToX(t *testing.T) {
	// A held-high dynamic node connected by an opening NMOS to a
	// discharged internal node (Figure 3's charge-share hazard): the
	// simulator conservatively reports X.
	c := netlist.New("share")
	c.PMOS("mpre", "phi", "vdd", "dyn", 4, 0.75)
	c.NMOS("mtop", "a", "mid", "dyn", 6, 0.75)
	c.NMOS("mbot", "b", "vss", "mid", 6, 0.75)
	s := newSim(t, c)
	// Precharge dyn with a=0; separately discharge mid via b=1.
	s.SetQuiet("phi", Lo)
	s.SetQuiet("a", Lo)
	s.SetQuiet("b", Hi)
	s.Settle()
	if got := s.Get("dyn"); got != Hi {
		t.Fatalf("dyn = %v, want 1", got)
	}
	if got := s.Get("mid"); got != Lo {
		t.Fatalf("mid = %v, want 0", got)
	}
	// Close precharge and the foot, then open the top device: dyn and
	// mid become a floating island with mixed charge → X.
	s.SetQuiet("phi", Hi)
	s.SetQuiet("b", Lo)
	s.Settle()
	s.SetQuiet("a", Hi)
	s.Settle()
	if got := s.Get("dyn"); got != X {
		t.Errorf("charge-shared dyn = %v, want X", got)
	}
}

func TestCrossCoupledLatchHoldsState(t *testing.T) {
	// SR-style: two cross-coupled inverters with a write port through a
	// strong pass NMOS.
	c := netlist.New("cell")
	addInv(c, "i1", "q", "qn")
	addInv(c, "i2", "qn", "q")
	s := newSim(t, c)
	// Write 1 by forcing q, then release: loop must hold it.
	s.Set("q", Hi)
	if got := s.Get("qn"); got != Lo {
		t.Fatalf("qn = %v, want 0", got)
	}
	s.Release("q")
	if got := s.Get("q"); got != Hi {
		t.Errorf("released q = %v, want held 1", got)
	}
	// Overdrive to the other state.
	s.Set("q", Lo)
	s.Release("q")
	if got := s.Get("q"); got != Lo {
		t.Errorf("released q = %v, want held 0", got)
	}
	if got := s.Get("qn"); got != Hi {
		t.Errorf("qn = %v, want 1", got)
	}
}

func TestPseudoNMOSRatioedFightResolves(t *testing.T) {
	// Pseudo-NMOS inverter: 2/1.5 PMOS load vs 8/0.75 NMOS driver. The
	// NMOS wins the fight decisively → output 0, not X.
	c := netlist.New("pnmos")
	c.PMOS("mload", "vss", "vdd", "y", 2, 1.5)
	c.NMOS("mdrv", "a", "vss", "y", 8, 0.75)
	s := newSim(t, c)
	s.Set("a", Hi)
	if got := s.Get("y"); got != Lo {
		t.Errorf("pseudo-NMOS(1) = %v, want 0 (ratioed win)", got)
	}
	s.Set("a", Lo)
	if got := s.Get("y"); got != Hi {
		t.Errorf("pseudo-NMOS(0) = %v, want 1", got)
	}
}

func TestBalancedFightIsX(t *testing.T) {
	// Equal-strength contention must stay X.
	c := netlist.New("fight")
	c.PMOS("mp", "en_p", "vdd", "y", 10, 0.75)
	c.NMOS("mn", "en_n", "vss", "y", 4, 0.75) // 4/0.75 NMOS ≈ 10/0.75 PMOS·0.4
	s := newSim(t, c)
	s.SetQuiet("en_p", Lo) // PMOS on
	s.SetQuiet("en_n", Hi) // NMOS on
	s.Settle()
	if got := s.Get("y"); got != X {
		t.Errorf("balanced fight = %v, want X", got)
	}
}

func TestRingOscillatorGoesX(t *testing.T) {
	// A 3-inverter ring has no stable point: relaxation must cap and
	// mark it X rather than hang.
	c := netlist.New("ring")
	addInv(c, "u1", "n0", "n1")
	addInv(c, "u2", "n1", "n2")
	addInv(c, "u3", "n2", "n0")
	s := newSim(t, c)
	iters := s.Settle()
	if iters < MaxIterations {
		// A ring from all-X stays all-X (stable) — kick it.
		s.Set("n0", Hi)
		s.Release("n0")
	}
	vals := []Value{s.Get("n0"), s.Get("n1"), s.Get("n2")}
	stable := (vals[0] != X && vals[1] != X && vals[2] != X)
	if stable {
		t.Errorf("ring settled to %v — impossible", vals)
	}
}

func TestDCVSLBothRails(t *testing.T) {
	// DCVSL AND: with complementary inputs, q and qn resolve to
	// complementary levels via the cross-coupled pull-ups.
	c := netlist.New("dcvsl")
	// DCVSL sizing discipline: the NMOS trees must decisively overpower
	// the cross-coupled PMOS keepers or the gate cannot switch.
	c.PMOS("mp1", "qn", "vdd", "q", 4, 0.75)
	c.PMOS("mp2", "q", "vdd", "qn", 4, 0.75)
	c.NMOS("mn1", "an", "vss", "q", 12, 0.75)
	c.NMOS("mn2", "bn", "vss", "q", 12, 0.75)
	c.NMOS("mn3", "a", "x", "qn", 12, 0.75)
	c.NMOS("mn4", "b", "vss", "x", 12, 0.75)
	s := newSim(t, c)
	// a=1 b=1: qn pulled low, q pulled high via cross-coupled PMOS.
	s.SetQuiet("a", Hi)
	s.SetQuiet("an", Lo)
	s.SetQuiet("b", Hi)
	s.SetQuiet("bn", Lo)
	s.Settle()
	if q, qn := s.Get("q"), s.Get("qn"); q != Hi || qn != Lo {
		t.Errorf("dcvsl(1,1): q=%v qn=%v, want 1/0", q, qn)
	}
	// a=0: q pulled low, qn high.
	s.SetQuiet("a", Lo)
	s.SetQuiet("an", Hi)
	s.Settle()
	if q, qn := s.Get("q"), s.Get("qn"); q != Lo || qn != Hi {
		t.Errorf("dcvsl(0,1): q=%v qn=%v, want 0/1", q, qn)
	}
}

func TestSnapshotAndUnknownNodes(t *testing.T) {
	c := netlist.New("inv")
	addInv(c, "u", "a", "y")
	s := newSim(t, c)
	if un := s.UnknownNodes(); len(un) != 2 {
		t.Errorf("initial unknowns = %v, want a and y", un)
	}
	s.Set("a", Hi)
	snap := s.Snapshot()
	if snap["a"] != Hi || snap["y"] != Lo {
		t.Errorf("snapshot = %v", snap)
	}
	if un := s.UnknownNodes(); len(un) != 0 {
		t.Errorf("unknowns after drive = %v", un)
	}
}

func TestNewRejectsHierarchy(t *testing.T) {
	c := netlist.New("h")
	c.AddInstance("x", "cell", "n")
	if _, err := New(c); err == nil || !strings.Contains(err.Error(), "unflattened") {
		t.Errorf("want unflattened error, got %v", err)
	}
}

func TestValueStringAndBool(t *testing.T) {
	if Lo.String() != "0" || Hi.String() != "1" || X.String() != "X" {
		t.Error("Value.String mismatch")
	}
	if Bool(true) != Hi || Bool(false) != Lo {
		t.Error("Bool conversion mismatch")
	}
}

func TestStepsAccumulate(t *testing.T) {
	c := netlist.New("inv")
	addInv(c, "u", "a", "y")
	s := newSim(t, c)
	s.Set("a", Hi)
	s.Set("a", Lo)
	if s.Steps() == 0 {
		t.Error("steps should accumulate")
	}
}

// itoa avoids strconv for a two-digit test need.
func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + itoa(i%10)
}
