package switchsim

// The dirty-component worklist in Settle is a pure scheduling
// optimisation: it must produce bit-identical node states to the classic
// full-sweep relaxation it replaced. These tests pin that equivalence by
// driving two sims — one settled by the worklist, one by the settleFull
// reference schedule — through identical stimulus and requiring
// identical snapshots after every step.

import (
	"fmt"
	"testing"

	"repro/internal/designs"
	"repro/internal/netlist"
)

// refSettle applies a stimulus step to the reference sim using the
// full-sweep schedule (SetQuiet marks dirty; settleFull ignores and
// clears the marks).
func refSet(s *Sim, name string, v Value) {
	s.SetQuiet(name, v)
	s.settleFull()
}

func refRelease(s *Sim, name string) {
	id := s.c.FindNode(name)
	if id == netlist.InvalidNode || s.c.IsSupply(id) {
		return
	}
	s.driven[id] = false
	s.settleFull()
}

// simOp is one stimulus step: set a node or release it.
type simOp struct {
	name    string
	v       Value
	release bool
}

func set(name string, v Value) simOp { return simOp{name: name, v: v} }
func release(name string) simOp      { return simOp{name: name, release: true} }

// runEquiv drives a worklist sim and a full-sweep sim through the ops,
// comparing full snapshots after the initial settle and after each op.
func runEquiv(t *testing.T, build func() *netlist.Circuit, ops []simOp) {
	t.Helper()
	w := newSim(t, build())
	ref := newSim(t, build())
	w.Settle()
	ref.settleFull()
	compareSnapshots(t, "initial settle", w, ref)
	for i, op := range ops {
		var label string
		if op.release {
			w.Release(op.name)
			refRelease(ref, op.name)
			label = fmt.Sprintf("op %d: release %s", i, op.name)
		} else {
			w.Set(op.name, op.v)
			refSet(ref, op.name, op.v)
			label = fmt.Sprintf("op %d: set %s=%s", i, op.name, op.v)
		}
		compareSnapshots(t, label, w, ref)
	}
}

func compareSnapshots(t *testing.T, label string, w, ref *Sim) {
	t.Helper()
	ws, rs := w.Snapshot(), ref.Snapshot()
	for name, rv := range rs {
		if wv := ws[name]; wv != rv {
			t.Errorf("%s: node %s: worklist=%s full-sweep=%s", label, name, wv, rv)
		}
	}
	if t.Failed() {
		t.Fatalf("%s: worklist diverged from full-sweep reference", label)
	}
}

func TestWorklistMatchesFullSweepDominoAdder(t *testing.T) {
	n := 8
	var ops []simOp
	// Precharge phase with a full input vector.
	ops = append(ops, set("phi1", Lo))
	for i := 0; i < n; i++ {
		ops = append(ops, set(fmt.Sprintf("a%d", i), Bool(i%2 == 0)))
		ops = append(ops, set(fmt.Sprintf("b%d", i), Bool(i%3 == 0)))
	}
	ops = append(ops,
		set("cin", Lo),
		set("phi1", Hi), // evaluate: carries ripple through the domino chain
		set("phi1", Lo), // precharge again
		set("a0", Hi), set("b0", Hi), set("cin", Hi),
		set("phi1", Hi), // evaluate a different vector
		set("a3", X),    // X-propagation mid-evaluate
		set("phi1", Lo),
	)
	runEquiv(t, func() *netlist.Circuit { return designs.DominoAdder(n) }, ops)
}

func TestWorklistMatchesFullSweepPassMux(t *testing.T) {
	n := 8
	var ops []simOp
	// All selects off, inputs driven: the shared node m floats.
	for i := 0; i < n; i++ {
		ops = append(ops, set(fmt.Sprintf("s%d", i), Lo))
		ops = append(ops, set(fmt.Sprintf("sn%d", i), Hi))
		ops = append(ops, set(fmt.Sprintf("in%d", i), Bool(i%2 == 1)))
	}
	ops = append(ops,
		// Select input 3 (Hi), then switch to input 4 (Lo).
		set("s3", Hi), set("sn3", Lo),
		set("s3", Lo), set("sn3", Hi),
		set("s4", Hi), set("sn4", Lo),
		// Release the selected input: m holds charge through the gate.
		release("in4"),
		// Half-select with an X on the select line.
		set("s4", Lo), set("sn4", Hi),
		set("s5", X), set("sn5", X),
		set("in5", Hi),
	)
	runEquiv(t, func() *netlist.Circuit { return designs.PassMux(n) }, ops)
}

// fightCircuit builds a node contested by two pass devices from two
// driven sources plus a ratioed pseudo-NMOS stage, so stimulus can walk
// it through resolved fights, X-gated maybe-conduction, and
// strength-ratio resolution — the resolveFight/compStrength paths.
func fightCircuit() *netlist.Circuit {
	c := netlist.New("fightcase")
	for _, p := range []string{"d1", "d2", "g1", "g2", "en"} {
		c.DeclarePort(p)
	}
	// Wide vs. narrow pass devices onto the contested node m: the wide
	// side wins a direct fight by more than strengthRatio.
	c.NMOS("m1", "g1", "d1", "m", 4.0, 0.1)
	c.NMOS("m2", "g2", "d2", "m", 0.5, 0.1)
	// Pseudo-NMOS stage on m: grounded-gate PMOS load fighting a driven
	// pulldown — a designed rail-to-rail fight.
	c.PMOS("load", "vss", "vdd", "q", 0.4, 0.1)
	c.NMOS("pull", "m", "q", "vss", 4.0, 0.1)
	// Observer inverter so X-propagation out of the fight is visible.
	designs.AddInverter(c, "obs", "q", "y", 1.0, 2.0)
	c.DeclarePort("y")
	return c
}

func TestWorklistMatchesFullSweepXFight(t *testing.T) {
	ops := []simOp{
		// Both pass gates on, sources disagree: wide side (d1=Hi) wins.
		set("d1", Hi), set("d2", Lo),
		set("g1", Hi), set("g2", Hi),
		// X on the strong gate: maybe-conduction, fight degrades to X
		// and the X walks through the pseudo-NMOS stage to y.
		set("g1", X),
		// Resolve again: strong side off, weak side drives alone.
		set("g1", Lo),
		// Flip the weak source; then X on the source itself.
		set("d2", Hi),
		set("d2", X),
		// Both gates off: m floats and keeps charge.
		set("g2", Lo),
		// Release a driven source while its gate is off (no effect),
		// then re-enable to share charge.
		release("d1"),
		set("g1", Hi),
	}
	runEquiv(t, fightCircuit, ops)
}
