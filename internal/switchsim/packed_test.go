package switchsim_test

// Differential lane-vs-scalar equivalence: every lane of a PackedSim
// must be bit-identical to an independent scalar Sim driven with that
// lane's stimulus — including X propagation (X stimulus lanes are
// injected), charge retention on released nodes, charge-sharing
// degradation and fight resolution. The scalar engine is the oracle;
// any packed/scalar divergence is a packed-kernel bug by definition.

import (
	"fmt"
	"testing"

	"repro/internal/designs"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/switchsim"
)

// diffEntry pairs a corpus design with a step budget: the 64 scalar
// oracle settles per step make big SRAM arrays expensive, so those get
// fewer steps (coverage of their paths is structural, not per-step).
type diffEntry struct {
	build func() *netlist.Circuit
	steps int
}

// diffCorpus mirrors the fcv bench zoo (24 parametric designs) plus
// the strength/fight-heavy extras.
func diffCorpus() map[string]diffEntry {
	corpus := map[string]diffEntry{}
	for _, n := range []int{8, 12, 16, 24, 32, 48} {
		n := n
		corpus[fmt.Sprintf("invchain%d", n)] = diffEntry{func() *netlist.Circuit { return designs.InverterChain(n) }, 10}
	}
	for _, bits := range []int{8, 12, 16, 20, 24, 32} {
		bits := bits
		corpus[fmt.Sprintf("adder%d", bits)] = diffEntry{func() *netlist.Circuit { return designs.DominoAdder(bits) }, 10}
	}
	for _, stages := range []int{4, 6, 8, 10, 12, 14} {
		stages := stages
		corpus[fmt.Sprintf("pipeline%d", stages)] = diffEntry{func() *netlist.Circuit { return designs.LatchPipeline(stages, false) }, 10}
	}
	corpus["racy_pipeline"] = diffEntry{func() *netlist.Circuit { return designs.LatchPipeline(5, true) }, 10}
	corpus["sram8x4"] = diffEntry{func() *netlist.Circuit { return designs.SRAMArray(8, 4, 0.09) }, 6}
	corpus["sram16x8"] = diffEntry{func() *netlist.Circuit { return designs.SRAMArray(16, 8, 0.09) }, 3}
	corpus["sram16x16"] = diffEntry{func() *netlist.Circuit { return designs.SRAMArray(16, 16, 0.09) }, 2}
	for _, n := range []int{4, 8, 16} {
		n := n
		corpus[fmt.Sprintf("passmux%d", n)] = diffEntry{func() *netlist.Circuit { return designs.PassMux(n) }, 10}
	}
	corpus["dcvsl4"] = diffEntry{func() *netlist.Circuit { return designs.DCVSLComparator(4) }, 10}
	corpus["regfile4x4"] = diffEntry{func() *netlist.Circuit { return designs.RegisterFile(4, 4) }, 8}
	return corpus
}

// seededDecks are the defect fixtures: they exist precisely because
// they trip fights, races and charge hazards — the rare packed-kernel
// paths.
var seededDecks = []string{
	"../../examples/decks/broken_lint.sp",
	"../../examples/decks/c2mos_pipe.sp",
	"../../examples/decks/c2mos_pipe_clean.sp",
	"../../examples/decks/nora_stage.sp",
	"../../examples/decks/nora_stage_clean.sp",
	"../../examples/decks/sneak_path.sp",
	"../../examples/decks/sneak_path_clean.sp",
	"../../examples/decks/domino_and2.sp",
	"../../examples/decks/latch_pipeline.sp",
}

// loadDeck parses and flattens a deck fixture (the fcv loadFlat rule).
func loadDeck(t *testing.T, path string) *netlist.Circuit {
	t.Helper()
	lib, top, err := netlist.ParseFile(path)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	if len(top.Devices) == 0 && len(top.Instances) == 0 {
		cells := lib.Cells()
		if len(cells) == 0 {
			t.Fatalf("%s: empty deck", path)
		}
		c, err := lib.Flatten(cells[len(cells)-1])
		if err != nil {
			t.Fatalf("flatten %s: %v", path, err)
		}
		return c
	}
	lib.Add(top)
	c, err := lib.Flatten(top.Name)
	if err != nil {
		t.Fatalf("flatten %s: %v", path, err)
	}
	return c
}

// laneStim is one port's per-lane stimulus: X where xm is set, else
// the hi bit decides.
type laneStim struct {
	port   string
	hi, xm uint64
}

func (ls laneStim) value(lane int) switchsim.Value {
	bit := uint64(1) << uint(lane)
	if ls.xm&bit != 0 {
		return switchsim.X
	}
	return switchsim.Bool(ls.hi&bit != 0)
}

// comparePackedScalar asserts every lane of the packed sim matches its
// scalar twin on every non-supply node.
func comparePackedScalar(t *testing.T, label string, p *switchsim.PackedSim, scalars []*switchsim.Sim) {
	t.Helper()
	c := p.Circuit()
	for id := range c.Nodes {
		nid := netlist.NodeID(id)
		if c.IsSupply(nid) {
			continue
		}
		for lane := range scalars {
			got := p.GetLaneID(nid, lane)
			want := scalars[lane].GetID(nid)
			if got != want {
				t.Fatalf("%s: node %s lane %d: packed %v, scalar %v",
					label, c.NodeName(nid), lane, got, want)
			}
		}
	}
}

// runPackedDiff drives one packed sim and 64 scalar sims through an
// identical randomized stimulus schedule — batched per-lane input
// changes (with an ~12%% X-lane rate), releases that float charged
// nodes, and resettles — comparing complete per-lane states after
// every settle.
func runPackedDiff(t *testing.T, c *netlist.Circuit, steps int, seed int64) {
	packed, err := switchsim.NewPacked(c)
	if err != nil {
		t.Fatal(err)
	}
	scalars := make([]*switchsim.Sim, switchsim.Lanes)
	for i := range scalars {
		s, err := switchsim.New(c)
		if err != nil {
			t.Fatal(err)
		}
		scalars[i] = s
	}

	var ports []string
	for _, id := range c.Ports {
		if !c.IsSupply(id) {
			ports = append(ports, c.NodeName(id))
		}
	}
	if len(ports) == 0 {
		t.Skip("no drivable ports")
	}

	packed.Settle()
	for _, s := range scalars {
		s.Settle()
	}
	comparePackedScalar(t, "initial settle", packed, scalars)

	rng := obs.NewRNG(seed)
	released := map[string]bool{}
	for step := 0; step < steps; step++ {
		if rng.Float64() < 0.15 {
			// Release a port: its lanes keep charge or float into the
			// charge-sharing rules.
			port := ports[rng.Intn(len(ports))]
			released[port] = true
			packed.Release(port)
			for _, s := range scalars {
				s.Release(port)
			}
			comparePackedScalar(t, fmt.Sprintf("step %d release %s", step, port), packed, scalars)
			continue
		}
		var batch []laneStim
		for _, port := range ports {
			if rng.Float64() > 0.7 {
				continue
			}
			ls := laneStim{port: port, hi: rng.Uint64(), xm: rng.Uint64() & rng.Uint64() & rng.Uint64()}
			batch = append(batch, ls)
			delete(released, port)
			packed.SetQuietLanes(port, ls.hi|ls.xm, ^ls.hi|ls.xm)
			for lane, s := range scalars {
				s.SetQuiet(port, ls.value(lane))
			}
		}
		packed.Settle()
		for _, s := range scalars {
			s.Settle()
		}
		comparePackedScalar(t, fmt.Sprintf("step %d batch(%d ports)", step, len(batch)), packed, scalars)
	}
}

// TestPackedLaneEquivalenceCorpus sweeps the full parametric design
// corpus.
func TestPackedLaneEquivalenceCorpus(t *testing.T) {
	for name, ent := range diffCorpus() {
		name, ent := name, ent
		t.Run(name, func(t *testing.T) {
			steps := ent.steps
			if testing.Short() {
				steps = (steps + 2) / 3
			}
			runPackedDiff(t, ent.build(), steps, int64(len(name))*7919+42)
		})
	}
}

// TestPackedLaneEquivalenceDecks sweeps the seeded-defect deck
// fixtures (and their clean twins).
func TestPackedLaneEquivalenceDecks(t *testing.T) {
	steps := 10
	if testing.Short() {
		steps = 3
	}
	for _, path := range seededDecks {
		path := path
		t.Run(path, func(t *testing.T) {
			runPackedDiff(t, loadDeck(t, path), steps, 1234)
		})
	}
}

// TestPackedLaneIndependence pins the defining property of lane
// packing directly: a lane's result depends only on its own stimulus.
// Lane 17 of a 64-lane run with garbage in every other lane must equal
// lane 0 of a run carrying only that stimulus.
func TestPackedLaneIndependence(t *testing.T) {
	c := designs.DominoAdder(8)
	noisy, err := switchsim.NewPacked(c)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := switchsim.NewPacked(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := obs.NewRNG(99)
	const lane = 17
	for step := 0; step < 6; step++ {
		for _, port := range []string{"phi", "a0", "b0", "a1", "b1", "cin"} {
			want := switchsim.Bool(rng.Float64() < 0.5)
			noise := rng.Uint64()
			hi, lo := noise, ^noise
			bit := uint64(1) << lane
			if want == switchsim.Hi {
				hi |= bit
				lo &^= bit
			} else {
				lo |= bit
				hi &^= bit
			}
			noisy.SetQuietLanes(port, hi, lo)
			clean.SetQuietAll(port, want)
		}
		noisy.Settle()
		clean.Settle()
		for id := range c.Nodes {
			nid := netlist.NodeID(id)
			if c.IsSupply(nid) {
				continue
			}
			if g, w := noisy.GetLaneID(nid, lane), clean.GetLaneID(nid, 0); g != w {
				t.Fatalf("step %d node %s: noisy lane %d = %v, clean = %v", step, c.NodeName(nid), lane, g, w)
			}
		}
	}
}
