package switchsim_test

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/switchsim"
)

// BenchmarkSettleKernel measures worklist settling throughput: clocked
// stimulus walked through the domino adder, the workload whose dirty
// cone the worklist scheduler was built for.
func BenchmarkSettleKernel(b *testing.B) {
	c := designs.DominoAdder(16)
	sim, err := switchsim.New(c)
	if err != nil {
		b.Fatal(err)
	}
	sim.Settle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.SetQuiet("phi", switchsim.Lo)
		sim.Settle()
		sim.SetQuiet("a0", switchsim.Bool(i%2 == 0))
		sim.SetQuiet("b0", switchsim.Hi)
		sim.SetQuiet("phi", switchsim.Hi)
		sim.Settle()
	}
}

// BenchmarkPackedSettleKernel is the 64-lane twin of
// BenchmarkSettleKernel: the same clocked domino-adder step, but every
// settle carries 64 independent data lanes. Compare ns/op against the
// scalar kernel and divide by 64 for the per-vector cost.
func BenchmarkPackedSettleKernel(b *testing.B) {
	c := designs.DominoAdder(16)
	sim, err := switchsim.NewPacked(c)
	if err != nil {
		b.Fatal(err)
	}
	sim.Settle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.SetQuietAll("phi", switchsim.Lo)
		sim.Settle()
		lanes := uint64(i) * 0x9e3779b97f4a7c15
		sim.SetQuietLanes("a0", lanes, ^lanes)
		sim.SetQuietAll("b0", switchsim.Hi)
		sim.SetQuietAll("phi", switchsim.Hi)
		sim.Settle()
	}
}
