// Package switchsim is a switch-level simulator for transistor netlists.
//
// The paper's logic verification (§4.1) runs circuit-level simulation of
// full-custom logic whose behaviour no cell library defines; a
// switch-level model — transistors as gate-controlled switches with
// three-valued node states and charge retention on floating nodes — is
// the classic abstraction for that job (IRSIM lineage). It captures
// exactly the behaviours the paper's circuit styles rely on: precharged
// dynamic nodes that hold state while floating, transmission gates,
// ratioed fights, and the charge-sharing hazards of Figure 3.
//
// The simulator is a unit-delay relaxation engine: after each input
// change, node values are recomputed from rail-reachability through
// conducting channels until a fixed point; oscillation resolves to X.
package switchsim

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/process"
)

// Value is a three-valued logic level.
type Value int8

// The node values. X is both "unknown" and "invalid" (fight/oscillation).
const (
	Lo Value = iota
	Hi
	X
)

// String returns "0", "1" or "X".
func (v Value) String() string {
	switch v {
	case Lo:
		return "0"
	case Hi:
		return "1"
	default:
		return "X"
	}
}

// Bool converts a bool to a Value.
func Bool(b bool) Value {
	if b {
		return Hi
	}
	return Lo
}

// topology is the static structure of one flat circuit shared by every
// simulator instance over it: the channel-connected component (CCC)
// partition, per-node device indexes and gate fanout. It is built once
// and read-only afterwards, so the scalar Sim and the 64-lane PackedSim
// embed the same topology without re-deriving it.
type topology struct {
	c *netlist.Circuit
	// vdd/vss node ids (may be InvalidNode if absent).
	vdd, vss netlist.NodeID
	// devsByNode indexes devices by channel terminal for traversal.
	// Every device on a non-supply node belongs to that node's
	// component, so component-local walks can use it unfiltered.
	devsByNode [][]*netlist.Device
	// comp maps each node to its channel-connected component (-1 for
	// supply rails, which belong to every component's boundary and
	// none's interior).
	comp      []int
	compNodes [][]netlist.NodeID
	compDevs  [][]*netlist.Device
	// gateComps lists, per node, the components containing a device the
	// node gates — the fanout cone one value change can disturb.
	gateComps [][]int
}

// newTopology partitions a flat circuit into its static simulation
// structure.
func newTopology(c *netlist.Circuit) (*topology, error) {
	if len(c.Instances) > 0 {
		return nil, fmt.Errorf("switchsim: circuit %s has unflattened instances", c.Name)
	}
	t := &topology{
		c:          c,
		vdd:        c.FindNode(netlist.VddName),
		vss:        c.FindNode(netlist.VssName),
		devsByNode: make([][]*netlist.Device, len(c.Nodes)),
	}
	for _, d := range c.Devices {
		t.devsByNode[d.Source] = append(t.devsByNode[d.Source], d)
		if d.Drain != d.Source {
			t.devsByNode[d.Drain] = append(t.devsByNode[d.Drain], d)
		}
	}
	t.buildComponents()
	return t, nil
}

// Sim is a switch-level simulation instance over one flat circuit.
//
// Settling is organized around the circuit's channel-connected
// components (CCCs): node values depend only on the values/drives of
// their own component plus the gate values of its devices, so after an
// input change only the components in the change's fanout cone are
// re-evaluated (a dirty-component worklist). Cost scales with the cone,
// not the circuit size, while producing bit-identical results to the
// classic full-sweep relaxation (see settleFull and its regression
// tests).
type Sim struct {
	*topology
	// value is the current level of every node.
	value []Value
	// driven marks externally forced nodes (inputs, rails).
	driven []bool
	// steps counts relaxation iterations for reporting; compEvals
	// counts component evaluations (the worklist's unit of work).
	steps     int
	compEvals int
	// obs, when set, receives worklist counters after every Settle.
	obs *obs.Collector

	// Dirty-component worklist (deduplicated via the dirty flags).
	dirty     []bool
	dirtyList []int
	wave      []int

	// Scratch buffers reused across component evaluations.
	defVdd, defVss, mayVdd, mayVss []bool
	strength                       []float64
	blocked                        []bool
	queue                          []netlist.NodeID
	seedHi, seedLo, seedX          []netlist.NodeID
	pend                           []pendingVal
	changed                        []netlist.NodeID
	floating, island               []netlist.NodeID
	isFloat, seenFloat             []bool
}

// pendingVal stages one node update within a wave so every component is
// evaluated against the same pre-wave state (Jacobi semantics).
type pendingVal struct {
	id netlist.NodeID
	v  Value
}

// MaxIterations bounds relaxation; exceeding it marks changed nodes X.
const MaxIterations = 500

// New builds a simulator for a flat circuit. All nodes start at X except
// the rails.
func New(c *netlist.Circuit) (*Sim, error) {
	t, err := newTopology(c)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		topology: t,
		value:    make([]Value, len(c.Nodes)),
		driven:   make([]bool, len(c.Nodes)),
	}
	for i := range s.value {
		s.value[i] = X
	}
	if s.vdd != netlist.InvalidNode {
		s.value[s.vdd] = Hi
		s.driven[s.vdd] = true
	}
	if s.vss != netlist.InvalidNode {
		s.value[s.vss] = Lo
		s.driven[s.vss] = true
	}
	s.dirty = make([]bool, len(t.compDevs))
	s.defVdd = make([]bool, len(c.Nodes))
	s.defVss = make([]bool, len(c.Nodes))
	s.mayVdd = make([]bool, len(c.Nodes))
	s.mayVss = make([]bool, len(c.Nodes))
	s.strength = make([]float64, len(c.Nodes))
	s.blocked = make([]bool, len(c.Nodes))
	s.isFloat = make([]bool, len(c.Nodes))
	s.seenFloat = make([]bool, len(c.Nodes))
	// Everything starts dirty: the first Settle establishes the initial
	// fixed point exactly as a full sweep would.
	for ci := range s.compDevs {
		s.markComp(ci)
	}
	return s, nil
}

// buildComponents partitions non-supply nodes into channel-connected
// components (union-find over source/drain edges, cut at the rails) and
// indexes member devices and gate fanout per component.
func (s *topology) buildComponents() {
	c := s.c
	parent := make([]int, len(c.Nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, d := range c.Devices {
		if !c.IsSupply(d.Source) && !c.IsSupply(d.Drain) {
			union(int(d.Source), int(d.Drain))
		}
	}
	s.comp = make([]int, len(c.Nodes))
	idOfRoot := make(map[int]int)
	for i := range c.Nodes {
		nid := netlist.NodeID(i)
		if c.IsSupply(nid) {
			s.comp[i] = -1
			continue
		}
		root := find(i)
		ci, ok := idOfRoot[root]
		if !ok {
			ci = len(s.compNodes)
			idOfRoot[root] = ci
			s.compNodes = append(s.compNodes, nil)
			s.compDevs = append(s.compDevs, nil)
		}
		s.comp[i] = ci
		s.compNodes[ci] = append(s.compNodes[ci], nid)
	}
	s.gateComps = make([][]int, len(c.Nodes))
	for _, d := range c.Devices {
		t := d.Source
		if c.IsSupply(t) {
			t = d.Drain
		}
		if c.IsSupply(t) {
			continue // rail-to-rail device: can never affect a node value
		}
		ci := s.comp[t]
		s.compDevs[ci] = append(s.compDevs[ci], d)
		found := false
		for _, gc := range s.gateComps[d.Gate] {
			if gc == ci {
				found = true
				break
			}
		}
		if !found {
			s.gateComps[d.Gate] = append(s.gateComps[d.Gate], ci)
		}
	}
}

// markComp queues a component for re-evaluation.
func (s *Sim) markComp(ci int) {
	if ci >= 0 && !s.dirty[ci] {
		s.dirty[ci] = true
		s.dirtyList = append(s.dirtyList, ci)
	}
}

// markNode queues everything a change on the node can disturb: its own
// component (channel effects) and every component it gates.
func (s *Sim) markNode(id netlist.NodeID) {
	s.markComp(s.comp[id])
	for _, ci := range s.gateComps[id] {
		s.markComp(ci)
	}
}

// Circuit returns the simulated circuit.
func (s *Sim) Circuit() *netlist.Circuit { return s.c }

// Set forces the named node to a value (an external drive) and relaxes
// the circuit. It returns the number of relaxation iterations.
func (s *Sim) Set(name string, v Value) int {
	id := s.c.FindNode(name)
	if id == netlist.InvalidNode {
		return 0
	}
	s.value[id] = v
	s.driven[id] = true
	s.markNode(id)
	return s.Settle()
}

// SetQuiet forces a node without relaxing (for batching input changes).
func (s *Sim) SetQuiet(name string, v Value) {
	id := s.c.FindNode(name)
	if id == netlist.InvalidNode {
		return
	}
	s.value[id] = v
	s.driven[id] = true
	s.markNode(id)
}

// Release removes the external drive from a node (it becomes a charged,
// possibly floating node) and relaxes.
func (s *Sim) Release(name string) int {
	id := s.c.FindNode(name)
	if id == netlist.InvalidNode || s.c.IsSupply(id) {
		return 0
	}
	s.driven[id] = false
	s.markNode(id)
	return s.Settle()
}

// Get returns the current value of the named node (X for unknown names).
func (s *Sim) Get(name string) Value {
	id := s.c.FindNode(name)
	if id == netlist.InvalidNode {
		return X
	}
	return s.value[id]
}

// GetID returns the value of a node by ID.
func (s *Sim) GetID(id netlist.NodeID) Value { return s.value[id] }

// conductance classifies a device's channel at current gate value.
type conductance int

const (
	off conductance = iota
	on
	maybe
)

// conducts returns the channel state of d given its gate's value.
func (s *Sim) conducts(d *netlist.Device) conductance {
	g := s.value[d.Gate]
	if g == X {
		return maybe
	}
	if (d.Type == process.NMOS && g == Hi) || (d.Type == process.PMOS && g == Lo) {
		return on
	}
	return off
}

// Settle relaxes node values to a fixed point and returns the iteration
// count. Only the components marked dirty (by Set/Release and by value
// changes rippling through gate fanout) are re-evaluated each wave; the
// results are identical to a full sweep because a clean component is by
// definition already at its local fixed point. If MaxIterations is
// exceeded, the still-changing nodes are set to X (oscillation — e.g.
// an enabled ring).
func (s *Sim) Settle() int {
	prevEvals := s.compEvals
	iters := s.settleLoop()
	s.steps += iters
	if s.obs != nil {
		s.obs.Add("switchsim.settles", 1)
		s.obs.Add("switchsim.worklist_iterations", int64(iters))
		s.obs.Add("switchsim.components_resettled", int64(s.compEvals-prevEvals))
	}
	return iters
}

// settleLoop is Settle's worklist relaxation, counters excluded.
func (s *Sim) settleLoop() int {
	iters := 0
	for {
		wl := s.takeDirty()
		if len(wl) == 0 {
			return iters
		}
		changed := s.waveEval(wl)
		iters++
		if len(changed) == 0 {
			return iters
		}
		for _, id := range changed {
			s.markNode(id)
		}
		if iters >= MaxIterations {
			for _, id := range changed {
				if !s.driven[id] {
					s.value[id] = X
					s.markNode(id)
				}
			}
			return iters
		}
	}
}

// settleFull relaxes with every component evaluated every wave — the
// classic full-sweep (Jacobi) schedule the worklist replaced. Kept as a
// schedule-free reference implementation: the regression tests drive a
// worklist sim and a full-sweep sim through identical stimulus and
// require identical states. Production code always uses Settle.
func (s *Sim) settleFull() int {
	all := make([]int, len(s.compDevs))
	for i := range all {
		all[i] = i
	}
	// The full schedule subsumes any pending dirty marks.
	for _, ci := range s.dirtyList {
		s.dirty[ci] = false
	}
	s.dirtyList = s.dirtyList[:0]
	iters := 0
	for {
		changed := s.waveEval(all)
		iters++
		if len(changed) == 0 {
			s.steps += iters
			return iters
		}
		if iters >= MaxIterations {
			for _, id := range changed {
				if !s.driven[id] {
					s.value[id] = X
				}
			}
			s.steps += iters
			return iters
		}
	}
}

// takeDirty claims the current dirty set as this wave's worklist,
// sorted for deterministic evaluation order.
func (s *Sim) takeDirty() []int {
	wl := append(s.wave[:0], s.dirtyList...)
	slices.Sort(wl)
	for _, ci := range s.dirtyList {
		s.dirty[ci] = false
	}
	s.dirtyList = s.dirtyList[:0]
	s.wave = wl
	return wl
}

// waveEval evaluates the given components against the current state,
// then applies all staged updates at once (so the wave behaves exactly
// like one Jacobi sweep restricted to those components) and returns the
// nodes whose value changed.
func (s *Sim) waveEval(comps []int) []netlist.NodeID {
	s.compEvals += len(comps)
	s.pend = s.pend[:0]
	for _, ci := range comps {
		s.evalComp(ci)
	}
	changed := s.changed[:0]
	for _, p := range s.pend {
		if s.value[p.id] != p.v {
			s.value[p.id] = p.v
			changed = append(changed, p.id)
		}
	}
	s.changed = changed
	return changed
}

// evalComp recomputes the component's non-driven nodes from the current
// state and stages the differences. The evaluation is a pure function
// of the component's member values/drives and the gate values of its
// devices — the invariant the dirty-marking in markNode relies on.
func (s *Sim) evalComp(ci int) {
	nodes := s.compNodes[ci]
	devs := s.compDevs[ci]
	if len(devs) == 0 {
		return // isolated nodes just hold their charge
	}
	// Drive-source seeds local to this component. Externally driven
	// members are drive sources just like the rails: a high input
	// propagates through pass structures exactly as vdd does.
	seedHi, seedLo, seedX := s.seedHi[:0], s.seedLo[:0], s.seedX[:0]
	for _, nid := range nodes {
		if !s.driven[nid] {
			continue
		}
		switch s.value[nid] {
		case Hi:
			seedHi = append(seedHi, nid)
		case Lo:
			seedLo = append(seedLo, nid)
		default:
			seedX = append(seedX, nid)
		}
	}
	s.seedHi, s.seedLo, s.seedX = seedHi, seedLo, seedX

	// Rail reachability under definite conduction and under
	// maybe-conduction (definite ∪ maybe), restricted to the component.
	s.compReach(s.defVdd, devs, s.vdd, seedHi, nil, false)
	s.compReach(s.defVss, devs, s.vss, seedLo, nil, false)
	s.compReach(s.mayVdd, devs, s.vdd, seedHi, seedX, true)
	s.compReach(s.mayVss, devs, s.vss, seedLo, seedX, true)

	floating := s.floating[:0]
	for _, nid := range nodes {
		id := int(nid)
		if s.driven[id] {
			continue
		}
		var nv Value
		switch {
		case s.defVdd[id] && s.defVss[id]:
			// A fight. Ratioed logic (pseudo-NMOS, keepers vs. write
			// drivers) is *designed* to fight, with the intended winner
			// sized decisively stronger; resolve by path strength.
			nv = s.resolveFight(ci, nid, seedHi, seedLo)
		case s.defVdd[id] && !s.mayVss[id]:
			nv = Hi
		case s.defVss[id] && !s.mayVdd[id]:
			nv = Lo
		case s.defVdd[id] && s.mayVss[id]:
			// Definitely pulled high, possibly also pulled low. If the
			// definite high side beats the worst-case (fully
			// conducting) low side by the sizing ratio, the level is
			// resolved regardless of the uncertainty — this is what
			// lets sized structures (DCVSL, keepers) escape X-lock.
			hi := s.compStrength(ci, nid, s.vdd, seedHi, nil, false)
			lo := s.compStrength(ci, nid, s.vss, seedLo, seedX, true)
			if hi >= strengthRatio*lo {
				nv = Hi
			} else {
				nv = X
			}
		case s.defVss[id] && s.mayVdd[id]:
			lo := s.compStrength(ci, nid, s.vss, seedLo, nil, false)
			hi := s.compStrength(ci, nid, s.vdd, seedHi, seedX, true)
			if lo >= strengthRatio*hi {
				nv = Lo
			} else {
				nv = X
			}
		case s.mayVdd[id] || s.mayVss[id]:
			// Some uncertain drive: conservatively unknown, unless the
			// only uncertainty agrees with one rail and excludes the
			// other entirely (possibly pulled to the value already
			// held: keep it).
			switch {
			case s.mayVdd[id] && !s.mayVss[id] && s.value[id] == Hi:
				nv = Hi
			case s.mayVss[id] && !s.mayVdd[id] && s.value[id] == Lo:
				nv = Lo
			default:
				nv = X
			}
		default:
			floating = append(floating, nid)
			continue
		}
		if nv != s.value[id] {
			s.pend = append(s.pend, pendingVal{nid, nv})
		}
	}

	// Charge sharing among floating nodes: nodes joined by definitely
	// conducting channels share charge. Conservative resolution: if the
	// island holds mixed values, the island goes X; a maybe-conducting
	// bridge to a different value also degrades to X (Figure 3's charge
	// share hazard). Capacitance-weighted resolution is the checks
	// package's refinement; simulation stays conservative. Islands
	// never cross component boundaries (they are channel-connected).
	if len(floating) > 0 {
		isFloating, seen := s.isFloat, s.seenFloat
		for _, id := range floating {
			isFloating[id] = true
		}
		for _, start := range floating {
			if seen[start] {
				continue
			}
			island := append(s.island[:0], start)
			seen[start] = true
			mixed := false
			degraded := false
			v := s.value[start]
			for i := 0; i < len(island); i++ {
				at := island[i]
				for _, d := range s.devsByNode[at] {
					other := d.Source
					if other == at {
						other = d.Drain
					}
					switch s.conducts(d) {
					case on:
						if isFloating[other] && !seen[other] {
							seen[other] = true
							island = append(island, other)
							if s.value[other] != v {
								mixed = true
							}
						}
					case maybe:
						if isFloating[other] && s.value[other] != v {
							degraded = true
						}
					}
				}
			}
			if mixed || degraded {
				for _, id := range island {
					if s.value[id] != X {
						s.pend = append(s.pend, pendingVal{id, X})
					}
				}
			}
			s.island = island
			// Otherwise the island retains its stored charge.
		}
		for _, id := range floating {
			isFloating[id] = false
			seen[id] = false
		}
	}
	s.floating = floating

	// Reset the reach scratch for the next component (rails are never
	// marked; only members were).
	for _, nid := range nodes {
		s.defVdd[nid] = false
		s.defVss[nid] = false
		s.mayVdd[nid] = false
		s.mayVss[nid] = false
	}
}

// compReach marks (in out) the component members with a conducting path
// from the rail or any seed. If includeMaybe, maybe-conducting devices
// are traversable. Propagation does not continue *through* an
// externally driven node: the driver pins it, and the driven node is
// itself a seed of its own value. The rail is expanded through the
// component's own devices so shared-rail fanout costs nothing.
func (s *Sim) compReach(out []bool, devs []*netlist.Device, rail netlist.NodeID, seeds, extra []netlist.NodeID, includeMaybe bool) {
	q := s.queue[:0]
	for _, r := range seeds {
		if !out[r] {
			out[r] = true
			q = append(q, r)
		}
	}
	for _, r := range extra {
		if !out[r] {
			out[r] = true
			q = append(q, r)
		}
	}
	if rail != netlist.InvalidNode {
		for _, d := range devs {
			if d.Source != rail && d.Drain != rail {
				continue
			}
			cd := s.conducts(d)
			if cd == off || (cd == maybe && !includeMaybe) {
				continue
			}
			other := d.Source
			if other == rail {
				other = d.Drain
			}
			if out[other] || s.c.IsSupply(other) {
				continue
			}
			out[other] = true
			if !s.driven[other] {
				q = append(q, other)
			}
		}
	}
	for len(q) > 0 {
		at := q[len(q)-1]
		q = q[:len(q)-1]
		for _, d := range s.devsByNode[at] {
			cd := s.conducts(d)
			if cd == off || (cd == maybe && !includeMaybe) {
				continue
			}
			other := d.Source
			if other == at {
				other = d.Drain
			}
			if out[other] || s.c.IsSupply(other) {
				continue
			}
			out[other] = true
			if !s.driven[other] {
				q = append(q, other)
			}
		}
	}
	s.queue = q[:0]
}

// strengthRatio is the sizing margin at which one side of a fight is
// declared the winner: the checks package's writability analysis uses a
// comparable margin. Below it, the result is conservatively X.
const strengthRatio = 2.0

// resolveFight decides a node connected to both rails at once. Each
// side's strength is the widest-path conductance (max over paths of the
// minimum device conductance along the path) from the node to that
// side's seeds through definitely-conducting devices.
func (s *Sim) resolveFight(ci int, id netlist.NodeID, seedHi, seedLo []netlist.NodeID) Value {
	hi := s.compStrength(ci, id, s.vdd, seedHi, nil, false)
	lo := s.compStrength(ci, id, s.vss, seedLo, nil, false)
	switch {
	case lo >= strengthRatio*hi && lo > 0:
		return Lo
	case hi >= strengthRatio*lo && hi > 0:
		return Hi
	default:
		return X
	}
}

// conductanceOf returns a device's channel conductance proxy (W/Leff,
// derated for PMOS mobility).
func conductanceOf(d *netlist.Device) float64 {
	g := d.W / d.Leff()
	if d.Type == process.PMOS {
		g *= 0.4
	}
	return g
}

// compStrength computes the widest-path strength from id to the rail or
// any seed via conducting devices within one component, by fixpoint
// relaxation (the graphs are small; simplicity beats a heap here). With
// includeMaybe, maybe-conducting devices count as fully conducting (a
// worst-case bound). A channel path cannot leave the component except
// through a rail, and strength never crosses the opposing (blocked)
// rail, so the restriction to compDevs is exact.
func (s *Sim) compStrength(ci int, id, rail netlist.NodeID, seeds, extra []netlist.NodeID, includeMaybe bool) float64 {
	const inf = 1e18
	str, blocked := s.strength, s.blocked
	nodes := s.compNodes[ci]
	devs := s.compDevs[ci]
	// Strength never propagates *through* a pinned node (a rail or an
	// externally driven input) unless that node is a seed of this side.
	for _, nid := range nodes {
		str[nid] = 0
		blocked[nid] = s.driven[nid]
	}
	for _, r := range []netlist.NodeID{s.vdd, s.vss} {
		if r != netlist.InvalidNode {
			str[r] = 0
			blocked[r] = true
		}
	}
	if rail != netlist.InvalidNode {
		str[rail] = inf
		blocked[rail] = false
	}
	for _, r := range seeds {
		str[r] = inf
		blocked[r] = false
	}
	for _, r := range extra {
		str[r] = inf
		blocked[r] = false
	}
	for changed := true; changed; {
		changed = false
		for _, d := range devs {
			c := s.conducts(d)
			if c == off || (c == maybe && !includeMaybe) {
				continue
			}
			g := conductanceOf(d)
			a, b := d.Source, d.Drain
			if !blocked[a] || str[a] == inf {
				if v := min2(str[a], g); v > str[b] {
					str[b] = v
					changed = true
				}
			}
			if !blocked[b] || str[b] == inf {
				if v := min2(str[b], g); v > str[a] {
					str[a] = v
					changed = true
				}
			}
		}
	}
	return str[id]
}

// min2 returns the smaller of two float64s.
func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Steps returns the cumulative relaxation iterations (a simulation cost
// metric).
func (s *Sim) Steps() int { return s.steps }

// CompEvals returns the cumulative component evaluations — the
// worklist's unit of work, and the number a full-sweep schedule would
// dwarf (it evaluates every component every wave).
func (s *Sim) CompEvals() int { return s.compEvals }

// SetObserver attaches a telemetry collector: every Settle adds
// switchsim.settles, switchsim.worklist_iterations and
// switchsim.components_resettled. A nil collector detaches.
func (s *Sim) SetObserver(c *obs.Collector) { s.obs = c }

// Snapshot returns a name→value map of all non-supply nodes, for test
// assertions and trace dumps.
func (s *Sim) Snapshot() map[string]Value {
	out := make(map[string]Value)
	for id, n := range s.c.Nodes {
		if !s.c.IsSupply(netlist.NodeID(id)) {
			out[n.Name] = s.value[id]
		}
	}
	return out
}

// UnknownNodes returns the sorted names of nodes currently at X.
func (s *Sim) UnknownNodes() []string {
	var out []string
	for id, n := range s.c.Nodes {
		if s.value[id] == X && !s.c.IsSupply(netlist.NodeID(id)) {
			out = append(out, n.Name)
		}
	}
	sort.Strings(out)
	return out
}
