// Package switchsim is a switch-level simulator for transistor netlists.
//
// The paper's logic verification (§4.1) runs circuit-level simulation of
// full-custom logic whose behaviour no cell library defines; a
// switch-level model — transistors as gate-controlled switches with
// three-valued node states and charge retention on floating nodes — is
// the classic abstraction for that job (IRSIM lineage). It captures
// exactly the behaviours the paper's circuit styles rely on: precharged
// dynamic nodes that hold state while floating, transmission gates,
// ratioed fights, and the charge-sharing hazards of Figure 3.
//
// The simulator is a unit-delay relaxation engine: after each input
// change, node values are recomputed from rail-reachability through
// conducting channels until a fixed point; oscillation resolves to X.
package switchsim

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
	"repro/internal/process"
)

// Value is a three-valued logic level.
type Value int8

// The node values. X is both "unknown" and "invalid" (fight/oscillation).
const (
	Lo Value = iota
	Hi
	X
)

// String returns "0", "1" or "X".
func (v Value) String() string {
	switch v {
	case Lo:
		return "0"
	case Hi:
		return "1"
	default:
		return "X"
	}
}

// Bool converts a bool to a Value.
func Bool(b bool) Value {
	if b {
		return Hi
	}
	return Lo
}

// Sim is a switch-level simulation instance over one flat circuit.
type Sim struct {
	c *netlist.Circuit
	// value is the current level of every node.
	value []Value
	// driven marks externally forced nodes (inputs, rails).
	driven []bool
	// vdd/vss node ids (may be InvalidNode if absent).
	vdd, vss netlist.NodeID
	// devsByNode indexes devices by channel terminal for traversal.
	devsByNode [][]*netlist.Device
	// steps counts relaxation iterations for reporting.
	steps int
}

// MaxIterations bounds relaxation; exceeding it marks changed nodes X.
const MaxIterations = 500

// New builds a simulator for a flat circuit. All nodes start at X except
// the rails.
func New(c *netlist.Circuit) (*Sim, error) {
	if len(c.Instances) > 0 {
		return nil, fmt.Errorf("switchsim: circuit %s has unflattened instances", c.Name)
	}
	s := &Sim{
		c:          c,
		value:      make([]Value, len(c.Nodes)),
		driven:     make([]bool, len(c.Nodes)),
		vdd:        c.FindNode(netlist.VddName),
		vss:        c.FindNode(netlist.VssName),
		devsByNode: make([][]*netlist.Device, len(c.Nodes)),
	}
	for i := range s.value {
		s.value[i] = X
	}
	if s.vdd != netlist.InvalidNode {
		s.value[s.vdd] = Hi
		s.driven[s.vdd] = true
	}
	if s.vss != netlist.InvalidNode {
		s.value[s.vss] = Lo
		s.driven[s.vss] = true
	}
	for _, d := range c.Devices {
		s.devsByNode[d.Source] = append(s.devsByNode[d.Source], d)
		if d.Drain != d.Source {
			s.devsByNode[d.Drain] = append(s.devsByNode[d.Drain], d)
		}
	}
	return s, nil
}

// Circuit returns the simulated circuit.
func (s *Sim) Circuit() *netlist.Circuit { return s.c }

// Set forces the named node to a value (an external drive) and relaxes
// the circuit. It returns the number of relaxation iterations.
func (s *Sim) Set(name string, v Value) int {
	id := s.c.FindNode(name)
	if id == netlist.InvalidNode {
		return 0
	}
	s.value[id] = v
	s.driven[id] = true
	return s.Settle()
}

// SetQuiet forces a node without relaxing (for batching input changes).
func (s *Sim) SetQuiet(name string, v Value) {
	id := s.c.FindNode(name)
	if id == netlist.InvalidNode {
		return
	}
	s.value[id] = v
	s.driven[id] = true
}

// Release removes the external drive from a node (it becomes a charged,
// possibly floating node) and relaxes.
func (s *Sim) Release(name string) int {
	id := s.c.FindNode(name)
	if id == netlist.InvalidNode || s.c.IsSupply(id) {
		return 0
	}
	s.driven[id] = false
	return s.Settle()
}

// Get returns the current value of the named node (X for unknown names).
func (s *Sim) Get(name string) Value {
	id := s.c.FindNode(name)
	if id == netlist.InvalidNode {
		return X
	}
	return s.value[id]
}

// GetID returns the value of a node by ID.
func (s *Sim) GetID(id netlist.NodeID) Value { return s.value[id] }

// conductance classifies a device's channel at current gate value.
type conductance int

const (
	off conductance = iota
	on
	maybe
)

// conducts returns the channel state of d given its gate's value.
func (s *Sim) conducts(d *netlist.Device) conductance {
	g := s.value[d.Gate]
	if g == X {
		return maybe
	}
	if (d.Type == process.NMOS && g == Hi) || (d.Type == process.PMOS && g == Lo) {
		return on
	}
	return off
}

// Settle relaxes node values to a fixed point and returns the iteration
// count. If MaxIterations is exceeded, the still-changing nodes are set
// to X (oscillation — e.g. an enabled ring) and relaxation re-runs once.
func (s *Sim) Settle() int {
	iters := 0
	for {
		changedNodes := s.relaxOnce()
		iters++
		if len(changedNodes) == 0 {
			s.steps += iters
			return iters
		}
		if iters >= MaxIterations {
			for _, id := range changedNodes {
				if !s.driven[id] {
					s.value[id] = X
				}
			}
			s.steps += iters
			return iters
		}
	}
}

// relaxOnce recomputes every non-driven node once from the current state
// and returns the IDs whose value changed.
func (s *Sim) relaxOnce() []netlist.NodeID {
	// Drive-source reachability under definite conduction and under
	// maybe-conduction (definite ∪ maybe). Externally driven nodes are
	// drive sources just like the rails: a high input propagates
	// through pass structures exactly as vdd does.
	var seedHi, seedLo, seedX []netlist.NodeID
	if s.vdd != netlist.InvalidNode {
		seedHi = append(seedHi, s.vdd)
	}
	if s.vss != netlist.InvalidNode {
		seedLo = append(seedLo, s.vss)
	}
	for id, dr := range s.driven {
		nid := netlist.NodeID(id)
		if !dr || s.c.IsSupply(nid) {
			continue
		}
		switch s.value[id] {
		case Hi:
			seedHi = append(seedHi, nid)
		case Lo:
			seedLo = append(seedLo, nid)
		default:
			seedX = append(seedX, nid)
		}
	}
	defVdd := s.reach(seedHi, false)
	defVss := s.reach(seedLo, false)
	mayVdd := s.reach(append(append([]netlist.NodeID(nil), seedHi...), seedX...), true)
	mayVss := s.reach(append(append([]netlist.NodeID(nil), seedLo...), seedX...), true)

	next := make([]Value, len(s.value))
	copy(next, s.value)
	var floating []netlist.NodeID
	for id := range s.value {
		nid := netlist.NodeID(id)
		if s.driven[id] {
			continue
		}
		switch {
		case defVdd[id] && defVss[id]:
			// A fight. Ratioed logic (pseudo-NMOS, keepers vs. write
			// drivers) is *designed* to fight, with the intended winner
			// sized decisively stronger; resolve by path strength.
			next[id] = s.resolveFight(nid, seedHi, seedLo)
		case defVdd[id] && !mayVss[id]:
			next[id] = Hi
		case defVss[id] && !mayVdd[id]:
			next[id] = Lo
		case defVdd[id] && mayVss[id]:
			// Definitely pulled high, possibly also pulled low. If the
			// definite high side beats the worst-case (fully
			// conducting) low side by the sizing ratio, the level is
			// resolved regardless of the uncertainty — this is what
			// lets sized structures (DCVSL, keepers) escape X-lock.
			hi := s.pathStrength(nid, seedHi, false)
			lo := s.pathStrength(nid, append(append([]netlist.NodeID(nil), seedLo...), seedX...), true)
			if hi >= strengthRatio*lo {
				next[id] = Hi
			} else {
				next[id] = X
			}
		case defVss[id] && mayVdd[id]:
			lo := s.pathStrength(nid, seedLo, false)
			hi := s.pathStrength(nid, append(append([]netlist.NodeID(nil), seedHi...), seedX...), true)
			if lo >= strengthRatio*hi {
				next[id] = Lo
			} else {
				next[id] = X
			}
		case mayVdd[id] || mayVss[id]:
			// Some uncertain drive: conservatively unknown, unless the
			// only uncertainty agrees with one rail and excludes the
			// other entirely.
			switch {
			case mayVdd[id] && !mayVss[id] && s.value[id] == Hi:
				// Possibly pulled to the value it already holds: keep.
			case mayVss[id] && !mayVdd[id] && s.value[id] == Lo:
				// Same, low side.
			default:
				next[id] = X
			}
		default:
			floating = append(floating, nid)
		}
	}

	// Charge sharing among floating nodes: nodes joined by definitely
	// conducting channels share charge. Conservative resolution: if the
	// island holds mixed values, the island goes X; a maybe-conducting
	// bridge to a different value also degrades to X (Figure 3's charge
	// share hazard). Capacitance-weighted resolution is the checks
	// package's refinement; simulation stays conservative.
	isFloating := make(map[netlist.NodeID]bool, len(floating))
	for _, id := range floating {
		isFloating[id] = true
	}
	seen := make(map[netlist.NodeID]bool)
	for _, start := range floating {
		if seen[start] {
			continue
		}
		island := []netlist.NodeID{start}
		seen[start] = true
		mixed := false
		degraded := false
		v := s.value[start]
		for i := 0; i < len(island); i++ {
			at := island[i]
			for _, d := range s.devsByNode[at] {
				other := d.Source
				if other == at {
					other = d.Drain
				}
				switch s.conducts(d) {
				case on:
					if isFloating[other] && !seen[other] {
						seen[other] = true
						island = append(island, other)
						if s.value[other] != v {
							mixed = true
						}
					}
				case maybe:
					if isFloating[other] && s.value[other] != v {
						degraded = true
					}
				}
			}
		}
		if mixed || degraded {
			for _, id := range island {
				next[id] = X
			}
		}
		// Otherwise the island retains its stored charge (next already
		// carries the old value).
	}

	var changed []netlist.NodeID
	for id := range next {
		if next[id] != s.value[id] {
			changed = append(changed, netlist.NodeID(id))
		}
	}
	copy(s.value, next)
	return changed
}

// reach returns, for every node, whether a conducting path from any seed
// exists. If includeMaybe, maybe-conducting devices are traversable.
// Propagation does not continue *through* an externally driven node: the
// driver pins it, and the driven node is itself a seed of its own value.
func (s *Sim) reach(seeds []netlist.NodeID, includeMaybe bool) []bool {
	out := make([]bool, len(s.value))
	queue := make([]netlist.NodeID, 0, len(seeds))
	for _, r := range seeds {
		if !out[r] {
			out[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		for _, d := range s.devsByNode[at] {
			c := s.conducts(d)
			if c == off || (c == maybe && !includeMaybe) {
				continue
			}
			other := d.Source
			if other == at {
				other = d.Drain
			}
			if out[other] || s.c.IsSupply(other) {
				continue
			}
			out[other] = true
			// External drives pin their node; conduction does not
			// propagate through a driven node onto others (the driver
			// wins locally in this abstraction).
			if !s.driven[other] {
				queue = append(queue, other)
			}
		}
	}
	return out
}

// strengthRatio is the sizing margin at which one side of a fight is
// declared the winner: the checks package's writability analysis uses a
// comparable margin. Below it, the result is conservatively X.
const strengthRatio = 2.0

// resolveFight decides a node connected to both rails at once. Each
// side's strength is the widest-path conductance (max over paths of the
// minimum device conductance along the path) from the node to that
// side's seeds through definitely-conducting devices.
func (s *Sim) resolveFight(id netlist.NodeID, seedHi, seedLo []netlist.NodeID) Value {
	hi := s.pathStrength(id, seedHi, false)
	lo := s.pathStrength(id, seedLo, false)
	switch {
	case lo >= strengthRatio*hi && lo > 0:
		return Lo
	case hi >= strengthRatio*lo && hi > 0:
		return Hi
	default:
		return X
	}
}

// conductanceOf returns a device's channel conductance proxy (W/Leff,
// derated for PMOS mobility).
func conductanceOf(d *netlist.Device) float64 {
	g := d.W / d.Leff()
	if d.Type == process.PMOS {
		g *= 0.4
	}
	return g
}

// pathStrength computes the widest-path strength from id to any seed via
// conducting devices, by fixpoint relaxation (the graphs are small;
// simplicity beats a heap here). With includeMaybe, maybe-conducting
// devices count as fully conducting (a worst-case bound).
func (s *Sim) pathStrength(id netlist.NodeID, seeds []netlist.NodeID, includeMaybe bool) float64 {
	const inf = 1e18
	str := make([]float64, len(s.value))
	// Strength never propagates *through* a pinned node (a rail or an
	// externally driven input) unless that node is a seed of this side.
	blocked := make([]bool, len(s.value))
	for i := range blocked {
		nid := netlist.NodeID(i)
		blocked[i] = s.c.IsSupply(nid) || s.driven[i]
	}
	for _, r := range seeds {
		str[r] = inf
		blocked[r] = false
	}
	for changed := true; changed; {
		changed = false
		for _, d := range s.c.Devices {
			c := s.conducts(d)
			if c == off || (c == maybe && !includeMaybe) {
				continue
			}
			g := conductanceOf(d)
			a, b := d.Source, d.Drain
			if !blocked[a] || str[a] == inf {
				if v := min2(str[a], g); v > str[b] {
					str[b] = v
					changed = true
				}
			}
			if !blocked[b] || str[b] == inf {
				if v := min2(str[b], g); v > str[a] {
					str[a] = v
					changed = true
				}
			}
		}
	}
	return str[id]
}

// min2 returns the smaller of two float64s.
func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Steps returns the cumulative relaxation iterations (a simulation cost
// metric).
func (s *Sim) Steps() int { return s.steps }

// Snapshot returns a name→value map of all non-supply nodes, for test
// assertions and trace dumps.
func (s *Sim) Snapshot() map[string]Value {
	out := make(map[string]Value)
	for id, n := range s.c.Nodes {
		if !s.c.IsSupply(netlist.NodeID(id)) {
			out[n.Name] = s.value[id]
		}
	}
	return out
}

// UnknownNodes returns the sorted names of nodes currently at X.
func (s *Sim) UnknownNodes() []string {
	var out []string
	for id, n := range s.c.Nodes {
		if s.value[id] == X && !s.c.IsSupply(netlist.NodeID(id)) {
			out = append(out, n.Name)
		}
	}
	sort.Strings(out)
	return out
}
