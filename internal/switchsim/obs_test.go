package switchsim

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/obs"
)

// TestObserverCounters checks the worklist telemetry: every Settle
// adds its iteration and component-evaluation totals, and the counters
// agree with the Sim's own Steps/CompEvals accounting.
func TestObserverCounters(t *testing.T) {
	c := netlist.New("chain")
	addInv(c, "u1", "a", "m")
	addInv(c, "u2", "m", "y")
	col := obs.New()
	s := newSim(t, c)
	s.SetObserver(col)
	prevSteps, prevEvals := s.Steps(), s.CompEvals()
	s.Set("a", Hi)
	s.Set("a", Lo)
	if got := col.Counter("switchsim.settles"); got != 2 {
		t.Errorf("settles = %d, want 2", got)
	}
	if got := col.Counter("switchsim.worklist_iterations"); got != int64(s.Steps()-prevSteps) {
		t.Errorf("iterations counter %d != steps delta %d", got, s.Steps()-prevSteps)
	}
	if got := col.Counter("switchsim.components_resettled"); got != int64(s.CompEvals()-prevEvals) {
		t.Errorf("resettled counter %d != compEvals delta %d", got, s.CompEvals()-prevEvals)
	}
	if col.Counter("switchsim.components_resettled") <= 0 {
		t.Error("no component evaluations recorded")
	}
}

// TestObserverDetach: a nil observer restores the uninstrumented path,
// and attaching never changes simulation results.
func TestObserverDetach(t *testing.T) {
	build := func() *Sim {
		c := netlist.New("inv")
		addInv(c, "u1", "a", "y")
		return newSim(t, c)
	}
	plain, traced := build(), build()
	traced.SetObserver(obs.New())
	traced.SetObserver(nil)
	plain.Set("a", Hi)
	traced.Set("a", Hi)
	if plain.Get("y") != traced.Get("y") {
		t.Error("observer changed simulation result")
	}
	if plain.Steps() != traced.Steps() {
		t.Errorf("observer changed step count: %d vs %d", plain.Steps(), traced.Steps())
	}
}
