package switchsim_test

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/switchsim"
)

// Allocation regression pin for worklist settling: after the first
// Settle grows the scratch buffers, a full clock/data step must settle
// without allocating at all.
func TestSettleAllocs(t *testing.T) {
	c := designs.DominoAdder(16)
	sim, err := switchsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	sim.Settle()
	i := 0
	avg := testing.AllocsPerRun(10, func() {
		sim.SetQuiet("phi", switchsim.Lo)
		sim.Settle()
		sim.SetQuiet("a0", switchsim.Bool(i%2 == 0))
		sim.SetQuiet("b0", switchsim.Hi)
		sim.SetQuiet("phi", switchsim.Hi)
		sim.Settle()
		i++
	})
	if avg > 2 {
		t.Fatalf("Settle step allocates %.1f/op, want <= 2 (seed was ~8)", avg)
	}
}
