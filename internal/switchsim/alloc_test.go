package switchsim_test

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/switchsim"
)

// Allocation regression pin for worklist settling: after the first
// Settle grows the scratch buffers, a full clock/data step must settle
// without allocating at all.
func TestSettleAllocs(t *testing.T) {
	c := designs.DominoAdder(16)
	sim, err := switchsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	sim.Settle()
	i := 0
	avg := testing.AllocsPerRun(10, func() {
		sim.SetQuiet("phi", switchsim.Lo)
		sim.Settle()
		sim.SetQuiet("a0", switchsim.Bool(i%2 == 0))
		sim.SetQuiet("b0", switchsim.Hi)
		sim.SetQuiet("phi", switchsim.Hi)
		sim.Settle()
		i++
	})
	if avg > 2 {
		t.Fatalf("Settle step allocates %.1f/op, want <= 2 (seed was ~8)", avg)
	}
}

// Packed settling must be allocation-free steady-state: one settle
// carries 64 lanes, so a single stray allocation per settle costs 64x
// less than scalar — but the bound is still zero, because the packed
// scratch planes are all preallocated in NewPacked.
func TestPackedSettleAllocs(t *testing.T) {
	c := designs.DominoAdder(16)
	sim, err := switchsim.NewPacked(c)
	if err != nil {
		t.Fatal(err)
	}
	sim.Settle()
	i := uint64(0)
	avg := testing.AllocsPerRun(10, func() {
		sim.SetQuietAll("phi", switchsim.Lo)
		sim.Settle()
		sim.SetQuietLanes("a0", i*0x9e3779b97f4a7c15, ^(i * 0x9e3779b97f4a7c15))
		sim.SetQuietAll("b0", switchsim.Hi)
		sim.SetQuietAll("phi", switchsim.Hi)
		sim.Settle()
		i++
	})
	if avg > 0 {
		t.Fatalf("packed Settle step allocates %.1f/op, want 0", avg)
	}
}
