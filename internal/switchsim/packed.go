package switchsim

// packed.go is the 64-lane bit-parallel value plane: the classic
// bit-parallel logic-simulation technique (pack independent stimulus
// vectors into machine words so one relaxation pass evaluates all of
// them with word-wide AND/OR/NOT) applied to the switch-level engine.
// The paper's verification farm (§4.1) bought its ~2 billion
// cycles/day with ~100 CPUs; lane packing buys a factor of up to 64 on
// one core before any goroutine is spawned.
//
// Encoding: each node holds two uint64 words (hi, lo) — dual-rail over
// 64 lanes. Lane l is Hi when hi bit l is set and lo bit l is clear,
// Lo for the converse, and X when both bits are set (the invariant
// hi|lo == ^0 always holds; "neither" is not a representable state).
// With this encoding three-valued operations become word logic:
// definite-1 lanes are hi&^lo, definite-0 lanes are lo&^hi, X lanes
// are hi&lo, and an NMOS channel definitely conducts exactly in its
// gate's hi&^lo lanes.
//
// Correctness contract: lane l of a PackedSim is bit-identical to a
// scalar Sim driven with lane l's stimulus, for every lane, including
// X propagation, charge retention, charge-sharing degradation, fight
// resolution and oscillation cutoff. The packed_test.go differential
// suite pins this against the scalar oracle across the design corpus.
// The common kernels (rail reachability, value resolution, charge
// sharing) run word-parallel; only strength arbitration — rare, and
// dependent on per-lane conduction topology — falls back to per-lane
// evaluation, batched over lane classes with identical conduction
// patterns so symmetric lanes still pay once.

import (
	"math/bits"
	"sort"

	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/process"
)

// Lanes is the stimulus-vector width of a PackedSim: one machine word
// of independent three-valued lanes per node rail.
const Lanes = 64

// allLanes is the full lane mask.
const allLanes = ^uint64(0)

// PackedSim is a 64-lane switch-level simulator over one flat circuit.
// It shares the scalar Sim's component topology and dirty-component
// worklist schedule; every settle evaluates all 64 lanes at once.
type PackedSim struct {
	*topology
	// hi/lo are the dual-rail value planes, one word of lanes per node.
	hi, lo []uint64
	// driven marks externally forced nodes (inputs, rails). Drivenness
	// is per node, not per lane: an input is driven in every lane,
	// with per-lane values.
	driven []bool

	steps     int
	compEvals int
	obs       *obs.Collector

	// Dirty-component worklist (mirrors the scalar Sim's).
	dirty     []bool
	dirtyList []int
	wave      []int

	// Scratch planes reused across component evaluations, all indexed
	// by node and reset per component.
	defVdd, defVss, mayVdd, mayVss []uint64
	newHi, newLo                   []uint64
	floatMask, badCharge           []uint64
	chMask                         []uint64
	pend                           []packedPending
	changed                        []netlist.NodeID
	// Per-lane strength fallback scratch.
	strength []float64
	blocked  []bool
}

// packedPending stages one node's post-wave planes (Jacobi semantics,
// exactly like the scalar pendingVal).
type packedPending struct {
	id     netlist.NodeID
	hi, lo uint64
}

// NewPacked builds a 64-lane simulator. All nodes start at X in every
// lane except the rails.
func NewPacked(c *netlist.Circuit) (*PackedSim, error) {
	t, err := newTopology(c)
	if err != nil {
		return nil, err
	}
	n := len(c.Nodes)
	p := &PackedSim{
		topology:  t,
		hi:        make([]uint64, n),
		lo:        make([]uint64, n),
		driven:    make([]bool, n),
		dirty:     make([]bool, len(t.compDevs)),
		defVdd:    make([]uint64, n),
		defVss:    make([]uint64, n),
		mayVdd:    make([]uint64, n),
		mayVss:    make([]uint64, n),
		newHi:     make([]uint64, n),
		newLo:     make([]uint64, n),
		floatMask: make([]uint64, n),
		badCharge: make([]uint64, n),
		chMask:    make([]uint64, n),
		strength:  make([]float64, n),
		blocked:   make([]bool, n),
	}
	for i := range p.hi {
		p.hi[i] = allLanes
		p.lo[i] = allLanes
	}
	if p.vdd != netlist.InvalidNode {
		p.hi[p.vdd], p.lo[p.vdd] = allLanes, 0
		p.driven[p.vdd] = true
	}
	if p.vss != netlist.InvalidNode {
		p.hi[p.vss], p.lo[p.vss] = 0, allLanes
		p.driven[p.vss] = true
	}
	for ci := range p.compDevs {
		p.markComp(ci)
	}
	return p, nil
}

// markComp queues a component for re-evaluation.
func (p *PackedSim) markComp(ci int) {
	if ci >= 0 && !p.dirty[ci] {
		p.dirty[ci] = true
		p.dirtyList = append(p.dirtyList, ci)
	}
}

// markNode queues everything a change on the node can disturb.
func (p *PackedSim) markNode(id netlist.NodeID) {
	p.markComp(p.comp[id])
	for _, ci := range p.gateComps[id] {
		p.markComp(ci)
	}
}

// Circuit returns the simulated circuit.
func (p *PackedSim) Circuit() *netlist.Circuit { return p.c }

// normalize repairs lanes where neither rail bit is set (not a
// representable state) to X, so callers can pass (hi, ^hi) or partial
// masks without tripping the dual-rail invariant.
func normalize(hi, lo uint64) (uint64, uint64) {
	missing := ^(hi | lo)
	return hi | missing, lo | missing
}

// SetQuietLanes forces a node to per-lane values without relaxing:
// lane l becomes Hi/Lo/X according to the dual-rail bits. Lanes with
// neither bit set are treated as X.
func (p *PackedSim) SetQuietLanes(name string, hi, lo uint64) {
	id := p.c.FindNode(name)
	if id == netlist.InvalidNode {
		return
	}
	hi, lo = normalize(hi, lo)
	p.hi[id], p.lo[id] = hi, lo
	p.driven[id] = true
	p.markNode(id)
}

// SetLanes forces per-lane values and relaxes, returning the iteration
// count. The hi word carries the lanes to drive high; lanes set in
// both words are X, lanes set in neither are X.
func (p *PackedSim) SetLanes(name string, hi, lo uint64) int {
	p.SetQuietLanes(name, hi, lo)
	return p.Settle()
}

// SetQuietAll forces one value into all 64 lanes of a node.
func (p *PackedSim) SetQuietAll(name string, v Value) {
	switch v {
	case Hi:
		p.SetQuietLanes(name, allLanes, 0)
	case Lo:
		p.SetQuietLanes(name, 0, allLanes)
	default:
		p.SetQuietLanes(name, allLanes, allLanes)
	}
}

// SetQuietLane forces one lane of a node, leaving the others intact.
func (p *PackedSim) SetQuietLane(name string, lane int, v Value) {
	id := p.c.FindNode(name)
	if id == netlist.InvalidNode {
		return
	}
	bit := uint64(1) << uint(lane)
	hi, lo := p.hi[id]&^bit, p.lo[id]&^bit
	switch v {
	case Hi:
		hi |= bit
	case Lo:
		lo |= bit
	default:
		hi |= bit
		lo |= bit
	}
	p.hi[id], p.lo[id] = hi, lo
	p.driven[id] = true
	p.markNode(id)
}

// Release removes the external drive from a node (it becomes a
// charged, possibly floating node in every lane) and relaxes.
func (p *PackedSim) Release(name string) int {
	id := p.c.FindNode(name)
	if id == netlist.InvalidNode || p.c.IsSupply(id) {
		return 0
	}
	p.driven[id] = false
	p.markNode(id)
	return p.Settle()
}

// GetLanes returns a node's dual-rail planes (X, X for unknown names).
func (p *PackedSim) GetLanes(name string) (hi, lo uint64) {
	id := p.c.FindNode(name)
	if id == netlist.InvalidNode {
		return allLanes, allLanes
	}
	return p.hi[id], p.lo[id]
}

// GetLane returns one lane of the named node.
func (p *PackedSim) GetLane(name string, lane int) Value {
	id := p.c.FindNode(name)
	if id == netlist.InvalidNode {
		return X
	}
	return p.GetLaneID(id, lane)
}

// GetLaneID returns one lane of a node by ID.
func (p *PackedSim) GetLaneID(id netlist.NodeID, lane int) Value {
	bit := uint64(1) << uint(lane)
	h, l := p.hi[id]&bit != 0, p.lo[id]&bit != 0
	switch {
	case h && l:
		return X
	case h:
		return Hi
	default:
		return Lo
	}
}

// Steps returns the cumulative relaxation iterations.
func (p *PackedSim) Steps() int { return p.steps }

// CompEvals returns the cumulative component evaluations; each one
// covered all 64 lanes.
func (p *PackedSim) CompEvals() int { return p.compEvals }

// LaneEvals returns component evaluations multiplied by the lane
// width — the scalar-equivalent work one packed run covered.
func (p *PackedSim) LaneEvals() int { return p.compEvals * Lanes }

// SetObserver attaches a telemetry collector: every Settle adds
// switchsim.packed_settles and switchsim.lane_evals counters and keeps
// the switchsim.lanes gauge at the lane width. A nil collector
// detaches.
func (p *PackedSim) SetObserver(c *obs.Collector) {
	p.obs = c
	if c != nil {
		c.SetGauge("switchsim.lanes", Lanes)
	}
}

// Settle relaxes all 64 lanes to their fixed points and returns the
// wave count. The schedule is the scalar Sim's dirty-component
// worklist; a wave evaluates each dirty component once across every
// lane simultaneously.
func (p *PackedSim) Settle() int {
	prevEvals := p.compEvals
	iters := p.settleLoop()
	p.steps += iters
	if p.obs != nil {
		p.obs.Add("switchsim.packed_settles", 1)
		p.obs.Add("switchsim.lane_evals", int64(p.compEvals-prevEvals)*Lanes)
	}
	return iters
}

// settleLoop mirrors the scalar settleLoop wave-for-wave. Because a
// wave's evaluation is a pure per-lane function of the pre-wave state
// (Jacobi), and re-evaluating a lane-clean component is idempotent in
// that lane, every lane's value trajectory here is identical to the
// trajectory of a scalar sim fed that lane's stimulus — the packed
// worklist merely runs the union of all lanes' dirty sets.
func (p *PackedSim) settleLoop() int {
	iters := 0
	for {
		wl := p.takeDirty()
		if len(wl) == 0 {
			return iters
		}
		changed := p.waveEval(wl)
		iters++
		if len(changed) == 0 {
			return iters
		}
		for _, id := range changed {
			p.markNode(id)
		}
		if iters >= MaxIterations {
			// Oscillation cutoff, per lane: only the lanes still
			// changing in the final wave are oscillating; lanes that
			// converged earlier keep their values (their scalar twins
			// never hit the cap).
			for _, id := range changed {
				if !p.driven[id] {
					m := p.chMask[id]
					p.hi[id] |= m
					p.lo[id] |= m
					p.markNode(id)
				}
			}
			return iters
		}
	}
}

// takeDirty claims the dirty set as this wave's worklist, sorted for
// deterministic evaluation order.
func (p *PackedSim) takeDirty() []int {
	wl := append(p.wave[:0], p.dirtyList...)
	sort.Ints(wl)
	for _, ci := range p.dirtyList {
		p.dirty[ci] = false
	}
	p.dirtyList = p.dirtyList[:0]
	p.wave = wl
	return wl
}

// waveEval evaluates the components against the current planes, then
// applies all staged updates at once and returns the changed nodes.
// chMask records which lanes changed (for the oscillation cutoff).
func (p *PackedSim) waveEval(comps []int) []netlist.NodeID {
	p.compEvals += len(comps)
	p.pend = p.pend[:0]
	for _, ci := range comps {
		p.evalComp(ci)
	}
	changed := p.changed[:0]
	for _, pd := range p.pend {
		if p.hi[pd.id] != pd.hi || p.lo[pd.id] != pd.lo {
			p.chMask[pd.id] = (p.hi[pd.id] ^ pd.hi) | (p.lo[pd.id] ^ pd.lo)
			p.hi[pd.id], p.lo[pd.id] = pd.hi, pd.lo
			changed = append(changed, pd.id)
		}
	}
	p.changed = changed
	return changed
}

// condOn returns the lanes in which the device's channel definitely
// conducts (gate definitely at the on level).
func (p *PackedSim) condOn(d *netlist.Device) uint64 {
	gh, gl := p.hi[d.Gate], p.lo[d.Gate]
	if d.Type == process.NMOS {
		return gh &^ gl
	}
	return gl &^ gh
}

// condMaybe returns the lanes in which the channel may conduct (gate
// at X).
func (p *PackedSim) condMaybe(d *netlist.Device) uint64 {
	return p.hi[d.Gate] & p.lo[d.Gate]
}

// seedMask returns the lanes a driven node seeds for one rail's
// reachability: its definitely-at-that-level lanes, plus its X lanes
// when includeMaybe (the scalar compReach's seeds/extra split).
func (p *PackedSim) seedMask(id netlist.NodeID, side Value, includeMaybe bool) uint64 {
	if side == Hi {
		if includeMaybe {
			return p.hi[id]
		}
		return p.hi[id] &^ p.lo[id]
	}
	if includeMaybe {
		return p.lo[id]
	}
	return p.lo[id] &^ p.hi[id]
}

// propMask returns the lanes a node propagates during reachability:
// rails propagate everything on their own side, driven nodes only
// their seed lanes (the driver pins them — reach bits received from
// elsewhere stop there), free nodes whatever has reached them.
func (p *PackedSim) propMask(id, rail netlist.NodeID, side Value, includeMaybe bool, out []uint64) uint64 {
	if p.c.IsSupply(id) {
		if id == rail {
			return allLanes
		}
		return 0
	}
	if p.driven[id] {
		return p.seedMask(id, side, includeMaybe)
	}
	return out[id]
}

// reach computes, word-parallel, the per-lane rail reachability of the
// component's members: out[n] gets the lanes in which n has a
// conducting path (definite, or definite∪maybe when includeMaybe)
// from the rail or from any driven member at the rail's level. It is
// the lane-mask fixpoint closure of the scalar compReach BFS.
func (p *PackedSim) reach(out []uint64, ci int, rail netlist.NodeID, side Value, includeMaybe bool) {
	devs := p.compDevs[ci]
	for changed := true; changed; {
		changed = false
		for _, d := range devs {
			m := p.condOn(d)
			if includeMaybe {
				m |= p.condMaybe(d)
			}
			if m == 0 {
				continue
			}
			a, b := d.Source, d.Drain
			if !p.c.IsSupply(b) {
				if nb := p.propMask(a, rail, side, includeMaybe, out) & m &^ out[b]; nb != 0 {
					out[b] |= nb
					changed = true
				}
			}
			if !p.c.IsSupply(a) {
				if nb := p.propMask(b, rail, side, includeMaybe, out) & m &^ out[a]; nb != 0 {
					out[a] |= nb
					changed = true
				}
			}
		}
	}
}

// evalComp recomputes the component's non-driven nodes across all 64
// lanes from the current planes and stages the differences. It is the
// word-parallel twin of the scalar evalComp: the same case analysis,
// with each scalar branch becoming a lane mask.
func (p *PackedSim) evalComp(ci int) {
	nodes := p.compNodes[ci]
	devs := p.compDevs[ci]
	if len(devs) == 0 {
		return // isolated nodes just hold their charge, in every lane
	}

	p.reach(p.defVdd, ci, p.vdd, Hi, false)
	p.reach(p.defVss, ci, p.vss, Lo, false)
	p.reach(p.mayVdd, ci, p.vdd, Hi, true)
	p.reach(p.mayVss, ci, p.vss, Lo, true)

	anyFloat := uint64(0)
	for _, nid := range nodes {
		id := int(nid)
		if p.driven[id] {
			continue
		}
		dv, ds := p.defVdd[id], p.defVss[id]
		mv, ms := p.mayVdd[id], p.mayVss[id]
		curHi, curLo := p.hi[id], p.lo[id]

		// The scalar case ladder as disjoint lane masks. def ⊆ may on
		// each side, so the masks below partition all 64 lanes.
		fight := dv & ds
		strengthA := dv & ms &^ ds // definitely high, possibly also low
		strengthB := ds & mv &^ dv
		newHi := dv &^ ms // definite Hi, no opposing uncertainty
		newLo := ds &^ mv
		mayOnly := (mv | ms) &^ dv &^ ds
		holdHi := mayOnly & mv &^ ms & curHi &^ curLo
		holdLo := mayOnly & ms &^ mv & curLo &^ curHi
		xMask := mayOnly &^ holdHi &^ holdLo
		floatL := ^(mv | ms)

		newHi |= holdHi | xMask | floatL&curHi
		newLo |= holdLo | xMask | floatL&curLo
		p.floatMask[id] = floatL
		anyFloat |= floatL

		if special := fight | strengthA | strengthB; special != 0 {
			sh, sl := p.resolveSpecial(ci, nid, fight, strengthA, strengthB)
			newHi |= sh
			newLo |= sl
		}
		p.newHi[id], p.newLo[id] = newHi, newLo
	}

	// Charge sharing among floating lanes: word-parallel conflict
	// seeding plus island closure. A lane conflicts on a channel when
	// both endpoints float, the channel conducts (or may conduct) and
	// the stored values differ; the conflict then spreads X through
	// the lane's definitely-conducting floating island — exactly the
	// scalar mixed/degraded island rule, one word at a time.
	if anyFloat != 0 {
		seeded := false
		for _, d := range devs {
			a, b := d.Source, d.Drain
			if a == b {
				continue
			}
			fa, fb := p.floatMask[a], p.floatMask[b]
			if fa&fb == 0 {
				continue
			}
			diff := (p.hi[a] ^ p.hi[b]) | (p.lo[a] ^ p.lo[b])
			conflict := fa & fb & diff & (p.condOn(d) | p.condMaybe(d))
			if conflict != 0 {
				p.badCharge[a] |= conflict
				p.badCharge[b] |= conflict
				seeded = true
			}
		}
		if seeded {
			for changed := true; changed; {
				changed = false
				for _, d := range devs {
					a, b := d.Source, d.Drain
					if a == b {
						continue
					}
					m := p.condOn(d) & p.floatMask[a] & p.floatMask[b]
					if m == 0 {
						continue
					}
					if nb := p.badCharge[a] & m &^ p.badCharge[b]; nb != 0 {
						p.badCharge[b] |= nb
						changed = true
					}
					if nb := p.badCharge[b] & m &^ p.badCharge[a]; nb != 0 {
						p.badCharge[a] |= nb
						changed = true
					}
				}
			}
			for _, nid := range nodes {
				if bad := p.badCharge[nid]; bad != 0 {
					p.newHi[nid] |= bad
					p.newLo[nid] |= bad
				}
			}
		}
	}

	// Stage differences and reset the per-component scratch planes
	// (supplies were never written; only members were).
	for _, nid := range nodes {
		id := int(nid)
		if !p.driven[id] && (p.newHi[id] != p.hi[id] || p.newLo[id] != p.lo[id]) {
			p.pend = append(p.pend, packedPending{nid, p.newHi[id], p.newLo[id]})
		}
		p.defVdd[id] = 0
		p.defVss[id] = 0
		p.mayVdd[id] = 0
		p.mayVss[id] = 0
		p.floatMask[id] = 0
		p.badCharge[id] = 0
	}
}

// resolveSpecial arbitrates the strength-dependent lanes of one node:
// rail fights and definite-vs-maybe contests. Strength is a widest-
// path computation over the lane's conduction pattern, so it cannot be
// a single word operation; instead the needed lanes are partitioned
// into classes with identical per-device conduction and identical
// driven-member values — every lane in a class provably resolves the
// same way — and each class pays for one scalar-equivalent strength
// relaxation. Symmetric stimulus (the common case) collapses to one or
// two classes.
func (p *PackedSim) resolveSpecial(ci int, id netlist.NodeID, fight, strengthA, strengthB uint64) (hi, lo uint64) {
	need := fight | strengthA | strengthB
	devs := p.compDevs[ci]
	nodes := p.compNodes[ci]
	for need != 0 {
		l := bits.TrailingZeros64(need)
		class := need
		for _, d := range devs {
			on, mb := p.condOn(d), p.condMaybe(d)
			if on>>uint(l)&1 == 1 {
				class &= on
			} else {
				class &= ^on
			}
			if mb>>uint(l)&1 == 1 {
				class &= mb
			} else {
				class &= ^mb
			}
		}
		for _, nid := range nodes {
			if !p.driven[nid] {
				continue
			}
			h, lw := p.hi[nid], p.lo[nid]
			if h>>uint(l)&1 == 1 {
				class &= h
			} else {
				class &= ^h
			}
			if lw>>uint(l)&1 == 1 {
				class &= lw
			} else {
				class &= ^lw
			}
		}
		var v Value
		switch {
		case fight>>uint(l)&1 == 1:
			v = p.laneFight(ci, id, l)
		case strengthA>>uint(l)&1 == 1:
			hiS := p.laneStrength(ci, id, p.vdd, l, Hi, false)
			loS := p.laneStrength(ci, id, p.vss, l, Lo, true)
			if hiS >= strengthRatio*loS {
				v = Hi
			} else {
				v = X
			}
		default:
			loS := p.laneStrength(ci, id, p.vss, l, Lo, false)
			hiS := p.laneStrength(ci, id, p.vdd, l, Hi, true)
			if loS >= strengthRatio*hiS {
				v = Lo
			} else {
				v = X
			}
		}
		switch v {
		case Hi:
			hi |= class
		case Lo:
			lo |= class
		default:
			hi |= class
			lo |= class
		}
		need &^= class
	}
	return hi, lo
}

// laneConducts is the scalar conducts() evaluated in one lane.
func (p *PackedSim) laneConducts(d *netlist.Device, lane int) conductance {
	bit := uint64(1) << uint(lane)
	gh, gl := p.hi[d.Gate]&bit != 0, p.lo[d.Gate]&bit != 0
	if gh && gl {
		return maybe
	}
	if (d.Type == process.NMOS && gh) || (d.Type == process.PMOS && gl) {
		return on
	}
	return off
}

// laneFight is the scalar resolveFight in one lane.
func (p *PackedSim) laneFight(ci int, id netlist.NodeID, lane int) Value {
	hi := p.laneStrength(ci, id, p.vdd, lane, Hi, false)
	lo := p.laneStrength(ci, id, p.vss, lane, Lo, false)
	switch {
	case lo >= strengthRatio*hi && lo > 0:
		return Lo
	case hi >= strengthRatio*lo && hi > 0:
		return Hi
	default:
		return X
	}
}

// laneStrength is the scalar compStrength evaluated in one lane: the
// widest-path conductance from id to the rail (or any driven member at
// the rail's level; driven X members join when includeMaybe). The seed
// classification matches the scalar call sites exactly: definite
// passes seed only the side's level, worst-case passes add X drivers.
func (p *PackedSim) laneStrength(ci int, id, rail netlist.NodeID, lane int, side Value, includeMaybe bool) float64 {
	const inf = 1e18
	bit := uint64(1) << uint(lane)
	str, blocked := p.strength, p.blocked
	nodes := p.compNodes[ci]
	devs := p.compDevs[ci]
	for _, nid := range nodes {
		str[nid] = 0
		blocked[nid] = p.driven[nid]
	}
	for _, r := range []netlist.NodeID{p.vdd, p.vss} {
		if r != netlist.InvalidNode {
			str[r] = 0
			blocked[r] = true
		}
	}
	if rail != netlist.InvalidNode {
		str[rail] = inf
		blocked[rail] = false
	}
	for _, nid := range nodes {
		if !p.driven[nid] {
			continue
		}
		h, lw := p.hi[nid]&bit != 0, p.lo[nid]&bit != 0
		isSeed := false
		switch {
		case h && lw:
			isSeed = includeMaybe // X drivers only join worst-case passes
		case side == Hi:
			isSeed = h
		default:
			isSeed = lw
		}
		if isSeed {
			str[nid] = inf
			blocked[nid] = false
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range devs {
			c := p.laneConducts(d, lane)
			if c == off || (c == maybe && !includeMaybe) {
				continue
			}
			g := conductanceOf(d)
			a, b := d.Source, d.Drain
			if !blocked[a] || str[a] == inf {
				if v := min2(str[a], g); v > str[b] {
					str[b] = v
					changed = true
				}
			}
			if !blocked[b] || str[b] == inf {
				if v := min2(str[b], g); v > str[a] {
					str[a] = v
					changed = true
				}
			}
		}
	}
	return str[id]
}

// SnapshotLane returns a name→value map of all non-supply nodes in one
// lane, for differential assertions against the scalar oracle.
func (p *PackedSim) SnapshotLane(lane int) map[string]Value {
	out := make(map[string]Value)
	for id, n := range p.c.Nodes {
		if !p.c.IsSupply(netlist.NodeID(id)) {
			out[n.Name] = p.GetLaneID(netlist.NodeID(id), lane)
		}
	}
	return out
}
