package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/process"
	"repro/internal/timing"
)

// cleanDeck is a small static-CMOS deck that verifies without findings.
const cleanDeck = `
.subckt inv a y
mn y a vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
.ends
x1 in mid inv
x2 mid out inv
`

// brokenDeck trips the lint gate — an undriven gate net (FCV001) and an
// always-on VDD→VSS sneak device (FCV003), both error severity — so a
// ?lint=1 request must answer 422.
const brokenDeck = `
.subckt bad in out
mflt out ghost vss vss nmos w=2 l=0.75
mfp  out in    vdd vdd pmos w=4 l=0.75
msn  vdd vdd   vss vss nmos w=2 l=0.75
.ends
x1 a y bad
`

func testConfig() Config {
	return Config{
		Core: core.Options{Proc: process.CMOS075(), Clock: timing.TwoPhase(3000)},
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	return s, hs
}

func postDeck(t *testing.T, url, deck string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(buf.String())
}

func TestVerifyCleanDeckReturnsManifest(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	resp, body := postDeck(t, hs.URL+"/verify", cleanDeck)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body: %s", resp.StatusCode, body)
	}
	m, err := obs.ParseManifest(body)
	if err != nil {
		t.Fatalf("response is not a valid manifest: %v", err)
	}
	if m.Tool != "fcv serve" {
		t.Errorf("tool = %q", m.Tool)
	}
	if len(m.Items) != 1 || m.Items[0].Verdict != "pass" && m.Items[0].Verdict != "inspect" {
		t.Errorf("items = %+v", m.Items)
	}
	if got := resp.Header.Get("X-Fcv-Verdicts"); !strings.Contains(got, "violation=0 error=0") {
		t.Errorf("verdict header = %q", got)
	}
}

func TestVerifySeededDeckReturns422(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	resp, body := postDeck(t, hs.URL+"/verify?lint=1", brokenDeck)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body: %s", resp.StatusCode, body)
	}
	m, err := obs.ParseManifest(body)
	if err != nil {
		t.Fatalf("422 body is not a valid manifest: %v", err)
	}
	if m.Verdicts.Error+m.Verdicts.Violation == 0 {
		t.Errorf("verdicts = %+v, want a violation or error", m.Verdicts)
	}
	if len(m.Items) != 1 || len(m.Items[0].Findings) == 0 {
		t.Errorf("seeded deck produced no findings: %+v", m.Items)
	}
}

func TestVerifyBadDeckReturns400(t *testing.T) {
	s, hs := newTestServer(t, testConfig())
	resp, _ := postDeck(t, hs.URL+"/verify", "mn y a vss\n") // too few MOS fields
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if got := s.StatsNow().BadRequests; got != 1 {
		t.Errorf("bad_requests = %d, want 1", got)
	}
}

func TestVerifyGetMethodNotAllowed(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	resp, err := http.Get(hs.URL + "/verify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
}

func TestPathDecksDisabledByDefault(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	resp, err := http.Post(hs.URL+"/verify?path=/etc/hostname", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (path decks disabled)", resp.StatusCode)
	}
}

func TestWarmRepeatHitsCacheAndStats(t *testing.T) {
	s, hs := newTestServer(t, testConfig())
	for i := 0; i < 3; i++ {
		resp, body := postDeck(t, hs.URL+"/verify", cleanDeck)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	st := s.StatsNow()
	if st.Served != 3 {
		t.Fatalf("served = %d, want 3", st.Served)
	}
	if st.Cache.Misses != 1 || st.Cache.Hits != 2 {
		t.Errorf("cache hits=%d misses=%d, want 2/1 (warm repeats must hit)", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Cache.Entries != 1 {
		t.Errorf("cache entries = %d, want 1", st.Cache.Entries)
	}
	if st.Verdicts.Pass+st.Verdicts.Inspect != 3 {
		t.Errorf("verdict tally = %+v", st.Verdicts)
	}
}

func TestStatsEndpointShape(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	postDeck(t, hs.URL+"/verify", cleanDeck)
	resp, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.PoolWorkers < 1 || st.Requests != 1 || st.Served != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Counters["fleet.items"] != 1 {
		t.Errorf("merged counters missing fleet.items: %v", st.Counters)
	}
}

func TestBackpressure429WhenSaturated(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.Queue = -1 // no waiting: a busy pool must answer 429 immediately
	s, hs := newTestServer(t, cfg)
	// Hold the daemon's only worker token so the next request finds the
	// pool saturated — deterministic, no timing games.
	got, _, ok := s.pool.acquire(context.Background(), 1)
	if !ok || got != 1 {
		t.Fatalf("could not take the pool token: got=%d ok=%v", got, ok)
	}
	resp, _ := postDeck(t, hs.URL+"/verify", cleanDeck)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if s.StatsNow().Rejected != 1 {
		t.Errorf("rejected = %d, want 1", s.StatsNow().Rejected)
	}
	s.pool.release(got)
	// With the token back, the same request must now succeed.
	resp, body := postDeck(t, hs.URL+"/verify", cleanDeck)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d: %s", resp.StatusCode, body)
	}
}

func TestQueuedRequestRunsAfterRelease(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.Queue = 8
	s, hs := newTestServer(t, cfg)
	got, _, ok := s.pool.acquire(context.Background(), 1)
	if !ok {
		t.Fatal("could not take the pool token")
	}
	done := make(chan int, 1)
	go func() {
		resp, _ := postDeck(t, hs.URL+"/verify", cleanDeck)
		done <- resp.StatusCode
	}()
	// The request is queued, not rejected: give it a moment to enter the
	// admission queue, then free the token and expect success.
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.waiting() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never entered the admission queue")
		}
		time.Sleep(time.Millisecond)
	}
	s.pool.release(got)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("queued request finished with %d, want 200", code)
	}
	if s.StatsNow().Counters["serve.queued"] != 1 {
		t.Errorf("serve.queued = %d, want 1", s.StatsNow().Counters["serve.queued"])
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	s, hs := newTestServer(t, testConfig())
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d before drain", resp.StatusCode)
	}
	s.SetDraining(true)
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d while draining, want 503", resp.StatusCode)
	}
	resp, _ = postDeck(t, hs.URL+"/verify", cleanDeck)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("verify while draining = %d, want 503", resp.StatusCode)
	}
}

// TestStreamEventsEndInManifest exercises ?stream=1: the chunked body
// is JSONL — run/item/stage events in the sink's deterministic order —
// and its last line is the full run manifest.
func TestStreamEventsEndInManifest(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	resp, err := http.Post(hs.URL+"/verify?stream=1", "text/plain", strings.NewReader(cleanDeck))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content-type = %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 3 {
		t.Fatalf("stream too short: %d lines", len(lines))
	}
	var first obs.Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil || first.Type != "run-start" {
		t.Errorf("first line = %q (err %v), want a run-start event", lines[0], err)
	}
	m, err := obs.ParseManifest([]byte(lines[len(lines)-1]))
	if err != nil {
		t.Fatalf("last stream line is not a manifest: %v", err)
	}
	if len(m.Items) != 1 {
		t.Errorf("streamed manifest items = %d", len(m.Items))
	}
	// Every intermediate line must be a well-formed event.
	seenEnd := false
	for _, ln := range lines[:len(lines)-1] {
		var ev obs.Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", ln, err)
		}
		if ev.Type == "run-end" {
			seenEnd = true
		}
	}
	if !seenEnd {
		t.Error("stream has no run-end event")
	}
}

func TestCellsParamVerifiesEveryCell(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	deck := cleanDeck
	resp, body := postDeck(t, hs.URL+"/verify?cells=1", deck)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	m, err := obs.ParseManifest(body)
	if err != nil {
		t.Fatal(err)
	}
	// inv plus the top-level element soup.
	if len(m.Items) != 2 {
		t.Errorf("items = %d, want 2 (every cell)", len(m.Items))
	}
}
