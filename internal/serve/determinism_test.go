package serve

import (
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// raceDeck carries enough structure to make the verification take real
// work (so concurrent requests genuinely overlap) and produce stable
// findings the ID-set comparison can bite on.
const raceDeck = `
.subckt domino_and2 a b phi1 out
mpre dyn phi1 vdd vdd pmos w=4 l=0.75
ma   dyn a    x1  vss nmos w=6 l=0.75
mb   x1  b    x2  vss nmos w=6 l=0.75
mfoot x2 phi1 vss vss nmos w=8 l=0.75
mbn  out dyn  vss vss nmos w=2 l=0.75
mbp  out dyn  vdd vdd pmos w=4 l=0.75
mkeep dyn out vdd vdd pmos w=1 l=1.125
.ends
x1 in_a in_b phi1 y domino_and2
`

// TestConcurrentClientsShareSingleflight is the serve determinism
// contract: M simultaneous requests for the same deck share exactly one
// verification through the daemon's singleflight cache, and every
// client receives the identical finding-ID set (byte-identical IDs, not
// just equal counts). Run under -race in CI.
func TestConcurrentClientsShareSingleflight(t *testing.T) {
	const clients = 8
	cfg := testConfig()
	// Queue sized for the whole burst: on a 1-CPU pool the default
	// (4x workers) can legitimately 429 the stragglers, and this test
	// is about singleflight, not backpressure.
	cfg.Queue = clients
	s, hs := newTestServer(t, cfg)

	ids := make([][]string, clients)
	verdicts := make([]string, clients)
	fingerprints := make([]string, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(hs.URL+"/verify", "text/plain", strings.NewReader(raceDeck))
			if err != nil {
				errs[c] = err
				return
			}
			defer resp.Body.Close()
			var m *obs.Manifest
			buf := make([]byte, 0, 64<<10)
			tmp := make([]byte, 32<<10)
			for {
				n, rerr := resp.Body.Read(tmp)
				buf = append(buf, tmp[:n]...)
				if rerr != nil {
					break
				}
			}
			m, errs[c] = obs.ParseManifest(buf)
			if errs[c] != nil {
				return
			}
			verdicts[c] = m.Items[0].Verdict
			fingerprints[c] = m.Items[0].Fingerprint
			for _, f := range m.Items[0].Findings {
				ids[c] = append(ids[c], f.ID)
			}
		}(c)
	}
	close(start)
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	// All clients observed the identical outcome.
	want := strings.Join(ids[0], "\n")
	for c := 1; c < clients; c++ {
		if got := strings.Join(ids[c], "\n"); got != want {
			t.Errorf("client %d finding-ID set diverged:\n%s\nvs client 0:\n%s", c, got, want)
		}
		if verdicts[c] != verdicts[0] || fingerprints[c] != fingerprints[0] {
			t.Errorf("client %d verdict/fingerprint = %s/%s, client 0 = %s/%s",
				c, verdicts[c], fingerprints[c], verdicts[0], fingerprints[0])
		}
	}

	// Singleflight: the deck's key missed exactly once across all M
	// requests; every other lookup was a hit on the shared cache.
	st := s.StatsNow()
	if st.Cache.Misses != 1 {
		t.Errorf("cache misses = %d across %d concurrent clients, want exactly 1 (singleflight)", st.Cache.Misses, clients)
	}
	if st.Cache.Hits != clients-1 {
		t.Errorf("cache hits = %d, want %d", st.Cache.Hits, clients-1)
	}
	if st.Served != clients {
		t.Errorf("served = %d, want %d", st.Served, clients)
	}
}
