package serve

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// fetchMetrics GETs /metrics and returns the body.
func fetchMetrics(t *testing.T, baseURL string) []byte {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// metricsShape boots a fresh daemon, runs the canonical request
// sequence at worker budget j (two clean-deck posts — one parse miss,
// one hit — then a lint post), and returns the masked /metrics shape.
func metricsShape(t *testing.T, j int) (shape string, raw []byte) {
	t.Helper()
	_, hs := newTestServer(t, testConfig())
	url := fmt.Sprintf("%s/verify?j=%d", hs.URL, j)
	for i := 0; i < 2; i++ {
		if resp, body := postDeck(t, url, cleanDeck); resp.StatusCode != http.StatusOK {
			t.Fatalf("j=%d request %d: status %d: %s", j, i, resp.StatusCode, body)
		}
	}
	if resp, _ := postDeck(t, url+"&lint=1", brokenDeck); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("j=%d lint request: status %d, want 422", j, resp.StatusCode)
	}
	raw = fetchMetrics(t, hs.URL)
	return obs.MaskMetricsValues(string(raw)), raw
}

// TestMetricsGoldenShape the exposition's shape — every line with
// sample values masked — must be byte-identical across worker counts
// and pinned to the golden file. The raw text must also round-trip
// through the format validator.
// Regenerate with: UPDATE_GOLDEN=1 go test ./internal/serve -run Golden
func TestMetricsGoldenShape(t *testing.T) {
	shape1, raw := metricsShape(t, 1)
	if err := obs.ValidateMetricsText(raw); err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v", err)
	}
	for _, j := range []int{4, 16} {
		shapeJ, rawJ := metricsShape(t, j)
		if err := obs.ValidateMetricsText(rawJ); err != nil {
			t.Fatalf("j=%d /metrics invalid: %v", j, err)
		}
		if shapeJ != shape1 {
			t.Errorf("masked /metrics shape differs between j=1 and j=%d:\n--- j=1 ---\n%s\n--- j=%d ---\n%s", j, shape1, j, shapeJ)
		}
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(shape1), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if shape1 != string(want) {
		t.Errorf("/metrics shape drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", shape1, want)
	}
}

// TestMetricsCoversDaemonSeries the names CI and fcv top depend on must
// be present, with the daemon tallies agreeing with /stats.
func TestMetricsCoversDaemonSeries(t *testing.T) {
	s, hs := newTestServer(t, testConfig())
	postDeck(t, hs.URL+"/verify", cleanDeck)
	body := string(fetchMetrics(t, hs.URL))
	for _, want := range []string{
		"fcv_serve_requests_total 1",
		"fcv_serve_served_total 1",
		"fcv_serve_parse_cache_miss_total 1",
		"fcv_serve_parse_cache_hit_total 0",
		"fcv_serve_verdict_violation_total 0",
		"# TYPE fcv_serve_request_ms histogram",
		`fcv_serve_request_ms_bucket{le="+Inf"} 1`,
		"fcv_serve_pool_workers",
		"fcv_process_goroutines",
		"fcv_process_heap_alloc_bytes",
		"fcv_fleet_items_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if got := s.StatsNow().Served; got != 1 {
		t.Errorf("stats served = %d", got)
	}
	// Draining must not take /metrics down with it.
	s.SetDraining(true)
	if !strings.Contains(string(fetchMetrics(t, hs.URL)), "fcv_serve_draining 1") {
		t.Error("/metrics unreachable or missing draining gauge while draining")
	}
}

// TestStatsAndMetricsUnderLoad hammers /stats and /metrics while
// verifies run — the -race exercise for the consistent-snapshot path.
// Every /stats read must see internally consistent quantiles
// (p50 <= p99 from one snapshot) and every /metrics body must stay
// format-valid mid-flight.
func TestStatsAndMetricsUnderLoad(t *testing.T) {
	s, hs := newTestServer(t, testConfig())
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				resp, err := http.Post(hs.URL+"/verify", "text/plain", strings.NewReader(cleanDeck))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	readErr := make(chan error, 64)
	for rdr := 0; rdr < 3; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				st := s.StatsNow()
				if st.RequestP99MS < st.RequestP50MS {
					readErr <- fmt.Errorf("inconsistent quantiles: p50=%g > p99=%g", st.RequestP50MS, st.RequestP99MS)
					return
				}
				resp, err := http.Get(hs.URL + "/metrics")
				if err != nil {
					readErr <- err
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err := obs.ValidateMetricsText(b); err != nil {
					readErr <- fmt.Errorf("mid-flight /metrics invalid: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(readErr)
	for err := range readErr {
		t.Error(err)
	}
	if st := s.StatsNow(); st.Served != 15 {
		t.Errorf("served = %d, want 15", st.Served)
	}
}
