package serve

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

// hierDeck is a four-level all-subckt hierarchy (chip -> half{0,1} ->
// col{0,1} -> lv{0..3}) where each leaf variant lives on exactly one
// branch, so editing lv3 must warm-miss only lv3 -> col1 -> half1 ->
// chip against the daemon's shared caches. Structure mirrors
// examples/decks/deep_tree.sp.
const hierDeck = `
.subckt lv0 a y
m1n n1 a vss vss nmos w=2.0 l=0.75
m1p n1 a vdd vdd pmos w=4.0 l=0.75
m2n y n1 vss vss nmos w=2.0 l=0.75
m2p y n1 vdd vdd pmos w=4.0 l=0.75
.ends
.subckt lv1 a y
m3n n1 a vss vss nmos w=2.2 l=0.75
m3p n1 a vdd vdd pmos w=4.4 l=0.75
m4n y n1 vss vss nmos w=2.2 l=0.75
m4p y n1 vdd vdd pmos w=4.4 l=0.75
.ends
.subckt lv2 a y
m5n n1 a vss vss nmos w=2.4 l=0.75
m5p n1 a vdd vdd pmos w=4.8 l=0.75
m6n y n1 vss vss nmos w=2.4 l=0.75
m6p y n1 vdd vdd pmos w=4.8 l=0.75
.ends
.subckt lv3 a y
m7n n1 a vss vss nmos w=2.6 l=0.75
m7p n1 a vdd vdd pmos w=5.2 l=0.75
m8n y n1 vss vss nmos w=2.6 l=0.75
m8p y n1 vdd vdd pmos w=5.2 l=0.75
.ends
.subckt col0 a y
x0 a m lv0
x1 m y lv1
.ends
.subckt col1 a y
x0 a m lv2
x1 m y lv3
.ends
.subckt half0 a y
x0 a m col0
x1 m y col0
.ends
.subckt half1 a y
x0 a m col1
x1 m y col1
.ends
.subckt chip a y
x0 a q half0
x1 q y half1
.ends
`

// postHier posts the deck on the hierarchical path (every cell kept)
// and parses the manifest.
func postHier(t *testing.T, baseURL, deck string) *obs.Manifest {
	t.Helper()
	resp, body := postDeck(t, baseURL+"/verify?hier=1&top=chip&hier_inline=-1", deck)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hier verify: status %d: %s", resp.StatusCode, body)
	}
	m, err := obs.ParseManifest(body)
	if err != nil {
		t.Fatalf("hier response is not a valid manifest: %v", err)
	}
	return m
}

// TestVerifyHierWarmEditOneLeaf is the daemon-side incremental loop: a
// cold hier request verifies every subcell, an identical resubmit
// replays all of them, and a one-leaf edit recomputes exactly the
// edited cell plus its path to the root.
func TestVerifyHierWarmEditOneLeaf(t *testing.T) {
	s, hs := newTestServer(t, testConfig())

	cold := postHier(t, hs.URL, hierDeck)
	if len(cold.Items) != 9 {
		t.Fatalf("cold run items = %d, want 9 subcells", len(cold.Items))
	}
	for _, it := range cold.Items {
		if it.Subcell == "" {
			t.Errorf("item %q has no subcell", it.Name)
		}
		if it.Verdict != "pass" {
			t.Errorf("subcell %s verdict = %q, want pass", it.Subcell, it.Verdict)
		}
	}
	if last := cold.Items[len(cold.Items)-1]; last.Subcell != "chip" || last.Parent != "" {
		t.Errorf("last item = %s (parent %q), want top cell chip last", last.Subcell, last.Parent)
	}
	if got := cold.Counters["fleet.subcell.miss"]; got != 9 {
		t.Errorf("cold fleet.subcell.miss = %d, want 9", got)
	}
	if got := cold.Counters["fleet.subcell.compose"]; got != 5 {
		t.Errorf("cold fleet.subcell.compose = %d, want 5 (cells with kept children)", got)
	}

	warm := postHier(t, hs.URL, hierDeck)
	if hit, miss := warm.Counters["fleet.subcell.hit"], warm.Counters["fleet.subcell.miss"]; hit != 9 || miss != 0 {
		t.Errorf("identical resubmit: hit=%d miss=%d, want 9/0", hit, miss)
	}

	edited := strings.ReplaceAll(hierDeck, "w=2.6", "w=2.7")
	inc := postHier(t, hs.URL, edited)
	if hit, miss := inc.Counters["fleet.subcell.hit"], inc.Counters["fleet.subcell.miss"]; hit != 5 || miss != 4 {
		t.Errorf("edit-one-leaf: hit=%d miss=%d, want 5/4", hit, miss)
	}
	var recomputed []string
	for _, it := range inc.Items {
		if !it.Cached && !it.DiskHit {
			recomputed = append(recomputed, it.Subcell)
		}
	}
	if got := strings.Join(recomputed, ","); got != "lv3,col1,half1,chip" {
		t.Errorf("recomputed subcells = %q, want lv3,col1,half1,chip", got)
	}

	// The daemon's lifetime surfaces aggregate the per-request counters.
	st := s.StatsNow()
	if got := st.Counters["fleet.subcell.hit"]; got != 14 {
		t.Errorf("/stats fleet.subcell.hit = %d, want 14 (9 warm + 5 incremental)", got)
	}
	if got := st.Counters["fleet.subcell.miss"]; got != 13 {
		t.Errorf("/stats fleet.subcell.miss = %d, want 13 (9 cold + 4 incremental)", got)
	}
	body := string(fetchMetrics(t, hs.URL))
	for _, want := range []string{
		"fcv_fleet_subcell_hit_total 14",
		"fcv_fleet_subcell_miss_total 13",
		"fcv_fleet_subcell_compose_total 15",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestVerifyHierMatchesFlat the composed hierarchical root must agree
// with the whole-netlist verdict of the same design — the serve-path
// half of the determinism acceptance.
func TestVerifyHierMatchesFlat(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	hier := postHier(t, hs.URL, hierDeck)
	root := hier.Items[len(hier.Items)-1]

	resp, body := postDeck(t, hs.URL+"/verify?top=chip", hierDeck)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flat verify: status %d: %s", resp.StatusCode, body)
	}
	flat, err := obs.ParseManifest(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Items) != 1 {
		t.Fatalf("flat items = %d", len(flat.Items))
	}
	if root.Verdict != flat.Items[0].Verdict {
		t.Errorf("hier root verdict %q != flat verdict %q", root.Verdict, flat.Items[0].Verdict)
	}
	if len(root.Findings) != len(flat.Items[0].Findings) {
		t.Errorf("hier root findings = %d, flat = %d", len(root.Findings), len(flat.Items[0].Findings))
	}
}

// TestVerifyHierCountersPreRegistered a daemon that has served no hier
// traffic must still expose the subcell counter series (at zero), so
// the /metrics name set is independent of traffic history.
func TestVerifyHierCountersPreRegistered(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	body := string(fetchMetrics(t, hs.URL))
	for _, want := range []string{
		"fcv_fleet_subcell_hit_total 0",
		"fcv_fleet_subcell_miss_total 0",
		"fcv_fleet_subcell_compose_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("fresh /metrics missing %q", want)
		}
	}
}

// TestVerifyHierBadRequests hier parameter misuse and malformed
// hierarchies answer 400 before consuming pool capacity.
func TestVerifyHierBadRequests(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	for name, url := range map[string]string{
		"hier+cells":  hs.URL + "/verify?hier=1&cells=1",
		"unknown top": hs.URL + "/verify?hier=1&top=nosuch",
	} {
		if resp, body := postDeck(t, url, hierDeck); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, body)
		}
	}
	cyclic := "\n.subckt a p q\nx1 p q b\n.ends\n.subckt b p q\nx1 p q a\n.ends\n"
	if resp, body := postDeck(t, hs.URL+"/verify?hier=1&top=a", cyclic); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("cyclic hierarchy: status %d, want 400: %s", resp.StatusCode, body)
	}
}
