package serve

import (
	"context"
	"sync/atomic"
)

// workerPool is the daemon's global verification budget: a fixed number
// of worker tokens shared by every in-flight request, plus a bounded
// admission queue in front of them. A request needs at least one token
// to run; its `j` parameter is an *upper bound* — after the first token
// is granted, up to j-1 extras are taken opportunistically (never
// blocking), so a lone request fans out across the whole pool while a
// loaded daemon degrades every request toward one worker instead of
// queueing. That is the latency-first shape the agent-loop workload
// wants: admission waits are bounded and visible (429 on overflow),
// not unbounded convoys.
type workerPool struct {
	tokens   chan struct{}
	size     int
	maxQueue int64
	queued   atomic.Int64
}

// newWorkerPool builds a pool of size worker tokens admitting at most
// maxQueue requests waiting for their first token.
func newWorkerPool(size int, maxQueue int) *workerPool {
	p := &workerPool{
		tokens:   make(chan struct{}, size),
		size:     size,
		maxQueue: int64(maxQueue),
	}
	for i := 0; i < size; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

// acquire obtains 1..want worker tokens. The first token may wait in
// the admission queue (bounded by maxQueue — overflow returns ok=false
// immediately, the caller's 429); extras beyond the first are taken
// only if instantly free. A cancelled ctx while queued also returns
// ok=false. queuedNow reports whether the request had to wait.
func (p *workerPool) acquire(ctx context.Context, want int) (got int, queuedNow, ok bool) {
	if want < 1 {
		want = 1
	}
	if want > p.size {
		want = p.size
	}
	// Fast path: a free token means no queueing and no queue accounting.
	select {
	case <-p.tokens:
		got = 1
	default:
		if p.queued.Add(1) > p.maxQueue {
			p.queued.Add(-1)
			return 0, false, false
		}
		select {
		case <-p.tokens:
			p.queued.Add(-1)
			got, queuedNow = 1, true
		case <-ctx.Done():
			p.queued.Add(-1)
			return 0, true, false
		}
	}
	for got < want {
		select {
		case <-p.tokens:
			got++
		default:
			return got, queuedNow, true
		}
	}
	return got, queuedNow, true
}

// release returns n tokens to the pool.
func (p *workerPool) release(n int) {
	for i := 0; i < n; i++ {
		p.tokens <- struct{}{}
	}
}

// available reports the current free-token count (volatile, for /stats).
func (p *workerPool) available() int { return len(p.tokens) }

// waiting reports the current admission-queue depth (volatile).
func (p *workerPool) waiting() int64 { return p.queued.Load() }
