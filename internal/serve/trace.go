// Request tracing: every /verify request gets a stable trace ID minted
// from the daemon's start epoch plus a request sequence number. The ID
// travels four ways — the X-Fcv-Trace response header, the structured
// access log, the manifest's volatile `trace` field, and (for slow
// requests) the slow-trace ring — so one identifier joins a client-side
// observation ("that verify took 4 seconds") to the server-side span
// tree that explains it. Trace IDs and durations live strictly in the
// volatile half of the determinism contract: `fcv diff` never compares
// them, and batch manifests don't carry them at all.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// mintTrace issues the next trace ID: the daemon's start epoch (hex
// seconds) and a per-daemon request ordinal, e.g. "68959f21-000042".
// The epoch half distinguishes daemon restarts; the ordinal half is
// dense, so the access log's trace column doubles as an arrival order.
func (s *Server) mintTrace() (string, int64) {
	seq := s.traceSeq.Add(1)
	return fmt.Sprintf("%08x-%06d", uint32(s.epoch), seq), seq
}

// accessRecord is one line of the structured access log: everything an
// operator needs to reconstruct a request without grepping the event
// stream. Field order is the wire order.
type accessRecord struct {
	Trace  string  `json:"trace"`
	Method string  `json:"method"`
	Path   string  `json:"path"`
	Status int     `json:"status"`
	DurMS  float64 `json:"dur_ms"`
	// QueueMS is time spent waiting for the first worker token.
	QueueMS float64 `json:"queue_ms"`
	// Deck is the sha256 of the submitted deck bytes ("" when the body
	// never arrived — 405s, drained requests).
	Deck string `json:"deck,omitempty"`
	// Verdict is the request's overall outcome — the worst item verdict
	// (error > violation > inspect > pass) — for served requests.
	Verdict string `json:"verdict,omitempty"`
	// Workers is how many pool tokens the request actually ran with.
	Workers int `json:"workers,omitempty"`
	// Cache traffic attributable to this request.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	DiskHits    int `json:"disk_hits,omitempty"`
	DiskMisses  int `json:"disk_misses,omitempty"`
}

// logAccess appends one JSONL line to the access log, if configured.
// A single mutex serializes writers; the log is an operator artifact,
// not a hot path.
func (s *Server) logAccess(rec accessRecord) {
	if s.cfg.AccessLog == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	s.logMu.Lock()
	s.cfg.AccessLog.Write(append(b, '\n'))
	s.logMu.Unlock()
}

// slowTrace is one retained slow request: identity, outcome, and the
// fully rendered span tree + counters (the same text `fcv verify
// -trace` prints), captured at request end.
type slowTrace struct {
	Trace    string  `json:"trace"`
	Src      string  `json:"src"`
	Status   int     `json:"status"`
	DurMS    float64 `json:"dur_ms"`
	Verdict  string  `json:"verdict"`
	Rendered string  `json:"-"`
}

// traceRing retains the last N slow requests' span trees. Bounded and
// overwrite-oldest: slow-trace capture must never become a memory leak
// on a daemon that is slow *all the time*.
type traceRing struct {
	mu     sync.Mutex
	max    int
	traces []slowTrace // oldest first
}

func newTraceRing(max int) *traceRing {
	return &traceRing{max: max}
}

// add retains a slow trace, evicting the oldest past capacity.
func (r *traceRing) add(tr slowTrace) {
	if r == nil || r.max <= 0 {
		return
	}
	r.mu.Lock()
	r.traces = append(r.traces, tr)
	if len(r.traces) > r.max {
		r.traces = r.traces[len(r.traces)-r.max:]
	}
	r.mu.Unlock()
}

// index returns the retained traces, newest first, without the rendered
// bodies (those are one GET away).
func (r *traceRing) index() []slowTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]slowTrace, 0, len(r.traces))
	for i := len(r.traces) - 1; i >= 0; i-- {
		tr := r.traces[i]
		tr.Rendered = ""
		out = append(out, tr)
	}
	return out
}

// get finds a retained trace by ID.
func (r *traceRing) get(id string) (slowTrace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.traces) - 1; i >= 0; i-- {
		if r.traces[i].Trace == id {
			return r.traces[i], true
		}
	}
	return slowTrace{}, false
}

// handleTraces serves the slow-trace endpoints — deliberately reachable
// while draining, since a draining daemon is exactly when an operator
// wants to pull retained traces:
//
//	GET /debug/traces        JSON index (newest first, no bodies)
//	GET /debug/traces/{id}   the rendered span tree, text/plain
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/traces")
	id = strings.TrimPrefix(id, "/")
	if id == "" {
		idx := s.ring.index()
		sort.SliceStable(idx, func(i, j int) bool { return idx[i].Trace > idx[j].Trace })
		w.Header().Set("Content-Type", "application/json")
		b, err := json.MarshalIndent(idx, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(b, '\n'))
		return
	}
	tr, ok := s.ring.get(id)
	if !ok {
		http.Error(w, "no retained trace "+id, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "trace %s  src=%s  status=%d  verdict=%s  dur=%.3fms\n\n",
		tr.Trace, tr.Src, tr.Status, tr.Verdict, tr.DurMS)
	io.WriteString(w, tr.Rendered)
}

// overallVerdict collapses a report's item tallies to the worst one.
func overallVerdict(pass, inspect, violation, errs int) string {
	switch {
	case errs > 0:
		return "error"
	case violation > 0:
		return "violation"
	case inspect > 0:
		return "inspect"
	}
	return "pass"
}
