// The /metrics endpoint: the daemon's whole telemetry surface in
// Prometheus text format, hand-rolled in internal/obs (the repo takes
// no dependencies). Everything the merged obs collector holds — the
// deterministic per-request counters, the serve.request_ms histogram —
// plus the daemon's lifetime tallies and a few process basics, rendered
// name-sorted so the exposition's shape (every line with sample values
// masked) is byte-identical across worker counts. Reachable while
// draining: scrapes must outlive the drain window.
package serve

import (
	"net/http"
	"runtime"

	"repro/internal/obs"
)

// metricsSnapshot composes the full /metrics view: the lifetime
// collector's snapshot extended with the daemon counters and gauges
// that live in Server fields rather than the collector.
func (s *Server) metricsSnapshot() obs.MetricsSnapshot {
	snap := s.col.Snapshot()
	snap.Counters["serve.requests"] = s.requests.Load()
	snap.Counters["serve.served"] = s.served.Load()
	snap.Counters["serve.rejected"] = s.rejected.Load()
	snap.Counters["serve.bad_requests"] = s.badRequests.Load()
	snap.Counters["serve.cache.hits"] = s.cacheHits.Load()
	snap.Counters["serve.cache.misses"] = s.cacheMisses.Load()
	snap.Counters["serve.verdict.pass"] = s.tallyPass.Load()
	snap.Counters["serve.verdict.inspect"] = s.tallyInspect.Load()
	snap.Counters["serve.verdict.violation"] = s.tallyViolation.Load()
	snap.Counters["serve.verdict.error"] = s.tallyError.Load()
	if s.cfg.DiskCache != nil {
		snap.Counters["serve.disk.hits"] = s.diskHits.Load()
		snap.Counters["serve.disk.misses"] = s.diskMisses.Load()
	}

	snap.Gauges["serve.pool.workers"] = float64(s.pool.size)
	snap.Gauges["serve.pool.available"] = float64(s.pool.available())
	snap.Gauges["serve.queue.depth"] = float64(s.pool.waiting())
	snap.Gauges["serve.queue.limit"] = float64(s.pool.maxQueue)
	snap.Gauges["serve.parse_cache.entries"] = float64(s.parses.len())
	snap.Gauges["serve.slow_traces.retained"] = float64(len(s.ring.index()))
	if s.draining.Load() {
		snap.Gauges["serve.draining"] = 1
	} else {
		snap.Gauges["serve.draining"] = 0
	}

	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	snap.Gauges["process.goroutines"] = float64(runtime.NumGoroutine())
	snap.Gauges["process.heap_alloc_bytes"] = float64(mem.HeapAlloc)
	snap.Gauges["process.uptime_seconds"] = obs.Now().Sub(s.start).Seconds()
	return snap
}

// handleMetrics renders the Prometheus exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metricsSnapshot().WritePrometheus(w, "fcv")
}
