package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"repro/internal/obs"
)

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{8}-[0-9]{6}$`)

// TestTraceHeaderJoinsManifest every /verify response carries an
// X-Fcv-Trace header, and the manifest's volatile trace field holds the
// same ID — the join key between client and server observations.
func TestTraceHeaderJoinsManifest(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	resp, body := postDeck(t, hs.URL+"/verify", cleanDeck)
	tid := resp.Header.Get("X-Fcv-Trace")
	if !traceIDRe.MatchString(tid) {
		t.Fatalf("X-Fcv-Trace = %q, want epoch-seq form", tid)
	}
	m, err := obs.ParseManifest(body)
	if err != nil {
		t.Fatal(err)
	}
	if m.Trace != tid {
		t.Errorf("manifest trace = %q, header = %q", m.Trace, tid)
	}
	// A second request gets a distinct ID.
	resp2, _ := postDeck(t, hs.URL+"/verify", cleanDeck)
	if tid2 := resp2.Header.Get("X-Fcv-Trace"); tid2 == tid || !traceIDRe.MatchString(tid2) {
		t.Errorf("second trace = %q (first %q), want a fresh ID", tid2, tid)
	}
}

// TestAccessLogEveryExitPath one JSONL line per request, on the happy
// path and on every refusal, each carrying the response's trace ID.
func TestAccessLogEveryExitPath(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig()
	cfg.AccessLog = &buf
	_, hs := newTestServer(t, cfg)

	okResp, _ := postDeck(t, hs.URL+"/verify", cleanDeck) // 200
	postDeck(t, hs.URL+"/verify", "mn y a vss\n")         // 400
	postDeck(t, hs.URL+"/verify?lint=1", brokenDeck)      // 422
	getResp, err := http.Get(hs.URL + "/verify")          // 405
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("access log has %d lines, want 4:\n%s", len(lines), buf.String())
	}
	var recs []accessRecord
	for _, ln := range lines {
		var rec accessRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("bad access-log line %q: %v", ln, err)
		}
		if !traceIDRe.MatchString(rec.Trace) {
			t.Errorf("access-log trace = %q", rec.Trace)
		}
		recs = append(recs, rec)
	}
	wantStatus := []int{200, 400, 422, 405}
	for i, want := range wantStatus {
		if recs[i].Status != want {
			t.Errorf("line %d status = %d, want %d", i, recs[i].Status, want)
		}
	}
	if recs[0].Trace != okResp.Header.Get("X-Fcv-Trace") {
		t.Errorf("access-log trace %q != response header %q", recs[0].Trace, okResp.Header.Get("X-Fcv-Trace"))
	}
	if recs[0].Verdict != "pass" && recs[0].Verdict != "inspect" {
		t.Errorf("clean-deck verdict = %q", recs[0].Verdict)
	}
	if len(recs[0].Deck) != 64 {
		t.Errorf("deck fingerprint = %q, want sha256 hex", recs[0].Deck)
	}
	if recs[0].Workers < 1 || recs[0].DurMS <= 0 {
		t.Errorf("served line workers=%d dur=%g, want positive", recs[0].Workers, recs[0].DurMS)
	}
	if recs[2].Verdict == "pass" || recs[2].Verdict == "" {
		t.Errorf("lint-gated deck verdict = %q, want violation/error", recs[2].Verdict)
	}
	if recs[3].Deck != "" || recs[3].Verdict != "" {
		t.Errorf("405 line carries deck/verdict: %+v", recs[3])
	}
}

// TestSlowTraceCapture with SlowMS well under any real request
// duration, every served request's span tree lands in the ring and is
// retrievable by trace ID through the debug endpoints.
func TestSlowTraceCapture(t *testing.T) {
	cfg := testConfig()
	cfg.SlowMS = 0.0001
	s, hs := newTestServer(t, cfg)
	resp, _ := postDeck(t, hs.URL+"/verify", cleanDeck)
	tid := resp.Header.Get("X-Fcv-Trace")

	idxResp, err := http.Get(hs.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer idxResp.Body.Close()
	var idx []slowTrace
	if err := json.NewDecoder(idxResp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0].Trace != tid {
		t.Fatalf("trace index = %+v, want one entry for %s", idx, tid)
	}
	if idx[0].DurMS <= 0 || idx[0].Verdict == "" || idx[0].Status != 200 {
		t.Errorf("index entry incomplete: %+v", idx[0])
	}

	trResp, err := http.Get(hs.URL + "/debug/traces/" + tid)
	if err != nil {
		t.Fatal(err)
	}
	defer trResp.Body.Close()
	body, _ := io.ReadAll(trResp.Body)
	if trResp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch = %d: %s", trResp.StatusCode, body)
	}
	// The rendered body is the same span tree + counters `fcv verify
	// -trace` prints: a fleet root span and the deterministic counters.
	for _, want := range []string{"fleet", "fleet.items"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("rendered trace missing %q:\n%s", want, body)
		}
	}

	if resp404, err := http.Get(hs.URL + "/debug/traces/no-such-id"); err != nil {
		t.Fatal(err)
	} else {
		resp404.Body.Close()
		if resp404.StatusCode != http.StatusNotFound {
			t.Errorf("unknown trace = %d, want 404", resp404.StatusCode)
		}
	}

	// The debug endpoints stay reachable while draining.
	s.SetDraining(true)
	if drained, err := http.Get(hs.URL + "/debug/traces"); err != nil {
		t.Fatal(err)
	} else {
		drained.Body.Close()
		if drained.StatusCode != http.StatusOK {
			t.Errorf("/debug/traces while draining = %d", drained.StatusCode)
		}
	}
}

// TestTraceRingBounded the ring keeps only the newest max entries.
func TestTraceRingBounded(t *testing.T) {
	r := newTraceRing(2)
	r.add(slowTrace{Trace: "a"})
	r.add(slowTrace{Trace: "b"})
	r.add(slowTrace{Trace: "c"})
	idx := r.index()
	if len(idx) != 2 || idx[0].Trace != "c" || idx[1].Trace != "b" {
		t.Errorf("ring index = %+v, want [c b]", idx)
	}
	if _, ok := r.get("a"); ok {
		t.Error("evicted trace still retrievable")
	}
	if _, ok := r.get("c"); !ok {
		t.Error("retained trace not retrievable")
	}
}

// TestStreamCarriesTraceEvent a ?stream=1 response includes a run-level
// trace event after run-end, carrying the header's trace ID — and the
// trailing manifest repeats it.
func TestStreamCarriesTraceEvent(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	resp, err := http.Post(hs.URL+"/verify?stream=1", "text/plain", strings.NewReader(cleanDeck))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	tid := resp.Header.Get("X-Fcv-Trace")
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	var sawTrace bool
	var sawEnd bool
	for _, ln := range lines[:len(lines)-1] {
		var ev obs.Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", ln, err)
		}
		if ev.Type == "run-end" {
			sawEnd = true
		}
		if ev.Type == "trace" {
			sawTrace = true
			if ev.Detail != tid {
				t.Errorf("trace event detail = %q, header = %q", ev.Detail, tid)
			}
			if !sawEnd {
				t.Error("trace event arrived before run-end")
			}
		}
	}
	if !sawTrace {
		t.Error("stream has no trace event")
	}
	m, err := obs.ParseManifest([]byte(lines[len(lines)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if m.Trace != tid {
		t.Errorf("streamed manifest trace = %q, header = %q", m.Trace, tid)
	}
}
