// Package serve is the long-lived verification service: an HTTP/JSON
// daemon over the internal/fleet engine. The paper's methodology only
// pays off because verification runs constantly — every edit re-checked
// against the switch-level and timing batteries — and the agent-driven
// flows in PAPERS.md assume the same shape: an autonomous designer
// hammering the verifier in a tight loop where latency is the product.
// This package turns the batch fleet into that service:
//
//   - POST /verify — submit a SPICE deck (request body, or ?path= when
//     the server allows it) and get back the run manifest (the same
//     fcv-run-manifest/v2 document `fcv verify -manifest` writes, so
//     `fcv diff` gates HTTP results against batch runs directly), or —
//     with ?stream=1 — the live JSONL event stream over a chunked
//     response, ending in the manifest as its last line.
//   - GET /stats — daemon counters: requests, admissions, rejections,
//     cache traffic, pool occupancy, request-latency quantiles, and the
//     merged per-request obs counters.
//   - GET /healthz — liveness; flips to 503 once draining begins.
//
// Parsed results and the memory+disk verification caches stay warm
// across requests: the daemon owns one fleet.Cache (and optionally one
// fleet.DiskCache), so a repeated deck is a singleflight cache hit no
// matter how many clients race on it, and a rename-only edit re-uses
// the structural-fingerprint entry.
//
// Backpressure contract: a global pool of worker tokens bounds total
// verification parallelism; each request needs one token to run and may
// opportunistically take up to its ?j= budget when the pool is idle. At
// most Queue requests wait for a first token; past that the daemon
// answers 429 with Retry-After rather than queueing unboundedly —
// callers are expected to back off and retry, never to hang.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// Config configures a verification server.
type Config struct {
	// Core is the base per-design verification configuration (process,
	// clock, lint gate default). Requests may enable the lint gate per
	// request with ?lint=1; everything else is server policy.
	Core core.Options
	// Workers is the global worker-token pool size shared by all
	// requests (0 = GOMAXPROCS).
	Workers int
	// Queue bounds how many requests may wait for admission before the
	// daemon answers 429 (0 = a sensible default of 4x Workers;
	// negative = no waiting, reject unless a worker is free).
	Queue int
	// MaxBodyBytes caps the accepted deck size (0 = 16 MiB).
	MaxBodyBytes int64
	// Cache is the shared in-memory verification cache (nil = a fresh
	// one, which is almost always what a daemon wants).
	Cache *fleet.Cache
	// DiskCache, when non-nil, layers the persistent cache under the
	// memory one, exactly like `fcv verify -cache-dir`.
	DiskCache *fleet.DiskCache
	// AllowPathDecks permits ?path= requests that read decks from the
	// server's filesystem. Off by default: only enable for trusted
	// local callers (the CI smoke, a designer's own machine).
	AllowPathDecks bool
}

// Server is the verification daemon: an http.Handler plus the warm
// state it keeps between requests. Construct with New.
type Server struct {
	cfg  Config
	pool *workerPool
	mux  *http.ServeMux
	col  *obs.Collector // server-lifetime telemetry (merged request counters)

	start    time.Time
	draining atomic.Bool

	// Lifetime tallies, surfaced at /stats.
	requests, served, rejected, badRequests atomic.Int64
	cacheHits, cacheMisses                  atomic.Int64
	diskHits, diskMisses                    atomic.Int64
	tallyPass, tallyInspect                 atomic.Int64
	tallyViolation, tallyError              atomic.Int64
}

// New builds a Server from cfg, filling defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.Queue == 0:
		cfg.Queue = 4 * cfg.Workers
	case cfg.Queue < 0:
		cfg.Queue = 0
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.Cache == nil {
		cfg.Cache = fleet.NewCache()
	}
	s := &Server{
		cfg:   cfg,
		pool:  newWorkerPool(cfg.Workers, cfg.Queue),
		mux:   http.NewServeMux(),
		col:   obs.New(),
		start: obs.Now(),
	}
	s.mux.HandleFunc("/verify", s.handleVerify)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/", s.handleRoot)
	return s
}

// ServeHTTP dispatches to the daemon's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetDraining flips the daemon's drain state: once draining, /healthz
// answers 503 (so load balancers stop routing here) and new /verify
// requests are refused while in-flight ones finish. The caller pairs
// this with http.Server.Shutdown for the connection-level half.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// handleRoot is a minimal usage page for humans poking with curl.
func (s *Server) handleRoot(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, `fcv serve — full-custom verification service
  POST /verify[?top=CELL&cells=1&j=N&lint=1&stream=1][&path=deck.sp]  deck in body -> run manifest
  GET  /stats                                                         daemon counters
  GET  /healthz                                                       liveness
`)
}

// handleHealthz answers liveness probes; draining flips it to 503.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// boolParam parses a query flag: absent and "0"/"false" are off.
func boolParam(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "", "0", "false":
		return false
	}
	return true
}

// handleVerify is the daemon's workhorse: admit, load the deck, run the
// fleet with the shared caches, respond with the manifest (or stream
// the event log).
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a SPICE deck to /verify", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Add(1)
	q := r.URL.Query()
	want := 1
	if js := q.Get("j"); js != "" {
		j, err := strconv.Atoi(js)
		if err != nil || j < 1 {
			s.fail(w, http.StatusBadRequest, "bad j=%q (want a positive integer)", js)
			return
		}
		want = j
	}

	// Load the deck before competing for workers: parse errors should
	// not consume pool capacity, and a 400 should be instant.
	items, err := s.loadItems(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}

	got, queued, ok := s.pool.acquire(r.Context(), want)
	if !ok {
		if r.Context().Err() != nil {
			s.badRequests.Add(1)
			return // client went away while queued; nothing to say
		}
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "admission queue full, retry later", http.StatusTooManyRequests)
		return
	}
	defer s.pool.release(got)
	if queued {
		s.col.Add("serve.queued", 1)
	}

	t0 := obs.Now()
	col := obs.New()
	opt := fleet.Options{
		Core:      s.cfg.Core,
		Workers:   got,
		Cache:     s.cfg.Cache,
		DiskCache: s.cfg.DiskCache,
		Obs:       col,
	}
	if boolParam(r, "lint") {
		opt.Core.Lint = true
	}

	stream := boolParam(r, "stream")
	var fw *flushWriter
	var sink *obs.EventSink
	if stream {
		// Status and headers go out before the run so events can flow
		// as they happen; verdicts travel in the run-end event and the
		// trailing manifest line instead of the status code.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fw = newFlushWriter(w)
		sink = obs.NewEventSink(fw)
		opt.Events = sink
	}

	rep := fleet.Verify(items, opt)
	s.account(rep, float64(obs.Now().Sub(t0).Microseconds())/1000, col)
	m := fleet.BuildManifest("fcv serve", rep, col)

	if stream {
		sink.Close() // flush; write errors mean the client left
		// The trailing manifest rides the same JSONL stream, so compact
		// the canonical (nil-normalized) document onto one line.
		if b, err := m.JSON(); err == nil {
			var line bytes.Buffer
			if json.Compact(&line, b) == nil {
				line.WriteByte('\n')
				fw.Write(line.Bytes())
			}
		}
		return
	}
	b, err := m.JSON()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "manifest: %v", err)
		return
	}
	p, i, v, f := rep.Counts()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Fcv-Verdicts", fmt.Sprintf("pass=%d inspect=%d violation=%d error=%d", p, i, v, f))
	if rep.HasViolations() {
		// The verification *ran*; the design is what failed. 422 keeps
		// that distinct from 400 (unusable request) so CI and agents can
		// branch on the status alone.
		w.WriteHeader(http.StatusUnprocessableEntity)
	}
	w.Write(b)
}

// loadItems resolves the request's deck — body or ?path= — into fleet
// items, honoring ?top= and ?cells=1.
func (s *Server) loadItems(r *http.Request) ([]fleet.Item, error) {
	q := r.URL.Query()
	top, cells := q.Get("top"), boolParam(r, "cells")
	if path := q.Get("path"); path != "" {
		if !s.cfg.AllowPathDecks {
			return nil, fmt.Errorf("path decks are disabled on this server (start with -paths)")
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return fleet.ItemsFromDeck(f, path, top, cells)
	}
	src := q.Get("src")
	if src == "" {
		src = "deck.sp"
	}
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	return fleet.ItemsFromDeck(body, src, top, cells)
}

// fail answers an unusable request and counts it.
func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.badRequests.Add(1)
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// account merges one request's outcome into the daemon's lifetime
// telemetry: tallies, cache traffic, request latency, and the request
// collector's deterministic counters (sorted before merging so the
// merge order — and any future iteration-order-sensitive consumer — is
// deterministic).
func (s *Server) account(rep *fleet.Report, elapsedMS float64, col *obs.Collector) {
	s.served.Add(1)
	s.cacheHits.Add(int64(rep.Hits))
	s.cacheMisses.Add(int64(rep.Misses))
	s.diskHits.Add(int64(rep.DiskHits))
	s.diskMisses.Add(int64(rep.DiskMisses))
	p, i, v, f := rep.Counts()
	s.tallyPass.Add(int64(p))
	s.tallyInspect.Add(int64(i))
	s.tallyViolation.Add(int64(v))
	s.tallyError.Add(int64(f))
	s.col.Observe("serve.request_ms", elapsedMS)
	counters := col.Counters()
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.col.Add(name, counters[name])
	}
}

// Stats is the /stats document: daemon occupancy, lifetime traffic, and
// the merged request-counter map. Field order is the wire order.
type Stats struct {
	UptimeMS      float64 `json:"uptime_ms"`
	Draining      bool    `json:"draining"`
	PoolWorkers   int     `json:"pool_workers"`
	PoolAvailable int     `json:"pool_available"`
	QueueDepth    int64   `json:"queue_depth"`
	QueueLimit    int     `json:"queue_limit"`
	// Requests counts every /verify POST reaching admission; Served the
	// ones that ran to a manifest; Rejected the 429s; BadRequests the
	// 4xx-class refusals (parse errors, disabled path decks, dropped
	// clients).
	Requests    int64 `json:"requests"`
	Served      int64 `json:"served"`
	Rejected    int64 `json:"rejected"`
	BadRequests int64 `json:"bad_requests"`
	// Cache is the shared in-memory layer's lifetime traffic as seen by
	// this daemon (hits accumulate across requests — the warm-path
	// evidence the CI smoke asserts on).
	Cache struct {
		Entries int   `json:"entries"`
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
	} `json:"cache"`
	Disk *fleet.DiskStats `json:"disk,omitempty"`
	// Verdicts tallies every served item's outcome since startup.
	Verdicts struct {
		Pass      int64 `json:"pass"`
		Inspect   int64 `json:"inspect"`
		Violation int64 `json:"violation"`
		Error     int64 `json:"error"`
	} `json:"verdicts"`
	// RequestP50MS / RequestP99MS are interpolated request-latency
	// quantiles from the serve.request_ms histogram (volatile).
	RequestP50MS float64 `json:"request_p50_ms"`
	RequestP99MS float64 `json:"request_p99_ms"`
	// Counters are the merged deterministic per-request obs counters
	// (fleet.*, core.*, recognize.*, … — plus serve.queued).
	Counters map[string]int64 `json:"counters"`
}

// StatsNow snapshots the daemon's current stats.
func (s *Server) StatsNow() Stats {
	var st Stats
	st.UptimeMS = float64(obs.Now().Sub(s.start).Microseconds()) / 1000
	st.Draining = s.draining.Load()
	st.PoolWorkers = s.pool.size
	st.PoolAvailable = s.pool.available()
	st.QueueDepth = s.pool.waiting()
	st.QueueLimit = int(s.pool.maxQueue)
	st.Requests = s.requests.Load()
	st.Served = s.served.Load()
	st.Rejected = s.rejected.Load()
	st.BadRequests = s.badRequests.Load()
	st.Cache.Entries = s.cfg.Cache.Len()
	st.Cache.Hits = s.cacheHits.Load()
	st.Cache.Misses = s.cacheMisses.Load()
	if s.cfg.DiskCache != nil {
		if ds, err := s.cfg.DiskCache.Stats(); err == nil {
			st.Disk = &ds
		}
	}
	st.Verdicts.Pass = s.tallyPass.Load()
	st.Verdicts.Inspect = s.tallyInspect.Load()
	st.Verdicts.Violation = s.tallyViolation.Load()
	st.Verdicts.Error = s.tallyError.Load()
	if h, ok := s.col.Histograms()["serve.request_ms"]; ok {
		st.RequestP50MS = h.Quantile(0.50)
		st.RequestP99MS = h.Quantile(0.99)
	}
	st.Counters = s.col.Counters()
	if st.Counters == nil {
		st.Counters = map[string]int64{}
	}
	return st
}

// handleStats renders the stats document.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.StatsNow()
	b, err := json.MarshalIndent(&st, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// flushWriter pushes every write through the ResponseWriter's flusher
// so streamed events reach the client as they happen, not when the
// response buffer fills.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func newFlushWriter(w http.ResponseWriter) *flushWriter {
	f, _ := w.(http.Flusher)
	return &flushWriter{w: w, f: f}
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}
