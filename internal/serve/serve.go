// Package serve is the long-lived verification service: an HTTP/JSON
// daemon over the internal/fleet engine. The paper's methodology only
// pays off because verification runs constantly — every edit re-checked
// against the switch-level and timing batteries — and the agent-driven
// flows in PAPERS.md assume the same shape: an autonomous designer
// hammering the verifier in a tight loop where latency is the product.
// This package turns the batch fleet into that service:
//
//   - POST /verify — submit a SPICE deck (request body, or ?path= when
//     the server allows it) and get back the run manifest (the same
//     fcv-run-manifest/v2 document `fcv verify -manifest` writes, so
//     `fcv diff` gates HTTP results against batch runs directly), or —
//     with ?stream=1 — the live JSONL event stream over a chunked
//     response, ending in the manifest as its last line.
//   - GET /stats — daemon counters: requests, admissions, rejections,
//     cache traffic, pool occupancy, request-latency quantiles, and the
//     merged per-request obs counters.
//   - GET /healthz — liveness; flips to 503 once draining begins.
//
// Parsed results and the memory+disk verification caches stay warm
// across requests: the daemon owns one fleet.Cache (and optionally one
// fleet.DiskCache), so a repeated deck is a singleflight cache hit no
// matter how many clients race on it, and a rename-only edit re-uses
// the structural-fingerprint entry.
//
// ?hier=1 switches a request onto fleet.VerifyHier: each subcell is
// keyed on its fingerprint-DAG hash against the same shared caches, so
// an agent editing one leaf cell between requests pays only for the
// edited cell and its path to the root — the daemon-side twin of
// `fcv verify -hier -cache-dir`. The fleet.subcell.{hit,miss,compose}
// counters on /stats and /metrics (pre-registered, so the exposition's
// shape is traffic-independent) are the observable evidence.
//
// Backpressure contract: a global pool of worker tokens bounds total
// verification parallelism; each request needs one token to run and may
// opportunistically take up to its ?j= budget when the pool is idle. At
// most Queue requests wait for a first token; past that the daemon
// answers 429 with Retry-After rather than queueing unboundedly —
// callers are expected to back off and retry, never to hang.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Config configures a verification server.
type Config struct {
	// Core is the base per-design verification configuration (process,
	// clock, lint gate default). Requests may enable the lint gate per
	// request with ?lint=1; everything else is server policy.
	Core core.Options
	// Workers is the global worker-token pool size shared by all
	// requests (0 = GOMAXPROCS).
	Workers int
	// Queue bounds how many requests may wait for admission before the
	// daemon answers 429 (0 = a sensible default of 4x Workers;
	// negative = no waiting, reject unless a worker is free).
	Queue int
	// MaxBodyBytes caps the accepted deck size (0 = 16 MiB).
	MaxBodyBytes int64
	// Cache is the shared in-memory verification cache (nil = a fresh
	// one, which is almost always what a daemon wants).
	Cache *fleet.Cache
	// DiskCache, when non-nil, layers the persistent cache under the
	// memory one, exactly like `fcv verify -cache-dir`.
	DiskCache *fleet.DiskCache
	// AllowPathDecks permits ?path= requests that read decks from the
	// server's filesystem. Off by default: only enable for trusted
	// local callers (the CI smoke, a designer's own machine).
	AllowPathDecks bool
	// AccessLog, when non-nil, receives one JSONL accessRecord line per
	// /verify request (every exit path: 200, 400, 405, 422, 429, 503).
	AccessLog io.Writer
	// SlowMS, when positive, retains the full rendered span tree of any
	// request slower than this many milliseconds in the slow-trace ring
	// (GET /debug/traces). 0 disables capture.
	SlowMS float64
	// SlowTraceCap bounds the slow-trace ring (0 = 32).
	SlowTraceCap int
	// ParseCacheSize bounds the deck parse cache in entries (0 = 64;
	// negative disables parse caching).
	ParseCacheSize int
}

// Server is the verification daemon: an http.Handler plus the warm
// state it keeps between requests. Construct with New.
type Server struct {
	cfg    Config
	pool   *workerPool
	mux    *http.ServeMux
	col    *obs.Collector // server-lifetime telemetry (merged request counters)
	parses *parseCache
	ring   *traceRing

	start    time.Time
	epoch    int64 // start time in Unix seconds; the trace-ID prefix
	traceSeq atomic.Int64
	logMu    sync.Mutex // serializes access-log writers
	draining atomic.Bool

	// Lifetime tallies, surfaced at /stats.
	requests, served, rejected, badRequests atomic.Int64
	cacheHits, cacheMisses                  atomic.Int64
	diskHits, diskMisses                    atomic.Int64
	tallyPass, tallyInspect                 atomic.Int64
	tallyViolation, tallyError              atomic.Int64
}

// New builds a Server from cfg, filling defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.Queue == 0:
		cfg.Queue = 4 * cfg.Workers
	case cfg.Queue < 0:
		cfg.Queue = 0
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.Cache == nil {
		cfg.Cache = fleet.NewCache()
	}
	if cfg.SlowTraceCap == 0 {
		cfg.SlowTraceCap = 32
	}
	if cfg.ParseCacheSize == 0 {
		cfg.ParseCacheSize = 64
	}
	s := &Server{
		cfg:    cfg,
		pool:   newWorkerPool(cfg.Workers, cfg.Queue),
		mux:    http.NewServeMux(),
		col:    obs.New(),
		parses: newParseCache(cfg.ParseCacheSize),
		ring:   newTraceRing(cfg.SlowTraceCap),
		start:  obs.Now(),
	}
	s.epoch = s.start.Unix()
	// Pre-register the parse-cache counters so the /metrics name set is
	// identical whether or not a hit (or a miss) has happened yet —
	// the exposition's shape must not depend on traffic history.
	s.col.Add("serve.parse_cache.hit", 0)
	s.col.Add("serve.parse_cache.miss", 0)
	// Same for the hierarchical subcell counters: a daemon that has not
	// seen a ?hier=1 request yet must expose the same name set as one
	// mid-way through an incremental edit loop.
	s.col.Add("fleet.subcell.hit", 0)
	s.col.Add("fleet.subcell.miss", 0)
	s.col.Add("fleet.subcell.compose", 0)
	s.mux.HandleFunc("/verify", s.handleVerify)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/traces", s.handleTraces)
	s.mux.HandleFunc("/debug/traces/", s.handleTraces)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/", s.handleRoot)
	return s
}

// ServeHTTP dispatches to the daemon's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetDraining flips the daemon's drain state: once draining, /healthz
// answers 503 (so load balancers stop routing here) and new /verify
// requests are refused while in-flight ones finish. The caller pairs
// this with http.Server.Shutdown for the connection-level half.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// handleRoot is a minimal usage page for humans poking with curl.
func (s *Server) handleRoot(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, `fcv serve — full-custom verification service
  POST /verify[?top=CELL&cells=1&hier=1&hier_inline=N&j=N&lint=1&stream=1][&path=deck.sp]  deck in body -> run manifest
  GET  /stats                                                         daemon counters (JSON)
  GET  /metrics                                                       Prometheus text exposition
  GET  /debug/traces                                                  slow-trace index (JSON)
  GET  /debug/traces/{id}                                             one retained span tree
  GET  /healthz                                                       liveness
`)
}

// handleHealthz answers liveness probes; draining flips it to 503.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// boolParam parses a query flag: absent and "0"/"false" are off.
func boolParam(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "", "0", "false":
		return false
	}
	return true
}

// handleVerify is the daemon's workhorse: mint a trace ID, admit, load
// the deck (through the parse cache), run the fleet with the shared
// caches, respond with the manifest (or stream the event log), and
// account every exit path in the access log.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	tid, seq := s.mintTrace()
	w.Header().Set("X-Fcv-Trace", tid)
	t0 := obs.Now()
	rec := accessRecord{Trace: tid, Method: r.Method, Path: r.URL.Path}
	defer func() {
		rec.DurMS = float64(obs.Now().Sub(t0).Microseconds()) / 1000
		s.logAccess(rec)
	}()
	if s.draining.Load() {
		rec.Status = http.StatusServiceUnavailable
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if r.Method != http.MethodPost {
		rec.Status = http.StatusMethodNotAllowed
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a SPICE deck to /verify", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Add(1)
	q := r.URL.Query()
	want := 1
	if js := q.Get("j"); js != "" {
		j, err := strconv.Atoi(js)
		if err != nil || j < 1 {
			s.fail(w, &rec, http.StatusBadRequest, "bad j=%q (want a positive integer)", js)
			return
		}
		want = j
	}
	hierInline := 0
	if hi := q.Get("hier_inline"); hi != "" {
		n, err := strconv.Atoi(hi)
		if err != nil {
			s.fail(w, &rec, http.StatusBadRequest, "bad hier_inline=%q (want an integer)", hi)
			return
		}
		hierInline = n
	}

	// Load the deck before competing for workers: parse errors should
	// not consume pool capacity, and a 400 should be instant.
	ld, src, deckSHA, err := s.loadDeck(r)
	rec.Deck = deckSHA
	if err != nil {
		s.fail(w, &rec, http.StatusBadRequest, "%v", err)
		return
	}

	qt0 := obs.Now()
	got, queued, ok := s.pool.acquire(r.Context(), want)
	rec.QueueMS = float64(obs.Now().Sub(qt0).Microseconds()) / 1000
	if !ok {
		if r.Context().Err() != nil {
			s.badRequests.Add(1)
			rec.Status = 499 // client went away while queued; nothing to say
			return
		}
		s.rejected.Add(1)
		rec.Status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
		http.Error(w, "admission queue full, retry later", http.StatusTooManyRequests)
		return
	}
	defer s.pool.release(got)
	if queued {
		s.col.Add("serve.queued", 1)
	}
	rec.Workers = got

	col := obs.New()
	// The trace joins the request's own collector as a volatile gauge
	// (the numeric half of the ID; gauges never enter the stable half).
	col.SetGauge("serve.trace_seq", float64(seq))
	opt := fleet.Options{
		Core:       s.cfg.Core,
		Workers:    got,
		Cache:      s.cfg.Cache,
		DiskCache:  s.cfg.DiskCache,
		Obs:        col,
		HierInline: hierInline,
	}
	if boolParam(r, "lint") {
		opt.Core.Lint = true
	}

	stream := boolParam(r, "stream")
	var fw *flushWriter
	var sink *obs.EventSink
	if stream {
		// Status and headers go out before the run so events can flow
		// as they happen; verdicts travel in the run-end event and the
		// trailing manifest line instead of the status code.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fw = newFlushWriter(w)
		sink = obs.NewEventSink(fw)
		opt.Events = sink
	}

	var rep *fleet.Report
	if ld.lib != nil {
		// ?hier=1: hierarchical incremental verification against the
		// daemon's shared caches — the warm subcell replay works across
		// requests exactly like `fcv verify -hier -cache-dir` across
		// processes. Hierarchy errors (cycles, arity) were caught at load
		// time, so a failure here is the daemon's problem, not the deck's.
		rep, err = fleet.VerifyHier(ld.lib, ld.top, opt)
		if err != nil {
			if stream {
				sink.Emit("error", err.Error())
				sink.Close()
				rec.Status = http.StatusOK
				return
			}
			s.fail(w, &rec, http.StatusInternalServerError, "hier: %v", err)
			return
		}
	} else {
		rep = fleet.Verify(ld.items, opt)
	}
	elapsedMS := float64(obs.Now().Sub(t0).Microseconds()) / 1000
	s.account(rep, elapsedMS, col)
	m := fleet.BuildManifest("fcv serve", rep, col)
	m.Trace = tid

	p, i, v, f := rep.Counts()
	rec.Verdict = overallVerdict(p, i, v, f)
	rec.CacheHits, rec.CacheMisses = rep.Hits, rep.Misses
	rec.DiskHits, rec.DiskMisses = rep.DiskHits, rep.DiskMisses
	rec.Status = http.StatusOK
	if s.cfg.SlowMS > 0 && elapsedMS >= s.cfg.SlowMS {
		defer func() {
			s.ring.add(slowTrace{
				Trace:    tid,
				Src:      src,
				Status:   rec.Status,
				DurMS:    elapsedMS,
				Verdict:  rec.Verdict,
				Rendered: col.Tree() + "\n" + col.CountersText(),
			})
		}()
	}

	if stream {
		// All per-item scopes have closed, so a run-level trace event
		// may follow run-end without disturbing the stream order.
		sink.Emit("trace", tid)
		sink.Close() // flush; write errors mean the client left
		// The trailing manifest rides the same JSONL stream, so compact
		// the canonical (nil-normalized) document onto one line.
		if b, err := m.JSON(); err == nil {
			var line bytes.Buffer
			if json.Compact(&line, b) == nil {
				line.WriteByte('\n')
				fw.Write(line.Bytes())
			}
		}
		return
	}
	b, err := m.JSON()
	if err != nil {
		s.fail(w, &rec, http.StatusInternalServerError, "manifest: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Fcv-Verdicts", fmt.Sprintf("pass=%d inspect=%d violation=%d error=%d", p, i, v, f))
	if rep.HasViolations() {
		// The verification *ran*; the design is what failed. 422 keeps
		// that distinct from 400 (unusable request) so CI and agents can
		// branch on the status alone.
		rec.Status = http.StatusUnprocessableEntity
		w.WriteHeader(http.StatusUnprocessableEntity)
	}
	w.Write(b)
}

// deckLoad is loadDeck's result: the flat item list, or — for ?hier=1
// requests — the parsed library plus resolved top cell for VerifyHier
// (lib non-nil selects the hierarchical path).
type deckLoad struct {
	items []fleet.Item
	lib   *netlist.Library
	top   *netlist.Circuit
}

// loadDeck resolves the request's deck — body or ?path= — through the
// parse cache, honoring ?top=, ?cells=1 and ?hier=1. Returns the
// source name and the deck's sha256 alongside the load (the sha is the
// access log's deck fingerprint, so it is returned even when the parse
// fails). Hierarchy errors — unknown top, instance cycles, arity
// mismatches — surface here too, so the handler's verification phase
// only ever sees decks whose fingerprint DAG resolved.
func (s *Server) loadDeck(r *http.Request) (ld deckLoad, src, deckSHA string, err error) {
	q := r.URL.Query()
	top, cells, hier := q.Get("top"), boolParam(r, "cells"), boolParam(r, "hier")
	if hier && cells {
		return ld, "", "", fmt.Errorf("hier=1 and cells=1 are mutually exclusive (hier verifies every cell already)")
	}
	var data []byte
	if path := q.Get("path"); path != "" {
		if !s.cfg.AllowPathDecks {
			return ld, path, "", fmt.Errorf("path decks are disabled on this server (start with -paths)")
		}
		data, err = os.ReadFile(path)
		if err != nil {
			return ld, path, "", err
		}
		src = path
	} else {
		src = q.Get("src")
		if src == "" {
			src = "deck.sp"
		}
		body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
		data, err = io.ReadAll(body)
		if err != nil {
			return ld, src, "", err
		}
	}
	sum := sha256.Sum256(data)
	deckSHA = hex.EncodeToString(sum[:])
	key := deckSHA + "\x00" + src + "\x00" + top + "\x00" + strconv.FormatBool(cells) + "\x00" + strconv.FormatBool(hier)
	if hier {
		if lib, topC, ok := s.parses.getHier(key); ok {
			s.col.Add("serve.parse_cache.hit", 1)
			return deckLoad{lib: lib, top: topC}, src, deckSHA, nil
		}
		s.col.Add("serve.parse_cache.miss", 1)
		lib, topC, err := fleet.HierFromDeck(bytes.NewReader(data), src, top)
		if err != nil {
			return ld, src, deckSHA, err
		}
		// Resolve the fingerprint DAG now so malformed hierarchies are a
		// 400 before admission, not a mid-run failure after headers went
		// out (the result itself is rebuilt memoized inside VerifyHier).
		if _, err := lib.HierFingerprint(topC); err != nil {
			return ld, src, deckSHA, err
		}
		s.parses.putHier(key, lib, topC)
		return deckLoad{lib: lib, top: topC}, src, deckSHA, nil
	}
	if cached, ok := s.parses.get(key); ok {
		s.col.Add("serve.parse_cache.hit", 1)
		return deckLoad{items: cached}, src, deckSHA, nil
	}
	s.col.Add("serve.parse_cache.miss", 1)
	items, err := fleet.ItemsFromDeck(bytes.NewReader(data), src, top, cells)
	if err != nil {
		return ld, src, deckSHA, err
	}
	s.parses.put(key, items)
	return deckLoad{items: items}, src, deckSHA, nil
}

// fail answers an unusable request and counts it.
func (s *Server) fail(w http.ResponseWriter, rec *accessRecord, code int, format string, args ...any) {
	s.badRequests.Add(1)
	rec.Status = code
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// account merges one request's outcome into the daemon's lifetime
// telemetry: tallies, cache traffic, request latency, and the request
// collector's deterministic counters (sorted before merging so the
// merge order — and any future iteration-order-sensitive consumer — is
// deterministic).
func (s *Server) account(rep *fleet.Report, elapsedMS float64, col *obs.Collector) {
	s.served.Add(1)
	s.cacheHits.Add(int64(rep.Hits))
	s.cacheMisses.Add(int64(rep.Misses))
	s.diskHits.Add(int64(rep.DiskHits))
	s.diskMisses.Add(int64(rep.DiskMisses))
	p, i, v, f := rep.Counts()
	s.tallyPass.Add(int64(p))
	s.tallyInspect.Add(int64(i))
	s.tallyViolation.Add(int64(v))
	s.tallyError.Add(int64(f))
	s.col.Observe("serve.request_ms", elapsedMS)
	counters := col.Counters()
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.col.Add(name, counters[name])
	}
}

// Stats is the /stats document: daemon occupancy, lifetime traffic, and
// the merged request-counter map. Field order is the wire order.
type Stats struct {
	UptimeMS      float64 `json:"uptime_ms"`
	Draining      bool    `json:"draining"`
	PoolWorkers   int     `json:"pool_workers"`
	PoolAvailable int     `json:"pool_available"`
	QueueDepth    int64   `json:"queue_depth"`
	QueueLimit    int     `json:"queue_limit"`
	// Requests counts every /verify POST reaching admission; Served the
	// ones that ran to a manifest; Rejected the 429s; BadRequests the
	// 4xx-class refusals (parse errors, disabled path decks, dropped
	// clients).
	Requests    int64 `json:"requests"`
	Served      int64 `json:"served"`
	Rejected    int64 `json:"rejected"`
	BadRequests int64 `json:"bad_requests"`
	// Cache is the shared in-memory layer's lifetime traffic as seen by
	// this daemon (hits accumulate across requests — the warm-path
	// evidence the CI smoke asserts on).
	Cache struct {
		Entries int   `json:"entries"`
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
	} `json:"cache"`
	Disk *fleet.DiskStats `json:"disk,omitempty"`
	// Verdicts tallies every served item's outcome since startup.
	Verdicts struct {
		Pass      int64 `json:"pass"`
		Inspect   int64 `json:"inspect"`
		Violation int64 `json:"violation"`
		Error     int64 `json:"error"`
	} `json:"verdicts"`
	// RequestP50MS / RequestP99MS are interpolated request-latency
	// quantiles from the serve.request_ms histogram (volatile).
	RequestP50MS float64 `json:"request_p50_ms"`
	RequestP99MS float64 `json:"request_p99_ms"`
	// Counters are the merged deterministic per-request obs counters
	// (fleet.*, core.*, recognize.*, … — plus serve.queued).
	Counters map[string]int64 `json:"counters"`
}

// StatsNow snapshots the daemon's current stats.
func (s *Server) StatsNow() Stats {
	var st Stats
	st.UptimeMS = float64(obs.Now().Sub(s.start).Microseconds()) / 1000
	st.Draining = s.draining.Load()
	st.PoolWorkers = s.pool.size
	st.PoolAvailable = s.pool.available()
	st.QueueDepth = s.pool.waiting()
	st.QueueLimit = int(s.pool.maxQueue)
	st.Requests = s.requests.Load()
	st.Served = s.served.Load()
	st.Rejected = s.rejected.Load()
	st.BadRequests = s.badRequests.Load()
	st.Cache.Entries = s.cfg.Cache.Len()
	st.Cache.Hits = s.cacheHits.Load()
	st.Cache.Misses = s.cacheMisses.Load()
	if s.cfg.DiskCache != nil {
		if ds, err := s.cfg.DiskCache.Stats(); err == nil {
			st.Disk = &ds
		}
	}
	st.Verdicts.Pass = s.tallyPass.Load()
	st.Verdicts.Inspect = s.tallyInspect.Load()
	st.Verdicts.Violation = s.tallyViolation.Load()
	st.Verdicts.Error = s.tallyError.Load()
	// One consistent snapshot feeds both quantiles and the counter map:
	// a request landing mid-read can no longer produce a p50 and p99
	// from two different distributions (or counters that disagree with
	// the histogram they summarize).
	snap := s.col.Snapshot()
	st.RequestP50MS = snap.Quantile("serve.request_ms", 0.50)
	st.RequestP99MS = snap.Quantile("serve.request_ms", 0.99)
	st.Counters = snap.Counters
	return st
}

// handleStats renders the stats document.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.StatsNow()
	b, err := json.MarshalIndent(&st, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// flushWriter pushes every write through the ResponseWriter's flusher
// so streamed events reach the client as they happen, not when the
// response buffer fills.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func newFlushWriter(w http.ResponseWriter) *flushWriter {
	f, _ := w.(http.Flusher)
	return &flushWriter{w: w, f: f}
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}
