package serve

import (
	"container/list"
	"sync"

	"repro/internal/fleet"
	"repro/internal/netlist"
)

// parseCache memoizes deck parsing across requests: an LRU keyed on the
// deck's sha256 plus every parameter that changes the parse result
// (src name, ?top=, ?cells=). The agent-loop workload re-submits the
// same deck many times per minute (verify, tweak one device, verify
// again), and while the *verification* layers already dedupe via the
// structural-fingerprint caches, the parse itself — tokenizing,
// subckt expansion, flattening — ran from scratch on every request.
// A byte-identical resubmit now skips straight to warm []fleet.Item.
//
// Sharing parsed items across concurrent requests is safe because the
// verification pipeline treats netlist.Circuit as read-only: the only
// lazily-cached state (the vdd/vss node lookups) is populated during
// parsing, before the items ever enter the cache.
type parseCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List               // front = most recent; values are *parseEntry
	entries map[string]*list.Element // key -> element
}

// parseEntry is one memoized parse. Flat requests fill items; ?hier=1
// requests instead keep the library and resolved top so VerifyHier can
// walk the hierarchy (the two shapes never share a key — the hier flag
// is part of it).
type parseEntry struct {
	key   string
	items []fleet.Item
	lib   *netlist.Library
	top   *netlist.Circuit
}

// newParseCache builds a cache holding up to max decks. max <= 0
// disables caching (every get misses, puts are dropped).
func newParseCache(max int) *parseCache {
	return &parseCache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached parse for key, refreshing its recency.
func (c *parseCache) get(key string) ([]fleet.Item, bool) {
	if c == nil || c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*parseEntry).items, true
}

// getHier returns the cached hierarchical parse for key, refreshing
// its recency.
func (c *parseCache) getHier(key string) (*netlist.Library, *netlist.Circuit, bool) {
	if c == nil || c.max <= 0 {
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, nil, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*parseEntry)
	return e.lib, e.top, e.lib != nil
}

// put stores a parse result, evicting the least-recently-used entry
// when the cache is full.
func (c *parseCache) put(key string, items []fleet.Item) {
	c.putEntry(&parseEntry{key: key, items: items})
}

// putHier stores a hierarchical parse result under the same LRU.
func (c *parseCache) putHier(key string, lib *netlist.Library, top *netlist.Circuit) {
	c.putEntry(&parseEntry{key: key, lib: lib, top: top})
}

func (c *parseCache) putEntry(e *parseEntry) {
	if c == nil || c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	c.entries[e.key] = c.order.PushFront(e)
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*parseEntry).key)
	}
}

// len reports the current entry count (for tests and /stats).
func (c *parseCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
