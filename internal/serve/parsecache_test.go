package serve

import (
	"strings"
	"testing"

	"repro/internal/fleet"
)

func parseItems(t *testing.T, deck string) []fleet.Item {
	t.Helper()
	items, err := fleet.ItemsFromDeck(strings.NewReader(deck), "deck.sp", "", false)
	if err != nil {
		t.Fatal(err)
	}
	return items
}

// TestParseCacheLRU exercises the unit: hit after put, recency refresh,
// LRU eviction, and the disabled (max<=0) mode.
func TestParseCacheLRU(t *testing.T) {
	items := parseItems(t, cleanDeck)
	c := newParseCache(2)
	if _, ok := c.get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.put("a", items)
	c.put("b", items)
	if got, ok := c.get("a"); !ok || len(got) != len(items) {
		t.Fatal("miss after put")
	}
	// "a" was just refreshed, so inserting "c" must evict "b".
	c.put("c", items)
	if _, ok := c.get("b"); ok {
		t.Error("LRU entry not evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently-used entry evicted")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}

	off := newParseCache(-1)
	off.put("a", items)
	if _, ok := off.get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if off.len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}

// TestParseCacheCountersOnRepeat a byte-identical resubmit is a parse
// hit; a different ?top selection on the same bytes is a distinct key.
func TestParseCacheCountersOnRepeat(t *testing.T) {
	s, hs := newTestServer(t, testConfig())
	postDeck(t, hs.URL+"/verify", cleanDeck)
	postDeck(t, hs.URL+"/verify", cleanDeck)
	st := s.StatsNow()
	if st.Counters["serve.parse_cache.miss"] != 1 || st.Counters["serve.parse_cache.hit"] != 1 {
		t.Errorf("parse cache hit=%d miss=%d after identical resubmit, want 1/1",
			st.Counters["serve.parse_cache.hit"], st.Counters["serve.parse_cache.miss"])
	}
	// Same bytes, different parse parameters: a new key, a new miss.
	postDeck(t, hs.URL+"/verify?cells=1", cleanDeck)
	st = s.StatsNow()
	if st.Counters["serve.parse_cache.miss"] != 2 {
		t.Errorf("cells=1 on same bytes missed %d times, want 2 total", st.Counters["serve.parse_cache.miss"])
	}
}

// TestParseCacheDisabledConfig ParseCacheSize<0 turns caching off:
// every request is a miss and the daemon still serves correctly.
func TestParseCacheDisabledConfig(t *testing.T) {
	cfg := testConfig()
	cfg.ParseCacheSize = -1
	s, hs := newTestServer(t, cfg)
	postDeck(t, hs.URL+"/verify", cleanDeck)
	postDeck(t, hs.URL+"/verify", cleanDeck)
	st := s.StatsNow()
	if st.Counters["serve.parse_cache.hit"] != 0 || st.Counters["serve.parse_cache.miss"] != 2 {
		t.Errorf("disabled cache hit=%d miss=%d, want 0/2",
			st.Counters["serve.parse_cache.hit"], st.Counters["serve.parse_cache.miss"])
	}
	if st.Served != 2 {
		t.Errorf("served = %d", st.Served)
	}
}
