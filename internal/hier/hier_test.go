package hier

import (
	"strings"
	"testing"
)

// figure1 builds the paper's Figure 1 situation: three RTL blocks and
// two schematic blocks whose boundaries overlap irregularly (schematic
// S2 spans RTL1, RTL2 and RTL3).
func figure1(t *testing.T) (*Hierarchy, *Hierarchy) {
	t.Helper()
	r := New(ViewRTL, "chip_rtl")
	for _, b := range []string{"rtl1", "rtl2", "rtl3"} {
		if _, err := r.AddBlock("chip_rtl", b); err != nil {
			t.Fatal(err)
		}
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(r.AddLeaves("rtl1", "f1", "f2", "f3"))
	must(r.AddLeaves("rtl2", "f4", "f5"))
	must(r.AddLeaves("rtl3", "f6", "f7", "f8"))

	s := New(ViewSchematic, "chip_sch")
	for _, b := range []string{"s1", "s2", "s3"} {
		if _, err := s.AddBlock("chip_sch", b); err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddLeaves("s1", "f1", "f2"))
	must(s.AddLeaves("s2", "f3", "f4", "f6")) // spans all three RTL blocks
	must(s.AddLeaves("s3", "f5", "f7", "f8"))
	return r, s
}

func TestOverlapFigure1(t *testing.T) {
	r, s := figure1(t)
	rep, err := Overlap(s, r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aligned() {
		t.Fatal("Figure 1 hierarchies reported as aligned")
	}
	var s2 *OverlapRow
	for i := range rep.Rows {
		if rep.Rows[i].Block == "s2" {
			s2 = &rep.Rows[i]
		}
	}
	if s2 == nil {
		t.Fatal("no row for s2")
	}
	if s2.Fragmentation() != 3 {
		t.Errorf("s2 spans %d RTL blocks, want 3 (Figure 1's schematic #2)", s2.Fragmentation())
	}
	if s2.Total != 3 {
		t.Errorf("s2 total = %d", s2.Total)
	}
	if rep.MaxFragmentation() != 3 {
		t.Errorf("max fragmentation = %d", rep.MaxFragmentation())
	}
	if len(rep.OnlyInA) != 0 || len(rep.OnlyInB) != 0 {
		t.Error("universes should match in this example")
	}
	str := rep.String()
	for _, want := range []string{"s2", "rtl1(1)", "rtl2(1)", "rtl3(1)"} {
		if !strings.Contains(str, want) {
			t.Errorf("report missing %q:\n%s", want, str)
		}
	}
}

func TestAlignedHierarchies(t *testing.T) {
	a := New(ViewRTL, "ra")
	b := New(ViewSchematic, "rb")
	for _, h := range []*Hierarchy{a, b} {
		blk := "x"
		if _, err := h.AddBlock(h.Root.Name, blk); err != nil {
			t.Fatal(err)
		}
		if err := h.AddLeaves(blk, "l1", "l2"); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Overlap(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Aligned() {
		t.Errorf("identical partitions should align: %s", rep)
	}
}

func TestMissingLeavesReported(t *testing.T) {
	a := New(ViewRTL, "ra")
	b := New(ViewSchematic, "rb")
	if err := a.AddLeaves("ra", "common", "rtl_only"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddLeaves("rb", "common", "sch_only"); err != nil {
		t.Fatal(err)
	}
	rep, err := Overlap(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OnlyInA) != 1 || rep.OnlyInA[0] != "rtl_only" {
		t.Errorf("OnlyInA = %v", rep.OnlyInA)
	}
	if len(rep.OnlyInB) != 1 || rep.OnlyInB[0] != "sch_only" {
		t.Errorf("OnlyInB = %v", rep.OnlyInB)
	}
	if rep.Aligned() {
		t.Error("mismatched universes cannot be aligned")
	}
}

func TestDuplicateLeafDetected(t *testing.T) {
	h := New(ViewRTL, "r")
	if _, err := h.AddBlock("r", "a"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddLeaves("r", "x"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddLeaves("a", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.LeafOwner(); err == nil {
		t.Error("duplicate leaf accepted")
	}
}

func TestBuilderErrors(t *testing.T) {
	h := New(ViewLayout, "r")
	if _, err := h.AddBlock("nope", "a"); err == nil {
		t.Error("unknown parent accepted")
	}
	if _, err := h.AddBlock("r", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddBlock("r", "a"); err == nil {
		t.Error("duplicate block accepted")
	}
	if err := h.AddLeaves("nope", "x"); err == nil {
		t.Error("leaves on unknown block accepted")
	}
	if h.Block("a") == nil || h.Block("zz") != nil {
		t.Error("Block lookup wrong")
	}
}

func TestLeavesSorted(t *testing.T) {
	h := New(ViewRTL, "r")
	if err := h.AddLeaves("r", "z", "a", "m"); err != nil {
		t.Fatal(err)
	}
	got := h.Leaves()
	if len(got) != 3 || got[0] != "a" || got[2] != "z" {
		t.Errorf("Leaves = %v", got)
	}
}

func TestViewString(t *testing.T) {
	if ViewRTL.String() != "rtl" || ViewSchematic.String() != "schematic" || ViewLayout.String() != "layout" {
		t.Error("view names wrong")
	}
}
