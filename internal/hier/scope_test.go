package hier

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/process"
)

// inv builds a standard inverter cell: in -> out.
func inv() *netlist.Circuit {
	c := netlist.New("inv")
	c.DeclarePort("in")
	c.NMOS("mn", "in", "vss", "out", 2, 0.25)
	c.PMOS("mp", "in", "vdd", "out", 4, 0.25)
	c.DeclarePort("out")
	return c
}

// tgate builds a rail-free pass structure: a single NMOS channel between
// ports a and b, gated by port en. Neither a nor b has a path to a
// supply, so both are Channel-but-not-Driven.
func tgate() *netlist.Circuit {
	c := netlist.New("tg")
	c.DeclarePort("a")
	c.DeclarePort("b")
	c.DeclarePort("en")
	c.NMOS("mpass", "en", "a", "b", 2, 0.25)
	return c
}

// TestScopeCircuit: instances drop out, their non-supply connection
// nets become ports, and every local property — node loads, attributes,
// device flavour and Loc — survives into the scope.
func TestScopeCircuit(t *testing.T) {
	c := netlist.New("parent")
	c.DeclarePort("in")
	d := c.NMOS("mn", "in", "vss", "mid", 2, 0.25)
	d.ExtraL = 0.1
	d.Vt = process.LowVt
	d.Loc = netlist.Loc{File: "p.sp", Line: 7}
	c.PMOS("mp", "in", "vdd", "mid", 4, 0.25)
	r := c.AddResistor("rw", "mid", "midr", 120)
	r.Loc = netlist.Loc{File: "p.sp", Line: 9}
	c.AddCap("mid", 3.5)
	c.SetAttr(c.Node("in"), "clock", "phi1")
	c.AddInstance("x1", "child", "midr", "out", "vdd", "vss")
	c.DeclarePort("out")

	s := ScopeCircuit(c)
	if len(s.Instances) != 0 {
		t.Fatalf("scope kept %d instances", len(s.Instances))
	}
	isPort := func(name string) bool {
		id := s.FindNode(name)
		return id != netlist.InvalidNode && s.Nodes[id].IsPort
	}
	for _, want := range []string{"in", "out", "midr"} {
		if !isPort(want) {
			t.Errorf("node %s should be a scope port", want)
		}
	}
	if isPort("mid") {
		t.Error("internal net mid wrongly promoted to port")
	}
	for _, supply := range []string{"vdd", "vss"} {
		if isPort(supply) {
			t.Errorf("supply %s promoted to port", supply)
		}
	}
	if got := s.Nodes[s.Node("mid")].CapFF; got != 3.5 {
		t.Errorf("mid CapFF = %g, want 3.5", got)
	}
	if got := s.Nodes[s.Node("in")].Attrs["clock"]; got != "phi1" {
		t.Errorf("in clock attr = %q, want phi1", got)
	}
	if len(s.Devices) != 2 || len(s.Resistors) != 1 {
		t.Fatalf("scope has %d devices / %d resistors, want 2 / 1", len(s.Devices), len(s.Resistors))
	}
	sd := s.Devices[0]
	if sd.ExtraL != 0.1 || sd.Vt != process.LowVt || sd.Loc.Line != 7 {
		t.Errorf("device properties lost: ExtraL=%g Vt=%v Loc=%v", sd.ExtraL, sd.Vt, sd.Loc)
	}
	if s.Resistors[0].Loc.Line != 9 {
		t.Errorf("resistor Loc lost: %v", s.Resistors[0].Loc)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scope fails Validate: %v", err)
	}
}

// TestCellInterfaceLeaf: an inverter's input is a pure gate load, its
// output a driven channel.
func TestCellInterfaceLeaf(t *testing.T) {
	ifc, err := CellInterface(inv(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ifc.Ports) != 2 {
		t.Fatalf("inv interface has %d ports", len(ifc.Ports))
	}
	in, out := ifc.Ports[0], ifc.Ports[1]
	if in.Driven || in.Channel || !in.Gate {
		t.Errorf("in = %+v, want pure gate", in)
	}
	if !out.Driven || !out.Channel || out.Gate {
		t.Errorf("out = %+v, want driven channel", out)
	}

	// The rail-free pass gate: both channel ports undriven.
	tifc, err := CellInterface(tgate(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"a", "b"} {
		if p := tifc.Ports[i]; p.Driven || !p.Channel {
			t.Errorf("tg.%s = %+v, want undriven channel", name, p)
		}
	}
	if p := tifc.Ports[2]; !p.Gate || p.Driven {
		t.Errorf("tg.en = %+v, want pure gate", p)
	}
}

// TestCellInterfaceComposed: drive arriving through a child instance
// seeds the parent's conduction reachability — a parent with no
// rail-connected device of its own still presents a driven output when
// a child drives it through a kept pass device.
func TestCellInterfaceComposed(t *testing.T) {
	lib := map[string]*Interface{}
	ii, err := CellInterface(inv(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lib["inv"] = ii

	p := netlist.New("p")
	p.DeclarePort("in")
	p.AddInstance("x1", "inv", "in", "n")
	p.NMOS("mpass", "en", "n", "out", 2, 0.25)
	p.Node("en")
	p.DeclarePort("out")
	pi, err := CellInterface(p, lib)
	if err != nil {
		t.Fatal(err)
	}
	if out := pi.Ports[1]; !out.Driven {
		t.Errorf("p.out = %+v, want driven through child inv + pass device", out)
	}

	// Error paths: missing child interface, and arity mismatch.
	if _, err := CellInterface(p, nil); err == nil {
		t.Error("missing child interface not reported")
	}
	bad := map[string]*Interface{"inv": {Cell: "inv", Ports: make([]PortClass, 3)}}
	if _, err := CellInterface(p, bad); err == nil {
		t.Error("conns/ports arity mismatch not reported")
	}
}

// TestBoundaryFindingsDriveFight: two child outputs shorted on one
// parent net is a drive fight; adding the parent's own rail path makes
// a third source. A properly fanned-out net reports nothing.
func TestBoundaryFindingsDriveFight(t *testing.T) {
	ii, err := CellInterface(inv(), nil)
	if err != nil {
		t.Fatal(err)
	}
	children := map[string]*Interface{"inv": ii}

	p := netlist.New("p")
	p.DeclarePort("a")
	p.DeclarePort("b")
	p.AddInstance("x1", "inv", "a", "n")
	p.AddInstance("x2", "inv", "b", "n")
	bf, err := BoundaryFindings(p, children)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf) != 1 {
		t.Fatalf("findings = %d, want 1 drive fight: %+v", len(bf), bf)
	}
	f := bf[0]
	if f.Check != "drive-fight" || f.Subject != "n" || f.Severity != "inspect" {
		t.Errorf("finding = %+v", f)
	}
	if f.Evidence.Measured != 2 {
		t.Errorf("measured %g drive sources, want 2", f.Evidence.Measured)
	}

	// Same net also driven by a local rail path: three sources.
	p.NMOS("mloc", "a", "vss", "n", 2, 0.25)
	bf, err = BoundaryFindings(p, children)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf) != 1 || bf[0].Evidence.Measured != 3 {
		t.Fatalf("with local drive: %+v, want one finding with 3 sources", bf)
	}

	// Clean chain: each internal net has exactly one driver.
	q := netlist.New("q")
	q.DeclarePort("in")
	q.AddInstance("x1", "inv", "in", "m")
	q.AddInstance("x2", "inv", "m", "out")
	q.DeclarePort("out")
	bf, err = BoundaryFindings(q, children)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf) != 0 {
		t.Errorf("clean chain produced findings: %+v", bf)
	}
}

// TestBoundaryFindingsLateralDrive: drive sources propagate across
// conducting local pass devices when counted — two child-driven nets
// joined by a pass channel fight on both nets, exactly as flat
// verification would see — while a net reached by only one source,
// even laterally, is neither a fight nor a false charge-share.
func TestBoundaryFindingsLateralDrive(t *testing.T) {
	ii, err := CellInterface(inv(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := CellInterface(tgate(), nil)
	if err != nil {
		t.Fatal(err)
	}
	children := map[string]*Interface{"inv": ii, "tg": ti}

	// x and y each carry one directly driven child port; mpass merges
	// them into one conducting component: two sources on both nets.
	p := netlist.New("p")
	p.DeclarePort("a")
	p.DeclarePort("b")
	p.DeclarePort("en")
	p.AddInstance("x1", "inv", "a", "x")
	p.AddInstance("x2", "inv", "b", "y")
	p.NMOS("mpass", "en", "x", "y", 2, 0.25)
	bf, err := BoundaryFindings(p, children)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf) != 2 {
		t.Fatalf("findings = %+v, want drive fights on x and y", bf)
	}
	for _, f := range bf {
		if f.Check != "drive-fight" || f.Evidence.Measured != 2 {
			t.Errorf("finding = %+v, want a 2-source drive fight", f)
		}
	}

	// One direct source on x, drive reaching y only laterally, with a
	// child channel terminal parked on y: one source everywhere — no
	// fight, and no false charge-share on the indirectly driven net.
	q := netlist.New("q")
	q.DeclarePort("a")
	q.DeclarePort("b")
	q.DeclarePort("en")
	q.AddInstance("x1", "inv", "a", "x")
	q.NMOS("mpass", "en", "x", "y", 2, 0.25)
	q.AddInstance("x2", "tg", "y", "b", "en")
	bf, err = BoundaryFindings(q, children)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf) != 0 {
		t.Errorf("single lateral source produced findings: %+v", bf)
	}
}

// TestBoundaryFindingsChargeShare: an undriven parent net joining two
// child channel terminals can redistribute charge with no restoring
// drive. The finding IDs are structural — renaming the net moves the
// subject but keeps count and severity.
func TestBoundaryFindingsChargeShare(t *testing.T) {
	ti, err := CellInterface(tgate(), nil)
	if err != nil {
		t.Fatal(err)
	}
	children := map[string]*Interface{"tg": ti}

	p := netlist.New("p")
	p.DeclarePort("a")
	p.DeclarePort("b")
	p.DeclarePort("en")
	p.AddInstance("x1", "tg", "a", "share", "en")
	p.AddInstance("x2", "tg", "share", "b", "en")
	bf, err := BoundaryFindings(p, children)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf) != 1 {
		t.Fatalf("findings = %d, want 1 charge share: %+v", len(bf), bf)
	}
	f := bf[0]
	if f.Check != "charge-share" || f.Subject != "share" {
		t.Errorf("finding = %+v", f)
	}
	if f.Evidence.Measured != 2 {
		t.Errorf("measured %g boundary channels, want 2", f.Evidence.Measured)
	}

	// A single floating channel stub is still flagged (charge parks on
	// undriven diffusion), while a net that only loads child gates is
	// benign.
	q := netlist.New("q")
	q.DeclarePort("a")
	q.DeclarePort("b")
	q.DeclarePort("en")
	q.AddInstance("x1", "tg", "a", "stub", "en")
	q.AddInstance("x2", "tg", "a", "b", "gateonly")
	q.Node("gateonly")
	bf, err = BoundaryFindings(q, children)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf) != 1 || bf[0].Subject != "stub" || bf[0].Evidence.Measured != 1 {
		t.Errorf("stub/gateonly findings = %+v, want one charge-share on stub", bf)
	}
}
