// Subcell verification scopes and boundary composition.
//
// Hierarchical incremental verification (internal/fleet.VerifyHier)
// verifies each cell of a hierarchy once, in isolation, and composes
// parent results from child verdicts. Isolation needs two things this
// file provides:
//
//   - ScopeCircuit: the verification unit for one cell — its own
//     devices, resistors and nodes with child instances removed and
//     every instance-connection net promoted to a port, so the core
//     pipeline sees child-driven nets as externally driven interfaces
//     rather than floating internals.
//   - Interfaces and boundary checks: what subcell isolation cannot
//     see is interactions *across* instance boundaries. CellInterface
//     classifies each port of a cell (does the cell drive it, expose a
//     channel on it, load a gate with it), composed bottom-up from
//     local structure plus child interfaces via internal/dataflow
//     conduction analysis. BoundaryFindings then checks every parent
//     net for port-crossing drive fights and cross-boundary charge
//     sharing — the two failure modes flattening would have caught.
package hier

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// ScopeCircuit builds the isolated verification unit for one cell: a
// copy of its local nodes, devices and resistors (instances dropped)
// in which every non-supply net bound to a child instance is promoted
// to a port. Node names, attributes, wire loads and element Locs are
// preserved, so findings in the scope point back into the source cell.
func ScopeCircuit(c *netlist.Circuit) *netlist.Circuit {
	s := netlist.New(c.Name)
	s.Loc = c.Loc
	// Nodes first, in order, so supply canonicalization and wire loads
	// carry over before any element references them.
	for _, n := range c.Nodes {
		id := s.Node(n.Name)
		s.Nodes[id].CapFF = n.CapFF
		for k, v := range n.Attrs {
			s.SetAttr(id, k, v)
		}
	}
	for _, p := range c.Ports {
		s.DeclarePort(c.NodeName(p))
	}
	for _, d := range c.Devices {
		nd := s.AddDevice(d.Name, d.Type,
			c.NodeName(d.Gate), c.NodeName(d.Source), c.NodeName(d.Drain), c.NodeName(d.Bulk),
			d.W, d.L)
		nd.ExtraL = d.ExtraL
		nd.Vt = d.Vt
		nd.Loc = d.Loc
	}
	for _, r := range c.Resistors {
		nr := s.AddResistor(r.Name, c.NodeName(r.A), c.NodeName(r.B), r.Ohms)
		nr.Loc = r.Loc
	}
	// Child-facing nets become ports: the scope's view of the boundary.
	for _, inst := range c.Instances {
		for _, conn := range inst.Conns {
			if !c.IsSupply(conn) {
				s.DeclarePort(c.NodeName(conn))
			}
		}
	}
	return s
}

// PortClass describes how a cell couples to the outside through one
// port, as seen from a parent deciding whether nets crossing the
// boundary can fight or share charge.
type PortClass struct {
	// Driven: some channel path inside the cell (through possibly-
	// conducting devices, per dataflow conduction analysis) connects
	// the port to a supply rail or to a driven child port — the cell
	// can actively drive this net.
	Driven bool
	// Channel: the port touches a device channel terminal inside the
	// cell (directly or through a child), so charge on the net can
	// redistribute into internal diffusion even when nothing drives.
	Channel bool
	// Gate: the port loads at least one transistor gate inside the
	// cell — a pure input contributes capacitance but no drive.
	Gate bool
}

// Interface is the composed port classification of one cell.
type Interface struct {
	Cell  string
	Ports []PortClass
}

// nodeClasses computes the per-node Driven/Channel/Gate classification
// of a cell given its children's interfaces. Driven-ness is a BFS over
// the local channel graph (edges = device channels dataflow says can
// conduct) seeded by the supply rails and every net bound to a driven
// child port.
func nodeClasses(c *netlist.Circuit, children map[string]*Interface) ([]PortClass, error) {
	cls := make([]PortClass, len(c.Nodes))
	for _, d := range c.Devices {
		cls[d.Gate].Gate = true
		cls[d.Source].Channel = true
		cls[d.Drain].Channel = true
	}
	seed := make([]bool, len(c.Nodes))
	for i := range c.Nodes {
		if c.IsSupply(netlist.NodeID(i)) {
			seed[i] = true
		}
	}
	for _, inst := range c.Instances {
		ci := children[inst.Cell]
		if ci == nil {
			return nil, fmt.Errorf("hier: cell %q: no interface for child cell %q", c.Name, inst.Cell)
		}
		if len(inst.Conns) != len(ci.Ports) {
			return nil, fmt.Errorf("hier: cell %q: instance %s has %d connections, cell %q has %d ports",
				c.Name, inst.Name, len(inst.Conns), inst.Cell, len(ci.Ports))
		}
		for pos, conn := range inst.Conns {
			pc := ci.Ports[pos]
			if pc.Driven {
				seed[conn] = true
			}
			if pc.Channel {
				cls[conn].Channel = true
			}
			if pc.Gate {
				cls[conn].Gate = true
			}
		}
	}
	// Channel-connected reachability from the drive seeds.
	driven := make([]bool, len(c.Nodes))
	queue := make([]netlist.NodeID, 0, len(c.Nodes))
	for i, s := range seed {
		if s {
			driven[i] = true
			queue = append(queue, netlist.NodeID(i))
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, d := range c.DevicesOn(n) {
			if !dataflow.CanConduct(c, d) {
				continue
			}
			other := d.Source
			if other == n {
				other = d.Drain
			}
			if !driven[other] {
				driven[other] = true
				queue = append(queue, other)
			}
		}
	}
	for i := range cls {
		cls[i].Driven = driven[i]
	}
	return cls, nil
}

// CellInterface classifies each port of c, composing the interfaces of
// its direct children (which must all be present in children). Leaf
// cells pass an empty map.
func CellInterface(c *netlist.Circuit, children map[string]*Interface) (*Interface, error) {
	cls, err := nodeClasses(c, children)
	if err != nil {
		return nil, err
	}
	ifc := &Interface{Cell: c.Name, Ports: make([]PortClass, len(c.Ports))}
	for i, p := range c.Ports {
		ifc.Ports[i] = cls[p]
	}
	return ifc, nil
}

// BoundaryFindings checks every net of parent cell c for interactions
// its subcell scopes cannot see in isolation:
//
//   - drive fight: two or more independent drive sources on one net —
//     each driven child port counts as one source, a local channel
//     path to a rail counts as one more, and sources propagate to
//     neighboring nets through conducting local pass devices (what
//     flat verification would see), so a net reached laterally by one
//     child's drive and directly by another's still counts two.
//     Legitimate for a properly enabled bus, lethal for anything
//     else: inspect.
//   - charge sharing: a net no drive source reaches (not even
//     laterally) that exposes a channel terminal across an instance
//     boundary, so charge can redistribute between the parent's and
//     the child's diffusion without any restoring drive: inspect.
//
// Finding IDs use the parent's structural signatures, so they are
// stable under renames and deck reordering like every other fcv
// finding. A clean hierarchy produces no findings, keeping composed
// hierarchical results identical to whole-netlist verification.
func BoundaryFindings(c *netlist.Circuit, children map[string]*Interface) ([]obs.Finding, error) {
	cls, err := nodeClasses(c, children)
	if err != nil {
		return nil, err
	}
	// Independent drive sources are counted per conducting-channel
	// component: a local device whose channel can conduct (per
	// dataflow) merges its source and drain nets, so drive landing on
	// one net of a component reaches every other — the same lateral
	// propagation flat verification sees through a conducting pass
	// device. Each driven child port binding is one source for its
	// net's component (source identity is the binding, so no source is
	// counted twice on any net it reaches), and a supply rail in the
	// component adds exactly one more for the cell's own drive — fights
	// among purely local rail paths are the subcell scope's own
	// verification to catch.
	comp := make([]int, len(c.Nodes))
	for i := range comp {
		comp[i] = i
	}
	find := func(x int) int {
		for comp[x] != x {
			comp[x] = comp[comp[x]]
			x = comp[x]
		}
		return x
	}
	for _, d := range c.Devices {
		if dataflow.CanConduct(c, d) {
			comp[find(int(d.Source))] = find(int(d.Drain))
		}
	}
	compDrivers := make(map[int]int)
	railComp := make(map[int]bool)
	for i := range c.Nodes {
		if c.IsSupply(netlist.NodeID(i)) {
			railComp[find(i)] = true
		}
	}
	childChannels := make([]int, len(c.Nodes))
	for _, inst := range c.Instances {
		ci := children[inst.Cell]
		for pos, conn := range inst.Conns {
			if c.IsSupply(conn) {
				continue
			}
			pc := ci.Ports[pos]
			if pc.Driven {
				compDrivers[find(int(conn))]++
			} else if pc.Channel {
				childChannels[conn]++
			}
		}
	}
	sigs := netlist.ComputeSignatures(c)
	var out []obs.Finding
	for i, n := range c.Nodes {
		id := netlist.NodeID(i)
		if c.IsSupply(id) || c.Nodes[id].IsPort {
			// The parent's own ports are driven (or not) by *its*
			// parent; that boundary is checked one level up.
			continue
		}
		root := find(i)
		drivers := compDrivers[root]
		if railComp[root] {
			drivers++
		}
		switch {
		case drivers >= 2:
			out = append(out, obs.Finding{
				ID:       sigs.FindingID("boundary", "drive-fight", n.Name),
				Source:   "boundary",
				Check:    "drive-fight",
				Subject:  n.Name,
				Severity: "inspect",
				Detail: fmt.Sprintf("net %s has %d independent drive sources across instance boundaries in cell %s",
					n.Name, drivers, c.Name),
				Evidence: obs.Evidence{
					Nets:      []string{n.Name},
					Context:   "hier boundary composition",
					Measured:  float64(drivers),
					Threshold: 1,
				},
			})
		case drivers == 0 && childChannels[i] > 0 && (cls[i].Channel || childChannels[i] >= 2):
			out = append(out, obs.Finding{
				ID:       sigs.FindingID("boundary", "charge-share", n.Name),
				Source:   "boundary",
				Check:    "charge-share",
				Subject:  n.Name,
				Severity: "inspect",
				Detail: fmt.Sprintf("undriven net %s exposes channel terminals across %d instance boundaries in cell %s",
					n.Name, childChannels[i], c.Name),
				Evidence: obs.Evidence{
					Nets:      []string{n.Name},
					Context:   "hier boundary composition",
					Measured:  float64(childChannels[i]),
					Threshold: 0,
				},
			})
		}
	}
	return out, nil
}
