// Package hier models the paper's unusual use of design hierarchy
// (§2.1, Figure 1):
//
//	"Our hierarchy may be significantly different between different views
//	of the design (RTL, schematic, and layout). The designer is free to
//	move logic/circuit functions physically to achieve their performance
//	goals without having to maintain strict correspondence to the RTL
//	description. This causes irregular overlapping of schematic and RTL
//	boundaries."
//
// Each view is a tree of blocks over a shared universe of leaf elements
// (gates/functions). Because the trees partition the same leaves
// differently, a block in one view can span several blocks of another —
// the overlap report is exactly Figure 1's picture, computed rather than
// drawn.
package hier

import (
	"fmt"
	"sort"
	"strings"
)

// View identifies a design representation.
type View int

// The three views of §2.1.
const (
	ViewRTL View = iota
	ViewSchematic
	ViewLayout
)

// String returns the view name.
func (v View) String() string {
	switch v {
	case ViewRTL:
		return "rtl"
	case ViewSchematic:
		return "schematic"
	case ViewLayout:
		return "layout"
	default:
		return fmt.Sprintf("View(%d)", int(v))
	}
}

// Block is one node of a view's hierarchy.
type Block struct {
	// Name is the block's path-unique name.
	Name string
	// Children are nested blocks.
	Children []*Block
	// Leaves are the primitive elements directly owned by this block.
	Leaves []string
}

// Hierarchy is one view's block tree.
type Hierarchy struct {
	View View
	Root *Block

	index map[string]*Block
}

// New returns a hierarchy with an empty root block.
func New(v View, rootName string) *Hierarchy {
	root := &Block{Name: rootName}
	return &Hierarchy{View: v, Root: root, index: map[string]*Block{rootName: root}}
}

// AddBlock creates a block under the named parent.
func (h *Hierarchy) AddBlock(parent, name string) (*Block, error) {
	p, ok := h.index[parent]
	if !ok {
		return nil, fmt.Errorf("hier: unknown parent block %q", parent)
	}
	if _, dup := h.index[name]; dup {
		return nil, fmt.Errorf("hier: duplicate block %q", name)
	}
	b := &Block{Name: name}
	p.Children = append(p.Children, b)
	h.index[name] = b
	return b, nil
}

// AddLeaves assigns leaf elements to a block.
func (h *Hierarchy) AddLeaves(block string, leaves ...string) error {
	b, ok := h.index[block]
	if !ok {
		return fmt.Errorf("hier: unknown block %q", block)
	}
	b.Leaves = append(b.Leaves, leaves...)
	return nil
}

// Block returns a block by name, or nil.
func (h *Hierarchy) Block(name string) *Block {
	return h.index[name]
}

// LeafOwner returns a map leaf → owning block name, validating that each
// leaf appears exactly once.
func (h *Hierarchy) LeafOwner() (map[string]string, error) {
	owner := make(map[string]string)
	var walk func(b *Block) error
	walk = func(b *Block) error {
		for _, l := range b.Leaves {
			if prev, dup := owner[l]; dup {
				return fmt.Errorf("hier: leaf %q owned by both %q and %q", l, prev, b.Name)
			}
			owner[l] = b.Name
		}
		for _, c := range b.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(h.Root); err != nil {
		return nil, err
	}
	return owner, nil
}

// Leaves returns the sorted leaf universe of the hierarchy.
func (h *Hierarchy) Leaves() []string {
	owner, err := h.LeafOwner()
	if err != nil {
		return nil
	}
	out := make([]string, 0, len(owner))
	for l := range owner {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// OverlapRow describes how one block of hierarchy A spreads over the
// blocks of hierarchy B — one box of Figure 1.
type OverlapRow struct {
	// Block is the A-side block.
	Block string
	// Spans maps B-side block names to the number of shared leaves.
	Spans map[string]int
	// Total is the A-block's leaf count.
	Total int
}

// Fragmentation returns how many B-blocks the A-block touches.
func (r OverlapRow) Fragmentation() int { return len(r.Spans) }

// Report is the full cross-view overlap analysis.
type Report struct {
	A, B View
	Rows []OverlapRow
	// OnlyInA/OnlyInB list leaves missing from the other view — a
	// correspondence error the CBV flow must surface.
	OnlyInA, OnlyInB []string
}

// MaxFragmentation returns the worst row's span count.
func (r *Report) MaxFragmentation() int {
	m := 0
	for _, row := range r.Rows {
		if f := row.Fragmentation(); f > m {
			m = f
		}
	}
	return m
}

// Aligned reports whether every A-block maps into exactly one B-block
// and the leaf universes match (the strict correspondence the paper
// declines to enforce).
func (r *Report) Aligned() bool {
	if len(r.OnlyInA) > 0 || len(r.OnlyInB) > 0 {
		return false
	}
	return r.MaxFragmentation() <= 1
}

// String renders the Figure 1 picture as text.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s vs %s hierarchy overlap:\n", r.A, r.B)
	for _, row := range r.Rows {
		names := make([]string, 0, len(row.Spans))
		for n := range row.Spans {
			names = append(names, n)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, n := range names {
			parts[i] = fmt.Sprintf("%s(%d)", n, row.Spans[n])
		}
		fmt.Fprintf(&sb, "  %-12s → %s\n", row.Block, strings.Join(parts, " + "))
	}
	if len(r.OnlyInA) > 0 {
		fmt.Fprintf(&sb, "  only in %s: %s\n", r.A, strings.Join(r.OnlyInA, ","))
	}
	if len(r.OnlyInB) > 0 {
		fmt.Fprintf(&sb, "  only in %s: %s\n", r.B, strings.Join(r.OnlyInB, ","))
	}
	return sb.String()
}

// Overlap computes the cross-view overlap report between two
// hierarchies over (nominally) the same leaf universe.
func Overlap(a, b *Hierarchy) (*Report, error) {
	ownA, err := a.LeafOwner()
	if err != nil {
		return nil, err
	}
	ownB, err := b.LeafOwner()
	if err != nil {
		return nil, err
	}
	rep := &Report{A: a.View, B: b.View}
	rows := make(map[string]*OverlapRow)
	var blockOrder []string
	for leaf, blkA := range ownA {
		row, ok := rows[blkA]
		if !ok {
			row = &OverlapRow{Block: blkA, Spans: make(map[string]int)}
			rows[blkA] = row
			blockOrder = append(blockOrder, blkA)
		}
		row.Total++
		if blkB, ok := ownB[leaf]; ok {
			row.Spans[blkB]++
		} else {
			rep.OnlyInA = append(rep.OnlyInA, leaf)
		}
	}
	for leaf := range ownB {
		if _, ok := ownA[leaf]; !ok {
			rep.OnlyInB = append(rep.OnlyInB, leaf)
		}
	}
	sort.Strings(blockOrder)
	sort.Strings(rep.OnlyInA)
	sort.Strings(rep.OnlyInB)
	for _, n := range blockOrder {
		rep.Rows = append(rep.Rows, *rows[n])
	}
	return rep, nil
}
