package layout

import (
	"strings"
	"testing"

	"repro/internal/designs"
	"repro/internal/netlist"
	"repro/internal/process"
)

func place(t *testing.T, c *netlist.Circuit) *Macrocell {
	t.Helper()
	m, err := Place(c, process.CMOS075())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPlaceInverter(t *testing.T) {
	c := netlist.New("inv")
	c.DeclarePort("a")
	c.DeclarePort("y")
	designs.AddInverter(c, "u", "a", "y", 2, 4)
	m := place(t, c)
	if len(m.PRow) != 1 || len(m.NRow) != 1 {
		t.Fatalf("rows: %d/%d", len(m.PRow), len(m.NRow))
	}
	if m.WidthUM <= 0 || m.HeightUM <= 0 || m.AreaUM2() <= 0 {
		t.Error("degenerate geometry")
	}
	// A one-column cell routes its nets vertically: zero channel tracks.
	if m.Tracks != 0 {
		t.Errorf("tracks = %d, want 0 for a single-column cell", m.Tracks)
	}
}

func TestDiffusionSharingOnChain(t *testing.T) {
	// An inverter chain has no shareable diffusion between distinct
	// gates' outputs... but a NAND stack does. Compare sharing on a
	// serial stack vs unrelated devices.
	stack := netlist.New("stack")
	stack.DeclarePort("y")
	stack.NMOS("n1", "a", "m1", "y", 4, 0.75)
	stack.NMOS("n2", "b", "m2", "m1", 4, 0.75)
	stack.NMOS("n3", "c", "vss", "m2", 4, 0.75)
	stack.PMOS("p1", "a", "vdd", "y", 4, 0.75)
	ms := place(t, stack)
	if ms.SharingRatio() < 0.99 {
		t.Errorf("series stack should share all diffusions: %.2f", ms.SharingRatio())
	}

	apart := netlist.New("apart")
	apart.DeclarePort("y1")
	apart.DeclarePort("y2")
	apart.NMOS("n1", "a", "vss", "y1", 4, 0.75)
	apart.NMOS("n2", "b", "vss", "y2", 4, 0.75)
	ma := place(t, apart)
	// Both pull from vss: right edge of n1 can abut n2's vss... the
	// chain heuristic can still share via the common rail; accept any
	// outcome but require the denser circuit to not be *worse* in area
	// per device.
	if ma.AreaUM2() <= 0 {
		t.Error("degenerate area")
	}
}

func TestChannelDensityGrowsWithOverlappingNets(t *testing.T) {
	// k parallel inverters driven by k distinct inputs all routing to
	// one output bus: spans overlap, tracks grow.
	small := place(t, designs.InverterChain(2))
	big := place(t, designs.InverterChain(16))
	if big.Tracks < small.Tracks {
		t.Errorf("16-stage chain should need ≥ tracks of 2-stage: %d vs %d", big.Tracks, small.Tracks)
	}
	if big.WirelengthUM <= small.WirelengthUM {
		t.Error("wirelength should grow with size")
	}
	if big.AreaUM2() <= small.AreaUM2() {
		t.Error("area should grow with size")
	}
}

func TestAntennaRatiosProduced(t *testing.T) {
	m := place(t, designs.InverterChain(4))
	if len(m.AntennaRatios) == 0 {
		t.Fatal("no antenna ratios")
	}
	for net, r := range m.AntennaRatios {
		if r <= 0 {
			t.Errorf("net %s: non-positive antenna ratio %g", net, r)
		}
	}
	// Internal nets (driving gates) must have entries.
	if _, ok := m.AntennaRatios["n0"]; !ok {
		t.Error("internal net n0 missing antenna ratio")
	}
}

func TestAntennaRatioFeedsChecks(t *testing.T) {
	// End-to-end: layout estimates flow into the §4.2 antenna check.
	m := place(t, designs.InverterChain(3))
	found := false
	for _, r := range m.AntennaRatios {
		if r > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no usable ratios")
	}
}

func TestPlaceErrors(t *testing.T) {
	c := netlist.New("empty")
	if _, err := Place(c, process.CMOS075()); err == nil {
		t.Error("empty circuit accepted")
	}
	h := netlist.New("h")
	h.AddInstance("x", "cell", "n")
	if _, err := Place(h, process.CMOS075()); err == nil {
		t.Error("hierarchical circuit accepted")
	}
}

func TestSummaryFormat(t *testing.T) {
	m := place(t, designs.InverterChain(2))
	s := m.Summary()
	for _, want := range []string{"µm", "tracks", "sharing"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}

func TestDominoAdderPlaces(t *testing.T) {
	m := place(t, designs.DominoAdder(8))
	if m.AreaUM2() < 1000 {
		t.Errorf("8-bit adder area %g µm² implausibly small", m.AreaUM2())
	}
	if m.Tracks < 3 {
		t.Errorf("adder channel %d tracks implausibly small", m.Tracks)
	}
	// Placement covers every device exactly once.
	if len(m.PRow)+len(m.NRow) != len(m.Circuit.Devices) {
		t.Errorf("placed %d of %d devices", len(m.PRow)+len(m.NRow), len(m.Circuit.Devices))
	}
}
