// Package layout is the macrocell layout-assist engine of §2.2:
//
//	"CAD layout synthesis and assistance tools have had a greater impact
//	in our layout creation. The emphasis of these layout generation
//	tools is to assist in the creation of macrocells, at the level of
//	transistor place and route."
//
// The generator places a flat transistor circuit in the classic
// two-row macrocell style (PMOS row over NMOS row), ordering devices to
// maximize diffusion sharing (abutting source/drain), then estimates the
// routing channel height with the left-edge interval algorithm, total
// area, per-net wirelength — and per-net antenna ratios, which feed the
// §4.2 antenna check.
package layout

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
	"repro/internal/process"
)

// Placement is one device's position in the macrocell.
type Placement struct {
	Device *netlist.Device
	// Column is the horizontal slot (0-based).
	Column int
	// XUM is the left edge in µm.
	XUM float64
	// Flipped reports source/drain order was reversed to share
	// diffusion with the left neighbour.
	Flipped bool
	// SharesLeft reports the left diffusion abuts the neighbour.
	SharesLeft bool
}

// Macrocell is a placed-and-estimated cell.
type Macrocell struct {
	Circuit *netlist.Circuit
	// PRow and NRow are placements left to right.
	PRow, NRow []Placement
	// WidthUM and HeightUM bound the cell.
	WidthUM, HeightUM float64
	// Tracks is the routing channel height in tracks (left-edge).
	Tracks int
	// WirelengthUM is total estimated net wirelength.
	WirelengthUM float64
	// DiffusionBreaks counts unshared diffusion gaps (area cost).
	DiffusionBreaks int
	// AntennaRatios estimates metal-to-gate area ratio per net name.
	AntennaRatios map[string]float64
}

// Geometry constants (µm) for the 0.75 µm generation: device pitch,
// diffusion gap, track pitch, metal width.
const (
	colPitch   = 3.0
	diffGap    = 1.5
	trackPitch = 2.25
	rowHeight  = 12.0
	metalWidth = 1.0
)

// Place builds the macrocell for a flat circuit.
func Place(c *netlist.Circuit, proc *process.Process) (*Macrocell, error) {
	if len(c.Instances) > 0 {
		return nil, fmt.Errorf("layout: circuit %s has unflattened instances", c.Name)
	}
	if len(c.Devices) == 0 {
		return nil, fmt.Errorf("layout: circuit %s has no devices", c.Name)
	}
	m := &Macrocell{Circuit: c, AntennaRatios: make(map[string]float64)}
	var ps, ns []*netlist.Device
	for _, d := range c.Devices {
		if d.Type == process.PMOS {
			ps = append(ps, d)
		} else {
			ns = append(ns, d)
		}
	}
	m.PRow = placeRow(c, ps)
	m.NRow = placeRow(c, ns)
	for _, row := range [][]Placement{m.PRow, m.NRow} {
		for _, p := range row {
			if !p.SharesLeft && p.Column > 0 {
				m.DiffusionBreaks++
			}
		}
	}
	cols := len(m.PRow)
	if len(m.NRow) > cols {
		cols = len(m.NRow)
	}
	m.WidthUM = float64(cols)*colPitch + float64(m.DiffusionBreaks)*diffGap

	// Channel routing: each net spans the columns of its terminals;
	// left-edge packing of the intervals gives the track count.
	spans := netSpans(c, m)
	m.Tracks = leftEdge(spans)
	m.HeightUM = 2*rowHeight + float64(m.Tracks)*trackPitch

	// Wirelength: horizontal span plus one vertical drop per terminal.
	for _, sp := range spans {
		m.WirelengthUM += (sp.hi - sp.lo) * colPitch
		m.WirelengthUM += float64(sp.terms) * rowHeight / 2
	}

	// Antenna ratio per net: metal area / connected gate area. Nets
	// with no gate terminal get no entry (no gate to damage).
	gateArea := make(map[string]float64)
	metal := make(map[string]float64)
	for _, sp := range spans {
		metal[sp.name] = ((sp.hi-sp.lo)*colPitch + rowHeight) * metalWidth
	}
	for _, d := range c.Devices {
		if !c.IsSupply(d.Gate) {
			gateArea[c.NodeName(d.Gate)] += d.W * d.Leff()
		}
	}
	for net, ga := range gateArea {
		if ga > 0 {
			m.AntennaRatios[net] = metal[net] / ga
		}
	}
	return m, nil
}

// placeRow greedily chains devices that can share a diffusion: starting
// from an arbitrary device, prefer a next device sharing a source/drain
// net with the current right edge (the linear-time cousin of the
// Eulerian-trail pairing heuristic).
func placeRow(c *netlist.Circuit, devs []*netlist.Device) []Placement {
	used := make([]bool, len(devs))
	var out []Placement
	x := 0.0
	col := 0
	rightNet := netlist.InvalidNode
	for placed := 0; placed < len(devs); placed++ {
		// Find the best next device: one whose source or drain matches
		// the current right edge net.
		best := -1
		flip := false
		for i, d := range devs {
			if used[i] {
				continue
			}
			switch rightNet {
			case d.Source:
				best, flip = i, false
			case d.Drain:
				best, flip = i, true
			}
			if best == i {
				break
			}
		}
		shares := best >= 0
		if best < 0 {
			for i := range devs {
				if !used[i] {
					best = i
					break
				}
			}
			if col > 0 {
				x += diffGap
			}
			// Orient a fresh chain start toward its successors: put the
			// terminal with more unused neighbours on the right.
			d := devs[best]
			countTouch := func(n netlist.NodeID) int {
				cnt := 0
				for i, o := range devs {
					if used[i] || o == d {
						continue
					}
					if o.Source == n || o.Drain == n {
						cnt++
					}
				}
				return cnt
			}
			if countTouch(d.Source) > countTouch(d.Drain) {
				flip = true // put Source on the right
			}
		}
		d := devs[best]
		used[best] = true
		right := d.Drain
		if flip {
			right = d.Source
		}
		out = append(out, Placement{
			Device:     d,
			Column:     col,
			XUM:        x,
			Flipped:    flip,
			SharesLeft: shares && col > 0,
		})
		rightNet = right
		x += colPitch
		col++
	}
	return out
}

// span is a net's horizontal interval in columns.
type span struct {
	name   string
	lo, hi float64
	terms  int
}

// netSpans computes per-net column intervals over both rows.
func netSpans(c *netlist.Circuit, m *Macrocell) []span {
	type acc struct {
		lo, hi float64
		terms  int
		seen   bool
	}
	accs := make(map[string]*acc)
	note := func(id netlist.NodeID, col int) {
		if c.IsSupply(id) {
			return // rails run in the rows, not the channel
		}
		name := c.NodeName(id)
		a, ok := accs[name]
		if !ok {
			a = &acc{lo: float64(col), hi: float64(col)}
			accs[name] = a
		}
		if float64(col) < a.lo {
			a.lo = float64(col)
		}
		if float64(col) > a.hi {
			a.hi = float64(col)
		}
		a.terms++
	}
	for _, row := range [][]Placement{m.PRow, m.NRow} {
		for _, p := range row {
			note(p.Device.Gate, p.Column)
			note(p.Device.Source, p.Column)
			note(p.Device.Drain, p.Column)
		}
	}
	names := make([]string, 0, len(accs))
	for n := range accs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]span, 0, len(names))
	for _, n := range names {
		a := accs[n]
		out = append(out, span{name: n, lo: a.lo, hi: a.hi, terms: a.terms})
	}
	return out
}

// leftEdge packs intervals into tracks (classic channel router density):
// sort by left edge; greedily assign each interval to the first track
// whose last interval ends before it starts.
func leftEdge(spans []span) int {
	// Single-column nets need no channel track.
	var ivs []span
	for _, s := range spans {
		if s.hi > s.lo {
			ivs = append(ivs, s)
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var trackEnd []float64
	for _, iv := range ivs {
		placed := false
		for t := range trackEnd {
			if trackEnd[t] < iv.lo {
				trackEnd[t] = iv.hi
				placed = true
				break
			}
		}
		if !placed {
			trackEnd = append(trackEnd, iv.hi)
		}
	}
	return len(trackEnd)
}

// AreaUM2 returns the cell's estimated area.
func (m *Macrocell) AreaUM2() float64 { return m.WidthUM * m.HeightUM }

// SharingRatio returns the fraction of possible diffusion abutments
// achieved — the placement-quality metric the generator optimizes.
func (m *Macrocell) SharingRatio() float64 {
	possible := 0
	shared := 0
	for _, row := range [][]Placement{m.PRow, m.NRow} {
		if len(row) > 1 {
			possible += len(row) - 1
		}
		for _, p := range row {
			if p.SharesLeft {
				shared++
			}
		}
	}
	if possible == 0 {
		return 1
	}
	return float64(shared) / float64(possible)
}

// Summary formats the estimate.
func (m *Macrocell) Summary() string {
	return fmt.Sprintf("%s: %.1f×%.1f µm (%.0f µm²), %d tracks, %.0f µm wire, sharing %.0f%%",
		m.Circuit.Name, m.WidthUM, m.HeightUM, m.AreaUM2(), m.Tracks,
		m.WirelengthUM, m.SharingRatio()*100)
}
