// Package experiments regenerates every table and figure of the paper.
// Each Exp* function runs one experiment and returns both a formatted
// report (what cmd/repro prints and EXPERIMENTS.md records) and the key
// numbers (what bench_test.go and the tests assert the *shape* of).
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/checks"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/equiv"
	"repro/internal/fleet"
	"repro/internal/flow"
	"repro/internal/hier"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/parasitics"
	"repro/internal/power"
	"repro/internal/process"
	"repro/internal/recognize"
	"repro/internal/rtl"
	"repro/internal/timing"
)

// Table1Result carries the computed power walk.
type Table1Result struct {
	Steps       []power.WalkStep
	TotalFactor float64
	FinalW      float64
	Report      string
}

// Table1 reproduces Table 1: the ALPHA 21064 → StrongARM power walk.
func Table1() (*Table1Result, error) {
	steps, err := power.Table1Walk(power.ALPHA21064(), power.StrongARM110())
	if err != nil {
		return nil, err
	}
	res := &Table1Result{
		Steps:       steps,
		TotalFactor: power.WalkTotalFactor(steps),
		FinalW:      steps[len(steps)-1].PowerW,
	}
	var sb strings.Builder
	sb.WriteString("Table 1: ALPHA -> StrongARM Power Dissipation\n")
	sb.WriteString(power.FormatWalk(steps))
	fmt.Fprintf(&sb, "Total reduction: %.1fx (paper: ~52x); final %.2f W (paper model 0.5 W, realized 0.45 W)\n",
		res.TotalFactor, res.FinalW)
	res.Report = sb.String()
	return res, nil
}

// Figure1Result carries the hierarchy overlap analysis.
type Figure1Result struct {
	Overlap *hier.Report
	Report  string
}

// Figure1 builds the divergent RTL/schematic hierarchies of an
// adder-like block and emits the overlap report.
func Figure1() (*Figure1Result, error) {
	// RTL view: architect's decomposition by function.
	r := hier.New(hier.ViewRTL, "adder_rtl")
	for _, b := range []string{"rtl1_pg", "rtl2_carry", "rtl3_sum"} {
		if _, err := r.AddBlock("adder_rtl", b); err != nil {
			return nil, err
		}
	}
	_ = r.AddLeaves("rtl1_pg", "pg0", "pg1", "pg2", "pg3")
	_ = r.AddLeaves("rtl2_carry", "mc0", "mc1", "mc2", "mc3")
	_ = r.AddLeaves("rtl3_sum", "xs0", "xs1", "xs2", "xs3")

	// Schematic view: circuit designer's decomposition by bit-slice and
	// by clock domain — functions moved physically (§2.1).
	s := hier.New(hier.ViewSchematic, "adder_sch")
	for _, b := range []string{"s1_loslice", "s2_dominochain", "s3_hislice"} {
		if _, err := s.AddBlock("adder_sch", b); err != nil {
			return nil, err
		}
	}
	_ = s.AddLeaves("s1_loslice", "pg0", "pg1", "xs1")
	_ = s.AddLeaves("s2_dominochain", "mc0", "mc1", "mc2", "mc3", "pg2", "xs0")
	_ = s.AddLeaves("s3_hislice", "pg3", "xs2", "xs3")

	rep, err := hier.Overlap(s, r)
	if err != nil {
		return nil, err
	}
	out := "Figure 1: RTL vs Schematic hierarchy\n" + rep.String() +
		fmt.Sprintf("aligned=%v max-fragmentation=%d (schematic blocks span up to %d RTL blocks)\n",
			rep.Aligned(), rep.MaxFragmentation(), rep.MaxFragmentation())
	return &Figure1Result{Overlap: rep, Report: out}, nil
}

// Figure2Result carries the flow execution trace.
type Figure2Result struct {
	Result *flow.Result
	Report string
}

// Figure2 executes the ALPHA design flow with its feedback edges.
func Figure2() (*Figure2Result, error) {
	f := flow.ALPHAFlow(1, 2)
	res, err := f.Run()
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	sb.WriteString("Figure 2: ALPHA design flow (with bottom-to-top interactions)\n")
	fmt.Fprintf(&sb, "  passes to convergence: %d\n", res.Iterations)
	for _, step := range []string{"behavioral-rtl", "schematic", "layout", "extract",
		"logic-verify", "circuit-verify", "timing-verify", "tapeout"} {
		fmt.Fprintf(&sb, "  %-16s executed %d time(s)\n", step, res.Executions(step))
	}
	fmt.Fprintf(&sb, "  trace: %s\n", res.TraceString())
	return &Figure2Result{Result: res, Report: sb.String()}, nil
}

// Figure3Result carries the dynamic-noise budget.
type Figure3Result struct {
	// PerSource maps noise source → (findings, worst margin).
	PerSource map[string]struct {
		Findings    int
		WorstMargin float64
	}
	Violations int
	Report     string
}

// Figure3 analyzes the noise sources of Figure 3 on a domino carry
// chain with extracted coupling.
func Figure3() (*Figure3Result, error) {
	c := designs.DominoAdder(8)
	rec, err := recognize.Analyze(c)
	if err != nil {
		return nil, err
	}
	// Extraction data: a bus aggressor couples onto two dynamic nodes.
	opt := checks.Options{
		Proc:     process.CMOS075(),
		PeriodPS: 5000,
		Couplings: []checks.Coupling{
			{Victim: "mc3_dyn", Aggressor: "bus_a", CapFF: 6},
			{Victim: "mc5_dyn", Aggressor: "bus_b", CapFF: 3},
			{Victim: "s4", Aggressor: "bus_a", CapFF: 6},
		},
	}
	res := &Figure3Result{PerSource: make(map[string]struct {
		Findings    int
		WorstMargin float64
	})}
	var sb strings.Builder
	sb.WriteString("Figure 3: noise sources in dynamic structures (domino adder, per-source budget)\n")
	for _, source := range []string{"coupling", "charge-share", "dynamic-leakage"} {
		fs, err := checks.Run(source, rec, opt)
		if err != nil {
			return nil, err
		}
		worst := 1e9
		for _, f := range fs {
			if f.Margin < worst {
				worst = f.Margin
			}
			if f.Verdict == checks.Violation {
				res.Violations++
			}
		}
		if len(fs) == 0 {
			worst = 0
		}
		res.PerSource[source] = struct {
			Findings    int
			WorstMargin float64
		}{len(fs), worst}
		fmt.Fprintf(&sb, "  %-16s findings=%-3d worst margin=%+.2f\n", source, len(fs), worst)
	}
	sb.WriteString("  (alpha-particle and supply-difference sources are margin allocations,\n" +
		"   folded into the dynamic-node thresholds above)\n")
	res.Report = sb.String()
	return res, nil
}

// Figure4Result carries the critical-path/race analysis.
type Figure4Result struct {
	CleanRaces, RacyRaces int
	CriticalPS            float64
	MinPeriodPS           float64
	Report                string
}

// Figure4 runs the timing verifier over the clean and racy two-phase
// pipelines and the domino adder.
func Figure4() (*Figure4Result, error) {
	proc := process.CMOS075()
	clock := timing.TwoPhase(5000)
	analyze := func(cname string, ckt *netlist.Circuit) (*timing.Report, error) {
		rec, err := recognize.Analyze(ckt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cname, err)
		}
		return timing.Analyze(rec, timing.Options{Proc: proc, Clock: clock})
	}
	clean, err := analyze("clean", designs.LatchPipeline(6, false))
	if err != nil {
		return nil, err
	}
	racy, err := analyze("racy", designs.LatchPipeline(6, true))
	if err != nil {
		return nil, err
	}
	adder, err := analyze("adder", designs.DominoAdder(16))
	if err != nil {
		return nil, err
	}
	res := &Figure4Result{
		CleanRaces:  len(clean.Races),
		RacyRaces:   len(racy.Races),
		MinPeriodPS: adder.MinPeriodPS,
	}
	if cp := adder.CriticalPath(); cp != nil {
		res.CriticalPS = cp.Arrival.Max
	}
	var sb strings.Builder
	sb.WriteString("Figure 4: clocking and timing methodology\n")
	fmt.Fprintf(&sb, "  clean two-phase pipeline:  races=%d (phase separation is race-immune)\n", res.CleanRaces)
	fmt.Fprintf(&sb, "  same-phase (racy) pipeline: races=%d — broken at ANY frequency\n", res.RacyRaces)
	if len(racy.Races) > 0 {
		worst := racy.Races[0]
		fmt.Fprintf(&sb, "    worst race: endpoint %s, hold slack %.0f ps\n",
			racy.Circuit.NodeName(worst.Endpoint), worst.HoldSlack)
	}
	fmt.Fprintf(&sb, "  16-bit domino adder: critical arrival %.0f ps, min period %.0f ps (%.0f MHz)\n",
		res.CriticalPS, res.MinPeriodPS, 1e6/res.MinPeriodPS)
	res.Report = sb.String()
	return res, nil
}

// Figure5Result carries the lumped-vs-distributed comparison.
type Figure5Result struct {
	Rows   []Figure5Row
	Report string
}

// Figure5Row is one finger-count sample.
type Figure5Row struct {
	Fingers          int
	LumpedPS, RealPS float64
	ErrPS, ErrPct    float64
}

// Figure5 sweeps driver finger counts on the distributed-gate model.
func Figure5() (*Figure5Result, error) {
	res := &Figure5Result{}
	var sb strings.Builder
	sb.WriteString("Figure 5: real gates have multiple inputs/outputs\n")
	sb.WriteString("  fingers  lumped(ps)  distributed(ps)  error(ps)  error(%)\n")
	for _, fingers := range []int{2, 4, 8, 16} {
		g := &parasitics.DistributedGate{
			Fingers:     fingers,
			RdrvTotal:   300,
			InRes:       1800,
			InCap:       140,
			RinDrv:      900,
			CgPerFinger: 14,
			OutRes:      1400,
			OutCap:      200,
			CLoad:       150,
			Vdd:         3.45,
		}
		lumped, dist, errPS, err := g.ModelErrorPS()
		if err != nil {
			return nil, err
		}
		row := Figure5Row{
			Fingers:  fingers,
			LumpedPS: lumped,
			RealPS:   dist,
			ErrPS:    errPS,
			ErrPct:   100 * errPS / dist,
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&sb, "  %7d  %10.0f  %15.0f  %9.0f  %7.1f\n",
			fingers, lumped, dist, errPS, row.ErrPct)
	}
	sb.WriteString("  (the 'Simple' single-port model underestimates; the error is what §4.3 warns about)\n")
	res.Report = sb.String()
	return res, nil
}

// S1Result carries the simulation-throughput measurement.
type S1Result struct {
	CyclesPerSec      float64
	PaperCyclesPerSec float64
	AggregateGoal     float64 // cycles/day
	CPUsAtPaperRate   float64
	CPUsAtOurRate     float64
	ParallelCyclesSec float64
	Workers           int
	Report            string
}

// S1 measures FCL simulation throughput against §4.1's numbers:
// ">200 cycles per second per simulation CPU" and "two billion
// aggregated simulated cycles per day requires ... about 100 CPUs".
func S1() (*S1Result, error) {
	prog, err := rtl.ParseString(designs.PipelineRTL())
	if err != nil {
		return nil, err
	}
	makeSim := func() (*rtl.Sim, error) {
		s, err := rtl.NewSim(prog)
		if err != nil {
			return nil, err
		}
		img := make([]uint64, 64)
		for i := range img {
			img[i] = uint64(i*2557) & 0xffff
		}
		if err := s.LoadMem("imem", img); err != nil {
			return nil, err
		}
		return s, s.Set("run", 1)
	}
	s, err := makeSim()
	if err != nil {
		return nil, err
	}
	const warm = 2000
	s.Run(warm)
	const n = 200000
	start := obs.Now()
	s.Run(n)
	elapsed := obs.Now().Sub(start)
	res := &S1Result{
		CyclesPerSec:      float64(n) / elapsed.Seconds(),
		PaperCyclesPerSec: 200,
		AggregateGoal:     2e9,
	}
	res.CPUsAtPaperRate = res.AggregateGoal / (res.PaperCyclesPerSec * 86400)
	res.CPUsAtOurRate = res.AggregateGoal / (res.CyclesPerSec * 86400)

	// Goroutine fleet: independent random-stimulus sims (the paper's
	// ~100-CPU farm, §4.1) on one host.
	res.Workers = runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	perWorker := 50000
	start = obs.Now()
	errs := make(chan error, res.Workers)
	for w := 0; w < res.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws, err := makeSim()
			if err != nil {
				errs <- err
				return
			}
			ws.Run(perWorker)
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	res.ParallelCyclesSec = float64(res.Workers*perWorker) / obs.Now().Sub(start).Seconds()

	var sb strings.Builder
	sb.WriteString("S1: RTL simulation throughput (pipeline model)\n")
	fmt.Fprintf(&sb, "  paper:   >200 cycles/sec/CPU; 2e9 cycles/day needs ~%.0f CPUs\n", res.CPUsAtPaperRate)
	fmt.Fprintf(&sb, "  this Go: %.0f cycles/sec/CPU (%.0fx the paper's rate)\n",
		res.CyclesPerSec, res.CyclesPerSec/res.PaperCyclesPerSec)
	fmt.Fprintf(&sb, "  2e9 cycles/day now needs %.2f CPUs\n", res.CPUsAtOurRate)
	fmt.Fprintf(&sb, "  goroutine fleet (%d workers): %.0f aggregate cycles/sec\n",
		res.Workers, res.ParallelCyclesSec)
	res.Report = sb.String()
	return res, nil
}

// S2Result carries the leakage sweep.
type S2Result struct {
	Points []power.LeakagePoint
	Report string
}

// S2 reproduces the §3 leakage-vs-channel-lengthening story.
func S2() (*S2Result, error) {
	chip := power.StrongARM110()
	pts := power.LeakageSweep(chip, []string{"cache", "pads"}, []float64{0, 0.045, 0.09})
	var sb strings.Builder
	sb.WriteString("S2: standby leakage vs channel lengthening (StrongARM model)\n")
	fmt.Fprintf(&sb, "  spec: < %.0f mW in the fastest process corner\n", power.StandbySpecMW)
	sb.WriteString("  ΔL(µm)   corner    leakage(mW)  meets-spec\n")
	for _, p := range pts {
		fmt.Fprintf(&sb, "  %6.3f   %-8s  %10.1f   %v\n", p.ExtraLUM, p.Corner, p.LeakageMW, p.MeetsSpec)
	}
	return &S2Result{Points: pts, Report: sb.String()}, nil
}

// S3Result carries the sequential-equivalence run.
type S3Result struct {
	Result *equiv.SeqResult
	Report string
}

// S3 checks the paper's counter-vs-shift-register example.
func S3() (*S3Result, error) {
	pa, err := rtl.ParseString(designs.Mod5CounterRTL())
	if err != nil {
		return nil, err
	}
	pb, err := rtl.ParseString(designs.Mod5RingRTL())
	if err != nil {
		return nil, err
	}
	sa, err := rtl.NewSim(pa)
	if err != nil {
		return nil, err
	}
	sb2, err := rtl.NewSim(pb)
	if err != nil {
		return nil, err
	}
	res, err := equiv.SeqEquiv(sa, sb2, []string{"tick"}, []string{"fire"}, 10000)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	sb.WriteString("S3: sequential equivalence — mod-5 counter vs 5-long one-hot ring (§4.1)\n")
	fmt.Fprintf(&sb, "  equivalent=%v, joint states explored=%d\n", res.Equivalent, res.StatesExplored)
	return &S3Result{Result: res, Report: sb.String()}, nil
}

// S4Row is one CAM-size sample.
type S4Row struct {
	Depth               int
	NativeCyclesSec     float64
	ExpandedCyclesSec   float64
	Slowdown            float64
	ExpandedAssignCount int
}

// S4Result carries the CAM scaling comparison.
type S4Result struct {
	Rows   []S4Row
	Report string
}

// S4 benchmarks the native CAM primitive against its gate-level
// expansion across port counts up to the paper's 2000.
func S4() (*S4Result, error) {
	res := &S4Result{}
	var sb strings.Builder
	sb.WriteString("S4: native CAM primitive vs gate-level expansion (§4.1's 2000-port CAM)\n")
	sb.WriteString("  ports  native(cyc/s)  expanded(cyc/s)  slowdown  expanded-assigns\n")
	for _, depth := range []int{64, 256, 1024, 2048} {
		native, nAssigns, err := camRate(designs.CamNativeRTL(depth))
		if err != nil {
			return nil, err
		}
		expanded, eAssigns, err := camRate(designs.CamExpandedRTL(depth))
		if err != nil {
			return nil, err
		}
		_ = nAssigns
		row := S4Row{
			Depth:               depth,
			NativeCyclesSec:     native,
			ExpandedCyclesSec:   expanded,
			Slowdown:            native / expanded,
			ExpandedAssignCount: eAssigns,
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&sb, "  %5d  %13.0f  %15.0f  %7.1fx  %16d\n",
			depth, native, expanded, row.Slowdown, eAssigns)
	}
	sb.WriteString("  (the expansion's cost grows with every port; the primitive stays flat per probe)\n")
	res.Report = sb.String()
	return res, nil
}

// camRate measures cycles/sec of a CAM design under a write+probe loop.
func camRate(src string) (float64, int, error) {
	prog, err := rtl.ParseString(src)
	if err != nil {
		return 0, 0, err
	}
	s, err := rtl.NewSim(prog)
	if err != nil {
		return 0, 0, err
	}
	_ = s.Set("we", 1)
	_ = s.Set("waddr", 3)
	_ = s.Set("wdata", 0xbeef)
	s.Cycle()
	_ = s.Set("we", 0)
	_ = s.Set("key", 0xbeef)
	n := 20000
	start := obs.Now()
	for i := 0; i < n; i++ {
		_ = s.Set("key", uint64(i)&0xffff)
		s.Cycle()
	}
	return float64(n) / obs.Now().Sub(start).Seconds(), len(s.Design().Assigns), nil
}

// S5Result carries the full-battery filtering measurement.
type S5Result struct {
	PerDesign map[string]*core.Report
	// FilterEffectiveness is the aggregate auto-pass fraction.
	FilterEffectiveness float64
	Report              string
}

// S5 runs the CBV engine over the whole design zoo — through the fleet
// driver with a fingerprint cache, exercising the chip-scale corpus
// path — and reports the filter effectiveness (§2.3's
// designer-inspection-load story) and the CBC comparison.
func S5() (*S5Result, error) {
	items := []fleet.Item{
		{Name: "invchain", Circuit: designs.InverterChain(12)},
		{Name: "adder16", Circuit: designs.DominoAdder(16)},
		{Name: "pipeline", Circuit: designs.LatchPipeline(6, false)},
		{Name: "sram16x8", Circuit: designs.SRAMArray(16, 8, 0.09)},
		{Name: "passmux8", Circuit: designs.PassMux(8)},
	}
	frep := fleet.Verify(items, fleet.Options{
		Core:  core.Options{Proc: process.CMOS075()},
		Cache: fleet.NewCache(),
	})
	res := &S5Result{PerDesign: make(map[string]*core.Report)}
	var sb strings.Builder
	sb.WriteString("S5: §4.2 check battery + CBV/CBC comparison over the design zoo\n")
	sb.WriteString("  design      groups  findings  pass%   verdict     CBC\n")
	totalFindings, totalPass := 0, 0
	for idx, fr := range frep.Results {
		name, c := fr.Name, items[idx].Circuit
		if fr.Err != nil {
			return nil, fmt.Errorf("%s: %w", name, fr.Err)
		}
		rep := fr.Report
		res.PerDesign[name] = rep
		p, i, v := rep.Checks.Counts()
		totalFindings += p + i + v
		totalPass += p
		cbc, err := core.CheckCBC(c, process.CMOS075())
		if err != nil {
			return nil, err
		}
		cbcStr := "accepts"
		if !cbc.Accepts() {
			cbcStr = fmt.Sprintf("REJECTS %d groups", len(cbc.Rejections))
		}
		fmt.Fprintf(&sb, "  %-10s  %6d  %8d  %5.1f  %-10s  %s\n",
			name, len(rep.Recognition.Groups), p+i+v,
			rep.Checks.FilterEffectiveness()*100, rep.Verdict, cbcStr)
	}
	if totalFindings > 0 {
		res.FilterEffectiveness = float64(totalPass) / float64(totalFindings)
	}
	fmt.Fprintf(&sb, "  aggregate filter effectiveness: %.1f%% auto-passed\n", res.FilterEffectiveness*100)
	res.Report = sb.String()
	return res, nil
}

// S6Row is one pessimism sample.
type S6Row struct {
	Pessimism      float64
	BoundWidthPS   float64
	MinPeriodPS    float64
	RacesFlagged   int
	FalseSetupHits int
}

// S6Result carries the pessimism trade-off sweep.
type S6Result struct {
	Rows   []S6Row
	Report string
}

// S6 sweeps the coupling-bounding pessimism and measures §4.3's
// trade-off: low pessimism misses real races; high pessimism inflates
// bounds and creates false setup violations on a clean design.
func S6() (*S6Result, error) {
	proc := process.CMOS075()
	// The marginal racy design: enough logic between same-phase latches
	// that only a bounded (pessimistic) min-delay exposes the race.
	racy := marginalRacyPipeline()
	clean := designs.LatchPipeline(6, false)
	recRacy, err := recognize.Analyze(racy)
	if err != nil {
		return nil, err
	}
	recClean, err := recognize.Analyze(clean)
	if err != nil {
		return nil, err
	}
	// Aggressive clock chosen so that with maximum pessimism the clean
	// design's worst path fails setup (a false violation: the design is
	// fine at nominal coupling). Found by scanning periods downward for
	// the window where nominal passes but fully-bounded analysis fails.
	negCount := func(periodPS, pess float64) (int, error) {
		r, err := timing.Analyze(recClean, timing.Options{
			Proc: proc, Clock: timing.TwoPhase(periodPS), CouplingPessimism: pess,
		})
		if err != nil {
			return 0, err
		}
		n := 0
		for _, p := range r.Paths {
			if p.SetupSlack < 0 {
				n++
			}
		}
		return n, nil
	}
	period := 5000.0
	for try := 5000.0; try >= 400; try *= 0.92 {
		nomNeg, err := negCount(try, 1.0001)
		if err != nil {
			return nil, err
		}
		if nomNeg > 0 {
			break // past the real limit; keep the last good period
		}
		period = try
		maxNeg, err := negCount(try, 1.7)
		if err != nil {
			return nil, err
		}
		if maxNeg > 0 {
			break // the demonstration window: nominal clean, bounded fails
		}
	}
	res := &S6Result{}
	var sb strings.Builder
	sb.WriteString("S6: min/max coupling-bounding pessimism trade-off (§4.3)\n")
	fmt.Fprintf(&sb, "  clock period %.0f ps (chosen just inside the nominal-coupling limit)\n", period)
	sb.WriteString("  pessimism  bound-width(ps)  min-period(ps)  races-caught  false-setup-violations\n")
	for _, pess := range []float64{1.0001, 1.15, 1.3, 1.5, 1.7} {
		r1, err := timing.Analyze(recRacy, timing.Options{
			Proc: proc, Clock: timing.TwoPhase(period), CouplingPessimism: pess,
		})
		if err != nil {
			return nil, err
		}
		r2, err := timing.Analyze(recClean, timing.Options{
			Proc: proc, Clock: timing.TwoPhase(period), CouplingPessimism: pess,
		})
		if err != nil {
			return nil, err
		}
		row := S6Row{Pessimism: pess, RacesFlagged: len(r1.Races)}
		if cp := r2.CriticalPath(); cp != nil {
			row.BoundWidthPS = cp.Arrival.Max - cp.Arrival.Min
		}
		row.MinPeriodPS = r2.MinPeriodPS
		for _, p := range r2.Paths {
			if p.SetupSlack < 0 {
				row.FalseSetupHits++
			}
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(&sb, "  %9.2f  %15.0f  %14.0f  %12d  %22d\n",
			pess, row.BoundWidthPS, row.MinPeriodPS, row.RacesFlagged, row.FalseSetupHits)
	}
	sb.WriteString("  (bounds and false violations grow with pessimism; race coverage never shrinks)\n")
	res.Report = sb.String()
	return res, nil
}

// marginalRacyPipeline builds same-phase latches separated by a long
// inverter chain: the race margin is thin, so bounding matters.
func marginalRacyPipeline() *netlist.Circuit {
	c := netlist.New("marginal_racy")
	c.DeclarePort("d")
	designs.AddTGLatch(c, "l0", "d", "phi1", "phi1_n", "q0")
	prev := "q0"
	for i := 0; i < 24; i++ {
		next := fmt.Sprintf("w%d", i)
		designs.AddInverter(c, fmt.Sprintf("u%d", i), prev, next, 2, 4)
		prev = next
	}
	designs.AddTGLatch(c, "l1", prev, "phi1", "phi1_n", "q1")
	c.DeclarePort("q1")
	return c
}

// All runs every experiment and concatenates the reports in paper order.
func All() (string, error) {
	var sb strings.Builder
	type exp struct {
		name string
		run  func() (string, error)
	}
	exps := []exp{
		{"T1", func() (string, error) { r, err := Table1(); return report(r, err) }},
		{"F1", func() (string, error) { r, err := Figure1(); return report(r, err) }},
		{"F2", func() (string, error) { r, err := Figure2(); return report(r, err) }},
		{"F3", func() (string, error) { r, err := Figure3(); return report(r, err) }},
		{"F4", func() (string, error) { r, err := Figure4(); return report(r, err) }},
		{"F5", func() (string, error) { r, err := Figure5(); return report(r, err) }},
		{"S1", func() (string, error) { r, err := S1(); return report(r, err) }},
		{"S2", func() (string, error) { r, err := S2(); return report(r, err) }},
		{"S3", func() (string, error) { r, err := S3(); return report(r, err) }},
		{"S4", func() (string, error) { r, err := S4(); return report(r, err) }},
		{"S5", func() (string, error) { r, err := S5(); return report(r, err) }},
		{"S6", func() (string, error) { r, err := S6(); return report(r, err) }},
		{"A1", func() (string, error) { r, err := A1(); return report(r, err) }},
		{"A2", func() (string, error) { r, err := A2(); return report(r, err) }},
	}
	for _, e := range exps {
		out, err := e.run()
		if err != nil {
			return sb.String(), fmt.Errorf("%s: %w", e.name, err)
		}
		sb.WriteString(out)
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// report extracts the Report field via the small interface each result
// type satisfies.
func report(r interface{ ReportString() string }, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.ReportString(), nil
}

// ReportString returns the formatted experiment report.
func (r *Table1Result) ReportString() string { return r.Report }

// ReportString returns the formatted experiment report.
func (r *Figure1Result) ReportString() string { return r.Report }

// ReportString returns the formatted experiment report.
func (r *Figure2Result) ReportString() string { return r.Report }

// ReportString returns the formatted experiment report.
func (r *Figure3Result) ReportString() string { return r.Report }

// ReportString returns the formatted experiment report.
func (r *Figure4Result) ReportString() string { return r.Report }

// ReportString returns the formatted experiment report.
func (r *Figure5Result) ReportString() string { return r.Report }

// ReportString returns the formatted experiment report.
func (r *S1Result) ReportString() string { return r.Report }

// ReportString returns the formatted experiment report.
func (r *S2Result) ReportString() string { return r.Report }

// ReportString returns the formatted experiment report.
func (r *S3Result) ReportString() string { return r.Report }

// ReportString returns the formatted experiment report.
func (r *S4Result) ReportString() string { return r.Report }

// ReportString returns the formatted experiment report.
func (r *S5Result) ReportString() string { return r.Report }

// ReportString returns the formatted experiment report.
func (r *S6Result) ReportString() string { return r.Report }

// A1Result carries the conditional-clocking ablation.
type A1Result struct {
	GatedFactor   float64 // clock-gating factor with conditional clocking
	UngatedFactor float64 // same design, always-clocked
	ClockPowerMW  struct{ Gated, Ungated float64 }
	SavingPct     float64
	Report        string
}

// A1 is the §3 conditional-clocking ablation: the same pipeline runs the
// same program with and without conditional clocking; measured clock
// activity scales a clock-network power estimate, quantifying the knob
// the paper lists among StrongARM's "well known methods".
func A1() (*A1Result, error) {
	run := func(src string) (rtl.Activity, error) {
		prog, err := rtl.ParseString(src)
		if err != nil {
			return rtl.Activity{}, err
		}
		s, err := rtl.NewSim(prog)
		if err != nil {
			return rtl.Activity{}, err
		}
		// A realistic mix: 30% of instructions are op-7 (no writeback),
		// and the machine idles (run=0) a quarter of the time.
		img := make([]uint64, 64)
		for i := range img {
			op := uint64(i % 8)
			if i%3 == 0 {
				op = 7
			}
			img[i] = op<<13 | uint64(i%8)<<10 | uint64((i+1)%8)<<7 | uint64((i+2)%8)<<4
		}
		if err := s.LoadMem("imem", img); err != nil {
			return rtl.Activity{}, err
		}
		s.StartActivity()
		for i := 0; i < 4000; i++ {
			if err := s.Set("run", map[bool]uint64{true: 1, false: 0}[i%4 != 0]); err != nil {
				return rtl.Activity{}, err
			}
			s.Cycle()
		}
		return s.StopActivity(), nil
	}
	gated, err := run(designs.PipelineRTL())
	if err != nil {
		return nil, err
	}
	ungated, err := run(designs.PipelineRTLAlwaysClocked())
	if err != nil {
		return nil, err
	}
	res := &A1Result{
		GatedFactor:   gated.ClockGatingFactor(),
		UngatedFactor: ungated.ClockGatingFactor(),
	}
	// Clock-network power estimate: a 250 pF register-clock load at the
	// StrongARM operating point, scaled by the fraction of clock events
	// that actually fire.
	p := process.CMOS035LP()
	const clockCapPF = 250.0
	base := clockCapPF * 1e-12 * p.Vdd * p.Vdd * 160e6 * 1000 // mW
	res.ClockPowerMW.Gated = base * (1 - res.GatedFactor)
	res.ClockPowerMW.Ungated = base * (1 - res.UngatedFactor)
	if res.ClockPowerMW.Ungated > 0 {
		res.SavingPct = 100 * (1 - res.ClockPowerMW.Gated/res.ClockPowerMW.Ungated)
	}
	var sb strings.Builder
	sb.WriteString("A1 (ablation): conditional clocking on the pipeline model (§3)\n")
	fmt.Fprintf(&sb, "  conditional: %s\n", gated)
	fmt.Fprintf(&sb, "  always-on:   %s\n", ungated)
	fmt.Fprintf(&sb, "  register-clock power at 160 MHz/1.5 V over 250 pF: %.1f mW gated vs %.1f mW ungated (%.0f%% saved)\n",
		res.ClockPowerMW.Gated, res.ClockPowerMW.Ungated, res.SavingPct)
	res.Report = sb.String()
	return res, nil
}

// ReportString returns the formatted experiment report.
func (r *A1Result) ReportString() string { return r.Report }

// A2Result carries the CBC-vs-CBV methodology ablation on its own
// (referenced from S5 but runnable standalone).
type A2Result struct {
	Rows   []core.MethodologyComparison
	Report string
}

// A2 is the §2 methodology ablation: CBV verdicts vs CBC acceptance on
// progressively less library-like designs.
func A2() (*A2Result, error) {
	res := &A2Result{}
	var sb strings.Builder
	sb.WriteString("A2 (ablation): Correct-by-Verification vs Correct-by-Construction (§2)\n")
	for _, c := range []*netlist.Circuit{
		designs.InverterChain(8),
		designs.LatchPipeline(4, false),
		designs.DominoAdder(8),
		designs.PassMux(8),
	} {
		cmp, err := core.CompareMethodologies(c, core.Options{Proc: process.CMOS075()})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *cmp)
		cbc := "accepts"
		if !cmp.CBCAccepts {
			cbc = fmt.Sprintf("REJECTS %d groups", cmp.CBCRejected)
		}
		fmt.Fprintf(&sb, "  %-16s CBV=%-9s (inspect %d)  CBC %s\n",
			cmp.Design, cmp.CBVVerdict, cmp.CBVInspectLoad, cbc)
	}
	sb.WriteString("  (CBC guarantees what it accepts but cannot accept what full-custom needs — §2's argument)\n")
	res.Report = sb.String()
	return res, nil
}

// ReportString returns the formatted experiment report.
func (r *A2Result) ReportString() string { return r.Report }
