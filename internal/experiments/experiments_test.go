package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTable1Shape(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Steps) != 6 {
		t.Fatalf("steps = %d", len(r.Steps))
	}
	if r.TotalFactor < 45 || r.TotalFactor > 65 {
		t.Errorf("total factor %.1f outside the paper's ~52x band", r.TotalFactor)
	}
	if r.FinalW < 0.4 || r.FinalW > 0.6 {
		t.Errorf("final power %.2f W outside 0.4–0.6", r.FinalW)
	}
	// Each factor is within tolerance of the paper's printed value.
	for _, s := range r.Steps[1:] {
		rel := math.Abs(s.Factor-s.PaperFactor) / s.PaperFactor
		if rel > 0.25 {
			t.Errorf("%s: factor %.2f vs paper %.2f (rel %.2f)", s.Label, s.Factor, s.PaperFactor, rel)
		}
	}
	if !strings.Contains(r.Report, "VDD reduction") {
		t.Error("report missing walk rows")
	}
}

func TestFigure1Shape(t *testing.T) {
	r, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if r.Overlap.Aligned() {
		t.Error("the Figure 1 hierarchies must not align")
	}
	if r.Overlap.MaxFragmentation() != 3 {
		t.Errorf("the paper's schematic #2 spans all 3 RTL blocks, got %d", r.Overlap.MaxFragmentation())
	}
}

func TestFigure2Shape(t *testing.T) {
	r, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if r.Result.Iterations < 2 {
		t.Error("feedback edges must force multiple passes")
	}
	if r.Result.Executions("behavioral-rtl") < 2 {
		t.Error("feasibility feedback must re-run the RTL step")
	}
	if r.Result.Executions("tapeout") < 1 {
		t.Error("flow never reached tapeout")
	}
}

func TestFigure3Shape(t *testing.T) {
	r, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"coupling", "charge-share", "dynamic-leakage"} {
		if r.PerSource[src].Findings == 0 {
			t.Errorf("source %s produced no findings", src)
		}
	}
	// The injected bus coupling onto a small dynamic node must erode
	// margin below the clean case.
	if r.PerSource["coupling"].WorstMargin >= 1 {
		t.Error("coupling margins suspiciously perfect")
	}
}

func TestFigure4Shape(t *testing.T) {
	r, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if r.CleanRaces != 0 {
		t.Errorf("clean pipeline races = %d", r.CleanRaces)
	}
	if r.RacyRaces == 0 {
		t.Error("racy pipeline produced no races")
	}
	if r.CriticalPS <= 0 || r.MinPeriodPS <= 0 {
		t.Error("degenerate adder timing")
	}
}

func TestFigure5Shape(t *testing.T) {
	r, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 3 {
		t.Fatal("too few rows")
	}
	for _, row := range r.Rows {
		if row.ErrPS <= 0 {
			t.Errorf("%d fingers: lumped model should underestimate (err %.1f ps)", row.Fingers, row.ErrPS)
		}
	}
}

func TestS2Shape(t *testing.T) {
	r, err := S2()
	if err != nil {
		t.Fatal(err)
	}
	var fail0, pass90 bool
	for _, p := range r.Points {
		if p.ExtraLUM == 0 && p.Corner.String() == "fast" && !p.MeetsSpec {
			fail0 = true
		}
		if p.ExtraLUM == 0.09 && p.Corner.String() == "fast" && p.MeetsSpec {
			pass90 = true
		}
	}
	if !fail0 || !pass90 {
		t.Errorf("S2 shape broken:\n%s", r.Report)
	}
}

func TestS3Shape(t *testing.T) {
	r, err := S3()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Result.Equivalent {
		t.Error("counter vs ring must be equivalent")
	}
}

func TestS5Shape(t *testing.T) {
	r, err := S5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerDesign) != 5 {
		t.Fatalf("designs = %d", len(r.PerDesign))
	}
	if r.FilterEffectiveness < 0.8 {
		t.Errorf("aggregate filter effectiveness %.2f below 0.8:\n%s", r.FilterEffectiveness, r.Report)
	}
	if !strings.Contains(r.Report, "REJECTS") {
		t.Error("CBC should reject at least one full-custom design")
	}
}

func TestS6Shape(t *testing.T) {
	r, err := S6()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 3 {
		t.Fatal("too few pessimism samples")
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.BoundWidthPS <= first.BoundWidthPS {
		t.Error("bound width must grow with pessimism")
	}
	if last.MinPeriodPS <= first.MinPeriodPS {
		t.Error("min period must inflate with pessimism")
	}
	if last.RacesFlagged < first.RacesFlagged {
		t.Error("race coverage must not shrink with pessimism")
	}
	if last.FalseSetupHits < first.FalseSetupHits {
		t.Error("false setup violations must not shrink with pessimism")
	}
	if last.FalseSetupHits == 0 {
		t.Error("high pessimism at an 8%-margined clock should produce false setup hits")
	}
}

// S1 and S4 are timing-sensitive; keep the assertions loose but real.
func TestS1AndS4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	s1, err := S1()
	if err != nil {
		t.Fatal(err)
	}
	if s1.CyclesPerSec < 200 {
		t.Errorf("FCL throughput %.0f cyc/s below the paper's 200", s1.CyclesPerSec)
	}
	if s1.CPUsAtPaperRate < 100 || s1.CPUsAtPaperRate > 120 {
		t.Errorf("paper-rate CPU count %.0f should be ≈116 (2e9/200/86400)", s1.CPUsAtPaperRate)
	}
	if s1.CPUsAtOurRate >= s1.CPUsAtPaperRate {
		t.Error("our rate must beat the paper's")
	}

	s4, err := S4()
	if err != nil {
		t.Fatal(err)
	}
	if len(s4.Rows) < 3 {
		t.Fatal("too few CAM sizes")
	}
	// Slowdown of the expansion grows with depth (superlinear cost),
	// and at 2048 ports it is substantial.
	lastRow := s4.Rows[len(s4.Rows)-1]
	if lastRow.Depth != 2048 {
		t.Fatalf("last depth = %d", lastRow.Depth)
	}
	if lastRow.Slowdown < 4 {
		t.Errorf("2048-port expansion slowdown %.1fx too small:\n%s", lastRow.Slowdown, s4.Report)
	}
	if lastRow.Slowdown <= s4.Rows[0].Slowdown {
		t.Error("slowdown must grow with port count")
	}
}

func TestAllRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full battery")
	}
	out, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "Figure 1", "Figure 2", "Figure 3",
		"Figure 4", "Figure 5", "S1", "S2", "S3", "S4", "S5", "S6"} {
		if !strings.Contains(out, want) {
			t.Errorf("All() output missing %q", want)
		}
	}
}

func TestA1Shape(t *testing.T) {
	r, err := A1()
	if err != nil {
		t.Fatal(err)
	}
	if r.UngatedFactor != 0 {
		t.Errorf("always-clocked gating factor = %.2f, want 0", r.UngatedFactor)
	}
	if r.GatedFactor <= 0.1 {
		t.Errorf("conditional clocking should gate >10%% of commits, got %.2f", r.GatedFactor)
	}
	if r.ClockPowerMW.Gated >= r.ClockPowerMW.Ungated {
		t.Error("gating must save clock power")
	}
	if r.SavingPct <= 0 {
		t.Error("saving percentage must be positive")
	}
}

func TestA2Shape(t *testing.T) {
	r, err := A2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var cbcRejectsAny, cbcAcceptsLibrary bool
	for _, row := range r.Rows {
		if !row.CBCAccepts {
			cbcRejectsAny = true
		}
		if row.Design == "invchain8" && row.CBCAccepts {
			cbcAcceptsLibrary = true
		}
	}
	if !cbcRejectsAny || !cbcAcceptsLibrary {
		t.Errorf("A2 shape wrong:\n%s", r.Report)
	}
}
