package designs

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/equiv"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/recognize"
	"repro/internal/rtl"
	"repro/internal/switchsim"
)

// TestCrossValidationStaticGates checks that two completely independent
// engines agree on every static gate in this package: the recognizer's
// deduced boolean function (path enumeration + BDDs) and the
// switch-level simulator (rail reachability), over all input vectors.
func TestCrossValidationStaticGates(t *testing.T) {
	type gate struct {
		name   string
		build  func(c *circuit)
		inputs []string
		out    string
	}
	gates := []gate{
		{"nand2", func(c *circuit) { AddNAND2(c, "g", "a", "b", "y") }, []string{"a", "b"}, "y"},
		{"nor2", func(c *circuit) { AddNOR2(c, "g", "a", "b", "y") }, []string{"a", "b"}, "y"},
		{"xor2", func(c *circuit) {
			AddInverter(c, "ia", "a", "an", 2, 4)
			AddInverter(c, "ib", "b", "bn", 2, 4)
			AddXOR2(c, "g", "a", "an", "b", "bn", "y")
		}, []string{"a", "b"}, "y"},
	}
	for _, g := range gates {
		c := newCircuit(g.name)
		c.DeclarePort(g.out)
		for _, in := range g.inputs {
			c.DeclarePort(in)
		}
		g.build(c)
		rec, err := recognize.Analyze(c)
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		fn, err := equiv.CircuitOutputFunction(rec, c.FindNode(g.out))
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		sim, err := switchsim.New(c)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 1<<len(g.inputs); v++ {
			env := make(map[string]bool)
			for k, in := range g.inputs {
				bit := v>>k&1 == 1
				env[in] = bit
				sim.SetQuiet(in, switchsim.Bool(bit))
			}
			sim.Settle()
			want := fn.Eval(env)
			got := sim.Get(g.out)
			if got == switchsim.X {
				t.Errorf("%s: sim X at %v", g.name, env)
				continue
			}
			if (got == switchsim.Hi) != want {
				t.Errorf("%s at %v: recognizer says %v, switch sim says %v", g.name, env, want, got)
			}
		}
	}
}

// TestCrossValidationAdderThreeWay drives random vectors through the
// transistor-level domino adder (switch sim), the FCL RTL adder
// (compiled sim), and Go's own integer addition — all three must agree.
func TestCrossValidationAdderThreeWay(t *testing.T) {
	const n = 8
	ckt, err := switchsim.New(DominoAdder(n))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := rtl.ParseString(AdderRTL(n))
	if err != nil {
		t.Fatal(err)
	}
	golden, err := rtl.NewSim(prog)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8, cin bool) bool {
		// Switch level.
		ckt.SetQuiet("phi1", switchsim.Lo)
		for i := 0; i < n; i++ {
			ckt.SetQuiet(fmt.Sprintf("a%d", i), switchsim.Bool(uint64(a)>>uint(i)&1 == 1))
			ckt.SetQuiet(fmt.Sprintf("b%d", i), switchsim.Bool(uint64(b)>>uint(i)&1 == 1))
		}
		ckt.SetQuiet("cin", switchsim.Bool(cin))
		ckt.Settle()
		ckt.SetQuiet("phi1", switchsim.Hi)
		ckt.Settle()
		var cktSum uint64
		for i := 0; i < n; i++ {
			v := ckt.Get(fmt.Sprintf("s%d", i))
			if v == switchsim.X {
				return false
			}
			if v == switchsim.Hi {
				cktSum |= 1 << uint(i)
			}
		}
		// RTL.
		_ = golden.Set("a", uint64(a))
		_ = golden.Set("b", uint64(b))
		cv := uint64(0)
		if cin {
			cv = 1
		}
		_ = golden.Set("cin", cv)
		rtlSum := golden.Get("s")
		// Integer truth.
		want := (uint64(a) + uint64(b) + cv) & 0xff
		return cktSum == want && rtlSum == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestRecognizedDominoFunctionMatchesSim cross-validates the evaluate-
// phase abstraction: for the carry gate, the recognizer's Function must
// predict the settled switch-level value during evaluate.
func TestRecognizedDominoFunctionMatchesSim(t *testing.T) {
	c := newCircuit("mc")
	for _, p := range []string{"g", "p", "cin", "cout"} {
		c.DeclarePort(p)
	}
	AddDominoCarry(c, "mc0", "g", "p", "cin", "phi1", "cout")
	rec, err := recognize.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	dyn := c.FindNode("mc0_dyn")
	fn := rec.GroupDriving(dyn).Func(dyn).Function
	if fn == nil {
		t.Fatal("no evaluate function for the carry gate")
	}
	sim, err := switchsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		env := map[string]bool{
			"g":   v&1 == 1,
			"p":   v&2 == 2,
			"cin": v&4 == 4,
		}
		sim.SetQuiet("phi1", switchsim.Lo)
		for k, b := range env {
			sim.SetQuiet(k, switchsim.Bool(b))
		}
		sim.Settle()
		sim.SetQuiet("phi1", switchsim.Hi)
		sim.Settle()
		want := fn.Eval(env)
		got := sim.Get("mc0_dyn")
		if got == switchsim.X {
			t.Errorf("dyn X at %v", env)
			continue
		}
		if (got == switchsim.Hi) != want {
			t.Errorf("at %v: recognizer predicts dyn=%v, sim says %v", env, want, got)
		}
	}
	// The carry function itself: cout = g | p&cin means dyn = !(that).
	wantFn := logic.Not(logic.Or(logic.Var("g"), logic.And(logic.Var("p"), logic.Var("cin"))))
	if !logic.Equivalent(fn, wantFn) {
		t.Errorf("carry gate function = %v, want !(g|p&cin)", fn)
	}
}

// circuit and newCircuit keep the helpers above terse.
type circuit = netlist.Circuit

func newCircuit(name string) *circuit { return netlist.New(name) }
