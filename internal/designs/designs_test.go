package designs

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
	"repro/internal/recognize"
	"repro/internal/rtl"
	"repro/internal/switchsim"
)

func TestInverterChainStructure(t *testing.T) {
	c := InverterChain(8)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Devices) != 16 {
		t.Errorf("devices = %d", len(c.Devices))
	}
	rec, err := recognize.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rec.GroupsByFamily(recognize.FamilyStaticCMOS)); got != 8 {
		t.Errorf("static groups = %d, want 8", got)
	}
}

// simAdder drives the domino adder through a precharge/evaluate cycle
// and returns the observed sum.
func simAdder(t *testing.T, s *switchsim.Sim, n int, a, b uint64, cin bool) (sum uint64, cout bool) {
	t.Helper()
	// Precharge with clock low.
	s.SetQuiet("phi1", switchsim.Lo)
	for i := 0; i < n; i++ {
		s.SetQuiet(fmt.Sprintf("a%d", i), switchsim.Bool(a>>uint(i)&1 == 1))
		s.SetQuiet(fmt.Sprintf("b%d", i), switchsim.Bool(b>>uint(i)&1 == 1))
	}
	s.SetQuiet("cin", switchsim.Bool(cin))
	s.Settle()
	// Evaluate.
	s.SetQuiet("phi1", switchsim.Hi)
	s.Settle()
	for i := 0; i < n; i++ {
		v := s.Get(fmt.Sprintf("s%d", i))
		if v == switchsim.X {
			t.Fatalf("s%d is X for a=%d b=%d cin=%v", i, a, b, cin)
		}
		if v == switchsim.Hi {
			sum |= 1 << uint(i)
		}
	}
	return sum, s.Get("cout") == switchsim.Hi
}

func TestDominoAdderComputesCorrectly(t *testing.T) {
	const n = 8
	c := DominoAdder(n)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := switchsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b uint64
		cin  bool
	}{
		{0, 0, false}, {1, 1, false}, {255, 1, false}, {0xaa, 0x55, true},
		{0x7f, 0x01, false}, {0xff, 0xff, true}, {3, 200, false},
	}
	for _, cse := range cases {
		sum, cout := simAdder(t, s, n, cse.a, cse.b, cse.cin)
		want := cse.a + cse.b
		if cse.cin {
			want++
		}
		if sum != want&0xff || cout != (want>>8&1 == 1) {
			t.Errorf("add(%d,%d,%v) = %d cout=%v, want %d cout=%v",
				cse.a, cse.b, cse.cin, sum, cout, want&0xff, want>>8&1 == 1)
		}
	}
}

// Property: the 8-bit domino adder matches integer addition on random
// operands (the switch-level sim is the oracle-free ground truth here).
func TestDominoAdderProperty(t *testing.T) {
	const n = 8
	s, err := switchsim.New(DominoAdder(n))
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8, cin bool) bool {
		sum, cout := simAdder(t, s, n, uint64(a), uint64(b), cin)
		want := uint64(a) + uint64(b)
		if cin {
			want++
		}
		return sum == want&0xff && cout == (want>>8&1 == 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDominoAdderRecognition(t *testing.T) {
	rec, err := recognize.Analyze(DominoAdder(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rec.GroupsByFamily(recognize.FamilyDynamic)); got != 4 {
		t.Errorf("dynamic groups = %d, want 4 (one carry gate per bit); %s", got, rec.Summary())
	}
	if !rec.IsClock(rec.Circuit.FindNode("phi1")) {
		t.Error("phi1 not recognized as clock")
	}
	if len(rec.DynamicNodes) != 4 {
		t.Errorf("dynamic nodes = %d", len(rec.DynamicNodes))
	}
}

func TestLatchPipelineRecognition(t *testing.T) {
	rec, err := recognize.Analyze(LatchPipeline(4, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Latches) != 4 {
		t.Errorf("latches = %d, want 4; %s", len(rec.Latches), rec.Summary())
	}
}

func TestSRAMArrayStructure(t *testing.T) {
	c := SRAMArray(4, 8, 0.045)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Devices) != 4*8*6 {
		t.Errorf("devices = %d, want %d", len(c.Devices), 4*8*6)
	}
	for _, d := range c.Devices {
		if d.ExtraL != 0.045 {
			t.Fatalf("device %s missing channel lengthening", d.Name)
		}
	}
	rec, err := recognize.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	// The shared bitlines channel-connect every cell in a column, so
	// conservative recognition sees one storage structure per column
	// (the bl-side and blb-side CCCs form one feedback loop), holding
	// all four words' state nodes.
	if len(rec.Latches) != 8 {
		t.Errorf("latches = %d, want 8 (one per column)", len(rec.Latches))
	}
	stateNodes := 0
	for _, l := range rec.Latches {
		stateNodes += len(l.StateNodes)
	}
	if stateNodes < 4*8*2 {
		t.Errorf("state nodes = %d, want ≥64 (q and qn of every cell)", stateNodes)
	}
}

func TestPassMuxSteering(t *testing.T) {
	c := PassMux(4)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := switchsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	for sel := 0; sel < 4; sel++ {
		for i := 0; i < 4; i++ {
			s.SetQuiet(fmt.Sprintf("in%d", i), switchsim.Bool(i == 2))
			s.SetQuiet(fmt.Sprintf("s%d", i), switchsim.Bool(i == sel))
			s.SetQuiet(fmt.Sprintf("sn%d", i), switchsim.Bool(i != sel))
		}
		s.Settle()
		want := switchsim.Bool(sel == 2)
		if got := s.Get("y"); got != want {
			t.Errorf("mux sel=%d: y=%v want %v", sel, got, want)
		}
	}
}

func TestPipelineRTLRuns(t *testing.T) {
	prog, err := rtl.ParseString(PipelineRTL())
	if err != nil {
		t.Fatal(err)
	}
	s, err := rtl.NewSim(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Program: r1 = r0 + r0... load a couple of immediate-ish ops.
	// op 6 = load-immediate-ish: {vb[11:0], imm}.
	// Encode: op[15:13] rd[12:10] ra[9:7] rb[6:4] imm[3:0]
	enc := func(op, rd, ra, rb, imm uint64) uint64 {
		return op<<13 | rd<<10 | ra<<7 | rb<<4 | imm
	}
	img := []uint64{
		enc(6, 1, 0, 0, 5), // r1 = imm 5
		enc(6, 2, 0, 0, 3), // r2 = imm 3
		enc(0, 3, 1, 2, 0), // r3 = r1 + r2
		enc(1, 4, 3, 2, 0), // r4 = r3 - r2
	}
	if err := s.LoadMem("imem", img); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("run", 1); err != nil {
		t.Fatal(err)
	}
	s.Run(8)
	if v, _ := s.GetMem("regs", 3); v != 8 {
		t.Errorf("r3 = %d, want 8", v)
	}
	if v, _ := s.GetMem("regs", 4); v != 5 {
		t.Errorf("r4 = %d, want 5", v)
	}
	if s.Get("pc_out") == 0 {
		t.Error("pc did not advance")
	}
}

func TestCamNativeVsExpandedAgree(t *testing.T) {
	// Both CAM encodings must behave identically (that is the point of
	// the S4 benchmark: same function, different cost).
	for _, depth := range []int{8, 32} {
		nat, err := rtl.ParseString(CamNativeRTL(depth))
		if err != nil {
			t.Fatal(err)
		}
		exp, err := rtl.ParseString(CamExpandedRTL(depth))
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		sn, err := rtl.NewSim(nat)
		if err != nil {
			t.Fatal(err)
		}
		se, err := rtl.NewSim(exp)
		if err != nil {
			t.Fatal(err)
		}
		drive := func(s *rtl.Sim, sig string, v uint64) {
			if err := s.Set(sig, v); err != nil {
				t.Fatal(err)
			}
		}
		// Write a few entries into both, then probe.
		writes := []struct{ addr, data uint64 }{{1, 0xaaaa}, {5, 0x1234}, {7, 0xffff}}
		for _, w := range writes {
			for _, s := range []*rtl.Sim{sn, se} {
				drive(s, "we", 1)
				drive(s, "waddr", w.addr)
				drive(s, "wdata", w.data)
				s.Cycle()
			}
		}
		for _, s := range []*rtl.Sim{sn, se} {
			drive(s, "we", 0)
		}
		probes := []uint64{0xaaaa, 0x1234, 0xffff, 0, 0xbbbb}
		for _, key := range probes {
			drive(sn, "key", key)
			drive(se, "key", key)
			if sn.Get("hit") != se.Get("hit") {
				t.Errorf("depth %d key %#x: native=%d expanded=%d",
					depth, key, sn.Get("hit"), se.Get("hit"))
			}
		}
	}
}

func TestExpandedCamIsMuchBigger(t *testing.T) {
	nat, _ := rtl.ParseString(CamNativeRTL(64))
	exp, _ := rtl.ParseString(CamExpandedRTL(64))
	dn, err := rtl.Elaborate(nat)
	if err != nil {
		t.Fatal(err)
	}
	de, err := rtl.Elaborate(exp)
	if err != nil {
		t.Fatal(err)
	}
	if len(de.Assigns) < 10*len(dn.Assigns) {
		t.Errorf("expanded CAM should dwarf the native one: %d vs %d assigns",
			len(de.Assigns), len(dn.Assigns))
	}
}

func TestMod5PairParses(t *testing.T) {
	for _, src := range []string{Mod5CounterRTL(), Mod5RingRTL(), AdderRTL(8)} {
		prog, err := rtl.ParseString(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rtl.NewSim(prog); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAdderRTLComputes(t *testing.T) {
	prog, _ := rtl.ParseString(AdderRTL(8))
	s, err := rtl.NewSim(prog)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Set("a", 200)
	_ = s.Set("b", 100)
	_ = s.Set("cin", 1)
	if got := s.Get("s"); got != (200+100+1)&0xff {
		t.Errorf("s = %d", got)
	}
	if got := s.Get("cout"); got != 1 {
		t.Errorf("cout = %d", got)
	}
}

func TestNOR2Gate(t *testing.T) {
	c := netListWithPorts("nor2", "a", "b", "y")
	AddNOR2(c, "g", "a", "b", "y")
	s, err := switchsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a, b, want switchsim.Value }{
		{switchsim.Lo, switchsim.Lo, switchsim.Hi},
		{switchsim.Hi, switchsim.Lo, switchsim.Lo},
		{switchsim.Lo, switchsim.Hi, switchsim.Lo},
		{switchsim.Hi, switchsim.Hi, switchsim.Lo},
	}
	for _, cse := range cases {
		s.SetQuiet("a", cse.a)
		s.SetQuiet("b", cse.b)
		s.Settle()
		if got := s.Get("y"); got != cse.want {
			t.Errorf("nor(%v,%v) = %v", cse.a, cse.b, got)
		}
	}
}

// netListWithPorts builds an empty circuit with declared ports.
func netListWithPorts(name string, ports ...string) *netlist.Circuit {
	c := netlist.New(name)
	for _, p := range ports {
		c.DeclarePort(p)
	}
	return c
}

func TestDCVSLComparator(t *testing.T) {
	const n = 4
	c := DCVSLComparator(n)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rec, err := recognize.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	// Every stage pair — per-bit XOR/XNOR and the output merge — is
	// recognized as DCVSL (2 groups per pair).
	if got := len(rec.GroupsByFamily(recognize.FamilyDCVSL)); got != 2*(n+1) {
		t.Errorf("DCVSL groups = %d, want %d; %s", got, 2*(n+1), rec.Summary())
	}
	s, err := switchsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	drive := func(a, b uint64) {
		for i := 0; i < n; i++ {
			abit := a>>uint(i)&1 == 1
			bbit := b>>uint(i)&1 == 1
			s.SetQuiet(fmt.Sprintf("a%d", i), switchsim.Bool(abit))
			s.SetQuiet(fmt.Sprintf("an%d", i), switchsim.Bool(!abit))
			s.SetQuiet(fmt.Sprintf("b%d", i), switchsim.Bool(bbit))
			s.SetQuiet(fmt.Sprintf("bn%d", i), switchsim.Bool(!bbit))
		}
		s.Settle()
	}
	cases := []struct{ a, b uint64 }{
		{0, 0}, {5, 5}, {15, 15}, {0, 1}, {5, 10}, {15, 14}, {8, 0},
	}
	for _, cse := range cases {
		drive(cse.a, cse.b)
		wantEq := switchsim.Bool(cse.a == cse.b)
		wantEqn := switchsim.Bool(cse.a != cse.b)
		if got := s.Get("eq"); got != wantEq {
			t.Errorf("cmp(%d,%d): eq=%v want %v", cse.a, cse.b, got, wantEq)
		}
		if got := s.Get("eqn"); got != wantEqn {
			t.Errorf("cmp(%d,%d): eqn=%v want %v", cse.a, cse.b, got, wantEqn)
		}
	}
}

func TestRegisterFile(t *testing.T) {
	const words, bits = 4, 4
	c := RegisterFile(words, bits)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rec, err := recognize.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	// The shared read bitline channel-connects every cell in a bit
	// column (as in the SRAM array), so recognition sees one storage
	// loop per column holding all words' state nodes.
	if len(rec.Latches) != bits {
		t.Errorf("latches = %d, want %d (one per bit column)", len(rec.Latches), bits)
	}
	stateNodes := 0
	for _, l := range rec.Latches {
		stateNodes += len(l.StateNodes)
	}
	if stateNodes < words*bits {
		t.Errorf("state nodes = %d, want ≥%d", stateNodes, words*bits)
	}
	// Write strobes follow the clk_* convention and must be clocks.
	if !rec.IsClock(c.FindNode("clk_w0")) {
		t.Error("write strobe not recognized as a clock")
	}

	s, err := switchsim.New(c)
	if err != nil {
		t.Fatal(err)
	}
	setWord := func(w int, on bool) {
		for i := 0; i < words; i++ {
			s.SetQuiet(fmt.Sprintf("clk_w%d", i), switchsim.Bool(on && i == w))
			s.SetQuiet(fmt.Sprintf("clk_wn%d", i), switchsim.Bool(!(on && i == w)))
		}
	}
	selWord := func(w int) {
		for i := 0; i < words; i++ {
			s.SetQuiet(fmt.Sprintf("rsel%d", i), switchsim.Bool(i == w))
			s.SetQuiet(fmt.Sprintf("rseln%d", i), switchsim.Bool(i != w))
		}
	}
	write := func(w int, v uint64) {
		for b := 0; b < bits; b++ {
			s.SetQuiet(fmt.Sprintf("d%d", b), switchsim.Bool(v>>uint(b)&1 == 1))
		}
		setWord(w, true)
		s.Settle()
		setWord(w, false)
		s.Settle()
	}
	read := func(w int) uint64 {
		selWord(w)
		s.Settle()
		var v uint64
		for b := 0; b < bits; b++ {
			if s.Get(fmt.Sprintf("q%d", b)) == switchsim.Hi {
				v |= 1 << uint(b)
			}
		}
		return v
	}
	// Control lines are never X in operation: deselect everything
	// before the first write.
	setWord(-1, false)
	selWord(-1)
	s.Settle()
	write(0, 0xa)
	write(1, 0x5)
	write(3, 0xf)
	if got := read(0); got != 0xa {
		t.Errorf("word0 = %#x, want 0xa", got)
	}
	if got := read(1); got != 0x5 {
		t.Errorf("word1 = %#x, want 0x5", got)
	}
	if got := read(3); got != 0xf {
		t.Errorf("word3 = %#x, want 0xf", got)
	}
	// Overwrite and re-read; word 1 must survive word 0's write.
	write(0, 0x3)
	if got := read(0); got != 0x3 {
		t.Errorf("word0 after rewrite = %#x, want 0x3", got)
	}
	if got := read(1); got != 0x5 {
		t.Errorf("word1 disturbed: %#x", got)
	}
}
