// Package designs generates the synthetic full-custom workloads the
// toolkit's experiments run on.
//
// The paper's evaluation vehicles — ALPHA and StrongARM blocks — are
// proprietary, so per the reproduction's substitution rule this package
// builds open equivalents in the same circuit styles the paper names
// (§2): footed domino carry chains, static complementary gates,
// transmission-gate latches, pass-transistor muxes, SRAM/CAM arrays, and
// FCL RTL models of pipeline datapaths (including the §4.1 "2000 port
// CAM" in both native-primitive and gate-level-expanded form).
//
// Every generator is parametric so benches can sweep size.
package designs

import (
	"fmt"
	"strings"

	"repro/internal/netlist"
)

// sized device width constants (µm) for the 0.75 µm process family.
const (
	wInvN  = 2.0
	wInvP  = 4.0
	wStkN  = 4.0
	wStkP  = 6.0
	wDomN  = 6.0
	wPre   = 4.0
	wFoot  = 8.0
	wPass  = 4.0
	wWeakN = 1.0
	wWeakP = 2.0
	lMin   = 0.75
)

// AddInverter appends a static inverter to c.
func AddInverter(c *netlist.Circuit, name, in, out string, wn, wp float64) {
	c.NMOS(name+"_n", in, "vss", out, wn, lMin)
	c.PMOS(name+"_p", in, "vdd", out, wp, lMin)
}

// AddNAND2 appends a static 2-input NAND.
func AddNAND2(c *netlist.Circuit, name, a, b, y string) {
	mid := name + "_m"
	c.NMOS(name+"_na", a, mid, y, wStkN, lMin)
	c.NMOS(name+"_nb", b, "vss", mid, wStkN, lMin)
	c.PMOS(name+"_pa", a, "vdd", y, wStkP, lMin)
	c.PMOS(name+"_pb", b, "vdd", y, wStkP, lMin)
}

// AddNOR2 appends a static 2-input NOR.
func AddNOR2(c *netlist.Circuit, name, a, b, y string) {
	mid := name + "_m"
	c.NMOS(name+"_na", a, "vss", y, wStkN, lMin)
	c.NMOS(name+"_nb", b, "vss", y, wStkN, lMin)
	c.PMOS(name+"_pa", a, "vdd", mid, wStkP, lMin)
	c.PMOS(name+"_pb", b, mid, y, wStkP, lMin)
}

// AddXOR2 appends a static complementary XOR (y = a ⊕ b) given both
// polarities of the inputs.
func AddXOR2(c *netlist.Circuit, name, a, an, b, bn, y string) {
	x1, x2, x3 := name+"_x1", name+"_x2", name+"_x3"
	c.NMOS(name+"_n1", a, x1, y, wStkN, lMin)
	c.NMOS(name+"_n2", b, "vss", x1, wStkN, lMin)
	c.NMOS(name+"_n3", an, x2, y, wStkN, lMin)
	c.NMOS(name+"_n4", bn, "vss", x2, wStkN, lMin)
	c.PMOS(name+"_p1", a, "vdd", x3, wStkP, lMin)
	c.PMOS(name+"_p2", b, "vdd", x3, wStkP, lMin)
	c.PMOS(name+"_p3", an, x3, y, wStkP, lMin)
	c.PMOS(name+"_p4", bn, x3, y, wStkP, lMin)
}

// AddTGLatch appends a transmission-gate latch with weak keeper:
// d →(ck/ckn)→ m → q, weak feedback q → m.
func AddTGLatch(c *netlist.Circuit, name, d, ck, ckn, q string) {
	m := name + "_m"
	c.NMOS(name+"_pn", ck, d, m, wPass, lMin)
	c.PMOS(name+"_pp", ckn, d, m, wPass, lMin)
	AddInverter(c, name+"_fwd", m, q, wInvN, wInvP)
	c.NMOS(name+"_fbn", q, "vss", m, wWeakN, lMin)
	c.PMOS(name+"_fbp", q, "vdd", m, wWeakP, lMin)
}

// AddDominoCarry appends one footed domino Manchester-style carry gate:
// cout = g | (p & cin), built as precharged node + output buffer. The
// clock clk precharges low-phase and evaluates high-phase.
func AddDominoCarry(c *netlist.Circuit, name, g, p, cin, clk, cout string) {
	dyn := name + "_dyn"
	x1 := name + "_x1"
	foot := name + "_foot"
	c.PMOS(name+"_pre", clk, "vdd", dyn, wPre, lMin)
	// Generate branch: g discharges through the foot.
	c.NMOS(name+"_ng", g, foot, dyn, wDomN, lMin)
	// Propagate branch: p & cin in series.
	c.NMOS(name+"_np", p, x1, dyn, wDomN, lMin)
	c.NMOS(name+"_nc", cin, foot, x1, wDomN, lMin)
	// Shared clocked foot.
	c.NMOS(name+"_nf", clk, "vss", foot, wFoot, lMin)
	// Domino output buffer.
	AddInverter(c, name+"_buf", dyn, cout, wInvN, wInvP)
	// Weak keeper holds the dynamic node through the evaluate window.
	c.PMOS(name+"_keep", cout, "vdd", dyn, wWeakN, 1.5*lMin)
}

// InverterChain returns a chain of n inverters from "in" to "out".
func InverterChain(n int) *netlist.Circuit {
	c := netlist.New(fmt.Sprintf("invchain%d", n))
	c.DeclarePort("in")
	prev := "in"
	for i := 0; i < n; i++ {
		next := fmt.Sprintf("n%d", i)
		if i == n-1 {
			next = "out"
		}
		AddInverter(c, fmt.Sprintf("u%d", i), prev, next, wInvN, wInvP)
		prev = next
	}
	c.DeclarePort("out")
	return c
}

// DominoAdder returns an n-bit adder in the ALPHA style: static P/G
// generation (XOR/NAND), a footed-domino Manchester carry chain clocked
// by phi1, and static XOR sum gates. Ports: a0..a(n-1), b0..b(n-1),
// cin, phi1 → s0..s(n-1), cout.
func DominoAdder(n int) *netlist.Circuit {
	c := netlist.New(fmt.Sprintf("domino_adder%d", n))
	for i := 0; i < n; i++ {
		c.DeclarePort(fmt.Sprintf("a%d", i))
		c.DeclarePort(fmt.Sprintf("b%d", i))
	}
	c.DeclarePort("cin")
	c.DeclarePort("phi1")
	carry := "cin"
	for i := 0; i < n; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		an, bn := fmt.Sprintf("an%d", i), fmt.Sprintf("bn%d", i)
		g, p, pn := fmt.Sprintf("g%d", i), fmt.Sprintf("p%d", i), fmt.Sprintf("pn%d", i)
		gn := fmt.Sprintf("gn%d", i)
		AddInverter(c, "ia"+itoa(i), a, an, wInvN, wInvP)
		AddInverter(c, "ib"+itoa(i), b, bn, wInvN, wInvP)
		// p = a ⊕ b ; g = a & b (NAND + INV).
		AddXOR2(c, "xp"+itoa(i), a, an, b, bn, p)
		AddInverter(c, "ipn"+itoa(i), p, pn, wInvN, wInvP)
		AddNAND2(c, "ng"+itoa(i), a, b, gn)
		AddInverter(c, "ig"+itoa(i), gn, g, wInvN, wInvP)
		// Carry gate.
		cnext := fmt.Sprintf("c%d", i+1)
		if i == n-1 {
			cnext = "cout"
		}
		AddDominoCarry(c, "mc"+itoa(i), g, p, carry, "phi1", cnext)
		// Sum: s = p ⊕ c (needs carry complement).
		cn := fmt.Sprintf("cn%d", i)
		AddInverter(c, "ic"+itoa(i), carry, cn, wInvN, wInvP)
		s := fmt.Sprintf("s%d", i)
		AddXOR2(c, "xs"+itoa(i), p, pn, carry, cn, s)
		c.DeclarePort(s)
		carry = cnext
	}
	c.DeclarePort("cout")
	return c
}

// LatchPipeline returns k alternating phi1/phi2 transmission-gate latch
// stages separated by inverter pairs — the clean two-phase pipeline of
// Figure 4. If racy is true, every latch is clocked by phi1, creating
// the same-phase race the timing verifier must catch.
func LatchPipeline(k int, racy bool) *netlist.Circuit {
	name := "pipe"
	if racy {
		name = "racy_pipe"
	}
	c := netlist.New(fmt.Sprintf("%s%d", name, k))
	c.DeclarePort("d")
	prev := "d"
	for i := 0; i < k; i++ {
		ck, ckn := "phi1", "phi1_n"
		if !racy && i%2 == 1 {
			ck, ckn = "phi2", "phi2_n"
		}
		// Clocks are part of the cell's interface (DeclarePort is
		// idempotent); leaving them undeclared reads as floating gates
		// to the linter.
		c.DeclarePort(ck)
		c.DeclarePort(ckn)
		q := fmt.Sprintf("q%d", i)
		AddTGLatch(c, fmt.Sprintf("l%d", i), prev, ck, ckn, q)
		// One inverter pair of logic between stages.
		b1 := fmt.Sprintf("b%da", i)
		b2 := fmt.Sprintf("b%db", i)
		AddInverter(c, fmt.Sprintf("u%da", i), q, b1, wInvN, wInvP)
		AddInverter(c, fmt.Sprintf("u%db", i), b1, b2, wInvN, wInvP)
		prev = b2
	}
	c.DeclarePort(prev)
	return c
}

// SRAMCell appends a 6T cell with the given bit/word lines.
func SRAMCell(c *netlist.Circuit, name, wl, bl, blb string, extraL float64) {
	q, qn := name+"_q", name+"_qn"
	add := func(dev *netlist.Device) { dev.ExtraL = extraL }
	add(c.NMOS(name+"_n1", qn, "vss", q, wInvN, lMin))
	add(c.PMOS(name+"_p1", qn, "vdd", q, wInvP/2, lMin))
	add(c.NMOS(name+"_n2", q, "vss", qn, wInvN, lMin))
	add(c.PMOS(name+"_p2", q, "vdd", qn, wInvP/2, lMin))
	add(c.NMOS(name+"_a1", wl, bl, q, wPass, lMin))
	add(c.NMOS(name+"_a2", wl, blb, qn, wPass, lMin))
}

// SRAMArray returns a words×bits cell array with shared bit/word lines.
// extraL applies the §3 channel lengthening to every array device.
func SRAMArray(words, bitsPerWord int, extraL float64) *netlist.Circuit {
	c := netlist.New(fmt.Sprintf("sram%dx%d", words, bitsPerWord))
	for w := 0; w < words; w++ {
		wl := fmt.Sprintf("wl%d", w)
		c.DeclarePort(wl)
		for b := 0; b < bitsPerWord; b++ {
			bl, blb := fmt.Sprintf("bl%d", b), fmt.Sprintf("blb%d", b)
			if w == 0 {
				c.DeclarePort(bl)
				c.DeclarePort(blb)
			}
			SRAMCell(c, fmt.Sprintf("cell_%d_%d", w, b), wl, bl, blb, extraL)
		}
	}
	return c
}

// PassMux returns an n-way transmission-gate mux (one-hot selects)
// with a static output buffer: in0..in(n-1), s0..s(n-1), sn0.. → y.
func PassMux(n int) *netlist.Circuit {
	c := netlist.New(fmt.Sprintf("tgmux%d", n))
	for i := 0; i < n; i++ {
		in := fmt.Sprintf("in%d", i)
		s, sn := fmt.Sprintf("s%d", i), fmt.Sprintf("sn%d", i)
		c.DeclarePort(in)
		c.DeclarePort(s)
		c.DeclarePort(sn)
		c.NMOS(fmt.Sprintf("tn%d", i), s, in, "m", wPass, lMin)
		c.PMOS(fmt.Sprintf("tp%d", i), sn, in, "m", wPass, lMin)
	}
	AddInverter(c, "ob1", "m", "mb", wInvN, wInvP)
	AddInverter(c, "ob2", "mb", "y", wInvN, wInvP)
	c.DeclarePort("y")
	return c
}

// itoa is strconv.Itoa sugar kept local for generator-name brevity.
func itoa(i int) string { return fmt.Sprintf("%d", i) }

// PipelineRTL returns the FCL source of a small two-phase pipelined
// datapath — the RTL-simulation workload for the S1 throughput
// experiment. It is a 16-bit, 8-register machine executing a tiny ALU
// ISA from a 64-word instruction memory, with conditional clocking on
// the writeback stage (§3) and a CAM-based 16-entry translation buffer
// on the load path.
func PipelineRTL() string {
	return `
module top(run -> pc_out[6], result[16], tlb_hit)
# Architectural state.
reg pc[6] @phi1
reg ir[16] @phi1
mem imem 64 16
mem regs 8 16
cam tlb 16 10

# Fetch (phi1): pc advances while running.
on phi1 if run: pc <= pc + 1

# Decode fields of ir: [15:13]=op [12:10]=rd [9:7]=ra [6:4]=rb [3:0]=imm
wire op[3]
wire rd[3]
wire ra[3]
wire rb[3]
wire imm[4]
assign op = ir[15:13]
assign rd = ir[12:10]
assign ra = ir[9:7]
assign rb = ir[6:4]
assign imm = ir[3:0]

# Register read.
wire va[16]
wire vb[16]
assign va = regs[ra]
assign vb = regs[rb]

# Execute.
wire alu[16]
assign alu = (op == 0) ? va + vb : (op == 1) ? va - vb : (op == 2) ? (va & vb) : (op == 3) ? (va | vb) : (op == 4) ? (va ^ vb) : (op == 5) ? (va << 1) : {vb[11:0], imm}

# TLB lookup on the load path.
assign tlb_hit = tlb.hit(alu[9:0])

# Fetch on phi1 (same edge as the pc increment: both see the old pc,
# so instruction 0 executes first); write back on phi2 under condition
# (conditional clocking: no write for op 7 / branches).
on phi1 if run: ir <= imem[pc]
on phi2 if run & (op != 7): regs[rd] <= alu

assign pc_out = pc
assign result = alu
endmodule
`
}

// CamNativeRTL returns FCL source using the native CAM primitive with
// the given port count (depth) — the §4.1 structure "just difficult to
// code in standard languages".
func CamNativeRTL(depth int) string {
	return fmt.Sprintf(`
module top(key[16], waddr[%d], wdata[16], we -> hit)
cam tags %d 16
on phi1 if we: tags[waddr] <= wdata
assign hit = tags.hit(key)
endmodule
`, addrBits(depth), depth)
}

// CamExpandedRTL returns FCL source for the same CAM built the way a
// standard HDL forces: a memory plus an explicit per-entry comparator
// tree (here unrolled, since FCL — like the RTL languages the paper
// complains about — has no dynamic iteration over entries).
func CamExpandedRTL(depth int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module top(key[16], waddr[%d], wdata[16], we -> hit)\n", addrBits(depth))
	fmt.Fprintf(&b, "mem tags %d 16\n", depth)
	fmt.Fprintf(&b, "mem valid %d 1\n", depth)
	fmt.Fprintf(&b, "on phi1 if we: tags[waddr] <= wdata\n")
	fmt.Fprintf(&b, "on phi1 if we: valid[waddr] <= 1\n")
	// Comparator per entry, then an OR reduction tree.
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "wire m%d\n", i)
		fmt.Fprintf(&b, "assign m%d = valid[%d] & (tags[%d] == key)\n", i, i, i)
	}
	// Binary OR tree.
	level := make([]string, depth)
	for i := range level {
		level[i] = fmt.Sprintf("m%d", i)
	}
	gen := 0
	for len(level) > 1 {
		var next []string
		for i := 0; i+1 < len(level); i += 2 {
			w := fmt.Sprintf("or%d_%d", gen, i/2)
			fmt.Fprintf(&b, "wire %s\n", w)
			fmt.Fprintf(&b, "assign %s = %s | %s\n", w, level[i], level[i+1])
			next = append(next, w)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		gen++
	}
	fmt.Fprintf(&b, "assign hit = %s\n", level[0])
	fmt.Fprintf(&b, "endmodule\n")
	return b.String()
}

// addrBits returns the address width for a depth.
func addrBits(depth int) int {
	b := 1
	for (1 << uint(b)) < depth {
		b++
	}
	return b
}

// Mod5CounterRTL and Mod5RingRTL are the §4.1 equivalence example pair.
func Mod5CounterRTL() string {
	return `
module top(tick -> fire)
reg cnt[3] @phi1
on phi1 if tick: cnt <= (cnt == 4) ? 0 : cnt + 1
assign fire = tick & (cnt == 4)
endmodule
`
}

// Mod5RingRTL is the shift-register re-encoding of Mod5CounterRTL.
func Mod5RingRTL() string {
	return `
module top(tick -> fire)
reg ring[5] @phi1 = 1
on phi1 if tick: ring <= {ring[3:0], ring[4]}
assign fire = tick & ring[4]
endmodule
`
}

// AdderRTL returns FCL for an n-bit adder (RTL reference for the domino
// adder's equivalence and shadow checks). A phi1-registered copy of the
// sum gives the design a clock phase so shadow-mode simulation can bind
// the circuit's precharge clock. Ports a,b,cin → s, cout, sreg.
func AdderRTL(n int) string {
	return fmt.Sprintf(`
module top(a[%d], b[%d], cin -> s[%d], cout, sreg[%d])
wire t[%d]
reg sr[%d] @phi1
assign t = {0, a} + {0, b} + {0, cin}
assign s = t[%d:0]
assign cout = t[%d]
on phi1: sr <= s
assign sreg = sr
endmodule
`, n, n, n, n, n+1, n, n-1, n)
}

// PipelineRTLAlwaysClocked is PipelineRTL with conditional clocking
// removed: every register and the register file clock every cycle, as a
// naive implementation would. The A1 ablation compares the two.
func PipelineRTLAlwaysClocked() string {
	src := PipelineRTL()
	src = strings.ReplaceAll(src, "on phi1 if run: pc <= pc + 1",
		"on phi1: pc <= run ? pc + 1 : pc")
	src = strings.ReplaceAll(src, "on phi1 if run: ir <= imem[pc]",
		"on phi1: ir <= run ? imem[pc] : ir")
	src = strings.ReplaceAll(src, "on phi2 if run & (op != 7): regs[rd] <= alu",
		"on phi2: regs[rd] <= (run & (op != 7)) ? alu : regs[rd]")
	return src
}

// DCVSLComparator returns an n-bit equality comparator in differential
// cascode voltage switch logic (§2's "differential cascode voltage swing
// logic (DCVSL)"): per-bit dual-rail XOR/XNOR stages with cross-coupled
// PMOS pull-ups, merged by a dual-rail NOR tree. Ports: a0.., an0..,
// b0.., bn0.. (true/complement input rails) → eq, eqn.
//
// DCVSL sizing discipline: every NMOS tree decisively overpowers the
// cross-coupled keepers, or the gate cannot switch.
func DCVSLComparator(n int) *netlist.Circuit {
	c := netlist.New(fmt.Sprintf("dcvsl_cmp%d", n))
	const (
		wTree = 12.0
		wKeep = 4.0
	)
	// Per-bit dual-rail XNOR: x_i high when a_i == b_i.
	for i := 0; i < n; i++ {
		a, an := fmt.Sprintf("a%d", i), fmt.Sprintf("an%d", i)
		b, bn := fmt.Sprintf("b%d", i), fmt.Sprintf("bn%d", i)
		for _, p := range []string{a, an, b, bn} {
			c.DeclarePort(p)
		}
		x, xn := fmt.Sprintf("x%d", i), fmt.Sprintf("xn%d", i)
		// Cross-coupled pull-ups.
		c.PMOS(fmt.Sprintf("cp%d_1", i), xn, "vdd", x, wKeep, lMin)
		c.PMOS(fmt.Sprintf("cp%d_2", i), x, "vdd", xn, wKeep, lMin)
		// x pulled low when a≠b: (a & bn) | (an & b).
		m1, m2 := fmt.Sprintf("m%d_1", i), fmt.Sprintf("m%d_2", i)
		c.NMOS(fmt.Sprintf("nd%d_1", i), a, m1, x, wTree, lMin)
		c.NMOS(fmt.Sprintf("nd%d_2", i), bn, "vss", m1, wTree, lMin)
		c.NMOS(fmt.Sprintf("nd%d_3", i), an, m2, x, wTree, lMin)
		c.NMOS(fmt.Sprintf("nd%d_4", i), b, "vss", m2, wTree, lMin)
		// xn pulled low when a==b: (a & b) | (an & bn).
		m3, m4 := fmt.Sprintf("m%d_3", i), fmt.Sprintf("m%d_4", i)
		c.NMOS(fmt.Sprintf("ne%d_1", i), a, m3, xn, wTree, lMin)
		c.NMOS(fmt.Sprintf("ne%d_2", i), b, "vss", m3, wTree, lMin)
		c.NMOS(fmt.Sprintf("ne%d_3", i), an, m4, xn, wTree, lMin)
		c.NMOS(fmt.Sprintf("ne%d_4", i), bn, "vss", m4, wTree, lMin)
	}
	// Dual-rail merge: eq = AND of all x_i. eq pulled low when any xn_i
	// high... dual-rail NOR/NAND: eq low when OR(xn_i); eqn low when
	// AND(x_i).
	c.DeclarePort("eq")
	c.DeclarePort("eqn")
	c.PMOS("cpo_1", "eqn", "vdd", "eq", wKeep, lMin)
	c.PMOS("cpo_2", "eq", "vdd", "eqn", wKeep, lMin)
	for i := 0; i < n; i++ {
		// eq low when any bit differs (xn_i high... the difference rail
		// is x_i low; use xn? x high means equal). eq pulled down by
		// any "difference" literal: gate = xn is wrong sense; a bit
		// differs when xn_i is... xn low means a==b. Use per-bit
		// "diff" rail: diff_i = NOT x_i is xn_i when rails settle, so
		// gate eq's pulldown with xn_i? xn_i is high when a≠b. Yes.
		c.NMOS(fmt.Sprintf("no%d", i), fmt.Sprintf("xn%d", i), "vss", "eq", wTree, lMin)
	}
	// eqn low when all bits equal: series chain of x_i.
	prev := "eqn"
	for i := 0; i < n; i++ {
		next := fmt.Sprintf("mo%d", i)
		if i == n-1 {
			next = "vss"
		}
		c.NMOS(fmt.Sprintf("na%d", i), fmt.Sprintf("x%d", i), next, prev, wTree, lMin)
		prev = next
	}
	return c
}

// RegisterFile returns a words×bits transistor-level register file:
// transmission-gate latch cells written by per-word write strobes
// (clk_w<w>) and read through a pass-mux per bit selected by rsel<w>
// one-hot lines, with buffered outputs. Ports: d<b>, clk_w<w>,
// clk_wn<w>, rsel<w>, rseln<w> → q<b>.
func RegisterFile(words, bits int) *netlist.Circuit {
	c := netlist.New(fmt.Sprintf("regfile%dx%d", words, bits))
	for b := 0; b < bits; b++ {
		c.DeclarePort(fmt.Sprintf("d%d", b))
	}
	for w := 0; w < words; w++ {
		c.DeclarePort(fmt.Sprintf("clk_w%d", w))
		c.DeclarePort(fmt.Sprintf("clk_wn%d", w))
		c.DeclarePort(fmt.Sprintf("rsel%d", w))
		c.DeclarePort(fmt.Sprintf("rseln%d", w))
	}
	for w := 0; w < words; w++ {
		ck := fmt.Sprintf("clk_w%d", w)
		ckn := fmt.Sprintf("clk_wn%d", w)
		for b := 0; b < bits; b++ {
			cell := fmt.Sprintf("c_%d_%d", w, b)
			q := fmt.Sprintf("q_%d_%d", w, b)
			AddTGLatch(c, cell, fmt.Sprintf("d%d", b), ck, ckn, q)
			// Read port: tgate from the cell output onto the bit line.
			bl := fmt.Sprintf("rbl%d", b)
			c.NMOS(cell+"_rn", fmt.Sprintf("rsel%d", w), q, bl, wPass, lMin)
			c.PMOS(cell+"_rp", fmt.Sprintf("rseln%d", w), q, bl, wPass, lMin)
		}
	}
	// AddTGLatch stores the complement (its q is ¬d), so a single
	// inverting read buffer restores the written polarity.
	for b := 0; b < bits; b++ {
		AddInverter(c, fmt.Sprintf("ob%d", b), fmt.Sprintf("rbl%d", b), fmt.Sprintf("q%d", b), wInvN, wInvP)
		c.DeclarePort(fmt.Sprintf("q%d", b))
	}
	return c
}

// DeepTree returns the deep-hierarchy workload for hierarchical
// incremental verification: a `levels`-deep library of static CMOS
// cells with `variants` distinct cells per level, rooted at the
// returned top cell. Leaves are inverter chains of variant-dependent
// length; every upper-level cell buffers its input and combines two
// instances of the *same* child variant (repeated instances — the
// memoization case) through a NAND, and the top NAND-reduces one
// instance of every last-level variant. The shape is deliberately
// parallel rather than chained, so the flat critical path stays within
// one clock period and fanout stays bounded: the whole corpus passes
// the verification battery clean in both the hierarchical and the
// whole-netlist view, which is what keeps the two byte-identical.
//
// tweak perturbs the width of one transistor in leaf variant 0 — the
// scripted "edit one leaf" workload: DeepTree(l, v, 0) and
// DeepTree(l, v, 0.1) differ in exactly one leaf cell, so a warm
// re-verify must miss only that leaf and its path to the root.
func DeepTree(levels, variants int, tweak float64) (*netlist.Library, string) {
	if levels < 1 {
		levels = 1
	}
	if variants < 1 {
		variants = 1
	}
	lib := netlist.NewLibrary()
	name := func(level, v int) string { return fmt.Sprintf("dt_l%d_v%d", level, v) }
	for v := 0; v < variants; v++ {
		c := netlist.New(name(0, v))
		c.DeclarePort("in")
		n := 24 + 2*v
		prev := "in"
		for i := 0; i < n; i++ {
			next := fmt.Sprintf("n%d", i)
			if i == n-1 {
				next = "out"
			}
			wn := wInvN
			if tweak != 0 && v == 0 && i == 0 {
				wn = wInvN * (1 + tweak)
			}
			AddInverter(c, fmt.Sprintf("u%d", i), prev, next, wn, wInvP)
			prev = next
		}
		c.DeclarePort("out")
		lib.Add(c)
	}
	for level := 1; level < levels; level++ {
		for v := 0; v < variants; v++ {
			c := netlist.New(name(level, v))
			c.DeclarePort("in")
			// Buffer pair isolates the parent's input load from the
			// two child fan-outs at every level of the tree.
			AddInverter(c, "u0a", "in", "ba", wInvN, wInvP)
			AddInverter(c, "u0b", "ba", "bb", wInvN, wInvP)
			child := name(level-1, v)
			c.AddInstance("xa", child, "bb", "ya")
			c.AddInstance("xb", child, "bb", "yb")
			AddNAND2(c, "g", "ya", "yb", "n1")
			AddInverter(c, "u1", "n1", "out", wInvN, wInvP)
			c.DeclarePort("out")
			lib.Add(c)
		}
	}
	// reduce buffers cell's input and NAND-tree-reduces one instance of
	// every listed child into out.
	reduce := func(cell *netlist.Circuit, children []string) {
		cell.DeclarePort("in")
		AddInverter(cell, "u0a", "in", "ba", wInvN, wInvP)
		AddInverter(cell, "u0b", "ba", "bb", wInvN, wInvP)
		outs := make([]string, len(children))
		for i, ch := range children {
			outs[i] = fmt.Sprintf("t%d", i)
			cell.AddInstance(fmt.Sprintf("x%d", i), ch, "bb", outs[i])
		}
		for r := 0; len(outs) > 1; r++ {
			var next []string
			for i := 0; i+1 < len(outs); i += 2 {
				y := fmt.Sprintf("r%d_%d", r, i/2)
				AddNAND2(cell, fmt.Sprintf("nr%d_%d", r, i/2), outs[i], outs[i+1], y)
				next = append(next, y)
			}
			if len(outs)%2 == 1 {
				next = append(next, outs[len(outs)-1])
			}
			outs = next
		}
		AddInverter(cell, "uo", outs[0], "out", wInvN, wInvP)
		cell.DeclarePort("out")
	}

	last := levels - 1
	kids := make([]string, variants)
	for v := 0; v < variants; v++ {
		kids[v] = name(last, v)
	}
	// Wide corpora get an intermediate join layer so the top's fan-in —
	// and with it the scope a one-leaf edit forces the root path to
	// re-verify — stays narrow.
	const joinGroup = 4
	if variants > joinGroup {
		var joins []string
		for j := 0; j*joinGroup < variants; j++ {
			lo := j * joinGroup
			hi := lo + joinGroup
			if hi > variants {
				hi = variants
			}
			join := netlist.New(fmt.Sprintf("dt_join%d", j))
			reduce(join, kids[lo:hi])
			lib.Add(join)
			joins = append(joins, join.Name)
		}
		kids = joins
	}
	top := netlist.New("dt_top")
	reduce(top, kids)
	lib.Add(top)
	return lib, "dt_top"
}
