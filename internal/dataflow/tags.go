package dataflow

import (
	"repro/internal/netlist"
)

// tagIters bounds the propagation fixpoint. Tags only shrink, so the
// loop terminates on its own; the cap is a safety net for pathological
// connectivity.
const tagIters = 32

// Tags returns, for every node, the mask of phase assignments under
// which the net can be actively driven with its transitive data sources
// available — clock-phase propagation from the declared clock ports
// through pass and clocked devices. Sources (ports, supplies, clocks)
// and recognized storage (state nodes, dynamic-held nodes, which hold a
// value across phases) carry the full mask; a driven net's mask is the
// union over its drive paths of the assignments where the path conducts
// and every gate net steering it is itself available. The result is
// memoized; index it by NodeID.
func (a *Analysis) Tags() []AssignMask {
	if a.tags != nil {
		return a.tags
	}
	c := a.Rec.Circuit
	all := a.AllMask()
	tags := make([]AssignMask, len(c.Nodes))
	for i := range tags {
		tags[i] = all
	}
	if a.Degraded() {
		a.tags = tags
		return tags
	}
	// pinned nodes keep the full mask regardless of drive structure.
	pinned := make([]bool, len(c.Nodes))
	for id := range c.Nodes {
		n := netlist.NodeID(id)
		if c.Nodes[id].IsPort || c.IsSupply(n) {
			pinned[id] = true
		}
		if _, isCk := a.PhaseOf[n]; isCk {
			pinned[id] = true
		}
		if a.dynHeld[n] != nil || a.Rec.IsState(n) {
			pinned[id] = true
		}
	}
	// Driven, unpinned nodes in ID order for a deterministic fixpoint.
	var work []netlist.NodeID
	for id := range c.Nodes {
		n := netlist.NodeID(id)
		if _, ok := a.Rec.DriverOf[n]; ok && !pinned[id] {
			work = append(work, n)
		}
	}
	for iter := 0; iter < tagIters; iter++ {
		changed := false
		for _, n := range work {
			g := a.Rec.Groups[a.Rec.DriverOf[n]]
			var m AssignMask
			for _, p := range a.DrivePaths(g, n) {
				pm := a.SatMask(p.Cond)
				if p.External {
					pm &= tags[p.From]
				}
				for _, d := range p.Devices {
					if _, isCk := a.PhaseOf[d.Gate]; isCk {
						continue
					}
					if c.IsSupply(d.Gate) {
						continue
					}
					pm &= tags[d.Gate]
				}
				m |= pm
			}
			if m != tags[n] {
				tags[n] = m
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	a.tags = tags
	return tags
}
