package dataflow

import (
	"sort"

	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/recognize"
)

// Kind distinguishes the recognized dynamic-node structures.
type Kind int

const (
	// KindDomino is a precharge/evaluate node of a recognized dynamic
	// (domino) group.
	KindDomino Kind = iota
	// KindC2MOS is a clocked-stage output (C²MOS / clocked tristate)
	// that holds its value dynamically during the off phase.
	KindC2MOS
)

// String names the kind.
func (k Kind) String() string {
	if k == KindC2MOS {
		return "c2mos"
	}
	return "domino"
}

// DynNode is one classified dynamic node: the precharge/evaluate
// structure around it, its keeper (if any), and the internal evaluate
// nodes that share charge with it.
type DynNode struct {
	// Node is the dynamic node.
	Node netlist.NodeID
	// Group is the index of the driving group.
	Group int
	// Kind is the structure class.
	Kind Kind
	// Clocks are the clock nets gating the structure, sorted.
	Clocks []netlist.NodeID
	// Keeper is the staticizing keeper device, nil when absent.
	Keeper *netlist.Device
	// Footed, for domino nodes, mirrors the group's footed-evaluate
	// property.
	Footed bool
	// Internal are the internal channel nodes on evaluate (vss-side)
	// paths — the charge-sharing partners of the dynamic node. Sorted.
	Internal []netlist.NodeID
}

// classifyDynNodes builds the dynamic-node inventory: recognized domino
// nodes first, then C²MOS-style clocked-stage outputs of non-dynamic
// groups.
func (a *Analysis) classifyDynNodes() {
	a.dynHeld = make(map[netlist.NodeID]*DynNode)
	c := a.Rec.Circuit
	keepers := a.findKeepers()
	addNode := func(dn DynNode) {
		a.dynNodes = append(a.dynNodes, dn)
		a.dynHeld[dn.Node] = &a.dynNodes[len(a.dynNodes)-1]
	}
	for gi, g := range a.Rec.Groups {
		if g.Family == recognize.FamilyDynamic {
			for _, f := range g.Funcs {
				dn := DynNode{
					Node:   f.Node,
					Group:  gi,
					Kind:   KindDomino,
					Clocks: append([]netlist.NodeID(nil), g.ClockNets...),
					Keeper: keepers[f.Node],
					Footed: g.Footed,
				}
				seen := make(map[netlist.NodeID]bool)
				for _, p := range a.DrivePaths(g, f.Node) {
					if !p.FromVss {
						continue
					}
					for _, n := range PathNodes(p) {
						if !seen[n] && !c.Nodes[n].IsPort {
							seen[n] = true
							dn.Internal = append(dn.Internal, n)
						}
					}
				}
				sort.Slice(dn.Internal, func(i, j int) bool { return dn.Internal[i] < dn.Internal[j] })
				addNode(dn)
			}
		}
	}
	for gi, g := range a.Rec.Groups {
		if g.Family == recognize.FamilyDynamic {
			continue
		}
		for _, out := range g.Outputs {
			if a.dynHeld[out] != nil || !a.ClockedStage(g, out) {
				continue
			}
			dn := DynNode{Node: out, Group: gi, Kind: KindC2MOS, Keeper: keepers[out]}
			ckSet := make(map[netlist.NodeID]bool)
			for _, p := range a.DrivePaths(g, out) {
				for _, d := range p.Devices {
					if _, isCk := a.PhaseOf[d.Gate]; isCk {
						ckSet[d.Gate] = true
					}
				}
			}
			for ck := range ckSet {
				dn.Clocks = append(dn.Clocks, ck)
			}
			sort.Slice(dn.Clocks, func(i, j int) bool { return dn.Clocks[i] < dn.Clocks[j] })
			addNode(dn)
		}
	}
	sort.SliceStable(a.dynNodes, func(i, j int) bool { return a.dynNodes[i].Node < a.dynNodes[j].Node })
	// Re-point dynHeld after the sort moved the slice elements.
	for i := range a.dynNodes {
		a.dynHeld[a.dynNodes[i].Node] = &a.dynNodes[i]
	}
}

// findKeepers scans for staticizing keepers: a PMOS from vdd onto a
// node, gated by a non-clock net that some group drives (typically the
// buffered output fed back). First device in deck order wins.
func (a *Analysis) findKeepers() map[netlist.NodeID]*netlist.Device {
	c := a.Rec.Circuit
	keepers := make(map[netlist.NodeID]*netlist.Device)
	for _, d := range c.Devices {
		if d.Type != process.PMOS {
			continue
		}
		node := netlist.InvalidNode
		if c.IsVdd(d.Source) && !c.IsSupply(d.Drain) {
			node = d.Drain
		} else if c.IsVdd(d.Drain) && !c.IsSupply(d.Source) {
			node = d.Source
		}
		if node == netlist.InvalidNode {
			continue
		}
		if _, isCk := a.PhaseOf[d.Gate]; isCk {
			continue
		}
		if _, driven := a.Rec.DriverOf[d.Gate]; !driven {
			continue
		}
		if keepers[node] == nil {
			keepers[node] = d
		}
	}
	return keepers
}

// DynNodes returns the classified dynamic nodes, sorted by node ID.
// The returned slice is shared; treat as read-only.
func (a *Analysis) DynNodes() []DynNode {
	return a.dynNodes
}

// DynHeld returns the dynamic-node record holding this net, or nil.
// A dyn-held net stores its value when undriven — it is recognized
// storage, not a floating defect.
func (a *Analysis) DynHeld(id netlist.NodeID) *DynNode {
	return a.dynHeld[id]
}
