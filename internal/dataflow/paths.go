package dataflow

import (
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/recognize"
)

// Path is one simple channel path from a drive source (supply rail or
// external channel input) to a group node, with its series device set
// and conduction condition.
type Path struct {
	// Devices is the series device chain, ordered source→node.
	Devices []*netlist.Device
	// From is the path's origin (a rail or a channel input).
	From netlist.NodeID
	// FromVdd / FromVss mark rail origins.
	FromVdd, FromVss bool
	// External marks paths originating at a channel input (a signal
	// passing through the group, pass-transistor style).
	External bool
	// Cond is the series conduction condition in gate-net variables
	// (clock nets included as plain variables; substitute with
	// SubstClocks for a per-phase view).
	Cond logic.Expr
	// Clocked reports that at least one series device is gated by a
	// clock net.
	Clocked bool
	// HasData reports that at least one series device is gated by a
	// non-clock, non-supply net.
	HasData bool
}

type pathsKey struct {
	group int
	node  netlist.NodeID
}

// DeviceCond returns the conduction literal of one device: Var(gate)
// for NMOS, ¬Var(gate) for PMOS, with supply-tied gates folding to
// constants (an NMOS gated by vss can never conduct).
func DeviceCond(c *netlist.Circuit, d *netlist.Device) logic.Expr {
	switch {
	case c.IsVdd(d.Gate):
		if d.Type == process.NMOS {
			return logic.True
		}
		return logic.False
	case c.IsVss(d.Gate):
		if d.Type == process.NMOS {
			return logic.False
		}
		return logic.True
	case d.Type == process.NMOS:
		return logic.Var(c.NodeName(d.Gate))
	default:
		return logic.Not(logic.Var(c.NodeName(d.Gate)))
	}
}

// CanConduct reports whether a device can ever conduct: false only for
// an NMOS gated by vss or a PMOS gated by vdd (a permanently-off
// device; any DC path through it is dead).
func CanConduct(c *netlist.Circuit, d *netlist.Device) bool {
	if d.Type == process.NMOS {
		return !c.IsVss(d.Gate)
	}
	return !c.IsVdd(d.Gate)
}

// DrivePaths enumerates every simple channel path that can drive a
// group node: from vdd, from vss, and from each of the group's external
// channel inputs. Results are memoized per (group, node) and must be
// treated as read-only.
func (a *Analysis) DrivePaths(g *recognize.Group, node netlist.NodeID) []Path {
	key := pathsKey{g.Index, node}
	if ps, ok := a.paths[key]; ok {
		return ps
	}
	c := a.Rec.Circuit
	var out []Path
	add := func(from netlist.NodeID, vdd, vss, ext bool) {
		for _, devs := range a.Rec.ChannelPaths(g, from, node) {
			p := Path{Devices: devs, From: from, FromVdd: vdd, FromVss: vss, External: ext}
			conds := make([]logic.Expr, 0, len(devs))
			for _, d := range devs {
				conds = append(conds, DeviceCond(c, d))
				if _, isCk := a.PhaseOf[d.Gate]; isCk {
					p.Clocked = true
				} else if !c.IsSupply(d.Gate) {
					p.HasData = true
				}
			}
			p.Cond = logic.And(conds...)
			out = append(out, p)
		}
	}
	if vdd := c.FindNode("vdd"); vdd != netlist.InvalidNode {
		add(vdd, true, false, false)
	}
	if vss := c.FindNode("vss"); vss != netlist.InvalidNode {
		add(vss, false, true, false)
	}
	for _, ci := range g.ChannelInputs {
		if ci != node {
			add(ci, false, false, true)
		}
	}
	a.paths[key] = out
	return out
}

// PathNodes returns the intermediate channel nodes of a path (between
// origin and destination, both excluded), in walk order.
func PathNodes(p Path) []netlist.NodeID {
	var out []netlist.NodeID
	at := p.From
	for i, d := range p.Devices {
		next := d.Drain
		if next == at {
			next = d.Source
		}
		at = next
		if i < len(p.Devices)-1 {
			out = append(out, at)
		}
	}
	return out
}

// ClockedStage reports whether a group output is a C²MOS-style clocked
// stage: it has pull-up and pull-down rail paths, every drive path runs
// through at least one clock-gated device, the networks depend on data,
// and the output is not a plain complementary gate. Such a node is
// dynamically held during its off phase — recognized storage, not a
// floating-node defect.
func (a *Analysis) ClockedStage(g *recognize.Group, node netlist.NodeID) bool {
	if g == nil || a.Degraded() || len(a.PhaseNames) == 0 {
		return false
	}
	if f := g.Func(node); f != nil && f.Complementary {
		return false
	}
	paths := a.DrivePaths(g, node)
	var up, down, data bool
	for _, p := range paths {
		if !p.Clocked {
			return false
		}
		up = up || p.FromVdd
		down = down || p.FromVss
		data = data || p.HasData || p.External
	}
	return up && down && data
}
