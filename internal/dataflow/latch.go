package dataflow

import (
	"sort"

	"repro/internal/netlist"
	"repro/internal/recognize"
)

// LatchInfo augments a recognized latch with its phase behaviour.
type LatchInfo struct {
	// Index is the latch's position in Rec.Latches.
	Index int
	// Latch is the recognition record.
	Latch *recognize.Latch
	// Dynamic marks latches with a dynamic (domino) member group —
	// keeper loops around domino nodes, excluded from race analysis
	// (cascaded same-phase domino is the normal NORA/domino idiom).
	Dynamic bool
	// Transparent is the mask of phase assignments under which some
	// data path into a state node of the latch conducts — the phases
	// where the latch is open.
	Transparent AssignMask
}

// buildLatches computes per-latch transparency.
func (a *Analysis) buildLatches() {
	for li := range a.Rec.Latches {
		l := &a.Rec.Latches[li]
		info := LatchInfo{Index: li, Latch: l}
		stateSet := make(map[netlist.NodeID]bool, len(l.StateNodes))
		for _, s := range l.StateNodes {
			stateSet[s] = true
		}
		memberOut := make(map[netlist.NodeID]bool)
		for _, gi := range l.Groups {
			if a.Rec.Groups[gi].Family == recognize.FamilyDynamic {
				info.Dynamic = true
			}
			for _, out := range a.Rec.Groups[gi].Outputs {
				memberOut[out] = true
			}
		}
		for _, gi := range l.Groups {
			g := a.Rec.Groups[gi]
			for _, out := range g.Outputs {
				if !stateSet[out] {
					continue
				}
				for _, p := range a.DrivePaths(g, out) {
					if !a.isDataPath(p, stateSet, memberOut) {
						continue
					}
					info.Transparent |= a.SatMask(p.Cond)
				}
			}
		}
		a.latches = append(a.latches, info)
	}
}

// isDataPath reports whether a drive path carries new data into a latch
// (as opposed to keeper feedback circulating the stored value). A path
// counts when it originates at an external channel input, or when some
// series device is gated by a net that is neither a clock nor part of
// the loop (state node or member output).
func (a *Analysis) isDataPath(p Path, stateSet, memberOut map[netlist.NodeID]bool) bool {
	if p.External {
		return true
	}
	c := a.Rec.Circuit
	for _, d := range p.Devices {
		if _, isCk := a.PhaseOf[d.Gate]; isCk {
			continue
		}
		if c.IsSupply(d.Gate) || stateSet[d.Gate] || memberOut[d.Gate] {
			continue
		}
		return true
	}
	return false
}

// Latches returns the per-latch phase info, indexed like Rec.Latches.
func (a *Analysis) Latches() []LatchInfo {
	return a.latches
}

// LatchMember reports whether a group belongs to any recognized latch
// loop (its fights and float windows are storage behaviour, not
// defects).
func (a *Analysis) LatchMember(gi int) bool {
	_, ok := a.latchOf[gi]
	return ok
}

// Race is a same-phase back-to-back latch race: data launched from one
// transparent latch can reach a second latch that is transparent under
// the same phase assignment, racing through two stages in one phase.
type Race struct {
	// From and To index Rec.Latches.
	From, To int
	// Through is the input net of the receiving latch where the
	// launched data arrives.
	Through netlist.NodeID
	// Mask is the set of assignments under which both latches are
	// open at once.
	Mask AssignMask
}

// LatchRaces searches the gate/channel connectivity graph for
// same-phase latch-to-latch paths. For each non-dynamic transparent
// latch, outputs are propagated breadth-first through combinational
// groups; reaching a data input of a different non-dynamic latch whose
// transparency mask overlaps the source's is a race. Dynamic latches
// (domino keeper loops) pass data through but never race themselves.
func (a *Analysis) LatchRaces() []Race {
	if a.Degraded() {
		return nil
	}
	type raceKey struct {
		from, to int
		through  netlist.NodeID
	}
	found := make(map[raceKey]AssignMask)
	for _, src := range a.latches {
		if src.Dynamic || src.Transparent == 0 {
			continue
		}
		// Data inputs of a candidate sink latch: gate or channel
		// inputs of member groups that are not clocks, not loop
		// state, and not driven by a member group.
		srcMembers := make(map[int]bool, len(src.Latch.Groups))
		for _, gi := range src.Latch.Groups {
			srcMembers[gi] = true
		}
		var frontier []netlist.NodeID
		seen := make(map[netlist.NodeID]bool)
		push := func(n netlist.NodeID) {
			if !seen[n] {
				seen[n] = true
				frontier = append(frontier, n)
			}
		}
		for _, gi := range src.Latch.Groups {
			for _, out := range a.Rec.Groups[gi].Outputs {
				push(out)
			}
		}
		for len(frontier) > 0 {
			sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
			var next []netlist.NodeID
			for _, n := range frontier {
				readers := append(append([]int(nil), a.gateGroups[n]...), a.chanGroups[n]...)
				sort.Ints(readers)
				prev := -1
				for _, gi := range readers {
					if gi == prev {
						continue
					}
					prev = gi
					if srcMembers[gi] {
						continue
					}
					li, isMember := a.latchOf[gi]
					if !isMember {
						for _, out := range a.Rec.Groups[gi].Outputs {
							if !seen[out] {
								seen[out] = true
								next = append(next, out)
							}
						}
						continue
					}
					sink := a.latches[li]
					if sink.Dynamic {
						// Pass through domino keeper loops.
						for _, out := range a.Rec.Groups[gi].Outputs {
							if !seen[out] {
								seen[out] = true
								next = append(next, out)
							}
						}
						continue
					}
					if li == src.Index || !a.isLatchDataInput(sink, n) {
						continue
					}
					if both := src.Transparent & sink.Transparent; both != 0 {
						k := raceKey{src.Index, li, n}
						found[k] |= both
					}
				}
			}
			frontier = next
		}
	}
	races := make([]Race, 0, len(found))
	for k, m := range found {
		races = append(races, Race{From: k.from, To: k.to, Through: k.through, Mask: m})
	}
	sort.Slice(races, func(i, j int) bool {
		if races[i].To != races[j].To {
			return races[i].To < races[j].To
		}
		if races[i].Through != races[j].Through {
			return races[i].Through < races[j].Through
		}
		return races[i].From < races[j].From
	})
	return races
}

// isLatchDataInput reports whether net n is a data input of the latch:
// read as a gate or channel input by a member group, and neither a
// clock, a state node, nor a net the loop itself drives.
func (a *Analysis) isLatchDataInput(l LatchInfo, n netlist.NodeID) bool {
	if _, isCk := a.PhaseOf[n]; isCk {
		return false
	}
	for _, s := range l.Latch.StateNodes {
		if s == n {
			return false
		}
	}
	for _, gi := range l.Latch.Groups {
		for _, out := range a.Rec.Groups[gi].Outputs {
			if out == n {
				return false
			}
		}
	}
	for _, gi := range l.Latch.Groups {
		g := a.Rec.Groups[gi]
		for _, in := range g.Inputs {
			if in == n {
				return true
			}
		}
		for _, ci := range g.ChannelInputs {
			if ci == n {
				return true
			}
		}
	}
	return false
}
