// Package dataflow is a static-analysis substrate over the flattened
// netlist: clock-phase modelling and propagation, dynamic-node
// classification, and source-to-node channel-graph reachability with
// per-path series device sets.
//
// The paper's methodology (§2.3, §4.2–4.3) deduces the meaning of
// full-custom transistor structures "automatically and conservatively"
// — and the clocked styles it names (domino, C²MOS, ratioed logic,
// two-phase transmission-gate latching) are exactly the ones whose
// wiring mistakes are invisible to local, per-device checks. This
// package provides the shared machinery those checks need:
//
//   - A phase model: clock nets are folded into phases (complement
//     naming like phi1/phi1_n and one-inverter structural complements
//     collapse onto one phase), and the consistent phase assignments
//     are enumerated, honouring the two-phase non-overlap discipline
//     for phi<n>-style phase pairs. Questions like "can this pull-up
//     and that pull-down ever conduct in the same phase?" become
//     bitmask operations over the assignment set.
//   - Drive-path enumeration: for any group output, the simple channel
//     paths from each supply rail and each external channel input,
//     with the series device set and its conduction condition as a
//     logic expression.
//   - Dynamic-node classification: domino precharge/evaluate nodes
//     (from recognition) plus C²MOS-style clocked-stage outputs, with
//     keeper detection and internal evaluate-node inventory.
//   - Latch transparency and same-phase race search over the channel/
//     gate connectivity graph.
//   - Clock-phase tags: a fixpoint propagation assigning every net the
//     set of phase assignments under which it can be actively driven,
//     derived from clock ports through pass and clocked devices.
//
// Everything is deterministic: nodes, groups and paths are visited in
// index order, and all reported slices are sorted.
package dataflow

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/recognize"
)

// maxPhases bounds phase-assignment enumeration. Beyond it the analysis
// degrades gracefully: Degraded() reports true and phase-dependent
// queries return conservative answers instead of exploding (2^6 = 64
// assignments fit one uint64 AssignMask word).
const maxPhases = 6

// PhaseRef locates a clock net in the phase model: which phase it
// follows and whether it is the complement rail of that phase.
type PhaseRef struct {
	// Phase indexes Analysis.PhaseNames.
	Phase int
	// Inverted marks complement rails (phi1_n follows phase phi1 with
	// Inverted set).
	Inverted bool
}

// AssignMask is a bitset over the enumerated phase assignments: bit i
// set means "true under assignment i".
type AssignMask uint64

// Analysis is the dataflow view of one recognized circuit. Build it
// with Analyze; it is cheap when the circuit has no clocks. An Analysis
// is not safe for concurrent use (the lint driver builds one per cell
// per worker).
type Analysis struct {
	// Rec is the recognition result the analysis is built over.
	Rec *recognize.Result
	// PhaseNames are the phase base names, sorted.
	PhaseNames []string
	// PhaseOf maps every clock net to its phase reference.
	PhaseOf map[netlist.NodeID]PhaseRef
	// Assigns are the consistent phase assignments: each entry is a
	// bitmask of phase values (bit p = value of phase p). Nil when the
	// analysis is degraded (too many phases).
	Assigns []uint32

	clockName  map[string]PhaseRef // logic-variable name → phase ref
	nonOverlap []int               // phase indices under two-phase non-overlap

	paths    map[pathsKey][]Path
	dynNodes []DynNode
	dynHeld  map[netlist.NodeID]*DynNode
	latches  []LatchInfo
	tags     []AssignMask

	// channel/gate reverse indexes shared by reachability and race
	// search.
	gateGroups map[netlist.NodeID][]int // net → groups reading it as a gate
	chanGroups map[netlist.NodeID][]int // net → groups with it as channel input
	latchOf    map[int]int              // group index → latch index (-1 handled by absence)
}

// phiName matches numbered-phase base names (after the last
// hierarchical separator): phi1, phi2, … — the nets the two-phase
// non-overlap discipline of §2/Figure 4 applies to.
var phiName = regexp.MustCompile(`^phi\d+$`)

// Analyze builds the dataflow substrate for a recognized circuit.
func Analyze(rec *recognize.Result) *Analysis {
	a := &Analysis{
		Rec:        rec,
		PhaseOf:    make(map[netlist.NodeID]PhaseRef),
		clockName:  make(map[string]PhaseRef),
		paths:      make(map[pathsKey][]Path),
		gateGroups: make(map[netlist.NodeID][]int),
		chanGroups: make(map[netlist.NodeID][]int),
		latchOf:    make(map[int]int),
	}
	a.buildPhases()
	a.buildAssignments()
	for gi, g := range rec.Groups {
		for _, in := range g.Inputs {
			a.gateGroups[in] = append(a.gateGroups[in], gi)
		}
		for _, ci := range g.ChannelInputs {
			a.chanGroups[ci] = append(a.chanGroups[ci], gi)
		}
	}
	for li, l := range rec.Latches {
		for _, gi := range l.Groups {
			a.latchOf[gi] = li
		}
	}
	a.classifyDynNodes()
	a.buildLatches()
	return a
}

// Degraded reports that the circuit has more phases than the
// enumeration bound; phase-dependent rules should stay quiet rather
// than guess.
func (a *Analysis) Degraded() bool {
	return len(a.PhaseNames) > maxPhases
}

// AllMask returns the mask with one bit per enumerated assignment set.
func (a *Analysis) AllMask() AssignMask {
	if n := len(a.Assigns); n > 0 {
		return AssignMask(1)<<uint(n) - 1
	}
	return 1 // the single empty assignment of an unclocked circuit
}

// AssignCount returns the number of enumerated assignments (1 for an
// unclocked circuit: the empty assignment).
func (a *Analysis) AssignCount() int {
	if len(a.Assigns) > 0 {
		return len(a.Assigns)
	}
	return 1
}

// buildPhases folds the recognized clock nets into phases. A clock net
// is a complement rail when its name strips to another clock net
// (phi1_n, phi1_b, ckn) or when it is structurally a one-inverter image
// of another clock. Every other clock net becomes its own phase.
func (a *Analysis) buildPhases() {
	c := a.Rec.Circuit
	clocks := a.Rec.Clocks
	if len(clocks) == 0 {
		return
	}
	names := make(map[string]netlist.NodeID, len(clocks))
	for _, ck := range clocks {
		names[c.NodeName(ck)] = ck
	}
	// complementOf returns the base clock net this one complements, or
	// InvalidNode.
	complementOf := func(ck netlist.NodeID) netlist.NodeID {
		name := c.NodeName(ck)
		for _, suf := range []string{"_n", "_b", "n", "b"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && base != "" {
				if id, ok := names[base]; ok {
					return id
				}
			}
		}
		// Structural: driven by an inverter whose input is a clock.
		if g := a.Rec.GroupDriving(ck); g != nil {
			if f := g.Func(ck); f != nil && f.Complementary {
				if v, ok := f.PullDown.(logic.Var); ok {
					if id, okc := names[string(v)]; okc && id != ck {
						return id
					}
				}
			}
		}
		return netlist.InvalidNode
	}
	// Pass 1: base phases, in sorted clock order (rec.Clocks is sorted
	// by node ID; sort names for stability across renames).
	type fold struct{ ck, base netlist.NodeID }
	var bases []netlist.NodeID
	var folds []fold
	for _, ck := range clocks {
		if base := complementOf(ck); base != netlist.InvalidNode {
			folds = append(folds, fold{ck, base})
		} else {
			bases = append(bases, ck)
		}
	}
	sort.Slice(bases, func(i, j int) bool {
		return c.NodeName(bases[i]) < c.NodeName(bases[j])
	})
	idx := make(map[netlist.NodeID]int, len(bases))
	for i, ck := range bases {
		idx[ck] = i
		a.PhaseNames = append(a.PhaseNames, c.NodeName(ck))
		ref := PhaseRef{Phase: i}
		a.PhaseOf[ck] = ref
		a.clockName[c.NodeName(ck)] = ref
	}
	for _, f := range folds {
		base, ok := idx[f.base]
		if !ok {
			// Complement of a complement (or of a net that itself
			// folded): follow one hop; give up and make it a phase if
			// the chain is odd-shaped.
			if ref, okr := a.PhaseOf[f.base]; okr {
				r := PhaseRef{Phase: ref.Phase, Inverted: !ref.Inverted}
				a.PhaseOf[f.ck] = r
				a.clockName[c.NodeName(f.ck)] = r
				continue
			}
			base = len(a.PhaseNames)
			a.PhaseNames = append(a.PhaseNames, c.NodeName(f.ck))
			idx[f.ck] = base
			ref := PhaseRef{Phase: base}
			a.PhaseOf[f.ck] = ref
			a.clockName[c.NodeName(f.ck)] = ref
			continue
		}
		ref := PhaseRef{Phase: base, Inverted: true}
		a.PhaseOf[f.ck] = ref
		a.clockName[c.NodeName(f.ck)] = ref
	}
	// Two-phase non-overlap applies to the numbered phi phases.
	for i, name := range a.PhaseNames {
		base := name
		if k := strings.LastIndex(base, "/"); k >= 0 {
			base = base[k+1:]
		}
		if phiName.MatchString(strings.ToLower(base)) {
			a.nonOverlap = append(a.nonOverlap, i)
		}
	}
}

// buildAssignments enumerates the consistent phase assignments: all
// value vectors over the phases, minus those where two non-overlapping
// phi phases are high at once.
func (a *Analysis) buildAssignments() {
	p := len(a.PhaseNames)
	if p == 0 || p > maxPhases {
		return
	}
	var overlapMask uint32
	for _, i := range a.nonOverlap {
		overlapMask |= 1 << uint(i)
	}
	for v := uint32(0); v < 1<<uint(p); v++ {
		if len(a.nonOverlap) >= 2 && popcount(v&overlapMask) > 1 {
			continue
		}
		a.Assigns = append(a.Assigns, v)
	}
}

func popcount(v uint32) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// IsClockVar reports whether a logic-expression variable names a clock
// net of the phase model.
func (a *Analysis) IsClockVar(name string) bool {
	_, ok := a.clockName[name]
	return ok
}

// HasClockVar reports whether the expression mentions any clock net.
func (a *Analysis) HasClockVar(e logic.Expr) bool {
	for _, v := range logic.Vars(e) {
		if a.IsClockVar(v) {
			return true
		}
	}
	return false
}

// ClockValue returns a clock net's value under assignment ai.
func (a *Analysis) ClockValue(ref PhaseRef, ai int) bool {
	v := a.Assigns[ai]>>uint(ref.Phase)&1 == 1
	if ref.Inverted {
		return !v
	}
	return v
}

// SubstClocks substitutes every clock variable of e with its value
// under assignment ai, leaving data variables free.
func (a *Analysis) SubstClocks(e logic.Expr, ai int) logic.Expr {
	for _, v := range logic.Vars(e) {
		ref, ok := a.clockName[v]
		if !ok {
			continue
		}
		e = logic.Substitute(e, v, logic.Const(a.ClockValue(ref, ai)))
	}
	return e
}

// SatMask returns the assignments under which e is satisfiable with
// data variables free. With no phase model (unclocked or degraded) the
// result is AllMask or 0 by plain satisfiability.
func (a *Analysis) SatMask(e logic.Expr) AssignMask {
	if len(a.Assigns) == 0 || !a.HasClockVar(e) {
		if logic.Satisfiable(e) {
			return a.AllMask()
		}
		return 0
	}
	var m AssignMask
	for ai := range a.Assigns {
		if logic.Satisfiable(a.SubstClocks(e, ai)) {
			m |= 1 << uint(ai)
		}
	}
	return m
}

// AssignString renders one assignment for diagnostics: "phi1=1 phi2=0".
func (a *Analysis) AssignString(ai int) string {
	if len(a.Assigns) == 0 {
		return "any phase"
	}
	parts := make([]string, len(a.PhaseNames))
	for i, name := range a.PhaseNames {
		v := 0
		if a.Assigns[ai]>>uint(i)&1 == 1 {
			v = 1
		}
		parts[i] = fmt.Sprintf("%s=%d", name, v)
	}
	return strings.Join(parts, " ")
}

// MaskString renders the first assignment of a mask (the witness the
// diagnostics quote).
func (a *Analysis) MaskString(m AssignMask) string {
	for ai := 0; ai < a.AssignCount(); ai++ {
		if m&(1<<uint(ai)) != 0 {
			return a.AssignString(ai)
		}
	}
	return "no phase"
}
