// Package flow is the design-flow engine of §2.4 (Figure 2).
//
// "The design flow used for ALPHA CPU designs is similar in appearance
// to many other design flows ... Although this appears as a
// top-to-bottom flow, there are actually many bottom-to-top
// interactions. For instance, there are many feasibility studies on
// different circuit implementations during the development of the RTL
// ... Physical floorplanning also occurs during all design phases."
//
// The engine runs a DAG of named steps in dependency order, but any step
// may request that an *earlier* step re-run (a feedback edge). Execution
// iterates until a pass completes with no feedback, recording the full
// trace — which makes the bottom-to-top structure of Figure 2 observable
// rather than anecdotal.
package flow

import (
	"fmt"
	"sort"
	"strings"
)

// Context is passed to every step: a shared blackboard plus the feedback
// request mechanism.
type Context struct {
	// Values is the inter-step blackboard.
	Values map[string]interface{}
	// Iteration is the current pass number (1-based).
	Iteration int

	rerun map[string]bool
	flow  *Flow
}

// RequestRerun asks for an earlier step to run again after this pass — a
// bottom-to-top interaction. Requesting an unknown step is an error at
// collection time.
func (c *Context) RequestRerun(step string) {
	c.rerun[step] = true
}

// StepFunc is a step's work function.
type StepFunc func(*Context) error

// Step is one box of the flow diagram.
type Step struct {
	// Name identifies the step.
	Name string
	// Deps are the steps that must complete before this one.
	Deps []string
	// Run does the work (nil = structural placeholder).
	Run StepFunc
}

// Flow is the step DAG.
type Flow struct {
	steps map[string]*Step
	order []string // insertion order for stable topo ties
}

// New returns an empty flow.
func New() *Flow {
	return &Flow{steps: make(map[string]*Step)}
}

// Add registers a step.
func (f *Flow) Add(name string, run StepFunc, deps ...string) error {
	if _, dup := f.steps[name]; dup {
		return fmt.Errorf("flow: duplicate step %q", name)
	}
	f.steps[name] = &Step{Name: name, Deps: deps, Run: run}
	f.order = append(f.order, name)
	return nil
}

// topo returns a dependency-ordered step list or a cycle error.
func (f *Flow) topo() ([]string, error) {
	const (
		white = iota
		grey
		black
	)
	color := make(map[string]int, len(f.steps))
	var out []string
	var visit func(name string) error
	visit = func(name string) error {
		s, ok := f.steps[name]
		if !ok {
			return fmt.Errorf("flow: dependency on unknown step %q", name)
		}
		switch color[name] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("flow: dependency cycle through %q", name)
		}
		color[name] = grey
		deps := append([]string(nil), s.Deps...)
		sort.Strings(deps)
		for _, d := range deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		color[name] = black
		out = append(out, name)
		return nil
	}
	for _, name := range f.order {
		if err := visit(name); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TraceEntry records one step execution.
type TraceEntry struct {
	Step      string
	Iteration int
	Feedback  []string // reruns the step requested
}

// Result is a completed flow run.
type Result struct {
	// Trace is the full execution history in order.
	Trace []TraceEntry
	// Iterations is the number of passes until quiescence.
	Iterations int
	// Values is the final blackboard.
	Values map[string]interface{}
}

// Executions counts how many times a step ran.
func (r *Result) Executions(step string) int {
	n := 0
	for _, e := range r.Trace {
		if e.Step == step {
			n++
		}
	}
	return n
}

// TraceString renders the trace compactly ("rtl schematic layout |
// rtl(schematic feedback) ...").
func (r *Result) TraceString() string {
	var parts []string
	for _, e := range r.Trace {
		s := e.Step
		if len(e.Feedback) > 0 {
			s += "→(" + strings.Join(e.Feedback, ",") + ")"
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, " ")
}

// MaxIterations bounds feedback convergence.
const MaxIterations = 20

// Run executes the flow: a full topological pass, then — while any step
// requested feedback — re-passes running only the requested steps and
// everything downstream of them.
func (f *Flow) Run() (*Result, error) {
	order, err := f.topo()
	if err != nil {
		return nil, err
	}
	res := &Result{Values: make(map[string]interface{})}
	needed := make(map[string]bool, len(order))
	for _, s := range order {
		needed[s] = true
	}
	for iter := 1; ; iter++ {
		if iter > MaxIterations {
			return nil, fmt.Errorf("flow: no convergence after %d iterations (livelocked feedback)", MaxIterations)
		}
		res.Iterations = iter
		ctx := &Context{
			Values:    res.Values,
			Iteration: iter,
			rerun:     make(map[string]bool),
			flow:      f,
		}
		// Downstream closure: a rerun step invalidates its dependents.
		for _, name := range order {
			if !needed[name] {
				continue
			}
			s := f.steps[name]
			entry := TraceEntry{Step: name, Iteration: iter}
			before := len(ctx.rerun)
			if s.Run != nil {
				if err := s.Run(ctx); err != nil {
					return res, fmt.Errorf("flow: step %s: %w", name, err)
				}
			}
			if len(ctx.rerun) > before {
				for r := range ctx.rerun {
					entry.Feedback = append(entry.Feedback, r)
				}
				sort.Strings(entry.Feedback)
			}
			res.Trace = append(res.Trace, entry)
		}
		if len(ctx.rerun) == 0 {
			return res, nil
		}
		// Validate and schedule: requested steps plus dependents.
		for r := range ctx.rerun {
			if _, ok := f.steps[r]; !ok {
				return res, fmt.Errorf("flow: feedback to unknown step %q", r)
			}
		}
		needed = f.downstreamClosure(order, ctx.rerun)
	}
}

// downstreamClosure marks the requested steps and everything that
// (transitively) depends on them.
func (f *Flow) downstreamClosure(order []string, seeds map[string]bool) map[string]bool {
	need := make(map[string]bool, len(seeds))
	for s := range seeds {
		need[s] = true
	}
	changed := true
	for changed {
		changed = false
		for _, name := range order {
			if need[name] {
				continue
			}
			for _, d := range f.steps[name].Deps {
				if need[d] {
					need[name] = true
					changed = true
					break
				}
			}
		}
	}
	return need
}

// ALPHAFlow builds the Figure 2 flow with its canonical feedback edges:
// schematic-stage feasibility studies push back into the RTL, and
// floorplanning during layout pushes back into the schematic. The
// supplied hooks let callers attach real work; nil hooks make the flow
// purely structural. feasibilityIters and floorplanIters say how many
// passes the respective feedback fires for (modelling studies that
// converge).
func ALPHAFlow(feasibilityIters, floorplanIters int) *Flow {
	f := New()
	must := func(err error) {
		if err != nil {
			panic(err) // static construction; cannot fail
		}
	}
	must(f.Add("behavioral-rtl", nil))
	must(f.Add("schematic", func(c *Context) error {
		if c.Iteration <= feasibilityIters {
			// A feasibility study found a faster circuit topology that
			// needs a different RTL split (§2.4).
			c.RequestRerun("behavioral-rtl")
		}
		return nil
	}, "behavioral-rtl"))
	must(f.Add("layout", func(c *Context) error {
		if c.Iteration <= floorplanIters {
			// Floorplanning moved a function across a boundary (§2.1).
			c.RequestRerun("schematic")
		}
		return nil
	}, "schematic"))
	must(f.Add("extract", nil, "layout"))
	must(f.Add("logic-verify", nil, "schematic", "behavioral-rtl"))
	must(f.Add("circuit-verify", nil, "extract"))
	must(f.Add("timing-verify", nil, "extract"))
	must(f.Add("tapeout", nil, "logic-verify", "circuit-verify", "timing-verify"))
	return f
}
