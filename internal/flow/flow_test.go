package flow

import (
	"errors"
	"strings"
	"testing"
)

func TestLinearFlowRunsInOrder(t *testing.T) {
	f := New()
	var order []string
	log := func(name string) StepFunc {
		return func(*Context) error {
			order = append(order, name)
			return nil
		}
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.Add("a", log("a")))
	must(f.Add("c", log("c"), "b"))
	must(f.Add("b", log("b"), "a"))
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, " ") != "a b c" {
		t.Errorf("order = %v", order)
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

func TestFeedbackRerunsUpstream(t *testing.T) {
	f := ALPHAFlow(1, 1)
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Pass 1: schematic requests rtl rerun; layout requests schematic.
	// Pass 2: the rerun closure; both feedbacks have converged by then
	// (iteration > 1), so pass 2 still reruns layout (downstream of
	// schematic)... convergence by pass ≤3.
	if res.Iterations < 2 {
		t.Errorf("feedback should force ≥2 passes, got %d", res.Iterations)
	}
	if res.Executions("behavioral-rtl") < 2 {
		t.Errorf("rtl ran %d times, want ≥2 (feasibility feedback)", res.Executions("behavioral-rtl"))
	}
	if res.Executions("tapeout") < 1 {
		t.Error("tapeout never ran")
	}
	if !strings.Contains(res.TraceString(), "→(") {
		t.Errorf("trace should show feedback: %s", res.TraceString())
	}
}

func TestNoFeedbackSinglePass(t *testing.T) {
	f := ALPHAFlow(0, 0)
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", res.Iterations)
	}
	for _, s := range []string{"behavioral-rtl", "schematic", "layout", "extract",
		"logic-verify", "circuit-verify", "timing-verify", "tapeout"} {
		if res.Executions(s) != 1 {
			t.Errorf("%s ran %d times", s, res.Executions(s))
		}
	}
}

func TestOnlyDownstreamReruns(t *testing.T) {
	// When layout requests a schematic rerun, behavioral-rtl must NOT
	// re-execute (it is upstream of the feedback target).
	f := ALPHAFlow(0, 1)
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions("behavioral-rtl") != 1 {
		t.Errorf("rtl ran %d times, want 1", res.Executions("behavioral-rtl"))
	}
	if res.Executions("schematic") != 2 {
		t.Errorf("schematic ran %d times, want 2", res.Executions("schematic"))
	}
	if res.Executions("tapeout") != 2 {
		t.Errorf("tapeout ran %d times, want 2 (downstream of schematic)", res.Executions("tapeout"))
	}
}

func TestLivelockedFeedbackBounded(t *testing.T) {
	f := New()
	if err := f.Add("a", nil); err != nil {
		t.Fatal(err)
	}
	err := f.Add("b", func(c *Context) error {
		c.RequestRerun("a") // forever
		return nil
	}, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err == nil || !strings.Contains(err.Error(), "convergence") {
		t.Errorf("livelock not detected: %v", err)
	}
}

func TestErrorsPropagate(t *testing.T) {
	f := New()
	boom := errors.New("boom")
	if err := f.Add("a", func(*Context) error { return boom }); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err == nil || !errors.Is(err, boom) {
		t.Errorf("step error lost: %v", err)
	}
}

func TestStructuralErrors(t *testing.T) {
	f := New()
	if err := f.Add("a", nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("a", nil); err == nil {
		t.Error("duplicate step accepted")
	}
	if err := f.Add("b", nil, "missing"); err != nil {
		t.Fatal(err) // registration is lazy; resolution happens at Run
	}
	if _, err := f.Run(); err == nil || !strings.Contains(err.Error(), "unknown step") {
		t.Errorf("unknown dependency not detected: %v", err)
	}

	g := New()
	_ = g.Add("x", nil, "y")
	_ = g.Add("y", nil, "x")
	if _, err := g.Run(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}

	h := New()
	_ = h.Add("a", func(c *Context) error {
		c.RequestRerun("ghost")
		return nil
	})
	if _, err := h.Run(); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("feedback to unknown step not detected: %v", err)
	}
}

func TestBlackboardSharedAcrossSteps(t *testing.T) {
	f := New()
	_ = f.Add("produce", func(c *Context) error {
		c.Values["area"] = 42.0
		return nil
	})
	var got float64
	_ = f.Add("consume", func(c *Context) error {
		got, _ = c.Values["area"].(float64)
		return nil
	}, "produce")
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42.0 {
		t.Errorf("blackboard value lost: %g", got)
	}
}
