package timing

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/recognize"
)

// constraintFor deduces setup and hold times for a state endpoint from
// its recognized structure (§4.3: "algorithms are needed, which ...
// will automatically identify the constraint and calculate the correct
// constraint time (setup time and hold time) for any full custom
// circuit. The constraint generation algorithms must be accurate but
// error on the side of being pessimistic.")
//
// Setup is dominated by the time to write the storage node through its
// clocked pass structure: 0.69·R_pass·C_store, inflated by a safety
// factor. Hold covers clock/data overlap at the pass gate: a fraction of
// an FO4 plus a fixed margin. When no pass structure is recognizable the
// fallbacks are expressed in FO4s so they track the process.
func (a *analyzer) constraintFor(id netlist.NodeID) (setupPS, holdPS float64) {
	const (
		setupSafety  = 1.5
		holdFraction = 0.4
		holdMarginPS = 5.0
	)
	p := a.opt.Proc
	fo4 := p.FO4ps(process.Typical)
	setupPS = 2 * fo4 // pessimistic fallback
	holdPS = holdFraction*fo4 + holdMarginPS

	// Find the latch owning this state node and its clocked pass
	// devices feeding the loop.
	var latch *recognize.Latch
	for i := range a.rec.Latches {
		for _, sn := range a.rec.Latches[i].StateNodes {
			if sn == id {
				latch = &a.rec.Latches[i]
			}
		}
	}
	if latch == nil {
		return setupPS, holdPS
	}
	cStore := a.loadFF[id]
	var rPass float64
	for _, gi := range latch.Groups {
		for _, d := range a.rec.Groups[gi].Devices {
			if !a.rec.IsClock(d.Gate) {
				continue
			}
			r := p.Reff(d.Type, d.Vt, d.W, d.Leff(), process.Slow)
			if r > rPass {
				rPass = r
			}
		}
	}
	// Pass devices may sit outside the loop groups (a tgate feeding the
	// keeper): look at devices channel-connected to the state node.
	for _, d := range a.c.DevicesOn(id) {
		if !a.rec.IsClock(d.Gate) {
			continue
		}
		r := p.Reff(d.Type, d.Vt, d.W, d.Leff(), process.Slow)
		if r > rPass {
			rPass = r
		}
	}
	if rPass > 0 && cStore > 0 {
		if s := 0.69 * rPass * cStore * 1e-3 * setupSafety; s > 0 {
			setupPS = s
		}
	}
	return setupPS, holdPS
}

// launchPhase returns the transparent window of the clock launching the
// path starting at the given node, and whether the launch is clocked.
func (a *analyzer) launchPhase(id netlist.NodeID) (Phase, bool) {
	if a.rec.IsState(id) || a.rec.IsDynamic(id) {
		ph, _ := a.opt.Clock.PhaseOf(a.stateClock(id))
		return ph, true
	}
	return Phase{}, false
}

// overlaps reports whether two transparent windows overlap in time.
func overlaps(x, y Phase) bool {
	return x.OpenPS < y.ClosePS && y.OpenPS < x.ClosePS
}

// check generates endpoint constraints, builds paths and slack-sorts the
// report.
func (a *analyzer) check(rep *Report) {
	spec := a.opt.Clock
	endpoint := func(id netlist.NodeID, arrival Bounds, predMaxStart, predMinStart []netlist.NodeID, isStateEP bool) {
		p := Path{Endpoint: id, Arrival: arrival}
		p.NodesMax = a.tracePath(id, predMaxStart, a.predMax)
		p.NodesMin = a.tracePath(id, predMinStart, a.predMin)

		if isStateEP {
			clockNet := a.stateClock(id)
			capPh, _ := spec.PhaseOf(clockNet)
			p.CaptureClock = clockNet
			p.SetupPS, p.HoldPS = a.constraintFor(id)

			// Setup: capture at the first close edge at or after the
			// path's launch instant (wrap to the next cycle when the
			// data launches after this cycle's close edge).
			launchT := 0.0
			if len(p.NodesMax) > 0 {
				if lb, ok := a.launchBounds(p.NodesMax[0]); ok {
					launchT = lb.Min
				}
			}
			closeEdge := capPh.ClosePS
			for closeEdge < launchT {
				closeEdge += spec.PeriodPS
			}
			// An early capture edge (negative skew) steals setup time.
			p.RequiredMax = closeEdge - p.SetupPS - a.opt.ClockSkewPS

			// Hold (race): only same-window or overlapping-window
			// launch/capture pairs can race through a transparent
			// latch; non-overlapping phases are race-immune by
			// construction (Figure 4's methodology). A racing path must
			// arrive after the capture latch has closed.
			// Dynamic (domino) nodes are exempt from flow-through race
			// checks in both roles: domino cascades same-phase by
			// design, relying on monotonicity rather than phase
			// separation (the monotonicity obligation is the checks
			// package's concern, not a hold time).
			raceable := false
			if len(p.NodesMin) > 0 && !a.rec.IsDynamic(id) {
				launch := p.NodesMin[0]
				if lp, clocked := a.launchPhase(launch); clocked && overlaps(lp, capPh) &&
					!a.sameLatch(launch, id) && !a.rec.IsDynamic(launch) {
					raceable = true
				}
			}
			if raceable {
				// A late capture edge (positive skew) extends the
				// window the racing data must outlast.
				p.RequiredMin = capPh.ClosePS + p.HoldPS + a.opt.ClockSkewPS
			} else {
				p.RequiredMin = math.Inf(-1)
			}
		} else {
			// Primary output: must settle within the cycle; no race.
			p.RequiredMax = spec.PeriodPS
			p.RequiredMin = math.Inf(-1)
		}
		p.SetupSlack = p.RequiredMax - p.Arrival.Max
		if math.IsInf(p.RequiredMin, -1) {
			p.HoldSlack = math.Inf(1)
		} else {
			p.HoldSlack = p.Arrival.Min - p.RequiredMin
		}
		rep.Paths = append(rep.Paths, p)
	}

	// State endpoints with captured data.
	capIDs := a.capIDs
	sort.Slice(capIDs, func(i, j int) bool { return capIDs[i] < capIDs[j] })
	for _, id := range capIDs {
		endpoint(id, a.capture[id], a.capPredMax, a.capPredMin, true)
	}
	// Driven output ports.
	for _, pid := range a.c.Ports {
		if _, driven := a.rec.DriverOf[pid]; !driven {
			continue
		}
		if a.isState[pid] || a.rec.IsClock(pid) {
			continue
		}
		if b, ok := rep.Arrival[pid]; ok {
			endpoint(pid, b, a.predMax, a.predMin, false)
		}
	}

	sort.Slice(rep.Paths, func(i, j int) bool {
		if rep.Paths[i].SetupSlack != rep.Paths[j].SetupSlack {
			return rep.Paths[i].SetupSlack < rep.Paths[j].SetupSlack
		}
		return rep.Paths[i].Endpoint < rep.Paths[j].Endpoint
	})
	for _, p := range rep.Paths {
		if p.HoldSlack < 0 {
			rep.Races = append(rep.Races, p)
		}
	}
	sort.Slice(rep.Races, func(i, j int) bool { return rep.Races[i].HoldSlack < rep.Races[j].HoldSlack })

	// Minimum period estimate: shift the current period by the worst
	// setup slack (endpoints' required times move with the period).
	rep.MinPeriodPS = spec.PeriodPS
	if cp := rep.CriticalPath(); cp != nil {
		rep.MinPeriodPS = spec.PeriodPS - cp.SetupSlack
		if rep.MinPeriodPS < 0 {
			rep.MinPeriodPS = 0
		}
	}
}

// sameLatch reports whether two nodes are state nodes of one recognized
// feedback loop: the keeper path inside a latch is its storage mechanism,
// not a race.
func (a *analyzer) sameLatch(x, y netlist.NodeID) bool {
	for i := range a.rec.Latches {
		hasX, hasY := false, false
		for _, sn := range a.rec.Latches[i].StateNodes {
			if sn == x {
				hasX = true
			}
			if sn == y {
				hasY = true
			}
		}
		if hasX && hasY {
			return true
		}
	}
	return false
}

// tracePath reconstructs a path by walking predecessor links from the
// endpoint back to a launch point (InvalidNode terminates). first
// selects the endpoint's own predecessor table (capture-side); rest is
// the propagation table.
func (a *analyzer) tracePath(end netlist.NodeID, first, rest []netlist.NodeID) []netlist.NodeID {
	var rev []netlist.NodeID
	rev = append(rev, end)
	for cur := first[end]; cur != netlist.InvalidNode; cur = rest[cur] {
		rev = append(rev, cur)
		if len(rev) > len(a.c.Nodes)+2 {
			break // cycle guard
		}
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Format renders the report the way the paper's designers consumed it:
// worst paths first, races called out unconditionally (§4.3: a missed
// race means "a costly debug along with a schedule slip").
func (r *Report) Format(maxPaths int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "timing: %d arcs, %d endpoints, min period %.0f ps\n",
		len(r.Arcs), len(r.Paths), r.MinPeriodPS)
	if len(r.Races) > 0 {
		fmt.Fprintf(&sb, "RACES (%d) — these break the design at ANY frequency:\n", len(r.Races))
		for _, p := range r.Races {
			fmt.Fprintf(&sb, "  %s: hold slack %.0f ps (min path %v)\n",
				r.Circuit.NodeName(p.Endpoint), p.HoldSlack, names(r.Circuit, p.NodesMin))
		}
	}
	n := len(r.Paths)
	if maxPaths > 0 && n > maxPaths {
		n = maxPaths
	}
	sb.WriteString("critical paths (worst first):\n")
	for i := 0; i < n; i++ {
		p := r.Paths[i]
		fmt.Fprintf(&sb, "  %-16s slack %7.0f ps  arrival [%.0f, %.0f]  %v\n",
			r.Circuit.NodeName(p.Endpoint), p.SetupSlack, p.Arrival.Min, p.Arrival.Max,
			names(r.Circuit, p.NodesMax))
	}
	return sb.String()
}

// names maps node IDs to their names.
func names(c *netlist.Circuit, ids []netlist.NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = c.NodeName(id)
	}
	return out
}
