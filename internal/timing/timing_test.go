package timing

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/recognize"
)

// addInv appends an inverter to c.
func addInv(c *netlist.Circuit, name, in, out string) {
	c.NMOS(name+"_n", in, "vss", out, 2, 0.75)
	c.PMOS(name+"_p", in, "vdd", out, 4, 0.75)
}

// addTGLatch appends a transmission-gate latch: d -(ck,ckn)-> m -> q with
// weak feedback q -> m.
func addTGLatch(c *netlist.Circuit, name, d, ck, ckn, q string) {
	m := name + "_m"
	c.NMOS(name+"_pn", ck, d, m, 4, 0.75)
	c.PMOS(name+"_pp", ckn, d, m, 4, 0.75)
	addInv(c, name+"_fwd", m, q)
	c.NMOS(name+"_fbn", q, "vss", m, 1, 0.75)
	c.PMOS(name+"_fbp", q, "vdd", m, 2, 0.75)
}

// analyzeCircuit recognizes and times a circuit with default options.
func analyzeCircuit(t *testing.T, c *netlist.Circuit, opt Options) (*recognize.Result, *Report) {
	t.Helper()
	rec, err := recognize.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(rec, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rec, rep
}

func defaultOpts() Options {
	return Options{
		Proc:  process.CMOS075(),
		Clock: TwoPhase(5000), // 200 MHz
	}
}

func TestClockSpecTwoPhase(t *testing.T) {
	spec := TwoPhase(5000)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	p1, ok := spec.PhaseOf("phi1")
	if !ok || p1.OpenPS != 0 {
		t.Errorf("phi1 = %+v ok=%v", p1, ok)
	}
	p2, ok := spec.PhaseOf("phi2")
	if !ok || p2.OpenPS != 2500 {
		t.Errorf("phi2 = %+v ok=%v", p2, ok)
	}
	if overlaps(p1, p2) {
		t.Error("two-phase windows must not overlap")
	}
	// Hierarchical and suffixed names resolve.
	if p, ok := spec.PhaseOf("core/alu/phi1_buf"); !ok || p.OpenPS != p1.OpenPS {
		t.Error("hierarchical clock name did not resolve")
	}
	// Unknown clock gets the pessimistic full-period window.
	pu, ok := spec.PhaseOf("mystery")
	if ok {
		t.Error("unknown clock reported as known")
	}
	if pu.OpenPS != 0 || pu.ClosePS != 5000 {
		t.Errorf("unknown clock window = %+v", pu)
	}
	if names := spec.PhaseNames(); len(names) != 2 || names[0] != "phi1" {
		t.Errorf("phase names = %v", names)
	}
}

func TestClockSpecValidate(t *testing.T) {
	bad := []ClockSpec{
		{PeriodPS: 0},
		{PeriodPS: 100, Phases: map[string]Phase{"a": {OpenPS: -1, ClosePS: 50}}},
		{PeriodPS: 100, Phases: map[string]Phase{"a": {OpenPS: 60, ClosePS: 50}}},
		{PeriodPS: 100, Phases: map[string]Phase{"a": {OpenPS: 0, ClosePS: 150}}},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestInverterChainArrivals(t *testing.T) {
	c := netlist.New("chain")
	c.DeclarePort("a")
	prev := "a"
	var mids []string
	for i := 0; i < 6; i++ {
		next := "n" + strconv.Itoa(i)
		addInv(c, "u"+strconv.Itoa(i), prev, next)
		mids = append(mids, next)
		prev = next
	}
	c.DeclarePort(prev)
	_, rep := analyzeCircuit(t, c, defaultOpts())

	// Arrivals increase monotonically down the chain and bounds nest.
	prevMax := 0.0
	for _, name := range mids {
		b, ok := rep.Arrival[c.FindNode(name)]
		if !ok {
			t.Fatalf("no arrival at %s", name)
		}
		if b.Max <= prevMax {
			t.Errorf("%s: max arrival %g not increasing", name, b.Max)
		}
		if b.Min > b.Max || b.Min <= 0 {
			t.Errorf("%s: bad bounds %+v", name, b)
		}
		prevMax = b.Max
	}
	cp := rep.CriticalPath()
	if cp == nil {
		t.Fatal("no critical path")
	}
	if got := rep.Circuit.NodeName(cp.Endpoint); got != prev {
		t.Errorf("critical endpoint = %s, want %s", got, prev)
	}
	// The reconstructed path must start at the input and walk the chain.
	names := rep.PathNodeNames(cp)
	if len(names) != 7 || names[0] != "a" || names[6] != prev {
		t.Errorf("critical path = %v", names)
	}
	if cp.SetupSlack <= 0 {
		t.Errorf("a 6-inverter chain must meet 5 ns: slack %g", cp.SetupSlack)
	}
	if rep.MinPeriodPS <= 0 || rep.MinPeriodPS >= 5000 {
		t.Errorf("MinPeriodPS = %g", rep.MinPeriodPS)
	}
}

func TestLongerChainSlower(t *testing.T) {
	build := func(n int) *Report {
		c := netlist.New("chain")
		c.DeclarePort("a")
		prev := "a"
		for i := 0; i < n; i++ {
			next := "n" + strconv.Itoa(i)
			addInv(c, "u"+strconv.Itoa(i), prev, next)
			prev = next
		}
		c.DeclarePort(prev)
		_, rep := analyzeCircuit(t, c, defaultOpts())
		return rep
	}
	short := build(4)
	long := build(12)
	if long.CriticalPath().Arrival.Max <= short.CriticalPath().Arrival.Max {
		t.Error("longer chain should have larger max arrival")
	}
	if long.MinPeriodPS <= short.MinPeriodPS {
		t.Error("longer chain should need a longer period")
	}
}

func TestPessimismWidensBounds(t *testing.T) {
	build := func(pess float64) Bounds {
		c := netlist.New("chain")
		c.DeclarePort("a")
		prev := "a"
		for i := 0; i < 5; i++ {
			next := "n" + strconv.Itoa(i)
			addInv(c, "u"+strconv.Itoa(i), prev, next)
			prev = next
		}
		c.DeclarePort(prev)
		opt := defaultOpts()
		opt.CouplingPessimism = pess
		_, rep := analyzeCircuit(t, c, opt)
		return rep.CriticalPath().Arrival
	}
	tight := build(1.0)
	wide := build(1.5)
	if !(wide.Max > tight.Max && wide.Min < tight.Min) {
		t.Errorf("pessimism 1.5 bounds %+v should contain pessimism 1.0 bounds %+v", wide, tight)
	}
}

func TestLatchSetupCheck(t *testing.T) {
	// Input → 4 inverters → phi2 latch. Data arrives early in the
	// cycle; phi2 closes near the period end: generous setup slack.
	c := netlist.New("pipe")
	c.DeclarePort("d")
	prev := "d"
	for i := 0; i < 4; i++ {
		next := "n" + strconv.Itoa(i)
		addInv(c, "u"+strconv.Itoa(i), prev, next)
		prev = next
	}
	addTGLatch(c, "l1", prev, "phi2", "phi2n", "q")
	c.DeclarePort("q")
	rec, rep := analyzeCircuit(t, c, defaultOpts())
	if len(rec.Latches) != 1 {
		t.Fatalf("latches = %d", len(rec.Latches))
	}
	// Find the state endpoint capturing the data (the latch m node).
	var latchPath *Path
	for i := range rep.Paths {
		if rep.Circuit.NodeName(rep.Paths[i].Endpoint) == "l1_m" {
			latchPath = &rep.Paths[i]
		}
	}
	if latchPath == nil {
		t.Fatalf("no capture path at l1_m; endpoints: %v", endpointNames(rep))
	}
	if latchPath.SetupPS <= 0 {
		t.Error("deduced setup time must be positive")
	}
	if latchPath.CaptureClock == "" {
		t.Error("capture clock not identified")
	}
	if latchPath.SetupSlack <= 0 {
		t.Errorf("4 inverters into an end-of-cycle latch must pass: slack %g", latchPath.SetupSlack)
	}
	if len(rep.Races) != 0 {
		t.Errorf("phi2 capture of input-launched data must not race: %+v", rep.Races)
	}
}

func TestSamePhaseRaceDetected(t *testing.T) {
	// Figure 4's race: two phi1 latches back-to-back with one inverter
	// between them. Data launched at phi1 open flows through the second
	// latch while it is still transparent — broken at any frequency.
	c := netlist.New("racey")
	c.DeclarePort("d")
	addTGLatch(c, "l1", "d", "phi1", "phi1n", "q1")
	addInv(c, "u1", "q1", "d2")
	addTGLatch(c, "l2", "d2", "phi1", "phi1n", "q2")
	c.DeclarePort("q2")
	_, rep := analyzeCircuit(t, c, defaultOpts())
	if len(rep.Races) == 0 {
		t.Fatalf("same-phase back-to-back latches must race; endpoints: %v", endpointNames(rep))
	}
	worst := rep.Races[0]
	if worst.HoldSlack >= 0 {
		t.Error("race must have negative hold slack")
	}
}

func TestAlternatingPhasesNoRace(t *testing.T) {
	// The corrected pipeline: phi1 latch → logic → phi2 latch.
	c := netlist.New("clean")
	c.DeclarePort("d")
	addTGLatch(c, "l1", "d", "phi1", "phi1n", "q1")
	addInv(c, "u1", "q1", "d2")
	addTGLatch(c, "l2", "d2", "phi2", "phi2n", "q2")
	c.DeclarePort("q2")
	_, rep := analyzeCircuit(t, c, defaultOpts())
	for _, r := range rep.Races {
		// Only races internal to one latch loop (m↔q feedback within
		// the same clock) would be acceptable; between latches is not.
		t.Errorf("unexpected race at %s (slack %g)", rep.Circuit.NodeName(r.Endpoint), r.HoldSlack)
	}
}

func TestFalsePathExcluded(t *testing.T) {
	// Marking the chain input false_path removes downstream arrivals.
	c := netlist.New("fp")
	c.DeclarePort("a")
	addInv(c, "u1", "a", "m")
	addInv(c, "u2", "m", "y")
	c.DeclarePort("y")
	c.SetAttr(c.Node("a"), "false_path", "")
	_, rep := analyzeCircuit(t, c, defaultOpts())
	if _, ok := rep.Arrival[c.FindNode("y")]; ok {
		t.Error("false_path input should cut all arcs from it")
	}
}

func TestDominoLaunchesFromClock(t *testing.T) {
	// Domino gate followed by static buffer: the dynamic node launches
	// at evaluate (phi1 open), so the buffer output's arrival sits
	// after the phi1 open edge.
	c := netlist.New("dom")
	c.DeclarePort("a")
	c.DeclarePort("b")
	c.PMOS("mpre", "phi1", "vdd", "dyn", 4, 0.75)
	c.NMOS("ma", "a", "x1", "dyn", 6, 0.75)
	c.NMOS("mb", "b", "x2", "x1", 6, 0.75)
	c.NMOS("mfoot", "phi1", "vss", "x2", 8, 0.75)
	addInv(c, "buf", "dyn", "out")
	c.DeclarePort("out")
	_, rep := analyzeCircuit(t, c, defaultOpts())
	b, ok := rep.Arrival[c.FindNode("out")]
	if !ok {
		t.Fatal("no arrival at out")
	}
	if b.Min <= 0 {
		t.Errorf("domino output min arrival %g should be after the clock edge", b.Min)
	}
}

func TestAnalyzeOptionValidation(t *testing.T) {
	c := netlist.New("x")
	addInv(c, "u", "a", "y")
	rec, err := recognize.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(rec, Options{Clock: TwoPhase(1000)}); err == nil {
		t.Error("missing process should fail")
	}
	if _, err := Analyze(rec, Options{Proc: process.CMOS075(), Clock: ClockSpec{}}); err == nil {
		t.Error("invalid clock should fail")
	}
	if _, err := Analyze(rec, Options{Proc: process.CMOS075(), Clock: TwoPhase(1000), CouplingPessimism: 0.5}); err == nil {
		t.Error("pessimism < 1 should fail")
	}
}

func TestInputArrivalOverride(t *testing.T) {
	c := netlist.New("ovr")
	c.DeclarePort("a")
	addInv(c, "u", "a", "y")
	c.DeclarePort("y")
	opt := defaultOpts()
	opt.InputArrival = map[string]Bounds{"a": {Min: 100, Max: 400}}
	_, rep := analyzeCircuit(t, c, opt)
	b := rep.Arrival[c.FindNode("y")]
	if b.Min <= 100 || b.Max <= 400 {
		t.Errorf("override not honored: %+v", b)
	}
}

func TestMinMaxOrderingInvariant(t *testing.T) {
	// For every node with an arrival, Min ≤ Max must hold.
	c := netlist.New("mix")
	c.DeclarePort("a")
	c.DeclarePort("b")
	addInv(c, "u1", "a", "m1")
	addInv(c, "u2", "b", "m2")
	c.NMOS("mn1", "m1", "x", "y", 4, 0.75)
	c.NMOS("mn2", "m2", "vss", "x", 4, 0.75)
	c.PMOS("mp1", "m1", "vdd", "y", 4, 0.75)
	c.PMOS("mp2", "m2", "vdd", "y", 4, 0.75)
	c.DeclarePort("y")
	_, rep := analyzeCircuit(t, c, defaultOpts())
	for id, b := range rep.Arrival {
		if b.Min > b.Max {
			t.Errorf("node %s: Min %g > Max %g", rep.Circuit.NodeName(id), b.Min, b.Max)
		}
	}
}

// endpointNames lists report endpoints for failure messages.
func endpointNames(rep *Report) []string {
	var out []string
	for _, p := range rep.Paths {
		out = append(out, rep.Circuit.NodeName(p.Endpoint))
	}
	return out
}

func TestPhaseWidth(t *testing.T) {
	p := Phase{OpenPS: 100, ClosePS: 400}
	if p.Width() != 300 {
		t.Errorf("width = %g", p.Width())
	}
}

func TestSinglePhaseSpec(t *testing.T) {
	spec := SinglePhase(2000)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	p, ok := spec.PhaseOf("clk")
	if !ok || p.ClosePS != 1000 {
		t.Errorf("clk phase = %+v ok=%v", p, ok)
	}
}

func TestRaceIndependentOfFrequency(t *testing.T) {
	// The same racey circuit at a 10× slower clock still races (§4.3:
	// race paths "will prevent the chip from working at any frequency").
	build := func(period float64) int {
		c := netlist.New("racey")
		c.DeclarePort("d")
		addTGLatch(c, "l1", "d", "phi1", "phi1n", "q1")
		addInv(c, "u1", "q1", "d2")
		addTGLatch(c, "l2", "d2", "phi1", "phi1n", "q2")
		c.DeclarePort("q2")
		opt := defaultOpts()
		opt.Clock = TwoPhase(period)
		_, rep := analyzeCircuit(t, c, opt)
		return len(rep.Races)
	}
	if build(5000) == 0 || build(50000) == 0 {
		t.Error("race must persist at any frequency")
	}
}

func TestSetupSlackMath(t *testing.T) {
	// SetupSlack must equal RequiredMax - Arrival.Max on every path.
	c := netlist.New("chk")
	c.DeclarePort("a")
	addInv(c, "u1", "a", "m")
	addInv(c, "u2", "m", "y")
	c.DeclarePort("y")
	_, rep := analyzeCircuit(t, c, defaultOpts())
	for _, p := range rep.Paths {
		if math.Abs(p.SetupSlack-(p.RequiredMax-p.Arrival.Max)) > 1e-9 {
			t.Errorf("slack math wrong at %s", rep.Circuit.NodeName(p.Endpoint))
		}
	}
}

func TestClockSkewTightensChecks(t *testing.T) {
	build := func(skew float64) *Report {
		c := netlist.New("sk")
		c.DeclarePort("d")
		addTGLatch(c, "l1", "d", "phi1", "phi1n", "q1")
		addInv(c, "u1", "q1", "d2")
		addTGLatch(c, "l2", "d2", "phi2", "phi2n", "q2")
		c.DeclarePort("q2")
		opt := defaultOpts()
		opt.ClockSkewPS = skew
		_, rep := analyzeCircuit(t, c, opt)
		return rep
	}
	noSkew := build(0)
	skewed := build(200)
	if skewed.CriticalPath().SetupSlack >= noSkew.CriticalPath().SetupSlack {
		t.Errorf("skew should cut setup slack: %.0f vs %.0f",
			skewed.CriticalPath().SetupSlack, noSkew.CriticalPath().SetupSlack)
	}
	// Hold slack tightens too on raceable (same-phase) topologies.
	buildRacy := func(skew float64) float64 {
		c := netlist.New("skr")
		c.DeclarePort("d")
		addTGLatch(c, "l1", "d", "phi1", "phi1n", "q1")
		addInv(c, "u1", "q1", "d2")
		addTGLatch(c, "l2", "d2", "phi1", "phi1n", "q2")
		c.DeclarePort("q2")
		opt := defaultOpts()
		opt.ClockSkewPS = skew
		_, rep := analyzeCircuit(t, c, opt)
		if len(rep.Races) == 0 {
			t.Fatal("race lost")
		}
		return rep.Races[0].HoldSlack
	}
	if buildRacy(200) >= buildRacy(0) {
		t.Error("skew should worsen hold slack")
	}
	// Negative skew is rejected.
	c := netlist.New("bad")
	addInv(c, "u", "a", "y")
	rec, err := recognize.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	opt := defaultOpts()
	opt.ClockSkewPS = -5
	if _, err := Analyze(rec, opt); err == nil {
		t.Error("negative skew accepted")
	}
}

func TestReportFormat(t *testing.T) {
	c := netlist.New("fmt")
	c.DeclarePort("d")
	addTGLatch(c, "l1", "d", "phi1", "phi1n", "q1")
	addInv(c, "u1", "q1", "d2")
	addTGLatch(c, "l2", "d2", "phi1", "phi1n", "q2")
	c.DeclarePort("q2")
	_, rep := analyzeCircuit(t, c, defaultOpts())
	s := rep.Format(3)
	for _, want := range []string{"RACES", "ANY frequency", "critical paths", "min period"} {
		if !strings.Contains(s, want) {
			t.Errorf("format missing %q:\n%s", want, s)
		}
	}
}
