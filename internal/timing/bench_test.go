package timing_test

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/process"
	"repro/internal/recognize"
	"repro/internal/timing"
)

// BenchmarkAnalyzeKernel measures timing path enumeration and
// propagation over the recognized latch pipeline — arcs, worklist
// arrival propagation, endpoint checks and path reconstruction.
// Recognition is done once outside the loop, matching how core.Verify
// shares one recognition across stages.
func BenchmarkAnalyzeKernel(b *testing.B) {
	c := designs.LatchPipeline(6, false)
	rec, err := recognize.Analyze(c)
	if err != nil {
		b.Fatal(err)
	}
	opt := timing.Options{Proc: process.CMOS075(), Clock: timing.TwoPhase(3000)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timing.Analyze(rec, opt); err != nil {
			b.Fatal(err)
		}
	}
}
