package timing

import (
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/recognize"
)

// Bounds is a [min, max] time pair in picoseconds.
type Bounds struct {
	Min, Max float64
}

// Arc is one timing edge of the deduced graph: a transition on From can
// cause a transition on To after a bounded delay.
type Arc struct {
	From, To netlist.NodeID
	// DelayPS bounds the arc delay: Min at the fast corner with minimum
	// coupling, Max at the slow corner with maximum coupling.
	DelayPS Bounds
	// Group is the recognized group index providing the arc (-1 for
	// extracted-resistor arcs).
	Group int
}

// Options configures an analysis run.
type Options struct {
	// Proc is the process model (required).
	Proc *process.Process
	// Clock is the clocking methodology (required: Validate must pass).
	Clock ClockSpec
	// CouplingPessimism ≥ 1 scales load capacitance up for max delays
	// and down for min delays, standing in for the min/max coupling
	// bounding of §4.3. 1.0 means no bounding (unsafe); the S6
	// experiment sweeps this.
	CouplingPessimism float64
	// InputArrival optionally overrides arrival bounds at input ports
	// (by node name). Unlisted inputs arrive at phase phi1 open (time 0)
	// exactly.
	InputArrival map[string]Bounds
	// ClockSkewPS is the clock-distribution uncertainty: every capture
	// edge may be up to this much early (tightening setup) or late
	// (tightening hold). §4.2's clock RC analysis bounds this number;
	// the timing verifier consumes it.
	ClockSkewPS float64
}

// Path is a timed path to one endpoint, with both setup and hold checks.
type Path struct {
	// Endpoint is the capture node (state node or output port).
	Endpoint netlist.NodeID
	// NodesMax is the max-arrival (critical) path, launch to endpoint.
	NodesMax []netlist.NodeID
	// NodesMin is the min-arrival (race) path.
	NodesMin []netlist.NodeID
	// Arrival bounds the data arrival at the endpoint.
	Arrival Bounds
	// RequiredMax is the latest allowed arrival (setup-constrained).
	RequiredMax float64
	// RequiredMin is the earliest allowed arrival (hold-constrained).
	RequiredMin float64
	// SetupSlack = RequiredMax - Arrival.Max (negative: critical
	// violation — limits frequency).
	SetupSlack float64
	// HoldSlack = Arrival.Min - RequiredMin (negative: race — broken at
	// any frequency).
	HoldSlack float64
	// SetupPS/HoldPS are the deduced constraint values applied.
	SetupPS, HoldPS float64
	// CaptureClock names the clock capturing this endpoint ("" for a
	// primary output).
	CaptureClock string
	// SetupID and HoldID are the stable finding identities for this
	// endpoint's setup and hold checks ("timing/setup@<16-hex>"):
	// rename-invariant because the hex half is the endpoint's structural
	// signature (netlist.Signatures). Diff tooling keys timing
	// violations on these, so a renamed endpoint is the same finding.
	SetupID, HoldID string
}

// Report is the result of a timing run.
type Report struct {
	// Circuit under analysis.
	Circuit *netlist.Circuit
	// Arcs is the deduced timing graph.
	Arcs []Arc
	// Arrival bounds per node (nodes with no arrival are absent).
	Arrival map[netlist.NodeID]Bounds
	// Paths holds one entry per endpoint, sorted by ascending setup
	// slack (most critical first).
	Paths []Path
	// Races are the endpoints with negative hold slack, worst first.
	Races []Path
	// MinPeriodPS is the smallest period at which no setup check fails
	// (races are period-independent and reported separately).
	MinPeriodPS float64
	// Levels is the number of levelization iterations used.
	Levels int
}

// CriticalPath returns the worst-setup-slack path, or nil.
func (r *Report) CriticalPath() *Path {
	if len(r.Paths) == 0 {
		return nil
	}
	return &r.Paths[0]
}

// PathNodeNames renders a path's max (critical) route as node names.
func (r *Report) PathNodeNames(p *Path) []string {
	out := make([]string, len(p.NodesMax))
	for i, id := range p.NodesMax {
		out[i] = r.Circuit.NodeName(id)
	}
	return out
}

// Analyze runs static timing over a recognized circuit.
func Analyze(rec *recognize.Result, opt Options) (*Report, error) {
	if opt.Proc == nil {
		return nil, fmt.Errorf("timing: missing process model")
	}
	if err := opt.Clock.Validate(); err != nil {
		return nil, err
	}
	if opt.CouplingPessimism < 1 {
		if opt.CouplingPessimism != 0 {
			return nil, fmt.Errorf("timing: coupling pessimism %g must be ≥ 1", opt.CouplingPessimism)
		}
		opt.CouplingPessimism = 1.15
	}
	if opt.ClockSkewPS < 0 {
		return nil, fmt.Errorf("timing: negative clock skew %g", opt.ClockSkewPS)
	}
	a := &analyzer{rec: rec, c: rec.Circuit, opt: opt}
	a.buildLoads()
	a.buildArcs()
	a.buildFanout()
	rep := &Report{Circuit: a.c, Arcs: a.arcs, Arrival: make(map[netlist.NodeID]Bounds)}
	a.propagate(rep)
	a.check(rep)
	attachPathIDs(rep)
	return rep, nil
}

// attachPathIDs fills every path's stable setup/hold finding identities.
// Paths are already in their deterministic (slack-sorted) order, so the
// "#n" disambiguation of structurally symmetric endpoints is stable;
// Races are copies of Paths entries and inherit the IDs by endpoint.
func attachPathIDs(rep *Report) {
	if len(rep.Paths) == 0 {
		return
	}
	sigs := netlist.ComputeSignatures(rep.Circuit)
	setup := make([]string, len(rep.Paths))
	hold := make([]string, len(rep.Paths))
	for i, p := range rep.Paths {
		name := rep.Circuit.NodeName(p.Endpoint)
		setup[i] = sigs.FindingID("timing", "setup", name)
		hold[i] = sigs.FindingID("timing", "hold", name)
	}
	netlist.DisambiguateIDs(setup)
	netlist.DisambiguateIDs(hold)
	byEndpoint := make(map[netlist.NodeID]int, len(rep.Paths))
	for i := range rep.Paths {
		rep.Paths[i].SetupID = setup[i]
		rep.Paths[i].HoldID = hold[i]
		byEndpoint[rep.Paths[i].Endpoint] = i
	}
	for i := range rep.Races {
		if j, ok := byEndpoint[rep.Races[i].Endpoint]; ok {
			rep.Races[i].SetupID = rep.Paths[j].SetupID
			rep.Races[i].HoldID = rep.Paths[j].HoldID
		}
	}
}

// analyzer carries working state for a run.
type analyzer struct {
	rec *recognize.Result
	c   *netlist.Circuit
	opt Options

	loadFF []float64 // per node: nominal load capacitance
	arcs   []Arc
	// fanout in compressed sparse row form: arc indices leaving node n
	// are fanArcs[fanOff[n]:fanOff[n+1]], in arc-insertion order.
	fanOff  []int32
	fanArcs []int32
	isState []bool                    // per node
	clockOf map[netlist.NodeID]string // state node → clock net name

	// capture accumulates data arrivals at state endpoints (hasCapture
	// gates validity, capIDs lists them in first-capture order); predMax
	// and predMin record the arc source that produced each bound, for
	// path reconstruction (InvalidNode = none). All are node-indexed.
	capture    []Bounds
	hasCapture []bool
	capIDs     []netlist.NodeID
	predMax    []netlist.NodeID
	predMin    []netlist.NodeID
	capPredMax []netlist.NodeID
	capPredMin []netlist.NodeID
}

// buildLoads computes nominal load capacitance of every node: explicit
// node cap + gate caps of devices it drives + diffusion caps of devices
// whose channels touch it.
func (a *analyzer) buildLoads() {
	p := a.opt.Proc
	a.loadFF = make([]float64, len(a.c.Nodes))
	for i, n := range a.c.Nodes {
		a.loadFF[i] = n.CapFF
	}
	for _, d := range a.c.Devices {
		a.loadFF[d.Gate] += p.CgateFF(d.W, d.Leff())
		a.loadFF[d.Source] += p.CdiffFF(d.W)
		a.loadFF[d.Drain] += p.CdiffFF(d.W)
	}
}

// buildArcs derives timing arcs from each recognized group (gate input →
// output with bounded switch delay) and from extracted resistors (RC
// settling arcs).
func (a *analyzer) buildArcs() {
	for gi, g := range a.rec.Groups {
		for _, f := range g.Funcs {
			out := f.Node
			rMin, rMax := a.driveRes(g, out)
			if math.IsInf(rMax, 1) {
				continue // output never driven: no arc
			}
			loadMin := a.loadFF[out] / a.opt.CouplingPessimism
			loadMax := a.loadFF[out] * a.opt.CouplingPessimism
			delay := Bounds{
				Min: 0.69 * rMin * loadMin * 1e-3,
				Max: 0.69 * rMax * loadMax * 1e-3,
			}
			// Arcs from every (non-clock) input that can switch out.
			for _, in := range a.inputsOf(g) {
				if a.rec.IsClock(in) {
					continue // clocked launches handled at endpoints
				}
				if a.c.Nodes[in].HasAttr("false_path") {
					continue // designer-declared false path (§4.3)
				}
				a.addArc(Arc{From: in, To: out, DelayPS: delay, Group: gi})
			}
		}
	}
	// Pass-transistor data arcs: a signal entering a group through a
	// device channel (tgate, steering mux, latch D input) propagates to
	// the group's outputs with the pass path's RC delay.
	for gi, g := range a.rec.Groups {
		for _, ci := range g.ChannelInputs {
			if a.c.Nodes[ci].HasAttr("false_path") {
				continue
			}
			for _, out := range g.Outputs {
				if out == ci {
					continue
				}
				rMin, rMax := math.Inf(1), 0.0
				for _, path := range a.rec.ChannelPaths(g, ci, out) {
					fastR, slowR := 0.0, 0.0
					for _, d := range path {
						fastR += a.opt.Proc.Reff(d.Type, d.Vt, d.W, d.Leff(), process.Fast)
						slowR += a.opt.Proc.Reff(d.Type, d.Vt, d.W, d.Leff(), process.Slow)
					}
					if fastR < rMin {
						rMin = fastR
					}
					if slowR > rMax {
						rMax = slowR
					}
				}
				if rMax == 0 || math.IsInf(rMin, 1) {
					continue
				}
				delay := Bounds{
					Min: 0.69 * rMin * a.loadFF[out] / a.opt.CouplingPessimism * 1e-3,
					Max: 0.69 * rMax * a.loadFF[out] * a.opt.CouplingPessimism * 1e-3,
				}
				a.addArc(Arc{From: ci, To: out, DelayPS: delay, Group: gi})
			}
		}
	}
	// Extracted resistors: settling arcs both directions.
	for _, r := range a.c.Resistors {
		if a.c.IsSupply(r.A) || a.c.IsSupply(r.B) {
			continue
		}
		dAB := 0.69 * r.Ohms * a.loadFF[r.B] * 1e-3
		dBA := 0.69 * r.Ohms * a.loadFF[r.A] * 1e-3
		a.addArc(Arc{From: r.A, To: r.B, DelayPS: Bounds{Min: dAB * 0.8, Max: dAB * 1.2}, Group: -1})
		a.addArc(Arc{From: r.B, To: r.A, DelayPS: Bounds{Min: dBA * 0.8, Max: dBA * 1.2}, Group: -1})
	}
}

// addArc appends an arc; buildFanout indexes the full set afterwards.
func (a *analyzer) addArc(arc Arc) {
	a.arcs = append(a.arcs, arc)
}

// buildFanout indexes the arcs by source node in CSR form, preserving
// arc-insertion order within each node's range.
func (a *analyzer) buildFanout() {
	a.fanOff = make([]int32, len(a.c.Nodes)+1)
	for _, arc := range a.arcs {
		a.fanOff[arc.From+1]++
	}
	for i := 1; i <= len(a.c.Nodes); i++ {
		a.fanOff[i] += a.fanOff[i-1]
	}
	a.fanArcs = make([]int32, len(a.arcs))
	cur := make([]int32, len(a.c.Nodes))
	copy(cur, a.fanOff)
	for i, arc := range a.arcs {
		a.fanArcs[cur[arc.From]] = int32(i)
		cur[arc.From]++
	}
}

// inputsOf returns the group's gate inputs (non-supply gate nets).
func (a *analyzer) inputsOf(g *recognize.Group) []netlist.NodeID {
	return g.Inputs
}

// driveRes bounds the switching resistance seen at a group output: the
// strongest single path (min, fast corner) and the weakest (max, slow
// corner) over pull-up and pull-down networks. §4.3: "timing models must
// also be smart enough to setup the delay calculation for the worst case
// min (fastest delay time) and max (slowest delay time)."
func (a *analyzer) driveRes(g *recognize.Group, out netlist.NodeID) (rMin, rMax float64) {
	p := a.opt.Proc
	rMin, rMax = math.Inf(1), 0.0
	found := false
	vdd := a.c.FindNode(netlist.VddName)
	vss := a.c.FindNode(netlist.VssName)
	for _, rail := range []netlist.NodeID{vdd, vss} {
		if rail == netlist.InvalidNode {
			continue
		}
		for _, path := range a.rec.ChannelPaths(g, out, rail) {
			fastR, slowR := 0.0, 0.0
			for _, d := range path {
				fastR += p.Reff(d.Type, d.Vt, d.W, d.Leff(), process.Fast)
				slowR += p.Reff(d.Type, d.Vt, d.W, d.Leff(), process.Slow)
			}
			if fastR < rMin {
				rMin = fastR
			}
			if slowR > rMax {
				rMax = slowR
			}
			found = true
		}
	}
	if !found {
		return math.Inf(1), math.Inf(1)
	}
	return rMin, rMax
}

// launchBounds returns the arrival bounds and whether the node launches.
func (a *analyzer) launchBounds(id netlist.NodeID) (Bounds, bool) {
	n := a.c.Nodes[id]
	name := n.Name
	if b, ok := a.opt.InputArrival[name]; ok {
		return b, true
	}
	if a.rec.IsClock(id) {
		return Bounds{}, false
	}
	if a.rec.IsState(id) || a.rec.IsDynamic(id) {
		// Launched by its clock's opening edge; clock-to-q is the
		// group's own arc delay, approximated by one FO4 min / two max.
		ph, _ := a.opt.Clock.PhaseOf(a.stateClock(id))
		fo4 := a.opt.Proc.FO4ps(process.Typical)
		return Bounds{Min: ph.OpenPS + 0.5*fo4, Max: ph.OpenPS + 2*fo4}, true
	}
	if n.IsPort && a.isInputPort(id) {
		return Bounds{Min: 0, Max: 0}, true
	}
	return Bounds{}, false
}

// isInputPort reports whether a port is undriven by any group (so it is
// an input).
func (a *analyzer) isInputPort(id netlist.NodeID) bool {
	_, driven := a.rec.DriverOf[id]
	return !driven
}

// stateClock returns the clock net name associated with a state or
// dynamic node ("" if none known).
func (a *analyzer) stateClock(id netlist.NodeID) string {
	if a.clockOf == nil {
		a.clockOf = make(map[netlist.NodeID]string)
		for _, l := range a.rec.Latches {
			for _, sn := range l.StateNodes {
				if len(l.Clocks) > 0 {
					a.clockOf[sn] = a.c.NodeName(l.Clocks[0])
				}
			}
		}
		for _, dn := range a.rec.DynamicNodes {
			if g := a.rec.GroupDriving(dn); g != nil && len(g.ClockNets) > 0 {
				a.clockOf[dn] = a.c.NodeName(g.ClockNets[0])
			}
		}
	}
	return a.clockOf[id]
}

// propagate computes min/max arrivals with a worklist, cutting paths at
// state endpoints. Loops through state elements are broken (captured
// there); purely combinational loops are bounded by iteration count and
// reported via Levels.
func (a *analyzer) propagate(rep *Report) {
	nn := len(a.c.Nodes)
	a.capture = make([]Bounds, nn)
	a.hasCapture = make([]bool, nn)
	a.predMax = make([]netlist.NodeID, nn)
	a.predMin = make([]netlist.NodeID, nn)
	a.capPredMax = make([]netlist.NodeID, nn)
	a.capPredMin = make([]netlist.NodeID, nn)
	for i := 0; i < nn; i++ {
		a.predMax[i] = netlist.InvalidNode
		a.predMin[i] = netlist.InvalidNode
		a.capPredMax[i] = netlist.InvalidNode
		a.capPredMin[i] = netlist.InvalidNode
	}
	a.isState = make([]bool, nn)
	for _, s := range a.rec.StateNodes {
		a.isState[s] = true
	}
	// Arrivals live in flat node-indexed arrays during the worklist run;
	// the exposed Report.Arrival map is filled once at the end.
	arr := make([]Bounds, nn)
	hasArr := make([]bool, nn)
	isLaunch := make([]bool, nn)
	queue := make([]netlist.NodeID, 0, nn)
	inQueue := make([]bool, nn)
	push := func(id netlist.NodeID) {
		if !inQueue[id] {
			inQueue[id] = true
			queue = append(queue, id)
		}
	}
	for id := 0; id < nn; id++ {
		nid := netlist.NodeID(id)
		if b, ok := a.launchBounds(nid); ok {
			arr[id] = b
			hasArr[id] = true
			isLaunch[id] = true
			push(nid)
		}
	}
	iter := 0
	head := 0
	maxIter := 4 * (len(a.arcs) + nn + 1)
	for head < len(queue) && iter < maxIter {
		iter++
		id := queue[head]
		head++
		if head > nn && head*2 > len(queue) {
			// Compact the drained prefix so the queue stays O(nodes).
			queue = queue[:copy(queue, queue[head:])]
			head = 0
		}
		inQueue[id] = false
		from := arr[id]
		for _, ai := range a.fanArcs[a.fanOff[id]:a.fanOff[id+1]] {
			arc := &a.arcs[ai]
			nb := Bounds{Min: from.Min + arc.DelayPS.Min, Max: from.Max + arc.DelayPS.Max}
			// Do not propagate *through* a state endpoint: data is
			// captured there and re-launched by its clock. Feedback
			// from a state node of the SAME latch is the keeper doing
			// its job, not a data capture — recording it would mask
			// the real (cross-latch) min-arrival race path.
			if a.isState[arc.To] {
				if !a.sameLatch(id, arc.To) {
					a.mergeCapture(arc.To, nb, id)
				}
				continue
			}
			if isLaunch[arc.To] {
				continue // launch points keep their launch times
			}
			changed := false
			if !hasArr[arc.To] {
				arr[arc.To] = nb
				hasArr[arc.To] = true
				a.predMax[arc.To] = id
				a.predMin[arc.To] = id
				changed = true
			} else {
				merged := arr[arc.To]
				if nb.Min < merged.Min {
					merged.Min = nb.Min
					a.predMin[arc.To] = id
					changed = true
				}
				if nb.Max > merged.Max {
					merged.Max = nb.Max
					a.predMax[arc.To] = id
					changed = true
				}
				arr[arc.To] = merged
			}
			if changed {
				push(arc.To)
			}
		}
	}
	rep.Levels = iter
	for id := 0; id < nn; id++ {
		if hasArr[id] {
			rep.Arrival[netlist.NodeID(id)] = arr[id]
		}
	}
}

// mergeCapture accumulates a data arrival at a state endpoint.
func (a *analyzer) mergeCapture(id netlist.NodeID, b Bounds, from netlist.NodeID) {
	if !a.hasCapture[id] {
		a.capture[id] = b
		a.hasCapture[id] = true
		a.capIDs = append(a.capIDs, id)
		a.capPredMax[id] = from
		a.capPredMin[id] = from
		return
	}
	old := a.capture[id]
	if b.Min < old.Min {
		old.Min = b.Min
		a.capPredMin[id] = from
	}
	if b.Max > old.Max {
		old.Max = b.Max
		a.capPredMax[id] = from
	}
	a.capture[id] = old
}
