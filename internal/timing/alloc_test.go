package timing_test

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/process"
	"repro/internal/recognize"
	"repro/internal/timing"
)

// Allocation regression pin for timing path enumeration. Flat
// node-indexed arrival/predecessor arrays and the CSR fanout index
// brought Analyze from ~840 allocations to ~190; the bound fails if
// the worklist goes back to map-backed state.
func TestAnalyzeAllocs(t *testing.T) {
	c := designs.LatchPipeline(6, false)
	rec, err := recognize.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	opt := timing.Options{Proc: process.CMOS075(), Clock: timing.TwoPhase(3000)}
	if _, err := timing.Analyze(rec, opt); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := timing.Analyze(rec, opt); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 400 {
		t.Fatalf("Analyze allocates %.0f/op, want <= 400 (seed was ~840)", avg)
	}
}
