// Package timing is the static timing verifier of the toolkit.
//
// §4.3: "Timing verification is used to identify all critical and race
// paths. Critical paths (slow paths) will limit the clock frequency of
// the chip while race paths (fast paths) will prevent the chip from
// working at any frequency." The verifier computes bounded (min/max)
// arrival times over a timing graph deduced from recognized transistor
// groups, generates setup/hold constraints automatically at recognized
// state elements, and reports both slack-ordered critical paths and hold
// (race) violations. All deduction "must be accurate but err on the side
// of being pessimistic in order to insure no violations are missed."
package timing

import (
	"fmt"
	"sort"
	"strings"
)

// Phase describes one clock phase's transparent window within the cycle:
// the latch it controls is open (transparent) from OpenPS to ClosePS.
type Phase struct {
	OpenPS  float64
	ClosePS float64
}

// Width returns the transparent window width.
func (p Phase) Width() float64 { return p.ClosePS - p.OpenPS }

// ClockSpec is the clocking methodology description (Figure 4): a cycle
// period and the phase windows of each named clock net.
type ClockSpec struct {
	// PeriodPS is the clock period in picoseconds.
	PeriodPS float64
	// Phases maps clock net base names (e.g. "phi1") to their windows.
	Phases map[string]Phase
}

// TwoPhase returns the classic two-phase non-overlapping clock used by
// the ALPHA-style designs: phi1 transparent in the first half-cycle,
// phi2 in the second, separated by a non-overlap gap.
func TwoPhase(periodPS float64) ClockSpec {
	gap := periodPS * 0.05
	return ClockSpec{
		PeriodPS: periodPS,
		Phases: map[string]Phase{
			"phi1": {OpenPS: 0, ClosePS: periodPS/2 - gap},
			"phi2": {OpenPS: periodPS / 2, ClosePS: periodPS - gap},
		},
	}
}

// SinglePhase returns a one-clock spec: transparent for the high half.
func SinglePhase(periodPS float64) ClockSpec {
	return ClockSpec{
		PeriodPS: periodPS,
		Phases: map[string]Phase{
			"clk": {OpenPS: 0, ClosePS: periodPS / 2},
		},
	}
}

// PhaseOf resolves a clock net name to its phase. Hierarchical prefixes
// are stripped; a trailing match on the registered phase names is
// accepted ("core/phi1_buf3" resolves to "phi1"). Unknown clocks get the
// full-period window — the pessimistic default: transparent the whole
// cycle constrains setup at period end and hold at cycle start.
func (c ClockSpec) PhaseOf(clockNet string) (Phase, bool) {
	base := clockNet
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	if p, ok := c.Phases[base]; ok {
		return p, true
	}
	for name, p := range c.Phases {
		if strings.HasPrefix(base, name) {
			return p, true
		}
	}
	return Phase{OpenPS: 0, ClosePS: c.PeriodPS}, false
}

// Validate checks the spec.
func (c ClockSpec) Validate() error {
	if c.PeriodPS <= 0 {
		return fmt.Errorf("timing: clock period must be positive, got %g", c.PeriodPS)
	}
	for name, p := range c.Phases {
		if p.OpenPS < 0 || p.ClosePS > c.PeriodPS || p.OpenPS >= p.ClosePS {
			return fmt.Errorf("timing: phase %s window [%g, %g] invalid for period %g",
				name, p.OpenPS, p.ClosePS, c.PeriodPS)
		}
	}
	return nil
}

// PhaseNames returns the registered phase names, sorted.
func (c ClockSpec) PhaseNames() []string {
	out := make([]string, 0, len(c.Phases))
	for n := range c.Phases {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
