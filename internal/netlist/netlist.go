// Package netlist provides the transistor-level design representation for
// the full-custom toolkit.
//
// The paper's methodology (§2) is explicit that "transistors are the
// building elements. Other building elements (cells) are nice but not
// required. Every transistor in the design can be (and often is)
// individually sized, regardless of its functional context." This package
// therefore models circuits as bags of individually-sized MOS devices
// connected at named nodes, with optional hierarchy (subcircuit instances)
// that can be flattened at will — hierarchy is a convenience, never a
// semantic boundary (§2.1).
//
// Passive elements (R and C) are included so extracted parasitics can be
// carried in the same representation the verification tools consume.
package netlist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/process"
)

// Special node names recognized as supplies. Comparison is
// case-insensitive; "gnd" is an alias for "vss".
const (
	VddName = "vdd"
	VssName = "vss"
)

// Loc is a position in a source deck: the file and line an element was
// parsed from. The zero Loc means "no source information" (circuits built
// programmatically). Locations survive flattening so every diagnostic a
// downstream tool emits — lint findings, Validate errors — can point at
// the offending deck line.
type Loc struct {
	// File is the deck path as given to the parser ("" when unknown).
	File string
	// Line is the 1-based line number (0 when unknown).
	Line int
}

// IsZero reports whether the location carries no information.
func (l Loc) IsZero() bool { return l.File == "" && l.Line == 0 }

// String renders "file:line", "line N" without a file, or "".
func (l Loc) String() string {
	switch {
	case l.IsZero():
		return ""
	case l.File == "":
		return fmt.Sprintf("line %d", l.Line)
	default:
		return fmt.Sprintf("%s:%d", l.File, l.Line)
	}
}

// locSuffix renders a location as a parenthesized error-message suffix.
func locSuffix(l Loc) string {
	if l.IsZero() {
		return ""
	}
	return " (" + l.String() + ")"
}

// NodeID indexes a node within one Circuit.
type NodeID int

// InvalidNode is returned by lookups that fail.
const InvalidNode NodeID = -1

// Node is a circuit node (an electrical net).
type Node struct {
	// Name is the node's name, unique within its circuit. Flattened
	// nodes use "/"-separated hierarchical names.
	Name string
	// CapFF is fixed extra capacitance attached to the node in fF
	// (from C elements or extraction annotations).
	CapFF float64
	// IsPort reports whether the node is on the circuit's interface.
	IsPort bool
	// Attrs carries free-form designer annotations ("clock",
	// "precharge", "false_path", …) consumed by downstream tools. The
	// recognition engine works without them; they exist because §2.3
	// lets the designer assist the filter.
	Attrs map[string]string
}

// HasAttr reports whether the node carries the given attribute.
func (n *Node) HasAttr(key string) bool {
	_, ok := n.Attrs[key]
	return ok
}

// Device is a single MOS transistor with per-instance sizing.
type Device struct {
	// Name identifies the device within its circuit.
	Name string
	// Type is NMOS or PMOS.
	Type process.DeviceType
	// Vt selects the threshold flavour.
	Vt process.VtClass
	// Gate, Source, Drain and Bulk are the terminal nodes. Source and
	// Drain are interchangeable for recognition purposes (MOS devices
	// are symmetric); tools must not assume an orientation.
	Gate, Source, Drain, Bulk NodeID
	// W and L are drawn width and length in µm.
	W, L float64
	// ExtraL is additional channel length in µm beyond L, the §3
	// leakage-reduction knob ("devices … were lengthened by 0.045µm or
	// 0.09µm as part of the design process").
	ExtraL float64
	// Loc is the deck position the device was parsed from (zero when
	// built programmatically).
	Loc Loc
}

// Leff returns the effective drawn channel length W/L computations use.
func (d *Device) Leff() float64 { return d.L + d.ExtraL }

// Resistor is a two-terminal resistance element (extracted interconnect).
type Resistor struct {
	Name string
	A, B NodeID
	Ohms float64
	// Loc is the deck position the resistor was parsed from.
	Loc Loc
}

// Instance is a reference to a subcircuit.
type Instance struct {
	// Name identifies the instance within its parent.
	Name string
	// Cell is the name of the instantiated circuit, resolved through a
	// Library at flatten time.
	Cell string
	// Conns maps, positionally, the instantiated cell's ports to nodes
	// of the parent circuit.
	Conns []NodeID
	// Loc is the deck position the instance was parsed from.
	Loc Loc
}

// Circuit is one level of the design: devices, passives and instances
// over a shared set of nodes.
type Circuit struct {
	// Name is the circuit (cell) name.
	Name string
	// Loc is the deck position of the cell's .subckt card.
	Loc Loc
	// Ports lists interface nodes in declaration order.
	Ports []NodeID

	Nodes     []*Node
	Devices   []*Device
	Resistors []*Resistor
	Instances []*Instance

	index map[string]NodeID
	// vdd/vss cache the supply node IDs (InvalidNode until created), so
	// the hot kernels' IsSupply tests are integer compares instead of
	// per-call name lookups. Node() is the only node-creation path, so
	// the cache cannot go stale.
	vdd, vss NodeID
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name, index: make(map[string]NodeID), vdd: InvalidNode, vss: InvalidNode}
}

// canonName lowercases supply aliases so "GND", "gnd" and "vss" share a
// node; other names are case-sensitive as designers wrote them.
func canonName(name string) string {
	switch strings.ToLower(name) {
	case "vdd", "vcc":
		return VddName
	case "vss", "gnd", "0":
		return VssName
	}
	return name
}

// Node returns the ID for the named node, creating it if needed.
func (c *Circuit) Node(name string) NodeID {
	name = canonName(name)
	if id, ok := c.index[name]; ok {
		return id
	}
	id := NodeID(len(c.Nodes))
	c.Nodes = append(c.Nodes, &Node{Name: name})
	c.index[name] = id
	switch name {
	case VddName:
		c.vdd = id
	case VssName:
		c.vss = id
	}
	return id
}

// FindNode returns the ID of an existing node, or InvalidNode.
func (c *Circuit) FindNode(name string) NodeID {
	if id, ok := c.index[canonName(name)]; ok {
		return id
	}
	return InvalidNode
}

// NodeName returns the name of a node ID (convenience for reports).
func (c *Circuit) NodeName(id NodeID) string {
	if id < 0 || int(id) >= len(c.Nodes) {
		return fmt.Sprintf("<invalid node %d>", id)
	}
	return c.Nodes[id].Name
}

// IsVdd reports whether the node is the positive supply.
func (c *Circuit) IsVdd(id NodeID) bool { return id != InvalidNode && id == c.vdd }

// IsVss reports whether the node is the ground supply.
func (c *Circuit) IsVss(id NodeID) bool { return id != InvalidNode && id == c.vss }

// IsSupply reports whether the node is either supply rail.
func (c *Circuit) IsSupply(id NodeID) bool {
	return id != InvalidNode && (id == c.vdd || id == c.vss)
}

// DeclarePort marks the named node as a port, creating it if needed, and
// returns its ID. Ports keep declaration order.
func (c *Circuit) DeclarePort(name string) NodeID {
	id := c.Node(name)
	if !c.Nodes[id].IsPort {
		c.Nodes[id].IsPort = true
		c.Ports = append(c.Ports, id)
	}
	return id
}

// SetAttr attaches an attribute to a node.
func (c *Circuit) SetAttr(id NodeID, key, value string) {
	n := c.Nodes[id]
	if n.Attrs == nil {
		n.Attrs = make(map[string]string)
	}
	n.Attrs[key] = value
}

// AddDevice appends a transistor. Terminal names create nodes on demand.
func (c *Circuit) AddDevice(name string, t process.DeviceType, gate, source, drain, bulk string, w, l float64) *Device {
	d := &Device{
		Name:   name,
		Type:   t,
		Vt:     process.StandardVt,
		Gate:   c.Node(gate),
		Source: c.Node(source),
		Drain:  c.Node(drain),
		Bulk:   c.Node(bulk),
		W:      w,
		L:      l,
	}
	c.Devices = append(c.Devices, d)
	return d
}

// NMOS adds an n-channel device with bulk tied to vss.
func (c *Circuit) NMOS(name, gate, source, drain string, w, l float64) *Device {
	return c.AddDevice(name, process.NMOS, gate, source, drain, VssName, w, l)
}

// PMOS adds a p-channel device with bulk tied to vdd.
func (c *Circuit) PMOS(name, gate, source, drain string, w, l float64) *Device {
	return c.AddDevice(name, process.PMOS, gate, source, drain, VddName, w, l)
}

// AddCap attaches capacitance (fF) to a node, creating it on demand.
// Capacitors to anything other than a supply are attached to both ends,
// approximating grounded caps; explicit coupling is the parasitics
// package's job.
func (c *Circuit) AddCap(node string, fF float64) {
	c.Nodes[c.Node(node)].CapFF += fF
}

// AddResistor appends an extracted-interconnect resistor.
func (c *Circuit) AddResistor(name, a, b string, ohms float64) *Resistor {
	r := &Resistor{Name: name, A: c.Node(a), B: c.Node(b), Ohms: ohms}
	c.Resistors = append(c.Resistors, r)
	return r
}

// AddInstance appends a subcircuit instance with positional connections.
func (c *Circuit) AddInstance(name, cell string, conns ...string) *Instance {
	ids := make([]NodeID, len(conns))
	for i, cn := range conns {
		ids[i] = c.Node(cn)
	}
	inst := &Instance{Name: name, Cell: cell, Conns: ids}
	c.Instances = append(c.Instances, inst)
	return inst
}

// DevicesOn returns the devices with a source or drain terminal on the
// node (channel-connected neighbours).
func (c *Circuit) DevicesOn(id NodeID) []*Device {
	var out []*Device
	for _, d := range c.Devices {
		if d.Source == id || d.Drain == id {
			out = append(out, d)
		}
	}
	return out
}

// GatesOn returns devices whose gate is connected to the node.
func (c *Circuit) GatesOn(id NodeID) []*Device {
	var out []*Device
	for _, d := range c.Devices {
		if d.Gate == id {
			out = append(out, d)
		}
	}
	return out
}

// TotalWidth returns the summed channel width of all devices, a standard
// area/power proxy.
func (c *Circuit) TotalWidth() float64 {
	var w float64
	for _, d := range c.Devices {
		w += d.W
	}
	return w
}

// Stats summarizes a circuit for reports.
type Stats struct {
	Name      string
	Nodes     int
	Devices   int
	NMOS      int
	PMOS      int
	Resistors int
	Instances int
	TotalW    float64
}

// Stats returns summary statistics for the circuit (local level only;
// flatten first for whole-design numbers).
func (c *Circuit) Stats() Stats {
	s := Stats{
		Name:      c.Name,
		Nodes:     len(c.Nodes),
		Devices:   len(c.Devices),
		Resistors: len(c.Resistors),
		Instances: len(c.Instances),
		TotalW:    c.TotalWidth(),
	}
	for _, d := range c.Devices {
		if d.Type == process.NMOS {
			s.NMOS++
		} else {
			s.PMOS++
		}
	}
	return s
}

// Validate checks structural sanity: terminal IDs in range, positive
// geometry, unique device names, no fully self-connected devices, ports
// marked. Errors cite the deck file:line when the element carries one.
func (c *Circuit) Validate() error {
	inRange := func(id NodeID) bool { return id >= 0 && int(id) < len(c.Nodes) }
	seen := make(map[string]bool, len(c.Devices))
	for _, d := range c.Devices {
		if d.Name == "" {
			return fmt.Errorf("netlist %s: unnamed device%s", c.Name, locSuffix(d.Loc))
		}
		if seen[d.Name] {
			return fmt.Errorf("netlist %s: duplicate device name %q%s", c.Name, d.Name, locSuffix(d.Loc))
		}
		seen[d.Name] = true
		for _, t := range []NodeID{d.Gate, d.Source, d.Drain, d.Bulk} {
			if !inRange(t) {
				return fmt.Errorf("netlist %s: device %s has out-of-range terminal %d%s", c.Name, d.Name, t, locSuffix(d.Loc))
			}
		}
		if d.Gate == d.Source && d.Gate == d.Drain {
			return fmt.Errorf("netlist %s: device %s is self-connected (gate, source and drain all on %s)%s",
				c.Name, d.Name, c.NodeName(d.Gate), locSuffix(d.Loc))
		}
		if d.W <= 0 || d.L <= 0 {
			return fmt.Errorf("netlist %s: device %s has non-positive geometry W=%g L=%g%s", c.Name, d.Name, d.W, d.L, locSuffix(d.Loc))
		}
		if d.ExtraL < 0 {
			return fmt.Errorf("netlist %s: device %s has negative ExtraL %g%s", c.Name, d.Name, d.ExtraL, locSuffix(d.Loc))
		}
	}
	for _, r := range c.Resistors {
		if !inRange(r.A) || !inRange(r.B) {
			return fmt.Errorf("netlist %s: resistor %s has out-of-range terminal%s", c.Name, r.Name, locSuffix(r.Loc))
		}
		if r.Ohms <= 0 {
			return fmt.Errorf("netlist %s: resistor %s has non-positive resistance %g%s", c.Name, r.Name, r.Ohms, locSuffix(r.Loc))
		}
	}
	for _, inst := range c.Instances {
		for _, id := range inst.Conns {
			if !inRange(id) {
				return fmt.Errorf("netlist %s: instance %s has out-of-range connection %d%s", c.Name, inst.Name, id, locSuffix(inst.Loc))
			}
		}
	}
	for _, p := range c.Ports {
		if !inRange(p) {
			return fmt.Errorf("netlist %s: port ID %d out of range", c.Name, p)
		}
		if !c.Nodes[p].IsPort {
			return fmt.Errorf("netlist %s: node %s listed as port but not marked", c.Name, c.NodeName(p))
		}
	}
	return nil
}

// Library is a named collection of circuits resolving instance references.
type Library struct {
	cells map[string]*Circuit
}

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{cells: make(map[string]*Circuit)}
}

// Add registers a circuit; it replaces any previous cell of the same name.
func (l *Library) Add(c *Circuit) {
	l.cells[c.Name] = c
}

// Cell returns the named circuit, or nil.
func (l *Library) Cell(name string) *Circuit {
	return l.cells[name]
}

// Cells returns all cell names in sorted order.
func (l *Library) Cells() []string {
	names := make([]string, 0, len(l.cells))
	for n := range l.cells {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Flatten recursively expands every instance of the circuit into a single
// flat transistor netlist. Hierarchical node names are joined with "/";
// supply nodes are global and never prefixed. The paper's hierarchy
// philosophy (§2.1) treats hierarchy as a designer convenience only —
// every verification tool in the suite runs on the flat view.
func (l *Library) Flatten(top string) (*Circuit, error) {
	root := l.Cell(top)
	if root == nil {
		return nil, fmt.Errorf("netlist: flatten: unknown cell %q", top)
	}
	flat := New(root.Name + ".flat")
	// Copy root ports first so the flat circuit keeps the interface.
	for _, p := range root.Ports {
		flat.DeclarePort(root.NodeName(p))
	}
	if err := l.flattenInto(flat, root, "", make(map[string]NodeID), map[string]bool{top: true}, nil); err != nil {
		return nil, err
	}
	return flat, nil
}

// FlattenKeep partially flattens root: instances of cells for which
// keep returns true are preserved as instances (their connections
// remapped to the flat namespace), while everything else expands
// exactly like Flatten. The result keeps root's name and port order.
// Hierarchical verification uses this to fold cells too small to be
// worth a cache entry into their parent's verification scope.
func (l *Library) FlattenKeep(root *Circuit, keep func(cell string) bool) (*Circuit, error) {
	flat := New(root.Name)
	flat.Loc = root.Loc
	for _, p := range root.Ports {
		flat.DeclarePort(root.NodeName(p))
	}
	if err := l.flattenInto(flat, root, "", make(map[string]NodeID), map[string]bool{root.Name: true}, keep); err != nil {
		return nil, err
	}
	return flat, nil
}

// flattenInto copies cell's contents into flat with the given instance
// prefix. boundary maps cell-local port names to flat node IDs; active
// tracks the instantiation path for recursion detection. Instances of
// cells for which keep returns true are copied as instances instead of
// being expanded (keep nil expands everything).
func (l *Library) flattenInto(flat, cell *Circuit, prefix string, boundary map[string]NodeID, active map[string]bool, keep func(string) bool) error {
	// localID maps a cell-local node to its flat ID.
	local := make([]NodeID, len(cell.Nodes))
	for i, n := range cell.Nodes {
		name := n.Name
		switch {
		case name == VddName || name == VssName:
			local[i] = flat.Node(name)
		default:
			if id, ok := boundary[name]; ok {
				local[i] = id
				break
			}
			full := name
			if prefix != "" {
				full = prefix + "/" + name
			}
			local[i] = flat.Node(full)
		}
		fn := flat.Nodes[local[i]]
		fn.CapFF += n.CapFF
		for k, v := range n.Attrs {
			flat.SetAttr(local[i], k, v)
		}
	}
	pfx := func(s string) string {
		if prefix == "" {
			return s
		}
		return prefix + "/" + s
	}
	for _, d := range cell.Devices {
		nd := *d
		nd.Name = pfx(d.Name)
		nd.Gate, nd.Source, nd.Drain, nd.Bulk = local[d.Gate], local[d.Source], local[d.Drain], local[d.Bulk]
		flat.Devices = append(flat.Devices, &nd)
	}
	for _, r := range cell.Resistors {
		nr := *r
		nr.Name = pfx(r.Name)
		nr.A, nr.B = local[r.A], local[r.B]
		flat.Resistors = append(flat.Resistors, &nr)
	}
	for _, inst := range cell.Instances {
		if keep != nil && keep(inst.Cell) {
			conns := make([]string, len(inst.Conns))
			for i, n := range inst.Conns {
				conns[i] = flat.NodeName(local[n])
			}
			ni := flat.AddInstance(pfx(inst.Name), inst.Cell, conns...)
			ni.Loc = inst.Loc
			continue
		}
		child := l.Cell(inst.Cell)
		if child == nil {
			return fmt.Errorf("netlist: flatten: %s instantiates unknown cell %q", cell.Name, inst.Cell)
		}
		if active[inst.Cell] {
			return fmt.Errorf("netlist: flatten: recursive instantiation of %q via %s", inst.Cell, pfx(inst.Name))
		}
		if len(inst.Conns) != len(child.Ports) {
			return fmt.Errorf("netlist: flatten: instance %s of %s connects %d nodes to %d ports",
				pfx(inst.Name), inst.Cell, len(inst.Conns), len(child.Ports))
		}
		childBoundary := make(map[string]NodeID, len(child.Ports))
		for i, p := range child.Ports {
			childBoundary[child.NodeName(p)] = local[inst.Conns[i]]
		}
		active[inst.Cell] = true
		if err := l.flattenInto(flat, child, pfx(inst.Name), childBoundary, active, keep); err != nil {
			return err
		}
		delete(active, inst.Cell)
	}
	return nil
}
