package netlist_test

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/netlist"
)

// Allocation regression pins for the WL-refinement kernels. The CSR
// incidence layout and in-place sorting brought Fingerprint from ~22k
// allocations per call down to ~9; these bounds leave headroom for
// incidental change but fail loudly if a per-node or per-round
// allocation sneaks back into the refinement loop.
func TestFingerprintAllocs(t *testing.T) {
	c := designs.SRAMArray(32, 16, 0)
	c.Fingerprint() // warm any lazy state
	avg := testing.AllocsPerRun(5, func() { _ = c.Fingerprint() })
	if avg > 50 {
		t.Fatalf("Fingerprint allocates %.0f/op, want <= 50 (seed was ~22000)", avg)
	}
}

func TestSignaturesAllocs(t *testing.T) {
	c := designs.SRAMArray(32, 16, 0)
	netlist.ComputeSignatures(c)
	avg := testing.AllocsPerRun(5, func() { _ = netlist.ComputeSignatures(c) })
	if avg > 100 {
		t.Fatalf("ComputeSignatures allocates %.0f/op, want <= 100 (seed was ~22000)", avg)
	}
}
