package netlist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLocString(t *testing.T) {
	cases := []struct {
		loc  Loc
		want string
	}{
		{Loc{}, ""},
		{Loc{Line: 7}, "line 7"},
		{Loc{File: "deck.sp", Line: 7}, "deck.sp:7"},
	}
	for _, c := range cases {
		if got := c.loc.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.loc, got, c.want)
		}
	}
	if !(Loc{}).IsZero() {
		t.Error("zero Loc not IsZero")
	}
	if (Loc{Line: 1}).IsZero() {
		t.Error("located Loc claims IsZero")
	}
}

const locDeck = `* header comment
.subckt cell a y
mn y a vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
rw y yw 120
.ends
x1 in mid cell
x2 mid out cell
`

func TestParseRecordsLocations(t *testing.T) {
	lib, top, err := ParseNamed(strings.NewReader(locDeck), "deck.sp")
	if err != nil {
		t.Fatal(err)
	}
	cell := lib.Cell("cell")
	if cell.Loc != (Loc{File: "deck.sp", Line: 2}) {
		t.Errorf("cell loc = %v, want deck.sp:2", cell.Loc)
	}
	if got := cell.Devices[0].Loc; got != (Loc{File: "deck.sp", Line: 3}) {
		t.Errorf("device mn loc = %v, want deck.sp:3", got)
	}
	if got := cell.Resistors[0].Loc; got != (Loc{File: "deck.sp", Line: 5}) {
		t.Errorf("resistor loc = %v, want deck.sp:5", got)
	}
	if got := top.Instances[1].Loc; got != (Loc{File: "deck.sp", Line: 8}) {
		t.Errorf("instance x2 loc = %v, want deck.sp:8", got)
	}
}

func TestParseAnonymousKeepsLineNumbers(t *testing.T) {
	lib, _, err := Parse(strings.NewReader(locDeck))
	if err != nil {
		t.Fatal(err)
	}
	d := lib.Cell("cell").Devices[0]
	if d.Loc.File != "" || d.Loc.Line != 3 {
		t.Errorf("anonymous loc = %v, want line 3 with no file", d.Loc)
	}
}

func TestParseFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deck.sp")
	if err := os.WriteFile(path, []byte(locDeck), 0o644); err != nil {
		t.Fatal(err)
	}
	lib, _, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := lib.Cell("cell").Devices[0].Loc.File; got != path {
		t.Errorf("device loc file = %q, want %q", got, path)
	}
	if _, _, err := ParseFile(filepath.Join(t.TempDir(), "nope.sp")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFlattenPreservesLoc(t *testing.T) {
	lib, top, err := ParseNamed(strings.NewReader(locDeck), "deck.sp")
	if err != nil {
		t.Fatal(err)
	}
	lib.Add(top)
	flat, err := lib.Flatten("top")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range flat.Devices {
		if d.Loc.File != "deck.sp" || d.Loc.Line == 0 {
			t.Errorf("flattened device %s lost its loc: %v", d.Name, d.Loc)
		}
	}
}

func TestValidateErrorsCiteDeckLines(t *testing.T) {
	deck := `.subckt bad a y
mdup y a vss vss nmos w=2 l=0.75
mdup y a vdd vdd pmos w=4 l=0.75
.ends
`
	lib, _, err := ParseNamed(strings.NewReader(deck), "dup.sp")
	if err != nil {
		t.Fatal(err)
	}
	verr := lib.Cell("bad").Validate()
	if verr == nil || !strings.Contains(verr.Error(), "duplicate") || !strings.Contains(verr.Error(), "dup.sp:3") {
		t.Errorf("Validate() = %v, want duplicate-name error citing dup.sp:3", verr)
	}
}

func TestValidateSelfConnectedDevice(t *testing.T) {
	c := New("bad")
	c.NMOS("m1", "x", "x", "x", 2, 0.75)
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "self-connected") {
		t.Errorf("Validate() = %v, want self-connected error", err)
	}
}

func TestValidateInstanceConnRange(t *testing.T) {
	c := New("bad")
	inst := c.AddInstance("x1", "cell", "a", "b")
	inst.Conns[1] = NodeID(99)
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "out-of-range connection") {
		t.Errorf("Validate() = %v, want out-of-range connection error", err)
	}
}

func TestFlattenUndeclaredSubcircuit(t *testing.T) {
	_, top, err := Parse(strings.NewReader("x1 a b nosuchcell\n"))
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary()
	lib.Add(top)
	if _, err := lib.Flatten("top"); err == nil || !strings.Contains(err.Error(), "unknown cell") {
		t.Errorf("Flatten = %v, want unknown-cell error", err)
	}
}

func TestParseMoreErrorPaths(t *testing.T) {
	cases := []struct {
		deck string
		want string
	}{
		{"m1 y a vss\n", "want M name"},
		{"m1 y a vss vss nmos w=zz l=1\n", "bad numeric"},
		{"c1 a vss zz\n", "bad numeric"},
		{"r1 a b\n", "want R"},
	}
	for _, c := range cases {
		_, _, err := Parse(strings.NewReader(c.deck))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("deck %q: error %v does not contain %q", c.deck, err, c.want)
		}
	}
}
