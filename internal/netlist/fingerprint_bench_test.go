package netlist_test

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/netlist"
)

// BenchmarkFingerprintKernel measures the WL-refinement structural hash
// — the fleet cache's admission cost, paid once per corpus item even on
// a 100%-hit warm run. The workload is a mid-size SRAM array (~2k
// devices), the same shape the fleet hashes per corpus item.
func BenchmarkFingerprintKernel(b *testing.B) {
	c := designs.SRAMArray(32, 16, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Fingerprint()
	}
}

// BenchmarkSignaturesKernel measures the per-object label table the
// finding-provenance layer computes once per verified design.
func BenchmarkSignaturesKernel(b *testing.B) {
	c := designs.SRAMArray(32, 16, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = netlist.ComputeSignatures(c)
	}
}
