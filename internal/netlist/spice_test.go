package netlist

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/process"
)

const sampleDeck = `
* sample deck
.subckt inv a y
mn y a vss vss nmos w=2 l=0.75
mp y a vdd vdd pmos w=4 l=0.75
.ends

.subckt nand2 a b y
mn1 y a mid vss nmos w=4 l=0.75
mn2 mid b vss vss nmos w=4 l=0.75
mp1 y a vdd vdd pmos w=4 l=0.75
mp2 y b vdd vdd pmos w=4 l=0.75
.ends

x1 in n1 inv
x2 n1 n2 x3out nand2
cload n2 vss 10f
rwire n2 n3 150
*attr in clock=phi1
`

func TestParseBasics(t *testing.T) {
	lib, top, err := Parse(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	if got := lib.Cells(); len(got) != 2 || got[0] != "inv" || got[1] != "nand2" {
		t.Fatalf("cells = %v", got)
	}
	invC := lib.Cell("inv")
	if len(invC.Devices) != 2 {
		t.Errorf("inv devices = %d", len(invC.Devices))
	}
	if len(invC.Ports) != 2 {
		t.Errorf("inv ports = %d", len(invC.Ports))
	}
	// SPICE terminal order M d g s b.
	mn := invC.Devices[0]
	if invC.NodeName(mn.Drain) != "y" || invC.NodeName(mn.Gate) != "a" || invC.NodeName(mn.Source) != "vss" {
		t.Errorf("terminal order wrong: d=%s g=%s s=%s",
			invC.NodeName(mn.Drain), invC.NodeName(mn.Gate), invC.NodeName(mn.Source))
	}
	if mn.Type != process.NMOS || mn.W != 2 || mn.L != 0.75 {
		t.Errorf("device params: %+v", mn)
	}

	if len(top.Instances) != 2 {
		t.Errorf("top instances = %d", len(top.Instances))
	}
	if top.Instances[1].Cell != "nand2" || len(top.Instances[1].Conns) != 3 {
		t.Errorf("instance parse: %+v", top.Instances[1])
	}
	n2 := top.FindNode("n2")
	if math.Abs(top.Nodes[n2].CapFF-10) > 1e-9 {
		t.Errorf("cload = %g fF, want 10", top.Nodes[n2].CapFF)
	}
	if len(top.Resistors) != 1 || top.Resistors[0].Ohms != 150 {
		t.Errorf("resistor parse: %+v", top.Resistors)
	}
	in := top.FindNode("in")
	if top.Nodes[in].Attrs["clock"] != "phi1" {
		t.Error("*attr annotation lost")
	}
}

func TestParseContinuationLines(t *testing.T) {
	deck := "m1 y a\n+ vss vss nmos\n+ w=2 l=0.75\n"
	_, top, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Devices) != 1 || top.Devices[0].W != 2 {
		t.Errorf("continuation parse failed: %+v", top.Devices)
	}
}

func TestParseMetresVsMicrons(t *testing.T) {
	deck := "m1 y a vss vss nmos w=2u l=0.75u\nm2 z a vss vss nmos w=2 l=0.75\n"
	_, top, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range top.Devices {
		if math.Abs(d.W-2) > 1e-9 || math.Abs(d.L-0.75) > 1e-9 {
			t.Errorf("%s: W=%g L=%g, want 2/0.75", d.Name, d.W, d.L)
		}
	}
}

func TestParseVtAndExtraL(t *testing.T) {
	deck := "m1 y a vss vss nmos w=2 l=0.35 vt=lvt extral=0.045\n"
	_, top, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	d := top.Devices[0]
	if d.Vt != process.LowVt {
		t.Errorf("vt = %v", d.Vt)
	}
	if math.Abs(d.ExtraL-0.045) > 1e-9 {
		t.Errorf("extral = %g", d.ExtraL)
	}
}

func TestParseValueSuffixes(t *testing.T) {
	cases := map[string]float64{
		"10":   10,
		"10f":  10e-15,
		"2.5p": 2.5e-12,
		"1k":   1e3,
		"3meg": 3e6,
		"100n": 100e-9,
		"0.5u": 0.5e-6,
		"1m":   1e-3,
		"2g":   2e9,
	}
	for s, want := range cases {
		got, err := parseValue(s)
		if err != nil {
			t.Errorf("parseValue(%q): %v", s, err)
			continue
		}
		if math.Abs(got-want)/want > 1e-12 {
			t.Errorf("parseValue(%q) = %g, want %g", s, got, want)
		}
	}
	if _, err := parseValue("abc"); err == nil {
		t.Error("parseValue should reject non-numeric")
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		deck string
		want string
	}{
		{".subckt\n", ".subckt needs a name"},
		{".ends\n", ".ends without .subckt"},
		{".subckt a p\n", "missing .ends"},
		{".subckt a p\n.subckt b q\n", "nested"},
		{".tran 1n\n", "unsupported card"},
		{"q1 a b c\n", "unknown element"},
		{"m1 y a vss vss nmos w=2\n", "missing w/l"},
		{"m1 y a vss vss xmos w=2 l=1\n", "unknown model"},
		{"m1 y a vss vss nmos w=2 l=1 vt=zzz\n", "unknown vt class"},
		{"m1 y a vss vss nmos w=2 l=1 foo=1\n", "unknown parameter"},
		{"m1 y a vss vss nmos w=2 l=1 bare\n", "malformed parameter"},
		{"c1 a vss\n", "want C"},
		{"r1 a b xx\n", "bad numeric"},
		{"x1 inv\n", "want X"},
	}
	for _, c := range cases {
		_, _, err := Parse(strings.NewReader(c.deck))
		if err == nil {
			t.Errorf("deck %q: want error containing %q, got nil", c.deck, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("deck %q: error %q does not contain %q", c.deck, err, c.want)
		}
		var pe *ParseError
		if !asParseError(err, &pe) {
			t.Errorf("deck %q: error is not a *ParseError: %T", c.deck, err)
		} else if pe.Line == 0 {
			t.Errorf("deck %q: error lost its line number", c.deck)
		}
	}
}

// asParseError is a minimal errors.As for the single error type here.
func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestCapAttachment(t *testing.T) {
	deck := "c1 a vss 4f\nc2 vdd b 6f\nc3 a b 8f\nc4 vdd vss 100f\n"
	_, top, err := Parse(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	a, b := top.FindNode("a"), top.FindNode("b")
	if got := top.Nodes[a].CapFF; math.Abs(got-8) > 1e-9 { // 4 + 8/2
		t.Errorf("cap(a) = %g, want 8", got)
	}
	if got := top.Nodes[b].CapFF; math.Abs(got-10) > 1e-9 { // 6 + 8/2
		t.Errorf("cap(b) = %g, want 10", got)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	lib, top, err := Parse(strings.NewReader(sampleDeck))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, lib, top); err != nil {
		t.Fatal(err)
	}
	lib2, top2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\ndeck:\n%s", err, buf.String())
	}
	if len(lib2.Cells()) != len(lib.Cells()) {
		t.Errorf("cells: %v vs %v", lib2.Cells(), lib.Cells())
	}
	if len(top2.Devices) != len(top.Devices) || len(top2.Instances) != len(top.Instances) ||
		len(top2.Resistors) != len(top.Resistors) {
		t.Error("top contents changed in round trip")
	}
	n2 := top2.FindNode("n2")
	if n2 == InvalidNode || math.Abs(top2.Nodes[n2].CapFF-10) > 1e-6 {
		t.Error("node cap lost in round trip")
	}
	in := top2.FindNode("in")
	if top2.Nodes[in].Attrs["clock"] != "phi1" {
		t.Error("attr lost in round trip")
	}
	inv2 := lib2.Cell("inv")
	d := inv2.Devices[0]
	if d.W != 2 || d.L != 0.75 || d.Type != process.NMOS {
		t.Errorf("device changed in round trip: %+v", d)
	}
}

func TestWriteVtAndExtraLRoundTrip(t *testing.T) {
	top := New("t")
	d := top.NMOS("m1", "a", "vss", "y", 2, 0.35)
	d.Vt = process.HighVt
	d.ExtraL = 0.09
	var buf bytes.Buffer
	if err := Write(&buf, nil, top); err != nil {
		t.Fatal(err)
	}
	_, top2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d2 := top2.Devices[0]
	if d2.Vt != process.HighVt || math.Abs(d2.ExtraL-0.09) > 1e-9 {
		t.Errorf("round trip lost vt/extral: %+v", d2)
	}
}
