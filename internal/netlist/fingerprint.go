// Structural fingerprinting: a canonical content hash of a circuit's
// topology and sizing.
//
// The verification fleet (internal/fleet) keys its result cache on this
// hash so the N structurally identical SRAM columns or domino carry
// stages of a big array are recognized, checked and timed once and the
// result replayed for every other copy. That only works if the hash is
// *canonical*: two circuits that differ only in node names, device
// names, or the order elements were added must hash identically, while
// any electrically meaningful difference — a width, a length, a Vt
// flavour, a changed connection, port-ness of a node — must change it.
//
// The algorithm is Weisfeiler-Lehman colour refinement over the
// device/node incidence hypergraph: every node starts with a label built
// from its electrical invariants, then labels are repeatedly mixed with
// the labels of incident elements (respecting terminal roles, with
// source/drain treated symmetrically because MOS channels are), and the
// final sorted multiset of labels is hashed. Renaming or reordering
// cannot change the result by construction; collisions between genuinely
// different circuits are possible in principle but need an engineered
// 64-bit collision per refinement round.
package netlist

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"slices"
	"sort"
)

// Fingerprint is a canonical structural hash of a circuit.
type Fingerprint [32]byte

// String returns the full lowercase hex form.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns an 8-hex-digit prefix for report tables.
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:4]) }

// fpRounds is the number of refinement rounds. Each round extends the
// neighbourhood a label describes by one hop; eight hops distinguishes
// everything the verification tools themselves can distinguish (CCC
// diameters in real circuits are far smaller).
const fpRounds = 8

// refined holds the converged Weisfeiler-Lehman labels: one canonical
// hash per node and per element. Fingerprint digests the sorted
// multisets; Signatures exposes the per-object labels so findings can
// be identified by *where they are structurally*, not by name.
type refined struct {
	node []uint64
	dev  []uint64
	res  []uint64
	inst []uint64
}

// refine runs the colour-refinement rounds and returns the final
// labels. This is the shared engine of Fingerprint and Signatures.
func (c *Circuit) refine() refined {
	return c.refineLabels(nil)
}

// refineLabels is refine with the per-instance seed labels made
// explicit. When instLabels is nil each instance seeds from its cell
// *name* (the flat Fingerprint contract: a renamed child cell changes
// the parent hash). Callers that know more about the children — the
// hierarchical DAG fingerprint seeds each instance with the child's own
// composed fingerprint, CellFingerprint seeds all instances with one
// neutral constant — pass len(c.Instances) labels instead.
func (c *Circuit) refineLabels(instLabels []uint64) refined {
	// Initial node labels: electrical invariants only — never the name,
	// except the canonical supply identity (vdd and vss are global
	// meanings, not names).
	labels := make([]uint64, len(c.Nodes))
	for i, n := range c.Nodes {
		h := uint64(fpSeed)
		switch {
		case c.IsVdd(NodeID(i)):
			h = fpMix(h, 1)
		case c.IsVss(NodeID(i)):
			h = fpMix(h, 2)
		default:
			h = fpMix(h, 3)
		}
		if n.IsPort {
			h = fpMix(h, 1)
		} else {
			h = fpMix(h, 0)
		}
		h = fpMix(h, math.Float64bits(n.CapFF))
		if len(n.Attrs) > 0 {
			keys := make([]string, 0, len(n.Attrs))
			for k := range n.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				h = fpMix(h, fpString(k))
				h = fpMix(h, fpString(n.Attrs[k]))
			}
		}
		labels[i] = h
	}

	// Static element hashes (sizing and kind; no names, no terminals).
	devStatic := make([]uint64, len(c.Devices))
	for i, d := range c.Devices {
		h := fpMix(fpSeed, uint64(d.Type))
		h = fpMix(h, uint64(d.Vt))
		h = fpMix(h, math.Float64bits(d.W))
		h = fpMix(h, math.Float64bits(d.L))
		h = fpMix(h, math.Float64bits(d.ExtraL))
		devStatic[i] = h
	}
	resStatic := make([]uint64, len(c.Resistors))
	for i, r := range c.Resistors {
		resStatic[i] = fpMix(fpSeed, math.Float64bits(r.Ohms))
	}
	instStatic := make([]uint64, len(c.Instances))
	for i, inst := range c.Instances {
		if instLabels != nil {
			instStatic[i] = fpMix(fpSeed, instLabels[i])
		} else {
			instStatic[i] = fpMix(fpSeed, fpString(inst.Cell))
		}
	}

	// Incidence: every (node, role, element) edge, built once in a
	// compressed sparse row layout — one flat edge array plus per-node
	// offsets — so the whole structure is two allocations instead of a
	// slice header (plus append growth) per node.
	const (
		roleGate    = 11
		roleBulk    = 13
		roleChannel = 17
		roleRes     = 19
		roleInst    = 23 // instance conns add their position to this
	)
	type incidence struct {
		role uint64
		elem int32 // index into the per-kind hash slice
		kind int8  // 0 device, 1 resistor, 2 instance
	}
	nEdges := 4 * len(c.Devices)
	nEdges += 2 * len(c.Resistors)
	for _, inst := range c.Instances {
		nEdges += len(inst.Conns)
	}
	// Count-then-fill: after the prefix sum, node n's edges live in
	// edges[off[n]:off[n+1]].
	off := make([]int32, len(c.Nodes)+1)
	countEdge := func(n NodeID) { off[int(n)+1]++ }
	for _, d := range c.Devices {
		countEdge(d.Gate)
		countEdge(d.Bulk)
		countEdge(d.Source)
		countEdge(d.Drain)
	}
	for _, r := range c.Resistors {
		countEdge(r.A)
		countEdge(r.B)
	}
	for _, inst := range c.Instances {
		for _, n := range inst.Conns {
			countEdge(n)
		}
	}
	maxDeg := int32(0)
	for i := 1; i <= len(c.Nodes); i++ {
		if off[i] > maxDeg {
			maxDeg = off[i]
		}
		off[i] += off[i-1]
	}
	edges := make([]incidence, nEdges)
	cur := make([]int32, len(c.Nodes))
	copy(cur, off)
	addEdge := func(n NodeID, role uint64, elem int, kind int8) {
		edges[cur[n]] = incidence{role, int32(elem), kind}
		cur[n]++
	}
	for i, d := range c.Devices {
		addEdge(d.Gate, roleGate, i, 0)
		addEdge(d.Bulk, roleBulk, i, 0)
		addEdge(d.Source, roleChannel, i, 0)
		addEdge(d.Drain, roleChannel, i, 0)
	}
	for i, r := range c.Resistors {
		addEdge(r.A, roleRes, i, 1)
		addEdge(r.B, roleRes, i, 1)
	}
	for i, inst := range c.Instances {
		for pos, n := range inst.Conns {
			addEdge(n, roleInst+uint64(pos)*29, i, 2)
		}
	}

	devHash := make([]uint64, len(c.Devices))
	resHash := make([]uint64, len(c.Resistors))
	instHash := make([]uint64, len(c.Instances))
	next := make([]uint64, len(c.Nodes))
	contrib := make([]uint64, 0, maxDeg)
	for round := 0; round < fpRounds; round++ {
		for i, d := range c.Devices {
			devHash[i] = fpMix(fpMix(fpMix(devStatic[i], labels[d.Gate]), labels[d.Bulk]),
				fpCommute(labels[d.Source], labels[d.Drain]))
		}
		for i, r := range c.Resistors {
			resHash[i] = fpMix(resStatic[i], fpCommute(labels[r.A], labels[r.B]))
		}
		for i, inst := range c.Instances {
			h := instStatic[i]
			for _, n := range inst.Conns {
				h = fpMix(h, labels[n]) // positional: order matters
			}
			instHash[i] = h
		}
		for n := range labels {
			contrib = contrib[:0]
			for _, e := range edges[off[n]:off[n+1]] {
				var eh uint64
				switch e.kind {
				case 0:
					eh = devHash[e.elem]
				case 1:
					eh = resHash[e.elem]
				default:
					eh = instHash[e.elem]
				}
				contrib = append(contrib, fpMix(e.role, eh))
			}
			// The multiset of incident-element views, order-independent.
			slices.Sort(contrib)
			h := labels[n]
			for _, v := range contrib {
				h = fpMix(h, v)
			}
			next[n] = h
		}
		labels, next = next, labels
	}
	return refined{node: labels, dev: devHash, res: resHash, inst: instHash}
}

// Fingerprint computes the canonical structural hash. It is invariant
// under node renaming, device/resistor/instance renaming and element
// reordering, and sensitive to connectivity, W/L/ExtraL sizing, device
// type and Vt class, node capacitance and attributes, port-ness, and
// supply identity. Instance connections hash positionally against the
// referenced cell *name*, so two instances of differently-named but
// identical cells hash differently. For a name-invariant hierarchical
// hash use the per-cell/DAG contract instead: CellFingerprint hashes a
// cell's local structure with instance identities neutralized (child
// edits don't move it), and Library.HierFingerprint composes each
// cell's local hash with its children's DAG hashes and its port
// boundary signature — rename/reorder-invariant like Fingerprint, but a
// one-leaf edit moves only that leaf's hash and the hashes on its path
// to the root.
func (c *Circuit) Fingerprint() Fingerprint {
	return c.fingerprintWith(nil)
}

// fingerprintWith is Fingerprint over refineLabels(instLabels): the
// digest of the converged label multisets with explicit instance seeds.
func (c *Circuit) fingerprintWith(instLabels []uint64) Fingerprint {
	return c.digestRefined(c.refineLabels(instLabels))
}

// digestRefined collapses a refinement result into the 256-bit hash.
func (c *Circuit) digestRefined(r refined) Fingerprint {
	// Final digest: element counts plus the sorted label multisets.
	// Sorting removes any dependence on insertion order. refine()
	// allocates fresh slices per call, so r is exclusively ours and can
	// be sorted in place (Signatures takes its own refine() result).
	slices.Sort(r.dev)
	slices.Sort(r.res)
	slices.Sort(r.inst)
	slices.Sort(r.node)

	hw := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		hw.Write(buf[:])
	}
	put(uint64(len(c.Nodes)))
	put(uint64(len(c.Devices)))
	put(uint64(len(c.Resistors)))
	put(uint64(len(c.Instances)))
	for _, v := range r.node {
		put(v)
	}
	for _, v := range r.dev {
		put(v)
	}
	for _, v := range r.res {
		put(v)
	}
	for _, v := range r.inst {
		put(v)
	}
	var out Fingerprint
	copy(out[:], hw.Sum(nil))
	return out
}

// fpSeed is the refinement base constant (splitmix64's increment).
const fpSeed = 0x9e3779b97f4a7c15

// fpMix folds v into h with a strong 64-bit finalizer (murmur3's).
// It is order-sensitive: fpMix(fpMix(h,a),b) != fpMix(fpMix(h,b),a).
func fpMix(h, v uint64) uint64 {
	h ^= v + fpSeed + (h << 6) + (h >> 2)
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// fpCommute combines two labels symmetrically (for the interchangeable
// source/drain pair and resistor ends).
func fpCommute(a, b uint64) uint64 {
	if a > b {
		a, b = b, a
	}
	return fpMix(fpMix(fpSeed, a), b)
}

// fpString hashes a string (attribute keys/values, cell names).
func fpString(s string) uint64 {
	h := uint64(fpSeed)
	for i := 0; i < len(s); i++ {
		h = fpMix(h, uint64(s[i]))
	}
	return h
}
