// Structural signatures: per-object canonical labels for finding
// provenance.
//
// The fleet's fingerprint answers "is this the same circuit?"; the
// verification findings need the finer question "is this the same
// *place* in the circuit?" — so a finding reported on a node or device
// can keep a stable identity across runs, node renames and deck
// reordering, and `fcv diff` can tell a new violation from a re-render
// of an old one. Signatures exposes the Weisfeiler-Lehman refinement
// labels that Fingerprint digests: one 64-bit canonical label per node
// and per device, invariant under renaming and element order, sensitive
// to connectivity, sizing and models — exactly the invariance contract
// of the fingerprint, applied per object.
package netlist

import "fmt"

// Signatures is the per-object canonical label table of one circuit.
// Compute once per circuit (the CBV pipeline computes it once per
// core.Verify and threads it through the stages) and treat as
// read-only; it is safe for concurrent readers.
type Signatures struct {
	c    *Circuit
	node []uint64
	dev  []uint64
	// devIndex maps device name to its index in c.Devices.
	devIndex map[string]int
}

// ComputeSignatures runs the refinement and indexes the result.
func ComputeSignatures(c *Circuit) *Signatures {
	r := c.refine()
	s := &Signatures{
		c:        c,
		node:     r.node,
		dev:      r.dev,
		devIndex: make(map[string]int, len(c.Devices)),
	}
	for i, d := range c.Devices {
		s.devIndex[d.Name] = i
	}
	return s
}

// NodeSig returns the canonical label of a node (false if out of range).
func (s *Signatures) NodeSig(id NodeID) (uint64, bool) {
	if id < 0 || int(id) >= len(s.node) {
		return 0, false
	}
	return s.node[id], true
}

// SubjectSig resolves a finding subject to a canonical label: a node
// name maps to its node label, a device name to its device label, and
// anything else (compound subjects, group descriptors) falls back to a
// stable string hash — still deterministic, just rename-sensitive.
func (s *Signatures) SubjectSig(subject string) uint64 {
	if id := s.c.FindNode(subject); id >= 0 {
		return s.node[id]
	}
	if i, ok := s.devIndex[subject]; ok {
		return fpMix(s.dev[i], 5) // domain-separate devices from nodes
	}
	return fpMix(fpString(subject), 7)
}

// FindingID builds the stable finding identifier
// "<source>/<check>@<16-hex>" from the check identity and the subject's
// structural signature. Two findings of the same check on structurally
// identical places share an ID (use DisambiguateIDs to suffix the
// symmetric copies); renaming nodes or reordering the deck never
// changes it, while a W/L, model or connectivity change within the
// refinement horizon does.
func (s *Signatures) FindingID(source, check, subject string) string {
	h := fpMix(fpString(source+"/"+check), s.SubjectSig(subject))
	return fmt.Sprintf("%s/%s@%016x", source, check, h)
}

// StringID builds a finding identifier from a plain string subject with
// no structural resolution — for findings about a whole item (a
// verification error, a missing corpus member) where the carrier is the
// circuit fingerprint or the item name itself.
func StringID(source, check, subject string) string {
	h := fpMix(fpString(source+"/"+check), fpMix(fpString(subject), 7))
	return fmt.Sprintf("%s/%s@%016x", source, check, h)
}

// DisambiguateIDs suffixes repeated IDs in place with "#2", "#3", … in
// slice order, leaving the first occurrence bare. Structurally
// symmetric findings (two identical inverters with the same defect)
// share a base ID; the suffix keeps the rows distinct while the ID
// *multiset* stays rename-invariant. The input order must already be
// deterministic (reports sort their findings before calling this).
func DisambiguateIDs(ids []string) {
	seen := make(map[string]int, len(ids))
	for i, id := range ids {
		seen[id]++
		if n := seen[id]; n > 1 {
			ids[i] = fmt.Sprintf("%s#%d", id, n)
		}
	}
}
