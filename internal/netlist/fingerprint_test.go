package netlist

import (
	"testing"

	"repro/internal/process"
)

// buildInvChain builds a 3-stage inverter chain with controllable node
// names, device names and insertion order.
func buildInvChain(nodeName func(string) string, devName func(string) string, reverse bool) *Circuit {
	c := New("chain")
	type stage struct{ in, out string }
	stages := []stage{
		{"a", "n1"}, {"n1", "n2"}, {"n2", "y"},
	}
	if reverse {
		for i, j := 0, len(stages)-1; i < j; i, j = i+1, j-1 {
			stages[i], stages[j] = stages[j], stages[i]
		}
	}
	c.DeclarePort(nodeName("a"))
	c.DeclarePort(nodeName("y"))
	for i, st := range stages {
		in, out := nodeName(st.in), nodeName(st.out)
		// PMOS before NMOS in reversed builds, to vary device order too.
		if reverse {
			c.PMOS(devName("mp"+itoa(i)), in, "vdd", out, 2.0, 0.25)
			c.NMOS(devName("mn"+itoa(i)), in, "vss", out, 1.0, 0.25)
		} else {
			c.NMOS(devName("mn"+itoa(i)), in, "vss", out, 1.0, 0.25)
			c.PMOS(devName("mp"+itoa(i)), in, "vdd", out, 2.0, 0.25)
		}
	}
	return c
}

func itoa(i int) string { return string(rune('0' + i)) }

func TestFingerprintInvariantUnderRenamesAndReorder(t *testing.T) {
	base := buildInvChain(
		func(n string) string { return n },
		func(d string) string { return d }, false)
	renamed := buildInvChain(
		func(n string) string { return "net_" + n },
		func(d string) string { return "x_" + d }, false)
	reordered := buildInvChain(
		func(n string) string { return n },
		func(d string) string { return d }, true)

	fp := base.Fingerprint()
	if got := renamed.Fingerprint(); got != fp {
		t.Errorf("renaming nodes/devices changed fingerprint:\n  %s\n  %s", fp, got)
	}
	if got := reordered.Fingerprint(); got != fp {
		t.Errorf("reordering devices changed fingerprint:\n  %s\n  %s", fp, got)
	}
	// Determinism across repeated computation.
	if got := base.Fingerprint(); got != fp {
		t.Errorf("fingerprint not deterministic: %s vs %s", fp, got)
	}
}

func TestFingerprintSensitiveToSizingAndModel(t *testing.T) {
	mk := func() *Circuit {
		return buildInvChain(
			func(n string) string { return n },
			func(d string) string { return d }, false)
	}
	fp := mk().Fingerprint()

	w := mk()
	w.Devices[0].W = 1.5
	if w.Fingerprint() == fp {
		t.Error("W change did not change fingerprint")
	}
	l := mk()
	l.Devices[0].L = 0.35
	if l.Fingerprint() == fp {
		t.Error("L change did not change fingerprint")
	}
	el := mk()
	el.Devices[0].ExtraL = 0.045
	if el.Fingerprint() == fp {
		t.Error("ExtraL change did not change fingerprint")
	}
	vt := mk()
	vt.Devices[0].Vt = process.LowVt
	if vt.Fingerprint() == fp {
		t.Error("Vt change did not change fingerprint")
	}
	ty := mk()
	ty.Devices[0].Type = process.PMOS
	if ty.Fingerprint() == fp {
		t.Error("device type change did not change fingerprint")
	}
	conn := mk()
	conn.Devices[0].Drain = conn.Devices[2].Drain
	if conn.Fingerprint() == fp {
		t.Error("connectivity change did not change fingerprint")
	}
}

func TestFingerprintSensitiveToNodeProperties(t *testing.T) {
	mk := func() *Circuit {
		return buildInvChain(
			func(n string) string { return n },
			func(d string) string { return d }, false)
	}
	fp := mk().Fingerprint()

	capd := mk()
	capd.AddCap("n1", 5)
	if capd.Fingerprint() == fp {
		t.Error("node capacitance change did not change fingerprint")
	}
	port := mk()
	port.DeclarePort("n1")
	if port.Fingerprint() == fp {
		t.Error("port marking did not change fingerprint")
	}
	attr := mk()
	attr.SetAttr(attr.FindNode("n1"), "false_path", "1")
	if attr.Fingerprint() == fp {
		t.Error("node attribute did not change fingerprint")
	}
}

func TestFingerprintSourceDrainSymmetry(t *testing.T) {
	mk := func(swap bool) *Circuit {
		c := New("tg")
		c.DeclarePort("a")
		c.DeclarePort("b")
		if swap {
			c.NMOS("m1", "en", "b", "a", 1.0, 0.25)
		} else {
			c.NMOS("m1", "en", "a", "b", 1.0, 0.25)
		}
		return c
	}
	if mk(false).Fingerprint() != mk(true).Fingerprint() {
		t.Error("source/drain swap changed fingerprint (MOS channels are symmetric)")
	}
}

func TestFingerprintResistorsAndInstances(t *testing.T) {
	mk := func(ohms float64, cell string) *Circuit {
		c := New("top")
		c.DeclarePort("in")
		c.AddResistor("r1", "in", "mid", ohms)
		c.AddInstance("u1", cell, "mid", "out")
		return c
	}
	fp := mk(100, "inv").Fingerprint()
	if mk(200, "inv").Fingerprint() == fp {
		t.Error("resistance change did not change fingerprint")
	}
	if mk(100, "buf").Fingerprint() == fp {
		t.Error("instanced cell name change did not change fingerprint")
	}
	swapped := New("top")
	swapped.DeclarePort("in")
	swapped.AddResistor("rX", "mid", "in", 100) // resistor ends are symmetric
	swapped.AddInstance("uX", "inv", "mid", "out")
	if swapped.Fingerprint() != fp {
		t.Error("resistor end swap or element renaming changed fingerprint")
	}
	connSwap := New("top")
	connSwap.DeclarePort("in")
	connSwap.AddResistor("r1", "in", "mid", 100)
	connSwap.AddInstance("u1", "inv", "out", "mid") // positional conns swapped
	if connSwap.Fingerprint() == fp {
		t.Error("instance connection order change did not change fingerprint (conns are positional)")
	}
}
