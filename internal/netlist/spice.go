// SPICE-subset reader and writer. The toolkit's native interchange format
// is the universally understood SPICE deck: .subckt/.ends hierarchy,
// M/C/R/X elements, and name=value device parameters. Only the structural
// subset the verification tools need is supported — no analyses, models
// or simulation cards.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/process"
)

// ParseError describes a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("spice: line %d: %s", e.Line, e.Msg)
}

// Parse reads a SPICE-subset deck and returns a library of the
// subcircuits it defines plus a top-level circuit holding any elements
// outside .subckt blocks (named "top"). Supported cards:
//
//	.subckt NAME port...  /  .ends
//	Mname drain gate source bulk {nmos|pmos} w=.. l=.. [extral=..] [vt={svt|lvt|hvt}]
//	Cname node node value          (farads with suffixes, or fF with "f" ambiguity resolved as femto)
//	Rname node node value
//	Xname node... CELLNAME
//	*attr node key=value           (node attribute annotation comment)
//
// Continuation lines start with "+". Comments start with "*" or ";"
// (except the *attr form). Names are case-preserved except supplies.
func Parse(r io.Reader) (*Library, *Circuit, error) {
	return ParseNamed(r, "")
}

// ParseFile parses a deck from disk. Elements record the path and line
// they came from, so downstream diagnostics (lint, Validate) can point
// back into the deck.
func ParseFile(path string) (*Library, *Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ParseNamed(f, path)
}

// ParseNamed is Parse with a source name recorded on every element's Loc
// (pass "" for an anonymous deck; line numbers are still recorded).
func ParseNamed(r io.Reader, srcName string) (*Library, *Circuit, error) {
	lib := NewLibrary()
	top := New("top")
	cur := top

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		lines   []string
		lineNos []int
		lineNo  int
	)
	for sc.Scan() {
		lineNo++
		raw := strings.TrimRight(sc.Text(), " \t\r")
		if strings.HasPrefix(raw, "+") && len(lines) > 0 {
			lines[len(lines)-1] += " " + strings.TrimSpace(raw[1:])
			continue
		}
		lines = append(lines, raw)
		lineNos = append(lineNos, lineNo)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("spice: read: %w", err)
	}

	inSub := false
	for i, raw := range lines {
		no := lineNos[i]
		loc := Loc{File: srcName, Line: no}
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		lower := strings.ToLower(line)
		switch {
		case strings.HasPrefix(lower, "*attr "):
			if err := parseAttr(cur, line[len("*attr "):]); err != nil {
				return nil, nil, &ParseError{no, err.Error()}
			}
			continue
		case strings.HasPrefix(line, "*"), strings.HasPrefix(line, ";"):
			continue
		}
		fields := strings.Fields(line)
		switch {
		case lower == ".end":
			// done
		case strings.HasPrefix(lower, ".subckt"):
			if inSub {
				return nil, nil, &ParseError{no, "nested .subckt not supported"}
			}
			if len(fields) < 2 {
				return nil, nil, &ParseError{no, ".subckt needs a name"}
			}
			cur = New(fields[1])
			cur.Loc = loc
			for _, p := range fields[2:] {
				cur.DeclarePort(p)
			}
			inSub = true
		case strings.HasPrefix(lower, ".ends"):
			if !inSub {
				return nil, nil, &ParseError{no, ".ends without .subckt"}
			}
			lib.Add(cur)
			cur = top
			inSub = false
		case strings.HasPrefix(lower, ".global"), strings.HasPrefix(lower, ".option"):
			// Accepted and ignored: supplies are already global.
		case strings.HasPrefix(lower, "."):
			return nil, nil, &ParseError{no, fmt.Sprintf("unsupported card %q", fields[0])}
		default:
			if err := parseElement(cur, fields, loc); err != nil {
				return nil, nil, &ParseError{no, err.Error()}
			}
		}
	}
	if inSub {
		return nil, nil, &ParseError{lineNo, "missing .ends"}
	}
	return lib, top, nil
}

// parseAttr handles "*attr node key=value" annotations.
func parseAttr(c *Circuit, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return fmt.Errorf("*attr needs node and key[=value]")
	}
	id := c.Node(fields[0])
	for _, kv := range fields[1:] {
		k, v, _ := strings.Cut(kv, "=")
		c.SetAttr(id, k, v)
	}
	return nil
}

// parseElement dispatches one element card to its handler.
func parseElement(c *Circuit, fields []string, loc Loc) error {
	name := fields[0]
	switch strings.ToLower(name[:1]) {
	case "m":
		return parseMOS(c, fields, loc)
	case "c":
		if len(fields) != 4 {
			return fmt.Errorf("capacitor %s: want C name a b value", name)
		}
		v, err := parseValue(fields[3])
		if err != nil {
			return fmt.Errorf("capacitor %s: %v", name, err)
		}
		// Store as grounded cap on the non-supply end; if both ends
		// are signals, split evenly (coupling belongs to parasitics).
		fF := v * 1e15
		a, b := c.Node(fields[1]), c.Node(fields[2])
		switch {
		case c.IsSupply(a) && c.IsSupply(b):
			// decoupling cap: no signal load
		case c.IsSupply(b):
			c.Nodes[a].CapFF += fF
		case c.IsSupply(a):
			c.Nodes[b].CapFF += fF
		default:
			c.Nodes[a].CapFF += fF / 2
			c.Nodes[b].CapFF += fF / 2
		}
		return nil
	case "r":
		if len(fields) != 4 {
			return fmt.Errorf("resistor %s: want R name a b value", name)
		}
		v, err := parseValue(fields[3])
		if err != nil {
			return fmt.Errorf("resistor %s: %v", name, err)
		}
		c.AddResistor(name, fields[1], fields[2], v).Loc = loc
		return nil
	case "x":
		if len(fields) < 3 {
			return fmt.Errorf("instance %s: want X name node... cell", name)
		}
		cell := fields[len(fields)-1]
		c.AddInstance(name, cell, fields[1:len(fields)-1]...).Loc = loc
		return nil
	}
	return fmt.Errorf("unknown element %q", name)
}

// parseMOS handles "Mname d g s b type params".
func parseMOS(c *Circuit, fields []string, loc Loc) error {
	if len(fields) < 6 {
		return fmt.Errorf("device %s: want M name d g s b model params", fields[0])
	}
	var dt process.DeviceType
	model := strings.ToLower(fields[5])
	switch {
	case strings.HasPrefix(model, "n"):
		dt = process.NMOS
	case strings.HasPrefix(model, "p"):
		dt = process.PMOS
	default:
		return fmt.Errorf("device %s: unknown model %q", fields[0], fields[5])
	}
	d := c.AddDevice(fields[0], dt, fields[2], fields[3], fields[1], fields[4], 0, 0)
	d.Loc = loc
	for _, kv := range fields[6:] {
		k, v, ok := strings.Cut(strings.ToLower(kv), "=")
		if !ok {
			return fmt.Errorf("device %s: malformed parameter %q", fields[0], kv)
		}
		switch k {
		case "w", "l", "extral":
			val, err := parseValue(v)
			if err != nil {
				return fmt.Errorf("device %s: %s: %v", fields[0], k, err)
			}
			// Geometry in the deck may be in metres (SPICE) or µm
			// (bare small numbers): values below 1e-3 are metres.
			if val < 1e-3 {
				val *= 1e6
			}
			switch k {
			case "w":
				d.W = val
			case "l":
				d.L = val
			case "extral":
				d.ExtraL = val
			}
		case "vt":
			switch v {
			case "svt":
				d.Vt = process.StandardVt
			case "lvt":
				d.Vt = process.LowVt
			case "hvt":
				d.Vt = process.HighVt
			default:
				return fmt.Errorf("device %s: unknown vt class %q", fields[0], v)
			}
		case "m", "nf", "ad", "as", "pd", "ps":
			// Accepted and ignored layout parameters.
		default:
			return fmt.Errorf("device %s: unknown parameter %q", fields[0], k)
		}
	}
	if d.W <= 0 || d.L <= 0 {
		return fmt.Errorf("device %s: missing w/l", fields[0])
	}
	return nil
}

// suffixes maps SPICE magnitude suffixes to multipliers.
var suffixes = []struct {
	s string
	m float64
}{
	{"meg", 1e6},
	{"t", 1e12}, {"g", 1e9}, {"k", 1e3},
	{"m", 1e-3}, {"u", 1e-6}, {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15}, {"a", 1e-18},
}

// parseValue parses a SPICE numeric value with optional magnitude suffix.
func parseValue(s string) (float64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := 1.0
	for _, suf := range suffixes {
		if strings.HasSuffix(s, suf.s) {
			mult = suf.m
			s = strings.TrimSuffix(s, suf.s)
			break
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad numeric value %q", s)
	}
	return v * mult, nil
}

// Write emits the library and top circuit as a SPICE-subset deck that
// Parse round-trips. Cells are emitted in sorted order for stable diffs.
func Write(w io.Writer, lib *Library, top *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "* %s — full-custom toolkit netlist\n", top.Name)
	if lib != nil {
		for _, name := range lib.Cells() {
			if err := writeCircuit(bw, lib.Cell(name), true); err != nil {
				return err
			}
		}
	}
	if err := writeCircuit(bw, top, false); err != nil {
		return err
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// spiceName returns name carrying the element-letter prefix the parser
// dispatches on, prepending it when the stored name lacks one. Names
// from parsed decks already start with the right letter and pass
// through untouched; programmatically built circuits (u0_n, inv3, ...)
// get the prefix so Write's round-trip contract holds for them too.
func spiceName(name string, prefix byte) string {
	if name != "" && name[0]|0x20 == prefix {
		return name
	}
	return string(prefix) + name
}

// writeCircuit emits one circuit, optionally wrapped in .subckt/.ends.
func writeCircuit(w io.Writer, c *Circuit, asSubckt bool) error {
	if asSubckt {
		ports := make([]string, len(c.Ports))
		for i, p := range c.Ports {
			ports[i] = c.NodeName(p)
		}
		fmt.Fprintf(w, ".subckt %s %s\n", c.Name, strings.Join(ports, " "))
	}
	for _, d := range c.Devices {
		fmt.Fprintf(w, "%s %s %s %s %s %s w=%g l=%g",
			spiceName(d.Name, 'm'), c.NodeName(d.Drain), c.NodeName(d.Gate), c.NodeName(d.Source),
			c.NodeName(d.Bulk), d.Type, d.W, d.L)
		if d.ExtraL > 0 {
			fmt.Fprintf(w, " extral=%g", d.ExtraL)
		}
		if d.Vt != process.StandardVt {
			fmt.Fprintf(w, " vt=%s", d.Vt)
		}
		fmt.Fprintln(w)
	}
	for _, r := range c.Resistors {
		fmt.Fprintf(w, "%s %s %s %g\n", spiceName(r.Name, 'r'), c.NodeName(r.A), c.NodeName(r.B), r.Ohms)
	}
	ci := 0
	for _, n := range c.Nodes {
		if n.CapFF > 0 {
			ci++
			fmt.Fprintf(w, "cw%d %s %s %gf\n", ci, n.Name, VssName, n.CapFF)
		}
	}
	for _, inst := range c.Instances {
		conns := make([]string, len(inst.Conns))
		for i, id := range inst.Conns {
			conns[i] = c.NodeName(id)
		}
		fmt.Fprintf(w, "%s %s %s\n", spiceName(inst.Name, 'x'), strings.Join(conns, " "), inst.Cell)
	}
	// Attribute annotations last, sorted for stability.
	for _, n := range c.Nodes {
		if len(n.Attrs) == 0 {
			continue
		}
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if v := n.Attrs[k]; v != "" {
				fmt.Fprintf(w, "*attr %s %s=%s\n", n.Name, k, v)
			} else {
				fmt.Fprintf(w, "*attr %s %s\n", n.Name, k)
			}
		}
	}
	if asSubckt {
		fmt.Fprintln(w, ".ends")
	}
	return nil
}
